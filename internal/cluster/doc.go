// Package cluster assembles the simulated platform: N nodes, each
// running a standalone kernel instance with local DRAM, LLC and TLB,
// all sharing one root filesystem and one CXL memory device over the
// fabric — the paper's testbed topology (§6.1) generalized from two
// nodes to N.
//
// Entry points: New and MustNew build an N-node Cluster from
// params.Params; the Cluster's shared engine, device, filesystem, fault
// plan and tracer are what every other subsystem hangs off.
package cluster
