package cluster

import (
	"fmt"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/params"
	"cxlfork/internal/telemetry"
	"cxlfork/internal/trace"
	"cxlfork/internal/xray"
)

// Cluster is a set of nodes sharing a CXL device pool and root
// filesystem. Dev is pool device 0 — the ingest device every mechanism
// checkpoints into; the replica layer fans sealed images out to the
// rest of the pool.
type Cluster struct {
	P     params.Params
	Eng   *des.Engine
	Dev   *cxl.Device
	Pool  *cxl.DevicePool
	FS    *fsim.FS
	CXLFS *fsim.CXLFS
	Nodes []*kernel.OS

	// Faults is the cluster's fault-injection plan. It is always
	// non-nil; with no rules injected it reports no faults, so the happy
	// path pays only a few predictable branches.
	Faults *faultinject.Plan

	// Trace is the cluster-wide virtual-time tracer, shared by every
	// node, or nil when params.TraceEnabled is false. Tracing is purely
	// observational — it never advances any clock — so enabling it
	// cannot change simulation results.
	Trace *trace.Tracer

	// Telem is the cluster-wide telemetry registry, shared by every
	// layer, or nil when params.TelemetryEnabled is false. Like the
	// tracer, its probes are read-only observers on the virtual clock,
	// so enabling sampling cannot change simulation results
	// (DESIGN.md §11).
	Telem *telemetry.Registry

	// Sim fans independent simulation legs out to params.SimWorkers
	// goroutines (DESIGN.md §13). The coupled replay on Eng stays
	// sequential; the pool only parallelizes legs that share nothing,
	// so results are byte-identical at any worker count.
	Sim *des.Pool

	// XRay is the critical-path latency attribution engine, or nil
	// when params.XRayEnabled is false. Like the tracer and the
	// telemetry registry it is a pure observer: the porter feeds it
	// per-request component timings and the fabric net feeds it
	// per-link contention, and enabling it changes no simulated result
	// (DESIGN.md §16).
	XRay *xray.Attributor

	// Topo is the built fabric topology when params.Topology is set,
	// else nil (flat single-hop model). The device pool is placed on
	// it and its device count overrides params.CXLDevices.
	Topo *fabric.Topology
	// Net is the fabric contention model, non-nil only when Topo is
	// present and non-trivial: a trivial (1-switch/1-device, default
	// links) topology adds nothing over the flat model, so the porter
	// skips fabric charging entirely and stays byte-identical to the
	// pre-topology results (DESIGN.md §14).
	Net *fabric.Net
}

// New builds a cluster of n nodes with the given parameters. All nodes
// share one virtual clock: the simulation is sequential, and concurrent
// scenarios are expressed through the engine's event queue.
func New(p params.Params, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	eng := des.NewEngine()
	var topo *fabric.Topology
	ndev := p.CXLDevices
	if p.Topology != "" {
		spec, err := fabric.Parse(p.Topology)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		topo, err = spec.Build(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		ndev = topo.Devices()
	}
	pool := cxl.NewDevicePool(p, ndev)
	if topo != nil {
		if err := pool.Place(topo); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	dev := pool.Device(0)
	fs := fsim.NewFS()
	c := &Cluster{
		P:      p,
		Eng:    eng,
		Dev:    dev,
		Pool:   pool,
		FS:     fs,
		CXLFS:  fsim.NewCXLFS(dev),
		Faults: faultinject.NewPlan(eng, 1),
		Sim:    des.NewPool(p.SimWorkers),
		Topo:   topo,
	}
	if topo != nil && !topo.Trivial() {
		c.Net = fabric.NewNet(topo)
	}
	if p.XRayEnabled {
		c.XRay = xray.New(topo, p.XRayExemplars)
		if c.Net != nil {
			c.Net.SetObserver(c.XRay.ObserveLink)
		}
	}
	if p.TraceEnabled {
		c.Trace = trace.New(p.TraceBufferCap)
	}
	if p.TelemetryEnabled {
		c.Telem = telemetry.New(p.SampleEvery, p.TelemetrySeriesCap)
		pool.RegisterTelemetry(c.Telem)
		c.Faults.RegisterTelemetry(c.Telem)
		if c.Net != nil {
			c.Net.RegisterTelemetry(c.Telem)
		}
	}
	for i := 0; i < n; i++ {
		node := kernel.NewOS(fmt.Sprintf("node%d", i), p, eng, dev, fs, p.NodeDRAMBytes)
		node.Index = i
		node.Trace = c.Trace
		node.RegisterTelemetry(c.Telem)
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// MustNew is New for contexts where n is a constant and an error is a
// programming bug (tests, experiment drivers).
func MustNew(p params.Params, n int) *Cluster {
	c, err := New(p, n)
	if err != nil {
		panic(err)
	}
	return c
}

// Node returns node i.
func (c *Cluster) Node(i int) *kernel.OS { return c.Nodes[i] }

// HostOf maps node i onto its fabric host index. Clusters with more
// nodes than declared hosts wrap round-robin, so a small topology can
// still serve a large replay; without a topology the mapping is
// identity.
func (c *Cluster) HostOf(i int) int {
	if c.Topo == nil || c.Topo.Hosts() == 0 {
		return i
	}
	return i % c.Topo.Hosts()
}

// WarmAll pulls a file into every node's page cache (image pre-pull, so
// library faults are page-cache minors on steady-state nodes).
func (c *Cluster) WarmAll(path string) error {
	for _, n := range c.Nodes {
		if err := n.WarmFile(path); err != nil {
			return err
		}
	}
	return nil
}

// LocalUsedBytes returns the summed local DRAM usage across nodes.
func (c *Cluster) LocalUsedBytes() int64 {
	var total int64
	for _, n := range c.Nodes {
		total += n.Mem.UsedBytes()
	}
	return total
}
