package cluster

import (
	"testing"

	"cxlfork/internal/params"
)

func small() params.Params {
	p := params.Default()
	p.NodeDRAMBytes = 16 << 20
	p.CXLBytes = 16 << 20
	return p
}

func TestNewCluster(t *testing.T) {
	c := MustNew(small(), 3)
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	// Nodes share the engine, device and root FS but have private DRAM.
	if c.Node(0).Eng != c.Node(2).Eng || c.Node(0).Dev != c.Node(1).Dev || c.Node(0).FS != c.Node(1).FS {
		t.Fatal("shared substrate not shared")
	}
	if c.Node(0).Mem == c.Node(1).Mem {
		t.Fatal("nodes share DRAM")
	}
	if c.Node(0).Name == c.Node(1).Name {
		t.Fatal("node names collide")
	}
}

func TestWarmAll(t *testing.T) {
	c := MustNew(small(), 2)
	c.FS.Create("/img/lib.so", 8*4096)
	if err := c.WarmAll("/img/lib.so"); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.PageCache.Pages() != 8 {
			t.Fatalf("%s page cache = %d", n.Name, n.PageCache.Pages())
		}
	}
	if err := c.WarmAll("/missing"); err == nil {
		t.Fatal("warming a missing file succeeded")
	}
}

func TestLocalUsedBytes(t *testing.T) {
	c := MustNew(small(), 2)
	c.Node(0).Mem.MustAlloc()
	c.Node(1).Mem.MustAlloc()
	c.Node(1).Mem.MustAlloc()
	if got := c.LocalUsedBytes(); got != 3*4096 {
		t.Fatalf("LocalUsedBytes = %d", got)
	}
}

func TestZeroNodesErrors(t *testing.T) {
	for _, n := range []int{0, -1} {
		if c, err := New(small(), n); err == nil || c != nil {
			t.Fatalf("New(%d) = %v, %v; want nil, error", n, c, err)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty cluster")
		}
	}()
	MustNew(small(), 0)
}
