package cluster

import (
	"testing"

	"cxlfork/internal/params"
)

func small() params.Params {
	p := params.Default()
	p.NodeDRAMBytes = 16 << 20
	p.CXLBytes = 16 << 20
	return p
}

func TestNewCluster(t *testing.T) {
	c := MustNew(small(), 3)
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	// Nodes share the engine, device and root FS but have private DRAM.
	if c.Node(0).Eng != c.Node(2).Eng || c.Node(0).Dev != c.Node(1).Dev || c.Node(0).FS != c.Node(1).FS {
		t.Fatal("shared substrate not shared")
	}
	if c.Node(0).Mem == c.Node(1).Mem {
		t.Fatal("nodes share DRAM")
	}
	if c.Node(0).Name == c.Node(1).Name {
		t.Fatal("node names collide")
	}
}

func TestWarmAll(t *testing.T) {
	c := MustNew(small(), 2)
	c.FS.Create("/img/lib.so", 8*4096)
	if err := c.WarmAll("/img/lib.so"); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.PageCache.Pages() != 8 {
			t.Fatalf("%s page cache = %d", n.Name, n.PageCache.Pages())
		}
	}
	if err := c.WarmAll("/missing"); err == nil {
		t.Fatal("warming a missing file succeeded")
	}
}

func TestLocalUsedBytes(t *testing.T) {
	c := MustNew(small(), 2)
	c.Node(0).Mem.MustAlloc()
	c.Node(1).Mem.MustAlloc()
	c.Node(1).Mem.MustAlloc()
	if got := c.LocalUsedBytes(); got != 3*4096 {
		t.Fatalf("LocalUsedBytes = %d", got)
	}
}

func TestZeroNodesErrors(t *testing.T) {
	for _, n := range []int{0, -1} {
		if c, err := New(small(), n); err == nil || c != nil {
			t.Fatalf("New(%d) = %v, %v; want nil, error", n, c, err)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := MustNew(small(), 2)
	if c.Trace != nil {
		t.Fatal("tracer allocated with TraceEnabled false")
	}
	if c.Trace.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	for _, n := range c.Nodes {
		if n.Trace != nil {
			t.Fatalf("%s has a tracer on an untraced cluster", n.Name)
		}
	}
}

func TestTraceSharedAcrossNodes(t *testing.T) {
	p := small()
	p.TraceEnabled = true
	p.TraceBufferCap = 128
	c := MustNew(p, 3)
	if !c.Trace.Enabled() {
		t.Fatal("tracer not allocated with TraceEnabled true")
	}
	for _, n := range c.Nodes {
		if n.Trace != c.Trace {
			t.Fatalf("%s does not share the cluster tracer", n.Name)
		}
	}
	// The cap flows through: the buffer drops past 128 events.
	for i := 0; i < 200; i++ {
		c.Node(0).NewTask("t")
	}
	if c.Trace.Len() != 128 || c.Trace.Dropped() != 200-128 {
		t.Fatalf("buffer cap not honored: len=%d dropped=%d", c.Trace.Len(), c.Trace.Dropped())
	}
}

func TestFaultPlanAlwaysPresent(t *testing.T) {
	c := MustNew(small(), 1)
	if c.Faults == nil {
		t.Fatal("fault plan is nil")
	}
	for i := 0; i < len(c.Nodes); i++ {
		if c.Faults.NodeDown(i) {
			t.Fatalf("node %d down on a fresh cluster", i)
		}
	}
}

func TestNodeAccessorMatchesSlice(t *testing.T) {
	c := MustNew(small(), 3)
	for i, n := range c.Nodes {
		if c.Node(i) != n {
			t.Fatalf("Node(%d) != Nodes[%d]", i, i)
		}
		if n.Index != i {
			t.Fatalf("node %d has Index %d", i, n.Index)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty cluster")
		}
	}()
	MustNew(small(), 0)
}
