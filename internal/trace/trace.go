package trace

import (
	"cxlfork/internal/des"
	"cxlfork/internal/metrics"
)

// SpanID identifies an emitted span. IDs are 1-based; None (0) is the
// root parent and Dropped (-1) marks a span the buffer rejected.
type SpanID int

// Sentinel span IDs.
const (
	// None is the root parent: a span with Parent == None is top-level.
	None SpanID = 0
	// Dropped is returned when a span could not be recorded (buffer full,
	// or its parent was itself dropped). Children of a dropped span are
	// dropped too, keeping the recorded tree closed under parenthood.
	Dropped SpanID = -1
)

// Event categories. Histograms key on Cat + "/" + Name; lane events are
// excluded from histograms (they are sub-phase detail).
const (
	// CatOp marks a whole operation: checkpoint, restore, fork,
	// task-create.
	CatOp = "op"
	// CatPhase marks one phase inside an operation (serialize, copy,
	// attach, global-restore, prefetch...).
	CatPhase = "phase"
	// CatLane marks one pipeline shard on one copy lane.
	CatLane = "lane"
	// CatFault marks a page fault, named by its kernel.FaultKind.
	CatFault = "fault"
	// CatError marks a zero-width failure annotation inside an operation
	// span, named by the step that failed.
	CatError = "error"
	// CatPorter marks autoscaler request service spans (warm-start,
	// fork-restore, scratch-cold).
	CatPorter = "porter"
	// CatCapacity marks CXL capacity-manager activity: watermark reclaim
	// passes (bytes = occupancy delta freed), per-image evictions, and
	// snapshot re-publishes of evicted checkpoints.
	CatCapacity = "capacity"
)

// Track (virtual thread) layout per node. Operations and their phases
// serialize on one track, faults get their own so a fault burst inside
// an operation window never overlaps it on the same timeline, and each
// copy lane renders on its own track so Perfetto shows the pipeline's
// true parallelism. Concurrent autoscaler spans are placed on
// dynamically assigned flow tracks (EmitFlow).
const (
	// TrackOps carries operation and phase spans.
	TrackOps = 0
	// TrackFaults carries fault events.
	TrackFaults = 1
	// TrackLaneBase + lane carries that copy lane's shard spans.
	TrackLaneBase = 2
	// trackFlowBase is where EmitFlow's dynamically assigned tracks
	// start; it bounds the lane count a trace can render distinctly.
	trackFlowBase = 64
)

// DefaultBufferCap is the event capacity used when params leave
// TraceBufferCap zero.
const DefaultBufferCap = 1 << 18

// Event is one recorded span. Begin and Dur are virtual time; zero-Dur
// events are instantaneous annotations.
type Event struct {
	Name   string
	Cat    string
	Node   int
	Track  int
	Begin  des.Time
	Dur    des.Time
	Parent SpanID
	// Bytes is the payload volume the span moved (0 when not meaningful).
	Bytes int64
	// Pages is the page/frame count the span covered (0 when not
	// meaningful).
	Pages int
}

// End returns the span's exclusive end time.
func (e Event) End() des.Time { return e.Begin + e.Dur }

// Tracer records spans into a bounded buffer. The zero value is not
// usable; construct with New. A nil Tracer is the disabled tracer.
type Tracer struct {
	cap      int
	events   []Event
	dropped  int64
	phases   *metrics.PhaseStats
	flowEnds map[int][]des.Time // per node: end time of the last span on each flow track
	// spanFree recycles shard-span buffers between CollectShards and
	// EmitShards (DESIGN.md §13): every checkpoint/restore pipeline
	// borrows one buffer for the duration of its (synchronous) makespan
	// computation, so steady-state tracing allocates no span slices.
	spanFree [][]ShardSpan
}

// New returns an enabled tracer holding at most bufferCap events
// (DefaultBufferCap when <= 0). Once full, further spans are counted in
// Dropped and discarded — the buffer never reallocates past the cap, so
// a runaway scenario degrades to counting instead of consuming memory.
func New(bufferCap int) *Tracer {
	if bufferCap <= 0 {
		bufferCap = DefaultBufferCap
	}
	return &Tracer{
		cap:      bufferCap,
		phases:   metrics.NewPhaseStats(),
		flowEnds: make(map[int][]des.Time),
	}
}

// Enabled reports whether spans are being recorded. It is the guard for
// any caller-side work beyond the Emit call itself (building shard
// observers, formatting names).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one complete span and returns its ID for use as a parent.
// Mechanisms accumulate costs before advancing the clock, so spans are
// emitted with explicit [begin, begin+dur) intervals once the interval
// is known, parents before children. A nil tracer, a full buffer, or a
// dropped parent yields Dropped.
func (t *Tracer) Emit(parent SpanID, node, track int, cat, name string, begin, dur des.Time, bytes int64, pages int) SpanID {
	if t == nil {
		return Dropped
	}
	if dur < 0 {
		panic("trace: negative span duration")
	}
	if parent < 0 || int(parent) > len(t.events) || len(t.events) >= t.cap {
		t.dropped++
		return Dropped
	}
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Node: node, Track: track,
		Begin: begin, Dur: dur, Parent: parent, Bytes: bytes, Pages: pages,
	})
	if cat != CatLane {
		t.phases.Record(cat+"/"+name, dur)
	}
	return SpanID(len(t.events))
}

// EmitFlow records a top-level span on a dynamically assigned per-node
// track, for operations that overlap in virtual time (concurrent
// autoscaler requests on one node's cores). Tracks are assigned
// greedily: the lowest track whose previous span ended by begin, a
// deterministic function of emission order.
func (t *Tracer) EmitFlow(node int, cat, name string, begin, dur des.Time, bytes int64, pages int) SpanID {
	if t == nil {
		return Dropped
	}
	lanes := t.flowEnds[node]
	slot := -1
	for i, end := range lanes {
		if end <= begin {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(lanes)
		lanes = append(lanes, 0)
	}
	lanes[slot] = begin + dur
	t.flowEnds[node] = lanes
	return t.Emit(None, node, trackFlowBase+slot, cat, name, begin, dur, bytes, pages)
}

// Events returns the recorded spans in emission order. The slice is the
// tracer's backing store: callers must not mutate it. A nil tracer
// returns nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many spans the buffer rejected.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Phases returns the per-phase latency histograms (keyed cat/name), or
// nil for a disabled tracer.
func (t *Tracer) Phases() *metrics.PhaseStats {
	if t == nil {
		return nil
	}
	return t.phases
}

// ShardSpan is one pipeline shard's observed execution interval, as
// reported by a des.ShardObserver: shard index, the lane it ran on, and
// its [Start, End) interval relative to the pipeline's own time zero.
type ShardSpan struct {
	Shard, Lane int
	Start, End  des.Time
}

// CollectShards returns a des.ShardObserver that appends each shard's
// interval to the returned slice, for replay as lane spans once the
// containing phase's begin time is known (EmitShards). A disabled
// tracer returns (nil, nil) so the pipeline runs observer-free. The
// backing buffer comes from the tracer's span free list; EmitShards
// returns it, so paired Collect/Emit cycles allocate nothing once
// warm. Error paths that skip EmitShards simply leak the buffer to the
// garbage collector — recycling is an optimization, not an obligation.
func (t *Tracer) CollectShards() (des.ShardObserver, *[]ShardSpan) {
	if t == nil {
		return nil, nil
	}
	var buf []ShardSpan
	if n := len(t.spanFree); n > 0 {
		buf = t.spanFree[n-1][:0]
		t.spanFree = t.spanFree[:n-1]
	}
	spans := &buf
	return func(shard, lane int, start, end des.Time) {
		*spans = append(*spans, ShardSpan{Shard: shard, Lane: lane, Start: start, End: end})
	}, spans
}

// EmitShards emits one lane span per collected shard interval as
// children of parent, shifting pipeline-relative intervals by begin.
// name and pages map a shard index to its span name and unit count.
// The span buffer is recycled into the tracer's free list; the caller
// must not reuse it after this call.
func (t *Tracer) EmitShards(parent SpanID, node int, begin des.Time, spans *[]ShardSpan, name func(shard int) string, pages func(shard int) int) {
	if t == nil || spans == nil {
		return
	}
	for _, s := range *spans {
		t.Emit(parent, node, TrackLaneBase+s.Lane, CatLane, name(s.Shard),
			begin+s.Start, s.End-s.Start, 0, pages(s.Shard))
	}
	t.spanFree = append(t.spanFree, (*spans)[:0])
	*spans = nil
}
