package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/wire"
)

func TestEmitRecordsSpansAndPhases(t *testing.T) {
	tr := New(0)
	op := tr.Emit(None, 0, TrackOps, CatOp, "checkpoint", 100, 50, 4096, 1)
	if op != 1 {
		t.Fatalf("first span ID = %d, want 1", op)
	}
	ph := tr.Emit(op, 0, TrackOps, CatPhase, "copy", 100, 30, 4096, 1)
	if ph != 2 {
		t.Fatalf("second span ID = %d, want 2", ph)
	}
	ln := tr.Emit(ph, 0, TrackLaneBase, CatLane, "pt-leaf", 100, 30, 0, 1)
	if ln != 3 {
		t.Fatalf("lane span ID = %d, want 3", ln)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if got := tr.Events()[1].Parent; got != op {
		t.Errorf("phase parent = %d, want %d", got, op)
	}
	// Histograms key cat/name; lane spans are excluded.
	ps := tr.Phases()
	if r := ps.Recorder("op/checkpoint"); r == nil || r.Count() != 1 || r.Sum() != 50 {
		t.Errorf("op/checkpoint histogram missing or wrong: %+v", r)
	}
	if r := ps.Recorder("phase/copy"); r == nil || r.Count() != 1 {
		t.Errorf("phase/copy histogram missing")
	}
	if r := ps.Recorder("lane/pt-leaf"); r != nil {
		t.Errorf("lane spans must not enter histograms")
	}
}

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.Emit(None, 0, 0, CatOp, "x", 0, 1, 0, 0); id != Dropped {
		t.Errorf("nil Emit = %d, want Dropped", id)
	}
	if id := tr.EmitFlow(0, CatPorter, "x", 0, 1, 0, 0); id != Dropped {
		t.Errorf("nil EmitFlow = %d, want Dropped", id)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Phases() != nil {
		t.Error("nil tracer accessors must return zero values")
	}
	obs, spans := tr.CollectShards()
	if obs != nil || spans != nil {
		t.Error("nil CollectShards must return (nil, nil)")
	}
	tr.EmitShards(None, 0, 0, spans, nil, nil) // must not panic
}

func TestBufferCapDropsAndClosedUnderParenthood(t *testing.T) {
	tr := New(2)
	a := tr.Emit(None, 0, 0, CatOp, "a", 0, 1, 0, 0)
	tr.Emit(a, 0, 0, CatPhase, "b", 0, 1, 0, 0)
	c := tr.Emit(None, 0, 0, CatOp, "c", 2, 1, 0, 0)
	if c != Dropped {
		t.Fatalf("span past cap = %d, want Dropped", c)
	}
	// A child of a dropped span is dropped too.
	if id := tr.Emit(c, 0, 0, CatPhase, "d", 2, 1, 0, 0); id != Dropped {
		t.Fatalf("child of dropped = %d, want Dropped", id)
	}
	if tr.Len() != 2 || tr.Dropped() != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 2 and 2", tr.Len(), tr.Dropped())
	}
}

func TestEmitNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration must panic")
		}
	}()
	New(0).Emit(None, 0, 0, CatOp, "x", 10, -1, 0, 0)
}

func TestEmitFlowAssignsDisjointTracks(t *testing.T) {
	tr := New(0)
	tr.EmitFlow(0, CatPorter, "a", 0, 100, 0, 0)  // slot 0
	tr.EmitFlow(0, CatPorter, "b", 50, 100, 0, 0) // overlaps a -> slot 1
	tr.EmitFlow(0, CatPorter, "c", 100, 10, 0, 0) // a ended -> slot 0 again
	tr.EmitFlow(1, CatPorter, "d", 50, 10, 0, 0)  // other node -> its own slot 0
	ev := tr.Events()
	wantTracks := []int{trackFlowBase, trackFlowBase + 1, trackFlowBase, trackFlowBase}
	for i, want := range wantTracks {
		if ev[i].Track != want {
			t.Errorf("event %d track = %d, want %d", i, ev[i].Track, want)
		}
	}
	if errs := CheckNesting(ev); len(errs) != 0 {
		t.Errorf("flow spans violate nesting: %v", errs)
	}
}

func TestCheckNestingInvariants(t *testing.T) {
	cases := []struct {
		name    string
		events  []Event
		wantErr string // substring; "" means no violations
	}{
		{
			name: "well nested",
			events: []Event{
				{Name: "op", Cat: CatOp, Begin: 0, Dur: 100},
				{Name: "p1", Cat: CatPhase, Begin: 0, Dur: 40, Parent: 1},
				{Name: "p2", Cat: CatPhase, Begin: 40, Dur: 60, Parent: 1},
			},
		},
		{
			name: "zero-width annotation at parent end",
			events: []Event{
				{Name: "op", Cat: CatOp, Begin: 0, Dur: 100},
				{Name: "err", Cat: CatError, Begin: 100, Dur: 0, Parent: 1},
			},
		},
		{
			name: "negative duration",
			events: []Event{
				{Name: "op", Cat: CatOp, Begin: 10, Dur: -5},
			},
			wantErr: "negative duration",
		},
		{
			name: "child escapes parent",
			events: []Event{
				{Name: "op", Cat: CatOp, Begin: 0, Dur: 100},
				{Name: "p", Cat: CatPhase, Begin: 90, Dur: 20, Parent: 1},
			},
			wantErr: "escapes parent",
		},
		{
			name: "parent on another node",
			events: []Event{
				{Name: "op", Cat: CatOp, Node: 0, Begin: 0, Dur: 100},
				{Name: "p", Cat: CatPhase, Node: 1, Begin: 0, Dur: 10, Parent: 1},
			},
			wantErr: "on node",
		},
		{
			name: "forward parent reference",
			events: []Event{
				{Name: "p", Cat: CatPhase, Begin: 0, Dur: 10, Parent: 2},
				{Name: "op", Cat: CatOp, Begin: 0, Dur: 100},
			},
			wantErr: "invalid parent",
		},
		{
			name: "self parent",
			events: []Event{
				{Name: "op", Cat: CatOp, Begin: 0, Dur: 100, Parent: 1},
			},
			wantErr: "invalid parent",
		},
		{
			name: "partial overlap on one track",
			events: []Event{
				{Name: "a", Cat: CatOp, Begin: 0, Dur: 100},
				{Name: "b", Cat: CatOp, Begin: 50, Dur: 100},
			},
			wantErr: "without nesting",
		},
		{
			name: "same interval on different tracks is fine",
			events: []Event{
				{Name: "a", Cat: CatOp, Track: 0, Begin: 0, Dur: 100},
				{Name: "b", Cat: CatFault, Track: 1, Begin: 50, Dur: 100},
			},
		},
		{
			name: "adjacent spans are disjoint",
			events: []Event{
				{Name: "a", Cat: CatOp, Begin: 0, Dur: 50},
				{Name: "b", Cat: CatOp, Begin: 50, Dur: 50},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := CheckNesting(tc.events)
			if tc.wantErr == "" {
				if len(errs) != 0 {
					t.Fatalf("unexpected violations: %v", errs)
				}
				return
			}
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.wantErr) {
					return
				}
			}
			t.Fatalf("no violation containing %q in %v", tc.wantErr, errs)
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Name: "checkpoint", Cat: CatOp, Node: 1, Track: 0, Begin: 10, Dur: 90, Parent: 0, Bytes: 1 << 20, Pages: 256},
		{Name: "copy", Cat: CatPhase, Node: 1, Track: 0, Begin: 20, Dur: 70, Parent: 1, Bytes: 1 << 20, Pages: 256},
		{Name: "pt-leaf", Cat: CatLane, Node: 1, Track: 3, Begin: 20, Dur: 35, Parent: 2, Pages: 128},
	}
	blob := EncodeEvents(events)
	got, err := DecodeEvents(blob)
	if err != nil {
		t.Fatalf("DecodeEvents: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d mismatch: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := EncodeEvents([]Event{{Name: "x", Cat: CatOp, Dur: 5}})
	blob[len(blob)/2] ^= 0x40
	if _, err := DecodeEvents(blob); err == nil {
		t.Fatal("bit flip not detected")
	}
	if _, err := DecodeEvents(blob[:3]); err == nil {
		t.Fatal("truncation not detected")
	}
	// A valid envelope with an unknown format version is corrupt too.
	enc := wire.NewEncoder()
	enc.PutUint(traceFieldVersion, EncodeVersion+1)
	if _, err := DecodeEvents(wire.SealEnvelope(enc.Bytes())); err == nil {
		t.Fatal("future format version not rejected")
	}
}

func TestWriteChromeIsValidJSONAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(0)
		op := tr.Emit(None, 0, TrackOps, CatOp, "checkpoint", 1000, 500, 4096, 1)
		tr.Emit(op, 0, TrackOps, CatPhase, "copy", 1000, 500, 4096, 1)
		tr.Emit(None, 1, TrackFaults, CatFault, "cow-cxl", 1700, 40, 0, 1)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChrome(&a); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := build().WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces serialized differently")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var xEvents int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			xEvents++
		}
	}
	if xEvents != 3 {
		t.Errorf("found %d X events, want 3", xEvents)
	}
	// ts round-trips exactly: 1000ns -> 1.000us.
	if doc.TraceEvents[len(doc.TraceEvents)-3].Ts != 1.0 {
		t.Errorf("first X event ts = %v, want 1.0", doc.TraceEvents[len(doc.TraceEvents)-3].Ts)
	}
}

func TestCollectAndEmitShards(t *testing.T) {
	tr := New(0)
	shards := []des.Shard{
		{Setup: 10},
		{Setup: 5, Units: 64, UnitCost: 2},
		{Setup: 5, Units: 64, UnitCost: 2},
	}
	obs, spans := tr.CollectShards()
	dur := des.PipelineTimeObs(2, 2, 1, shards, obs)
	if len(*spans) != len(shards) {
		t.Fatalf("observed %d shards, want %d", len(*spans), len(shards))
	}
	op := tr.Emit(None, 0, TrackOps, CatOp, "checkpoint", 100, dur, 0, 0)
	copyID := tr.Emit(op, 0, TrackOps, CatPhase, "copy", 100, dur, 0, 0)
	tr.EmitShards(copyID, 0, 100, spans,
		func(int) string { return "pt-leaf" },
		func(i int) int { return shards[i].Units })
	if errs := CheckNesting(tr.Events()); len(errs) != 0 {
		t.Fatalf("shard spans violate nesting: %v", errs)
	}
	for _, e := range tr.Events()[2:] {
		if e.Track < TrackLaneBase {
			t.Errorf("lane span on track %d, want >= %d", e.Track, TrackLaneBase)
		}
		if e.Begin < 100 || e.End() > 100+dur {
			t.Errorf("lane span [%d,%d) outside phase [100,%d)", e.Begin, e.End(), 100+dur)
		}
	}
}

// TestCriticalPathSelection pins the critical-path walk: from every
// root, descend into the direct child finishing last (ties: larger
// duration, then lower span ID), marking the chain.
func TestCriticalPathSelection(t *testing.T) {
	tr := New(0)
	a := tr.Emit(None, 0, TrackOps, CatOp, "restore", 0, 100, 0, 1)
	early := tr.Emit(a, 0, TrackOps, CatPhase, "early", 0, 40, 0, 1)
	long := tr.Emit(a, 0, TrackOps, CatPhase, "long", 40, 60, 0, 1)
	deep := tr.Emit(long, 0, TrackOps, CatPhase, "deep", 40, 60, 0, 1)
	// Ends at 100 like "long", but shorter: the tie breaks on duration.
	late := tr.Emit(a, 0, TrackOps, CatPhase, "late", 95, 5, 0, 1)
	b := tr.Emit(None, 1, TrackOps, CatOp, "checkpoint", 200, 50, 0, 1)

	crit := Critical(tr.Events())
	for _, id := range []SpanID{a, long, deep, b} {
		if !crit[id] {
			t.Fatalf("span %d missing from critical path: %v", id, crit)
		}
	}
	for _, id := range []SpanID{early, late} {
		if crit[id] {
			t.Fatalf("span %d wrongly marked critical: %v", id, crit)
		}
	}

	var plain, marked bytes.Buffer
	if err := tr.WriteChrome(&plain); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeCritical(&marked); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(marked.Bytes(), []byte(`"critical":1`)); n != 4 {
		t.Fatalf("marked trace carries %d critical flags, want 4", n)
	}
	if bytes.Contains(plain.Bytes(), []byte(`"critical"`)) {
		t.Fatal("plain WriteChrome leaked critical marks")
	}
	if !json.Valid(marked.Bytes()) {
		t.Fatal("marked trace is not valid JSON")
	}
}
