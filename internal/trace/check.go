package trace

import (
	"fmt"
	"sort"
)

// CheckNesting audits a recorded event stream against the trace model's
// structural invariants and returns every violation found. It is wired
// into the rforktest cluster invariants, so scenario tests validate the
// trace as they validate refcounts.
//
// The invariants:
//
//  1. Spans are closed intervals: Dur >= 0 (no span "closes before it
//     opens"), and every recorded span is complete — the emit API only
//     records finished spans, so an event with negative duration can
//     only come from a corrupted decode.
//
//  2. Parenthood is well-formed: a span's parent was emitted before it
//     (parent ID < own ID), lives on the same node, and contains it —
//     a parent never closes before its children ([begin, end) child
//     interval inside the parent's).
//
//  3. Per (node, track), spans form a laminar family: any two are
//     disjoint or one contains the other, so each node's timeline is a
//     forest totally ordered by virtual time. Intervals are half-open,
//     so a zero-width annotation at another span's end is disjoint
//     from it.
func CheckNesting(events []Event) []error {
	var errs []error
	for i, e := range events {
		id := SpanID(i + 1)
		if e.Dur < 0 {
			errs = append(errs, fmt.Errorf("trace: span %d %s/%s has negative duration %d", id, e.Cat, e.Name, e.Dur))
			continue
		}
		if e.Parent == None {
			continue
		}
		if e.Parent < None || e.Parent >= id {
			errs = append(errs, fmt.Errorf("trace: span %d %s/%s has invalid parent %d", id, e.Cat, e.Name, e.Parent))
			continue
		}
		p := events[e.Parent-1]
		if p.Node != e.Node {
			errs = append(errs, fmt.Errorf("trace: span %d %s/%s on node %d has parent %d on node %d",
				id, e.Cat, e.Name, e.Node, e.Parent, p.Node))
		}
		if e.Begin < p.Begin || e.End() > p.End() {
			errs = append(errs, fmt.Errorf("trace: span %d %s/%s [%d,%d) escapes parent %d %s/%s [%d,%d)",
				id, e.Cat, e.Name, e.Begin, e.End(), e.Parent, p.Cat, p.Name, p.Begin, p.End()))
		}
	}
	errs = append(errs, checkLaminar(events)...)
	return errs
}

// checkLaminar verifies that spans sharing a (node, track) timeline are
// pairwise disjoint or nested.
func checkLaminar(events []Event) []error {
	var errs []error
	type key struct{ node, track int }
	byTrack := make(map[key][]int)
	var keys []key
	for i, e := range events {
		if e.Dur < 0 {
			continue // already reported
		}
		k := key{e.Node, e.Track}
		if _, ok := byTrack[k]; !ok {
			keys = append(keys, k)
		}
		byTrack[k] = append(byTrack[k], i)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].track < keys[j].track
	})
	for _, k := range keys {
		idx := byTrack[k]
		// Sweep in (begin asc, end desc) order so a containing span is
		// visited before the spans it contains.
		sort.SliceStable(idx, func(a, b int) bool {
			ea, eb := events[idx[a]], events[idx[b]]
			if ea.Begin != eb.Begin {
				return ea.Begin < eb.Begin
			}
			return ea.End() > eb.End()
		})
		var stack []int
		for _, i := range idx {
			e := events[i]
			for len(stack) > 0 && events[stack[len(stack)-1]].End() <= e.Begin {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := events[stack[len(stack)-1]]
				if e.End() > top.End() {
					errs = append(errs, fmt.Errorf(
						"trace: node %d track %d: span %d %s/%s [%d,%d) overlaps span %d %s/%s [%d,%d) without nesting",
						k.node, k.track, SpanID(i+1), e.Cat, e.Name, e.Begin, e.End(),
						SpanID(stack[len(stack)-1]+1), top.Cat, top.Name, top.Begin, top.End()))
					continue
				}
			}
			if e.Dur > 0 {
				stack = append(stack, i)
			}
		}
	}
	return errs
}
