// Package trace implements a zero-overhead-when-disabled virtual-time
// span tracer for the simulation. Every checkpoint, restore, fork, and
// fault step records a span stamped with des.Time — node, operation,
// phase, bytes, pages — and spans nest: an operation span contains its
// phase spans, a copy phase contains the per-shard lane spans the
// pipeline scheduler observed. The event stream exports to Chrome
// trace_event JSON (viewable in Perfetto, chrome.go), to a compact
// checksummed binary form (encode.go), and folds into per-phase latency
// histograms (metrics.PhaseStats).
//
// The tracer is pull-free and purely observational: it never advances a
// clock or touches simulation state, so enabling it cannot change any
// simulated result — the golden fingerprint tests enforce this. All
// methods are nil-safe; a nil *Tracer is the disabled tracer, and the
// only cost on the disabled path is a nil check.
//
// Determinism: events append in emission order, which is a pure function
// of the (seeded) simulation, and the exporters iterate in that order or
// in sorted orders — identical seeds yield byte-identical traces.
//
// Entry points: New (a nil Tracer is the disabled tracer); Emit,
// EmitFlow and EmitShards record spans, EncodeEvents and DecodeEvents
// round-trip the binary form, and CheckNesting validates span
// structure.
package trace
