package trace

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/wire"
)

// Binary trace format: a wire-encoded record sequence wrapped in a
// checksummed envelope, the same substrate the checkpoint images use.
// Field 1 is a format version varint; each event is one nested message
// in field 2. Unknown event fields are skipped on decode, so the format
// can grow without breaking old readers.

// Envelope record field tags.
const (
	traceFieldVersion = 1
	traceFieldEvent   = 2

	evFieldName   = 1
	evFieldCat    = 2
	evFieldNode   = 3
	evFieldTrack  = 4
	evFieldBegin  = 5
	evFieldDur    = 6
	evFieldParent = 7
	evFieldBytes  = 8
	evFieldPages  = 9
)

// EncodeVersion is the current binary trace format version.
const EncodeVersion = 1

// EncodeEvents serializes events into a checksummed trace envelope.
func EncodeEvents(events []Event) []byte {
	enc := wire.NewEncoder()
	enc.PutUint(traceFieldVersion, EncodeVersion)
	for _, e := range events {
		ev := wire.NewEncoder()
		ev.PutString(evFieldName, e.Name)
		ev.PutString(evFieldCat, e.Cat)
		ev.PutUint(evFieldNode, uint64(e.Node))
		ev.PutUint(evFieldTrack, uint64(e.Track))
		ev.PutInt(evFieldBegin, int64(e.Begin))
		ev.PutInt(evFieldDur, int64(e.Dur))
		ev.PutInt(evFieldParent, int64(e.Parent))
		ev.PutInt(evFieldBytes, e.Bytes)
		ev.PutInt(evFieldPages, int64(e.Pages))
		enc.PutMessage(traceFieldEvent, ev)
	}
	return wire.SealEnvelope(enc.Bytes())
}

// DecodeEvents verifies and parses a trace envelope produced by
// EncodeEvents. Corruption surfaces as an error wrapping
// wire.ErrCorrupt; the checksum rejects bit flips before any field is
// interpreted.
func DecodeEvents(blob []byte) ([]Event, error) {
	payload, err := wire.OpenEnvelope(blob)
	if err != nil {
		return nil, fmt.Errorf("trace: envelope: %w", err)
	}
	var events []Event
	d := wire.NewDecoder(payload)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		switch field {
		case traceFieldVersion:
			v, err := d.Uint()
			if err != nil {
				return nil, fmt.Errorf("trace: version: %w", err)
			}
			if v != EncodeVersion {
				return nil, fmt.Errorf("%w: trace format version %d, want %d", wire.ErrCorrupt, v, EncodeVersion)
			}
		case traceFieldEvent:
			b, err := d.Bytes()
			if err != nil {
				return nil, fmt.Errorf("trace: event record: %w", err)
			}
			e, err := decodeEvent(b)
			if err != nil {
				return nil, err
			}
			events = append(events, e)
		default:
			if err := d.Skip(wt); err != nil {
				return nil, fmt.Errorf("trace: %w", err)
			}
		}
	}
	return events, nil
}

func decodeEvent(b []byte) (Event, error) {
	var e Event
	d := wire.NewDecoder(b)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return e, fmt.Errorf("trace: event field: %w", err)
		}
		switch field {
		case evFieldName:
			s, err := d.String()
			if err != nil {
				return e, fmt.Errorf("trace: event name: %w", err)
			}
			e.Name = s
		case evFieldCat:
			s, err := d.String()
			if err != nil {
				return e, fmt.Errorf("trace: event cat: %w", err)
			}
			e.Cat = s
		case evFieldNode:
			v, err := d.Uint()
			if err != nil {
				return e, fmt.Errorf("trace: event node: %w", err)
			}
			e.Node = int(v)
		case evFieldTrack:
			v, err := d.Uint()
			if err != nil {
				return e, fmt.Errorf("trace: event track: %w", err)
			}
			e.Track = int(v)
		case evFieldBegin:
			v, err := d.Int()
			if err != nil {
				return e, fmt.Errorf("trace: event begin: %w", err)
			}
			e.Begin = des.Time(v)
		case evFieldDur:
			v, err := d.Int()
			if err != nil {
				return e, fmt.Errorf("trace: event dur: %w", err)
			}
			e.Dur = des.Time(v)
		case evFieldParent:
			v, err := d.Int()
			if err != nil {
				return e, fmt.Errorf("trace: event parent: %w", err)
			}
			e.Parent = SpanID(v)
		case evFieldBytes:
			v, err := d.Int()
			if err != nil {
				return e, fmt.Errorf("trace: event bytes: %w", err)
			}
			e.Bytes = v
		case evFieldPages:
			v, err := d.Int()
			if err != nil {
				return e, fmt.Errorf("trace: event pages: %w", err)
			}
			e.Pages = int(v)
		default:
			if err := d.Skip(wt); err != nil {
				return e, fmt.Errorf("trace: event field %d: %w", field, err)
			}
		}
	}
	return e, nil
}
