package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cxlfork/internal/des"
)

// WriteChrome writes the trace in Chrome trace_event JSON ("X" complete
// events), viewable in Perfetto or chrome://tracing. Each node renders
// as one process (pid = node index) and each track as one thread
// (tid = track). Timestamps and durations are microseconds with
// nanosecond precision (three decimals), so the integer virtual-time
// nanoseconds round-trip exactly.
//
// Output is deterministic: metadata rows are sorted by (node, track)
// and events follow in emission order, so identical simulations yield
// byte-identical files.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return t.writeChrome(w, nil)
}

// WriteChromeCritical is WriteChrome with each root span's critical
// path marked: spans on the path carry "critical":1 in their args, so
// a Perfetto query (or any JSON reader) can isolate the chain that set
// the end-to-end latency. Readers that don't know the key ignore it —
// the rest of the file is byte-identical to WriteChrome's.
func (t *Tracer) WriteChromeCritical(w io.Writer) error {
	return t.writeChrome(w, Critical(t.Events()))
}

// Critical returns the span IDs on every root span's critical path:
// from each parentless span, repeatedly descend into the direct child
// whose interval ends last (ties broken by longer duration, then lower
// span ID — a total order, so the marking is deterministic).
func Critical(events []Event) map[SpanID]bool {
	children := make(map[SpanID][]SpanID)
	for i := range events {
		if p := events[i].Parent; p != None {
			children[p] = append(children[p], SpanID(i+1))
		}
	}
	marked := make(map[SpanID]bool)
	var descend func(id SpanID)
	descend = func(id SpanID) {
		marked[id] = true
		kids := children[id]
		if len(kids) == 0 {
			return
		}
		best := kids[0]
		for _, k := range kids[1:] {
			be, ke := events[best-1].End(), events[k-1].End()
			if ke > be || (ke == be && events[k-1].Dur > events[best-1].Dur) {
				best = k
			}
		}
		descend(best)
	}
	for i := range events {
		if events[i].Parent == None {
			descend(SpanID(i + 1))
		}
	}
	return marked
}

func (t *Tracer) writeChrome(w io.Writer, critical map[SpanID]bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}

	// Name every (node, track) pair that appears, sorted.
	type nt struct{ node, track int }
	seen := make(map[nt]bool)
	var pairs []nt
	for _, e := range t.Events() {
		k := nt{e.Node, e.Track}
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].node != pairs[j].node {
			return pairs[i].node < pairs[j].node
		}
		return pairs[i].track < pairs[j].track
	})
	lastNode := -1
	for _, k := range pairs {
		if k.node != lastNode {
			lastNode = k.node
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"node%d"}}`, k.node, k.node))
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`, k.node, k.track, trackName(k.track)))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, k.node, k.track, k.track))
	}

	for i, e := range t.Events() {
		mark := ""
		if critical[SpanID(i+1)] {
			mark = `,"critical":1`
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":%q,"args":{"span":%d,"parent":%d,"bytes":%d,"pages":%d%s}}`,
			e.Node, e.Track, usec(e.Begin), usec(e.Dur), e.Name, e.Cat,
			i+1, int(e.Parent), e.Bytes, e.Pages, mark))
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders virtual nanoseconds as microseconds with three decimals
// (exact for the int64 magnitudes the simulation produces).
func usec(t des.Time) string {
	return strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64)
}

// trackName labels a track for the trace viewer's thread list.
func trackName(track int) string {
	switch {
	case track == TrackOps:
		return "ops"
	case track == TrackFaults:
		return "faults"
	case track >= trackFlowBase:
		return fmt.Sprintf("req %d", track-trackFlowBase)
	default:
		return fmt.Sprintf("lane %d", track-TrackLaneBase)
	}
}
