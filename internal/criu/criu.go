// Package criu implements the CRIU-CXL baseline (paper §2.3.1, §6.2):
// the state-of-practice checkpoint/restore framework, given the benefit
// of CXL by placing its image files on an in-CXL-memory filesystem
// shared between nodes (so no network file copies). It still serializes
// everything — OS state and every memory page — into protobuf-style
// records, and its restore deserializes the full image and copies all
// data into local memory. Clean pages of private file mappings are not
// checkpointed (CRIU's behaviour, §7.1); the child faults them from the
// page cache lazily.
package criu

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// Image is a CRIU checkpoint: a serialized image file on cxlfs.
type Image struct {
	id    string
	fs    *fsim.CXLFS
	file  string
	pages int
	size  int64
	refs  rfork.RefCount
}

var _ rfork.Image = (*Image)(nil)

// ID returns the checkpoint ID.
func (im *Image) ID() string { return im.id }

// Mechanism returns "CRIU-CXL".
func (im *Image) Mechanism() string { return "CRIU-CXL" }

// CXLBytes returns the image file size on the CXL filesystem.
func (im *Image) CXLBytes() int64 { return im.size }

// LocalBytes is zero: the image is fully decoupled from the parent node.
func (im *Image) LocalBytes() int64 { return 0 }

// Pages returns the number of page records in the image.
func (im *Image) Pages() int { return im.pages }

// Refs returns the reference count.
func (im *Image) Refs() int { return im.refs.Count() }

// Retain adds a reference.
func (im *Image) Retain() { im.refs.Retain() }

// Release drops a reference; at zero the image file is deleted.
// Releasing a dead image is a no-op.
func (im *Image) Release() {
	if im.refs.Release() {
		im.fs.Remove(im.file)
	}
}

// Mechanism is the CRIU-CXL rfork.Mechanism.
type Mechanism struct {
	// FS is the shared in-CXL-memory filesystem holding image files.
	FS *fsim.CXLFS
	// Faults is the fault-injection plan consulted at step boundaries.
	// May be nil (no faults).
	Faults *faultinject.Plan
}

// New returns the CRIU-CXL mechanism writing images to fs.
func New(fs *fsim.CXLFS) *Mechanism { return &Mechanism{FS: fs} }

// Name returns "CRIU-CXL".
func (m *Mechanism) Name() string { return "CRIU-CXL" }

// Image message field tags.
const (
	fieldVMA    = 1
	fieldGlobal = 2
	fieldPage   = 3

	pageFieldVPN   = 1
	pageFieldToken = 2
)

// pageShard is the page-dump granularity one worker lane claims at a
// time, mirroring CRIU's page-pipe batches. Page serialization has no
// per-VMA grouping in the image format, so lanes shard the flat page
// run in these chunks.
const pageShard = 128

// Checkpoint serializes the full process state — OS metadata and every
// non-clean-file memory page — into an image file on cxlfs.
func (m *Mechanism) Checkpoint(parent *kernel.Task, id string) (rfork.Image, error) {
	o := parent.OS
	p := o.P
	if err := m.Faults.At(faultinject.StepCheckpointVMA, o.Index); err != nil {
		return nil, err
	}
	var cost des.Time

	enc := wire.NewEncoder()
	vmaCount := 0
	parent.MM.VMAs.Walk(func(v vma.VMA) {
		enc.PutBytes(fieldVMA, rfork.EncodeVMA(v))
		vmaCount++
		cost += p.CRIURecordEncode
	})
	gs := rfork.CaptureGlobalState(parent)
	enc.PutBytes(fieldGlobal, gs.Encode())
	cost += des.Time(len(gs.FDs)) * p.CRIURecordEncode
	cost += p.CRIURecordEncode // task metadata record

	pages := 0
	parent.MM.PT.Walk(func(va pt.VirtAddr, leaf *pt.Leaf, i int) {
		e := leaf.PTEs[i]
		if e.Flags.Has(pt.FileBacked) {
			return // clean private file pages are re-faulted, not imaged
		}
		var src *memsim.Frame
		if e.Flags.Has(pt.OnCXL) {
			src = o.Dev.Pool().Frame(int(e.PFN))
		} else {
			src = o.Mem.Frame(int(e.PFN))
		}
		pg := wire.NewEncoder()
		pg.PutUint(pageFieldVPN, va.PageNumber())
		pg.PutUint(pageFieldToken, src.Data)
		enc.PutMessage(fieldPage, pg)
		pages++
	})
	// Page dumps run on the checkpoint lanes; the encoded stream goes to
	// the in-CXL-memory filesystem, so the copies contend on the fabric
	// streams. One lane charges the exact serial per-page sum.
	cost += des.PipelineTime(p.CheckpointLanes, p.FabricStreams, p.LaneDispatch,
		des.UniformShards(pages, pageShard, 0, m.Faults.Scale(p.CRIUPageSerialize)))

	logical := int64(pages)*int64(p.PageSize) + int64(vmaCount+len(gs.FDs)+1)*64
	file := "criu-" + id + ".img"
	if err := m.Faults.At(faultinject.StepCheckpointGlobal, o.Index); err != nil {
		return nil, err
	}
	// The whole image goes through a checksummed envelope so Restore can
	// reject a torn or bit-flipped file before reconstructing anything.
	blob := wire.SealEnvelope(enc.Bytes())
	m.Faults.Corrupt(faultinject.StepCheckpointGlobal, o.Index, id, blob)
	if err := m.FS.Write(file, blob, logical); err != nil {
		return nil, err
	}
	o.Eng.Advance(cost)
	return &Image{id: id, fs: m.FS, file: file, pages: pages, size: logical, refs: rfork.NewRefCount()}, nil
}

// Restore deserializes the image on the child's node, reconstructing
// every VMA, reopening every descriptor, and copying every imaged page
// into local memory.
func (m *Mechanism) Restore(child *kernel.Task, img rfork.Image, _ rfork.Options) error {
	im, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("criu: image %s is %T, not a CRIU image", img.ID(), img)
	}
	o := child.OS
	p := o.P
	if err := m.Faults.At(faultinject.StepRestoreAttach, o.Index); err != nil {
		return err
	}
	if im.refs.Count() <= 0 {
		return fmt.Errorf("criu: restore from reclaimed image %s", im.id)
	}
	envelope, err := m.FS.Read(im.file)
	if err != nil {
		return err
	}

	// Validate and fully decode the image before mutating the child: a
	// damaged file must surface as ErrImageCorrupt with the child
	// untouched, never as a half-reconstructed address space.
	blob, err := wire.OpenEnvelope(envelope)
	if err != nil {
		return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
	}
	var cost des.Time
	var gs rfork.GlobalState
	var haveGS bool
	var vmas []vma.VMA
	type pageRec struct {
		vpn   uint64
		token uint64
	}
	var pageRecs []pageRec

	d := wire.NewDecoder(blob)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
		}
		switch field {
		case fieldVMA:
			b, err := d.Bytes()
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			v, err := rfork.DecodeVMA(b)
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			vmas = append(vmas, v) // decode+reconstruct cost folded into the lane pipeline below
		case fieldGlobal:
			b, err := d.Bytes()
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			gs, err = rfork.DecodeGlobalState(b)
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			haveGS = true
			cost += des.Time(len(gs.FDs)) * p.CRIURecordDecode
		case fieldPage:
			b, err := d.Bytes()
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			rec, err := decodePage(b)
			if err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
			pageRecs = append(pageRecs, pageRec{rec.vpn, rec.token})
		default:
			if err := d.Skip(wt); err != nil {
				return fmt.Errorf("criu: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err)
			}
		}
	}
	if !haveGS {
		return fmt.Errorf("criu: image %s has no global state: %w", im.id, rfork.ErrImageCorrupt)
	}

	// Decode succeeded; reconstruct the child.
	for _, v := range vmas {
		if _, err := child.MM.VMAs.Insert(v); err != nil {
			return err
		}
	}

	// Copy every imaged page into local memory and map it.
	for _, rec := range pageRecs {
		va := pt.VirtAddr(rec.vpn << pt.PageShift)
		v := child.MM.VMAs.Find(va)
		if v == nil {
			return fmt.Errorf("criu: page %#x outside any restored VMA", rec.vpn)
		}
		f, err := o.Mem.Alloc()
		if err != nil {
			return err
		}
		f.Data = rec.token
		flags := pt.Accessed
		if v.Prot&vma.Write != 0 {
			flags |= pt.Writable
		}
		child.MM.MapFrame(va, f, flags)
		o.Mem.Put(f) // MapFrame took the mapping reference
	}
	// VMA record decode/reconstruct and page copy-in run on the restore
	// lanes, reading the image off the CXL filesystem through the fabric
	// streams. Each VMA is one metadata shard; pages shard in chunks.
	shards := make([]des.Shard, 0, len(vmas))
	for range vmas {
		shards = append(shards, des.Shard{Setup: p.CRIURecordDecode + p.VMAReconstruct})
	}
	shards = append(shards, des.UniformShards(len(pageRecs), pageShard, 0, m.Faults.Scale(p.CRIUPageRestore))...)
	cost += des.PipelineTime(p.RestoreLanes, p.FabricStreams, p.LaneDispatch, shards)

	o.Eng.Advance(cost)
	if err := rfork.RestoreGlobalState(child, gs); err != nil {
		return err
	}

	im.Retain()
	child.MM.OnExit(im.Release)
	return nil
}

type pageRecord struct {
	vpn   uint64
	token uint64
}

func decodePage(b []byte) (pageRecord, error) {
	var rec pageRecord
	d := wire.NewDecoder(b)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return rec, err
		}
		switch field {
		case pageFieldVPN:
			v, err := d.Uint()
			if err != nil {
				return rec, err
			}
			rec.vpn = v
		case pageFieldToken:
			v, err := d.Uint()
			if err != nil {
				return rec, err
			}
			rec.token = v
		default:
			if err := d.Skip(wt); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}
