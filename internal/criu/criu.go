package criu

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/params"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// Image is a CRIU checkpoint: a serialized image file on cxlfs.
type Image struct {
	id    string
	fs    *fsim.CXLFS
	file  string
	pages int
	size  int64
	refs  rfork.RefCount
}

var _ rfork.Image = (*Image)(nil)

// ID returns the checkpoint ID.
func (im *Image) ID() string { return im.id }

// Mechanism returns "CRIU-CXL".
func (im *Image) Mechanism() string { return "CRIU-CXL" }

// CXLBytes returns the image file size on the CXL filesystem.
func (im *Image) CXLBytes() int64 { return im.size }

// LocalBytes is zero: the image is fully decoupled from the parent node.
func (im *Image) LocalBytes() int64 { return 0 }

// Pages returns the number of page records in the image.
func (im *Image) Pages() int { return im.pages }

// Refs returns the reference count.
func (im *Image) Refs() int { return im.refs.Count() }

// Retain adds a reference.
func (im *Image) Retain() { im.refs.Retain() }

// Release drops a reference; at zero the image file is deleted.
// Releasing a dead image is a no-op.
func (im *Image) Release() {
	if im.refs.Release() {
		im.fs.Remove(im.file)
	}
}

// Mechanism is the CRIU-CXL rfork.Mechanism.
type Mechanism struct {
	// FS is the shared in-CXL-memory filesystem holding image files.
	FS *fsim.CXLFS
	// Faults is the fault-injection plan consulted at step boundaries.
	// May be nil (no faults).
	Faults *faultinject.Plan
}

// New returns the CRIU-CXL mechanism writing images to fs.
func New(fs *fsim.CXLFS) *Mechanism { return &Mechanism{FS: fs} }

// Name returns "CRIU-CXL".
func (m *Mechanism) Name() string { return "CRIU-CXL" }

// Image message field tags.
const (
	fieldVMA    = 1
	fieldGlobal = 2
	fieldPage   = 3

	pageFieldVPN   = 1
	pageFieldToken = 2
)

// pageShard is the page-dump granularity one worker lane claims at a
// time, mirroring CRIU's page-pipe batches. Page serialization has no
// per-VMA grouping in the image format, so lanes shard the flat page
// run in these chunks.
const pageShard = 128

// Checkpoint serializes the full process state — OS metadata and every
// non-clean-file memory page — into an image file on cxlfs.
func (m *Mechanism) Checkpoint(parent *kernel.Task, id string) (rfork.Image, error) {
	o := parent.OS
	p := o.P
	t0 := o.Eng.Now()
	if err := m.Faults.At(faultinject.StepCheckpointVMA, o.Index); err != nil {
		o.TraceOpError("checkpoint", t0, "vma")
		return nil, err
	}
	var cost des.Time

	enc := wire.NewEncoder()
	vmaCount := 0
	parent.MM.VMAs.Walk(func(v vma.VMA) {
		enc.PutBytes(fieldVMA, rfork.EncodeVMA(v))
		vmaCount++
		cost += p.CRIURecordEncode
	})
	gs := rfork.CaptureGlobalState(parent)
	enc.PutBytes(fieldGlobal, gs.Encode())
	cost += des.Time(len(gs.FDs)) * p.CRIURecordEncode
	cost += p.CRIURecordEncode // task metadata record

	pages := 0
	parent.MM.PT.Walk(func(va pt.VirtAddr, leaf *pt.Leaf, i int) {
		e := leaf.PTEs[i]
		if e.Flags.Has(pt.FileBacked) {
			return // clean private file pages are re-faulted, not imaged
		}
		var src *memsim.Frame
		if e.Flags.Has(pt.OnCXL) {
			src = o.Dev.Pool().Frame(int(e.PFN))
		} else {
			src = o.Mem.Frame(int(e.PFN))
		}
		pg := wire.NewEncoder()
		pg.PutUint(pageFieldVPN, va.PageNumber())
		pg.PutUint(pageFieldToken, src.Data)
		enc.PutMessage(fieldPage, pg)
		pages++
	})
	// Page dumps run on the checkpoint lanes; the encoded stream goes to
	// the in-CXL-memory filesystem, so the copies contend on the fabric
	// streams. One lane charges the exact serial per-page sum.
	encCost := cost
	shards := des.UniformShards(pages, pageShard, 0, m.Faults.Scale(p.CRIUPageSerialize))
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	pipeDur := des.PipelineTimeObs(p.CheckpointLanes, p.FabricStreams, p.LaneDispatch, shards, obs)
	cost += pipeDur

	logical := int64(pages)*int64(p.PageSize) + int64(vmaCount+len(gs.FDs)+1)*64
	file := "criu-" + id + ".img"
	if err := m.Faults.At(faultinject.StepCheckpointGlobal, o.Index); err != nil {
		o.TraceOpError("checkpoint", t0, "global")
		return nil, err
	}
	// The whole image goes through a checksummed envelope so Restore can
	// reject a torn or bit-flipped file before reconstructing anything.
	blob := wire.SealEnvelope(enc.Bytes())
	m.Faults.Corrupt(faultinject.StepCheckpointGlobal, o.Index, id, blob)
	if err := m.FS.Write(file, blob, logical); err != nil {
		o.TraceOpError("checkpoint", t0, "write")
		return nil, err
	}
	o.Eng.Advance(cost)
	if o.Trace.Enabled() {
		node := o.Index
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "checkpoint",
			t0, cost, logical, pages)
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "serialize", t0, encCost, 0, 0)
		dumpID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "page-dump",
			t0+encCost, pipeDur, int64(pages)*int64(p.PageSize), pages)
		o.Trace.EmitShards(dumpID, node, t0+encCost, laneSpans,
			func(int) string { return "page-batch" },
			func(i int) int { return shards[i].Units })
	}
	return &Image{id: id, fs: m.FS, file: file, pages: pages, size: logical, refs: rfork.NewRefCount()}, nil
}

// Restore deserializes the image on the child's node, reconstructing
// every VMA, reopening every descriptor, and copying every imaged page
// into local memory.
func (m *Mechanism) Restore(child *kernel.Task, img rfork.Image, _ rfork.Options) error {
	im, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("criu: image %s is %T, not a CRIU image", img.ID(), img)
	}
	o := child.OS
	p := o.P
	t0 := o.Eng.Now()
	if err := m.Faults.At(faultinject.StepRestoreAttach, o.Index); err != nil {
		o.TraceOpError("restore", t0, "attach")
		return err
	}
	if im.refs.Count() <= 0 {
		o.TraceOpError("restore", t0, "validate")
		return fmt.Errorf("criu: restore from reclaimed image %s", im.id)
	}
	envelope, err := m.FS.Read(im.file)
	if err != nil {
		o.TraceOpError("restore", t0, "read")
		return err
	}

	// Validate and fully decode the image before mutating the child: a
	// damaged file must surface as ErrImageCorrupt with the child
	// untouched, never as a half-reconstructed address space.
	gs, vmas, pageRecs, cost, err := decodeImage(im.id, envelope, p)
	if err != nil {
		o.TraceOpError("restore", t0, "decode")
		return err
	}

	// Decode succeeded; reconstruct the child.
	for _, v := range vmas {
		if _, err := child.MM.VMAs.Insert(v); err != nil {
			o.TraceOpError("restore", t0, "attach")
			return err
		}
	}

	// Copy every imaged page into local memory and map it.
	for _, rec := range pageRecs {
		va := pt.VirtAddr(rec.vpn << pt.PageShift)
		v := child.MM.VMAs.Find(va)
		if v == nil {
			o.TraceOpError("restore", t0, "attach")
			return fmt.Errorf("criu: page %#x outside any restored VMA", rec.vpn)
		}
		f, err := o.Mem.Alloc()
		if err != nil {
			o.TraceOpError("restore", t0, "alloc")
			return err
		}
		f.Data = rec.token
		flags := pt.Accessed
		if v.Prot&vma.Write != 0 {
			flags |= pt.Writable
		}
		child.MM.MapFrame(va, f, flags)
		o.Mem.Put(f) // MapFrame took the mapping reference
	}
	// VMA record decode/reconstruct and page copy-in run on the restore
	// lanes, reading the image off the CXL filesystem through the fabric
	// streams. Each VMA is one metadata shard; pages shard in chunks.
	decCost := cost
	shards := make([]des.Shard, 0, len(vmas))
	for range vmas {
		shards = append(shards, des.Shard{Setup: p.CRIURecordDecode + p.VMAReconstruct})
	}
	shards = append(shards, des.UniformShards(len(pageRecs), pageShard, 0, m.Faults.Scale(p.CRIUPageRestore))...)
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	pipeDur := des.PipelineTimeObs(p.RestoreLanes, p.FabricStreams, p.LaneDispatch, shards, obs)
	cost += pipeDur

	o.Eng.Advance(cost)
	gBegin := t0 + cost
	if err := rfork.RestoreGlobalState(child, gs); err != nil {
		o.TraceOpError("restore", t0, "global")
		return err
	}
	gEnd := o.Eng.Now()

	im.Retain()
	child.MM.OnExit(im.Release)
	if o.Trace.Enabled() {
		node := o.Index
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "restore",
			t0, gEnd-t0, im.size, im.pages)
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "decode", t0, decCost, 0, 0)
		restID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "page-restore",
			t0+decCost, pipeDur, int64(len(pageRecs))*int64(p.PageSize), len(pageRecs))
		o.Trace.EmitShards(restID, node, t0+decCost, laneSpans,
			func(i int) string {
				if i < len(vmas) {
					return "vma-record"
				}
				return "page-batch"
			},
			func(i int) int { return shards[i].Units })
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "global-restore", gBegin, gEnd-gBegin, 0, 0)
	}
	return nil
}

// decodeImage verifies the envelope and fully decodes a CRIU image into
// its global state, VMA records, and page records, along with the
// serial record-decode cost. Any damage surfaces as ErrImageCorrupt.
func decodeImage(id string, envelope []byte, p params.Params) (rfork.GlobalState, []vma.VMA, []pageRecord, des.Time, error) {
	var gs rfork.GlobalState
	var cost des.Time
	corrupt := func(err error) error {
		return fmt.Errorf("criu: image %s: %w: %v", id, rfork.ErrImageCorrupt, err)
	}
	blob, err := wire.OpenEnvelope(envelope)
	if err != nil {
		return gs, nil, nil, 0, corrupt(err)
	}
	var haveGS bool
	var vmas []vma.VMA
	var pageRecs []pageRecord

	d := wire.NewDecoder(blob)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return gs, nil, nil, 0, corrupt(err)
		}
		switch field {
		case fieldVMA:
			b, err := d.Bytes()
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			v, err := rfork.DecodeVMA(b)
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			vmas = append(vmas, v) // decode+reconstruct cost folded into the lane pipeline
		case fieldGlobal:
			b, err := d.Bytes()
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			gs, err = rfork.DecodeGlobalState(b)
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			haveGS = true
			cost += des.Time(len(gs.FDs)) * p.CRIURecordDecode
		case fieldPage:
			b, err := d.Bytes()
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			rec, err := decodePage(b)
			if err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
			pageRecs = append(pageRecs, rec)
		default:
			if err := d.Skip(wt); err != nil {
				return gs, nil, nil, 0, corrupt(err)
			}
		}
	}
	if !haveGS {
		return gs, nil, nil, 0, fmt.Errorf("criu: image %s has no global state: %w", id, rfork.ErrImageCorrupt)
	}
	return gs, vmas, pageRecs, cost, nil
}

type pageRecord struct {
	vpn   uint64
	token uint64
}

func decodePage(b []byte) (pageRecord, error) {
	var rec pageRecord
	d := wire.NewDecoder(b)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return rec, err
		}
		switch field {
		case pageFieldVPN:
			v, err := d.Uint()
			if err != nil {
				return rec, err
			}
			rec.vpn = v
		case pageFieldToken:
			v, err := d.Uint()
			if err != nil {
				return rec, err
			}
			rec.token = v
		default:
			if err := d.Skip(wt); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}
