package criu_test

import (
	"testing"

	"cxlfork/internal/criu"
	"cxlfork/internal/kernel"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/rforktest"
)

func TestCheckpointSkipsCleanFilePages(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := criu.New(c.CXLFS)
	img, err := mech.Checkpoint(parent, "c1")
	if err != nil {
		t.Fatal(err)
	}
	// Only the anonymous heap is imaged; clean library pages are not.
	if img.Pages() != rforktest.HeapPages {
		t.Fatalf("imaged %d pages, want %d (anon only)", img.Pages(), rforktest.HeapPages)
	}
	if img.CXLBytes() < int64(img.Pages())*4096 {
		t.Fatalf("image size %d smaller than page payload", img.CXLBytes())
	}
	if c.CXLFS.Files() != 1 {
		t.Fatal("image file not on cxlfs")
	}
}

func TestRestoreCopiesEverythingLocal(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	snap := rforktest.SnapshotTokens(parent)
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c2")

	child := c.Node(1).NewTask("clone")
	used := c.Node(1).Mem.UsedPages()
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	// All imaged pages are local immediately after restore.
	if got := c.Node(1).Mem.UsedPages() - used; got != rforktest.HeapPages {
		t.Fatalf("restore allocated %d local pages, want %d", got, rforktest.HeapPages)
	}
	if got := child.MM.ResidentCXLPages(); got != 0 {
		t.Fatalf("CRIU left %d CXL mappings", got)
	}
	rforktest.VerifyCloneContent(t, child, snap)
	// Library pages came back via page-cache faults, not the image.
	if child.MM.Stats.Faults.Count(kernel.FaultFileMinor) != rforktest.LibPages {
		t.Fatalf("file minors = %d, want %d",
			child.MM.Stats.Faults.Count(kernel.FaultFileMinor), rforktest.LibPages)
	}
}

func TestImageDecoupledFromParent(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	snap := rforktest.SnapshotTokens(parent)
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c3")
	c.Node(0).Exit(parent) // CRIU images survive the parent

	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	rforktest.VerifyCloneContent(t, child, snap)
}

func TestGlobalState(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	parent.Regs.SP = 0x7ffffff000
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c4")
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	if child.Regs.SP != 0x7ffffff000 {
		t.Fatal("registers not restored")
	}
	if child.FDs.Len() != parent.FDs.Len() {
		t.Fatal("descriptors not restored")
	}
	if child.NS.PIDNS != parent.NS.PIDNS {
		t.Fatal("pid namespace not restored")
	}
}

func TestWritableMappingsRestoredWritable(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c5")
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	e, _ := child.MM.PT.Lookup(rforktest.HeapBase)
	if !e.Present() || !e.Flags.Has(pt.Writable) {
		t.Fatalf("restored heap PTE = %+v", e)
	}
	// A store is fault-free (private copy, fully materialized).
	f0 := child.MM.Stats.Faults.Total()
	if err := child.MM.Access(rforktest.HeapBase, true); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Total() != f0 {
		t.Fatal("store faulted on restored page")
	}
}

func TestReleaseRemovesImageFile(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c6")
	devUsed := c.Dev.UsedBytes()
	if devUsed == 0 {
		t.Fatal("image occupies no device space")
	}
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	img.Release()
	if c.CXLFS.Files() != 1 {
		t.Fatal("file removed while clone holds a reference")
	}
	c.Node(1).Exit(child)
	if c.CXLFS.Files() != 0 || c.Dev.UsedBytes() != 0 {
		t.Fatalf("image not reclaimed: files=%d bytes=%d", c.CXLFS.Files(), c.Dev.UsedBytes())
	}
}

func TestTwoClonesShareNothing(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := criu.New(c.CXLFS)
	img, _ := mech.Checkpoint(parent, "c7")

	c1 := c.Node(0).NewTask("c1")
	c2 := c.Node(1).NewTask("c2")
	if err := mech.Restore(c1, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := mech.Restore(c2, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	e1, _ := c1.MM.PT.Lookup(rforktest.HeapBase)
	e2, _ := c2.MM.PT.Lookup(rforktest.HeapBase)
	// Same content, distinct frames: no deduplication with CRIU.
	t1, _ := rforktest.PageToken(c1, rforktest.HeapBase)
	t2, _ := rforktest.PageToken(c2, rforktest.HeapBase)
	if t1 != t2 {
		t.Fatal("content mismatch")
	}
	if e1.Flags.Has(pt.OnCXL) || e2.Flags.Has(pt.OnCXL) {
		t.Fatal("CRIU mapped CXL frames")
	}
}
