// Package criu implements the CRIU-CXL baseline (paper §2.3.1, §6.2):
// the state-of-practice checkpoint/restore framework, given the benefit
// of CXL by placing its image files on an in-CXL-memory filesystem
// shared between nodes (so no network file copies). It still serializes
// everything — OS state and every memory page — into protobuf-style
// records, and its restore deserializes the full image and copies all
// data into local memory. Clean pages of private file mappings are not
// checkpointed (CRIU's behaviour, §7.1); the child faults them from the
// page cache lazily.
//
// The entry point is New, which returns the rfork.Mechanism; its Image
// lives as a cxlfs file.
package criu
