package faultinject

import (
	"testing"

	"cxlfork/internal/des"
)

func TestDeviceLossFiresAtOffset(t *testing.T) {
	eng := des.NewEngine()
	p := NewPlan(eng, 1)
	p.Inject(Rule{Kind: DeviceLoss, Device: 1, At: 50})
	p.Inject(Rule{Kind: DeviceLoss, Device: 2, At: 80})

	var lost []int
	var when []des.Time
	p.ArmDeviceLoss(func(dev int) {
		lost = append(lost, dev)
		when = append(when, eng.Now())
	})
	eng.Run()

	if len(lost) != 2 || lost[0] != 1 || lost[1] != 2 {
		t.Fatalf("lost order = %v, want [1 2]", lost)
	}
	if when[0] != 50 || when[1] != 80 {
		t.Fatalf("loss times = %v, want [50 80]", when)
	}
	if !p.DeviceLost(1) || !p.DeviceLost(2) || p.DeviceLost(0) {
		t.Fatal("DeviceLost state wrong")
	}
	if p.LostDevices() != 2 {
		t.Fatalf("LostDevices = %d, want 2", p.LostDevices())
	}
	if got := p.Counters.Injected.Value(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
}

func TestDeviceLossOffsetIsRelativeToArming(t *testing.T) {
	eng := des.NewEngine()
	p := NewPlan(eng, 1)
	p.Inject(Rule{Kind: DeviceLoss, Device: 0, At: 10})

	eng.Advance(100) // setup time elapses before the porter arms the plan
	var at des.Time
	p.ArmDeviceLoss(func(int) { at = eng.Now() })
	eng.Run()
	if at != 110 {
		t.Fatalf("loss at %d, want 110 (arming time + offset)", at)
	}
}

func TestDeviceLossDuplicateAndIdempotentArming(t *testing.T) {
	eng := des.NewEngine()
	p := NewPlan(eng, 1)
	p.Inject(Rule{Kind: DeviceLoss, Device: 0, At: 5})
	p.Inject(Rule{Kind: DeviceLoss, Device: 0, At: 7}) // same device again

	n := 0
	p.ArmDeviceLoss(func(int) { n++ })
	p.ArmDeviceLoss(func(int) { n += 100 }) // second arming is a no-op
	eng.Run()

	if n != 1 {
		t.Fatalf("onLoss fired %d times, want 1 (per-device dedup, single arming)", n)
	}
	if p.LostDevices() != 1 {
		t.Fatalf("LostDevices = %d, want 1", p.LostDevices())
	}
}

func TestDeviceLossNilPlanAndReseed(t *testing.T) {
	var nilPlan *Plan
	nilPlan.ArmDeviceLoss(nil) // must not panic
	if nilPlan.DeviceLost(0) || nilPlan.LostDevices() != 0 {
		t.Fatal("nil plan should report no losses")
	}

	eng := des.NewEngine()
	p := NewPlan(eng, 1)
	p.Inject(Rule{Kind: DeviceLoss, Device: 3, At: 1})
	p.ArmDeviceLoss(nil)
	eng.Run()
	if !p.DeviceLost(3) {
		t.Fatal("device 3 should be lost")
	}

	p.Reseed(2)
	if p.DeviceLost(3) || p.LostDevices() != 0 {
		t.Fatal("Reseed should clear lost devices")
	}
	fired := false
	p.ArmDeviceLoss(func(int) { fired = true }) // re-armed after Reseed
	eng.Run()
	if !fired {
		t.Fatal("Reseed should re-arm DeviceLoss scheduling")
	}
}
