package faultinject

import (
	"fmt"
	"math/rand"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/metrics"
	"cxlfork/internal/rfork"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// CrashNode kills the node executing the step: the operation fails
	// with rfork.ErrNodeDown and the node stays down (every later step
	// on it fails too) until Revive.
	CrashNode Kind = iota
	// DeviceFull makes the step fail with cxl.ErrDeviceFull without the
	// device actually being full — a transient capacity rejection.
	DeviceFull
	// FabricDegrade opens a degradation window: for Window virtual
	// nanoseconds every fabric transfer cost is multiplied by Factor.
	FabricDegrade
	// CorruptBlob flips one seeded-random bit in the checkpoint record
	// being written at the step (consulted via Corrupt, not At).
	CorruptBlob
	// DeviceLoss permanently fails one CXL pool device at virtual time
	// Rule.At (relative to arming): every arena and frame on it is
	// unrecoverable. Scheduled by ArmDeviceLoss, not consulted via At.
	DeviceLoss
)

// String names the kind for error messages and logs.
func (k Kind) String() string {
	switch k {
	case CrashNode:
		return "crash-node"
	case DeviceFull:
		return "device-full"
	case FabricDegrade:
		return "fabric-degrade"
	case CorruptBlob:
		return "corrupt-blob"
	case DeviceLoss:
		return "device-loss"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Named step boundaries where the stack consults its plan. Mechanisms
// pass these to At/Corrupt; rules match on them.
const (
	// StepCheckpointVMA is the boundary before a checkpoint copies its
	// VMA leaves into the arena.
	StepCheckpointVMA = "checkpoint/vma"
	// StepCheckpointPT is the boundary before the page-table leaves and
	// data frames are copied.
	StepCheckpointPT = "checkpoint/pt"
	// StepCheckpointGlobal is the boundary before the global-state blob
	// is serialized and the arena sealed. A crash here leaves a torn
	// (unsealed) arena for Device.Recover to garbage-collect.
	StepCheckpointGlobal = "checkpoint/global"
	// StepRestoreAttach is the boundary before a restore begins
	// mutating the child task.
	StepRestoreAttach = "restore/attach"
	// StepPorterRestore is the boundary the autoscaler consults when it
	// spawns a forked instance from a stored image.
	StepPorterRestore = "porter/restore"
)

// AnyNode matches every node in a Rule.
const AnyNode = -1

// Rule describes one injectable fault. Zero-valued match fields are
// wildcards except Node, where AnyNode (-1) is the wildcard and 0 names
// the first node.
type Rule struct {
	Kind Kind
	// Step restricts the rule to one step boundary ("" = any step).
	Step string
	// Node restricts the rule to one node index (AnyNode = any).
	Node int
	// Target restricts CorruptBlob rules to one image/arena name
	// ("" = any). Ignored by the other kinds.
	Target string
	// After skips the first After matching occurrences before firing.
	After int
	// Count caps how many times the rule fires; 0 means once.
	Count int
	// Window is the degradation duration for FabricDegrade.
	Window des.Time
	// Factor is the latency multiplier for FabricDegrade (>= 1).
	Factor float64
	// Device is the pool device index a DeviceLoss rule kills. Ignored
	// by the other kinds.
	Device int
	// At is the virtual-time offset, relative to when ArmDeviceLoss is
	// called, at which a DeviceLoss rule fires. Ignored by the other
	// kinds (they are occurrence-counted, not clock-driven).
	At des.Time
}

type ruleState struct {
	Rule
	hits  int
	fired int
}

func (r *ruleState) matches(step string, node int, target string) bool {
	if r.Step != "" && r.Step != step {
		return false
	}
	if r.Node != AnyNode && r.Node != node {
		return false
	}
	if r.Target != "" && r.Target != target {
		return false
	}
	return true
}

// arm records one matching occurrence and reports whether the rule
// fires on it.
func (r *ruleState) arm() bool {
	r.hits++
	if r.hits <= r.After {
		return false
	}
	max := r.Count
	if max == 0 {
		max = 1
	}
	if r.fired >= max {
		return false
	}
	r.fired++
	return true
}

// Plan is a seeded fault schedule registered on a cluster. All methods
// are safe on a nil *Plan (they report no faults), so call sites need
// no guards. A Plan is not safe for concurrent use, matching the
// single-goroutine DES discipline.
type Plan struct {
	eng   *des.Engine
	rng   *rand.Rand
	seed  int64
	rules []*ruleState
	down  map[int]bool

	lostDevs map[int]bool
	onLoss   func(dev int)
	armed    bool

	slowUntil  des.Time
	slowFactor float64

	// Counters tallies injected faults and the recovery work they
	// trigger, for availability reporting.
	Counters metrics.FaultCounters
}

// NewPlan returns an empty plan on engine eng with the given seed. The
// seed drives only the randomness inside faults (which bit a CorruptBlob
// flips); when rules fire is purely occurrence-counted.
func NewPlan(eng *des.Engine, seed int64) *Plan {
	return &Plan{
		eng:      eng,
		rng:      rand.New(rand.NewSource(seed)),
		seed:     seed,
		down:     make(map[int]bool),
		lostDevs: make(map[int]bool),
	}
}

// Reseed resets the plan's RNG, rule occurrence counters, node states,
// and degradation window, so the same scenario replays bit-identically.
// Passing the original seed reproduces the previous run exactly.
func (p *Plan) Reseed(seed int64) {
	if p == nil {
		return
	}
	p.rng = rand.New(rand.NewSource(seed))
	p.seed = seed
	for _, r := range p.rules {
		r.hits, r.fired = 0, 0
	}
	p.down = make(map[int]bool)
	p.lostDevs = make(map[int]bool)
	p.armed = false
	p.onLoss = nil
	p.slowUntil, p.slowFactor = 0, 0
	p.Counters = metrics.FaultCounters{}
}

// Seed returns the plan's current seed.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Inject adds a rule to the plan. A DeviceLoss rule injected after
// ArmDeviceLoss has run is scheduled immediately, its At offset
// relative to injection time.
func (p *Plan) Inject(r Rule) {
	if p == nil {
		panic("faultinject: Inject on nil plan")
	}
	if r.Kind == FabricDegrade && r.Factor < 1 {
		panic(fmt.Sprintf("faultinject: FabricDegrade factor %v < 1", r.Factor))
	}
	rs := &ruleState{Rule: r}
	p.rules = append(p.rules, rs)
	if r.Kind == DeviceLoss && p.armed {
		p.scheduleLoss(rs)
	}
}

// At is consulted at a step boundary on a node. It returns nil when no
// fault applies; otherwise an error wrapping rfork.ErrNodeDown (crash,
// or the node was already down) or cxl.ErrDeviceFull (transient
// capacity rejection). FabricDegrade rules matching the step open their
// window and return nil — degradation slows work, it does not fail it.
func (p *Plan) At(step string, node int) error {
	if p == nil {
		return nil
	}
	if p.down[node] {
		return fmt.Errorf("faultinject: node %d is down at %q: %w", node, step, rfork.ErrNodeDown)
	}
	for _, r := range p.rules {
		// CorruptBlob has its own entry point; DeviceLoss is clock-driven
		// (ArmDeviceLoss), not a step-boundary fault — neither may be
		// consumed here.
		if r.Kind == CorruptBlob || r.Kind == DeviceLoss || !r.matches(step, node, "") {
			continue
		}
		if !r.arm() {
			continue
		}
		p.Counters.Injected.Inc()
		switch r.Kind {
		case CrashNode:
			p.down[node] = true
			return fmt.Errorf("faultinject: injected crash of node %d at %q: %w", node, step, rfork.ErrNodeDown)
		case DeviceFull:
			return fmt.Errorf("faultinject: injected device-full at %q on node %d: %w", step, node, cxl.ErrDeviceFull)
		case FabricDegrade:
			p.Degrade(r.Factor, r.Window)
		}
	}
	return nil
}

// Corrupt is consulted when a checkpoint record for target is about to
// be written at a step boundary. If a CorruptBlob rule fires it flips
// one seeded-random bit in blob in place and returns true.
func (p *Plan) Corrupt(step string, node int, target string, blob []byte) bool {
	if p == nil || len(blob) == 0 {
		return false
	}
	for _, r := range p.rules {
		if r.Kind != CorruptBlob || !r.matches(step, node, target) {
			continue
		}
		if !r.arm() {
			continue
		}
		p.Counters.Injected.Inc()
		i := p.rng.Intn(len(blob))
		blob[i] ^= 1 << uint(p.rng.Intn(8))
		return true
	}
	return false
}

// ArmDeviceLoss schedules every DeviceLoss rule on the virtual clock:
// each fires once at now + Rule.At, marks its device lost, counts an
// injected fault, and invokes onLoss with the device index (the porter
// wires onLoss to fail the pool device and prune replicas). Arming is
// idempotent per plan lifetime; Reseed re-arms.
func (p *Plan) ArmDeviceLoss(onLoss func(dev int)) {
	if p == nil || p.armed {
		return
	}
	p.armed = true
	p.onLoss = onLoss
	for _, r := range p.rules {
		if r.Kind == DeviceLoss {
			p.scheduleLoss(r)
		}
	}
}

// scheduleLoss puts one DeviceLoss rule on the clock, At from now.
func (p *Plan) scheduleLoss(r *ruleState) {
	p.eng.At(p.eng.Now()+r.At, func() {
		if !r.arm() || p.lostDevs[r.Device] {
			return
		}
		p.lostDevs[r.Device] = true
		p.Counters.Injected.Inc()
		if p.onLoss != nil {
			p.onLoss(r.Device)
		}
	})
}

// DeviceLost reports whether pool device dev has been lost.
func (p *Plan) DeviceLost(dev int) bool {
	return p != nil && p.lostDevs[dev]
}

// LostDevices returns how many pool devices have been lost.
func (p *Plan) LostDevices() int {
	if p == nil {
		return 0
	}
	return len(p.lostDevs)
}

// CrashNode marks a node dead immediately (outside any step boundary).
func (p *Plan) CrashNode(node int) {
	if p == nil {
		panic("faultinject: CrashNode on nil plan")
	}
	p.down[node] = true
}

// Revive brings a crashed node back. Its in-memory tasks are gone; its
// view of sealed CXL checkpoints survives.
func (p *Plan) Revive(node int) {
	if p == nil {
		return
	}
	delete(p.down, node)
}

// NodeDown reports whether a node is currently crashed.
func (p *Plan) NodeDown(node int) bool {
	return p != nil && p.down[node]
}

// Degrade opens (or extends) a fabric-degradation window: until
// now+window, FabricFactor returns at least factor.
func (p *Plan) Degrade(factor float64, window des.Time) {
	if p == nil {
		return
	}
	if factor < 1 {
		factor = 1
	}
	until := p.eng.Now() + window
	if until > p.slowUntil {
		p.slowUntil = until
	}
	if factor > p.slowFactor {
		p.slowFactor = factor
	}
}

// FabricFactor returns the current fabric latency multiplier: 1 outside
// any degradation window.
func (p *Plan) FabricFactor() float64 {
	if p == nil || p.eng.Now() >= p.slowUntil || p.slowFactor < 1 {
		return 1
	}
	return p.slowFactor
}

// Scale multiplies a fabric transfer cost by the current degradation
// factor. Mechanisms route their CXL copy costs through this.
func (p *Plan) Scale(d des.Time) des.Time {
	f := p.FabricFactor()
	if f == 1 {
		return d
	}
	return des.Time(float64(d) * f)
}
