// Package faultinject provides deterministic, seeded fault injection
// for the simulated fork fabric. A Plan is registered on the cluster
// and consulted by the mechanisms and the autoscaler at named step
// boundaries ("checkpoint/pt", "restore/attach", ...). Rules fire by
// occurrence count on the DES virtual clock, never by wall-clock or
// unseeded randomness, so every failure scenario replays identically
// under the same seed.
//
// Four fault kinds are modeled, mirroring the failure modes that
// dominate disaggregated-memory deployments: a node crash that tears an
// in-flight checkpoint, a transient capacity exhaustion, a fabric
// degradation window that multiplies every CXL latency, and silent
// corruption of a checkpoint's serialized global state.
//
// The entry point is NewPlan, registered on the cluster; Rules select
// named steps by occurrence, and the mechanisms consult the plan with
// Plan.At.
package faultinject
