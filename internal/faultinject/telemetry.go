package faultinject

import (
	"cxlfork/internal/des"
	"cxlfork/internal/telemetry"
)

// ActiveFaults returns how many injected failure conditions are in
// effect right now: downed nodes, plus one while a fabric-degradation
// window is open. Transient faults (device-full, corruption) fire
// instantaneously and never count as active.
func (p *Plan) ActiveFaults() int {
	if p == nil {
		return 0
	}
	n := len(p.down) + len(p.lostDevs)
	if p.eng.Now() < p.slowUntil && p.slowFactor >= 1 {
		n++
	}
	return n
}

// RegisterTelemetry registers the plan's fault gauges and counters
// against reg.
func (p *Plan) RegisterTelemetry(reg *telemetry.Registry) {
	if p == nil || !reg.Enabled() {
		return
	}
	reg.Gauge("faultinject_active", "injected failure conditions currently in effect",
		func(des.Time) float64 { return float64(p.ActiveFaults()) })
	reg.CounterFunc("faultinject_injected_total", "faults fired by the injection plan",
		func(des.Time) float64 { return float64(p.Counters.Injected.Value()) })
	reg.CounterFunc("faultinject_retries_total", "operations re-attempted after an injected fault",
		func(des.Time) float64 { return float64(p.Counters.Retries.Value()) })
	reg.CounterFunc("faultinject_fallbacks_total", "degradations to a slower path after a fault",
		func(des.Time) float64 { return float64(p.Counters.Fallbacks.Value()) })
	reg.CounterFunc("faultinject_retry_exhausted_total", "requests whose retry budget ran out",
		func(des.Time) float64 { return float64(p.Counters.RetryExhausted.Value()) })
	reg.Gauge("faultinject_lost_devices", "pool devices permanently failed by DeviceLoss rules",
		func(des.Time) float64 { return float64(p.LostDevices()) })
}
