package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/rfork"
)

func TestRuleMatching(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	p.Inject(Rule{Kind: DeviceFull, Step: StepCheckpointPT, Node: 1, Count: 100})

	if err := p.At(StepCheckpointVMA, 1); err != nil {
		t.Fatalf("wrong step fired: %v", err)
	}
	if err := p.At(StepCheckpointPT, 0); err != nil {
		t.Fatalf("wrong node fired: %v", err)
	}
	err := p.At(StepCheckpointPT, 1)
	if !errors.Is(err, cxl.ErrDeviceFull) {
		t.Fatalf("matching step+node: got %v, want ErrDeviceFull", err)
	}
	if got := p.Counters.Injected.Value(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestWildcards(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	p.Inject(Rule{Kind: DeviceFull, Node: AnyNode, Count: 3})
	for i, node := range []int{0, 5, 9} {
		if err := p.At("anything/"+string(rune('a'+i)), node); !errors.Is(err, cxl.ErrDeviceFull) {
			t.Fatalf("wildcard rule missed node %d: %v", node, err)
		}
	}
}

func TestAfterAndCount(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	// Skip the first 2 matches, then fire exactly twice.
	p.Inject(Rule{Kind: DeviceFull, Step: StepRestoreAttach, Node: AnyNode, After: 2, Count: 2})
	var fired []int
	for i := 0; i < 6; i++ {
		if err := p.At(StepRestoreAttach, 0); err != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired on occurrences %v, want [2 3]", fired)
	}
}

func TestCountZeroMeansOnce(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	p.Inject(Rule{Kind: DeviceFull, Node: AnyNode})
	n := 0
	for i := 0; i < 4; i++ {
		if p.At("s", 0) != nil {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("zero Count fired %d times, want 1", n)
	}
}

func TestCrashMarksNodeDown(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	p.Inject(Rule{Kind: CrashNode, Step: StepCheckpointGlobal, Node: 0})

	err := p.At(StepCheckpointGlobal, 0)
	if !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("crash: got %v", err)
	}
	if !p.NodeDown(0) || p.NodeDown(1) {
		t.Fatal("down-state wrong after crash")
	}
	// Every later step on the dead node fails, but is not a new injection.
	if err := p.At(StepCheckpointVMA, 0); !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("step on dead node: %v", err)
	}
	if got := p.Counters.Injected.Value(); got != 1 {
		t.Fatalf("Injected = %d, want 1 (down-node errors are not injections)", got)
	}
	p.Revive(0)
	if p.NodeDown(0) {
		t.Fatal("node still down after Revive")
	}
	if err := p.At(StepCheckpointVMA, 0); err != nil {
		t.Fatalf("revived node still failing: %v", err)
	}
}

func TestDegradeWindow(t *testing.T) {
	eng := des.NewEngine()
	p := NewPlan(eng, 1)
	p.Inject(Rule{Kind: FabricDegrade, Step: StepCheckpointPT, Node: AnyNode, Factor: 4, Window: 100})

	if got := p.FabricFactor(); got != 1 {
		t.Fatalf("factor before window = %v", got)
	}
	if err := p.At(StepCheckpointPT, 0); err != nil {
		t.Fatalf("degrade rule returned error: %v", err)
	}
	if got := p.FabricFactor(); got != 4 {
		t.Fatalf("factor inside window = %v, want 4", got)
	}
	if got := p.Scale(10); got != 40 {
		t.Fatalf("Scale(10) = %v, want 40", got)
	}
	eng.Advance(100)
	if got := p.FabricFactor(); got != 1 {
		t.Fatalf("factor after window = %v, want 1", got)
	}
	if got := p.Scale(10); got != 10 {
		t.Fatalf("Scale(10) after window = %v, want 10", got)
	}
}

func TestCorruptTargetsAndDeterminism(t *testing.T) {
	orig := []byte("the quick brown fox jumps over the lazy dog")

	run := func(seed int64) []byte {
		p := NewPlan(des.NewEngine(), seed)
		p.Inject(Rule{Kind: CorruptBlob, Step: StepCheckpointGlobal, Node: AnyNode, Target: "ck1"})
		blob := append([]byte(nil), orig...)
		// Wrong target: untouched.
		if p.Corrupt(StepCheckpointGlobal, 0, "other", blob) {
			t.Fatal("corrupted wrong target")
		}
		if !p.Corrupt(StepCheckpointGlobal, 0, "ck1", blob) {
			t.Fatal("matching target not corrupted")
		}
		return blob
	}

	a, b := run(7), run(7)
	if bytes.Equal(a, orig) {
		t.Fatal("corruption did not change the blob")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	c := run(8)
	if bytes.Equal(a, c) {
		t.Log("different seeds flipped the same bit (possible but unlikely)")
	}
}

func TestReseedResetsEverything(t *testing.T) {
	eng := des.NewEngine()
	p := NewPlan(eng, 3)
	p.Inject(Rule{Kind: CrashNode, Step: StepCheckpointPT, Node: 0})
	if err := p.At(StepCheckpointPT, 0); err == nil {
		t.Fatal("rule did not fire")
	}
	p.Degrade(2, 1000)

	p.Reseed(3)
	if p.NodeDown(0) {
		t.Fatal("Reseed kept node down")
	}
	if p.FabricFactor() != 1 {
		t.Fatal("Reseed kept degradation window")
	}
	if p.Counters.Injected.Value() != 0 {
		t.Fatal("Reseed kept counters")
	}
	if p.Seed() != 3 {
		t.Fatalf("Seed() = %d", p.Seed())
	}
	// Rule occurrence state reset: it fires again.
	if err := p.At(StepCheckpointPT, 0); !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("replayed rule did not fire: %v", err)
	}
}

func TestNilPlanIsSafe(t *testing.T) {
	var p *Plan
	if err := p.At("s", 0); err != nil {
		t.Fatal(err)
	}
	if p.Corrupt("s", 0, "t", []byte{1}) {
		t.Fatal("nil plan corrupted")
	}
	if p.NodeDown(0) {
		t.Fatal("nil plan reports node down")
	}
	if p.FabricFactor() != 1 || p.Scale(5) != 5 {
		t.Fatal("nil plan degrades")
	}
	p.Revive(0)
	p.Degrade(2, 10)
	p.Reseed(1)
	if p.Seed() != 0 {
		t.Fatal("nil plan has a seed")
	}
}

func TestInjectValidatesFactor(t *testing.T) {
	p := NewPlan(des.NewEngine(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on FabricDegrade factor < 1")
		}
	}()
	p.Inject(Rule{Kind: FabricDegrade, Factor: 0.5})
}
