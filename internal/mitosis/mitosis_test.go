package mitosis_test

import (
	"testing"

	"cxlfork/internal/kernel"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/rforktest"
)

func TestCheckpointShadowInParentMemory(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	used := c.Node(0).Mem.UsedPages()

	img, err := mitosis.New().Checkpoint(parent, "m1")
	if err != nil {
		t.Fatal(err)
	}
	wantPages := rforktest.LibPages + rforktest.HeapPages
	if img.Pages() != wantPages {
		t.Fatalf("shadow pages = %d, want %d", img.Pages(), wantPages)
	}
	// The shadow copy occupies parent-node local memory, not CXL.
	if got := c.Node(0).Mem.UsedPages() - used; got != wantPages {
		t.Fatalf("parent-local delta = %d, want %d", got, wantPages)
	}
	if img.LocalBytes() == 0 || img.CXLBytes() != 0 {
		t.Fatalf("placement wrong: local=%d cxl=%d", img.LocalBytes(), img.CXLBytes())
	}
}

func TestRestoreLazyCopies(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	snap := rforktest.SnapshotTokens(parent)
	mech := mitosis.New()
	img, err := mech.Checkpoint(parent, "m2")
	if err != nil {
		t.Fatal(err)
	}

	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	// Restore moved no data.
	if got := child.MM.PT.CountPresent(); got != 0 {
		t.Fatalf("restore populated %d PTEs", got)
	}
	if child.MM.VMAs.Count() != parent.MM.VMAs.Count() {
		t.Fatal("VMA tree not reconstructed")
	}

	rforktest.VerifyCloneContent(t, child, snap)
	// Every touched page was copied to child-local memory.
	if got := child.MM.ResidentCXLPages(); got != 0 {
		t.Fatalf("%d pages mapped from CXL; Mitosis copies everything", got)
	}
	if got := child.MM.Stats.Faults.Count(kernel.FaultMoA); got != int64(len(snap)) {
		t.Fatalf("MoA faults = %d, want %d", got, len(snap))
	}
}

func TestGlobalStateAndRegs(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	parent.Regs.IP = 0xdeadbeef
	mech := mitosis.New()
	img, _ := mech.Checkpoint(parent, "m3")
	child := c.Node(1).NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	if child.Regs.IP != 0xdeadbeef {
		t.Fatal("registers not restored")
	}
	if child.FDs.Len() != parent.FDs.Len() {
		t.Fatal("fds not restored")
	}
}

func TestCloneWritesAreprivate(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	snap := rforktest.SnapshotTokens(parent)
	mech := mitosis.New()
	img, _ := mech.Checkpoint(parent, "m4")

	c1 := c.Node(1).NewTask("c1")
	mustRestore(t, mech, c1, img)
	for i := 0; i < rforktest.HeapPages; i++ {
		if err := c1.MM.Access(rforktest.AddrOf(rforktest.HeapBase, i), true); err != nil {
			t.Fatal(err)
		}
	}
	c2 := c.Node(0).NewTask("c2")
	mustRestore(t, mech, c2, img)
	rforktest.VerifyCloneContent(t, c2, snap)
}

func TestReleaseFreesShadow(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := mitosis.New()
	used := c.Node(0).Mem.UsedPages()
	img, _ := mech.Checkpoint(parent, "m5")

	child := c.Node(1).NewTask("clone")
	mustRestore(t, mech, child, img)
	img.Release() // owner
	if img.Refs() != 1 {
		t.Fatalf("refs = %d", img.Refs())
	}
	c.Node(1).Exit(child)
	if got := c.Node(0).Mem.UsedPages(); got != used {
		t.Fatalf("shadow not freed: %d extra pages", got-used)
	}
}

func TestParentCannotExitSemantics(t *testing.T) {
	// Mitosis couples the image to the parent node: the image holds
	// parent-node memory as long as any clone lives (§3.1). This test
	// documents the coupling CXLfork removes.
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := mitosis.New()
	img, _ := mech.Checkpoint(parent, "m6")
	child := c.Node(1).NewTask("clone")
	mustRestore(t, mech, child, img)
	img.Release()
	if img.LocalBytes() == 0 {
		t.Fatal("image dropped parent-node state while a clone lives")
	}
}

func TestRestorePopulatesWritableByVMA(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := mitosis.New()
	img, _ := mech.Checkpoint(parent, "m7")
	child := c.Node(1).NewTask("clone")
	mustRestore(t, mech, child, img)

	if err := child.MM.Access(rforktest.HeapBase, false); err != nil {
		t.Fatal(err)
	}
	e, _ := child.MM.PT.Lookup(rforktest.HeapBase)
	if !e.Flags.Has(pt.Writable) {
		t.Fatal("heap page not writable after copy")
	}
	if err := child.MM.Access(rforktest.LibBase, false); err != nil {
		t.Fatal(err)
	}
	le, _ := child.MM.PT.Lookup(rforktest.LibBase)
	if le.Flags.Has(pt.Writable) {
		t.Fatal("library page writable")
	}
}

func mustRestore(t *testing.T, mech *mitosis.Mechanism, child *kernel.Task, img rfork.Image) {
	t.Helper()
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
}
