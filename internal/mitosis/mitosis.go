package mitosis

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// shadowPage is one page of the shadow copy.
type shadowPage struct {
	frame *memsim.Frame
	file  bool
}

// Image is a Mitosis checkpoint: a shadow copy coupled to the parent
// node (its central design constraint — the parent node must stay alive
// and is a point of congestion, §3.1).
type Image struct {
	id       string
	parentOS *kernel.OS

	shadow   map[uint64]shadowPage // keyed by virtual page number
	osState  []byte                // enveloped wire-encoded VMAs + global state
	vmaCount int
	pteCount int

	refs rfork.RefCount
}

var _ rfork.Image = (*Image)(nil)

// ID returns the checkpoint ID.
func (im *Image) ID() string { return im.id }

// Mechanism returns "Mitosis-CXL".
func (im *Image) Mechanism() string { return "Mitosis-CXL" }

// CXLBytes is zero: Mitosis keeps the checkpoint in the parent node.
func (im *Image) CXLBytes() int64 { return 0 }

// LocalBytes returns the parent-node memory the shadow copy occupies.
func (im *Image) LocalBytes() int64 {
	return int64(len(im.shadow)) * int64(im.parentOS.P.PageSize)
}

// Pages returns the shadow page count.
func (im *Image) Pages() int { return len(im.shadow) }

// Refs returns the reference count.
func (im *Image) Refs() int { return im.refs.Count() }

// Retain adds a reference.
func (im *Image) Retain() { im.refs.Retain() }

// Release drops a reference; at zero the shadow copy is freed. Releasing
// a dead image is a no-op.
func (im *Image) Release() {
	if !im.refs.Release() {
		return
	}
	for _, sp := range im.shadow {
		im.parentOS.Mem.Put(sp.frame)
	}
	im.shadow = nil
}

// Mechanism is the Mitosis-CXL rfork.Mechanism.
type Mechanism struct {
	// Faults is the fault-injection plan consulted at step boundaries.
	// May be nil (no faults).
	Faults *faultinject.Plan
}

// New returns the Mitosis-CXL mechanism.
func New() *Mechanism { return &Mechanism{} }

// Name returns "Mitosis-CXL".
func (m *Mechanism) Name() string { return "Mitosis-CXL" }

// Image message field tags.
const (
	fieldVMA    = 1
	fieldGlobal = 2
	fieldPTEs   = 3
)

// shadowShard is the page granularity one worker lane claims at a time
// when building or transferring shadow state.
const shadowShard = 128

// Checkpoint creates the shadow copy in parent-node local memory and
// serializes the OS state.
func (m *Mechanism) Checkpoint(parent *kernel.Task, id string) (rfork.Image, error) {
	o := parent.OS
	p := o.P
	t0 := o.Eng.Now()
	if err := m.Faults.At(faultinject.StepCheckpointVMA, o.Index); err != nil {
		o.TraceOpError("checkpoint", t0, "vma")
		return nil, err
	}
	im := &Image{id: id, parentOS: o, shadow: make(map[uint64]shadowPage), refs: rfork.NewRefCount()}
	var cost des.Time

	// Serialize the address-space layout and global state.
	enc := wire.NewEncoder()
	parent.MM.VMAs.Walk(func(v vma.VMA) {
		enc.PutBytes(fieldVMA, rfork.EncodeVMA(v))
		im.vmaCount++
		cost += p.VMACheckpoint
	})
	gs := rfork.CaptureGlobalState(parent)
	enc.PutBytes(fieldGlobal, gs.Encode())
	cost += des.Time(len(gs.FDs)) * p.FDSerialize
	cost += p.StructCopy

	// Shadow-copy every present page into parent-local memory, and
	// serialize the page-table metadata.
	var cpErr error
	parent.MM.PT.Walk(func(va pt.VirtAddr, leaf *pt.Leaf, i int) {
		if cpErr != nil {
			return
		}
		e := leaf.PTEs[i]
		var src *memsim.Frame
		if e.Flags.Has(pt.OnCXL) {
			src = o.Dev.Pool().Frame(int(e.PFN))
		} else {
			src = o.Mem.Frame(int(e.PFN))
		}
		dst, err := o.Mem.Alloc()
		if err != nil {
			cpErr = err
			return
		}
		memsim.Copy(dst, src)
		im.shadow[va.PageNumber()] = shadowPage{frame: dst, file: e.Flags.Has(pt.FileBacked)}
		im.pteCount++
	})
	if cpErr != nil {
		im.Release()
		o.TraceOpError("checkpoint", t0, "alloc")
		return nil, cpErr
	}
	// The shadow copy runs on the checkpoint lanes. It is a DRAM→DRAM
	// copy, so lanes contend on the node's memory-controller streams
	// (wider than the CXL fabric), with the PTE serialization as
	// lane-local work. One lane charges the exact serial per-page sum.
	serCost := cost
	shards := des.UniformShards(im.pteCount, shadowShard, p.PTECopy, p.LocalCopyPage)
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	pipeDur := des.PipelineTimeObs(p.CheckpointLanes, p.LocalCopyStreams, p.LaneDispatch, shards, obs)
	cost += pipeDur
	enc.PutUint(fieldPTEs, uint64(im.pteCount))
	// The OS-state record travels in a checksummed envelope so Restore
	// can reject corruption before touching the child.
	im.osState = wire.SealEnvelope(enc.Bytes())
	m.Faults.Corrupt(faultinject.StepCheckpointGlobal, o.Index, id, im.osState)

	o.Eng.Advance(cost)
	if o.Trace.Enabled() {
		node := o.Index
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "checkpoint",
			t0, cost, im.LocalBytes(), im.pteCount)
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "serialize", t0, serCost, 0, 0)
		copyID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "shadow-copy",
			t0+serCost, pipeDur, im.LocalBytes(), im.pteCount)
		o.Trace.EmitShards(copyID, node, t0+serCost, laneSpans,
			func(int) string { return "page-batch" },
			func(i int) int { return shards[i].Units })
	}
	return im, nil
}

// Restore deserializes the OS state on the child's node — rebuilding the
// VMA tree and transferring the parent's page tables — and installs the
// remote-paging overlay. No page data moves at restore time.
func (m *Mechanism) Restore(child *kernel.Task, img rfork.Image, _ rfork.Options) error {
	im, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("mitosis: image %s is %T, not a Mitosis image", img.ID(), img)
	}
	o := child.OS
	p := o.P
	t0 := o.Eng.Now()
	fail := func(step string, err error) error {
		o.TraceOpError("restore", t0, step)
		return err
	}
	if err := m.Faults.At(faultinject.StepRestoreAttach, o.Index); err != nil {
		return fail("attach", err)
	}
	if im.refs.Count() <= 0 {
		return fail("validate", fmt.Errorf("mitosis: restore from reclaimed image %s", im.id))
	}
	// Mitosis' central constraint (§3.1): the checkpoint lives in the
	// parent node's memory, so a dead parent makes the image unusable.
	if m.Faults.NodeDown(im.parentOS.Index) {
		return fail("parent-down", fmt.Errorf("mitosis: image %s: parent node %d: %w", im.id, im.parentOS.Index, rfork.ErrNodeDown))
	}

	// Validate and fully decode the OS state before mutating the child.
	blob, err := wire.OpenEnvelope(im.osState)
	if err != nil {
		return fail("validate", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
	}
	var cost des.Time
	var gs rfork.GlobalState
	var haveGS bool
	var vmas []vma.VMA
	var pteN int
	d := wire.NewDecoder(blob)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
		}
		switch field {
		case fieldVMA:
			b, err := d.Bytes()
			if err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
			v, err := rfork.DecodeVMA(b)
			if err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
			vmas = append(vmas, v) // reconstruct cost folded into the lane pipeline below
		case fieldGlobal:
			b, err := d.Bytes()
			if err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
			gs, err = rfork.DecodeGlobalState(b)
			if err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
			haveGS = true
		case fieldPTEs:
			n, err := d.Uint()
			if err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
			pteN = int(n)
		default:
			if err := d.Skip(wt); err != nil {
				return fail("decode", fmt.Errorf("mitosis: image %s: %w: %v", im.id, rfork.ErrImageCorrupt, err))
			}
		}
	}
	if !haveGS {
		return fail("decode", fmt.Errorf("mitosis: image %s has no global state: %w", im.id, rfork.ErrImageCorrupt))
	}
	for _, v := range vmas {
		if _, err := child.MM.VMAs.Insert(v); err != nil {
			return fail("attach", err)
		}
	}
	// VMA reconstruction and the page-table transfer/deserialization run
	// on the restore lanes; the PTE stream crosses the fabric from the
	// parent node, so it contends on the fabric streams.
	shards := make([]des.Shard, 0, len(vmas))
	for range vmas {
		shards = append(shards, des.Shard{Setup: p.VMAReconstruct})
	}
	shards = append(shards, des.UniformShards(pteN, pt.EntriesPerTable, 0, p.PTEDeserialize)...)
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	pipeDur := des.PipelineTimeObs(p.RestoreLanes, p.FabricStreams, p.LaneDispatch, shards, obs)
	cost += pipeDur
	o.Eng.Advance(cost)
	gBegin := o.Eng.Now()
	if err := rfork.RestoreGlobalState(child, gs); err != nil {
		return fail("global", err)
	}
	gEnd := o.Eng.Now()

	child.MM.Overlay = &overlay{im: im}
	im.Retain()
	child.MM.OnExit(im.Release)
	if o.Trace.Enabled() {
		node := o.Index
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "restore",
			t0, gEnd-t0, 0, pteN)
		deserID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "deserialize",
			t0, gBegin-t0, 0, pteN)
		o.Trace.EmitShards(deserID, node, t0+(gBegin-t0-pipeDur), laneSpans,
			func(i int) string {
				if i < len(vmas) {
					return "vma-record"
				}
				return "pte-batch"
			},
			func(i int) int { return shards[i].Units })
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "global-restore", gBegin, gEnd-gBegin, 0, 0)
	}
	return nil
}

// overlay implements Mitosis' lazy remote paging: the first access to
// any page copies it from the parent's shadow into child-local memory
// over the CXL fabric.
type overlay struct {
	im *Image
}

// Fault copies the page at va from the shadow copy. The cost models the
// parent-side store to CXL plus the child-side fetch (§6.2).
func (ov *overlay) Fault(mm *kernel.MM, va pt.VirtAddr, write bool) (pt.PTE, des.Time, kernel.FaultKind, bool) {
	sp, ok := ov.im.shadow[va.PageNumber()]
	if !ok {
		return pt.PTE{}, 0, 0, false
	}
	o := mm.OS
	p := o.P
	local, err := o.Mem.Alloc()
	if err != nil {
		return pt.PTE{}, 0, 0, false // OOM surfaces as a segfault upstream
	}
	memsim.Copy(local, sp.frame)
	o.Dev.WriteBytes += int64(p.PageSize)
	o.Dev.ReadBytes += int64(p.PageSize)

	flags := pt.Accessed
	if sp.file {
		flags |= pt.FileBacked
	}
	if v := mm.VMAs.Find(va); v != nil && v.Prot&vma.Write != 0 {
		flags |= pt.Writable
	}
	if write {
		flags |= pt.Dirty
		local.Data = memsim.NewToken()
	}
	cost := p.FaultEntry + p.CXLWritePage + p.CXLReadPage
	return pt.PTE{Flags: pt.Present | flags, PFN: int32(local.PFN())}, cost, kernel.FaultMoA, true
}
