// Package mitosis implements the Mitosis-CXL baseline (paper §2.3.2,
// §6.2): the state-of-the-art RDMA remote fork ported to CXL. The
// checkpoint is a shadow, immutable copy of the parent's pages in the
// parent node's local memory plus serialized OS state. Restore transfers
// and deserializes the OS state (including the parent's page tables),
// then lazily copies each accessed page from the shadow copy over the
// CXL fabric — each "remote" fault pays a store to and a fetch from CXL
// memory, standing in for the one-sided RDMA reads of the original.
//
// The entry point is New, which returns the rfork.Mechanism.
package mitosis
