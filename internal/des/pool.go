package des

import (
	"sync"
	"sync/atomic"
)

// Pool fans independent simulation legs out to worker goroutines.
// Experiments use it for embarrassingly parallel sweeps — per-function
// calibration, design×fraction grids, per-lane-count points — where
// each leg builds its own cluster and engine. Determinism is preserved
// structurally: legs share nothing, and results land in caller-owned
// slots indexed by leg, so output order is input order regardless of
// which worker ran which leg. A nil Pool (or workers <= 1) degrades to
// a plain serial loop, which is the SimWorkers=1 baseline.
type Pool struct {
	workers int
}

// NewPool returns a pool running up to workers legs concurrently.
// Workers below 1 are treated as 1 (serial).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers reports the configured concurrency; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Each runs job(i) for every i in [0, n), returning when all are done.
// Jobs must be independent: they may not share mutable state, and each
// must write its result only to its own index. With one worker (or a
// nil pool) the loop is strictly sequential in index order.
func (p *Pool) Each(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
