package des

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildShardLoad seeds a deterministic multi-shard workload on fab:
// every shard runs a chain of events and periodically sends a
// counter-bump to its ring neighbour with exactly the lookahead delay.
// Returns per-shard accumulators the caller fingerprints after Run.
func buildShardLoad(fab Fabric, lookahead Time, events int) []int64 {
	n := fab.Shards()
	acc := make([]int64, n)
	for i := 0; i < n; i++ {
		i := i
		eng := fab.Shard(i)
		var chain func(k int)
		chain = func(k int) {
			acc[i] += int64(eng.Now()) ^ int64(k)
			if k%7 == 3 {
				dst := (i + 1) % n
				fab.Send(i, dst, lookahead+Time(k%5)*Microsecond, func() {
					acc[dst] += 1000003
				})
			}
			if k+1 < events {
				eng.After(Time(1+k%13)*Microsecond, func() { chain(k + 1) })
			}
		}
		eng.At(Time(i)*Microsecond, func() { chain(0) })
	}
	return acc
}

func TestFabricDeterministicAcrossWorkers(t *testing.T) {
	const lookahead = 50 * Microsecond
	var base []int64
	var baseExec uint64
	for _, workers := range []int{1, 2, 3, 8} {
		fab := NewFabric(16, workers, lookahead)
		acc := buildShardLoad(fab, lookahead, 200)
		fab.Run()
		if base == nil {
			base, baseExec = acc, fab.Executed()
			continue
		}
		if !reflect.DeepEqual(acc, base) {
			t.Fatalf("workers=%d: per-shard results diverged\n got %v\nwant %v", workers, acc, base)
		}
		if fab.Executed() != baseExec {
			t.Fatalf("workers=%d: executed %d events, baseline %d", workers, fab.Executed(), baseExec)
		}
	}
}

func TestShardedEngineRepeatedRunsIdentical(t *testing.T) {
	const lookahead = 50 * Microsecond
	run := func() ([]int64, uint64, uint64) {
		se := NewShardedEngine(8, 4, lookahead)
		acc := buildShardLoad(se, lookahead, 300)
		se.Run()
		return acc, se.Epochs(), se.Sent()
	}
	a1, e1, s1 := run()
	a2, e2, s2 := run()
	if !reflect.DeepEqual(a1, a2) || e1 != e2 || s1 != s2 {
		t.Fatalf("repeated sharded runs diverged: %v/%d/%d vs %v/%d/%d", a1, e1, s1, a2, e2, s2)
	}
	if e1 == 0 || s1 == 0 {
		t.Fatalf("workload exercised no epochs (%d) or sends (%d)", e1, s1)
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	se := NewShardedEngine(2, 2, Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead send did not panic")
		}
	}()
	se.Send(0, 1, Microsecond, func() {})
}

func TestMonoFabricSendBelowLookaheadPanics(t *testing.T) {
	fab := NewFabric(2, 1, Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead send did not panic")
		}
	}()
	fab.Send(0, 1, Microsecond, func() {})
}

// canonicalMerge sorts messages by the engine's deterministic barrier
// order: timestamp, then send seq, then source shard.
func canonicalMerge(msgs []xmsg) []xmsg {
	out := append([]xmsg(nil), msgs...)
	sort.Slice(out, func(i, j int) bool { return xmsgLess(out[i], out[j]) })
	return out
}

// naiveMerge is a deliberately nondeterministic merge: it orders by
// timestamp only, keeping arrival order for ties — so the output
// depends on which worker's outbox drained first.
func naiveMerge(msgs []xmsg) []xmsg {
	out := append([]xmsg(nil), msgs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// mergeKeys projects the fields a merge order is defined over.
func mergeKeys(msgs []xmsg) [][3]uint64 {
	keys := make([][3]uint64, len(msgs))
	for i, m := range msgs {
		keys[i] = [3]uint64{uint64(m.at), m.seq, uint64(m.src)}
	}
	return keys
}

// genEqualTimestampMsgs builds a barrier's worth of messages with many
// deliberate timestamp collisions across shards, plus a random
// arrival permutation.
func genEqualTimestampMsgs(seed int64) []xmsg {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(24)
	msgs := make([]xmsg, 0, n)
	seqs := make(map[int]uint64)
	for i := 0; i < n; i++ {
		src := rng.Intn(4)
		msgs = append(msgs, xmsg{
			at:  Time(rng.Intn(3)) * Millisecond, // few distinct stamps → ties
			seq: seqs[src],
			src: src,
			dst: rng.Intn(4),
		})
		seqs[src]++
	}
	rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	return msgs
}

// TestQuickMergeOrderIsArrivalInvariant is the shard-queue ordering
// property: however the per-worker outboxes happen to drain, events
// with equal timestamps dequeue in the deterministic tie-break order
// (send seq, then shard id).
func TestQuickMergeOrderIsArrivalInvariant(t *testing.T) {
	prop := func(seed int64, permSeed int64) bool {
		msgs := genEqualTimestampMsgs(seed)
		want := mergeKeys(canonicalMerge(msgs))
		// A different arrival permutation of the same messages.
		perm := append([]xmsg(nil), msgs...)
		rand.New(rand.NewSource(permSeed)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		got := mergeKeys(canonicalMerge(perm))
		if !reflect.DeepEqual(got, want) {
			return false
		}
		// And the order is total: (at, seq, src) strictly ascending.
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a[0] > b[0] || (a[0] == b[0] && (a[1] > b[1] || (a[1] == b[1] && a[2] >= b[2]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveMergeIsCaught proves the detector has teeth: an
// arrival-order-stable merge (no seq/shard tie-break) produces
// different dequeue orders for different arrival permutations, which
// the same invariance check flags.
func TestNaiveMergeIsCaught(t *testing.T) {
	caught := false
	for seed := int64(0); seed < 64 && !caught; seed++ {
		msgs := genEqualTimestampMsgs(seed)
		want := mergeKeys(naiveMerge(msgs))
		for permSeed := int64(1); permSeed < 8; permSeed++ {
			perm := append([]xmsg(nil), msgs...)
			rand.New(rand.NewSource(permSeed)).Shuffle(len(perm), func(i, j int) {
				perm[i], perm[j] = perm[j], perm[i]
			})
			if !reflect.DeepEqual(mergeKeys(naiveMerge(perm)), want) {
				caught = true
				break
			}
		}
	}
	if !caught {
		t.Fatal("nondeterministic merge was never caught across 64 seeds — detector is blind")
	}
}

// TestCancelAfterRecycleIsNoOp pins the pooled-event safety property:
// an EventID whose event already fired must not cancel the unrelated
// event that reused the recycled struct.
func TestCancelAfterRecycleIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := 0
	stale := e.At(1, func() {})
	if !e.Step() {
		t.Fatal("first event did not fire")
	}
	// The freed struct is reused by the very next schedule.
	e.At(2, func() { fired++ })
	e.Cancel(stale) // must not touch the recycled slot
	e.Run()
	if fired != 1 {
		t.Fatalf("stale Cancel killed a recycled event (fired=%d)", fired)
	}
}

// TestCancelStillWorksOnLiveEvents guards the other side: a live ID
// cancels exactly its own event.
func TestCancelStillWorksOnLiveEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	id := e.At(1, func() { fired++ })
	e.At(2, func() { fired += 10 })
	e.Cancel(id)
	e.Run()
	if fired != 10 {
		t.Fatalf("fired=%d, want 10 (only the uncancelled event)", fired)
	}
	if e.Executed() != 1 {
		t.Fatalf("executed=%d, want 1", e.Executed())
	}
}

func TestFabricValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewShardedEngine(0, 1, Millisecond) },
		func() { NewShardedEngine(2, 1, 0) },
		func() { NewFabric(0, 1, Millisecond) },
		func() { NewFabric(2, 1, 0) },
		func() { NewShardedEngine(2, 2, Millisecond).Send(0, 9, Millisecond, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid construction did not panic")
				}
			}()
			fn()
		}()
	}
	// Worker count below 1 clamps instead of panicking.
	if se := NewShardedEngine(2, 0, Millisecond); se.Workers() != 1 {
		t.Fatalf("workers clamp: got %d", se.Workers())
	}
}
