package des

import "testing"

func TestEveryTicksUntilFalse(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Every(10, func() bool {
		at = append(at, e.Now())
		return len(at) < 3
	})
	e.Run()
	if len(at) != 3 {
		t.Fatalf("ticks = %d, want 3", len(at))
	}
	for i, want := range []Time{10, 20, 30} {
		if at[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("stopped series left %d events pending", e.Pending())
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive period accepted")
		}
	}()
	NewEngine().Every(0, func() bool { return false })
}
