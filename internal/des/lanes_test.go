package des

import "testing"

func mkShards(n, units int, setup, unitCost Time) []Shard {
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{Setup: setup, Units: units, UnitCost: unitCost}
	}
	return shards
}

func TestMakespanSingleLaneIsSerialSum(t *testing.T) {
	cases := [][]Shard{
		nil,
		{},
		{{Setup: 500}},
		{{Units: 100, UnitCost: 7}},
		mkShards(9, 512, 2*Microsecond, 510),
		{{Setup: 10, Units: 3, UnitCost: 5}, {Setup: 0, Units: 1000, UnitCost: 1}, {Setup: 999}},
	}
	for i, shards := range cases {
		want := SerialTime(shards)
		// One lane must charge exactly the serial sum regardless of the
		// stream count and never pay the dispatch overhead.
		for _, streams := range []int{1, 6, 64} {
			got := Makespan(1, streams, 300, shards)
			if got != want {
				t.Fatalf("case %d streams=%d: makespan %d, want serial %d", i, streams, got, want)
			}
		}
	}
}

func TestMakespanMonotonicInLanes(t *testing.T) {
	shards := mkShards(12, 512, 2*Microsecond, 510)
	prev := Makespan(1, 6, 300, shards)
	for _, lanes := range []int{2, 4, 8} {
		got := Makespan(lanes, 6, 300, shards)
		if got > prev {
			t.Fatalf("makespan grew with lanes: %d lanes %d > previous %d", lanes, got, prev)
		}
		prev = got
	}
}

func TestMakespanFourLanesAtLeastTwice(t *testing.T) {
	// A Fig.-style checkpoint workload: 12 page-table leaves of 512
	// pages each, CXL-write-dominated. With 6 fabric streams, 4 lanes
	// must recover at least 2x (the ISSUE acceptance bar).
	shards := mkShards(12, 512, 2*Microsecond, 510)
	one := Makespan(1, 6, 300, shards)
	four := Makespan(4, 6, 300, shards)
	if four*2 > one {
		t.Fatalf("4-lane makespan %d not >=2x faster than 1-lane %d", four, one)
	}
}

func TestMakespanStreamCapBoundsSpeedup(t *testing.T) {
	// With 2 streams, copy-dominated work cannot speed up beyond 2x no
	// matter how many lanes: the fabric is the bottleneck.
	shards := mkShards(16, 512, 0, 510)
	one := Makespan(1, 2, 0, shards)
	many := Makespan(16, 2, 0, shards)
	if many*2 < one {
		t.Fatalf("16 lanes on 2 streams sped up beyond 2x: %d vs serial %d", many, one)
	}
	if many >= one {
		t.Fatalf("16 lanes on 2 streams gave no speedup: %d vs serial %d", many, one)
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// The makespan can never beat the slowest single shard, nor the
	// aggregate copy volume divided by the stream count.
	shards := []Shard{
		{Setup: Microsecond, Units: 2048, UnitCost: 510},
		{Setup: Microsecond, Units: 64, UnitCost: 510},
		{Setup: Microsecond, Units: 512, UnitCost: 510},
	}
	got := Makespan(8, 2, 300, shards)
	var slowest, volume Time
	for _, s := range shards {
		if s.Serial() > slowest {
			slowest = s.Serial()
		}
		volume += Time(s.Units) * s.UnitCost
	}
	if got < slowest {
		t.Fatalf("makespan %d beats slowest shard %d", got, slowest)
	}
	if got < volume/2 {
		t.Fatalf("makespan %d beats fabric volume bound %d", got, volume/2)
	}
}

func TestMakespanDeterministic(t *testing.T) {
	shards := mkShards(37, 129, 777, 91)
	shards[5].Units = 0
	shards[11].UnitCost = 0
	shards[20].Setup = 0
	for _, lanes := range []int{1, 2, 4, 8} {
		first := Makespan(lanes, 6, 300, shards)
		for i := 0; i < 5; i++ {
			if got := Makespan(lanes, 6, 300, shards); got != first {
				t.Fatalf("lanes=%d: run %d gave %d, first run gave %d", lanes, i, got, first)
			}
		}
	}
}

func TestMakespanDegenerateArgs(t *testing.T) {
	shards := mkShards(4, 8, 100, 10)
	want := Makespan(1, 1, 0, shards)
	if got := Makespan(0, 0, 0, shards); got != want {
		t.Fatalf("clamped args: got %d, want %d", got, want)
	}
	if got := Makespan(-3, -1, 0, shards); got != want {
		t.Fatalf("negative args: got %d, want %d", got, want)
	}
	if got := Makespan(4, 6, 300, nil); got != 0 {
		t.Fatalf("empty shard list: got %d, want 0", got)
	}
}
