package des

import (
	"testing"
)

func TestAdvance(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("fresh engine at %v", e.Now())
	}
	e.Advance(5 * Microsecond)
	e.Advance(10 * Nanosecond)
	if got := e.Now(); got != 5010 {
		t.Fatalf("Now = %v, want 5010ns", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative advance")
		}
	}()
	NewEngine().Advance(-1)
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEventTieBreakByInsertion(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order broken: %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 5 {
			e.After(10, step)
		}
	}
	e.After(10, step)
	e.Run()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	a := e.At(10, func() {})
	e.At(20, func() {})
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	e.Cancel(a)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10,20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v after draining", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done []int
	for i := 0; i < 4; i++ {
		i := i
		r.Exec(Time(100), func(end Time) { done = append(done, i) })
	}
	if r.Busy() != 2 || r.QueueLen() != 2 {
		t.Fatalf("busy=%d queue=%d, want 2/2", r.Busy(), r.QueueLen())
	}
	e.Run()
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	// First two finish at t=100, next two at t=200.
	if e.Now() != 200 {
		t.Fatalf("clock = %v, want 200", e.Now())
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on stray release")
		}
	}()
	r.Release()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if (2500 * Nanosecond).Micros() != 2.5 {
		t.Error("Micros conversion wrong")
	}
	if (250 * Microsecond).Millis() != 0.25 {
		t.Error("Millis conversion wrong")
	}
}
