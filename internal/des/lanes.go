package des

// Lane-parallel copy scheduling.
//
// Checkpoint/restore pipelines are embarrassingly parallel per VMA or
// page-table leaf (CRIU itself shards page dumps across workers), but
// the copies all funnel through a shared medium: the CXL fabric admits
// only a few concurrent full-rate streams, and local DRAM has a fixed
// number of memory-controller streams. Makespan models exactly that
// two-level structure: shards run on a fixed pool of worker lanes, and
// each shard's unit copies (pages, records) contend on a fixed pool of
// streams. Lanes therefore scale sub-linearly: past the stream count,
// extra lanes only overlap metadata work.
//
// The simulation runs on a private engine with deterministic FIFO
// tie-breaking, so a makespan is a pure function of its inputs — the
// same shard list always yields the same virtual duration, which the
// golden determinism tests rely on.

// Shard is one lane-schedulable unit of checkpoint/restore work: the
// state belonging to one VMA leaf, page-table leaf, or page batch.
type Shard struct {
	// Setup is lane-local work not subject to stream contention:
	// rebasing PTEs, attaching a leaf, encoding records.
	Setup Time
	// Units is the number of stream-limited unit copies the shard
	// performs (pages written to the device, records streamed).
	Units int
	// UnitCost is the full-rate cost of one unit copy.
	UnitCost Time
}

// Serial returns the shard's cost on a single uncontended lane.
func (s Shard) Serial() Time { return s.Setup + Time(s.Units)*s.UnitCost }

// SerialTime returns the single-lane makespan: the plain sum every
// sequential code path charged before lanes existed.
func SerialTime(shards []Shard) Time {
	var total Time
	for _, s := range shards {
		total += s.Serial()
	}
	return total
}

// UniformShards splits n uniform unit operations into lane shards of at
// most chunk units each, charging setupPerUnit of lane-local work and
// unitCost of stream-limited copy per unit. It is the shard builder for
// flat page runs that have no natural per-VMA or per-leaf grouping
// (CRIU page dumps, Mitosis shadow copies).
func UniformShards(n, chunk int, setupPerUnit, unitCost Time) []Shard {
	if chunk < 1 {
		chunk = 1
	}
	var shards []Shard
	for n > 0 {
		u := n
		if u > chunk {
			u = chunk
		}
		shards = append(shards, Shard{Setup: Time(u) * setupPerUnit, Units: u, UnitCost: unitCost})
		n -= u
	}
	return shards
}

// PipelineTime folds shards into virtual time. One lane returns the
// exact serial sum without running the event loop — provably equal to
// Makespan(1, ...) (see tests) and byte-identical to the historical
// sequential accounting. More lanes run the contention model.
func PipelineTime(lanes, streams int, dispatch Time, shards []Shard) Time {
	return PipelineTimeObs(lanes, streams, dispatch, shards, nil)
}

// ShardObserver receives one callback per shard as the pipeline
// schedules it: the shard's index in the input slice, the lane it ran
// on, and its [start, end) interval relative to the pipeline's time
// zero. Observers are passive — they are invoked with the same values
// whether or not anyone listens, so a nil observer and a recording
// observer yield byte-identical makespans. The tracer uses this to
// render per-lane shard spans.
type ShardObserver func(shard, lane int, start, end Time)

// PipelineTimeObs is PipelineTime with a shard observer. On the serial
// path the shards are laid out back-to-back on lane 0.
func PipelineTimeObs(lanes, streams int, dispatch Time, shards []Shard, obs ShardObserver) Time {
	if lanes <= 1 {
		if obs == nil {
			return SerialTime(shards)
		}
		var total Time
		for i, s := range shards {
			d := s.Serial()
			obs(i, 0, total, total+d)
			total += d
		}
		return total
	}
	return MakespanObs(lanes, streams, dispatch, shards, obs)
}

// streamChunk is how many unit copies a lane pushes through one stream
// grant. Chunking keeps the event count bounded (a 630 MB checkpoint is
// ~160k pages) while still interleaving lanes finely enough that stream
// contention, not grant granularity, dominates the makespan.
const streamChunk = 32

// Makespan returns the virtual duration of executing shards on `lanes`
// worker lanes whose unit copies share `streams` full-rate streams.
// Shards are dispatched FIFO in slice order; each occupies one lane for
// its setup plus its (possibly queued) unit copies. dispatch is the
// per-shard work-queue handoff cost, charged only when lanes > 1 — a
// single lane runs the shards inline, which keeps the one-lane makespan
// exactly equal to SerialTime and therefore byte-identical to the
// pre-lane sequential accounting.
func Makespan(lanes, streams int, dispatch Time, shards []Shard) Time {
	return MakespanObs(lanes, streams, dispatch, shards, nil)
}

// MakespanObs is Makespan with a shard observer. Lane identity is
// bookkeeping layered over the lane resource — the lowest free lane is
// marked busy when a shard's grant fires and freed when its last unit
// copy drains, immediately before the resource release, so FIFO
// handoff reuses the lowest-numbered lane. The event pattern is
// identical with or without an observer, so the makespan is too.
func MakespanObs(lanes, streams int, dispatch Time, shards []Shard, obs ShardObserver) Time {
	if len(shards) == 0 {
		return 0
	}
	if lanes < 1 {
		lanes = 1
	}
	if streams < 1 {
		streams = 1
	}
	eng := NewEngine()
	laneRes := NewResource(eng, lanes)
	streamRes := NewResource(eng, streams)
	laneBusy := make([]bool, lanes)
	for i, sh := range shards {
		i, sh := i, sh
		laneRes.Acquire(func(start Time) {
			lane := 0
			for laneBusy[lane] {
				lane++
			}
			laneBusy[lane] = true
			setup := sh.Setup
			if lanes > 1 {
				setup += dispatch
			}
			eng.At(start+setup, func() {
				copyUnits(streamRes, sh.Units, sh.UnitCost, func() {
					laneBusy[lane] = false
					if obs != nil {
						obs(i, lane, start, eng.Now())
					}
					laneRes.Release()
				})
			})
		})
	}
	eng.Run()
	return eng.Now()
}

// copyUnits pushes a shard's unit copies through the stream pool in
// chunks, then calls done (which releases the shard's lane).
func copyUnits(streamRes *Resource, units int, unitCost Time, done func()) {
	if units <= 0 || unitCost <= 0 {
		done()
		return
	}
	n := units
	if n > streamChunk {
		n = streamChunk
	}
	streamRes.Exec(Time(n)*unitCost, func(Time) {
		copyUnits(streamRes, units-n, unitCost, done)
	})
}
