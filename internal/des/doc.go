// Package des implements a deterministic discrete-event simulation engine.
//
// Every latency in this repository is accounted in virtual nanoseconds on
// an Engine. Simple sequential experiments advance the clock directly with
// Engine.Advance; concurrent scenarios (the CXLporter autoscaler) schedule
// events on the engine's heap and run them in timestamp order. Ties are
// broken by insertion order, so a simulation with a fixed RNG seed is
// fully reproducible.
//
// Entry points: NewEngine; Engine.At, After and Every schedule events,
// Engine.Run drains them, and NewResource models a contended unit with
// queueing. The engine's determinism is what makes every figure
// reproducible bit-for-bit (DESIGN.md §1).
package des
