package des

import "testing"

// collect returns an observer that appends (shard, lane, start, end)
// tuples, plus the backing slice pointer.
func collect() (ShardObserver, *[][4]Time) {
	var got [][4]Time
	return func(shard, lane int, start, end Time) {
		got = append(got, [4]Time{Time(shard), Time(lane), start, end})
	}, &got
}

func TestObserverDoesNotChangeMakespan(t *testing.T) {
	shards := mkShards(12, 512, 2*Microsecond, 510)
	shards[3].Units = 0
	for _, lanes := range []int{1, 2, 4, 8} {
		want := Makespan(lanes, 6, 300, shards)
		obs, _ := collect()
		if got := MakespanObs(lanes, 6, 300, shards, obs); got != want {
			t.Fatalf("lanes=%d: observed makespan %d != unobserved %d", lanes, got, want)
		}
		obs, _ = collect()
		if got := PipelineTimeObs(lanes, 6, 300, shards, obs); got != want {
			t.Fatalf("lanes=%d: observed pipeline time %d != unobserved %d", lanes, got, want)
		}
	}
}

func TestObserverSeesEveryShardOnce(t *testing.T) {
	shards := mkShards(9, 64, 1000, 50)
	for _, lanes := range []int{1, 3, 16} {
		obs, got := collect()
		MakespanObs(lanes, 4, 300, shards, obs)
		if len(*got) != len(shards) {
			t.Fatalf("lanes=%d: observed %d shards, want %d", lanes, len(*got), len(shards))
		}
		seen := make(map[Time]bool)
		for _, s := range *got {
			if seen[s[0]] {
				t.Fatalf("lanes=%d: shard %d observed twice", lanes, s[0])
			}
			seen[s[0]] = true
		}
	}
}

func TestObservedIntervalsAreWellFormed(t *testing.T) {
	shards := mkShards(12, 512, 2*Microsecond, 510)
	for _, lanes := range []int{2, 4} {
		obs, got := collect()
		makespan := MakespanObs(lanes, 6, 300, shards, obs)

		// Every interval sits inside [0, makespan]; the slowest finisher
		// defines the makespan exactly.
		var latest Time
		byLane := make(map[Time][][2]Time)
		for _, s := range *got {
			lane, start, end := s[1], s[2], s[3]
			if start < 0 || end < start || end > makespan {
				t.Fatalf("lanes=%d: bad interval [%d,%d) vs makespan %d", lanes, start, end, makespan)
			}
			if int(lane) < 0 || int(lane) >= lanes {
				t.Fatalf("lanes=%d: shard ran on lane %d", lanes, lane)
			}
			if end > latest {
				latest = end
			}
			byLane[lane] = append(byLane[lane], [2]Time{start, end})
		}
		if latest != makespan {
			t.Fatalf("lanes=%d: last shard ends at %d, makespan %d", lanes, latest, makespan)
		}

		// Intervals on one lane never overlap: the lane is held from
		// grant to last-unit drain. Observation order is completion
		// order, so sort per lane by start first.
		for lane, ivs := range byLane {
			for i := range ivs {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a[0] < b[1] && b[0] < a[1] {
						t.Fatalf("lanes=%d lane %d: intervals [%d,%d) and [%d,%d) overlap",
							lanes, lane, a[0], a[1], b[0], b[1])
					}
				}
			}
		}
	}
}

func TestSerialObserverLaysShardsBackToBack(t *testing.T) {
	shards := []Shard{
		{Setup: 10, Units: 3, UnitCost: 5},
		{Setup: 7},
		{Units: 100, UnitCost: 1},
	}
	obs, got := collect()
	total := PipelineTimeObs(1, 6, 300, shards, obs)
	if total != SerialTime(shards) {
		t.Fatalf("serial observed total %d != SerialTime %d", total, SerialTime(shards))
	}
	var pos Time
	for i, s := range *got {
		if s[0] != Time(i) || s[1] != 0 {
			t.Fatalf("serial path: span %d = shard %d on lane %d, want shard %d on lane 0", i, s[0], s[1], i)
		}
		if s[2] != pos || s[3] != pos+shards[i].Serial() {
			t.Fatalf("shard %d interval [%d,%d), want [%d,%d)", i, s[2], s[3], pos, pos+shards[i].Serial())
		}
		pos = s[3]
	}
}
