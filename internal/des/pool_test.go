package des

import (
	"sync/atomic"
	"testing"
)

func TestPoolSerialRunsInIndexOrder(t *testing.T) {
	var order []int
	NewPool(1).Each(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	n := 0
	p.Each(3, func(int) { n++ })
	if n != 3 {
		t.Fatalf("nil pool ran %d jobs, want 3", n)
	}
}

func TestPoolParallelCoversEveryIndexOnce(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	NewPool(8).Each(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestPoolResultsLandByIndex(t *testing.T) {
	const n = 64
	out := make([]int, n)
	NewPool(4).Each(n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPoolEdgeCases(t *testing.T) {
	ran := false
	NewPool(4).Each(0, func(int) { ran = true })
	if ran {
		t.Fatal("n=0 ran a job")
	}
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Fatal("sub-1 worker counts must clamp to 1")
	}
	// More workers than jobs clamps to job count.
	n := 0
	NewPool(16).Each(1, func(int) { n++ })
	if n != 1 {
		t.Fatalf("ran %d jobs, want 1", n)
	}
}
