package des

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations, mirroring time.Duration style but for virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// String renders a Time with an adaptive unit, for experiment output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Event is a scheduled callback. Events are pooled: once dispatched (or
// popped dead) the struct returns to the owning engine's free list and
// its generation counter advances, so stale EventIDs cannot touch the
// recycled slot.
type event struct {
	at   Time
	seq  uint64 // insertion order; tie-breaker for determinism
	gen  uint32 // recycle generation; guards Cancel after reuse
	fn   func()
	dead bool
	idx  int
}

// EventID identifies a scheduled event so it can be cancelled. The
// generation snapshot makes an ID single-use: after the event fires and
// its struct is recycled for a later schedule, the stale ID no longer
// matches and Cancel is a no-op.
type EventID struct {
	ev  *event
	gen uint32
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded virtual clock plus event queue.
// It is not safe for concurrent use; simulations run on one goroutine.
// A ShardedEngine owns one Engine per shard and drives them under epoch
// barriers (DESIGN.md §13); each shard engine is still only ever touched
// by one goroutine at a time.
type Engine struct {
	now      Time
	seq      uint64
	events   eventHeap
	free     []*event // recycled event structs; hot path is alloc-free
	executed uint64
	stopped  bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Advance moves the clock forward by d. It panics on negative d, which
// always indicates an accounting bug.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative advance %d", d))
	}
	e.now += d
}

// At schedules fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("des: schedule in the past: %v < now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev, ev.gen}
}

// alloc takes an event struct from the free list, or the heap allocator
// when the pool is dry (cold start, or a new high-water mark of pending
// events).
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list. Bumping the
// generation first invalidates every EventID that still points here.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.dead = false
	ev.gen++
	e.free = append(e.free, ev)
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event
// that already fired is a no-op: firing recycles the event struct and
// advances its generation, so a stale ID no longer matches.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil && id.ev.gen == id.gen {
		id.ev.dead = true
	}
}

// Executed reports the number of events dispatched since construction.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Step runs the single earliest event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		// Recycle before dispatch: if fn schedules a follow-up event it
		// reuses this struct, keeping the steady state allocation-free.
		e.recycle(ev)
		e.executed++
		fn()
		return true
	}
	return false
}

// Stop makes the in-flight Run or RunUntil return after the current
// event finishes, leaving the remaining queue unexecuted. It exists for
// the serving layer's cancellation path: a session's telemetry sink —
// which runs on the engine's own goroutine, inside an event — calls
// Stop when its context is done, and the replay unwinds cleanly at the
// next event boundary. Stop is terminal for the engine: the abandoned
// queue is never drained, so a stopped simulation's partial results
// must be treated as such (the facade surfaces this as ErrInterrupted).
// Call it only from the goroutine running the engine.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Run drains the event queue. Events may schedule further events.
func (e *Engine) Run() {
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the
// clock to the deadline. A Stop from inside an event ends the loop
// early without touching the clock.
func (e *Engine) RunUntil(deadline Time) {
	for !e.stopped && len(e.events) > 0 {
		// Peek.
		for len(e.events) > 0 && e.events[0].dead {
			e.recycle(heap.Pop(&e.events).(*event))
		}
		if len(e.events) == 0 {
			break
		}
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		e.executed++
		fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// nextAt returns the timestamp of the earliest live event, or false
// when the queue is drained. The sharded engine's barrier loop uses it
// to compute the global horizon.
func (e *Engine) nextAt() (Time, bool) {
	for len(e.events) > 0 && e.events[0].dead {
		e.recycle(heap.Pop(&e.events).(*event))
	}
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// runBefore dispatches every event with a timestamp strictly below end
// — one epoch of the sharded engine — leaving the clock at the last
// executed event. It reports the number of events dispatched.
func (e *Engine) runBefore(end Time) int {
	n := 0
	for {
		at, ok := e.nextAt()
		if !ok || at >= end {
			return n
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		fn := ev.fn
		e.recycle(ev)
		e.executed++
		fn()
		n++
	}
}

// Every schedules fn to run every period nanoseconds of virtual time,
// starting one period from now, until fn returns false. The background
// maintenance loops (capacity reclaim, A-bit reset) use it so their
// cadence lives on the same deterministic event heap as the work they
// observe. The first tick returning false ends the series; no EventID
// is exposed because the predicate is the cancellation.
func (e *Engine) Every(period Time, fn func() bool) {
	if period <= 0 {
		panic(fmt.Sprintf("des: non-positive period %d", period))
	}
	var tick func()
	tick = func() {
		if !fn() {
			return
		}
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Resource is a FIFO server pool with a fixed number of slots: the model
// for CPU cores on a node. Work items queue when all slots are busy.
type Resource struct {
	eng   *Engine
	slots int
	busy  int
	queue []func(start Time)
}

// NewResource returns a resource with n slots on engine e.
func NewResource(e *Engine, n int) *Resource {
	if n <= 0 {
		panic("des: resource needs at least one slot")
	}
	return &Resource{eng: e, slots: n}
}

// Busy reports the number of occupied slots.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports the number of waiting work items.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Acquire requests a slot. fn runs (is called) at the virtual time the
// slot is granted, receiving that time. The caller must later call
// Release exactly once per granted slot.
func (r *Resource) Acquire(fn func(start Time)) {
	if r.busy < r.slots {
		r.busy++
		fn(r.eng.Now())
		return
	}
	r.queue = append(r.queue, fn)
}

// Release frees a slot, immediately granting it to the head of the queue
// if any.
func (r *Resource) Release() {
	if r.busy <= 0 {
		panic("des: release without acquire")
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		next(r.eng.Now())
		return
	}
	r.busy--
}

// Exec is the common acquire→advance→release pattern for one-shot jobs:
// it occupies a slot for dur virtual nanoseconds starting as soon as a
// slot frees, then calls done with the completion time.
func (r *Resource) Exec(dur Time, done func(end Time)) {
	r.Acquire(func(start Time) {
		r.eng.At(start+dur, func() {
			r.Release()
			if done != nil {
				done(r.eng.Now())
			}
		})
	})
}
