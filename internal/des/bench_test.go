package des

import "testing"

func BenchmarkAdvance(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Advance(100)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkResourceExec(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, 8)
	for i := 0; i < b.N; i++ {
		r.Exec(100, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
