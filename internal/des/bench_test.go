package des

import (
	"runtime"
	"testing"
)

func BenchmarkAdvance(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Advance(100)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkResourceExec(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, 8)
	for i := 0; i < b.N; i++ {
		r.Exec(100, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// benchLoad seeds the benchmark workload: per-node chains of chunked
// copy events with ring replication sends — the des-level shape of the
// 64-node lane benchmark the trajectory harness runs.
func benchLoad(fab Fabric, lookahead Time, nodes, requests, chunks int) {
	for i := 0; i < nodes; i++ {
		i := i
		eng := fab.Shard(i)
		var request func(r int)
		request = func(r int) {
			var step func(left int)
			step = func(left int) {
				if left == 0 {
					dst := (i + 1) % nodes
					fab.Send(i, dst, lookahead, func() {})
					if r+1 < requests {
						eng.After(Millisecond, func() { request(r + 1) })
					}
					return
				}
				eng.After(16*Microsecond, func() { step(left - 1) })
			}
			step(chunks)
		}
		eng.At(Time(i)*Microsecond, func() { request(0) })
	}
}

func benchEngine(b *testing.B, workers int) {
	const (
		nodes     = 64
		requests  = 20
		chunks    = 100
		lookahead = 2 * Millisecond
	)
	b.ReportAllocs()
	var events uint64
	for n := 0; n < b.N; n++ {
		fab := NewFabric(nodes, workers, lookahead)
		benchLoad(fab, lookahead, nodes, requests, chunks)
		fab.Run()
		events = fab.Executed()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

func BenchmarkEngine1Workers(b *testing.B) { benchEngine(b, 1) }

func BenchmarkEngine8Workers(b *testing.B) { benchEngine(b, 8) }

// TestZeroAllocsPerEventSteadyState is the allocation ceiling of the
// pooled event path: once the free list is primed, dispatching an
// event and scheduling its successor allocates nothing.
func TestZeroAllocsPerEventSteadyState(t *testing.T) {
	const warm, total = 1000, 101000
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < total {
			e.After(Microsecond, tick)
		}
	}
	e.After(Microsecond, tick)
	for count < warm {
		if !e.Step() {
			t.Fatal("queue drained during warmup")
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	e.Run()
	runtime.ReadMemStats(&m1)
	perEvent := float64(m1.Mallocs-m0.Mallocs) / float64(total-warm)
	if perEvent > 0.001 {
		t.Fatalf("steady state allocates %.4f objects/event, want 0", perEvent)
	}
	if e.Executed() != total {
		t.Fatalf("executed %d events, want %d", e.Executed(), total)
	}
}

// TestShardedAllocCeiling bounds the sharded path: barriers may
// allocate (outbox growth, sort scaffolding) but the per-event cost
// must stay far below one object.
func TestShardedAllocCeiling(t *testing.T) {
	const lookahead = 2 * Millisecond
	run := func() uint64 {
		se := NewShardedEngine(16, 1, lookahead)
		for i := 0; i < 16; i++ {
			i := i
			eng := se.Shard(i)
			count := 0
			var tick func()
			tick = func() {
				count++
				if count%50 == 0 {
					se.Send(i, (i+1)%16, lookahead, func() {})
				}
				if count < 5000 {
					eng.After(16*Microsecond, tick)
				}
			}
			eng.After(Microsecond, tick)
		}
		se.Run()
		return se.Executed()
	}
	run() // prime pools and lazy scaffolding
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	events := run()
	runtime.ReadMemStats(&m1)
	perEvent := float64(m1.Mallocs-m0.Mallocs) / float64(events)
	// The run builds 16 fresh engines and tick closures up front;
	// amortized over ~80k events that must stay well under one object
	// per event.
	if perEvent > 0.05 {
		t.Fatalf("sharded path allocates %.4f objects/event, want < 0.05", perEvent)
	}
}
