package des

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the sharded engine: per-shard event queues owned
// by worker goroutines, synchronized by epoch barriers with a lookahead
// window derived from the minimum cross-shard latency (the fabric hop
// cost). See DESIGN.md §13 for the synchronization model and the
// determinism argument.
//
// The conservative invariant: during an epoch ending at time E, a shard
// only executes events with timestamps strictly below E, and any
// cross-shard message it emits is delivered no earlier than
// sender.Now() + lookahead >= horizon + lookahead = E. Messages are
// parked in per-source outboxes (race-free: each source shard is owned
// by exactly one worker within an epoch) and merged at the barrier in
// deterministic (timestamp, send seq, source shard) order. The executed
// event set and every delivery order are therefore independent of the
// worker count and of goroutine interleaving, which is what keeps
// Results.Fingerprint byte-identical at SimWorkers = 1, 2, and 8.

// xmsg is one cross-shard message parked in a source outbox until the
// next epoch barrier.
type xmsg struct {
	at  Time
	seq uint64 // per-source send order
	src int
	dst int
	fn  func()
}

// xmsgLess is the deterministic merge order at an epoch barrier:
// timestamp, then send seq, then source shard id. Per-source seqs make
// the triple unique, so the order is total and worker-independent.
func xmsgLess(a, b xmsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.src < b.src
}

// ShardedEngine runs one event queue per shard (node) under
// conservative epoch barriers. Within an epoch shards are fully
// independent, so a static shard→worker partition can execute them on
// parallel goroutines; cross-shard effects only happen at barriers.
//
// Construct with NewShardedEngine, seed initial events through
// Shard(i).At, then call Run. Send is only legal while Run is
// dispatching (from inside an executing event) or before the first
// epoch; its delay must be at least the lookahead.
type ShardedEngine struct {
	shards    []*Engine
	workers   int
	lookahead Time
	outbox    [][]xmsg // per-source parked messages
	xseq      []uint64 // per-source send counters
	merged    []xmsg   // barrier merge scratch, reused across epochs
	epochs    uint64
	sent      uint64
}

// NewShardedEngine returns an engine with n shard queues executed by up
// to workers goroutines, using the given lookahead window (the minimum
// cross-shard delivery latency, i.e. the fabric hop cost).
func NewShardedEngine(n, workers int, lookahead Time) *ShardedEngine {
	if n <= 0 {
		panic(fmt.Sprintf("des: sharded engine needs at least one shard, got %d", n))
	}
	if workers <= 0 {
		workers = 1
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("des: non-positive lookahead %d", lookahead))
	}
	se := &ShardedEngine{
		shards:    make([]*Engine, n),
		workers:   workers,
		lookahead: lookahead,
		outbox:    make([][]xmsg, n),
		xseq:      make([]uint64, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// Shard returns shard i's engine for seeding and local scheduling.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Shards reports the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Workers reports the configured worker count.
func (se *ShardedEngine) Workers() int { return se.workers }

// Lookahead reports the epoch lookahead window.
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// Epochs reports the number of barrier-separated epochs executed.
func (se *ShardedEngine) Epochs() uint64 { return se.epochs }

// Sent reports the number of cross-shard messages delivered.
func (se *ShardedEngine) Sent() uint64 { return se.sent }

// Executed reports the total events dispatched across all shards.
func (se *ShardedEngine) Executed() uint64 {
	var n uint64
	for _, s := range se.shards {
		n += s.executed
	}
	return n
}

// Now returns the frontier of the simulation: the maximum shard clock.
func (se *ShardedEngine) Now() Time {
	var t Time
	for _, s := range se.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Pending reports the live scheduled events across all shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, s := range se.shards {
		n += s.Pending()
	}
	return n
}

// Send schedules fn on shard dst at src's current time plus delay. The
// delay must be at least the lookahead — that floor is what licenses
// shards to run an entire epoch without observing each other. The
// message parks in src's outbox and is merged at the next barrier, so
// calling this from any shard's executing event is race-free.
func (se *ShardedEngine) Send(src, dst int, delay Time, fn func()) {
	if delay < se.lookahead {
		panic(fmt.Sprintf("des: cross-shard delay %v below lookahead %v", delay, se.lookahead))
	}
	if dst < 0 || dst >= len(se.shards) {
		panic(fmt.Sprintf("des: send to shard %d of %d", dst, len(se.shards)))
	}
	se.outbox[src] = append(se.outbox[src], xmsg{
		at:  se.shards[src].now + delay,
		seq: se.xseq[src],
		src: src,
		dst: dst,
		fn:  fn,
	})
	se.xseq[src]++
}

// flush merges every parked cross-shard message onto its destination
// queue in deterministic (at, seq, src) order. It reports whether any
// message was delivered.
func (se *ShardedEngine) flush() bool {
	se.merged = se.merged[:0]
	for src := range se.outbox {
		se.merged = append(se.merged, se.outbox[src]...)
		se.outbox[src] = se.outbox[src][:0]
	}
	if len(se.merged) == 0 {
		return false
	}
	sort.Slice(se.merged, func(i, j int) bool { return xmsgLess(se.merged[i], se.merged[j]) })
	for i := range se.merged {
		m := &se.merged[i]
		se.shards[m.dst].At(m.at, m.fn)
		m.fn = nil
		se.sent++
	}
	return true
}

// horizon returns the earliest live event timestamp across all shards.
func (se *ShardedEngine) horizon() (Time, bool) {
	var h Time
	ok := false
	for _, s := range se.shards {
		if at, live := s.nextAt(); live && (!ok || at < h) {
			h, ok = at, true
		}
	}
	return h, ok
}

// Run drains every shard queue to completion under epoch barriers.
func (se *ShardedEngine) Run() {
	w := se.workers
	if w > len(se.shards) {
		w = len(se.shards)
	}
	if w <= 1 {
		se.run(func(end Time) {
			for _, s := range se.shards {
				s.runBefore(end)
			}
		})
		return
	}

	// Persistent workers with a static round-robin shard partition:
	// worker id owns shards id, id+w, id+2w, … for the whole run, so a
	// shard engine is only ever touched by one goroutine per epoch and
	// the partition itself never affects results (shards are
	// independent inside an epoch by the lookahead invariant).
	starts := make([]chan Time, w)
	var done sync.WaitGroup
	for id := 0; id < w; id++ {
		starts[id] = make(chan Time)
		go func(id int) {
			for end := range starts[id] {
				for s := id; s < len(se.shards); s += w {
					se.shards[s].runBefore(end)
				}
				done.Done()
			}
		}(id)
	}
	se.run(func(end Time) {
		done.Add(w)
		for _, c := range starts {
			c <- end
		}
		done.Wait()
	})
	for _, c := range starts {
		close(c)
	}
}

// run is the barrier loop: deliver parked messages, compute the global
// horizon, execute one epoch of events below horizon+lookahead, repeat
// until both queues and outboxes are dry. epoch executes one epoch
// across all shards (serially or on the worker pool).
func (se *ShardedEngine) run(epoch func(end Time)) {
	for {
		flushed := se.flush()
		h, ok := se.horizon()
		if !ok {
			if flushed {
				continue
			}
			return
		}
		epoch(h + se.lookahead)
		se.epochs++
	}
}

// Fabric is the scheduling surface a multi-node simulation runs
// against: per-node engines plus lookahead-bounded cross-node delivery.
// NewFabric picks the implementation from the worker count — a single
// unified queue at workers <= 1 (the legacy sequential engine), the
// sharded epoch engine otherwise. Workloads built on this interface are
// byte-deterministic across implementations as long as same-timestamp
// events on *different* nodes commute (nodes share no mutable state),
// which is the discipline the lookahead floor enforces.
type Fabric interface {
	// Shard returns node i's engine for seeding and local scheduling.
	Shard(i int) *Engine
	// Shards reports the node count.
	Shards() int
	// Workers reports the configured worker count.
	Workers() int
	// Send delivers fn to node dst after delay (>= the fabric hop
	// cost) of the sending node src's current time.
	Send(src, dst int, delay Time, fn func())
	// Run drains all queues.
	Run()
	// Executed reports total events dispatched.
	Executed() uint64
}

// monoFabric is the workers<=1 Fabric: every node shares one unified
// event queue, exactly the pre-sharding sequential engine. It is the
// baseline the sharded engine is benchmarked against.
type monoFabric struct {
	eng       *Engine
	n         int
	lookahead Time
}

func (m *monoFabric) Shard(int) *Engine { return m.eng }
func (m *monoFabric) Shards() int       { return m.n }
func (m *monoFabric) Workers() int      { return 1 }
func (m *monoFabric) Run()              { m.eng.Run() }
func (m *monoFabric) Executed() uint64  { return m.eng.Executed() }

func (m *monoFabric) Send(src, dst int, delay Time, fn func()) {
	if delay < m.lookahead {
		panic(fmt.Sprintf("des: cross-shard delay %v below lookahead %v", delay, m.lookahead))
	}
	if dst < 0 || dst >= m.n {
		panic(fmt.Sprintf("des: send to shard %d of %d", dst, m.n))
	}
	m.eng.After(delay, fn)
}

// NewFabric returns a fabric for n nodes: a single unified queue when
// workers <= 1, the sharded epoch engine otherwise. lookahead is the
// minimum cross-node delivery latency in both cases.
func NewFabric(n, workers int, lookahead Time) Fabric {
	if workers <= 1 {
		if n <= 0 {
			panic(fmt.Sprintf("des: fabric needs at least one shard, got %d", n))
		}
		if lookahead <= 0 {
			panic(fmt.Sprintf("des: non-positive lookahead %d", lookahead))
		}
		return &monoFabric{eng: NewEngine(), n: n, lookahead: lookahead}
	}
	return NewShardedEngine(n, workers, lookahead)
}
