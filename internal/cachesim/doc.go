// Package cachesim models the per-node last-level cache.
//
// Two models are provided. PageLRU is the model the FaaS execution
// engine uses: it tracks residency at page granularity with exact LRU
// replacement, which is cheap enough to simulate multi-hundred-megabyte
// working sets and captures the effect the paper leans on — function
// working sets that fit in the 64 MB L3 hide CXL latency; those that do
// not (BFS, Bert) expose it (§2.2, §7.1). SetAssoc is an exact
// line-granularity set-associative cache used by microbenchmarks and
// tests to validate PageLRU's behaviour on small footprints.
//
// Entry points: NewPageLRU for the execution engine's model,
// NewSetAssoc for the exact reference model.
package cachesim
