package cachesim

// Line identifies a cached unit: for PageLRU callers use the physical
// frame key (caches are physically indexed, so sharers hit on each
// other's lines); any uint64 key works.
type Line = uint64

// node is one entry in the intrusive LRU list. Entries live in a
// preallocated arena so steady-state operation performs no allocation.
type node struct {
	key        Line
	prev, next int32
}

const nilIdx = -1

// PageLRU is an exact-LRU fully-associative cache tracked at page
// granularity.
type PageLRU struct {
	capacity int
	nodes    []node
	head     int32 // MRU
	tail     int32 // LRU
	items    map[Line]int32
	free     []int32

	Hits   int64
	Misses int64
}

// NewPageLRU returns a cache holding capacityPages pages.
func NewPageLRU(capacityPages int) *PageLRU {
	if capacityPages <= 0 {
		panic("cachesim: capacity must be positive")
	}
	c := &PageLRU{
		capacity: capacityPages,
		head:     nilIdx,
		tail:     nilIdx,
		items:    make(map[Line]int32, capacityPages),
	}
	return c
}

// Capacity returns the capacity in pages.
func (c *PageLRU) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *PageLRU) Len() int { return len(c.items) }

func (c *PageLRU) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev != nilIdx {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nilIdx {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *PageLRU) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = nilIdx
	n.next = c.head
	if c.head != nilIdx {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail == nilIdx {
		c.tail = i
	}
}

// Access touches key, returning true on hit. On miss the key is
// installed, evicting the LRU page if the cache is full.
func (c *PageLRU) Access(key Line) bool {
	if i, ok := c.items[key]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		c.Hits++
		return true
	}
	c.Misses++
	var i int32
	switch {
	case len(c.items) >= c.capacity:
		// Reuse the LRU slot.
		i = c.tail
		c.unlink(i)
		delete(c.items, c.nodes[i].key)
	case len(c.free) > 0:
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	default:
		c.nodes = append(c.nodes, node{})
		i = int32(len(c.nodes) - 1)
	}
	c.nodes[i].key = key
	c.pushFront(i)
	c.items[key] = i
	return false
}

// Contains reports residency without touching recency or counters.
func (c *PageLRU) Contains(key Line) bool {
	_, ok := c.items[key]
	return ok
}

// Invalidate removes key if resident (page migration, frame free).
func (c *PageLRU) Invalidate(key Line) {
	if i, ok := c.items[key]; ok {
		c.unlink(i)
		delete(c.items, key)
		c.free = append(c.free, i)
	}
}

// Reset empties the cache and clears counters.
func (c *PageLRU) Reset() {
	c.nodes = c.nodes[:0]
	c.free = c.free[:0]
	c.head, c.tail = nilIdx, nilIdx
	c.items = make(map[Line]int32, c.capacity)
	c.Hits, c.Misses = 0, 0
}

// Key packs an address-space id and page number into a cache key. The
// TLB (virtually indexed) uses this; the LLC is keyed by physical frame
// identity instead.
func Key(space uint32, page uint64) Line {
	return uint64(space)<<32 | (page & 0xffffffff)
}
