package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageLRUBasics(t *testing.T) {
	c := NewPageLRU(2)
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("second access missed")
	}
	c.Access(2)
	c.Access(3) // evicts 1 (LRU)
	if c.Contains(1) {
		t.Fatal("LRU entry not evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Fatal("resident entries lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestPageLRURecency(t *testing.T) {
	c := NewPageLRU(2)
	c.Access(1)
	c.Access(2)
	c.Access(1) // 2 becomes LRU
	c.Access(3) // evicts 2
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("recency not honoured")
	}
}

func TestPageLRUInvalidate(t *testing.T) {
	c := NewPageLRU(4)
	c.Access(1)
	c.Access(2)
	c.Invalidate(1)
	if c.Contains(1) || c.Len() != 1 {
		t.Fatal("invalidate broken")
	}
	c.Invalidate(99) // no-op
	// Freed slot is reusable.
	c.Access(3)
	c.Access(4)
	c.Access(5)
	if c.Len() != 4 {
		t.Fatalf("len = %d after refill", c.Len())
	}
}

func TestPageLRUCyclicThrash(t *testing.T) {
	// A cyclic sweep over a working set larger than the cache yields no
	// hits — the behaviour that exposes CXL latency for BFS/Bert.
	c := NewPageLRU(100)
	for sweep := 0; sweep < 3; sweep++ {
		for i := uint64(0); i < 150; i++ {
			c.Access(i)
		}
	}
	if c.Hits != 0 {
		t.Fatalf("cyclic thrash produced %d hits", c.Hits)
	}
	// A working set that fits produces hits on every revisit.
	c.Reset()
	for sweep := 0; sweep < 3; sweep++ {
		for i := uint64(0); i < 80; i++ {
			c.Access(i)
		}
	}
	if c.Hits != 160 || c.Misses != 80 {
		t.Fatalf("resident sweeps: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestPageLRUReset(t *testing.T) {
	c := NewPageLRU(4)
	c.Access(1)
	c.Reset()
	if c.Len() != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Fatal("reset incomplete")
	}
	if c.Access(1) {
		t.Fatal("stale entry after reset")
	}
}

// TestPageLRUMatchesReference cross-checks the intrusive implementation
// against a straightforward map+slice reference model.
func TestPageLRUMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 16
		c := NewPageLRU(cap)
		var ref []uint64 // front = MRU
		contains := func(k uint64) int {
			for i, v := range ref {
				if v == k {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 500; op++ {
			k := uint64(rng.Intn(40))
			if rng.Intn(10) == 0 {
				c.Invalidate(k)
				if i := contains(k); i >= 0 {
					ref = append(ref[:i], ref[i+1:]...)
				}
				continue
			}
			got := c.Access(k)
			want := contains(k) >= 0
			if got != want {
				return false
			}
			if i := contains(k); i >= 0 {
				ref = append(ref[:i], ref[i+1:]...)
			}
			ref = append([]uint64{k}, ref...)
			if len(ref) > cap {
				ref = ref[:cap]
			}
			if c.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssocGeometry(t *testing.T) {
	c := NewSetAssoc(64*1024, 64, 8)
	if c.Sets() != 128 || c.Ways() != 8 || c.LineSize() != 64 {
		t.Fatalf("geometry %d sets %d ways", c.Sets(), c.Ways())
	}
}

func TestSetAssocConflictMisses(t *testing.T) {
	// 8-way set: 9 lines mapping to the same set thrash it.
	c := NewSetAssoc(64*1024, 64, 8)
	stride := uint64(c.Sets() * c.LineSize())
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 9; i++ {
			c.Access(i * stride)
		}
	}
	if c.Hits != 0 {
		t.Fatalf("conflict thrash produced %d hits", c.Hits)
	}
	c.Reset()
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(i * stride)
		}
	}
	if c.Hits != 16 {
		t.Fatalf("resident set: hits=%d", c.Hits)
	}
}

func TestSetAssocSameLine(t *testing.T) {
	c := NewSetAssoc(4096, 64, 4)
	c.Access(100)
	if !c.Access(101) {
		t.Fatal("same-line access missed")
	}
	if c.Access(100 + 64) {
		t.Fatal("next-line access hit")
	}
}

func TestSetAssocBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on indivisible capacity")
		}
	}()
	NewSetAssoc(1000, 64, 8)
}

func TestKeyPacking(t *testing.T) {
	k1 := Key(1, 0x1000)
	k2 := Key(2, 0x1000)
	k3 := Key(1, 0x1001)
	if k1 == k2 || k1 == k3 {
		t.Fatal("key collisions")
	}
}
