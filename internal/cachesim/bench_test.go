package cachesim

import "testing"

func BenchmarkPageLRUHit(b *testing.B) {
	c := NewPageLRU(16384)
	for i := uint64(0); i < 16384; i++ {
		c.Access(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i % 16384))
	}
}

func BenchmarkPageLRUThrash(b *testing.B) {
	c := NewPageLRU(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i % 40000))
	}
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c := NewSetAssoc(1<<20, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) % (4 << 20))
	}
}
