package cachesim

// SetAssoc is an exact set-associative cache with LRU replacement within
// each set, tracked at cache-line granularity. It is used by the fault
// microbenchmarks and as an oracle in tests; the FaaS engine uses
// PageLRU for scale.
type SetAssoc struct {
	ways     int
	sets     int
	lineSize int

	// sets[i] holds up to `ways` tags in LRU order (front = MRU).
	tags [][]uint64

	Hits   int64
	Misses int64
}

// NewSetAssoc builds a cache of capacityBytes with the given line size
// and associativity. capacityBytes must be divisible by lineSize*ways.
func NewSetAssoc(capacityBytes int64, lineSize, ways int) *SetAssoc {
	if lineSize <= 0 || ways <= 0 {
		panic("cachesim: invalid geometry")
	}
	lines := capacityBytes / int64(lineSize)
	sets := int(lines) / ways
	if sets <= 0 || int64(sets*ways*lineSize) != capacityBytes {
		panic("cachesim: capacity not divisible by lineSize*ways")
	}
	c := &SetAssoc{ways: ways, sets: sets, lineSize: lineSize}
	c.tags = make([][]uint64, sets)
	return c
}

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// LineSize returns the line size in bytes.
func (c *SetAssoc) LineSize() int { return c.lineSize }

// Access touches the line containing byte address addr; true on hit.
func (c *SetAssoc) Access(addr uint64) bool {
	line := addr / uint64(c.lineSize)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	s := c.tags[set]
	for i, t := range s {
		if t == tag {
			// Move to front (MRU).
			copy(s[1:i+1], s[:i])
			s[0] = tag
			c.Hits++
			return true
		}
	}
	c.Misses++
	if len(s) < c.ways {
		s = append(s, 0)
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = tag
	c.tags[set] = s
	return false
}

// Reset empties the cache and clears counters.
func (c *SetAssoc) Reset() {
	for i := range c.tags {
		c.tags[i] = nil
	}
	c.Hits, c.Misses = 0, 0
}
