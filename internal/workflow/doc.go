// Package workflow implements the FaaS-workflow extension the paper's
// discussion sketches (§8): multi-function applications whose stages
// pass intermediate payloads to each other. Two transports are modelled
// on the real substrate:
//
//   - ByValue: each hop stages the payload through CXL memory and the
//     consumer copies it into local DRAM before computing on it — the
//     serialization-free but copy-ful baseline.
//
//   - ByReference: the producer publishes the payload once into a
//     shared CXL mapping and every downstream stage maps the same
//     frames read-only, zero-copy — "extending CXLfork to provide
//     shared-memory semantics over CXL for communication".
//
// The chain driver places consecutive stages on alternating nodes, so
// every hop is a genuine cross-node transfer.
//
// Entry points: RunChain for one transport, Compare for the by-value
// versus by-reference comparison.
package workflow
