package workflow

import (
	"fmt"

	"cxlfork/internal/cluster"
	"cxlfork/internal/des"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// Transport selects how payloads move between stages.
type Transport int

// Transports.
const (
	// ByValue copies the payload into each consumer's local memory.
	ByValue Transport = iota
	// ByReference shares the payload via CXL mappings, zero-copy.
	ByReference
)

func (t Transport) String() string {
	if t == ByReference {
		return "by-reference"
	}
	return "by-value"
}

// payloadBase is where stages map incoming payloads.
const payloadBase = pt.VirtAddr(0x5_0000_0000)

// Result summarizes one chain execution.
type Result struct {
	Transport Transport
	Stages    int
	Pages     int
	// Latency is end-to-end chain time (payload handoffs + per-stage
	// payload scans; stage compute excluded to isolate communication).
	Latency des.Time
	// LocalPagesCopied counts pages landed in node-local DRAM.
	LocalPagesCopied int
	// FabricBytes is CXL read+write traffic.
	FabricBytes int64
}

// RunChain executes an n-stage chain over the cluster with a payload of
// the given page count, alternating stages across nodes.
func RunChain(c *cluster.Cluster, stages, payloadPages int, tr Transport) (Result, error) {
	if stages < 2 {
		return Result{}, fmt.Errorf("workflow: need at least 2 stages")
	}
	res := Result{Transport: tr, Stages: stages, Pages: payloadPages}
	readBefore, writeBefore := c.Dev.ReadBytes, c.Dev.WriteBytes
	var localBefore int64
	for _, n := range c.Nodes {
		localBefore += int64(n.Mem.UsedPages())
	}
	start := c.Eng.Now()

	// Stage 0 produces the payload.
	producer := c.Node(0).NewTask("stage0")
	defer c.Node(0).Exit(producer)
	_, pfns, err := producer.MM.MmapShared(payloadBase, payloadPages, "[payload]")
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < payloadPages; i++ {
		if err := producer.MM.Publish(payloadBase+pt.VirtAddr(i<<pt.PageShift), memsim.NewToken()); err != nil {
			return Result{}, err
		}
	}

	// Each downstream stage consumes the previous payload and (for the
	// middle stages) republishes a result of the same size.
	prevPFNs := pfns
	for s := 1; s < stages; s++ {
		node := c.Node(s % len(c.Nodes))
		task := node.NewTask(fmt.Sprintf("stage%d", s))

		switch tr {
		case ByReference:
			if _, err := task.MM.MapSharedFrames(payloadBase, prevPFNs, "[payload-in]"); err != nil {
				return Result{}, err
			}
			// Scan the payload straight from CXL (cacheable).
			for i := 0; i < payloadPages; i++ {
				if err := task.MM.Access(payloadBase+pt.VirtAddr(i<<pt.PageShift), false); err != nil {
					return Result{}, err
				}
			}
		case ByValue:
			// Copy the staged payload into local memory, then scan it.
			if _, err := task.MM.Mmap(vma.VMA{
				Start: payloadBase, End: payloadBase + pt.VirtAddr(payloadPages<<pt.PageShift),
				Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: "[payload-copy]",
			}); err != nil {
				return Result{}, err
			}
			pool := c.Dev.Pool()
			for i := 0; i < payloadPages; i++ {
				va := payloadBase + pt.VirtAddr(i<<pt.PageShift)
				local, err := node.Mem.Alloc()
				if err != nil {
					return Result{}, err
				}
				memsim.Copy(local, pool.Frame(int(prevPFNs[i])))
				c.Dev.ReadBytes += int64(node.P.PageSize)
				task.MM.MapFrame(va, local, pt.Writable|pt.Accessed)
				node.Mem.Put(local)
				node.Eng.Advance(node.P.CXLReadPage)
				if err := task.MM.Access(va, false); err != nil {
					return Result{}, err
				}
			}
		}

		// Middle stages publish their own output for the next hop.
		if s < stages-1 {
			outBase := payloadBase + pt.VirtAddr((payloadPages+16)<<pt.PageShift)
			_, outPFNs, err := task.MM.MmapShared(outBase, payloadPages, "[payload-out]")
			if err != nil {
				return Result{}, err
			}
			for i := 0; i < payloadPages; i++ {
				if err := task.MM.Publish(outBase+pt.VirtAddr(i<<pt.PageShift), memsim.NewToken()); err != nil {
					return Result{}, err
				}
			}
			prevPFNs = outPFNs
			// The stage must stay alive until its consumer finishes; in
			// this synchronous chain we defer teardown to the end.
			defer node.Exit(task)
		} else {
			defer node.Exit(task)
		}
	}

	res.Latency = c.Eng.Now() - start
	var localAfter int64
	for _, n := range c.Nodes {
		localAfter += int64(n.Mem.UsedPages())
	}
	res.LocalPagesCopied = int(localAfter - localBefore)
	res.FabricBytes = (c.Dev.ReadBytes - readBefore) + (c.Dev.WriteBytes - writeBefore)
	return res, nil
}

// Compare runs the same chain under both transports on fresh clusters
// built by mk and returns (byValue, byReference).
func Compare(mk func() *cluster.Cluster, stages, payloadPages int) (Result, Result, error) {
	bv, err := RunChain(mk(), stages, payloadPages, ByValue)
	if err != nil {
		return Result{}, Result{}, err
	}
	br, err := RunChain(mk(), stages, payloadPages, ByReference)
	if err != nil {
		return Result{}, Result{}, err
	}
	return bv, br, nil
}
