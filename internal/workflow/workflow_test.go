package workflow

import (
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/params"
)

func mkCluster() *cluster.Cluster {
	p := params.Default()
	p.NodeDRAMBytes = 256 << 20
	p.CXLBytes = 256 << 20
	return cluster.MustNew(p, 2)
}

func TestByReferenceZeroCopy(t *testing.T) {
	c := mkCluster()
	res, err := RunChain(c, 3, 256, ByReference) // 1 MB payload
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalPagesCopied != 0 {
		t.Fatalf("by-reference copied %d pages locally", res.LocalPagesCopied)
	}
	if res.Latency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestByValueCopies(t *testing.T) {
	c := mkCluster()
	res, err := RunChain(c, 3, 256, ByValue)
	if err != nil {
		t.Fatal(err)
	}
	// Two consuming stages each copy the full payload.
	if res.LocalPagesCopied != 2*256 {
		t.Fatalf("by-value copied %d pages, want 512", res.LocalPagesCopied)
	}
}

func TestByReferenceFasterAndLeaner(t *testing.T) {
	bv, br, err := Compare(mkCluster, 4, 1024) // 4 MB payload, 4 stages
	if err != nil {
		t.Fatal(err)
	}
	if br.Latency >= bv.Latency {
		t.Fatalf("by-reference %v not faster than by-value %v", br.Latency, bv.Latency)
	}
	if br.LocalPagesCopied >= bv.LocalPagesCopied {
		t.Fatalf("by-reference not leaner: %d vs %d pages",
			br.LocalPagesCopied, bv.LocalPagesCopied)
	}
}

func TestChainCleansUp(t *testing.T) {
	c := mkCluster()
	if _, err := RunChain(c, 5, 128, ByReference); err != nil {
		t.Fatal(err)
	}
	if c.Dev.UsedBytes() != 0 {
		t.Fatalf("device retains %d bytes after chain", c.Dev.UsedBytes())
	}
	if got := c.LocalUsedBytes(); got != 0 {
		t.Fatalf("nodes retain %d bytes after chain", got)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := RunChain(mkCluster(), 1, 16, ByValue); err == nil {
		t.Fatal("single-stage chain accepted")
	}
}

func TestTransportNames(t *testing.T) {
	if ByValue.String() != "by-value" || ByReference.String() != "by-reference" {
		t.Fatal("names wrong")
	}
}
