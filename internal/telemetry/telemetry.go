package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"cxlfork/internal/des"
)

// DefaultSeriesCap is the per-series ring capacity when the caller
// passes zero: 4096 samples at the default 100 ms tick is ~7 minutes
// of virtual time before the ring starts overwriting.
const DefaultSeriesCap = 4096

// Kind distinguishes monotone counters from point-in-time gauges. The
// exporters map it onto the Prometheus/OpenMetrics TYPE line.
type Kind uint8

const (
	KindGauge Kind = iota
	KindCounter
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Label is one dimension of a series identity (e.g. node="node1").
type Label struct {
	K, V string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{K: k, V: v} }

// labelString renders labels as Prometheus exposition text:
// {a="x",b="y"}, or "" when there are none. Labels are sorted at
// registration, so the rendering is deterministic.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.K, l.V)
	}
	b.WriteByte('}')
	return b.String()
}

// Probe reads one metric value at a sample instant. Probes must be
// pure observers: they may memoize work keyed on `now`, but must not
// mutate simulation state, or sampling would perturb the run it is
// watching.
type Probe func(now des.Time) float64

// Sample is one (virtual time, value) point in a series.
type Sample struct {
	T des.Time
	V float64
}

// Series is a fixed-capacity ring of samples for one metric. When the
// ring is full the oldest sample is overwritten and Dropped is
// incremented — sampling never reallocates and never blocks.
type Series struct {
	name    string
	labels  []Label
	help    string
	kind    Kind
	probe   Probe
	buf     []Sample
	head    int // index of the oldest sample once the ring is full
	dropped int64
}

// Name returns the metric name (without labels).
func (s *Series) Name() string { return s.name }

// Labels returns the series labels, sorted by key.
func (s *Series) Labels() []Label { return s.labels }

// Help returns the one-line metric description.
func (s *Series) Help() string { return s.help }

// Kind returns whether the series is a gauge or a counter.
func (s *Series) Kind() Kind { return s.kind }

// Key returns the full series identity: name plus rendered labels.
func (s *Series) Key() string { return s.name + labelString(s.labels) }

// Dropped returns how many samples were overwritten because the ring
// was full.
func (s *Series) Dropped() int64 { return s.dropped }

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.buf) }

func (s *Series) append(t des.Time, v float64) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, Sample{T: t, V: v})
		return
	}
	s.buf[s.head] = Sample{T: t, V: v}
	s.head = (s.head + 1) % len(s.buf)
	s.dropped++
}

// at returns the i-th retained sample in time order.
func (s *Series) at(i int) Sample {
	if len(s.buf) < cap(s.buf) {
		return s.buf[i]
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Samples returns the retained samples oldest-first.
func (s *Series) Samples() []Sample {
	out := make([]Sample, len(s.buf))
	for i := range s.buf {
		out[i] = s.at(i)
	}
	return out
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	if len(s.buf) == 0 {
		return Sample{}, false
	}
	return s.at(len(s.buf) - 1), true
}

// Window calls fn for every retained sample with from <= T <= to, in
// time order, without allocating.
func (s *Series) Window(from, to des.Time, fn func(Sample)) {
	for i := 0; i < len(s.buf); i++ {
		sm := s.at(i)
		if sm.T < from || sm.T > to {
			continue
		}
		fn(sm)
	}
}

// Registry holds every registered series and samples them on demand.
// A nil *Registry is the disabled state: every method is a safe no-op,
// so instrumented code needs no enabled-checks (the same contract as
// trace.Tracer).
type Registry struct {
	every      des.Time
	seriesCap  int
	series     []*Series // registration order — the sampling order
	byKey      map[string]*Series
	ticks      int64
	sink       SinkFunc
	sinkPanics int64
}

// SinkFunc observes one completed sampling tick. The registry calls it
// synchronously at the end of Sample, on the goroutine driving the
// simulation, after every series has appended its point for `now` —
// so a sink reading Series.Last sees a consistent cross-series cut of
// the tick. Sinks are the streaming-export hook (DESIGN.md §15): the
// serving layer converts each tick into a live telemetry frame. A sink
// must not mutate the registry.
type SinkFunc func(now des.Time)

// SetSink installs fn as the registry's sampling sink (nil removes it).
// At most one sink is supported; the owner of the registry decides.
// Like every probe, the sink is observational: installing one changes
// no sampled value, so runs with and without a sink stay byte-identical
// — unless the sink itself stops the engine, which is exactly the
// cancellation path the serving layer uses. A sink that panics is
// absorbed and uninstalled (see Sample), so a broken exporter cannot
// corrupt the run it was watching.
func (r *Registry) SetSink(fn SinkFunc) {
	if r == nil {
		return
	}
	r.sink = fn
}

// New builds an enabled registry sampling nominally every `every`
// virtual-time units (the owner drives the actual tick) with the given
// per-series ring capacity (DefaultSeriesCap when <= 0).
func New(every des.Time, seriesCap int) *Registry {
	if seriesCap <= 0 {
		seriesCap = DefaultSeriesCap
	}
	return &Registry{every: every, seriesCap: seriesCap, byKey: map[string]*Series{}}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// SampleEvery returns the nominal sampling period.
func (r *Registry) SampleEvery() des.Time {
	if r == nil {
		return 0
	}
	return r.every
}

func (r *Registry) register(name, help string, kind Kind, probe Probe, labels []Label) *Series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	s := &Series{name: name, labels: ls, help: help, kind: kind, probe: probe,
		buf: make([]Sample, 0, r.seriesCap)}
	key := s.Key()
	if _, dup := r.byKey[key]; dup {
		panic("telemetry: duplicate series " + key)
	}
	r.byKey[key] = s
	r.series = append(r.series, s)
	return s
}

// Gauge registers a point-in-time metric read by probe at every tick.
func (r *Registry) Gauge(name, help string, probe Probe, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, probe, labels)
}

// CounterFunc registers a monotone metric read by probe at every tick
// — for counters the instrumented layer already maintains.
func (r *Registry) CounterFunc(name, help string, probe Probe, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, KindCounter, probe, labels)
}

// Counter registers a push-style counter and returns its handle. A nil
// registry returns a nil handle whose Add/Inc are no-ops, so call
// sites stay unconditional.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, KindCounter, func(des.Time) float64 { return c.v }, labels)
	return c
}

// Sample evaluates every probe at virtual time now and appends one
// point per series, in registration order.
func (r *Registry) Sample(now des.Time) {
	if r == nil {
		return
	}
	r.ticks++
	for _, s := range r.series {
		s.append(now, s.probe(now))
	}
	if r.sink != nil {
		r.safeSink(now)
	}
}

// safeSink invokes the sink with panic isolation: every series has
// already appended its point for the tick, so a sink that panics (a
// broken exporter, a closed channel) loses only its own delivery — the
// sampled timeline, tick count, and run results are untouched. The
// panicking sink is uninstalled so one bad export cannot panic every
// subsequent tick; SinkPanics reports how many times that happened.
func (r *Registry) safeSink(now des.Time) {
	defer func() {
		if recover() != nil {
			r.sinkPanics++
			r.sink = nil
		}
	}()
	r.sink(now)
}

// SinkPanics returns how many sampling sinks were uninstalled after
// panicking mid-tick (0 in a healthy run).
func (r *Registry) SinkPanics() int64 {
	if r == nil {
		return 0
	}
	return r.sinkPanics
}

// Ticks returns how many sample ticks have run.
func (r *Registry) Ticks() int64 {
	if r == nil {
		return 0
	}
	return r.ticks
}

// Dropped returns the total ring-buffer overwrites across all series.
func (r *Registry) Dropped() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, s := range r.series {
		n += s.dropped
	}
	return n
}

// Lookup returns the series with the given key (name plus rendered
// labels, e.g. `kernel_tasks{node="node0"}`), or nil.
func (r *Registry) Lookup(key string) *Series {
	if r == nil {
		return nil
	}
	return r.byKey[key]
}

// Series returns every series sorted by (name, labels) — the exporters'
// deterministic order.
func (r *Registry) Series() []*Series {
	if r == nil {
		return nil
	}
	out := append([]*Series(nil), r.series...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out
}

// Counter is a push-style monotone counter handle. Nil handles (from a
// disabled registry) absorb updates silently.
type Counter struct {
	v float64
}

// Add increases the counter. Negative deltas panic: counters are
// monotone by definition, and a negative delta is always a bug.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic("telemetry: negative counter delta")
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}
