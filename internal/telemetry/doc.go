// Package telemetry is the cluster's deterministic time-series layer:
// a virtual-time sampling engine, ring-buffer series with drop
// accounting, Prometheus/OpenMetrics/CSV/JSON exporters, and an SLO
// burn-rate rule engine (DESIGN.md §11).
//
// Layers register probes — pure read-only closures — against a shared
// Registry; the porter drives one Sample tick every params.SampleEvery
// of virtual time, evaluating every probe in registration order at the
// same instant. Because the clock is the DES virtual clock and probes
// never mutate simulation state, two identical runs produce
// byte-identical exports, and a run with sampling enabled produces the
// same porter fingerprint as one without.
//
// A nil *Registry is the disabled state: every method, and every
// Counter handle it hands out, is a safe no-op — the zero-overhead
// nil-receiver contract shared with internal/trace.
//
// The SLO engine (slo.go) layers declarative objectives over the
// sampled series: each objective is checked over a short and a long
// sliding window, firing only when both windows burn the error budget
// at or above the configured factor, and resolving with hysteresis at
// half that threshold. Firing objectives may carry an action — the
// hook the porter uses to let an occupancy alert drive early capacity
// reclaim.
package telemetry
