package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cxlfork/internal/des"
)

// ErrDisabled is returned by every exporter when telemetry was not
// enabled for the run.
var ErrDisabled = errors.New("telemetry: not enabled")

// formatValue renders a float the same way on every platform: shortest
// round-trip representation, no locale, no exponent surprises for the
// integer-valued counters that dominate the registry.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the latest value of every series in the
// Prometheus text exposition format (version 0.0.4). Series are
// ordered by (name, labels) and timestamps are virtual milliseconds,
// so two identical runs produce byte-identical output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return ErrDisabled
	}
	bw := bufio.NewWriter(w)
	prev := ""
	for _, s := range r.Series() {
		if s.name != prev {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
			prev = s.name
		}
		last, ok := s.Last()
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "%s%s %s %d\n", s.name, labelString(s.labels),
			formatValue(last.V), int64(last.T)/int64(des.Millisecond))
	}
	return bw.Flush()
}

// WriteOpenMetrics writes the latest value of every series in
// OpenMetrics 1.0 text format: family names have the conventional
// `_total` suffix stripped on TYPE/HELP lines, timestamps are virtual
// seconds, and the output ends with the mandatory `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return ErrDisabled
	}
	bw := bufio.NewWriter(w)
	prev := ""
	for _, s := range r.Series() {
		if s.name != prev {
			fam := strings.TrimSuffix(s.name, "_total")
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, s.kind)
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, s.help)
			prev = s.name
		}
		last, ok := s.Last()
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "%s%s %s %s\n", s.name, labelString(s.labels),
			formatValue(last.V), formatValue(last.T.Seconds()))
	}
	fmt.Fprintln(bw, "# EOF")
	return bw.Flush()
}

// WriteCSV dumps the full retained timeline of every series as
// `series,t_ns,value` rows, preceded by `#` comment lines recording
// the sampling period, tick count, and drops. Ordering follows
// Series(), then sample time, so the dump is deterministic.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return ErrDisabled
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sample_every_ns=%d ticks=%d dropped=%d\n", int64(r.every), r.ticks, r.Dropped())
	fmt.Fprintln(bw, "series,t_ns,value")
	for _, s := range r.Series() {
		key := s.Key()
		for i := 0; i < s.Len(); i++ {
			sm := s.at(i)
			// Keys embed quoted labels; quote the field so commas
			// inside label values cannot split the row.
			fmt.Fprintf(bw, "%q,%d,%s\n", key, int64(sm.T), formatValue(sm.V))
		}
	}
	return bw.Flush()
}

type jsonSample struct {
	T int64   `json:"t_ns"`
	V float64 `json:"value"`
}

type jsonSeries struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Help    string            `json:"help"`
	Dropped int64             `json:"dropped,omitempty"`
	Samples []jsonSample      `json:"samples"`
}

type jsonExport struct {
	SampleEveryNS int64        `json:"sample_every_ns"`
	Ticks         int64        `json:"ticks"`
	Dropped       int64        `json:"dropped"`
	Series        []jsonSeries `json:"series"`
}

// WriteJSON dumps the full retained timeline as one JSON document.
// encoding/json sorts map keys, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return ErrDisabled
	}
	doc := jsonExport{SampleEveryNS: int64(r.every), Ticks: r.ticks, Dropped: r.Dropped()}
	for _, s := range r.Series() {
		js := jsonSeries{Name: s.name, Kind: s.kind.String(), Help: s.help, Dropped: s.dropped}
		if len(s.labels) > 0 {
			js.Labels = map[string]string{}
			for _, l := range s.labels {
				js.Labels[l.K] = l.V
			}
		}
		js.Samples = make([]jsonSample, 0, s.Len())
		for i := 0; i < s.Len(); i++ {
			sm := s.at(i)
			js.Samples = append(js.Samples, jsonSample{T: int64(sm.T), V: sm.V})
		}
		doc.Series = append(doc.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
