package telemetry

import "cxlfork/internal/des"

// SLO rule engine: declarative objectives evaluated over sliding
// virtual-time windows with multi-window burn-rate alerting.
//
// An objective declares a target for one series and an error budget:
// the fraction of samples allowed to violate the target. The burn rate
// over a window is (violating fraction) / budget — burn 1.0 spends the
// budget exactly, burn 2.0 spends it twice as fast. Following the
// multi-window pattern from SRE practice, an alert fires only when
// BOTH a short and a long window burn at or above the factor: the long
// window proves the problem is sustained, the short window proves it
// is still happening. The alert resolves with hysteresis — both
// windows must fall to half the firing threshold — so a series
// oscillating around the target cannot flap the alert across window
// boundaries.

// Objective declares one service-level objective over a registry
// series.
type Objective struct {
	// Name identifies the objective in alerts.
	Name string
	// Series is the registry key of the watched series (name plus
	// rendered labels, e.g. "cxl_utilization").
	Series string
	// Target is the boundary value. A sample violates the objective
	// when it is above Target (or below, when Below is set).
	Target float64
	// Below inverts the comparison: the objective is "stay >= Target".
	Below bool
	// Budget is the allowed violating fraction of samples, in (0, 1].
	// Zero defaults to 0.1 (10% of samples may violate).
	Budget float64
	// Short and Long are the two sliding windows, Short < Long.
	Short, Long des.Time
	// Factor is the burn rate at which the alert fires on both
	// windows. Zero defaults to 2 (burning the budget twice as fast
	// as allowed).
	Factor float64
	// ResolveRatio scales Factor to the resolve threshold: the alert
	// resolves when both burns fall to Factor*ResolveRatio or below.
	// Zero defaults to 0.5.
	ResolveRatio float64
}

// Alert records one firing or resolve transition.
type Alert struct {
	Objective string
	At        des.Time
	// Firing is true on the fire transition, false on resolve.
	Firing bool
	// Short and Long are the burn rates at the transition instant.
	Short, Long float64
}

type objState struct {
	Objective
	action func()
	firing bool
}

// Engine evaluates objectives against a registry after each sample
// tick. A nil *Engine (from a disabled registry) is a safe no-op.
type Engine struct {
	reg    *Registry
	objs   []*objState
	alerts []Alert
	fired  int64
}

// NewEngine builds an SLO engine over reg; a disabled registry yields
// a nil engine.
func NewEngine(reg *Registry) *Engine {
	if !reg.Enabled() {
		return nil
	}
	return &Engine{reg: reg}
}

// Add registers an objective. The optional action runs on every
// evaluation while the alert is firing — the hook the capacity manager
// uses to drive early reclaim.
func (e *Engine) Add(o Objective, action func()) {
	if e == nil {
		return
	}
	if o.Budget <= 0 || o.Budget > 1 {
		o.Budget = 0.1
	}
	if o.Factor <= 0 {
		o.Factor = 2
	}
	if o.ResolveRatio <= 0 {
		o.ResolveRatio = 0.5
	}
	if o.Short <= 0 || o.Long <= 0 || o.Short > o.Long {
		panic("telemetry: objective windows must satisfy 0 < Short <= Long")
	}
	e.objs = append(e.objs, &objState{Objective: o, action: action})
}

// burn returns the burn rate of o over [now-window, now]: the fraction
// of window samples violating the target, divided by the budget. An
// empty window burns nothing.
func (e *Engine) burn(o Objective, window, now des.Time) float64 {
	s := e.reg.Lookup(o.Series)
	if s == nil {
		return 0
	}
	from := des.Time(0)
	if now > window {
		from = now - window
	}
	total, bad := 0, 0
	s.Window(from, now, func(sm Sample) {
		total++
		if (o.Below && sm.V < o.Target) || (!o.Below && sm.V > o.Target) {
			bad++
		}
	})
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / o.Budget
}

// BurnRate exposes the burn computation for one named objective and
// window — the inspection hook for tests and cxlstat.
func (e *Engine) BurnRate(name string, window, now des.Time) float64 {
	if e == nil {
		return 0
	}
	for _, o := range e.objs {
		if o.Name == name {
			return e.burn(o.Objective, window, now)
		}
	}
	return 0
}

// Evaluate advances every objective to virtual time now: computes both
// window burns, applies the fire/resolve transitions, and runs the
// actions of firing objectives.
func (e *Engine) Evaluate(now des.Time) {
	if e == nil {
		return
	}
	for _, o := range e.objs {
		short := e.burn(o.Objective, o.Short, now)
		long := e.burn(o.Objective, o.Long, now)
		resolve := o.Factor * o.ResolveRatio
		switch {
		case !o.firing && short >= o.Factor && long >= o.Factor:
			o.firing = true
			e.fired++
			e.alerts = append(e.alerts, Alert{Objective: o.Name, At: now, Firing: true, Short: short, Long: long})
		case o.firing && short <= resolve && long <= resolve:
			o.firing = false
			e.alerts = append(e.alerts, Alert{Objective: o.Name, At: now, Firing: false, Short: short, Long: long})
		}
		if o.firing && o.action != nil {
			o.action()
		}
	}
}

// Firing reports whether the named objective is currently firing.
func (e *Engine) Firing(name string) bool {
	if e == nil {
		return false
	}
	for _, o := range e.objs {
		if o.Name == name {
			return o.firing
		}
	}
	return false
}

// Alerts returns every fire/resolve transition in evaluation order.
func (e *Engine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	return append([]Alert(nil), e.alerts...)
}

// Fired returns how many fire transitions have occurred.
func (e *Engine) Fired() int64 {
	if e == nil {
		return 0
	}
	return e.fired
}
