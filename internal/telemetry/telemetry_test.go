package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/des"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	r.Gauge("g", "h", func(des.Time) float64 { return 1 })
	r.CounterFunc("c", "h", func(des.Time) float64 { return 1 })
	c := r.Counter("p", "h")
	if c != nil {
		t.Fatal("nil registry must hand out nil counters")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	r.Sample(0)
	if r.Ticks() != 0 || r.Dropped() != 0 || r.Series() != nil || r.Lookup("g") != nil {
		t.Fatal("nil registry must absorb every call")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != ErrDisabled {
		t.Fatalf("WritePrometheus on nil = %v, want ErrDisabled", err)
	}
	if err := r.WriteCSV(&bytes.Buffer{}); err != ErrDisabled {
		t.Fatalf("WriteCSV on nil = %v, want ErrDisabled", err)
	}
}

func TestRingOverwriteAndDropAccounting(t *testing.T) {
	r := New(des.Millisecond, 4)
	var v float64
	r.Gauge("g", "test gauge", func(des.Time) float64 { return v })
	for i := 0; i < 7; i++ {
		v = float64(i)
		r.Sample(des.Time(i) * des.Millisecond)
	}
	s := r.Lookup("g")
	if s == nil {
		t.Fatal("series not found")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want ring cap 4", s.Len())
	}
	if s.Dropped() != 3 || r.Dropped() != 3 {
		t.Fatalf("dropped = %d/%d, want 3", s.Dropped(), r.Dropped())
	}
	got := s.Samples()
	for i, sm := range got {
		want := float64(3 + i) // samples 0..2 overwritten
		if sm.V != want || sm.T != des.Time(3+i)*des.Millisecond {
			t.Fatalf("sample %d = %+v, want v=%g", i, sm, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.V != 6 {
		t.Fatalf("Last = %+v,%v want v=6", last, ok)
	}
}

func TestWindowIteration(t *testing.T) {
	r := New(des.Millisecond, 16)
	r.Gauge("g", "h", func(now des.Time) float64 { return float64(now) })
	for i := 0; i < 10; i++ {
		r.Sample(des.Time(i))
	}
	var n int
	r.Lookup("g").Window(3, 6, func(sm Sample) { n++ })
	if n != 4 {
		t.Fatalf("window [3,6] saw %d samples, want 4", n)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r := New(0, 8)
	r.Gauge("g", "h", func(des.Time) float64 { return 0 }, L("node", "n0"))
	r.Gauge("g", "h", func(des.Time) float64 { return 0 }, L("node", "n0"))
}

func TestLabelsSortedAndDistinct(t *testing.T) {
	r := New(0, 8)
	r.Gauge("g", "h", func(des.Time) float64 { return 0 }, L("z", "1"), L("a", "2"))
	s := r.Lookup(`g{a="2",z="1"}`)
	if s == nil {
		t.Fatal("labels must be sorted into the key")
	}
	// Same name, different labels: distinct series.
	r.Gauge("g", "h", func(des.Time) float64 { return 0 }, L("a", "3"))
	if len(r.Series()) != 2 {
		t.Fatalf("got %d series, want 2", len(r.Series()))
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	New(0, 8).Counter("c_total", "h").Add(-1)
}

// buildRegistry assembles a small registry deterministically — the
// exporter tests run it twice and require byte-identical output.
func buildRegistry() *Registry {
	r := New(100*des.Millisecond, 32)
	var occ float64
	r.Gauge("cxl_utilization", "device occupancy fraction", func(des.Time) float64 { return occ })
	c := r.Counter("kernel_faults_total", "page faults", L("node", "node0"))
	r.Gauge("kernel_tasks", "live tasks", func(now des.Time) float64 { return float64(now / des.Second) }, L("node", "node0"))
	for i := 0; i < 5; i++ {
		occ = 0.1 * float64(i)
		c.Add(float64(i * 3))
		r.Sample(des.Time(i) * 100 * des.Millisecond)
	}
	return r
}

func TestExportDeterminismAndShape(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRegistry().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("prometheus exports of identical registries differ")
	}
	out := a.String()
	for _, want := range []string{
		"# HELP cxl_utilization device occupancy fraction",
		"# TYPE cxl_utilization gauge",
		"# TYPE kernel_faults_total counter",
		`kernel_faults_total{node="node0"} 30 400`,
		"cxl_utilization 0.4 400",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var c1, c2 bytes.Buffer
	if err := buildRegistry().WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry().WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Fatal("CSV exports of identical registries differ")
	}
	if !strings.Contains(c1.String(), `"cxl_utilization",400000000,0.4`) {
		t.Fatalf("CSV missing timeline row:\n%s", c1.String())
	}

	var om bytes.Buffer
	if err := buildRegistry().WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatal("OpenMetrics output must end with # EOF")
	}
	if !strings.Contains(om.String(), "# TYPE kernel_faults counter") {
		t.Fatalf("OpenMetrics must strip _total from the family name:\n%s", om.String())
	}

	var j1, j2 bytes.Buffer
	if err := buildRegistry().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Fatal("JSON exports of identical registries differ")
	}
}

// Prometheus requires one HELP/TYPE block per metric name even when
// several labeled series share it; a name that sorts between a bare
// series and its labeled siblings must not split the block.
func TestPrometheusGroupsFamilies(t *testing.T) {
	r := New(0, 8)
	zero := func(des.Time) float64 { return 0 }
	r.Gauge("m", "h", zero, L("node", "a"))
	r.Gauge("m", "h", zero, L("node", "b"))
	r.Gauge("m_x", "h", zero)
	r.Sample(0)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE m gauge"); n != 1 {
		t.Fatalf("family m has %d TYPE lines, want 1:\n%s", n, buf.String())
	}
}

func TestSeriesAccessors(t *testing.T) {
	reg := New(100*des.Millisecond, 8)
	if reg.SampleEvery() != 100*des.Millisecond {
		t.Fatal("SampleEvery mismatch")
	}
	reg.Gauge("acc_gauge", "an accessor gauge", func(des.Time) float64 { return 1 }, L("node", "n0"))
	s := reg.Lookup(`acc_gauge{node="n0"}`)
	if s == nil {
		t.Fatal("labeled series not found")
	}
	if s.Name() != "acc_gauge" || s.Help() != "an accessor gauge" || s.Kind() != KindGauge {
		t.Fatalf("accessor mismatch: %q %q %v", s.Name(), s.Help(), s.Kind())
	}
	if got := s.Labels(); len(got) != 1 || got[0] != L("node", "n0") {
		t.Fatalf("labels = %v", got)
	}
}

// A sink that panics must lose only its own delivery: the tick still
// counts, every series still appends its point, the sink is
// uninstalled, and later ticks run clean (DESIGN.md §16 hardening).
func TestPanickingSinkIsAbsorbedAndUninstalled(t *testing.T) {
	r := New(0, 8)
	r.Gauge("g", "h", func(now des.Time) float64 { return float64(now) })
	calls := 0
	r.SetSink(func(des.Time) {
		calls++
		panic("broken exporter")
	})
	r.Sample(10)
	r.Sample(20)
	if calls != 1 {
		t.Fatalf("sink called %d times, want 1 (uninstall after panic)", calls)
	}
	if r.SinkPanics() != 1 {
		t.Fatalf("SinkPanics = %d, want 1", r.SinkPanics())
	}
	if r.Ticks() != 2 {
		t.Fatalf("ticks = %d, want 2 — panic must not eat the tick", r.Ticks())
	}
	s := r.Lookup("g")
	if s.Len() != 2 {
		t.Fatalf("series has %d samples, want 2", s.Len())
	}
	if got := s.Samples(); got[0] != (Sample{T: 10, V: 10}) || got[1] != (Sample{T: 20, V: 20}) {
		t.Fatalf("samples perturbed: %v", got)
	}
}

// The panicking-sink path must not change what was sampled: a registry
// fed identically with a healthy sink, a panicking sink, and no sink
// exports byte-identical expositions.
func TestSinkFailureDoesNotAlterExport(t *testing.T) {
	build := func(sink SinkFunc) string {
		r := New(0, 8)
		v := 0.0
		r.Gauge("g", "h", func(des.Time) float64 { v++; return v })
		r.SetSink(sink)
		for i := des.Time(1); i <= 4; i++ {
			r.Sample(i * 10)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	none := build(nil)
	healthy := build(func(des.Time) {})
	// A "slow" sink (burning work inside the tick) and a panicking one:
	// neither may leak into the sampled values.
	slow := build(func(des.Time) {
		x := 0
		for i := 0; i < 1000; i++ {
			x += i
		}
		_ = x
	})
	broken := build(func(des.Time) { panic("boom") })
	if healthy != none || slow != none || broken != none {
		t.Fatal("sink behavior leaked into the exported samples")
	}
}

// SinkPanics on a nil registry must be as safe as every other method.
func TestSinkPanicsNilSafe(t *testing.T) {
	var r *Registry
	if r.SinkPanics() != 0 {
		t.Fatal("nil registry reports sink panics")
	}
}
