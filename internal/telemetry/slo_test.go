package telemetry

import (
	"testing"

	"cxlfork/internal/des"
)

// synthetic builds a registry with one gauge fed from vals at a 100 ms
// tick and returns the registry plus the tick driver.
func synthetic(vals []float64) (*Registry, func(e *Engine)) {
	r := New(100*des.Millisecond, 1024)
	i := 0
	r.Gauge("sig", "synthetic signal", func(des.Time) float64 { return vals[i] })
	drive := func(e *Engine) {
		for i = 0; i < len(vals); i++ {
			now := des.Time(i) * 100 * des.Millisecond
			r.Sample(now)
			e.Evaluate(now)
		}
	}
	return r, drive
}

func TestNilEngineIsNoOp(t *testing.T) {
	var e *Engine
	e.Add(Objective{Short: 1, Long: 2}, nil)
	e.Evaluate(0)
	if e.Firing("x") || e.Alerts() != nil || e.Fired() != 0 || e.BurnRate("x", 1, 1) != 0 {
		t.Fatal("nil engine must absorb every call")
	}
	if NewEngine(nil) != nil {
		t.Fatal("NewEngine over a disabled registry must be nil")
	}
}

func TestBurnRateMath(t *testing.T) {
	// 10 samples in the window, 4 violating (> 0.9), budget 0.2:
	// burn = (4/10)/0.2 = 2.0 exactly.
	vals := []float64{0.5, 1.0, 0.5, 1.0, 0.5, 1.0, 0.5, 1.0, 0.5, 0.5}
	reg, drive := synthetic(vals)
	e := NewEngine(reg)
	e.Add(Objective{
		Name: "o", Series: "sig", Target: 0.9, Budget: 0.2,
		Short: 450 * des.Millisecond, Long: 900 * des.Millisecond,
	}, nil)
	drive(e)
	now := des.Time(len(vals)-1) * 100 * des.Millisecond
	if got := e.BurnRate("o", 900*des.Millisecond, now); got != 2.0 {
		t.Fatalf("long burn = %g, want 2.0", got)
	}
	// Short window [450ms, 900ms] holds samples 5..9: two violations
	// of five → (2/5)/0.2 = 2.0.
	if got := e.BurnRate("o", 450*des.Millisecond, now); got != 2.0 {
		t.Fatalf("short burn = %g, want 2.0", got)
	}
	if got := e.BurnRate("missing", des.Second, now); got != 0 {
		t.Fatal("unknown objective must burn 0")
	}
}

func TestBelowObjective(t *testing.T) {
	vals := []float64{5, 1, 1, 1, 1, 1}
	reg, drive := synthetic(vals)
	e := NewEngine(reg)
	e.Add(Objective{
		Name: "floor", Series: "sig", Target: 3, Below: true, Budget: 0.5,
		Short: 200 * des.Millisecond, Long: 400 * des.Millisecond,
	}, nil)
	drive(e)
	if !e.Firing("floor") {
		t.Fatal("below-target objective must fire when samples drop under Target")
	}
}

func TestFireResolveAndActions(t *testing.T) {
	// Clean for 10 ticks, saturated for 10, clean for 20: exactly one
	// fire and one resolve, actions run only while firing.
	vals := make([]float64, 40)
	for i := 10; i < 20; i++ {
		vals[i] = 1.0
	}
	reg, drive := synthetic(vals)
	e := NewEngine(reg)
	actions := 0
	e.Add(Objective{
		Name: "occ", Series: "sig", Target: 0.9, Budget: 0.1,
		Short: 300 * des.Millisecond, Long: des.Second, Factor: 2,
	}, func() { actions++ })
	drive(e)
	alerts := e.Alerts()
	if len(alerts) != 2 || !alerts[0].Firing || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want one fire then one resolve", alerts)
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
	if alerts[0].Short < 2 || alerts[0].Long < 2 {
		t.Fatalf("fire transition burns = %+v, want both >= factor", alerts[0])
	}
	if actions == 0 {
		t.Fatal("action must run while the alert fires")
	}
	// One action per evaluation from the fire tick up to (not
	// including) the resolve tick.
	firingTicks := int(alerts[1].At-alerts[0].At) / int(100*des.Millisecond)
	if actions != firingTicks {
		t.Fatalf("actions = %d, want one per firing evaluation (%d)", actions, firingTicks)
	}
	if e.Firing("occ") {
		t.Fatal("alert must be resolved at end of run")
	}
}

// Hysteresis: a signal oscillating just around the target keeps the
// long window burning after the short window clears, so the alert
// fires once and holds — no flapping across window boundaries.
func TestAlertHysteresisNoFlapping(t *testing.T) {
	var vals []float64
	for i := 0; i < 60; i++ {
		// Saturated bursts alternating with brief dips: 6 bad, 2 good.
		if i%8 < 6 {
			vals = append(vals, 1.0)
		} else {
			vals = append(vals, 0.5)
		}
	}
	reg, drive := synthetic(vals)
	e := NewEngine(reg)
	e.Add(Objective{
		Name: "occ", Series: "sig", Target: 0.9, Budget: 0.5,
		Short: 300 * des.Millisecond, Long: 2 * des.Second, Factor: 1.4,
	}, nil)
	drive(e)
	transitions := e.Alerts()
	fires := 0
	for _, a := range transitions {
		if a.Firing {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("oscillating signal fired %d times (%+v), want exactly 1 — hysteresis must prevent flapping", fires, transitions)
	}
	if !e.Firing("occ") {
		t.Fatal("alert must still be firing while the long window stays hot")
	}
}

func TestObjectiveDefaultsAndValidation(t *testing.T) {
	reg := New(0, 8)
	e := NewEngine(reg)
	defer func() {
		if recover() == nil {
			t.Fatal("Short > Long must panic")
		}
	}()
	e.Add(Objective{Name: "bad", Series: "sig", Short: 2 * des.Second, Long: des.Second}, nil)
}
