package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
)

// DefaultLaneCounts is the lane sweep of the PR-2 figure.
var DefaultLaneCounts = []int{1, 2, 4, 8}

// LanePoint is one lane-count measurement of the CXLfork pipeline.
type LanePoint struct {
	Lanes int
	// Checkpoint is the first (cold-index) checkpoint latency: every
	// page misses the dedup cache and crosses the fabric.
	Checkpoint des.Time
	// Recheckpoint is a second checkpoint of the same warm parent: its
	// pages dedup against the first image's frames.
	Recheckpoint des.Time
	// Restore is the restore-phase latency of one MoW clone.
	Restore des.Time
	// Pages is the checkpointed data page count.
	Pages int
	// DedupHits / DedupMisses / DedupBytesSaved are the device counters
	// after both checkpoints.
	DedupHits       int64
	DedupMisses     int64
	DedupBytesSaved int64
}

// CheckpointNsPerPage returns the first checkpoint's per-page cost.
func (p LanePoint) CheckpointNsPerPage() float64 {
	if p.Pages == 0 {
		return 0
	}
	return float64(p.Checkpoint) / float64(p.Pages)
}

// RestoreNsPerPage returns the restore-phase per-page cost.
func (p LanePoint) RestoreNsPerPage() float64 {
	if p.Pages == 0 {
		return 0
	}
	return float64(p.Restore) / float64(p.Pages)
}

// LaneSweepResult is the speedup curve for one function.
type LaneSweepResult struct {
	Function string
	Points   []LanePoint
}

// Speedup returns point i's checkpoint speedup over the 1-lane point.
func (r *LaneSweepResult) Speedup(i int) float64 {
	if len(r.Points) == 0 || r.Points[i].Checkpoint == 0 {
		return 0
	}
	return float64(r.Points[0].Checkpoint) / float64(r.Points[i].Checkpoint)
}

// LaneSweep measures CXLfork checkpoint/restore latency for fnName at
// each lane count, on a fresh environment per point so the points are
// independent and individually reproducible. Each point also runs a
// second checkpoint of the same parent to exercise the dedup cache.
func LaneSweep(p params.Params, fnName string, laneCounts []int) (*LaneSweepResult, error) {
	spec, ok := faas.ByName(fnName)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown function %q", fnName)
	}
	if len(laneCounts) == 0 {
		laneCounts = DefaultLaneCounts
	}
	// Points build fresh environments, so they fan out to
	// params.SimWorkers goroutines; the slice keeps sweep order.
	points := make([]LanePoint, len(laneCounts))
	errs := make([]error, len(laneCounts))
	des.NewPool(p.SimWorkers).Each(len(laneCounts), func(i int) {
		pp := p
		pp.CheckpointLanes = laneCounts[i]
		pp.RestoreLanes = laneCounts[i]
		points[i], errs[i] = laneSweepPoint(pp, spec, laneCounts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &LaneSweepResult{Function: fnName, Points: points}, nil
}

// laneSweepPoint measures one lane count on a fresh environment.
func laneSweepPoint(p params.Params, spec faas.Spec, lanes int) (LanePoint, error) {
	c, err := NewEnv(p, spec)
	if err != nil {
		return LanePoint{}, err
	}
	rng := rand.New(rand.NewSource(42))
	parent, _, err := buildParent(c, spec, rng)
	if err != nil {
		return LanePoint{}, err
	}
	mech := core.New(c.Dev)

	img, ckptLat, err := checkpointTimed(c, parent, mech, "lanes-"+spec.Name)
	if err != nil {
		return LanePoint{}, err
	}
	m, err := measureRestore(c, spec, mech, img, rfork.Options{Policy: rfork.MigrateOnWrite}, ScenCXLfork, rng)
	if err != nil {
		return LanePoint{}, err
	}
	// Re-checkpoint the same warm parent: its pages dedup against the
	// first image still resident on the device.
	img2, reckptLat, err := checkpointTimed(c, parent, mech, "lanes2-"+spec.Name)
	if err != nil {
		return LanePoint{}, err
	}
	pt := LanePoint{
		Lanes:           lanes,
		Checkpoint:      ckptLat,
		Recheckpoint:    reckptLat,
		Restore:         m.Restore,
		Pages:           img.Pages(),
		DedupHits:       c.Dev.Dedup.Hits.Value(),
		DedupMisses:     c.Dev.Dedup.Misses.Value(),
		DedupBytesSaved: c.Dev.Dedup.BytesSaved.Value(),
	}
	img2.Release()
	img.Release()
	return pt, nil
}

// FormatLaneSweep renders the sweep as an aligned text table.
func FormatLaneSweep(r *LaneSweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lane sweep · %s (%d pages)\n", r.Function, r.Points[0].Pages)
	fmt.Fprintf(&b, "%-6s %12s %9s %12s %12s %10s %12s\n",
		"lanes", "checkpoint", "speedup", "re-ckpt", "restore", "dedup-hit", "bytes-saved")
	for i, pt := range r.Points {
		total := pt.DedupHits + pt.DedupMisses
		rate := 0.0
		if total > 0 {
			rate = float64(pt.DedupHits) / float64(total)
		}
		fmt.Fprintf(&b, "%-6d %12v %8.2fx %12v %12v %9.0f%% %12d\n",
			pt.Lanes, pt.Checkpoint, r.Speedup(i), pt.Recheckpoint, pt.Restore, 100*rate, pt.DedupBytesSaved)
	}
	return b.String()
}
