package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
)

// ScalePoint is one clone-count sample of the dedup scaling experiment.
type ScalePoint struct {
	Clones int
	// CXLforkLocalMB is total node-local memory across all clones with
	// CXLfork (read-only state shared on the device).
	CXLforkLocalMB int64
	// CRIULocalMB is the same with CRIU-CXL (no sharing).
	CRIULocalMB int64
	// DeviceMB is CXL device occupancy with CXLfork (one checkpoint,
	// regardless of clone count).
	DeviceMB int64
	// RestoreMean is the mean per-clone CXLfork restore latency — flat
	// across clone counts (constant-time attach; no parent to congest).
	RestoreMean des.Time
}

// ScaleResult is the cluster-wide deduplication extension experiment
// (§2.2's envisioned system, §8's scalability discussion): one
// checkpoint, many clones spread over a larger cluster.
type ScaleResult struct {
	Function string
	Nodes    int
	Points   []ScalePoint
}

// Scale clones one function across an n-node cluster at increasing
// clone counts and reports aggregate memory and restore behaviour.
func Scale(p params.Params, function string, nodes int, cloneCounts []int) (*ScaleResult, error) {
	spec, ok := faas.ByName(function)
	if !ok {
		return nil, fmt.Errorf("scale: unknown function %q", function)
	}
	if nodes < 2 {
		nodes = 2
	}
	if len(cloneCounts) == 0 {
		cloneCounts = []int{1, 2, 4, 8, 16, 32}
	}
	res := &ScaleResult{Function: function, Nodes: nodes}

	for _, n := range cloneCounts {
		cxlLocal, devMB, restore, err := scaleRun(p, spec, nodes, n, true)
		if err != nil {
			return nil, err
		}
		criuLocal, _, _, err := scaleRun(p, spec, nodes, n, false)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalePoint{
			Clones:         n,
			CXLforkLocalMB: cxlLocal >> 20,
			CRIULocalMB:    criuLocal >> 20,
			DeviceMB:       devMB >> 20,
			RestoreMean:    restore,
		})
	}
	return res, nil
}

// scaleRun restores n clones round-robin over the cluster and returns
// (total extra local bytes, device bytes, mean restore latency).
func scaleRun(p params.Params, spec faas.Spec, nodes, n int, useCXLfork bool) (int64, int64, des.Time, error) {
	c := cluster.MustNew(p, nodes)
	faas.RegisterFiles(c.FS, p, spec)
	for _, node := range c.Nodes {
		if err := faas.WarmLibraries(node, spec); err != nil {
			return 0, 0, 0, err
		}
	}
	parent, err := faas.NewInstance(c.Node(0), spec)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := parent.ColdInit(); err != nil {
		return 0, 0, 0, err
	}
	if _, err := parent.Invoke(nil); err != nil {
		return 0, 0, 0, err
	}
	parent.Task.MM.PT.ClearABits()
	parent.Task.MM.PT.ClearDirtyBits()
	if err := parent.Warmup(15, nil); err != nil {
		return 0, 0, 0, err
	}

	var mech rfork.Mechanism
	if useCXLfork {
		mech = core.New(c.Dev)
	} else {
		mech = criu.New(c.CXLFS)
	}
	img, err := mech.Checkpoint(parent.Task, "scale")
	if err != nil {
		return 0, 0, 0, err
	}
	parent.Exit()

	before := make([]int, nodes)
	for i, node := range c.Nodes {
		before[i] = node.Mem.UsedPages()
	}

	var restoreSum des.Time
	for i := 0; i < n; i++ {
		node := c.Node(i % nodes)
		t0 := c.Eng.Now()
		child := node.NewTask("clone")
		if err := mech.Restore(child, img, rfork.Options{}); err != nil {
			return 0, 0, 0, err
		}
		restoreSum += c.Eng.Now() - t0
		in := faas.Adopt(child, spec)
		if _, err := in.Invoke(nil); err != nil {
			return 0, 0, 0, err
		}
		// Clones stay alive: the point is aggregate residency.
	}

	var local int64
	for i, node := range c.Nodes {
		local += int64(node.Mem.UsedPages()-before[i]) * int64(p.PageSize)
	}
	dev := c.Dev.UsedBytes()
	return local, dev, restoreSum / des.Time(n), nil
}

// Render prints the scaling table.
func (r *ScaleResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Cluster-wide deduplication — %d live %s clones over %d nodes (extension of §2.2/§8)\n",
		r.Points[len(r.Points)-1].Clones, r.Function, r.Nodes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Clones\tCXLfork local(MB)\tCRIU local(MB)\tsavings\tdevice(MB)\tmean restore")
	for _, pt := range r.Points {
		savings := "-"
		if pt.CRIULocalMB > 0 {
			savings = fmt.Sprintf("%.0f%%", 100*(1-float64(pt.CXLforkLocalMB)/float64(pt.CRIULocalMB)))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%s\n",
			pt.Clones, pt.CXLforkLocalMB, pt.CRIULocalMB, savings, pt.DeviceMB, compact(pt.RestoreMean))
	}
	tw.Flush()
	fmt.Fprintln(w, "One checkpoint serves every clone: device occupancy and restore latency are flat in the clone count.")
}
