package experiments

import (
	"reflect"
	"testing"

	"cxlfork/internal/params"
)

// laneTestParams sizes the sweep for a test suite: capacities just big
// enough for Float (24 MB footprint) so each fresh environment's frame
// tables are cheap, and a trimmed warmup — lane scaling and dedup
// behaviour do not depend on how warm the parent's A/D bits are.
func laneTestParams() params.Params {
	p := ExpParams()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointAfter = 2
	return p
}

// TestLaneSweepSpeedupAndDedup checks the PR-2 acceptance criteria on
// the Float workload: checkpoint latency improves monotonically with
// lane count, four lanes are at least twice as fast as one, and the
// re-checkpoint of the same parent dedups against the first image.
func TestLaneSweepSpeedupAndDedup(t *testing.T) {
	r, err := LaneSweep(laneTestParams(), "Float", DefaultLaneCounts)
	if err != nil {
		t.Fatalf("LaneSweep: %v", err)
	}
	if len(r.Points) != len(DefaultLaneCounts) {
		t.Fatalf("got %d points, want %d", len(r.Points), len(DefaultLaneCounts))
	}
	for i, pt := range r.Points {
		if pt.Pages <= 0 {
			t.Fatalf("point %d: no pages checkpointed", i)
		}
		if pt.Checkpoint <= 0 || pt.Restore <= 0 {
			t.Fatalf("point %d: non-positive latency %v/%v", i, pt.Checkpoint, pt.Restore)
		}
		if i > 0 && pt.Checkpoint > r.Points[i-1].Checkpoint {
			t.Errorf("checkpoint latency not monotonic: %d lanes %v > %d lanes %v",
				pt.Lanes, pt.Checkpoint, r.Points[i-1].Lanes, r.Points[i-1].Checkpoint)
		}
		if i > 0 && pt.Restore > r.Points[i-1].Restore {
			t.Errorf("restore latency not monotonic: %d lanes %v > %d lanes %v",
				pt.Lanes, pt.Restore, r.Points[i-1].Lanes, r.Points[i-1].Restore)
		}
		// Sub-linear: speedup must not exceed the lane count.
		if s := r.Speedup(i); s > float64(pt.Lanes)+1e-9 {
			t.Errorf("%d lanes: super-linear speedup %.2fx", pt.Lanes, s)
		}
		// Dedup: the second checkpoint of the same warm parent must hit.
		if pt.DedupHits == 0 || pt.DedupBytesSaved == 0 {
			t.Errorf("%d lanes: no dedup hits (hits=%d saved=%d)",
				pt.Lanes, pt.DedupHits, pt.DedupBytesSaved)
		}
		if pt.Recheckpoint >= pt.Checkpoint {
			t.Errorf("%d lanes: deduped re-checkpoint %v not faster than cold %v",
				pt.Lanes, pt.Recheckpoint, pt.Checkpoint)
		}
	}
	// Headline criterion: 4 lanes at least 2x over 1 lane.
	for i, pt := range r.Points {
		if pt.Lanes == 4 {
			if s := r.Speedup(i); s < 2.0 {
				t.Errorf("4-lane checkpoint speedup %.2fx, want >= 2x", s)
			}
		}
	}
}

// TestLaneSweepDeterministic replays the sweep and requires
// byte-identical points: same latencies, same counters, every lane
// count.
func TestLaneSweepDeterministic(t *testing.T) {
	a, err := LaneSweep(laneTestParams(), "Float", DefaultLaneCounts)
	if err != nil {
		t.Fatalf("LaneSweep #1: %v", err)
	}
	b, err := LaneSweep(laneTestParams(), "Float", DefaultLaneCounts)
	if err != nil {
		t.Fatalf("LaneSweep #2: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lane sweep not deterministic:\n#1 %+v\n#2 %+v", a, b)
	}
}
