package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// Design names one rfork configuration of Fig. 10.
type Design string

// Fig. 10 designs.
const (
	DesignCRIU       Design = "CRIU-CXL"
	DesignMitosis    Design = "Mitosis-CXL"
	DesignCXLforkMoW Design = "CXLfork-MoW" // static migrate-on-write
	DesignCXLfork    Design = "CXLfork"     // dynamic tiering (§5)
)

// Fig10Designs lists the compared designs in presentation order.
var Fig10Designs = []Design{DesignCRIU, DesignMitosis, DesignCXLforkMoW, DesignCXLfork}

// Fig10Config tunes the scaling experiment.
type Fig10Config struct {
	// RPS is the aggregate request rate (paper: 150).
	RPS float64
	// Duration is the replayed trace length.
	Duration des.Time
	// MemoryFractions are the node budget scalings of Fig. 10c.
	MemoryFractions []float64
	// BaseBudgetBytes is the per-node budget at fraction 1.0.
	BaseBudgetBytes int64
	// KeepAlive overrides the idle keep-alive window. The replayed
	// bursty trace has ~10 s calm periods between spikes; a window
	// shorter than the gaps makes every spike pay cold starts — the
	// regime Fig. 10 studies ("the benefit of rfork comes from
	// mitigating cold starts"). Zero keeps the platform default.
	KeepAlive des.Time
	// Functions restricts the workload mix (default: full suite).
	Functions []string
	// Seed drives trace generation and jitter.
	Seed int64
}

// DefaultFig10Config returns the paper's configuration scaled to the
// simulated two-node cluster.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		RPS:             150,
		Duration:        60 * des.Second,
		MemoryFractions: []float64{1.0, 0.5, 0.25},
		BaseBudgetBytes: 12 << 30,
		KeepAlive:       12 * des.Second,
		Seed:            7,
	}
}

// Fig10Run is one (design, memory fraction) replay.
type Fig10Run struct {
	Design   Design
	MemFrac  float64
	Results  porter.Results
	P99, P50 des.Time
}

// Fig10Result holds every replay plus the profiles used.
type Fig10Result struct {
	Cfg  Fig10Config
	Runs []Fig10Run
	// PerFunction P99/P50 for the abundant-memory runs (Fig. 10a/b).
	Functions []string
}

// BuildProfiles converts cold-start measurements into porter profiles.
func BuildProfiles(ms []*FnMeasurement) map[porter.ProfileKey]porter.Profile {
	out := make(map[porter.ProfileKey]porter.Profile)
	scenKey := map[Scenario]porter.ProfileKey{
		ScenCRIU:       {Mechanism: "CRIU-CXL", Policy: rfork.MigrateOnWrite},
		ScenMitosis:    {Mechanism: "Mitosis-CXL", Policy: rfork.MigrateOnWrite},
		ScenCXLfork:    {Mechanism: "CXLfork", Policy: rfork.MigrateOnWrite},
		ScenCXLforkMoA: {Mechanism: "CXLfork", Policy: rfork.MigrateOnAccess},
		ScenCXLforkHT:  {Mechanism: "CXLfork", Policy: rfork.HybridTiering},
	}
	for _, fm := range ms {
		cold, haveCold := fm.ByScen[ScenCold]
		for scen, key := range scenKey {
			m, ok := fm.ByScen[scen]
			if !ok {
				continue
			}
			key.Function = fm.Spec.Name
			pr := porter.Profile{
				Restore:    m.Restore,
				ColdExec:   m.E2E - m.Restore,
				WarmExec:   m.WarmSteady,
				LocalPages: m.LocalPages,
				ColdInit:   fm.ColdInit,
			}
			if scen == ScenMitosis {
				// The fault time of Mitosis' cold start is remote page
				// copies served by the parent node.
				pr.RemoteCopy = m.FaultTime
			}
			if haveCold {
				pr.ColdInitExec = cold.E2E - cold.Restore
				pr.FootprintPages = cold.LocalPages
			}
			out[key] = pr
		}
	}
	return out
}

// Fig10 runs the CXLporter scaling comparison: every design at every
// memory fraction, replaying the same bursty trace.
func Fig10(p params.Params, cfg Fig10Config) (*Fig10Result, error) {
	specs := faas.Suite()
	if len(cfg.Functions) > 0 {
		specs = specs[:0]
		for _, name := range cfg.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("fig10: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}

	// Calibrate profiles once (mechanistic single-instance runs).
	ms, err := MeasureAll(p, specs, AllScenarios)
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)

	// The design×fraction grid: every cell builds its own cluster and
	// replays the same trace, so the cells are independent and fan out
	// to params.SimWorkers goroutines. Results land in grid order
	// (fraction-major, design-minor), so the report — and every
	// fingerprint — is byte-identical at any worker count.
	type cell struct {
		frac float64
		d    Design
	}
	var grid []cell
	for _, frac := range cfg.MemoryFractions {
		for _, d := range Fig10Designs {
			grid = append(grid, cell{frac, d})
		}
	}
	runs := make([]Fig10Run, len(grid))
	errs := make([]error, len(grid))
	des.NewPool(p.SimWorkers).Each(len(grid), func(i int) {
		runs[i], errs[i] = fig10Run(p, cfg, grid[i].d, grid[i].frac, specs, profiles)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fig10 %s@%.0f%%: %w", grid[i].d, 100*grid[i].frac, err)
		}
	}
	return &Fig10Result{Cfg: cfg, Functions: names, Runs: runs}, nil
}

func fig10Run(p params.Params, cfg Fig10Config, d Design, frac float64, specs []faas.Spec, profiles map[porter.ProfileKey]porter.Profile) (Fig10Run, error) {
	if cfg.KeepAlive > 0 {
		p.KeepAlive = cfg.KeepAlive
	}
	c := cluster.MustNew(p, 2)
	pcfg := porter.Config{
		Profiles:        profiles,
		Seed:            cfg.Seed,
		NodeBudgetBytes: int64(float64(cfg.BaseBudgetBytes) * frac),
	}
	switch d {
	case DesignCRIU:
		pcfg.Mechanism = criu.New(c.CXLFS)
	case DesignMitosis:
		pcfg.Mechanism = mitosis.New()
	case DesignCXLforkMoW:
		pcfg.Mechanism = core.New(c.Dev)
		pol := rfork.MigrateOnWrite
		pcfg.StaticPolicy = &pol
	case DesignCXLfork:
		pcfg.Mechanism = core.New(c.Dev)
		pcfg.DynamicTiering = true
	default:
		return Fig10Run{}, fmt.Errorf("unknown design %q", d)
	}

	po := porter.New(c, pcfg)
	if err := po.Setup(specs); err != nil {
		return Fig10Run{}, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: cfg.RPS,
		Duration: cfg.Duration,
		Loads:    azure.DefaultLoads(names),
		Seed:     cfg.Seed,
	})
	results := po.Run(trace)
	return Fig10Run{
		Design:  d,
		MemFrac: frac,
		Results: results,
		P99:     results.Overall.P99(),
		P50:     results.Overall.P50(),
	}, nil
}

// run returns the replay for (design, frac), or nil.
func (r *Fig10Result) run(d Design, frac float64) *Fig10Run {
	for i := range r.Runs {
		if r.Runs[i].Design == d && r.Runs[i].MemFrac == frac {
			return &r.Runs[i]
		}
	}
	return nil
}

// Render prints Fig. 10a (P99, abundant memory), Fig. 10b (P50), and
// Fig. 10c (P99/P50 under 100/50/25% memory), all normalized to
// CRIU-CXL as in the paper.
func (r *Fig10Result) Render(w io.Writer) {
	full := 1.0
	criuRun := r.run(DesignCRIU, full)
	if criuRun == nil {
		fmt.Fprintln(w, "fig10: no abundant-memory CRIU run")
		return
	}

	for i, panel := range []struct {
		title string
		pctl  float64
	}{
		{"Figure 10a — P99 latency, abundant memory (normalized to CRIU-CXL; absolute CRIU on right)", 99},
		{"Figure 10b — P50 latency, abundant memory (normalized to CRIU-CXL; absolute CRIU on right)", 50},
	} {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, panel.title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Function\tCRIU-CXL\tMitosis-CXL\tCXLfork-MoW\tCXLfork\tCRIU abs")
		fns := append([]string(nil), r.Functions...)
		sort.Strings(fns)
		for _, fn := range fns {
			base := criuRun.Results.PerFunction[fn]
			if base == nil || base.Count() == 0 {
				continue
			}
			b := base.Percentile(panel.pctl)
			fmt.Fprint(tw, fn)
			for _, d := range Fig10Designs {
				run := r.run(d, full)
				if run == nil || run.Results.PerFunction[fn] == nil || run.Results.PerFunction[fn].Count() == 0 {
					fmt.Fprint(tw, "\t-")
					continue
				}
				v := run.Results.PerFunction[fn].Percentile(panel.pctl)
				fmt.Fprintf(tw, "\t%.2f", float64(v)/float64(b))
			}
			fmt.Fprintf(tw, "\t%s\n", compact(b))
		}
		tw.Flush()
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 10c — overall latency under memory pressure (normalized to CRIU-CXL at the same fraction)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Memory\tPercentile\tCRIU-CXL\tMitosis-CXL\tCXLfork-MoW\tCXLfork\tCRIU abs\tCXLfork thpt/CRIU")
	for _, frac := range r.Cfg.MemoryFractions {
		base := r.run(DesignCRIU, frac)
		if base == nil {
			continue
		}
		for _, pctl := range []float64{99, 50} {
			b := base.Results.Overall.Percentile(pctl)
			fmt.Fprintf(tw, "%.0f%%\tP%.0f", 100*frac, pctl)
			for _, d := range Fig10Designs {
				run := r.run(d, frac)
				if run == nil || b == 0 {
					fmt.Fprint(tw, "\t-")
					continue
				}
				v := run.Results.Overall.Percentile(pctl)
				fmt.Fprintf(tw, "\t%.2f", float64(v)/float64(b))
			}
			thpt := "-"
			if cx := r.run(DesignCXLfork, frac); cx != nil && base.Results.Throughput() > 0 {
				thpt = fmt.Sprintf("%.2fx", cx.Results.Throughput()/base.Results.Throughput())
			}
			fmt.Fprintf(tw, "\t%s\t%s\n", compact(b), thpt)
		}
	}
	tw.Flush()

	// Headline averages with abundant memory (paper: Mitosis −51%, CXLfork −70% P99 vs CRIU).
	var mitP99, cxlP99 float64
	var n int
	for _, fn := range r.Functions {
		base := criuRun.Results.PerFunction[fn]
		mit := r.run(DesignMitosis, full)
		cxl := r.run(DesignCXLfork, full)
		if base == nil || base.Count() == 0 || mit == nil || cxl == nil {
			continue
		}
		mr, cr := mit.Results.PerFunction[fn], cxl.Results.PerFunction[fn]
		if mr == nil || cr == nil || mr.Count() == 0 || cr.Count() == 0 {
			continue
		}
		b := float64(base.P99())
		mitP99 += 1 - float64(mr.P99())/b
		cxlP99 += 1 - float64(cr.P99())/b
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "\nP99 reduction vs CRIU (abundant memory): Mitosis %.0f%% (paper 51%%), CXLfork %.0f%% (paper 70%%)\n",
			100*mitP99/float64(n), 100*cxlP99/float64(n))
	}

	for i := range r.Runs {
		run := &r.Runs[i]
		renderObservability(w, fmt.Sprintf("%s@%.0f%%: ", run.Design, 100*run.MemFrac), run.Results)
	}
}
