package experiments

import (
	"cxlfork/internal/cluster"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// ExpParams returns the experiment platform parameters: the paper's
// testbed latencies with node DRAM and CXL capacity sized so that a
// full simulation run (backing frame tables included) stays affordable
// on a development machine. Capacities only bound the simulation; the
// mechanisms never come close to exhausting them in the single-function
// measurements.
func ExpParams() params.Params {
	p := params.Default()
	p.NodeDRAMBytes = 6 << 30
	p.CXLBytes = 8 << 30
	return p
}

// NewEnv builds a two-node cluster with every given function's image
// files registered and pre-pulled on all nodes (steady-state serverless
// nodes have warm page caches for function images).
func NewEnv(p params.Params, specs ...faas.Spec) (*cluster.Cluster, error) {
	c := cluster.MustNew(p, 2)
	for _, s := range specs {
		faas.RegisterFiles(c.FS, p, s)
		for _, n := range c.Nodes {
			if err := faas.WarmLibraries(n, s); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}
