package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// MeasureAll runs the cold-start measurement protocol for every function
// in specs. Each function's protocol builds its own environment, so the
// legs are independent and fan out to params.SimWorkers goroutines;
// results land in spec order either way (DESIGN.md §13).
func MeasureAll(p params.Params, specs []faas.Spec, scens []Scenario) ([]*FnMeasurement, error) {
	out := make([]*FnMeasurement, len(specs))
	errs := make([]error, len(specs))
	des.NewPool(p.SimWorkers).Each(len(specs), func(i int) {
		out[i], errs[i] = MeasureFunction(p, specs[i], scens)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("measuring %s: %w", specs[i].Name, err)
		}
	}
	return out, nil
}

// Fig7Result holds the data of Fig. 7a (end-to-end cold-start execution
// with Restore / Page Faults / Execution breakdown) and Fig. 7b (local
// memory consumption normalized to Cold).
type Fig7Result struct {
	Measurements []*FnMeasurement
}

// Fig7 runs the full cold-start comparison across the function suite.
func Fig7(p params.Params) (*Fig7Result, error) {
	ms, err := MeasureAll(p, faas.Suite(), AllScenarios)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Measurements: ms}, nil
}

// rforkScenarios are the Fig. 7a bars.
var rforkScenarios = []Scenario{ScenCold, ScenLocalFork, ScenCRIU, ScenMitosis, ScenCXLfork}

// Fig7Summary holds the ratio averages the paper reports (§7.1).
type Fig7Summary struct {
	ColdOverCXLfork     float64 // "Cold is on average 11x slower than CXLfork"
	CXLforkOverLocal    float64 // "on average only 14% slower than LocalFork"
	CRIUOverCXLfork     float64 // "2.26x faster than CRIU-CXL"
	MitosisOverCXLfork  float64 // "1.40x faster than Mitosis-CXL"
	MemCXLforkOverCold  float64 // "only 13% of the local memory of a cold-started function"
	MemSavedOverCRIU    float64 // "reduces memory consumption by 87% over CRIU"
	MemSavedOverMitosis float64 // "by 61% over Mitosis"
}

// Summary computes the headline averages (arithmetic means of the
// per-function ratios, as the paper reports).
func (r *Fig7Result) Summary() Fig7Summary {
	var s Fig7Summary
	var coldR, lfR, criuR, mitR, memColdR, memCriuR, memMitR []float64
	for _, fm := range r.Measurements {
		cx, ok := fm.ByScen[ScenCXLfork]
		if !ok {
			continue
		}
		if m, ok := fm.ByScen[ScenCold]; ok {
			coldR = append(coldR, float64(m.E2E)/float64(cx.E2E))
			if m.LocalPages > 0 {
				memColdR = append(memColdR, float64(cx.LocalPages)/float64(m.LocalPages))
			}
		}
		if m, ok := fm.ByScen[ScenLocalFork]; ok {
			lfR = append(lfR, float64(cx.E2E)/float64(m.E2E))
		}
		if m, ok := fm.ByScen[ScenCRIU]; ok {
			criuR = append(criuR, float64(m.E2E)/float64(cx.E2E))
			if m.LocalPages > 0 {
				memCriuR = append(memCriuR, 1-float64(cx.LocalPages)/float64(m.LocalPages))
			}
		}
		if m, ok := fm.ByScen[ScenMitosis]; ok {
			mitR = append(mitR, float64(m.E2E)/float64(cx.E2E))
			if m.LocalPages > 0 {
				memMitR = append(memMitR, 1-float64(cx.LocalPages)/float64(m.LocalPages))
			}
		}
	}
	s.ColdOverCXLfork = mean(coldR)
	s.CXLforkOverLocal = mean(lfR)
	s.CRIUOverCXLfork = mean(criuR)
	s.MitosisOverCXLfork = mean(mitR)
	s.MemCXLforkOverCold = mean(memColdR)
	s.MemSavedOverCRIU = mean(memCriuR)
	s.MemSavedOverMitosis = mean(memMitR)
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Render prints Fig. 7a and Fig. 7b as tables.
func (r *Fig7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 7a — end-to-end cold-start execution time (restore | page faults | execution | total)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Function")
	for _, sc := range rforkScenarios {
		fmt.Fprintf(tw, "\t%s", sc)
	}
	fmt.Fprintln(tw)
	for _, fm := range r.Measurements {
		fmt.Fprint(tw, fm.Spec.Name)
		for _, sc := range rforkScenarios {
			m, ok := fm.ByScen[sc]
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%s|%s|%s|%s",
				compact(m.Restore), compact(m.FaultTime), compact(m.Exec), compact(m.E2E))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 7b — local memory consumption normalized to Cold")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Function")
	for _, sc := range rforkScenarios[1:] {
		fmt.Fprintf(tw, "\t%s", sc)
	}
	fmt.Fprintln(tw, "\tCold(MB)")
	for _, fm := range r.Measurements {
		cold, ok := fm.ByScen[ScenCold]
		if !ok || cold.LocalPages == 0 {
			continue
		}
		fmt.Fprint(tw, fm.Spec.Name)
		for _, sc := range rforkScenarios[1:] {
			m, ok := fm.ByScen[sc]
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.2f", float64(m.LocalPages)/float64(cold.LocalPages))
		}
		fmt.Fprintf(tw, "\t%d\n", int64(cold.LocalPages)*4096>>20)
	}
	tw.Flush()

	s := r.Summary()
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Averages: Cold/CXLfork=%.2fx (paper ~11x)  CXLfork/LocalFork=%.2fx (paper ~1.14x)\n",
		s.ColdOverCXLfork, s.CXLforkOverLocal)
	fmt.Fprintf(w, "          CRIU/CXLfork=%.2fx (paper 2.26x)  Mitosis/CXLfork=%.2fx (paper 1.40x)\n",
		s.CRIUOverCXLfork, s.MitosisOverCXLfork)
	fmt.Fprintf(w, "          mem: CXLfork/Cold=%.0f%% (paper ~13%%)  saved vs CRIU=%.0f%% (paper 87%%)  vs Mitosis=%.0f%% (paper 61%%)\n",
		100*s.MemCXLforkOverCold, 100*s.MemSavedOverCRIU, 100*s.MemSavedOverMitosis)
}

// compact renders a duration tersely for table cells.
func compact(d des.Time) string {
	switch {
	case d >= des.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= des.Millisecond:
		return fmt.Sprintf("%.1fms", d.Millis())
	case d >= des.Microsecond:
		return fmt.Sprintf("%.0fµs", d.Micros())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}
