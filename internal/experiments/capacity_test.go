package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/des"
)

// smallCapacityConfig shrinks the sweep to two functions, one tight
// device size, and a short trace so the test stays fast while still
// forcing evictions.
func smallCapacityConfig() CapacityConfig {
	return CapacityConfig{
		RPS:             40,
		Duration:        20 * des.Second,
		DeviceFractions: []float64{0.5},
		Policies:        CapacityPolicies,
		KeepAlive:       2 * des.Second,
		Functions:       []string{"Float", "Json"},
		Seed:            7,
	}
}

func TestCapacitySweepEvictsAndRenders(t *testing.T) {
	p := ExpParams()
	r, err := Capacity(p, smallCapacityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.FootprintBytes <= 0 {
		t.Fatal("no measured footprint")
	}
	if len(r.Runs) != len(CapacityPolicies) {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.DeviceBytes >= r.FootprintBytes {
			t.Fatalf("%s: device %d not shrunken below footprint %d",
				run.Policy, run.DeviceBytes, r.FootprintBytes)
		}
		// A device at half the aggregate footprint cannot hold both
		// checkpoints: every policy must have evicted or refused.
		if run.Results.EvictedCkpts == 0 && run.Results.CkptRefused == 0 {
			t.Fatalf("%s: no capacity activity under pressure: %+v",
				run.Policy, run.Results)
		}
		if run.Results.Completed == 0 {
			t.Fatalf("%s: no completed requests", run.Policy)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Capacity sweep", "Device = 50%", "costbenefit", "largest", "lru"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCapacitySweepDeterministic(t *testing.T) {
	p := ExpParams()
	cfg := smallCapacityConfig()
	a, err := Capacity(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capacity(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FootprintBytes != b.FootprintBytes {
		t.Fatalf("footprint differs: %d vs %d", a.FootprintBytes, b.FootprintBytes)
	}
	for i := range a.Runs {
		if a.Runs[i].Fingerprint != b.Runs[i].Fingerprint {
			t.Fatalf("%s@%.0f%%: fingerprints differ: %#x vs %#x",
				a.Runs[i].Policy, 100*a.Runs[i].DevFrac,
				a.Runs[i].Fingerprint, b.Runs[i].Fingerprint)
		}
	}
}
