package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/des"
)

// smallTelemetryConfig shrinks the replay to two functions and a
// short trace so the test stays fast while still sampling.
func smallTelemetryConfig() TelemetryTraceConfig {
	return TelemetryTraceConfig{
		RPS:        40,
		Duration:   10 * des.Second,
		DeviceFrac: 0.5,
		Functions:  []string{"Float", "Json"},
		Seed:       7,
	}
}

func TestTelemetryTraceSamplesAndExports(t *testing.T) {
	p := ExpParams()
	r, err := TelemetryTrace(p, smallTelemetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Registry.Enabled() || r.Registry.Ticks() == 0 {
		t.Fatal("replay recorded no samples")
	}
	if r.Results.TelemetrySamples != r.Registry.Ticks() {
		t.Fatalf("results report %d samples, registry %d",
			r.Results.TelemetrySamples, r.Registry.Ticks())
	}
	if r.Registry.Lookup("cxl_utilization") == nil {
		t.Fatal("device series not registered")
	}
	var buf bytes.Buffer
	if err := r.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "porter_completed_total") {
		t.Fatal("export missing porter series")
	}
}

func TestSLOComparisonDrivesEarlyReclaim(t *testing.T) {
	p := ExpParams()
	cfg := DefaultSLOConfig()
	// Shrink to test scale: medium checkpoints hovering around 44%
	// occupancy, with the objective placed below that (low 0.30 <
	// target 0.40) so the firing alert has room to reclaim early while
	// the high watermark stays out of reach.
	cfg.RPS = 40
	cfg.Duration = 20 * des.Second
	cfg.Functions = []string{"Float", "Json", "Rnn", "Chameleon"}
	cfg.Weights = nil
	cfg.DeviceFrac = 0.6
	cfg.Occupancy = 0.40
	cfg.LowWatermark = 0.30
	r, err := SLO(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Drive.Results.SLOAlertsFired == 0 {
		t.Fatalf("driven run fired no alerts (occ max %.2f)", r.Drive.OccMax)
	}
	if r.Drive.Results.ReclaimPasses <= r.Observe.Results.ReclaimPasses {
		t.Fatalf("drive did not reclaim earlier: %d vs observe %d",
			r.Drive.Results.ReclaimPasses, r.Observe.Results.ReclaimPasses)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"SLO burn-rate drive", "observe", "drive", "telemetry:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
