package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// Fig8Result holds the tiering-policy comparison: cold execution time
// (Fig. 8a), warm execution time (Fig. 8b), and local memory (Fig. 8c)
// for Migrate-on-Write, Migrate-on-Access, and Hybrid Tiering.
type Fig8Result struct {
	Measurements []*FnMeasurement
}

// tieringScenarios are the Fig. 8 bars.
var tieringScenarios = []Scenario{ScenCXLfork, ScenCXLforkMoA, ScenCXLforkHT}

// Fig8 runs the tiering comparison across the function suite.
func Fig8(p params.Params) (*Fig8Result, error) {
	ms, err := MeasureAll(p, faas.Suite(), tieringScenarios)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Measurements: ms}, nil
}

// Fig8Summary holds the averages §7.1 reports for MoA relative to MoW.
type Fig8Summary struct {
	MoAWarmSpeedup float64 // "reduces warm execution time by 11%"
	MoAColdPenalty float64 // "penalizes cold execution time by 14%"
	MoAMemGrowth   float64 // "increases the child's memory footprint by 250%"
}

// Summary computes the MoA-vs-MoW averages.
func (r *Fig8Result) Summary() Fig8Summary {
	var warm, cold, mem []float64
	for _, fm := range r.Measurements {
		mow, ok1 := fm.ByScen[ScenCXLfork]
		moa, ok2 := fm.ByScen[ScenCXLforkMoA]
		if !ok1 || !ok2 {
			continue
		}
		warm = append(warm, 1-float64(moa.WarmSteady)/float64(mow.WarmSteady))
		cold = append(cold, float64(moa.E2E)/float64(mow.E2E)-1)
		if mow.LocalPages > 0 {
			mem = append(mem, float64(moa.LocalPages)/float64(mow.LocalPages)-1)
		}
	}
	return Fig8Summary{
		MoAWarmSpeedup: mean(warm),
		MoAColdPenalty: mean(cold),
		MoAMemGrowth:   mean(mem),
	}
}

// Render prints the three panels.
func (r *Fig8Result) Render(w io.Writer) {
	panels := []struct {
		title string
		cell  func(m Measure) string
	}{
		{"Figure 8a — cold execution time", func(m Measure) string { return compact(m.E2E) }},
		{"Figure 8b — warm execution time", func(m Measure) string { return compact(m.WarmSteady) }},
		{"Figure 8c — local memory (MB)", func(m Measure) string {
			return fmt.Sprintf("%d", int64(m.LocalPages)*4096>>20)
		}},
	}
	for i, p := range panels {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, p.title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Function\tMoW\tMoA\tHT")
		for _, fm := range r.Measurements {
			fmt.Fprint(tw, fm.Spec.Name)
			for _, sc := range tieringScenarios {
				m, ok := fm.ByScen[sc]
				if !ok {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%s", p.cell(m))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	s := r.Summary()
	fmt.Fprintln(w)
	fmt.Fprintf(w, "MoA vs MoW averages: warm %+.0f%% (paper -11%%), cold %+.0f%% (paper +14%%), memory %+.0f%% (paper +250%%)\n",
		-100*s.MoAWarmSpeedup, 100*s.MoAColdPenalty, 100*s.MoAMemGrowth)
}
