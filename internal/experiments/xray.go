package experiments

import (
	"fmt"
	"io"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/xray"
)

// The xray experiment (DESIGN.md §16, EXPERIMENTS.md "-exp xray")
// reruns the fabric sweep's stressed corner cell — the 2-switch,
// 6-device grid under the 300 rps restore-heavy Fig. 10 trace — with
// critical-path attribution enabled, once per placement policy. Where
// the fabric sweep reports that locality placement beats the
// consistent-hash ring on restore P99, the blame report says why: the
// per-link heatmap names the saturated link the hash ring stacks its
// hot-function replicas behind, and the fork-restore blame table shows
// how much of the tail is fabric transit versus restore service.

// XRayExpConfig tunes the attribution rerun.
type XRayExpConfig struct {
	// Fabric supplies trace shape, replication, headroom and policies;
	// its grid axes are ignored in favor of the single cell below.
	Fabric FabricExpConfig
	// Switches and Devices pick the one grid cell to attribute.
	Switches int
	Devices  int
}

// DefaultXRayExpConfig attributes the default fabric sweep's
// 2-switch/6-device corner — the cell where placement policy decides
// the restore tail.
func DefaultXRayExpConfig() XRayExpConfig {
	return XRayExpConfig{Fabric: DefaultFabricExpConfig(), Switches: 2, Devices: 6}
}

// XRayRun is one policy's attributed replay.
type XRayRun struct {
	// Policy is the replica placement policy replayed.
	Policy string
	// Run carries the replay's fabric-sweep row (results, tails,
	// fingerprint).
	Run FabricRun
	// Report is the replay's attribution report.
	Report *xray.Report
}

// XRayResult holds the attributed replays plus sizing.
type XRayResult struct {
	// Cfg echoes the experiment configuration.
	Cfg XRayExpConfig
	// FootprintBytes is the suite's measured checkpoint footprint;
	// PoolBytes the derived pool capacity.
	FootprintBytes int64
	PoolBytes      int64
	// Runs holds one attributed replay per policy, in policy order.
	Runs []XRayRun
}

// XRaySweep replays the configured grid cell once per placement policy
// with attribution on and collects each replay's blame report.
// Attribution is observational, so every cell's replay fingerprint
// equals the plain fabric sweep's for the same cell.
func XRaySweep(p params.Params, cfg XRayExpConfig) (*XRayResult, error) {
	fc := cfg.Fabric
	if fc.Nodes < 2 {
		return nil, fmt.Errorf("xray: need at least 2 nodes, got %d", fc.Nodes)
	}
	specs := faas.Suite()
	if len(fc.Functions) > 0 {
		specs = specs[:0]
		for _, name := range fc.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("xray: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)
	footprint, err := capacityFootprint(p, specs, profiles, fc.Seed)
	if err != nil {
		return nil, err
	}
	res := &XRayResult{Cfg: cfg, FootprintBytes: footprint}

	pr := p
	pr.XRayEnabled = true
	for _, pol := range fc.Policies {
		if cfg.Devices == 1 && pol != "hash" {
			continue // one device: placement has no choice
		}
		run, pool, c, err := fabricRun(pr, fc, cfg.Switches, cfg.Devices, pol, footprint, specs, profiles)
		if err != nil {
			return nil, fmt.Errorf("xray sw=%d dev=%d pol=%s: %w", cfg.Switches, cfg.Devices, pol, err)
		}
		res.PoolBytes = pool
		res.Runs = append(res.Runs, XRayRun{Policy: pol, Run: run, Report: c.XRay.Report()})
	}
	return res, nil
}

// Fingerprint folds each policy's replay fingerprint and report
// fingerprint — the hash the CI double-run diff compares.
func (r *XRayResult) Fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i := range r.Runs {
		fold(uint64(len(r.Runs[i].Policy)))
		fold(r.Runs[i].Run.Fingerprint)
		fold(r.Runs[i].Report.Fingerprint())
	}
	return h
}

// Render prints each policy's blame report, then the headline: which
// link each policy's restore tail blames.
func (r *XRayResult) Render(w io.Writer) {
	fc := r.Cfg.Fabric
	fmt.Fprintf(w, "XRay blame — %d-switch/%d-device fabric cell, %d hosts, %d MiB pool, RF %d, Fig. 10 trace %.0f rps × %s\n",
		r.Cfg.Switches, r.Cfg.Devices, fc.Nodes, r.PoolBytes>>20, fc.Factor, fc.RPS, compact(fc.Duration))
	for i := range r.Runs {
		xr := &r.Runs[i]
		fmt.Fprintf(w, "\n== policy %s — restore P99 %s, overall P99 %s, fingerprint %#x ==\n",
			xr.Policy, compact(xr.Run.RestoreP99), compact(xr.Run.Results.Overall.P99()), xr.Run.Fingerprint)
		xr.Report.WriteText(w)
	}
	fmt.Fprintln(w)
	for i := range r.Runs {
		xr := &r.Runs[i]
		hottest := xr.Report.HottestLink()
		if hottest == "" {
			continue
		}
		for _, l := range xr.Report.Links {
			if l.Link != hottest {
				continue
			}
			line := fmt.Sprintf("%s: restore tail blames link %s — %s queued across %d transfers",
				xr.Policy, l.Link, compact(des.Time(l.QueuedNS)), l.Transfers)
			if cb := xr.Report.Class("fork-restore"); cb != nil {
				for _, comp := range cb.Components {
					if comp.Component == xray.CompFabric {
						line += fmt.Sprintf(" (fork-restore fabric-transit total %s)", compact(des.Time(comp.TotalNS)))
					}
				}
			}
			fmt.Fprintln(w, line)
		}
	}
	fmt.Fprintf(w, "xray fingerprint: %#x (byte-identical at any -workers)\n", r.Fingerprint())
}
