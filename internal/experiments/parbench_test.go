package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallParBenchConfig shrinks the benchmark so determinism checks stay
// fast while still crossing epochs and replication sends.
func smallParBenchConfig() ParBenchConfig {
	cfg := DefaultParBenchConfig()
	cfg.Nodes = 8
	cfg.Requests = 6
	cfg.Pages = 512
	return cfg
}

func TestParBenchFingerprintWorkerInvariant(t *testing.T) {
	p := ExpParams()
	r, err := ParBenchSweep(p, smallParBenchConfig(), []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(r.Runs))
	}
	base := r.Runs[0]
	if base.Requests != 8*6 {
		t.Fatalf("completed %d requests, want %d", base.Requests, 8*6)
	}
	if base.ReplicaPages != 8*6*512 {
		t.Fatalf("replicated %d pages, want %d", base.ReplicaPages, 8*6*512)
	}
	for _, run := range r.Runs {
		if run.Fingerprint != base.Fingerprint {
			t.Fatalf("workers=%d fingerprint %#x != baseline %#x",
				run.Cfg.Workers, run.Fingerprint, base.Fingerprint)
		}
		if run.Events != base.Events {
			t.Fatalf("workers=%d executed %d events, baseline %d",
				run.Cfg.Workers, run.Events, base.Events)
		}
		if run.SimTime != base.SimTime {
			t.Fatalf("workers=%d sim frontier %v, baseline %v",
				run.Cfg.Workers, run.SimTime, base.SimTime)
		}
	}
	// The unified baseline runs no epochs; the sharded runs must.
	if base.Epochs != 0 {
		t.Fatalf("unified engine reported %d epochs", base.Epochs)
	}
	for _, run := range r.Runs[1:] {
		if run.Epochs == 0 {
			t.Fatalf("workers=%d sharded run reported no epochs", run.Cfg.Workers)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Parallel engine sweep", "unified", "sharded", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParBenchRepeatedRunsIdentical(t *testing.T) {
	p := ExpParams()
	cfg := smallParBenchConfig()
	cfg.Workers = 4
	a := ParBench(p, cfg)
	b := ParBench(p, cfg)
	if a.Fingerprint != b.Fingerprint || a.Events != b.Events || a.Epochs != b.Epochs {
		t.Fatalf("repeated runs diverged: %#x/%d/%d vs %#x/%d/%d",
			a.Fingerprint, a.Events, a.Epochs, b.Fingerprint, b.Events, b.Epochs)
	}
}

func TestParBenchSingleNode(t *testing.T) {
	p := ExpParams()
	cfg := smallParBenchConfig()
	cfg.Nodes = 1
	cfg.Workers = 2
	r := ParBench(p, cfg)
	if r.Requests != 6 {
		t.Fatalf("single node completed %d requests, want 6", r.Requests)
	}
	one := ParBench(p, ParBenchConfig{Nodes: 1, Requests: 6, Lanes: cfg.Lanes, Pages: cfg.Pages, Workers: 1, Think: cfg.Think})
	if r.Fingerprint != one.Fingerprint {
		t.Fatalf("single-node fingerprints diverge across engines: %#x vs %#x", r.Fingerprint, one.Fingerprint)
	}
}
