package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/des"
)

// smallChaosConfig shrinks the sweep to two functions, two factors, and
// a short trace so the test stays fast while still killing every
// device.
func smallChaosConfig() ChaosConfig {
	return ChaosConfig{
		RPS:                  40,
		Duration:             12 * des.Second,
		Devices:              3,
		Factors:              []int{1, 2},
		KillAt:               4 * des.Second,
		PoolHeadroom:         4.5,
		RepairBandwidthPages: 8192,
		KeepAlive:            2 * des.Second,
		Functions:            []string{"Float", "Json"},
		Seed:                 7,
	}
}

func TestChaosReplicationSurvivesDeviceLoss(t *testing.T) {
	p := ExpParams()
	r, err := Chaos(p, smallChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two factors × (baseline + three kills).
	if len(r.Runs) != 8 {
		t.Fatalf("runs = %d, want 8", len(r.Runs))
	}

	// RF 1: every checkpoint lives only on the ingest device; killing it
	// must demonstrably lose images.
	if lost := r.LostImagesAt(1); lost == 0 {
		t.Fatal("rf=1: no images lost across single-device kills")
	}
	kill0 := r.run(1, 0)
	if kill0.Results.LostImages == 0 {
		t.Fatalf("rf=1 kill=dev0: LostImages = 0, want > 0: %+v", kill0.Results)
	}

	// RF 2: the loss of any single device must not fail a single
	// restore, and repair must converge.
	for kill := 0; kill < 3; kill++ {
		run := r.run(2, kill)
		if run == nil {
			t.Fatalf("missing rf=2 kill=%d run", kill)
		}
		res := run.Results
		if res.FailedRestores != 0 {
			t.Fatalf("rf=2 kill=dev%d: %d failed restores, want 0", kill, res.FailedRestores)
		}
		if res.LostImages != 0 {
			t.Fatalf("rf=2 kill=dev%d: %d lost images, want 0", kill, res.LostImages)
		}
		if !res.RepairConvergedOK {
			t.Fatalf("rf=2 kill=dev%d: repair did not converge (deficit %d)", kill, res.UnderReplicated)
		}
		if res.UnderReplicated != 0 {
			t.Fatalf("rf=2 kill=dev%d: run ended under-replicated by %d", kill, res.UnderReplicated)
		}
	}

	// Baselines see no faults and no failovers.
	for _, rf := range []int{1, 2} {
		base := r.run(rf, -1)
		if base.Results.FailedRestores != 0 || base.Results.LostImages != 0 || base.Results.Failovers != 0 {
			t.Fatalf("rf=%d baseline has fault activity: %+v", rf, base.Results)
		}
		if rf == 2 && base.Results.ReplicasPlaced < 2 {
			t.Fatalf("rf=2 baseline placed %d replicas, want >= 2", base.Results.ReplicasPlaced)
		}
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Chaos sweep", "Replication factor 1", "Replication factor 2",
		"loses checkpoints", "survives the loss of any single device"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChaosIsDeterministic(t *testing.T) {
	cfg := smallChaosConfig()
	cfg.Factors = []int{2}
	a, err := Chaos(ExpParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(ExpParams(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		if a.Runs[i].Fingerprint != b.Runs[i].Fingerprint {
			t.Fatalf("rf=%d kill=%d: fingerprints diverge: %x vs %x",
				a.Runs[i].Factor, a.Runs[i].Killed, a.Runs[i].Fingerprint, b.Runs[i].Fingerprint)
		}
	}
}

func TestChaosRejectsSingleDevicePool(t *testing.T) {
	cfg := smallChaosConfig()
	cfg.Devices = 1
	if _, err := Chaos(ExpParams(), cfg); err == nil {
		t.Fatal("single-device chaos should be rejected")
	}
}
