package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/fabric"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// The fabric experiment (DESIGN.md §14, EXPERIMENTS.md "-exp fabric")
// sweeps the modeled CXL fabric: a grid topology (hosts and devices
// round-robined across a switch chain) replayed under the skewed
// Fig. 10 trace for every devices × switches × placement-policy cell.
// Restores are routed from the nearest healthy replica and charged the
// real per-link path latency plus stream contention, so the sweep
// shows both headline effects the flat model cannot: the single-device
// configuration's restore tail collapsing under link queueing, and
// locality-aware placement beating the pure consistent-hash ring on
// restore P99 once the fabric has more than one switch.

// FabricExpConfig tunes the topology sweep.
type FabricExpConfig struct {
	// RPS and Duration shape the replayed Fig. 10 trace.
	RPS      float64
	Duration des.Time
	// Nodes is the cluster (and topology host) count.
	Nodes int
	// Switches and Devices are the grid axes.
	Switches []int
	Devices  []int
	// Policies are the replica placement policies compared ("hash",
	// "locality"). Single-device cells only run "hash" — with one
	// device there is nothing to place.
	Policies []string
	// Factor is the replication factor, clamped per cell to the
	// device count.
	Factor int
	// PoolHeadroom sizes total pool capacity as a multiple of the
	// suite's measured checkpoint footprint.
	PoolHeadroom float64
	// KeepAlive, Functions, Weights, Seed: as in CapacityConfig.
	KeepAlive des.Time
	Functions []string
	Weights   map[string]float64
	Seed      int64
}

// DefaultFabricExpConfig is a four-host sweep over 1–2 switches,
// 1/2/6 devices, hash vs locality placement at replication factor 3.
func DefaultFabricExpConfig() FabricExpConfig {
	return FabricExpConfig{
		// 300 rps over a short horizon is deliberately past the knee
		// for the weakest cells: the stressed links queue visibly while
		// every cell can still serve. Longer horizons drive the
		// saturated single-device cells into open-loop collapse, which
		// stops being a placement comparison.
		RPS:      300,
		Duration: 15 * des.Second,
		Nodes:    4,
		Switches: []int{1, 2},
		Devices:  []int{1, 2, 6},
		Policies: []string{"hash", "locality"},
		// Factor 3 gives placement a real decision on both sides of the
		// fabric: the ingest-affine copy is pinned to device 0, so with
		// only two copies the single ring pick fully determines coverage
		// and the restore tail collapses onto the affinity device for
		// every policy alike.
		Factor: 3,
		// Headroom must keep the per-device share (total / devices)
		// above one suite footprint: the ingest-affine device holds a
		// copy of every image, and a sweep that starves it measures
		// eviction thrash, not fabric contention.
		PoolHeadroom: 7.5,
		// A short keep-alive makes the replay restore-heavy: idle
		// instances die fast, so most requests cold-fork off the
		// fabric and the per-link contention actually bites — the
		// regime where topology decides the tail.
		KeepAlive: 100 * des.Millisecond,
		// Two big-footprint functions run hot: the consistent-hash ring
		// happens to stack both of their non-affinity copies on the same
		// device, which is exactly the accident locality placement is
		// there to fix.
		Weights: map[string]float64{
			"Cnn": 20, "HTML": 8, "Json": 2, "Float": 2, "Rnn": 2,
			"Chameleon": 1, "Bert": 0,
		},
		Seed: 7,
	}
}

// FabricRun is one (switches, devices, policy) replay.
type FabricRun struct {
	Switches int
	Devices  int
	Policy   string
	Results  porter.Results
	ColdP99  des.Time
	// RestoreP99 is the restore-phase tail (profile restore + failover
	// probing + fabric charge) — the metric placement policies control.
	RestoreP99 des.Time
	// MinLinkLat is the built topology's fastest link — the sharded
	// engine's legal lookahead window for this fabric.
	MinLinkLat des.Time
	// Fingerprint is the replay's determinism hash.
	Fingerprint uint64
}

// FabricResult holds the sweep plus the measured footprint.
type FabricResult struct {
	Cfg            FabricExpConfig
	FootprintBytes int64
	PoolBytes      int64
	Runs           []FabricRun
}

// FabricSweep measures the suite footprint, then replays the trace for
// every (switches, devices, policy) cell of the grid.
func FabricSweep(p params.Params, cfg FabricExpConfig) (*FabricResult, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("fabric: need at least 2 nodes, got %d", cfg.Nodes)
	}
	specs := faas.Suite()
	if len(cfg.Functions) > 0 {
		specs = specs[:0]
		for _, name := range cfg.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("fabric: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)
	footprint, err := capacityFootprint(p, specs, profiles, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &FabricResult{Cfg: cfg, FootprintBytes: footprint}

	type cell struct {
		sw, dev int
		pol     string
	}
	var grid []cell
	for _, sw := range cfg.Switches {
		for _, dev := range cfg.Devices {
			for _, pol := range cfg.Policies {
				if dev == 1 && pol != "hash" {
					continue // one device: placement has no choice
				}
				grid = append(grid, cell{sw, dev, pol})
			}
		}
	}
	runs := make([]FabricRun, len(grid))
	pools := make([]int64, len(grid))
	errs := make([]error, len(grid))
	des.NewPool(p.SimWorkers).Each(len(grid), func(i int) {
		runs[i], pools[i], _, errs[i] = fabricRun(p, cfg, grid[i].sw, grid[i].dev, grid[i].pol, footprint, specs, profiles)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fabric sw=%d dev=%d pol=%s: %w", grid[i].sw, grid[i].dev, grid[i].pol, err)
		}
	}
	res.Runs = runs
	res.PoolBytes = pools[len(pools)-1]
	return res, nil
}

// fabricRun is one replay on a GridSpec(nodes, sw, dev) topology. The
// cluster is returned alongside the run so the xray experiment can
// read attribution state off the same replay.
func fabricRun(p params.Params, cfg FabricExpConfig, sw, dev int, pol string, footprint int64, specs []faas.Spec, profiles map[porter.ProfileKey]porter.Profile) (FabricRun, int64, *cluster.Cluster, error) {
	if cfg.KeepAlive > 0 {
		p.KeepAlive = cfg.KeepAlive
	}
	p.Topology = fabric.GridSpec(cfg.Nodes, sw, dev)
	p.PlacementPolicy = pol
	p.ReplicationFactor = cfg.Factor
	if p.ReplicationFactor > dev {
		p.ReplicationFactor = dev
	}
	ps := int64(p.PageSize)
	p.CXLBytes = (int64(float64(footprint)*cfg.PoolHeadroom) + ps - 1) / ps * ps

	c, err := cluster.New(p, cfg.Nodes)
	if err != nil {
		return FabricRun{}, 0, nil, err
	}
	po := porter.New(c, capacityPorterConfig(c, profiles, cfg.Seed))
	if err := po.Setup(specs); err != nil {
		return FabricRun{}, 0, nil, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	loads := azure.DefaultLoads(names)
	for i := range loads {
		if w, ok := cfg.Weights[loads[i].Function]; ok {
			loads[i].Weight = w
		}
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: cfg.RPS,
		Duration: cfg.Duration,
		Loads:    loads,
		Seed:     cfg.Seed,
	})
	results := po.Run(trace)

	run := FabricRun{
		Switches:    sw,
		Devices:     dev,
		Policy:      pol,
		Results:     results,
		MinLinkLat:  c.Topo.MinLinkLatency(),
		Fingerprint: results.Fingerprint(),
	}
	if cl := results.ColdLatency; cl != nil && cl.Count() > 0 {
		run.ColdP99 = cl.P99()
	}
	if rl := results.RestoreLatency; rl != nil && rl.Count() > 0 {
		run.RestoreP99 = rl.P99()
	}
	return run, p.CXLBytes, c, nil
}

// run returns the replay for (sw, dev, pol), or nil.
func (r *FabricResult) run(sw, dev int, pol string) *FabricRun {
	for i := range r.Runs {
		if r.Runs[i].Switches == sw && r.Runs[i].Devices == dev && r.Runs[i].Policy == pol {
			return &r.Runs[i]
		}
	}
	return nil
}

// Fingerprint folds every cell's replay fingerprint in sweep order —
// the hash the golden worker-equivalence tests and the CI double-run
// diff compare.
func (r *FabricResult) Fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i := range r.Runs {
		fold(uint64(r.Runs[i].Switches))
		fold(uint64(r.Runs[i].Devices))
		fold(uint64(len(r.Runs[i].Policy)))
		fold(r.Runs[i].Fingerprint)
	}
	return h
}

// Render prints one table per switch count, then the headline
// collapse-vs-sharding and hash-vs-locality verdicts.
func (r *FabricResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Fabric sweep — %d hosts, %d MiB pool (%.1fx of %d MiB footprint), RF %d, Fig. 10 trace %.0f rps × %s\n",
		r.Cfg.Nodes, r.PoolBytes>>20, r.Cfg.PoolHeadroom, r.FootprintBytes>>20,
		r.Cfg.Factor, r.Cfg.RPS, compact(r.Cfg.Duration))
	for _, sw := range r.Cfg.Switches {
		fmt.Fprintf(w, "\n%d switch(es)\n", sw)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Devices\tPolicy\tLookahead\tTransfers\tQueued\tQueueDelay\tExtraDelay\tRestore P99\tCold P99\tOverall P99")
		for _, dev := range r.Cfg.Devices {
			for _, pol := range r.Cfg.Policies {
				run := r.run(sw, dev, pol)
				if run == nil {
					continue
				}
				res := run.Results
				cold, rest := "-", "-"
				if run.ColdP99 > 0 {
					cold = compact(run.ColdP99)
				}
				if run.RestoreP99 > 0 {
					rest = compact(run.RestoreP99)
				}
				fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
					dev, pol, compact(run.MinLinkLat), res.FabricTransfers, res.FabricQueued,
					compact(res.FabricQueueDelay), compact(res.FabricExtraDelay),
					rest, cold, compact(res.Overall.P99()))
			}
		}
		tw.Flush()
	}

	fmt.Fprintln(w)
	// Headline 1: single-device collapse vs the sharded pool at the
	// largest switch count.
	maxSw := r.Cfg.Switches[len(r.Cfg.Switches)-1]
	maxDev := r.Cfg.Devices[len(r.Cfg.Devices)-1]
	single := r.run(maxSw, 1, "hash")
	sharded := r.run(maxSw, maxDev, "hash")
	if single != nil && sharded != nil && single.RestoreP99 > 0 && sharded.RestoreP99 > 0 {
		verdict := "sharding wins"
		if sharded.RestoreP99 >= single.RestoreP99 {
			verdict = "no sharded win at this load"
		}
		fmt.Fprintf(w, "%d switches: single-device restore P99 %s vs %d-device %s (%.2fx) — %s\n",
			maxSw, compact(single.RestoreP99), maxDev, compact(sharded.RestoreP99),
			float64(single.RestoreP99)/float64(sharded.RestoreP99), verdict)
	}
	// Headline 2: hash vs locality per multi-switch, multi-device cell.
	for _, sw := range r.Cfg.Switches {
		if sw < 2 {
			continue
		}
		for _, dev := range r.Cfg.Devices {
			hr, lr := r.run(sw, dev, "hash"), r.run(sw, dev, "locality")
			if hr == nil || lr == nil || hr.RestoreP99 <= 0 || lr.RestoreP99 <= 0 {
				continue
			}
			verdict := "locality beats hash on restore P99"
			if lr.RestoreP99 >= hr.RestoreP99 {
				verdict = "hash holds at this cell"
			}
			fmt.Fprintf(w, "%d switches, %d devices: hash restore P99 %s vs locality %s — %s\n",
				sw, dev, compact(hr.RestoreP99), compact(lr.RestoreP99), verdict)
		}
	}
	fmt.Fprintf(w, "sweep fingerprint: %#x (byte-identical at any -workers)\n", r.Fingerprint())
	for i := range r.Runs {
		run := &r.Runs[i]
		renderObservability(w, fmt.Sprintf("sw%d/dev%d/%s: ", run.Switches, run.Devices, run.Policy), run.Results)
	}
}
