package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// CkptResult holds checkpoint-phase latencies per mechanism (§7.1
// "Checkpoint Performance").
type CkptResult struct {
	Measurements []*FnMeasurement
}

// Ckpt measures checkpoint latency for every function and mechanism.
func Ckpt(p params.Params) (*CkptResult, error) {
	ms, err := MeasureAll(p, faas.Suite(), []Scenario{ScenCRIU, ScenMitosis, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	return &CkptResult{Measurements: ms}, nil
}

// Summary returns the average checkpoint-latency ratios: CRIU/Mitosis
// (paper: one order of magnitude) and CXLfork/Mitosis (paper: 1.5x).
func (r *CkptResult) Summary() (criuOverMitosis, cxlforkOverMitosis float64) {
	var a, b []float64
	for _, fm := range r.Measurements {
		mi, ok := fm.ByScen[ScenMitosis]
		if !ok || mi.Checkpoint == 0 {
			continue
		}
		if cr, ok := fm.ByScen[ScenCRIU]; ok {
			a = append(a, float64(cr.Checkpoint)/float64(mi.Checkpoint))
		}
		if cx, ok := fm.ByScen[ScenCXLfork]; ok {
			b = append(b, float64(cx.Checkpoint)/float64(mi.Checkpoint))
		}
	}
	return mean(a), mean(b)
}

// Render prints the checkpoint-latency table.
func (r *CkptResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Checkpoint performance (§7.1)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tCRIU-CXL\tMitosis-CXL\tCXLfork")
	for _, fm := range r.Measurements {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", fm.Spec.Name,
			compact(fm.ByScen[ScenCRIU].Checkpoint),
			compact(fm.ByScen[ScenMitosis].Checkpoint),
			compact(fm.ByScen[ScenCXLfork].Checkpoint))
	}
	tw.Flush()
	a, b := r.Summary()
	fmt.Fprintf(w, "Averages: CRIU/Mitosis=%.1fx (paper ~10x), CXLfork/Mitosis=%.2fx (paper 1.5x)\n", a, b)
}

// FaultCosts reports the fault microbenchmarks of §4.2.1, measured by
// actually taking each fault kind once on a restored clone.
type FaultCosts struct {
	AnonFault   float64 // µs, paper: < 1 µs
	CoWCXL      float64 // µs, paper: ≈ 2.5 µs
	CoWCXLCopy  float64 // µs data movement, paper: ≈ 1.3 µs
	CoWCXLShoot float64 // µs TLB coherence, paper: ≈ 0.5 µs
	MoA         float64 // µs migrate-on-access copy fault
	FileMinor   float64 // µs page-cache file fault
}

// Faults reports the fault cost model — the constants §4.2.1 reports
// and that the simulation charges — and cross-checks the migrate-on-
// access cost against the observed per-fault average on a real MoA
// clone (whose fault mix is a single kind).
func Faults(p params.Params) (*FaultCosts, error) {
	spec, _ := faas.ByName("Float")
	fm, err := MeasureFunction(p, spec, []Scenario{ScenCXLforkMoA})
	if err != nil {
		return nil, err
	}
	fc := &FaultCosts{
		AnonFault:   p.AnonFault.Micros(),
		CoWCXL:      p.CoWCXLFault().Micros(),
		CoWCXLCopy:  p.CXLReadPage.Micros(),
		CoWCXLShoot: p.TLBShootdown.Micros(),
		MoA:         p.MoAFault().Micros(),
		FileMinor:   p.FilePageCacheFault.Micros(),
	}
	if m, ok := fm.ByScen[ScenCXLforkMoA]; ok && m.Faults.Total() > 0 {
		fc.MoA = (m.Faults.Time / des.Time(m.Faults.Total())).Micros()
	}
	return fc, nil
}

// Render prints the microbenchmark table.
func (fc *FaultCosts) Render(w io.Writer) {
	fmt.Fprintln(w, "Fault microbenchmarks (§4.2.1)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fault\tCost(µs)\tPaper")
	fmt.Fprintf(tw, "anon minor\t%.2f\t< 1µs\n", fc.AnonFault)
	fmt.Fprintf(tw, "CoW from CXL\t%.2f\t≈ 2.5µs\n", fc.CoWCXL)
	fmt.Fprintf(tw, "  of which data movement\t%.2f\t≈ 1.3µs\n", fc.CoWCXLCopy)
	fmt.Fprintf(tw, "  of which TLB coherence\t%.2f\t≈ 0.5µs\n", fc.CoWCXLShoot)
	fmt.Fprintf(tw, "migrate-on-access\t%.2f\t-\n", fc.MoA)
	fmt.Fprintf(tw, "file minor (page cache)\t%.2f\t-\n", fc.FileMinor)
	tw.Flush()
}
