package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// The capacity experiment (DESIGN.md §10, EXPERIMENTS.md "-exp
// capacity") studies checkpoint lifecycle under device pressure — the
// question the paper's §8 leaves open. It first measures the aggregate
// checkpoint footprint of the workload suite (dedup-aware: shared
// frames counted once), then replays the Fig. 10 bursty trace with the
// shared device sized to 100/50/25% of that footprint, once per
// eviction policy. Small devices force the capacity manager through its
// degradation ladder — evict, refuse publications, scratch cold starts
// — and the policies separate on the latency of the cold starts they
// cause: evicting by restore value (costbenefit) keeps expensive
// checkpoints resident, evicting by size alone does not.

// CapacityPolicies lists the compared eviction policies in
// presentation order.
var CapacityPolicies = []string{"lru", "largest", "costbenefit"}

// CapacityConfig tunes the device-size sweep.
type CapacityConfig struct {
	// RPS is the aggregate request rate of the replayed trace.
	RPS float64
	// Duration is the replayed trace length.
	Duration des.Time
	// DeviceFractions sizes the device as fractions of the measured
	// aggregate checkpoint footprint.
	DeviceFractions []float64
	// Policies are the params.EvictPolicy values to compare.
	Policies []string
	// KeepAlive overrides the idle keep-alive window (see Fig10Config).
	KeepAlive des.Time
	// Functions restricts the workload mix (default: full suite).
	Functions []string
	// Weights skews each function's share of the request rate (missing
	// entries get weight 1). The Azure traces the paper replays are
	// heavily skewed — a small set of functions receives most
	// invocations (Shahrad et al.) — and the skew is what separates the
	// eviction policies: under a uniform mix, restore value per byte
	// nearly coincides with size, and costbenefit degenerates into
	// largest-first.
	Weights map[string]float64
	// Seed drives trace generation and jitter.
	Seed int64
}

// DefaultCapacityConfig returns the Fig. 10 trace configuration with
// the paper-default watermarks and every eviction policy.
func DefaultCapacityConfig() CapacityConfig {
	return CapacityConfig{
		RPS:             150,
		Duration:        60 * des.Second,
		DeviceFractions: []float64{1.0, 0.5, 0.25},
		Policies:        CapacityPolicies,
		// Shorter than the Fig. 10 window: the replayed trace's ~10 s calm
		// gaps must outlive idle instances so that every burst goes back
		// through the checkpoint store — the regime where eviction policy
		// is visible at all.
		KeepAlive: 3 * des.Second,
		// Skewed popularity in the style of the Azure traces: a few
		// functions carry most of the load, and popularity is deliberately
		// not aligned with footprint. Cnn — the largest active image — is
		// also the hottest function, the case where size-only eviction is
		// wrong: largest-first always evicts it first, costbenefit keeps
		// it and sheds cold images instead. Bert is inactive — a resident
		// 630 MiB checkpoint with no arrivals, the stale-image lifecycle
		// case (§8) eviction exists to clean up; it also cannot fit the
		// 25% device at all, so with traffic it would pin every policy's
		// cold tail to its own cold start and mask the comparison.
		Weights: map[string]float64{
			"Cnn": 20, "Json": 2, "Float": 2, "Rnn": 2, "Chameleon": 1,
			"Bert": 0,
		},
		Seed: 7,
	}
}

// CapacityRun is one (policy, device fraction) replay.
type CapacityRun struct {
	Policy      string
	DevFrac     float64
	DeviceBytes int64
	Results     porter.Results
	// ColdP50/ColdP99 summarize requests served without a resident
	// checkpoint — the latency cost of eviction.
	ColdP50, ColdP99 des.Time
	// Fingerprint is the replay's determinism hash (porter.Results).
	Fingerprint uint64
}

// CapacityResult holds the sweep plus the measured footprint.
type CapacityResult struct {
	Cfg CapacityConfig
	// FootprintBytes is the device occupancy after checkpointing the
	// whole suite on an ample device: the dedup-aware aggregate
	// footprint the DeviceFractions scale.
	FootprintBytes int64
	Runs           []CapacityRun
}

// Capacity runs the device-size sweep: measure the aggregate
// checkpoint footprint, then replay the trace at every (fraction,
// policy) pair.
func Capacity(p params.Params, cfg CapacityConfig) (*CapacityResult, error) {
	specs := faas.Suite()
	if len(cfg.Functions) > 0 {
		specs = specs[:0]
		for _, name := range cfg.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("capacity: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}

	// Calibrate cold-start and restore profiles once.
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)

	footprint, err := capacityFootprint(p, specs, profiles, cfg.Seed)
	if err != nil {
		return nil, err
	}

	res := &CapacityResult{Cfg: cfg, FootprintBytes: footprint}
	for _, frac := range cfg.DeviceFractions {
		for _, pol := range cfg.Policies {
			run, err := capacityRun(p, cfg, pol, frac, footprint, specs, profiles)
			if err != nil {
				return nil, fmt.Errorf("capacity %s@%.0f%%: %w", pol, 100*frac, err)
			}
			res.Runs = append(res.Runs, run)
		}
	}
	return res, nil
}

// capacityFootprint checkpoints the whole suite on an ample device and
// returns the resulting occupancy: metadata plus every distinct data
// frame, dedup-shared frames counted once.
func capacityFootprint(p params.Params, specs []faas.Spec, profiles map[porter.ProfileKey]porter.Profile, seed int64) (int64, error) {
	c := cluster.MustNew(p, 2)
	po := porter.New(c, capacityPorterConfig(c, profiles, seed))
	if err := po.Setup(specs); err != nil {
		return 0, err
	}
	fp := c.Dev.UsedBytes()
	if fp == 0 {
		return 0, fmt.Errorf("capacity: suite left no checkpoint footprint")
	}
	return fp, nil
}

func capacityPorterConfig(c *cluster.Cluster, profiles map[porter.ProfileKey]porter.Profile, seed int64) porter.Config {
	// Static migrate-on-write keeps the sweep about eviction policy, not
	// tiering adaptation.
	pol := rfork.MigrateOnWrite
	return porter.Config{
		Mechanism:    core.New(c.Dev),
		Profiles:     profiles,
		StaticPolicy: &pol,
		Seed:         seed,
	}
}

func capacityRun(p params.Params, cfg CapacityConfig, policy string, frac float64, footprint int64, specs []faas.Spec, profiles map[porter.ProfileKey]porter.Profile) (CapacityRun, error) {
	if cfg.KeepAlive > 0 {
		p.KeepAlive = cfg.KeepAlive
	}
	p.EvictPolicy = policy
	// Round the shrunken device up to a whole page so frame-pool sizing
	// stays exact.
	ps := int64(p.PageSize)
	p.CXLBytes = (int64(float64(footprint)*frac) + ps - 1) / ps * ps
	if _, err := porter.ParseEvictPolicy(policy); err != nil {
		return CapacityRun{}, err
	}

	c := cluster.MustNew(p, 2)
	po := porter.New(c, capacityPorterConfig(c, profiles, cfg.Seed))
	if err := po.Setup(specs); err != nil {
		return CapacityRun{}, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	loads := azure.DefaultLoads(names)
	for i := range loads {
		if w, ok := cfg.Weights[loads[i].Function]; ok {
			loads[i].Weight = w
		}
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: cfg.RPS,
		Duration: cfg.Duration,
		Loads:    loads,
		Seed:     cfg.Seed,
	})
	results := po.Run(trace)

	run := CapacityRun{
		Policy:      policy,
		DevFrac:     frac,
		DeviceBytes: p.CXLBytes,
		Results:     results,
		Fingerprint: results.Fingerprint(),
	}
	if cl := results.ColdLatency; cl != nil && cl.Count() > 0 {
		run.ColdP50, run.ColdP99 = cl.P50(), cl.P99()
	}
	return run, nil
}

// run returns the replay for (policy, frac), or nil.
func (r *CapacityResult) run(policy string, frac float64) *CapacityRun {
	for i := range r.Runs {
		if r.Runs[i].Policy == policy && r.Runs[i].DevFrac == frac {
			return &r.Runs[i]
		}
	}
	return nil
}

// Render prints one table per device size: per-policy eviction
// activity, degradation counters, and the cold-start latency the
// evictions cost. Evicted bytes are actual device occupancy deltas
// (dedup-aware), not declared image footprints.
func (r *CapacityResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Capacity sweep — aggregate checkpoint footprint %d MiB (dedup-aware), Fig. 10 trace %.0f rps × %s\n",
		r.FootprintBytes>>20, r.Cfg.RPS, compact(r.Cfg.Duration))
	for _, frac := range r.Cfg.DeviceFractions {
		fmt.Fprintf(w, "\nDevice = %.0f%% of footprint\n", 100*frac)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Policy\tDevice\tEvicted\tFreed\tDeferred\tRefused\tReckpt\tColdReqs\tCold P50\tCold P99\tOverall P99")
		for _, pol := range r.Cfg.Policies {
			run := r.run(pol, frac)
			if run == nil {
				continue
			}
			res := run.Results
			coldReqs := 0
			if res.ColdLatency != nil {
				coldReqs = res.ColdLatency.Count()
			}
			cold50, cold99 := "-", "-"
			if coldReqs > 0 {
				cold50, cold99 = compact(run.ColdP50), compact(run.ColdP99)
			}
			fmt.Fprintf(tw, "%s\t%d MiB\t%d\t%d MiB\t%d MiB\t%d\t%d\t%d\t%s\t%s\t%s\n",
				pol, run.DeviceBytes>>20,
				res.EvictedCkpts, res.EvictedBytes>>20, res.DeferredBytes>>20,
				res.CkptRefused, res.Recheckpoints,
				coldReqs, cold50, cold99,
				compact(res.Overall.P99()))
		}
		tw.Flush()
	}

	// Headline: restore-value-aware eviction vs size-only eviction at
	// the tightest device.
	minFrac := r.Cfg.DeviceFractions[0]
	for _, f := range r.Cfg.DeviceFractions {
		if f < minFrac {
			minFrac = f
		}
	}
	cb, lg := r.run("costbenefit", minFrac), r.run("largest", minFrac)
	if cb != nil && lg != nil && cb.ColdP99 > 0 && lg.ColdP99 > 0 {
		fmt.Fprintf(w, "\nP99 cold start at %.0f%% device: costbenefit %s vs largest %s (%.2fx)\n",
			100*minFrac, compact(cb.ColdP99), compact(lg.ColdP99),
			float64(lg.ColdP99)/float64(cb.ColdP99))
	}

	for i := range r.Runs {
		run := &r.Runs[i]
		renderObservability(w, fmt.Sprintf("%s@%.0f%%: ", run.Policy, 100*run.DevFrac), run.Results)
	}
}
