package experiments

import (
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/fabric"
	"cxlfork/internal/porter"
)

// goldenFabric pins the fabric sweep's fold at the config below. The
// contract matches the §13 worker goldens: every SimWorkers count must
// reproduce it byte for byte, and a rerun in the same binary must too —
// the sweep's analytic contention model may not perturb event order.
const goldenFabric = 0x9e58559b4eaf7d7a

// goldenFabricConfig is a trimmed two-cell-per-switch sweep that still
// crosses the interesting axes: single vs sharded, hash vs locality.
func goldenFabricConfig() FabricExpConfig {
	cfg := DefaultFabricExpConfig()
	cfg.RPS = 120
	cfg.Duration = 4 * des.Second
	cfg.Switches = []int{2}
	cfg.Devices = []int{1, 6}
	return cfg
}

func TestGoldenFabricWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	for _, workers := range goldenWorkerCounts {
		p := ExpParams()
		p.SimWorkers = workers
		r, err := FabricSweep(p, goldenFabricConfig())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if h := r.Fingerprint(); h != uint64(goldenFabric) {
			t.Fatalf("workers=%d: fabric fingerprint %#x, golden %#x", workers, h, uint64(goldenFabric))
		}
	}
}

func TestGoldenFabricRerunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	p := ExpParams()
	a, err := FabricSweep(p, goldenFabricConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FabricSweep(p, goldenFabricConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("rerun diverged: %#x vs %#x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestDegenerateTopologyMatchesFlatModel is the backward-compatibility
// wall: a 1-switch 1-device grid builds a Trivial topology, carries no
// Net, and must replay the trace byte-identically to today's flat
// single-pool model (no Topology at all). Any fabric-side charge that
// leaks into the degenerate case breaks every pinned golden in the
// repo, so this test fails first and points at the right layer.
func TestDegenerateTopologyMatchesFlatModel(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	replay := func(topology string) uint64 {
		t.Helper()
		p := ExpParams()
		p.Topology = topology
		p.KeepAlive = 100 * des.Millisecond
		specs := faas.Suite()[:4]
		ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
		if err != nil {
			t.Fatal(err)
		}
		profiles := BuildProfiles(ms)
		c, err := cluster.New(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if topology != "" {
			if c.Topo == nil || !c.Topo.Trivial() {
				t.Fatal("degenerate grid did not build a Trivial topology")
			}
			if c.Net != nil {
				t.Fatal("Trivial topology must not carry a Net")
			}
		}
		po := porter.New(c, capacityPorterConfig(c, profiles, 3))
		if err := po.Setup(specs); err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, s := range specs {
			names = append(names, s.Name)
		}
		trace := azure.Generate(azure.TraceConfig{
			TotalRPS: 60,
			Duration: 4 * des.Second,
			Loads:    azure.DefaultLoads(names),
			Seed:     3,
		})
		return po.Run(trace).Fingerprint()
	}
	flat := replay("")
	degenerate := replay(fabric.GridSpec(2, 1, 1))
	if flat != degenerate {
		t.Fatalf("degenerate topology diverged from flat model: %#x vs %#x", flat, degenerate)
	}
}
