package experiments

import (
	"testing"

	"cxlfork/internal/des"
)

// These goldens were captured on the pre-sharding sequential engine
// (single unified event queue, no worker pool) at the configs below.
// The equivalence contract of DESIGN.md §13: the sharded refactor and
// the SimWorkers fan-out must reproduce them byte for byte at every
// worker count — the refactor is provably neutral.
const (
	goldenFig10 = 0x5f05be03d90eeee1
	goldenLanes = 0xdbab6bb0ecd5cd5e
	goldenChaos = 0xfddeca430ae69311
	goldenSLO   = 0x5b9b91ce879b66fc
)

// goldenWorkerCounts are the SimWorkers values every golden runs at.
var goldenWorkerCounts = []int{1, 2, 8}

// fpFold FNV-1a-folds 64-bit words, matching porter's fingerprint
// constants so goldens read as one familiar hash family.
func fpFold(h *uint64, vs ...uint64) {
	const prime = 1099511628211
	for _, v := range vs {
		for b := 0; b < 8; b++ {
			*h ^= (v >> (8 * b)) & 0xff
			*h *= prime
		}
	}
}

const fpOffset = 14695981039346656037

func TestGoldenFig10WorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	for _, workers := range goldenWorkerCounts {
		p := ExpParams()
		p.SimWorkers = workers
		cfg := DefaultFig10Config()
		cfg.Duration = 5 * des.Second
		cfg.RPS = 40
		cfg.Functions = []string{"Float", "Json"}
		cfg.MemoryFractions = []float64{1.0, 0.25}
		r, err := Fig10(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := uint64(fpOffset)
		for _, run := range r.Runs {
			fpFold(&h, run.Results.Fingerprint(), uint64(run.P50), uint64(run.P99))
		}
		if h != uint64(goldenFig10) {
			t.Fatalf("workers=%d: fig10 fingerprint %#x, golden %#x", workers, h, uint64(goldenFig10))
		}
	}
}

func TestGoldenLanesWorkerEquivalence(t *testing.T) {
	for _, workers := range goldenWorkerCounts {
		p := ExpParams()
		p.SimWorkers = workers
		r, err := LaneSweep(p, "Float", []int{1, 2, 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := uint64(fpOffset)
		for _, pt := range r.Points {
			fpFold(&h, uint64(pt.Lanes), uint64(pt.Checkpoint), uint64(pt.Recheckpoint),
				uint64(pt.Restore), uint64(pt.Pages), uint64(pt.DedupHits),
				uint64(pt.DedupMisses), uint64(pt.DedupBytesSaved))
		}
		if h != uint64(goldenLanes) {
			t.Fatalf("workers=%d: lanes fingerprint %#x, golden %#x", workers, h, uint64(goldenLanes))
		}
	}
}

func TestGoldenChaosWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	for _, workers := range goldenWorkerCounts {
		p := ExpParams()
		p.SimWorkers = workers
		cfg := smallChaosConfig()
		r, err := Chaos(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := uint64(fpOffset)
		for _, run := range r.Runs {
			fpFold(&h, uint64(run.Factor), uint64(int64(run.Killed)), run.Fingerprint)
		}
		if h != uint64(goldenChaos) {
			t.Fatalf("workers=%d: chaos fingerprint %#x, golden %#x", workers, h, uint64(goldenChaos))
		}
	}
}

func TestGoldenSLOWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	for _, workers := range goldenWorkerCounts {
		p := ExpParams()
		p.SimWorkers = workers
		cfg := DefaultSLOConfig()
		cfg.RPS = 40
		cfg.Duration = 20 * des.Second
		cfg.Functions = []string{"Float", "Json", "Rnn", "Chameleon"}
		cfg.Weights = nil
		cfg.DeviceFrac = 0.6
		cfg.Occupancy = 0.40
		cfg.LowWatermark = 0.30
		r, err := SLO(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := uint64(fpOffset)
		fpFold(&h, r.Observe.Results.Fingerprint(), r.Drive.Results.Fingerprint())
		if h != uint64(goldenSLO) {
			t.Fatalf("workers=%d: slo fingerprint %#x, golden %#x", workers, h, uint64(goldenSLO))
		}
	}
}
