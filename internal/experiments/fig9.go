package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// Fig9Functions are the representative functions the paper shows
// (functions with identical behaviour are excluded for space, §7.1).
var Fig9Functions = []string{"Float", "Json", "Cnn", "Rnn", "BFS", "Bert"}

// Fig9Latencies is the swept CXL round-trip latency range: 400 ns
// (close to the 391 ns FPGA prototype) down to 100 ns (close to local
// DRAM).
var Fig9Latencies = []des.Time{
	400 * des.Nanosecond, 300 * des.Nanosecond, 200 * des.Nanosecond, 100 * des.Nanosecond,
}

// Fig9Point is one (function, latency) sample: CXLfork warm and cold
// execution time relative to local fork in an environment without CXL.
type Fig9Point struct {
	Function   string
	CXLLatency des.Time
	WarmRel    float64 // Fig. 9a
	ColdRel    float64 // Fig. 9b
}

// Fig9Result holds the sensitivity sweep.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 sweeps the simulated CXL device latency (the role the paper's
// SST simulator plays, §6.1) and reports CXLfork performance relative
// to the no-CXL local-fork baseline.
func Fig9(p params.Params) (*Fig9Result, error) {
	var res Fig9Result
	for _, name := range Fig9Functions {
		spec, ok := faas.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fig9: unknown function %q", name)
		}
		// Baseline: local fork, unaffected by CXL latency.
		base, err := MeasureFunction(p, spec, []Scenario{ScenLocalFork})
		if err != nil {
			return nil, err
		}
		lf := base.ByScen[ScenLocalFork]
		for _, lat := range Fig9Latencies {
			pl := p
			pl.CXLLatency = lat
			// Faster simulated devices move pages faster too: scale the
			// per-page copy costs with the latency ratio (floored at the
			// local-DRAM copy cost).
			scale := float64(lat) / float64(p.CXLLatency)
			pl.CXLReadPage = maxTime(des.Time(float64(p.CXLReadPage)*scale), p.LocalCopyPage)
			pl.CXLWritePage = maxTime(des.Time(float64(p.CXLWritePage)*scale), p.LocalCopyPage)
			fm, err := MeasureFunction(pl, spec, []Scenario{ScenCXLfork})
			if err != nil {
				return nil, err
			}
			cx := fm.ByScen[ScenCXLfork]
			res.Points = append(res.Points, Fig9Point{
				Function:   name,
				CXLLatency: lat,
				WarmRel:    float64(cx.WarmSteady) / float64(lf.WarmSteady),
				ColdRel:    float64(cx.E2E) / float64(lf.E2E),
			})
		}
	}
	return &res, nil
}

func maxTime(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}

// Render prints the two panels as (function × latency) tables.
func (r *Fig9Result) Render(w io.Writer) {
	for i, panel := range []struct {
		title string
		pick  func(pt Fig9Point) float64
	}{
		{"Figure 9a — warm execution time relative to local fork (no CXL)", func(pt Fig9Point) float64 { return pt.WarmRel }},
		{"Figure 9b — cold execution time relative to local fork (no CXL)", func(pt Fig9Point) float64 { return pt.ColdRel }},
	} {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, panel.title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Function")
		for _, lat := range Fig9Latencies {
			fmt.Fprintf(tw, "\t%dns", int64(lat))
		}
		fmt.Fprintln(tw)
		for _, fn := range Fig9Functions {
			fmt.Fprint(tw, fn)
			for _, lat := range Fig9Latencies {
				for _, pt := range r.Points {
					if pt.Function == fn && pt.CXLLatency == lat {
						fmt.Fprintf(tw, "\t%.2f", panel.pick(pt))
					}
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
}
