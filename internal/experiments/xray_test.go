package experiments

import (
	"strings"
	"testing"

	"cxlfork/internal/des"
)

// xrayTestConfig trims the attributed cell to the golden fabric test's
// load so the replays stay fast while the trunk still queues.
func xrayTestConfig() XRayExpConfig {
	cfg := DefaultXRayExpConfig()
	cfg.Fabric.RPS = 120
	cfg.Fabric.Duration = 4 * des.Second
	return cfg
}

// TestXRayObservational pins the tentpole's neutrality contract from
// the replay side: enabling attribution must not change the simulated
// results, so the attributed cell's fingerprint equals the same cell
// replayed by the plain fabric sweep (which runs with XRay off).
func TestXRayObservational(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	cfg := xrayTestConfig()
	p := ExpParams()
	xr, err := XRaySweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := cfg.Fabric
	fc.Switches = []int{cfg.Switches}
	fc.Devices = []int{cfg.Devices}
	fr, err := FabricSweep(p, fc)
	if err != nil {
		t.Fatal(err)
	}
	for _, xrun := range xr.Runs {
		plain := fr.run(cfg.Switches, cfg.Devices, xrun.Policy)
		if plain == nil {
			t.Fatalf("policy %s missing from fabric sweep", xrun.Policy)
		}
		if xrun.Run.Fingerprint != plain.Fingerprint {
			t.Fatalf("policy %s: attributed fingerprint %#x != plain %#x — attribution perturbed the replay",
				xrun.Policy, xrun.Run.Fingerprint, plain.Fingerprint)
		}
	}
}

// TestXRayDeterministicAcrossWorkersAndReruns pins the report side:
// the full rendered output (blame tables, heatmap, exemplars, fold)
// must be byte-identical across reruns and across SimWorkers 1/2/8.
func TestXRayDeterministicAcrossWorkersAndReruns(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	cfg := xrayTestConfig()
	var want string
	var wantFP uint64
	for i, workers := range append([]int{goldenWorkerCounts[0]}, goldenWorkerCounts...) {
		p := ExpParams()
		p.SimWorkers = workers
		r, err := XRaySweep(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		r.Render(&b)
		if i == 0 {
			want, wantFP = b.String(), r.Fingerprint()
			continue
		}
		if b.String() != want {
			t.Fatalf("workers=%d: rendered report diverged", workers)
		}
		if r.Fingerprint() != wantFP {
			t.Fatalf("workers=%d: xray fingerprint %#x, want %#x", workers, r.Fingerprint(), wantFP)
		}
	}
	if want == "" || wantFP == 0 {
		t.Fatal("empty report")
	}
}

// TestXRayExactDecomposition pins the attribution equation: for every
// porter-fed class the component shares sum to the end-to-end latency
// exactly (zero residual), and every exemplar balances individually.
func TestXRayExactDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replays are slow")
	}
	r, err := XRaySweep(ExpParams(), xrayTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, xrun := range r.Runs {
		rep := xrun.Report
		if rep == nil || rep.Requests == 0 {
			t.Fatalf("policy %s: empty report", xrun.Policy)
		}
		if rep.HottestLink() == "" {
			t.Fatalf("policy %s: no link heatmap", xrun.Policy)
		}
		for _, cb := range rep.Classes {
			if cb.ResidualNS != 0 {
				t.Fatalf("policy %s class %s: residual %d — decomposition not exact",
					xrun.Policy, cb.Class, cb.ResidualNS)
			}
			var comps int64
			for _, c := range cb.Components {
				comps += c.TotalNS
			}
			if comps != cb.TotalNS {
				t.Fatalf("policy %s class %s: components sum %d != total %d",
					xrun.Policy, cb.Class, comps, cb.TotalNS)
			}
			for _, ex := range cb.Exemplars {
				var sum int64
				for _, c := range ex.Components {
					sum += c.NS
				}
				if sum+ex.ResidualNS != ex.LatencyNS {
					t.Fatalf("policy %s class %s exemplar #%d: %d + residual %d != latency %d",
						xrun.Policy, cb.Class, ex.Seq, sum, ex.ResidualNS, ex.LatencyNS)
				}
			}
		}
	}
}
