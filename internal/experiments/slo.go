package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/fabric"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/telemetry"
	"cxlfork/internal/xray"
)

// The SLO experiment (DESIGN.md §11, EXPERIMENTS.md "-exp slo") closes
// the observe→act loop the telemetry engine enables: it replays the
// capacity experiment's skewed Fig. 10 trace on an undersized device
// with an occupancy objective declared, once with the burn-rate alert
// only observing and once with it driving the capacity manager (early
// reclaim toward the low watermark plus tightened admission). The
// comparison shows what acting on telemetry buys: the driven run
// reclaims before the high watermark forces it to.

// TelemetryTraceConfig tunes one telemetry-enabled trace replay — the
// shared runner behind the SLO experiment and the cxlstat CLI.
type TelemetryTraceConfig struct {
	// RPS and Duration shape the replayed Fig. 10 trace.
	RPS      float64
	Duration des.Time
	// DeviceFrac, when non-zero, sizes the device to this fraction of
	// the suite's measured checkpoint footprint (as in the capacity
	// sweep); zero keeps the params device.
	DeviceFrac float64
	// KeepAlive overrides the idle keep-alive window when non-zero.
	KeepAlive des.Time
	// Functions restricts the workload mix (default: full suite);
	// Weights skews request shares as in CapacityConfig.
	Functions []string
	Weights   map[string]float64
	// Policy is the eviction policy ("" keeps the params default).
	Policy string
	// Seed drives trace generation and jitter.
	Seed int64
	// SampleEvery and SeriesCap override the telemetry defaults when
	// non-zero.
	SampleEvery des.Time
	SeriesCap   int
	// SLOOccupancy, when non-zero, declares the occupancy objective;
	// SLODrive lets its alert drive the capacity manager.
	SLOOccupancy float64
	SLODrive     bool
	// LowWatermark, when non-zero, overrides the capacity manager's
	// reclaim floor so the objective can sit between the watermarks.
	LowWatermark float64
	// Devices, when > 1, splits the device into a pool of that many
	// expanders; ReplicationFactor, when > 0, replicates each
	// checkpoint onto that many of them (DESIGN.md §12).
	Devices           int
	ReplicationFactor int
	// Switches, when > 0, runs the replay on an explicit grid fabric
	// topology of that many switches (hosts and the Devices pool
	// round-robined across them, DESIGN.md §14); Placement selects the
	// replica placement policy over it ("hash" or "locality").
	Switches  int
	Placement string
	// XRay enables critical-path attribution over the replay
	// (DESIGN.md §16); the blame report lands on the result. Being
	// observational, it leaves Results (and its fingerprint) unchanged.
	XRay bool
	// XRayExemplars bounds the worst-request exemplars kept per class
	// (0 keeps the attribution default).
	XRayExemplars int
}

// TelemetryTraceResult is one telemetry-enabled replay: the sampled
// registry alongside the porter results.
type TelemetryTraceResult struct {
	Registry *telemetry.Registry
	Results  porter.Results
	Alerts   []telemetry.Alert
	// FootprintBytes is the measured suite footprint (0 when
	// DeviceFrac was not used); DeviceBytes is the device size the
	// replay ran with.
	FootprintBytes int64
	DeviceBytes    int64
	// XRay is the replay's attribution report, nil unless
	// TelemetryTraceConfig.XRay was set.
	XRay *xray.Report
}

// TelemetryTrace calibrates profiles, sizes the device, and replays
// the trace with telemetry sampling on.
func TelemetryTrace(p params.Params, cfg TelemetryTraceConfig) (*TelemetryTraceResult, error) {
	specs := faas.Suite()
	if len(cfg.Functions) > 0 {
		specs = specs[:0]
		for _, name := range cfg.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("telemetry: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)

	out := &TelemetryTraceResult{}
	if cfg.DeviceFrac > 0 {
		// Footprint measurement runs with telemetry off: it is a sizing
		// probe, not part of the observed replay.
		footprint, err := capacityFootprint(p, specs, profiles, cfg.Seed)
		if err != nil {
			return nil, err
		}
		out.FootprintBytes = footprint
		ps := int64(p.PageSize)
		p.CXLBytes = (int64(float64(footprint)*cfg.DeviceFrac) + ps - 1) / ps * ps
	}

	p.TelemetryEnabled = true
	if cfg.SampleEvery > 0 {
		p.SampleEvery = cfg.SampleEvery
	}
	if cfg.SeriesCap > 0 {
		p.TelemetrySeriesCap = cfg.SeriesCap
	}
	if cfg.KeepAlive > 0 {
		p.KeepAlive = cfg.KeepAlive
	}
	if cfg.Policy != "" {
		p.EvictPolicy = cfg.Policy
	}
	if cfg.SLOOccupancy > 0 {
		p.SLOOccupancy = cfg.SLOOccupancy
		p.SLODriveReclaim = cfg.SLODrive
	}
	if cfg.LowWatermark > 0 {
		p.CXLLowWatermark = cfg.LowWatermark
	}
	if cfg.Devices > 0 {
		p.CXLDevices = cfg.Devices
	}
	if cfg.ReplicationFactor > 0 {
		p.ReplicationFactor = cfg.ReplicationFactor
	}
	if cfg.Switches > 0 {
		ndev := cfg.Devices
		if ndev < 1 {
			ndev = 1
		}
		p.Topology = fabric.GridSpec(2, cfg.Switches, ndev)
	}
	if cfg.Placement != "" {
		p.PlacementPolicy = cfg.Placement
	}
	if cfg.XRay {
		p.XRayEnabled = true
		p.XRayExemplars = cfg.XRayExemplars
	}
	out.DeviceBytes = p.CXLBytes

	c := cluster.MustNew(p, 2)
	po := porter.New(c, capacityPorterConfig(c, profiles, cfg.Seed))
	if err := po.Setup(specs); err != nil {
		return nil, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	loads := azure.DefaultLoads(names)
	for i := range loads {
		if w, ok := cfg.Weights[loads[i].Function]; ok {
			loads[i].Weight = w
		}
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: cfg.RPS,
		Duration: cfg.Duration,
		Loads:    loads,
		Seed:     cfg.Seed,
	})
	out.Results = po.Run(trace)
	out.Registry = po.Telemetry()
	out.Alerts = po.SLOAlerts()
	if c.XRay.Enabled() {
		out.XRay = c.XRay.Report()
	}
	return out, nil
}

// SLOConfig tunes the observe-vs-drive comparison.
type SLOConfig struct {
	// RPS and Duration shape the replayed trace.
	RPS      float64
	Duration des.Time
	// DeviceFrac sizes the device as a fraction of the measured suite
	// footprint — undersized so occupancy pressure is real.
	DeviceFrac float64
	// Occupancy is the SLO target utilization, set between the low and
	// high watermarks so the alert can act before forced reclaim.
	Occupancy float64
	// LowWatermark overrides the reclaim floor for both runs (0 keeps
	// the params default). The objective only has room to act when it
	// sits above this floor and below steady-state occupancy.
	LowWatermark float64
	// KeepAlive, Functions, Weights, Seed: as in CapacityConfig.
	KeepAlive des.Time
	Functions []string
	Weights   map[string]float64
	Seed      int64
	// SampleEvery overrides the telemetry tick when non-zero.
	SampleEvery des.Time
}

// DefaultSLOConfig mirrors the capacity experiment's skewed Fig. 10
// replay on a half-footprint device, with the occupancy objective
// placed between the watermarks (low 0.60 < target 0.70 < high 0.90)
// so the firing alert has room to reclaim before the high watermark
// would force it.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		RPS:          150,
		Duration:     60 * des.Second,
		DeviceFrac:   0.5,
		Occupancy:    0.70,
		LowWatermark: 0.60,
		KeepAlive:    3 * des.Second,
		Weights: map[string]float64{
			"Cnn": 20, "Json": 2, "Float": 2, "Rnn": 2, "Chameleon": 1,
			"Bert": 0,
		},
		Seed: 7,
	}
}

// SLORun is one replay of the comparison.
type SLORun struct {
	// Drive is whether the occupancy alert drove the capacity manager.
	Drive   bool
	Results porter.Results
	Alerts  []telemetry.Alert
	// OccMax and OccMean summarize the sampled cxl_utilization series.
	OccMax, OccMean float64
}

// SLOResult holds both replays.
type SLOResult struct {
	Cfg            SLOConfig
	FootprintBytes int64
	DeviceBytes    int64
	Observe, Drive SLORun
}

// SLO runs the comparison: identical replays with the occupancy
// alert observing vs driving the capacity manager.
func SLO(p params.Params, cfg SLOConfig) (*SLOResult, error) {
	res := &SLOResult{Cfg: cfg}
	for _, drive := range []bool{false, true} {
		tr, err := TelemetryTrace(p, TelemetryTraceConfig{
			RPS: cfg.RPS, Duration: cfg.Duration, DeviceFrac: cfg.DeviceFrac,
			KeepAlive: cfg.KeepAlive, Functions: cfg.Functions, Weights: cfg.Weights,
			Seed: cfg.Seed, SampleEvery: cfg.SampleEvery,
			SLOOccupancy: cfg.Occupancy, SLODrive: drive,
			LowWatermark: cfg.LowWatermark,
		})
		if err != nil {
			return nil, fmt.Errorf("slo drive=%v: %w", drive, err)
		}
		run := SLORun{Drive: drive, Results: tr.Results, Alerts: tr.Alerts}
		run.OccMax, run.OccMean = seriesStats(tr.Registry, "cxl_utilization")
		if drive {
			res.Drive = run
		} else {
			res.Observe = run
		}
		res.FootprintBytes, res.DeviceBytes = tr.FootprintBytes, tr.DeviceBytes
	}
	return res, nil
}

// seriesStats returns the max and mean of a sampled series' values.
func seriesStats(reg *telemetry.Registry, key string) (max, mean float64) {
	s := reg.Lookup(key)
	if s == nil || s.Len() == 0 {
		return 0, 0
	}
	var sum float64
	for _, sm := range s.Samples() {
		if sm.V > max {
			max = sm.V
		}
		sum += sm.V
	}
	return max, sum / float64(s.Len())
}

// renderObservability appends the run's observation accounting to a
// summary — sample counts, ring/trace drops (the satellite fix: silent
// data loss used to be reachable only via the facade), and SLO alert
// activity. Quiet when the run observed nothing and lost nothing.
func renderObservability(w io.Writer, label string, res porter.Results) {
	if res.TelemetrySamples == 0 && res.TraceDropped == 0 && res.TelemetryDropped == 0 {
		return
	}
	fmt.Fprintf(w, "%stelemetry: %d samples, %d ring drops; trace drops: %d; SLO alerts fired: %d\n",
		label, res.TelemetrySamples, res.TelemetryDropped, res.TraceDropped, res.SLOAlertsFired)
	if res.TelemetryDropped > 0 {
		fmt.Fprintf(w, "%s  warning: telemetry ring overflow — oldest samples overwritten; raise TelemetrySeriesCap\n", label)
	}
	if res.TraceDropped > 0 {
		fmt.Fprintf(w, "%s  warning: trace buffer overflow — %d spans lost; raise TraceBufferCap\n", label, res.TraceDropped)
	}
}

// Render prints the observe-vs-drive comparison and the driven run's
// alert timeline.
func (r *SLOResult) Render(w io.Writer) {
	fmt.Fprintf(w, "SLO burn-rate drive — occupancy objective ≤ %.0f%%, device %d MiB (%.0f%% of %d MiB footprint), Fig. 10 trace %.0f rps × %s\n",
		100*r.Cfg.Occupancy, r.DeviceBytes>>20, 100*r.Cfg.DeviceFrac,
		r.FootprintBytes>>20, r.Cfg.RPS, compact(r.Cfg.Duration))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tAlerts\tReclaims\tEvicted\tRefused\tOcc max\tOcc mean\tCold P99\tOverall P99")
	for _, run := range []SLORun{r.Observe, r.Drive} {
		mode := "observe"
		if run.Drive {
			mode = "drive"
		}
		res := run.Results
		cold99 := "-"
		if res.ColdLatency != nil && res.ColdLatency.Count() > 0 {
			cold99 = compact(res.ColdLatency.Quantile(99))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\t%s\t%s\n",
			mode, res.SLOAlertsFired, res.ReclaimPasses, res.EvictedCkpts, res.CkptRefused,
			100*run.OccMax, 100*run.OccMean, cold99, compact(res.Overall.P99()))
	}
	tw.Flush()

	if len(r.Drive.Alerts) > 0 {
		fmt.Fprintln(w, "\nDriven-run alert timeline:")
		for _, a := range r.Drive.Alerts {
			state := "RESOLVED"
			if a.Firing {
				state = "FIRING"
			}
			fmt.Fprintf(w, "  %8s  %s %s (burn short %.1f, long %.1f)\n",
				compact(a.At), a.Objective, state, a.Short, a.Long)
		}
	}
	renderObservability(w, "", r.Drive.Results)
}
