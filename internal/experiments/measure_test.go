package experiments

import (
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/metrics"
)

// TestMeasureShapes checks the paper's headline shape claims on two
// representative functions (small cache-resident Float, large Bert).
func TestMeasureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mechanistic measurement is slow")
	}
	p := ExpParams()
	for _, name := range []string{"Float", "Bert"} {
		spec, _ := faas.ByName(name)
		fm, err := MeasureFunction(p, spec, AllScenarios)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cold := fm.ByScen[ScenCold]
		lf := fm.ByScen[ScenLocalFork]
		cr := fm.ByScen[ScenCRIU]
		mi := fm.ByScen[ScenMitosis]
		cx := fm.ByScen[ScenCXLfork]

		t.Logf("%s: coldInit=%v", name, fm.ColdInit)
		for _, m := range []Measure{cold, lf, cr, mi, cx, fm.ByScen[ScenCXLforkMoA], fm.ByScen[ScenCXLforkHT]} {
			t.Logf("  %-12s ckpt=%-10v restore=%-10v faults=%-10v exec=%-10v e2e=%-10v warm=%-10v localMB=%d",
				m.Scenario, m.Checkpoint, m.Restore, m.FaultTime, m.Exec, m.E2E, m.WarmSteady,
				int64(m.LocalPages)*4096>>20)
		}

		// Ordering: CXLfork restore < Mitosis restore < CRIU restore.
		if !(cx.Restore < mi.Restore && mi.Restore < cr.Restore) {
			t.Errorf("%s restore ordering broken: cxl=%v mit=%v criu=%v",
				name, cx.Restore, mi.Restore, cr.Restore)
		}
		// E2E: CXLfork fastest rfork; Cold slowest overall.
		if !(cx.E2E < mi.E2E && cx.E2E < cr.E2E) {
			t.Errorf("%s e2e ordering broken: cxl=%v mit=%v criu=%v", name, cx.E2E, mi.E2E, cr.E2E)
		}
		if cold.E2E < cr.E2E {
			t.Errorf("%s cold %v faster than CRIU %v", name, cold.E2E, cr.E2E)
		}
		// Memory: CXLfork < Mitosis < CRIU ≈ Cold.
		if !(cx.LocalPages < mi.LocalPages && mi.LocalPages < cr.LocalPages) {
			t.Errorf("%s memory ordering broken: cxl=%d mit=%d criu=%d",
				name, cx.LocalPages, mi.LocalPages, cr.LocalPages)
		}
		t.Logf("  ratios: criu/cxl=%s mit/cxl=%s cxl/lf=%s cold/cxl=%s memCXL/cold=%.2f",
			metrics.Ratio(cr.E2E, cx.E2E), metrics.Ratio(mi.E2E, cx.E2E),
			metrics.Ratio(cx.E2E, lf.E2E), metrics.Ratio(cold.E2E, cx.E2E),
			float64(cx.LocalPages)/float64(cold.LocalPages))
		// Restore ranges (§7.1): CXLfork restores in single-digit ms.
		if cx.Restore > 10*des.Millisecond {
			t.Errorf("%s CXLfork restore %v above paper's 6.1ms-ish bound", name, cx.Restore)
		}
	}
}
