package experiments

import (
	"fmt"
	"runtime"
	"time"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// suiteSubset resolves function names to their workload specs.
func suiteSubset(names []string) ([]faas.Spec, error) {
	specs := make([]faas.Spec, 0, len(names))
	for _, name := range names {
		s, ok := faas.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown function %q", name)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// AzureBench replays a large seeded Azure trace through a full porter
// cluster and measures engine throughput — the cluster-replay leg of
// the cxlbench trajectory (DESIGN.md §13). Unlike ParBench, which
// stresses the bare event queues, this leg exercises the entire stack:
// kernel page tables, checkpoint lanes, scheduler, replica layer.

// AzureBenchConfig sizes the replay.
type AzureBenchConfig struct {
	// Requests is the target trace arrival count (the generated trace
	// is seeded and virtual-time-spaced, so the realized count is
	// deterministic for a given config).
	Requests int
	// Duration is the virtual trace length the arrivals spread over.
	Duration des.Time
	// Nodes is the cluster size.
	Nodes int
	// Seed drives trace generation.
	Seed int64
}

// DefaultAzureBenchConfig is the trajectory harness' million-request
// cluster run (ROADMAP: "a million-request cluster run in single-digit
// wall-clock seconds").
func DefaultAzureBenchConfig() AzureBenchConfig {
	return AzureBenchConfig{
		Requests: 1_000_000,
		Duration: 400 * des.Second,
		Nodes:    4,
		Seed:     7,
	}
}

// AzureBenchResult is the replay's measurements. Completed, Events,
// SimTime and Fingerprint are virtual-time facts — byte-reproducible on
// any machine; Wall and the derived rates are host-dependent.
type AzureBenchResult struct {
	Cfg            AzureBenchConfig
	Arrivals       int
	Completed      int
	Events         uint64
	SimTime        des.Time
	Wall           time.Duration
	AllocsPerEvent float64
	Fingerprint    uint64
}

// EventsPerSec is the dispatch throughput over the host wall clock.
func (r *AzureBenchResult) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// SimSecPerWallSec is how much virtual time one wall second buys.
func (r *AzureBenchResult) SimSecPerWallSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return r.SimTime.Seconds() / r.Wall.Seconds()
}

// AzureBench calibrates profiles mechanistically, then replays the
// trace through a CXLfork migrate-on-write porter and measures the
// engine. The replay itself is the timed region; calibration and trace
// generation are excluded.
func AzureBench(p params.Params, cfg AzureBenchConfig) (*AzureBenchResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = des.Second
	}
	specs, err := suiteSubset([]string{"Float", "Json"})
	if err != nil {
		return nil, err
	}
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)

	c := cluster.MustNew(p, cfg.Nodes)
	pol := rfork.MigrateOnWrite
	po := porter.New(c, porter.Config{
		Mechanism:       core.New(c.Dev),
		Profiles:        profiles,
		Seed:            cfg.Seed,
		NodeBudgetBytes: 12 << 30,
		StaticPolicy:    &pol,
	})
	if err := po.Setup(specs); err != nil {
		return nil, err
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: float64(cfg.Requests) / cfg.Duration.Seconds(),
		Duration: cfg.Duration,
		Loads:    azure.DefaultLoads(names),
		Seed:     cfg.Seed,
	})

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	results := po.Run(trace)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	res := &AzureBenchResult{
		Cfg:         cfg,
		Arrivals:    len(trace),
		Completed:   results.Completed,
		Events:      c.Eng.Executed(),
		SimTime:     results.Duration,
		Wall:        wall,
		Fingerprint: results.Fingerprint(),
	}
	if res.Events > 0 {
		res.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(res.Events)
	}
	return res, nil
}
