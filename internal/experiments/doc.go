// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index). Every driver
// returns typed results and can render the same rows/series the paper
// reports; cmd/cxlsim exposes them on the command line and bench_test.go
// wraps them as benchmarks.
//
// Each driver is an exported function (Ckpt, Scale, Capacity, Faults,
// Workflow, ...) taking params.Params and a config struct and returning
// a result with a Render method; ExpParams is the shared platform
// configuration.
package experiments
