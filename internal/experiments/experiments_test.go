package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// subset returns a fast two-function suite for driver tests.
func subset() []faas.Spec {
	var out []faas.Spec
	for _, name := range []string{"Float", "Json"} {
		s, _ := faas.ByName(name)
		out = append(out, s)
	}
	return out
}

func TestMeasureAllAndRender(t *testing.T) {
	p := ExpParams()
	ms, err := MeasureAll(p, subset(), AllScenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("measurements = %d", len(ms))
	}
	r := Fig7Result{Measurements: ms}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 7a", "Figure 7b", "Float", "Json", "CXLfork", "Averages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	s := r.Summary()
	if s.CRIUOverCXLfork <= 1 {
		t.Fatalf("CRIU not slower than CXLfork: %v", s.CRIUOverCXLfork)
	}
	if s.MemSavedOverCRIU <= 0.5 {
		t.Fatalf("memory saving vs CRIU too small: %v", s.MemSavedOverCRIU)
	}
}

func TestFig8SummaryAndRender(t *testing.T) {
	p := ExpParams()
	ms, err := MeasureAll(p, subset(), tieringScenarios)
	if err != nil {
		t.Fatal(err)
	}
	r := Fig8Result{Measurements: ms}
	s := r.Summary()
	if s.MoAMemGrowth <= 0 {
		t.Fatalf("MoA did not grow memory: %v", s.MoAMemGrowth)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 8c") {
		t.Fatal("render incomplete")
	}
}

func TestFig1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("classification sweep is slow")
	}
	p := ExpParams()
	r, err := Fig1(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Breakdowns) != 10 {
		t.Fatalf("breakdowns = %d", len(r.Breakdowns))
	}
	var rw float64
	for _, b := range r.Breakdowns {
		if math.Abs(b.InitFrac+b.ROFrac+b.RWFrac-1) > 1e-9 {
			t.Fatalf("%s fractions don't sum to 1", b.Name)
		}
		rw += b.RWFrac
	}
	if avg := rw / 10; math.Abs(avg-0.048) > 0.02 {
		t.Fatalf("mean RW fraction %.3f, want ≈0.048", avg)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Average") {
		t.Fatal("render incomplete")
	}
}

func TestFig6Run(t *testing.T) {
	p := ExpParams()
	r, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper: 250-500 ms state init; our Bert runs higher because its
		// 630 MB population is charged mechanistically.
		if row.StateInit < 250*des.Millisecond || row.StateInit > 900*des.Millisecond {
			t.Errorf("%s state init %v outside plausible band", row.Function, row.StateInit)
		}
		if row.Container != p.ContainerCreate {
			t.Errorf("%s container cost wrong", row.Function)
		}
	}
}

func TestBuildProfiles(t *testing.T) {
	p := ExpParams()
	ms, err := MeasureAll(p, subset(), AllScenarios)
	if err != nil {
		t.Fatal(err)
	}
	profiles := BuildProfiles(ms)
	// 5 scenario keys per function.
	if len(profiles) != 10 {
		t.Fatalf("profiles = %d, want 10", len(profiles))
	}
	key := porter.ProfileKey{Function: "Float", Mechanism: "CXLfork", Policy: rfork.MigrateOnWrite}
	pr, ok := profiles[key]
	if !ok {
		t.Fatal("missing CXLfork/MoW profile")
	}
	if pr.Restore <= 0 || pr.WarmExec <= 0 || pr.LocalPages <= 0 || pr.FootprintPages <= pr.LocalPages {
		t.Fatalf("degenerate profile %+v", pr)
	}
	mit := profiles[porter.ProfileKey{Function: "Float", Mechanism: "Mitosis-CXL", Policy: rfork.MigrateOnWrite}]
	if mit.RemoteCopy <= 0 {
		t.Fatal("Mitosis profile has no remote-copy component")
	}
	cxl := profiles[key]
	if cxl.RemoteCopy != 0 {
		t.Fatal("CXLfork profile has a remote-copy component")
	}
}

func TestScaleDedupFlat(t *testing.T) {
	p := ExpParams()
	r, err := Scale(p, "Float", 3, []int{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	a, b := r.Points[0], r.Points[1]
	// Device occupancy flat; local memory grows linearly; CRIU ≫ CXLfork.
	if a.DeviceMB != b.DeviceMB {
		t.Fatalf("device grew with clones: %d → %d MB", a.DeviceMB, b.DeviceMB)
	}
	if b.CXLforkLocalMB <= a.CXLforkLocalMB {
		t.Fatal("local memory did not grow with clones")
	}
	if b.CRIULocalMB <= 2*b.CXLforkLocalMB {
		t.Fatalf("dedup advantage too small: criu=%d cxlfork=%d", b.CRIULocalMB, b.CXLforkLocalMB)
	}
	// Restore latency roughly flat in the clone count.
	ratio := float64(b.RestoreMean) / float64(a.RestoreMean)
	if ratio > 1.2 || ratio < 0.8 {
		t.Fatalf("restore latency not flat: %v vs %v", a.RestoreMean, b.RestoreMean)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "deduplication") {
		t.Fatal("render incomplete")
	}
}

func TestFig9BandsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is slow")
	}
	p := ExpParams()
	r, err := Fig9(p)
	if err != nil {
		t.Fatal(err)
	}
	// BFS warm improves monotonically as latency drops; Float is flat.
	var bfs, float []float64
	for _, lat := range Fig9Latencies {
		for _, pt := range r.Points {
			if pt.CXLLatency != lat {
				continue
			}
			switch pt.Function {
			case "BFS":
				bfs = append(bfs, pt.WarmRel)
			case "Float":
				float = append(float, pt.WarmRel)
			}
		}
	}
	for i := 1; i < len(bfs); i++ {
		if bfs[i] > bfs[i-1]+1e-9 {
			t.Fatalf("BFS warm not improving: %v", bfs)
		}
	}
	for _, v := range float {
		if math.Abs(v-1.0) > 0.05 {
			t.Fatalf("Float warm not flat: %v", float)
		}
	}
	if bfs[0] < 1.3 {
		t.Fatalf("BFS not penalized at 400ns: %v", bfs[0])
	}
}

func TestFaultsCrossCheck(t *testing.T) {
	p := ExpParams()
	fc, err := Faults(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc.CoWCXL-2.5) > 0.01 {
		t.Fatalf("CoW-CXL = %v µs, want 2.5", fc.CoWCXL)
	}
	if fc.AnonFault >= 1.0 {
		t.Fatalf("anon fault %v µs, want < 1", fc.AnonFault)
	}
	// The measured per-fault MoA average sits near the modelled cost.
	if fc.MoA < 1.5 || fc.MoA > 3.5 {
		t.Fatalf("MoA per-fault average %v µs implausible", fc.MoA)
	}
}

func TestFig10SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("porter replay is slow")
	}
	p := ExpParams()
	cfg := DefaultFig10Config()
	cfg.Duration = 5 * des.Second
	cfg.RPS = 40
	cfg.Functions = []string{"Float", "Json"}
	cfg.MemoryFractions = []float64{1.0, 0.25}
	r, err := Fig10(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 8 { // 4 designs × 2 fractions
		t.Fatalf("runs = %d", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.Results.Completed == 0 {
			t.Fatalf("%s@%.2f completed nothing", run.Design, run.MemFrac)
		}
		if run.P50 > run.P99 {
			t.Fatalf("%s@%.2f P50 > P99", run.Design, run.MemFrac)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	for _, want := range []string{"Figure 10a", "Figure 10b", "Figure 10c"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestWorkflowDriver(t *testing.T) {
	p := ExpParams()
	r, err := Workflow(p, 3, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ByRef.Latency >= row.ByValue.Latency {
			t.Fatalf("%dMB: by-reference not faster", row.PayloadMB)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "workflow") {
		t.Fatal("render incomplete")
	}
}
