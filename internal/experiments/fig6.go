package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// Fig6Row is one function's cold-start anatomy (Fig. 6).
type Fig6Row struct {
	Function  string
	StateInit des.Time
	Container des.Time
}

// Fig6Result is the cold-start anatomy across the suite.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 measures state-initialization time per function; container
// creation is function-independent (§5) and comes from the platform
// model.
func Fig6(p params.Params) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, spec := range faas.Suite() {
		c, err := NewEnv(p, spec)
		if err != nil {
			return nil, err
		}
		node := c.Node(0)
		in, err := faas.NewInstance(node, spec)
		if err != nil {
			return nil, err
		}
		t0 := c.Eng.Now()
		if err := in.ColdInit(); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			Function:  spec.Name,
			StateInit: c.Eng.Now() - t0,
			Container: p.ContainerCreate,
		})
		in.Exit()
	}
	return res, nil
}

// Render prints the anatomy table.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 — cold-start latency anatomy (paper: state init 250-500ms, container ≈130ms)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tState init\tContainer creation\tTotal")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", row.Function,
			compact(row.StateInit), compact(row.Container), compact(row.StateInit+row.Container))
	}
	tw.Flush()
}

// Table1Render prints the workload suite (Table 1).
func Table1Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — serverless functions used in the evaluation")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tDescription\tFootprint(MB)")
	for _, s := range faas.Suite() {
		fmt.Fprintf(tw, "%s\t%s\t%d\n", s.Name, s.Description, s.FootprintBytes>>20)
	}
	tw.Flush()
}
