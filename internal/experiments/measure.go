package experiments

import (
	"fmt"
	"math/rand"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/kernel"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
)

// Scenario names a cold-start configuration, matching the paper's bar
// labels.
type Scenario string

// Scenarios of Fig. 7/8.
const (
	ScenCold       Scenario = "Cold"
	ScenLocalFork  Scenario = "LocalFork"
	ScenCRIU       Scenario = "CRIU-CXL"
	ScenMitosis    Scenario = "Mitosis-CXL"
	ScenCXLfork    Scenario = "CXLfork"     // migrate-on-write (default)
	ScenCXLforkMoA Scenario = "CXLfork-MoA" // migrate-on-access
	ScenCXLforkHT  Scenario = "CXLfork-HT"  // hybrid tiering
)

// AllScenarios lists every scenario in presentation order.
var AllScenarios = []Scenario{
	ScenCold, ScenLocalFork, ScenCRIU, ScenMitosis,
	ScenCXLfork, ScenCXLforkMoA, ScenCXLforkHT,
}

// Measure is one (function, scenario) cold-start measurement.
type Measure struct {
	Function string
	Scenario Scenario

	// Checkpoint is the checkpoint-phase latency (zero for Cold and
	// LocalFork).
	Checkpoint des.Time
	// Restore is the restore-phase latency (fork latency for LocalFork,
	// state-initialization time for Cold).
	Restore des.Time
	// FaultTime is the time spent in page faults (all kinds, including
	// post-restore dirty prefetch) during the cold-start execution.
	FaultTime des.Time
	// Exec is the remaining execution time: E2E - Restore - FaultTime.
	Exec des.Time
	// E2E is the end-to-end cold-start execution time: restore plus the
	// first invocation.
	E2E des.Time
	// WarmSteady is the steady-state warm invocation time measured
	// after the cold start.
	WarmSteady des.Time
	// LocalPages is the node-local memory the child consumed (pool
	// delta at steady state).
	LocalPages int
	// Faults is the child's fault breakdown.
	Faults kernel.FaultStats
}

// FnMeasurement is every scenario's measurement for one function.
type FnMeasurement struct {
	Spec     faas.Spec
	ColdInit des.Time // state-initialization time alone (Fig. 6)
	ByScen   map[Scenario]Measure
}

// MeasureFunction runs the full cold-start measurement protocol for one
// function: build a steady-state parent on node 0, checkpoint it with
// each mechanism, and measure cold-start execution for every requested
// scenario with clones on node 1 (LocalFork stays on node 0, Cold runs
// on node 1). The measurement protocol mirrors §6.2: functions run
// unsandboxed and the checkpoint phase is excluded from E2E.
func MeasureFunction(p params.Params, spec faas.Spec, scens []Scenario) (*FnMeasurement, error) {
	c, err := NewEnv(p, spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(42))
	out := &FnMeasurement{Spec: spec, ByScen: make(map[Scenario]Measure)}

	parent, coldInit, err := buildParent(c, spec, rng)
	if err != nil {
		return nil, err
	}
	out.ColdInit = coldInit

	want := make(map[Scenario]bool, len(scens))
	for _, s := range scens {
		want[s] = true
	}

	if want[ScenCold] {
		m, err := measureCold(c, spec, rng)
		if err != nil {
			return nil, err
		}
		out.ByScen[ScenCold] = m
	}

	if want[ScenCRIU] {
		mech := criu.New(c.CXLFS)
		m, err := measureRfork(c, spec, parent, mech, rfork.Options{}, ScenCRIU, rng)
		if err != nil {
			return nil, err
		}
		out.ByScen[ScenCRIU] = m
	}
	if want[ScenMitosis] {
		mech := mitosis.New()
		m, err := measureRfork(c, spec, parent, mech, rfork.Options{}, ScenMitosis, rng)
		if err != nil {
			return nil, err
		}
		out.ByScen[ScenMitosis] = m
	}
	if want[ScenCXLfork] || want[ScenCXLforkMoA] || want[ScenCXLforkHT] {
		mech := core.New(c.Dev)
		img, ckptLat, err := checkpointTimed(c, parent, mech, "cxlfork-"+spec.Name)
		if err != nil {
			return nil, err
		}
		policies := []struct {
			scen Scenario
			opts rfork.Options
		}{
			{ScenCXLfork, rfork.Options{Policy: rfork.MigrateOnWrite}},
			{ScenCXLforkMoA, rfork.Options{Policy: rfork.MigrateOnAccess}},
			{ScenCXLforkHT, rfork.Options{Policy: rfork.HybridTiering}},
		}
		for _, pc := range policies {
			if !want[pc.scen] {
				continue
			}
			m, err := measureRestore(c, spec, mech, img, pc.opts, pc.scen, rng)
			if err != nil {
				return nil, err
			}
			m.Checkpoint = ckptLat
			out.ByScen[pc.scen] = m
		}
		img.Release()
	}

	// LocalFork last: fork downgrades the parent's writable mappings.
	if want[ScenLocalFork] {
		m, err := measureLocalFork(c, spec, parent, rng)
		if err != nil {
			return nil, err
		}
		out.ByScen[ScenLocalFork] = m
	}
	return out, nil
}

// buildParent cold-starts the function on node 0, clears A/D after the
// first invocation, and warms it up to its 16th invocation (§5), so the
// checkpointed A/D bits capture the steady state.
func buildParent(c *cluster.Cluster, spec faas.Spec, rng *rand.Rand) (*faas.Instance, des.Time, error) {
	node := c.Node(0)
	in, err := faas.NewInstance(node, spec)
	if err != nil {
		return nil, 0, err
	}
	t0 := c.Eng.Now()
	if err := in.ColdInit(); err != nil {
		return nil, 0, err
	}
	coldInit := c.Eng.Now() - t0
	if _, err := in.Invoke(rng); err != nil {
		return nil, 0, err
	}
	in.Task.MM.PT.ClearABits()
	in.Task.MM.PT.ClearDirtyBits()
	if err := in.Warmup(node.P.CheckpointAfter-1, rng); err != nil {
		return nil, 0, err
	}
	return in, coldInit, nil
}

// measureCold measures a vanilla cold start on node 1.
func measureCold(c *cluster.Cluster, spec faas.Spec, rng *rand.Rand) (Measure, error) {
	node := c.Node(1)
	node.LLC.Reset()
	node.TLB.Reset()
	used := node.Mem.UsedPages()
	t0 := c.Eng.Now()
	in, err := faas.NewInstance(node, spec)
	if err != nil {
		return Measure{}, err
	}
	if err := in.ColdInit(); err != nil {
		return Measure{}, err
	}
	restore := c.Eng.Now() - t0 // "restore" = state initialization
	faultsAtInit := in.Task.MM.Stats.Faults.Time
	if _, err := in.Invoke(rng); err != nil {
		return Measure{}, err
	}
	m := finishMeasure(c, spec, in, ScenCold, t0, restore, used, rng)
	// For Cold, fault time during init is part of "Restore"; report only
	// invocation-time faults in FaultTime to keep the breakdown additive.
	m.FaultTime = in.Task.MM.Stats.Faults.Time - faultsAtInit
	m.Exec = m.E2E - m.Restore - m.FaultTime
	in.Exit()
	return m, nil
}

// measureLocalFork forks the warm parent on its own node.
func measureLocalFork(c *cluster.Cluster, spec faas.Spec, parent *faas.Instance, rng *rand.Rand) (Measure, error) {
	node := c.Node(0)
	used := node.Mem.UsedPages()
	t0 := c.Eng.Now()
	child, err := node.Fork(parent.Task, spec.Name+"-child")
	if err != nil {
		return Measure{}, err
	}
	restore := c.Eng.Now() - t0
	in := faas.Adopt(child, spec)
	if _, err := in.Invoke(rng); err != nil {
		return Measure{}, err
	}
	m := finishMeasure(c, spec, in, ScenLocalFork, t0, restore, used, rng)
	in.Exit()
	return m, nil
}

// checkpointTimed checkpoints the parent, returning the image and the
// checkpoint-phase latency.
func checkpointTimed(c *cluster.Cluster, parent *faas.Instance, mech rfork.Mechanism, id string) (rfork.Image, des.Time, error) {
	t0 := c.Eng.Now()
	img, err := mech.Checkpoint(parent.Task, id)
	if err != nil {
		return nil, 0, err
	}
	return img, c.Eng.Now() - t0, nil
}

// measureRfork checkpoints with mech and measures one restore.
func measureRfork(c *cluster.Cluster, spec faas.Spec, parent *faas.Instance, mech rfork.Mechanism, opts rfork.Options, scen Scenario, rng *rand.Rand) (Measure, error) {
	img, ckptLat, err := checkpointTimed(c, parent, mech, fmt.Sprintf("%s-%s", mech.Name(), spec.Name))
	if err != nil {
		return Measure{}, err
	}
	m, err := measureRestore(c, spec, mech, img, opts, scen, rng)
	if err != nil {
		return Measure{}, err
	}
	m.Checkpoint = ckptLat
	img.Release()
	return m, nil
}

// measureRestore measures the cold-start execution of one clone restored
// on node 1.
func measureRestore(c *cluster.Cluster, spec faas.Spec, mech rfork.Mechanism, img rfork.Image, opts rfork.Options, scen Scenario, rng *rand.Rand) (Measure, error) {
	node := c.Node(1)
	node.LLC.Reset()
	node.TLB.Reset()
	used := node.Mem.UsedPages()

	t0 := c.Eng.Now()
	child := node.NewTask(spec.Name + "-clone")
	if err := mech.Restore(child, img, opts); err != nil {
		return Measure{}, err
	}
	// Post-restore prefetch work is charged to the fault budget, not the
	// restore phase a request observes (§4.2.1).
	restore := (c.Eng.Now() - t0) - child.MM.Stats.Faults.Time

	in := faas.Adopt(child, spec)
	if _, err := in.Invoke(rng); err != nil {
		return Measure{}, err
	}
	m := finishMeasure(c, spec, in, scen, t0, restore, used, rng)
	in.Exit()
	return m, nil
}

// finishMeasure computes the E2E breakdown and steady-state behaviour.
// It does not exit the instance (callers may need it afterwards).
func finishMeasure(c *cluster.Cluster, spec faas.Spec, in *faas.Instance, scen Scenario, t0 des.Time, restore des.Time, usedBefore int, rng *rand.Rand) Measure {
	node := in.Task.OS
	m := Measure{
		Function: spec.Name,
		Scenario: scen,
		Restore:  restore,
		E2E:      c.Eng.Now() - t0,
	}
	m.FaultTime = in.Task.MM.Stats.Faults.Time
	m.Exec = m.E2E - m.Restore - m.FaultTime

	// Steady state: three more invocations, last one is the warm time.
	var warm des.Time
	for i := 0; i < 3; i++ {
		d, err := in.Invoke(rng)
		if err != nil {
			break
		}
		warm = d
	}
	m.WarmSteady = warm
	m.LocalPages = node.Mem.UsedPages() - usedBefore
	m.Faults = in.Task.MM.Stats.Faults
	return m
}
