package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// Fig3cResult is the motivation experiment: CRIU-CXL and Mitosis-CXL
// forking a BERT instance, versus local fork (Fig. 3c).
type Fig3cResult struct {
	Bert *FnMeasurement
}

// Fig3c measures the BERT motivation comparison.
func Fig3c(p params.Params) (*Fig3cResult, error) {
	spec, _ := faas.ByName("Bert")
	fm, err := MeasureFunction(p, spec, []Scenario{ScenLocalFork, ScenCRIU, ScenMitosis})
	if err != nil {
		return nil, err
	}
	return &Fig3cResult{Bert: fm}, nil
}

// Render prints the latency and memory comparison.
func (r *Fig3cResult) Render(w io.Writer) {
	lf := r.Bert.ByScen[ScenLocalFork]
	cr := r.Bert.ByScen[ScenCRIU]
	mi := r.Bert.ByScen[ScenMitosis]
	fmt.Fprintln(w, "Figure 3c — remote-fork motivation on BERT (state already checkpointed)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mechanism\tRestore\tTotal\tvs LocalFork\tLocal memory\tvs LocalFork")
	for _, m := range []Measure{lf, cr, mi} {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2fx\t%dMB\t%.0fx\n",
			m.Scenario, compact(m.Restore), compact(m.E2E),
			float64(m.E2E)/float64(lf.E2E),
			int64(m.LocalPages)*4096>>20,
			float64(m.LocalPages)/float64(lf.LocalPages))
	}
	tw.Flush()
	fmt.Fprintf(w, "Paper: CRIU restore alone 2.7x LocalFork total, 42x memory; Mitosis 2.6x total, 24x memory.\n")
	fmt.Fprintf(w, "Here: CRIU restore/LocalFork-total = %.2fx; CRIU mem %.0fx; Mitosis total %.2fx, mem %.0fx.\n",
		float64(cr.Restore)/float64(lf.E2E),
		float64(cr.LocalPages)/float64(lf.LocalPages),
		float64(mi.E2E)/float64(lf.E2E),
		float64(mi.LocalPages)/float64(lf.LocalPages))
}
