package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"cxlfork/internal/des"
	"cxlfork/internal/params"
)

// ParBench is the engine-throughput benchmark of the sharded simulator
// (DESIGN.md §13): N nodes, each running a chain of checkpoint
// requests as lane-pipelined chunk copies on its own event queue, with
// every sealed image replicated to the next node over the fabric. The
// replication transfer is the minimum cross-node latency, so it is
// also the epoch lookahead window. The workload is built so
// same-timestamp events on different nodes commute (receives only add
// to counters), which makes the per-node trajectories — and the folded
// fingerprint — byte-identical between the unified single-queue engine
// (workers <= 1) and the sharded epoch engine at any worker count.

// ParBenchConfig shapes the benchmark workload.
type ParBenchConfig struct {
	// Nodes is the cluster size — one event-queue shard per node.
	Nodes int
	// Requests is the checkpoint-request chain length per node.
	Requests int
	// Lanes is the per-node checkpoint lane count.
	Lanes int
	// Pages is the per-image data page count; it sizes both the lane
	// pipelines and the replication transfer (the lookahead window).
	Pages int
	// Workers is the engine worker count; <= 1 selects the unified
	// single-queue baseline engine.
	Workers int
	// Think is the per-node gap between a sealed image and the next
	// request (default 1ms).
	Think des.Time
}

// DefaultParBenchConfig is the trajectory harness' 64-node point.
func DefaultParBenchConfig() ParBenchConfig {
	return ParBenchConfig{
		Nodes:    64,
		Requests: 40,
		Lanes:    4,
		Pages:    4096,
		Workers:  1,
		Think:    des.Millisecond,
	}
}

// ParBenchResult is one benchmark run's measurements.
type ParBenchResult struct {
	Cfg ParBenchConfig
	// Events is the number of simulation events dispatched.
	Events uint64
	// SimTime is the virtual-time frontier when the queues drained.
	SimTime des.Time
	// Wall is the host wall-clock cost of the run.
	Wall time.Duration
	// Epochs is the barrier count (0 on the unified engine).
	Epochs uint64
	// Requests is the total completed checkpoint requests.
	Requests int64
	// ReplicaPages is the total pages received over the fabric.
	ReplicaPages int64
	// Fingerprint folds the per-node trajectories in node order; it
	// must be identical at every worker count.
	Fingerprint uint64
}

// EventsPerSec is the dispatch throughput over the host wall clock.
func (r *ParBenchResult) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// SimSecPerWallSec is how much virtual time one wall second buys.
func (r *ParBenchResult) SimSecPerWallSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return r.SimTime.Seconds() / r.Wall.Seconds()
}

// parNode is one node's benchmark state. Only its owning shard touches
// the request chain; replicaPages and maxT are also bumped by receive
// events, which commute (counter adds) by construction.
type parNode struct {
	done         int64
	pagesCopied  int64
	replicaPages int64
	lastT        des.Time
	maxT         des.Time
}

// chunkPages is the page granularity of one lane copy event, matching
// the stream-chunk granularity of the lane contention model.
const chunkPages = 32

// ParBench runs the benchmark and measures engine throughput.
func ParBench(p params.Params, cfg ParBenchConfig) *ParBenchResult {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 1
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 1
	}
	if cfg.Think <= 0 {
		cfg.Think = des.Millisecond
	}
	// The replication transfer is the smallest cross-node message, so
	// its cost is the fabric hop floor the epoch window derives from.
	hop := p.CXLLatency + des.Time(cfg.Pages)*p.CXLWritePage
	fab := des.NewFabric(cfg.Nodes, cfg.Workers, hop)

	nodes := make([]parNode, cfg.Nodes)
	start := time.Now()
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		eng := fab.Shard(i)
		n := &nodes[i]

		perLane := (cfg.Pages + cfg.Lanes - 1) / cfg.Lanes
		var request func(r int)
		seal := func(r int) {
			t := eng.Now()
			n.done++
			n.lastT = t
			if t > n.maxT {
				n.maxT = t
			}
			// Replicate the sealed image to the next node: one fabric
			// transfer, received as a commutative counter bump.
			dst := (i + 1) % cfg.Nodes
			pages := cfg.Pages
			fab.Send(i, dst, hop, func() {
				d := &nodes[dst]
				d.replicaPages += int64(pages)
				rt := fab.Shard(dst).Now()
				if rt > d.maxT {
					d.maxT = rt
				}
			})
			if r+1 < cfg.Requests {
				eng.After(cfg.Think, func() { request(r + 1) })
			}
		}
		request = func(r int) {
			// Lanes drain their page shards as chained chunk copies;
			// the request seals when the last lane finishes.
			remaining := cfg.Lanes
			for l := 0; l < cfg.Lanes; l++ {
				var step func(left int)
				step = func(left int) {
					if left <= 0 {
						n.pagesCopied += int64(perLane)
						remaining--
						if remaining == 0 {
							seal(r)
						}
						return
					}
					c := chunkPages
					if left < c {
						c = left
					}
					eng.After(des.Time(c)*p.CXLWritePage, func() { step(left - c) })
				}
				eng.After(des.Time(l+1)*p.LaneDispatch, func() { step(perLane) })
			}
		}
		// Stagger node starts so the ramp is not one synchronized spike.
		eng.At(des.Time(i)*p.LaneDispatch, func() { request(0) })
	}
	fab.Run()
	wall := time.Since(start)

	res := &ParBenchResult{
		Cfg:     cfg,
		Events:  fab.Executed(),
		Wall:    wall,
		SimTime: frontier(fab),
	}
	if se, ok := fab.(*des.ShardedEngine); ok {
		res.Epochs = se.Epochs()
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	fold := func(vs ...uint64) {
		for _, v := range vs {
			for b := 0; b < 8; b++ {
				h ^= (v >> (8 * b)) & 0xff
				h *= prime
			}
		}
	}
	for i := range nodes {
		n := &nodes[i]
		fold(uint64(n.done), uint64(n.pagesCopied), uint64(n.replicaPages),
			uint64(n.lastT), uint64(n.maxT))
		res.Requests += n.done
		res.ReplicaPages += n.replicaPages
	}
	res.Fingerprint = h
	return res
}

// frontier returns the fabric's virtual-time high water mark.
func frontier(fab des.Fabric) des.Time {
	if se, ok := fab.(*des.ShardedEngine); ok {
		return se.Now()
	}
	return fab.Shard(0).Now()
}

// ParBenchSweepResult is the worker-count sweep at one node count.
type ParBenchSweepResult struct {
	Cfg  ParBenchConfig
	Runs []*ParBenchResult
}

// ParBenchSweep runs the benchmark at each worker count and errors if
// any run's fingerprint diverges from the 1-worker baseline — the
// determinism contract of DESIGN.md §13, enforced on every sweep.
func ParBenchSweep(p params.Params, cfg ParBenchConfig, workers []int) (*ParBenchSweepResult, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 8}
	}
	res := &ParBenchSweepResult{Cfg: cfg}
	for _, w := range workers {
		c := cfg
		c.Workers = w
		res.Runs = append(res.Runs, ParBench(p, c))
	}
	base := res.Runs[0]
	for _, r := range res.Runs[1:] {
		if r.Fingerprint != base.Fingerprint {
			return nil, fmt.Errorf("parbench: fingerprint diverged at %d workers: %#x != %#x (workers=%d)",
				r.Cfg.Workers, r.Fingerprint, base.Fingerprint, base.Cfg.Workers)
		}
		if r.Events != base.Events || r.Requests != base.Requests {
			return nil, fmt.Errorf("parbench: event counts diverged at %d workers: %d events / %d requests vs %d / %d",
				r.Cfg.Workers, r.Events, r.Requests, base.Events, base.Requests)
		}
	}
	return res, nil
}

// Render prints the sweep as an aligned table.
func (r *ParBenchSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Parallel engine sweep · %d nodes × %d requests × %d lanes × %d pages\n",
		r.Cfg.Nodes, r.Cfg.Requests, r.Cfg.Lanes, r.Cfg.Pages)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\tengine\tevents\tepochs\tev/sec\tsim-s/wall-s\tspeedup\tfingerprint")
	base := r.Runs[0].EventsPerSec()
	for _, run := range r.Runs {
		engine := "sharded"
		if run.Cfg.Workers <= 1 {
			engine = "unified"
		}
		speedup := 0.0
		if base > 0 {
			speedup = run.EventsPerSec() / base
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.2fM\t%.0f\t%.2fx\t%#x\n",
			run.Cfg.Workers, engine, run.Events, run.Epochs,
			run.EventsPerSec()/1e6, run.SimSecPerWallSec(), speedup, run.Fingerprint)
	}
	tw.Flush()
	fmt.Fprintln(w, "fingerprints are byte-identical across worker counts (checked)")
}
