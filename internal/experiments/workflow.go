package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/cluster"
	"cxlfork/internal/params"
	"cxlfork/internal/workflow"
)

// WorkflowRow is one payload-size sample of the workflow transport
// comparison.
type WorkflowRow struct {
	PayloadMB int64
	ByValue   workflow.Result
	ByRef     workflow.Result
}

// WorkflowResult is the §8 FaaS-workflow extension experiment:
// inter-stage payload passing by value vs by CXL reference.
type WorkflowResult struct {
	Stages int
	Rows   []WorkflowRow
}

// Workflow sweeps payload sizes through a fixed-length chain.
func Workflow(p params.Params, stages int, payloadMBs []int64) (*WorkflowResult, error) {
	if stages < 2 {
		stages = 4
	}
	if len(payloadMBs) == 0 {
		payloadMBs = []int64{1, 4, 16, 64}
	}
	mk := func() *cluster.Cluster { return cluster.MustNew(p, 2) }
	res := &WorkflowResult{Stages: stages}
	for _, mb := range payloadMBs {
		pages := int(mb << 20 / int64(p.PageSize))
		bv, br, err := workflow.Compare(mk, stages, pages)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, WorkflowRow{PayloadMB: mb, ByValue: bv, ByRef: br})
	}
	return res, nil
}

// Render prints the transport comparison.
func (r *WorkflowResult) Render(w io.Writer) {
	fmt.Fprintf(w, "FaaS workflow communication — %d-stage chain, payload per hop (§8 extension)\n", r.Stages)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Payload\tby-value\tby-reference\tspeedup\tcopied(MB)\tby-ref copied")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%dMB\t%s\t%s\t%.2fx\t%d\t%d\n",
			row.PayloadMB, compact(row.ByValue.Latency), compact(row.ByRef.Latency),
			float64(row.ByValue.Latency)/float64(row.ByRef.Latency),
			int64(row.ByValue.LocalPagesCopied)*4096>>20,
			int64(row.ByRef.LocalPagesCopied)*4096>>20)
	}
	tw.Flush()
}
