package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// The chaos experiment (DESIGN.md §12, EXPERIMENTS.md "-exp chaos")
// kills expander devices mid-workload and measures what replication
// buys. The pool is split across several devices and the skewed Fig. 10
// trace replayed once per (replication factor, killed device) pair plus
// a no-kill baseline per factor. At RF 1 every checkpoint has a single
// copy (dedup-affine to the ingest device), so losing that device loses
// images outright: restores fail and their functions degrade to scratch
// cold starts for good. At RF >= 2 the porter fails over to a surviving
// replica — every restore still succeeds — and the anti-entropy repair
// loop rebuilds the lost copies within its bandwidth budget; the report
// includes how long convergence took and what the failovers cost the
// cold-start tail.

// ChaosConfig tunes the device-kill sweep.
type ChaosConfig struct {
	// RPS and Duration shape the replayed Fig. 10 trace.
	RPS      float64
	Duration des.Time
	// Devices is the expander pool size.
	Devices int
	// Factors are the replication factors compared.
	Factors []int
	// KillAt is when, relative to replay start, the device dies.
	KillAt des.Time
	// PoolHeadroom sizes total pool capacity as a multiple of the
	// suite's measured (dedup-aware) checkpoint footprint. It must
	// cover the ingest device holding one copy of everything plus the
	// highest factor's extra replicas.
	PoolHeadroom float64
	// RepairBandwidthPages overrides the repair loop's per-tick copy
	// budget when non-zero (the sweep wants convergence within the
	// trace window).
	RepairBandwidthPages int
	// KeepAlive, Functions, Weights, Seed: as in CapacityConfig.
	KeepAlive des.Time
	Functions []string
	Weights   map[string]float64
	Seed      int64
}

// DefaultChaosConfig is a three-device pool under the capacity
// experiment's skewed trace, killing each device in turn at one third
// of the replay across RF 1, 2, and 3.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		RPS:          150,
		Duration:     30 * des.Second,
		Devices:      3,
		Factors:      []int{1, 2, 3},
		KillAt:       10 * des.Second,
		PoolHeadroom: 4.5,
		// 64 MiB per tick: killing the ingest device at RF 2 orphans one
		// copy of the whole footprint (~420k pages), so the sweep needs
		// this much reserved repair bandwidth to converge inside the
		// remaining trace window.
		RepairBandwidthPages: 16384,
		KeepAlive:            3 * des.Second,
		Weights: map[string]float64{
			"Cnn": 20, "Json": 2, "Float": 2, "Rnn": 2, "Chameleon": 1,
			"Bert": 0,
		},
		Seed: 7,
	}
}

// ChaosRun is one (replication factor, killed device) replay. Killed is
// -1 for the no-kill baseline.
type ChaosRun struct {
	Factor  int
	Killed  int
	Results porter.Results
	ColdP99 des.Time
	// Fingerprint is the replay's determinism hash.
	Fingerprint uint64
}

// ChaosResult holds the sweep plus the measured footprint.
type ChaosResult struct {
	Cfg            ChaosConfig
	FootprintBytes int64
	PoolBytes      int64
	Runs           []ChaosRun
}

// Chaos measures the suite footprint, then replays the trace for every
// replication factor: once untouched and once per killed device.
func Chaos(p params.Params, cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Devices < 2 {
		return nil, fmt.Errorf("chaos: need at least 2 devices, got %d", cfg.Devices)
	}
	specs := faas.Suite()
	if len(cfg.Functions) > 0 {
		specs = specs[:0]
		for _, name := range cfg.Functions {
			s, ok := faas.ByName(name)
			if !ok {
				return nil, fmt.Errorf("chaos: unknown function %q", name)
			}
			specs = append(specs, s)
		}
	}
	ms, err := MeasureAll(p, specs, []Scenario{ScenCold, ScenCXLfork})
	if err != nil {
		return nil, err
	}
	profiles := BuildProfiles(ms)

	footprint, err := capacityFootprint(p, specs, profiles, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{Cfg: cfg, FootprintBytes: footprint}

	// Every (factor, kill) replay builds its own cluster, pool, and
	// trace, so the sweep fans out to params.SimWorkers goroutines with
	// results in sweep order (factor-major, kill-minor).
	type cell struct {
		rf, kill int
	}
	var grid []cell
	for _, rf := range cfg.Factors {
		for kill := -1; kill < cfg.Devices; kill++ {
			grid = append(grid, cell{rf, kill})
		}
	}
	runs := make([]ChaosRun, len(grid))
	pools := make([]int64, len(grid))
	errs := make([]error, len(grid))
	des.NewPool(p.SimWorkers).Each(len(grid), func(i int) {
		runs[i], pools[i], errs[i] = chaosRun(p, cfg, grid[i].rf, grid[i].kill, footprint, specs, profiles)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos rf=%d kill=%d: %w", grid[i].rf, grid[i].kill, err)
		}
	}
	res.Runs = runs
	res.PoolBytes = pools[len(pools)-1]
	return res, nil
}

// chaosRun is one replay: pool of cfg.Devices devices, replication
// factor rf, and — unless kill is -1 — a DeviceLoss fault at KillAt.
func chaosRun(p params.Params, cfg ChaosConfig, rf, kill int, footprint int64, specs []faas.Spec, profiles map[porter.ProfileKey]porter.Profile) (ChaosRun, int64, error) {
	if cfg.KeepAlive > 0 {
		p.KeepAlive = cfg.KeepAlive
	}
	p.CXLDevices = cfg.Devices
	p.ReplicationFactor = rf
	if cfg.RepairBandwidthPages > 0 {
		p.RepairBandwidthPages = cfg.RepairBandwidthPages
	}
	ps := int64(p.PageSize)
	p.CXLBytes = (int64(float64(footprint)*cfg.PoolHeadroom) + ps - 1) / ps * ps

	c := cluster.MustNew(p, 2)
	if kill >= 0 {
		c.Faults.Inject(faultinject.Rule{Kind: faultinject.DeviceLoss, Device: kill, At: cfg.KillAt})
	}
	po := porter.New(c, capacityPorterConfig(c, profiles, cfg.Seed))
	if err := po.Setup(specs); err != nil {
		return ChaosRun{}, 0, err
	}

	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	loads := azure.DefaultLoads(names)
	for i := range loads {
		if w, ok := cfg.Weights[loads[i].Function]; ok {
			loads[i].Weight = w
		}
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: cfg.RPS,
		Duration: cfg.Duration,
		Loads:    loads,
		Seed:     cfg.Seed,
	})
	results := po.Run(trace)

	run := ChaosRun{
		Factor:      rf,
		Killed:      kill,
		Results:     results,
		Fingerprint: results.Fingerprint(),
	}
	if cl := results.ColdLatency; cl != nil && cl.Count() > 0 {
		run.ColdP99 = cl.P99()
	}
	return run, p.CXLBytes, nil
}

// run returns the replay for (rf, kill), or nil.
func (r *ChaosResult) run(rf, kill int) *ChaosRun {
	for i := range r.Runs {
		if r.Runs[i].Factor == rf && r.Runs[i].Killed == kill {
			return &r.Runs[i]
		}
	}
	return nil
}

// FailedRestoresAt sums failed restores across every kill run at rf.
func (r *ChaosResult) FailedRestoresAt(rf int) int {
	n := 0
	for i := range r.Runs {
		if r.Runs[i].Factor == rf && r.Runs[i].Killed >= 0 {
			n += r.Runs[i].Results.FailedRestores
		}
	}
	return n
}

// LostImagesAt sums lost images across every kill run at rf.
func (r *ChaosResult) LostImagesAt(rf int) int64 {
	var n int64
	for i := range r.Runs {
		if r.Runs[i].Factor == rf && r.Runs[i].Killed >= 0 {
			n += r.Runs[i].Results.LostImages
		}
	}
	return n
}

// Render prints one table per replication factor — the no-kill baseline
// followed by each killed device — then the headline durability
// comparison.
func (r *ChaosResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Chaos sweep — %d-device pool, %d MiB total (%.1fx of %d MiB footprint), kill at %s, Fig. 10 trace %.0f rps × %s\n",
		r.Cfg.Devices, r.PoolBytes>>20, r.Cfg.PoolHeadroom, r.FootprintBytes>>20,
		compact(r.Cfg.KillAt), r.Cfg.RPS, compact(r.Cfg.Duration))
	for _, rf := range r.Cfg.Factors {
		fmt.Fprintf(w, "\nReplication factor %d\n", rf)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Kill\tFailedRestores\tLostImages\tFailovers\tExhausted\tRepaired\tConverged\tCold P99\tOverall P99")
		for kill := -1; kill < r.Cfg.Devices; kill++ {
			run := r.run(rf, kill)
			if run == nil {
				continue
			}
			res := run.Results
			name := "none"
			if kill >= 0 {
				name = fmt.Sprintf("dev%d", kill)
			}
			conv := "-"
			if res.RepairConvergedOK {
				conv = compact(res.RepairConverged)
			}
			cold := "-"
			if run.ColdP99 > 0 {
				cold = compact(run.ColdP99)
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d pg\t%s\t%s\t%s\n",
				name, res.FailedRestores, res.LostImages, res.Failovers,
				res.RetryExhausted, res.RepairedPages, conv, cold,
				compact(res.Overall.P99()))
		}
		tw.Flush()
	}

	fmt.Fprintln(w)
	for _, rf := range r.Cfg.Factors {
		failed, lost := r.FailedRestoresAt(rf), r.LostImagesAt(rf)
		verdict := "survives the loss of any single device"
		if lost > 0 || failed > 0 {
			verdict = "loses checkpoints with their device"
		}
		fmt.Fprintf(w, "RF %d: %d failed restores, %d lost images across single-device kills — %s\n",
			rf, failed, lost, verdict)
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		kill := "none"
		if run.Killed >= 0 {
			kill = fmt.Sprintf("dev%d", run.Killed)
		}
		renderObservability(w, fmt.Sprintf("rf%d/%s: ", run.Factor, kill), run.Results)
	}
}
