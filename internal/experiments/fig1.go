package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"cxlfork/internal/faas"
	"cxlfork/internal/params"
)

// Fig1Result is the footprint breakdown of Fig. 1, measured with the
// paper's methodology (invoke with varying inputs, classify pages by
// observed access pattern).
type Fig1Result struct {
	Breakdowns  []faas.Breakdown
	Invocations int
}

// Fig1 classifies every function's footprint. The paper uses 128
// invocations; invocations<=0 selects that default.
func Fig1(p params.Params, invocations int) (*Fig1Result, error) {
	if invocations <= 0 {
		invocations = 128
	}
	res := &Fig1Result{Invocations: invocations}
	for _, spec := range faas.Suite() {
		c, err := NewEnv(p, spec)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(1))
		b, err := faas.ClassifyFootprint(c.Node(0), spec, invocations, rng)
		if err != nil {
			return nil, err
		}
		res.Breakdowns = append(res.Breakdowns, b)
	}
	return res, nil
}

// Render prints the per-function class fractions and their averages.
func (r *Fig1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 — footprint breakdown over %d invocations (paper avg: Init 72.2%%, Read-only 23%%, Read/Write 4.8%%)\n", r.Invocations)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Function\tInit\tRead-only\tRead/Write\tFootprint(MB)")
	var init, ro, rw float64
	for _, b := range r.Breakdowns {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%d\n",
			b.Name, 100*b.InitFrac, 100*b.ROFrac, 100*b.RWFrac,
			int64(b.TotalPages)*4096>>20)
		init += b.InitFrac
		ro += b.ROFrac
		rw += b.RWFrac
	}
	n := float64(len(r.Breakdowns))
	fmt.Fprintf(tw, "Average\t%.1f%%\t%.1f%%\t%.1f%%\t\n", 100*init/n, 100*ro/n, 100*rw/n)
	tw.Flush()
}
