package tlbsim

import "testing"

func TestAccessAndMiss(t *testing.T) {
	tlb := New(4)
	if tlb.Access(1) {
		t.Fatal("cold hit")
	}
	if !tlb.Access(1) {
		t.Fatal("warm miss")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits(), tlb.Misses())
	}
}

func TestCapacityEviction(t *testing.T) {
	tlb := New(2)
	tlb.Access(1)
	tlb.Access(2)
	tlb.Access(3) // evicts 1
	if tlb.Access(1) {
		t.Fatal("evicted translation hit")
	}
	if tlb.Len() != 2 {
		t.Fatalf("len = %d", tlb.Len())
	}
}

func TestShootdownCounting(t *testing.T) {
	tlb := New(4)
	tlb.Access(1)
	tlb.Invalidate(1)
	tlb.Invalidate(1) // absent: not a shootdown
	tlb.Invalidate(9) // absent
	if tlb.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", tlb.Shootdowns)
	}
	if tlb.Access(1) {
		t.Fatal("invalidated translation hit")
	}
}

func TestFlushKeepsCounters(t *testing.T) {
	tlb := New(4)
	tlb.Access(1)
	tlb.Access(1)
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatal("flush cleared counters")
	}
}

func TestResetClearsAll(t *testing.T) {
	tlb := New(4)
	tlb.Access(1)
	tlb.Invalidate(1)
	tlb.Reset()
	if tlb.Len() != 0 || tlb.Hits() != 0 || tlb.Misses() != 0 || tlb.Shootdowns != 0 {
		t.Fatal("reset incomplete")
	}
}
