// Package tlbsim models the per-node TLB and TLB-coherence costs.
//
// The TLB matters to this reproduction in two ways. First, CoW faults
// that downgrade a previously-valid mapping pay a TLB shootdown (~500 ns
// of the 2.5 µs CXL-CoW fault, paper §4.2.1) — that constant lives in
// params and is charged by the kernel's fault paths; this package counts
// the events. Second, page-table walks on TLB misses dereference
// page-table memory; the kernel charges a (cache-resident) walk cost per
// miss.
//
// The entry point is New, one TLB per node.
package tlbsim
