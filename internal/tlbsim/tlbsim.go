package tlbsim

import "cxlfork/internal/cachesim"

// TLB is an exact-LRU translation cache keyed by (space, virtual page)
// — TLBs are virtually indexed, unlike the physically-indexed LLC.
type TLB struct {
	lru *cachesim.PageLRU

	// Shootdowns counts invalidations driven by PTE downgrades.
	Shootdowns int64
}

// New returns a TLB with the given entry capacity.
func New(entries int) *TLB {
	return &TLB{lru: cachesim.NewPageLRU(entries)}
}

// Capacity returns the entry capacity.
func (t *TLB) Capacity() int { return t.lru.Capacity() }

// Len returns the number of live entries.
func (t *TLB) Len() int { return t.lru.Len() }

// Hits returns the hit count.
func (t *TLB) Hits() int64 { return t.lru.Hits }

// Misses returns the miss count.
func (t *TLB) Misses() int64 { return t.lru.Misses }

// Access looks up the translation for key, returning true on hit. On a
// miss the translation is installed (the caller charges the walk).
func (t *TLB) Access(key uint64) bool { return t.lru.Access(key) }

// Invalidate removes one translation, counting a shootdown if present.
func (t *TLB) Invalidate(key uint64) {
	if t.lru.Contains(key) {
		t.lru.Invalidate(key)
		t.Shootdowns++
	}
}

// Flush drops all entries (address-space teardown).
func (t *TLB) Flush() {
	hits, misses := t.lru.Hits, t.lru.Misses
	t.lru.Reset()
	t.lru.Hits, t.lru.Misses = hits, misses
}

// Reset flushes and clears counters.
func (t *TLB) Reset() {
	t.lru.Reset()
	t.Shootdowns = 0
}
