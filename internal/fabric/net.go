package fabric

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/telemetry"
)

// Net layers per-link in-flight contention over a Topology. Each link
// admits Streams concurrent full-rate transfers; a transfer that finds
// every slot busy queues behind the earliest-free one. The model is
// analytic — link state mutates inline while porter events execute, no
// extra DES events are scheduled — so event ordering, and therefore
// the byte-identical worker-count fingerprints, are untouched.
//
// A transfer of P pages along a path is cut-through: on each link it
// claims the earliest-free stream slot (lowest index on ties), holds
// it for P × perPage, and the head advances after the link latency.
// Completion is head arrival at the device plus the bottleneck link's
// service time. Because this package is additive over the flat model
// the rest of the simulator already charges, Restore reports only the
// differential versus the flat single-hop baseline (two default edge
// latencies plus P default page services), clamped at zero.
type Net struct {
	topo  *Topology
	slots [][]des.Time // per link: busy-until per stream slot

	transfers  int64
	queued     int64
	queueDelay des.Time
	charged    des.Time

	// obs, when set, observes every per-link stream-slot claim with
	// its queue delay and service time. Purely informational: the
	// callback runs after the link state is already updated and must
	// not (and cannot, given the signature) change any computed
	// duration — the attribution layer's read-only tap.
	obs func(link int, wait, service des.Time)
}

// SetObserver installs a per-link claim observer: fn is called once
// per link per transfer with the slot queue delay and page service
// time just charged. Passing nil removes the observer. Observation is
// read-only — transfer pricing is identical with or without one.
func (n *Net) SetObserver(fn func(link int, wait, service des.Time)) { n.obs = fn }

// NewNet wraps a built topology with fresh (idle) link state.
func NewNet(t *Topology) *Net {
	n := &Net{topo: t, slots: make([][]des.Time, len(t.links))}
	for i, l := range t.links {
		n.slots[i] = make([]des.Time, l.streams)
	}
	return n
}

// Topology returns the graph the net runs over.
func (n *Net) Topology() *Topology { return n.topo }

// Transfer moves pages from device d to host h starting at virtual
// time at, mutating link occupancy, and returns the total transfer
// duration. Paths are symmetric, so the same call prices a checkpoint
// push host→device.
func (n *Net) Transfer(h, d, pages int, at des.Time) des.Time {
	if pages <= 0 {
		pages = 1
	}
	r := n.topo.paths[h][d]
	head := at
	var bottleneck des.Time
	for _, li := range r.links {
		l := n.topo.links[li]
		slots := n.slots[li]
		s := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[s] {
				s = i
			}
		}
		start := head
		var wait des.Time
		if slots[s] > start {
			n.queued++
			wait = slots[s] - start
			n.queueDelay += wait
			start = slots[s]
		}
		service := des.Time(pages) * l.perPage
		slots[s] = start + service
		head = start + l.lat
		if l.perPage > bottleneck {
			bottleneck = l.perPage
		}
		if n.obs != nil {
			n.obs(li, wait, service)
		}
	}
	n.transfers++
	return head + des.Time(pages)*bottleneck - at
}

// Restore prices a restore of pages from device d to host h at
// virtual time at and returns the extra delay the fabric adds over
// the flat single-hop model already charged elsewhere: the full
// path-and-contention transfer time minus the flat baseline (one
// default host-switch-device trip at the default per-page service).
// On a Trivial topology with idle links this is exactly zero.
func (n *Net) Restore(h, d, pages int, at des.Time) des.Time {
	if pages <= 0 {
		pages = 1
	}
	total := n.Transfer(h, d, pages, at)
	base := 2*n.topo.defEdgeLat + des.Time(pages)*n.topo.defPerPage
	if total <= base {
		return 0
	}
	extra := total - base
	n.charged += extra
	return extra
}

// Transfers reports how many transfers the net has priced.
func (n *Net) Transfers() int64 { return n.transfers }

// Queued reports how many per-link slot claims had to wait.
func (n *Net) Queued() int64 { return n.queued }

// QueueDelay reports the cumulative virtual time transfers spent
// waiting for a stream slot.
func (n *Net) QueueDelay() des.Time { return n.queueDelay }

// Charged reports the cumulative extra restore delay billed beyond
// the flat baseline.
func (n *Net) Charged() des.Time { return n.charged }

// RegisterTelemetry exposes the net's counters on reg. Safe on a nil
// registry (no-op, matching the rest of the stack).
func (n *Net) RegisterTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.CounterFunc("cxlfork_fabric_transfers_total",
		"Transfers priced by the fabric contention model.",
		func(des.Time) float64 { return float64(n.transfers) })
	reg.CounterFunc("cxlfork_fabric_queued_total",
		"Transfers that waited for a link stream slot.",
		func(des.Time) float64 { return float64(n.queued) })
	reg.CounterFunc("cxlfork_fabric_queue_delay_seconds_total",
		"Cumulative virtual time spent waiting for link slots.",
		func(des.Time) float64 { return float64(n.queueDelay) / float64(des.Second) })
	reg.CounterFunc("cxlfork_fabric_extra_delay_seconds_total",
		"Cumulative extra restore delay charged beyond the flat model.",
		func(des.Time) float64 { return float64(n.charged) / float64(des.Second) })
}

// NewDES builds a sharded-engine fabric for n nodes whose epoch
// lookahead is the topology's true minimum link latency — the fix for
// the latent bug where the window came from the global
// params.FabricHop() even on fabrics whose fastest link undercuts it
// (an under-declared lookahead makes Send panic, per shard.go).
func NewDES(t *Topology, nodes, workers int) des.Fabric {
	return des.NewFabric(nodes, workers, t.MinLinkLatency())
}

// String summarizes the net's counters for experiment footers.
func (n *Net) String() string {
	return fmt.Sprintf("transfers=%d queued=%d queue-delay=%s extra=%s",
		n.transfers, n.queued, n.queueDelay, n.charged)
}
