package fabric

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"cxlfork/internal/des"
	"cxlfork/internal/params"
)

// Typed spec errors. Parse and Build wrap these with line context; test
// with errors.Is. The fuzz contract: malformed input must surface one
// of these, never a panic.
var (
	// ErrBadSpec marks a line that does not scan: unknown directive,
	// wrong field count, or an unparseable attribute.
	ErrBadSpec = errors.New("fabric: malformed spec line")
	// ErrDuplicateNode marks a node id declared twice (across all
	// kinds: host, switch, and device ids share one namespace).
	ErrDuplicateNode = errors.New("fabric: duplicate node id")
	// ErrUnknownNode marks a link endpoint that was never declared.
	ErrUnknownNode = errors.New("fabric: link endpoint not declared")
	// ErrBadLink marks an illegal link: zero bandwidth, non-positive
	// latency, zero streams, a self-loop, a duplicate pair, or a link
	// that bypasses the switching layer (host-host, host-device,
	// device-device).
	ErrBadLink = errors.New("fabric: invalid link")
	// ErrDisconnected marks a host or device with no path to the other
	// side of the fabric: a device no host can reach is unusable, and
	// placement must be able to rely on every path existing.
	ErrDisconnected = errors.New("fabric: node unreachable")
	// ErrEmptySpec marks a spec missing one of the three layers; a
	// usable fabric needs at least one host, one switch, one device.
	ErrEmptySpec = errors.New("fabric: spec needs at least one host, one switch, and one device")
)

// SpecLink is one declared link. Zero-valued attributes mean "default":
// latency and per-page service resolve against the parameter set at
// Build time, streams against params.FabricStreams.
type SpecLink struct {
	A, B string
	// Lat is the link's one-way propagation latency (0 = default).
	Lat des.Time
	// GBps is the link bandwidth in GB/s (0 = default per-page cost).
	GBps float64
	// Streams is how many concurrent full-rate transfers the link
	// admits before queueing (0 = params.FabricStreams).
	Streams int
	// explicit marks a link that declared at least one attribute; a
	// topology with any explicit link is never Trivial.
	explicit bool
}

// Spec is a parsed, structurally validated topology declaration.
// Hosts, Switches, and Devices preserve declaration order — device
// order is the pool-device index order.
type Spec struct {
	Hosts    []string
	Switches []string
	Devices  []string
	Links    []SpecLink
}

// node kinds, used internally for link-shape validation.
const (
	kindHost = iota
	kindSwitch
	kindDevice
)

// Parse reads the line-oriented topology DSL:
//
//	# comment
//	host h0
//	switch sw0
//	switch sw1
//	device d0
//	link h0 sw0
//	link sw0 sw1 lat=800ns bw=32 streams=4
//	link sw1 d0
//
// Attributes: lat=<duration> (one-way link latency), bw=<GB/s>
// (link bandwidth), streams=<n> (concurrent full-rate transfers).
// Omitted attributes resolve to parameter-derived defaults at Build.
// Every structural error is typed (see the Err variables) and carries
// the offending line; Parse never panics on any input.
func Parse(text string) (*Spec, error) {
	s := &Spec{}
	kinds := make(map[string]int)
	declare := func(id string, kind int) error {
		if id == "" || strings.ContainsAny(id, "=#") {
			return fmt.Errorf("%w: bad node id %q", ErrBadSpec, id)
		}
		if _, dup := kinds[id]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
		}
		kinds[id] = kind
		return nil
	}
	seenPair := make(map[[2]string]bool)

	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		ctx := func(err error) error { return fmt.Errorf("line %d: %w", ln+1, err) }
		switch f[0] {
		case "host", "switch", "device":
			if len(f) != 2 {
				return nil, ctx(fmt.Errorf("%w: %q wants exactly one id", ErrBadSpec, f[0]))
			}
			kind := map[string]int{"host": kindHost, "switch": kindSwitch, "device": kindDevice}[f[0]]
			if err := declare(f[1], kind); err != nil {
				return nil, ctx(err)
			}
			switch kind {
			case kindHost:
				s.Hosts = append(s.Hosts, f[1])
			case kindSwitch:
				s.Switches = append(s.Switches, f[1])
			case kindDevice:
				s.Devices = append(s.Devices, f[1])
			}
		case "link":
			if len(f) < 3 {
				return nil, ctx(fmt.Errorf("%w: link wants two endpoints", ErrBadSpec))
			}
			l := SpecLink{A: f[1], B: f[2]}
			for _, attr := range f[3:] {
				k, v, ok := strings.Cut(attr, "=")
				if !ok {
					return nil, ctx(fmt.Errorf("%w: attribute %q", ErrBadSpec, attr))
				}
				switch k {
				case "lat":
					d, err := time.ParseDuration(v)
					if err != nil {
						return nil, ctx(fmt.Errorf("%w: lat=%q: %v", ErrBadSpec, v, err))
					}
					if d <= 0 {
						return nil, ctx(fmt.Errorf("%w: non-positive latency %q", ErrBadLink, v))
					}
					l.Lat = des.Time(d)
				case "bw":
					g, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, ctx(fmt.Errorf("%w: bw=%q: %v", ErrBadSpec, v, err))
					}
					if g <= 0 {
						return nil, ctx(fmt.Errorf("%w: zero-bandwidth link (bw=%q)", ErrBadLink, v))
					}
					l.GBps = g
				case "streams":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, ctx(fmt.Errorf("%w: streams=%q: %v", ErrBadSpec, v, err))
					}
					if n <= 0 {
						return nil, ctx(fmt.Errorf("%w: non-positive streams %q", ErrBadLink, v))
					}
					l.Streams = n
				default:
					return nil, ctx(fmt.Errorf("%w: unknown attribute %q", ErrBadSpec, k))
				}
				l.explicit = true
			}
			if l.A == l.B {
				return nil, ctx(fmt.Errorf("%w: self-loop on %q", ErrBadLink, l.A))
			}
			pair := [2]string{l.A, l.B}
			if l.B < l.A {
				pair = [2]string{l.B, l.A}
			}
			if seenPair[pair] {
				return nil, ctx(fmt.Errorf("%w: duplicate link %s-%s", ErrBadLink, l.A, l.B))
			}
			seenPair[pair] = true
			s.Links = append(s.Links, l)
		default:
			return nil, ctx(fmt.Errorf("%w: unknown directive %q", ErrBadSpec, f[0]))
		}
	}

	if len(s.Hosts) == 0 || len(s.Switches) == 0 || len(s.Devices) == 0 {
		return nil, ErrEmptySpec
	}
	for _, l := range s.Links {
		ka, oka := kinds[l.A]
		kb, okb := kinds[l.B]
		if !oka {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, l.A)
		}
		if !okb {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, l.B)
		}
		// Every link must touch the switching layer: hosts and devices
		// only attach to switches.
		if ka != kindSwitch && kb != kindSwitch {
			return nil, fmt.Errorf("%w: %s-%s bypasses the switching layer", ErrBadLink, l.A, l.B)
		}
	}
	if err := s.checkConnected(kinds); err != nil {
		return nil, err
	}
	return s, nil
}

// checkConnected verifies every host and device reaches every device
// and host respectively (the fabric is one component over the declared
// links). A disconnected device would make placement on it a black
// hole, so it is a structural error, not a runtime surprise.
func (s *Spec) checkConnected(kinds map[string]int) error {
	adj := make(map[string][]string, len(kinds))
	for _, l := range s.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	// BFS from the first host; every declared node must be reached.
	seen := map[string]bool{s.Hosts[0]: true}
	queue := []string{s.Hosts[0]}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	for id := range kinds {
		if !seen[id] {
			return fmt.Errorf("%w: %q", ErrDisconnected, id)
		}
	}
	return nil
}

// link is a resolved topology edge.
type link struct {
	a, b    int // node indices
	lat     des.Time
	perPage des.Time
	streams int
}

// Topology is a built fabric graph: resolved links plus precomputed
// deterministic shortest paths from every host to every device.
// Shortest means lowest latency sum, ties broken by hop count and then
// by the lexicographic node-name path, so two isomorphic topologies
// that differ only in declaration order produce identical routes.
type Topology struct {
	spec     *Spec
	names    []string // node index -> id (hosts, then switches, then devices)
	kinds    []int
	index    map[string]int
	links    []link
	adj      [][]int // node -> incident link indices
	explicit bool

	// paths[h][d] is the host h -> device d route.
	paths  [][]route
	minLat des.Time

	// defEdgeLat / defPerPage are the parameter-derived link defaults,
	// kept so Net can price the flat single-hop baseline.
	defEdgeLat des.Time
	defPerPage des.Time
}

// route is one precomputed host->device path.
type route struct {
	links []int // link indices in traversal order
	lat   des.Time
	hops  int
}

// Build resolves the spec against a parameter set. Defaulted link
// attributes become: latency p.CXLLatency/2 (so the canonical
// host-switch-device path costs one CXL round trip), per-page service
// p.CXLReadPage (the measured CXL-to-DRAM page copy), and stream
// capacity p.FabricStreams. Explicit bandwidth converts to a per-page
// service time via the page size.
func (s *Spec) Build(p params.Params) (*Topology, error) {
	t := &Topology{
		spec:       s,
		index:      make(map[string]int),
		minLat:     0,
		defEdgeLat: p.CXLLatency / 2,
		defPerPage: p.CXLReadPage,
	}
	if t.defEdgeLat <= 0 {
		t.defEdgeLat = des.Nanosecond
	}
	if t.defPerPage <= 0 {
		t.defPerPage = des.Nanosecond
	}
	add := func(ids []string, kind int) {
		for _, id := range ids {
			t.index[id] = len(t.names)
			t.names = append(t.names, id)
			t.kinds = append(t.kinds, kind)
		}
	}
	add(s.Hosts, kindHost)
	add(s.Switches, kindSwitch)
	add(s.Devices, kindDevice)

	t.adj = make([][]int, len(t.names))
	for _, sl := range s.Links {
		l := link{
			a:       t.index[sl.A],
			b:       t.index[sl.B],
			lat:     sl.Lat,
			perPage: t.defPerPage,
			streams: sl.Streams,
		}
		if l.lat == 0 {
			l.lat = t.defEdgeLat
		}
		if sl.GBps > 0 {
			perPage := des.Time(float64(p.PageSize) / (sl.GBps * 1e9) * 1e9)
			if perPage < des.Nanosecond {
				perPage = des.Nanosecond
			}
			l.perPage = perPage
		}
		if l.streams == 0 {
			l.streams = p.FabricStreams
		}
		if l.streams <= 0 {
			l.streams = 1
		}
		if sl.explicit {
			t.explicit = true
		}
		idx := len(t.links)
		t.links = append(t.links, l)
		t.adj[l.a] = append(t.adj[l.a], idx)
		t.adj[l.b] = append(t.adj[l.b], idx)
		if t.minLat == 0 || l.lat < t.minLat {
			t.minLat = l.lat
		}
	}

	t.paths = make([][]route, len(s.Hosts))
	for h := range s.Hosts {
		t.paths[h] = t.routesFrom(t.index[s.Hosts[h]])
	}
	for h := range t.paths {
		for d, r := range t.paths[h] {
			if r.hops == 0 {
				return nil, fmt.Errorf("%w: no path %s -> %s", ErrDisconnected, s.Hosts[h], s.Devices[d])
			}
		}
	}
	return t, nil
}

// MustBuild parses and builds spec text, panicking on error — for
// tests and generated specs that are correct by construction.
func MustBuild(text string, p params.Params) *Topology {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	t, err := s.Build(p)
	if err != nil {
		panic(err)
	}
	return t
}

// routesFrom runs a deterministic Dijkstra from node src and returns
// the route to every device. Priority is (latency, hops, lexicographic
// predecessor-name chain): with unique tie-breaking the chosen routes
// are independent of link declaration order and of switch renaming.
func (t *Topology) routesFrom(src int) []route {
	const inf = des.Time(1<<62 - 1)
	dist := make([]des.Time, len(t.names))
	hops := make([]int, len(t.names))
	via := make([]int, len(t.names)) // incoming link index, -1 at src
	done := make([]bool, len(t.names))
	for i := range dist {
		dist[i] = inf
		via[i] = -1
	}
	dist[src] = 0
	for {
		// Extract-min by (dist, hops, name); linear scan keeps the
		// selection order fully deterministic and the graphs are tiny.
		u := -1
		for v := range dist {
			if done[v] || dist[v] == inf {
				continue
			}
			if u == -1 || dist[v] < dist[u] ||
				(dist[v] == dist[u] && (hops[v] < hops[u] ||
					(hops[v] == hops[u] && t.names[v] < t.names[u]))) {
				u = v
			}
		}
		if u == -1 {
			break
		}
		done[u] = true
		for _, li := range t.adj[u] {
			l := t.links[li]
			v := l.a
			if v == u {
				v = l.b
			}
			nd, nh := dist[u]+l.lat, hops[u]+1
			if nd < dist[v] || (nd == dist[v] && nh < hops[v]) ||
				(nd == dist[v] && nh == hops[v] && via[v] >= 0 && t.linkName(li) < t.linkName(via[v])) {
				dist[v], hops[v], via[v] = nd, nh, li
			}
		}
	}

	out := make([]route, len(t.spec.Devices))
	for d := range t.spec.Devices {
		n := t.index[t.spec.Devices[d]]
		if dist[n] == inf {
			continue
		}
		var chain []int
		for at := n; at != src; {
			li := via[at]
			chain = append(chain, li)
			l := t.links[li]
			if l.a == at {
				at = l.b
			} else {
				at = l.a
			}
		}
		// chain is device->host; reverse to traversal order.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		out[d] = route{links: chain, lat: dist[n], hops: hops[n]}
	}
	return out
}

// linkName is the canonical sorted endpoint-pair name of link li, the
// declaration-order-independent tie-breaker.
func (t *Topology) linkName(li int) string {
	l := t.links[li]
	a, b := t.names[l.a], t.names[l.b]
	if b < a {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Hosts reports the host count.
func (t *Topology) Hosts() int { return len(t.spec.Hosts) }

// Switches reports the switch count.
func (t *Topology) Switches() int { return len(t.spec.Switches) }

// Devices reports the device count; device index order is spec
// declaration order and matches the cxl.DevicePool index.
func (t *Topology) Devices() int { return len(t.spec.Devices) }

// DeviceName returns device d's spec id.
func (t *Topology) DeviceName(d int) string { return t.spec.Devices[d] }

// Links reports the link count.
func (t *Topology) Links() int { return len(t.links) }

// PathLat returns the host h -> device d route latency (the sum of
// link latencies along the chosen shortest path).
func (t *Topology) PathLat(h, d int) des.Time { return t.paths[h][d].lat }

// PathHops returns the hop count of the h -> d route.
func (t *Topology) PathHops(h, d int) int { return t.paths[h][d].hops }

// MinLinkLatency is the fastest link in the fabric — the true minimum
// cross-node delivery latency, and therefore the largest epoch
// lookahead window the sharded engine may legally use. Deriving the
// window from the global params.FabricHop constant instead is wrong
// whenever some link undercuts it: a message sent at that link's real
// latency under-runs the declared lookahead and the engine panics (the
// shard.go contract). See TestFabricHopLookaheadUnderDeclared.
func (t *Topology) MinLinkLatency() des.Time { return t.minLat }

// DeviceSwitch returns the name of the switch device d attaches to
// (the lexicographically first adjacent switch when a device is
// multi-homed) — the spread domain locality placement diversifies
// replicas across.
func (t *Topology) DeviceSwitch(d int) string {
	n := t.index[t.spec.Devices[d]]
	best := ""
	for _, li := range t.adj[n] {
		l := t.links[li]
		o := l.a
		if o == n {
			o = l.b
		}
		if t.kinds[o] == kindSwitch && (best == "" || t.names[o] < best) {
			best = t.names[o]
		}
	}
	return best
}

// DeviceCost is device d's mean route latency over all hosts — the
// scalar locality placement reweights the consistent-hash preference
// order by.
func (t *Topology) DeviceCost(d int) des.Time {
	var sum des.Time
	for h := range t.paths {
		sum += t.paths[h][d].lat
	}
	return sum / des.Time(len(t.paths))
}

// NearestDevice returns the device with the lowest route latency from
// host h among the candidate indices (all devices when cands is nil),
// ties broken by device index. -1 when there are no candidates.
func (t *Topology) NearestDevice(h int, cands []int) int {
	best := -1
	for d := 0; d < t.Devices(); d++ {
		if cands != nil {
			found := false
			for _, c := range cands {
				if c == d {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		if best == -1 || t.paths[h][d].lat < t.paths[h][best].lat {
			best = d
		}
	}
	return best
}

// LinkLabel returns link li's human-readable label: both endpoint
// names sorted lexicographically and joined with "-" — the stable key
// attribution heatmaps render links under.
func (t *Topology) LinkLabel(li int) string {
	l := t.links[li]
	a, b := t.names[l.a], t.names[l.b]
	if b < a {
		a, b = b, a
	}
	return a + "-" + b
}

// LinkSwitch returns the switch that owns link li for heat
// aggregation: the lexicographically first switch endpoint. Every
// valid link touches the switching layer, so this never returns ""
// on a built topology.
func (t *Topology) LinkSwitch(li int) string {
	l := t.links[li]
	best := ""
	for _, n := range []int{l.a, l.b} {
		if t.kinds[n] == kindSwitch && (best == "" || t.names[n] < best) {
			best = t.names[n]
		}
	}
	return best
}

// PathLinks returns a copy of the host h -> device d route's link
// indices in traversal order — the per-link join attribution uses to
// map a restore onto the heatmap.
func (t *Topology) PathLinks(h, d int) []int {
	return append([]int(nil), t.paths[h][d].links...)
}

// LinkStreams returns link li's concurrent full-rate stream capacity.
func (t *Topology) LinkStreams(li int) int { return t.links[li].streams }

// Trivial reports whether the topology collapses to the flat
// single-hop model the rest of the simulator was calibrated on: one
// switch, one device, and every link at its parameter-derived default.
// A trivial topology adds no cost the flat model has not already
// charged, so the porter skips fabric accounting entirely and
// reproduces pre-topology results byte for byte (the degenerate-
// equivalence regression test pins this).
func (t *Topology) Trivial() bool {
	return len(t.spec.Switches) == 1 && len(t.spec.Devices) == 1 && !t.explicit
}

// Summary renders a one-line description for experiment headers.
func (t *Topology) Summary() string {
	return fmt.Sprintf("%d hosts × %d switches × %d devices, %d links, min link %s",
		t.Hosts(), t.Switches(), t.Devices(), len(t.links), t.minLat)
}

// SortDevicesByCost stable-sorts device indices by (DeviceCost, index)
// — a helper shared by locality placement and its tests.
func (t *Topology) SortDevicesByCost(devs []int) {
	sort.SliceStable(devs, func(i, j int) bool {
		ci, cj := t.DeviceCost(devs[i]), t.DeviceCost(devs[j])
		if ci != cj {
			return ci < cj
		}
		return devs[i] < devs[j]
	})
}
