// Package fabric models the CXL fabric as an explicit topology graph:
// hosts and pooled memory devices attached to a tree (or chain) of CXL
// switches, with per-link latency, bandwidth, and stream capacity. It
// replaces the flat single-hop fabric assumption (one shared device
// behind a global hop constant) that the original reproduction
// inherited from the paper's two-node testbed (DESIGN.md §14).
//
// A topology is declared by a small line-oriented spec (Parse), built
// against a parameter set (Spec.Build), and then queried for
// deterministic shortest paths (latency-weighted, hop- and
// name-tie-broken) between every host and device. Net layers a
// per-link in-flight contention model on top in virtual time: each
// link admits a fixed number of full-rate streams, and transfers that
// find every slot busy queue behind the earliest-free one, so restore
// storms against a single device collapse on that device's link while
// sharded pools spread.
//
// The minimum link latency doubles as the sharded DES engine's epoch
// lookahead window (NewDES): no cross-node message can be delivered
// faster than the fastest link, so shards may run that far ahead
// without observing each other. Deriving the window from the topology
// — not the global params.FabricHop constant — keeps lookahead honest
// on heterogeneous fabrics whose fastest link undercuts the flat
// constant.
package fabric
