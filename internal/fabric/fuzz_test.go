package fabric

import (
	"errors"
	"strings"
	"testing"

	"cxlfork/internal/params"
)

// FuzzParseSpec drives arbitrary text through the topology DSL. The
// contract under fuzzing: Parse (and Build on anything Parse accepts)
// never panics, and every rejection is one of the package's typed
// errors — malformed input must stay diagnosable, not collapse into
// ad-hoc strings.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		twoSwitch,
		GridSpec(4, 2, 6),
		GridSpec(1, 1, 1),
		// Duplicate node ids, within and across kinds.
		"host h0\nhost h0\nswitch s0\ndevice d0\nlink h0 s0\nlink d0 s0\n",
		"host n\nswitch n\ndevice d0\nlink n n\n",
		// Disconnected device and host.
		"host h0\nswitch s0\ndevice d0\ndevice dx\nlink h0 s0\nlink d0 s0\n",
		"host h0\nhost hx\nswitch s0\ndevice d0\nlink h0 s0\nlink d0 s0\n",
		// Zero-bandwidth, zero-stream, negative-latency links.
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 bw=0\nlink d0 s0\n",
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 streams=0\nlink d0 s0\n",
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 lat=-1ns\nlink d0 s0\n",
		// Links that skip the switching layer, self-loops, duplicates.
		"host h0\nswitch s0\ndevice d0\nlink h0 d0\n",
		"host h0\nswitch s0\ndevice d0\nlink s0 s0\n",
		"host h0\nswitch s0\ndevice d0\nlink h0 s0\nlink s0 h0\nlink d0 s0\n",
		// Unknown endpoints, kinds, attributes; arity abuse.
		"link a b\n",
		"widget w0\n",
		"host\n",
		"host h0 extra\n",
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 lat=???\nlink d0 s0\n",
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 mtu=9000\nlink d0 s0\n",
		// Pathological text shapes.
		"host h0\r\nswitch s0\r\ndevice d0\r\nlink h0 s0\r\nlink d0 s0\r\n",
		strings.Repeat("host h0\n", 3),
		"\x00\x01\x02",
		"host \xff\nswitch s0\ndevice d0\nlink \xff s0\nlink d0 s0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := params.Default()
	typed := []error{ErrBadSpec, ErrDuplicateNode, ErrUnknownNode, ErrBadLink, ErrDisconnected, ErrEmptySpec}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := Parse(text)
		if err != nil {
			if spec != nil {
				t.Fatal("Parse returned both a spec and an error")
			}
			for _, want := range typed {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("untyped parse error: %v", err)
		}
		// Anything Parse accepts must build and answer routing queries
		// without panicking: Parse owns all structural validation.
		topo, err := spec.Build(p)
		if err != nil {
			t.Fatalf("parsed spec failed to build: %v", err)
		}
		if topo.MinLinkLatency() <= 0 {
			t.Fatal("built topology has non-positive min link latency")
		}
		for h := 0; h < topo.Hosts(); h++ {
			for d := 0; d < topo.Devices(); d++ {
				if topo.PathLat(h, d) <= 0 || topo.PathHops(h, d) < 2 {
					t.Fatalf("degenerate path h%d→d%d", h, d)
				}
			}
		}
	})
}
