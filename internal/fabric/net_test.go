package fabric

import (
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/params"
)

func idleNet(t *testing.T, spec string) *Net {
	t.Helper()
	return NewNet(build(t, spec))
}

func TestTransferIdlePath(t *testing.T) {
	p := params.Default()
	edge := p.CXLLatency / 2
	perPage := p.CXLReadPage
	n := idleNet(t, twoSwitch)

	// Switch-local, idle: head crosses two default edges, then the
	// bottleneck (default per-page) drains the payload.
	pages := 10
	want := 2*edge + des.Time(pages)*perPage
	if got := n.Transfer(0, 0, pages, 0); got != want {
		t.Fatalf("idle local transfer %v, want %v", got, want)
	}
	if n.Transfers() != 1 || n.Queued() != 0 {
		t.Fatalf("counters transfers=%d queued=%d", n.Transfers(), n.Queued())
	}

	// Cross-switch: the 8 GB/s trunk's per-page service (4096/8 ≈
	// 512ns) stays under the default edge service, so the bottleneck is
	// still the edge; only the trunk's 800ns latency is added.
	want = 2*edge + 800 + des.Time(pages)*perPage
	if got := n.Transfer(0, 1, pages, des.Time(des.Second)); got != want {
		t.Fatalf("idle cross-switch transfer %v, want %v", got, want)
	}
}

func TestTransferQueuesWhenStreamsBusy(t *testing.T) {
	// The trunk admits streams=2: a third concurrent cross-switch
	// transfer must wait for the earliest slot to free.
	n := idleNet(t, twoSwitch)
	pages := 100
	first := n.Transfer(0, 1, pages, 0)
	if n.Queued() != 0 {
		t.Fatalf("first transfer queued")
	}
	n.Transfer(0, 1, pages, 0)
	// Host edge h0-sw0 has 6 default slots, trunk has 2: the third
	// transfer queues on the trunk.
	third := n.Transfer(0, 1, pages, 0)
	if n.Queued() == 0 {
		t.Fatal("third concurrent transfer did not queue")
	}
	if third <= first {
		t.Fatalf("queued transfer %v not slower than idle %v", third, first)
	}
	if n.QueueDelay() <= 0 {
		t.Fatal("no queue delay recorded")
	}
}

func TestRestoreDifferentialZeroOnIdleDefaults(t *testing.T) {
	// Attr-less single-switch grid: the transfer is exactly the flat
	// baseline, so the billed extra must be zero.
	n := idleNet(t, GridSpec(2, 1, 1))
	if extra := n.Restore(0, 0, 50, 0); extra != 0 {
		t.Fatalf("trivial idle restore charged %v", extra)
	}
	if n.Charged() != 0 {
		t.Fatalf("charged %v", n.Charged())
	}
}

func TestRestoreDifferentialPositiveCrossSwitch(t *testing.T) {
	n := idleNet(t, twoSwitch)
	extra := n.Restore(0, 1, 50, 0)
	if extra != 800 {
		t.Fatalf("cross-switch idle restore extra %v, want trunk latency 800ns", extra)
	}
	if n.Charged() != extra {
		t.Fatalf("charged %v, want %v", n.Charged(), extra)
	}
}

func TestNetDeterminism(t *testing.T) {
	// Same call sequence, fresh nets: byte-identical outputs.
	seq := func() []des.Time {
		n := idleNet(t, GridSpec(4, 2, 6))
		var out []des.Time
		for i := 0; i < 200; i++ {
			h, d := i%4, (i*7)%6
			out = append(out, n.Transfer(h, d, 50+i%90, des.Time(i)*des.Microsecond))
		}
		out = append(out, des.Time(n.Queued()), n.QueueDelay())
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestNewDESLookaheadFromTopology is the latent-bug regression: the
// sharded engine's epoch lookahead must come from the topology's true
// minimum link latency, not the global params.FabricHop constant. On a
// fabric whose fastest link undercuts FabricHop, a lookahead window
// derived from the constant admits cross-shard sends faster than the
// window — exactly the contract shard.go enforces by panicking.
func TestNewDESLookaheadFromTopology(t *testing.T) {
	p := params.Default()
	// Fastest link: 80ns host edge, far below FabricHop.
	spec := `
host h0
host h1
switch s0
device d0
link h0 s0 lat=80ns
link h1 s0
link d0 s0
`
	topo := build(t, spec)
	if topo.MinLinkLatency() != 80 {
		t.Fatalf("min link latency %v, want 80ns", topo.MinLinkLatency())
	}
	if topo.MinLinkLatency() >= p.FabricHop() {
		t.Fatal("fixture must undercut params.FabricHop for the regression to bite")
	}

	send := func(f des.Fabric) (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		// A message at the fabric's true minimum latency.
		f.Send(0, 1, topo.MinLinkLatency(), func() {})
		f.Run()
		return false
	}

	for _, workers := range []int{1, 4} {
		// Buggy wiring: lookahead from the flat constant rejects a
		// legal minimum-latency message.
		if !send(des.NewFabric(2, workers, p.FabricHop())) {
			t.Fatalf("workers=%d: FabricHop lookahead accepted a sub-window send", workers)
		}
		// Fixed wiring: topology-derived lookahead admits it.
		if send(NewDES(topo, 2, workers)) {
			t.Fatalf("workers=%d: topology lookahead rejected a legal send", workers)
		}
	}
}
