package fabric

import (
	"fmt"
	"strings"
)

// GridSpec generates the canonical sweep topology: hosts and devices
// round-robined across a chain of switches, adjacent switches joined
// by trunk links. Edge links carry no attributes, so GridSpec(h, 1, 1)
// parses to a Trivial topology and reproduces the flat single-pool
// model exactly; trunks declare an explicit latency (roughly one extra
// switch traversal) so cross-switch restores are visibly dearer than
// switch-local ones.
func GridSpec(hosts, switches, devices int) string {
	if hosts <= 0 {
		hosts = 1
	}
	if switches <= 0 {
		switches = 1
	}
	if devices <= 0 {
		devices = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# grid: %d hosts x %d switches x %d devices\n", hosts, switches, devices)
	for i := 0; i < hosts; i++ {
		fmt.Fprintf(&b, "host h%d\n", i)
	}
	for i := 0; i < switches; i++ {
		fmt.Fprintf(&b, "switch sw%d\n", i)
	}
	for i := 0; i < devices; i++ {
		fmt.Fprintf(&b, "device d%d\n", i)
	}
	for i := 0; i < hosts; i++ {
		fmt.Fprintf(&b, "link h%d sw%d\n", i, i%switches)
	}
	for i := 0; i < devices; i++ {
		if switches == 1 && devices == 1 {
			// Degenerate grid: keep the lone edge attr-less so the spec
			// stays Trivial and reproduces the flat model exactly.
			fmt.Fprintf(&b, "link d%d sw%d\n", i, i%switches)
			continue
		}
		// A device port admits fewer concurrent full-rate DMA streams
		// than the host-side default — the device edge is where a
		// restore storm against one shard actually piles up.
		fmt.Fprintf(&b, "link d%d sw%d streams=3\n", i, i%switches)
	}
	for i := 1; i < switches; i++ {
		// Trunk hop: an extra switch traversal over a shared
		// inter-switch link that is both slower (8 GB/s ≈ 512 ns/page
		// against the latency-bound edge streams) and narrower
		// (4 streams) than the aggregate edge capacity — the
		// congestion point cross-switch restores queue on. The
		// explicit attributes also make any multi-switch grid
		// deliberately non-Trivial.
		fmt.Fprintf(&b, "link sw%d sw%d lat=600ns bw=8 streams=4\n", i-1, i)
	}
	return b.String()
}
