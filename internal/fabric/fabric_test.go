package fabric

import (
	"errors"
	"strings"
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/params"
)

// twoSwitch is the canonical hand-written fixture: two hosts and two
// devices split across two switches joined by a slow narrow trunk.
const twoSwitch = `
# two-switch fixture
host h0
host h1
switch sw0
switch sw1
device d0
device d1
link h0 sw0
link h1 sw1
link d0 sw0
link d1 sw1
link sw0 sw1 lat=800ns bw=8 streams=2
`

func build(t *testing.T, spec string) *Topology {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	topo, err := s.Build(params.Default())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return topo
}

func TestParseTypedErrors(t *testing.T) {
	cases := []struct {
		name, spec string
		want       error
	}{
		{"empty", "", ErrEmptySpec},
		{"comment only", "# nothing\n\n", ErrEmptySpec},
		{"no device", "host h0\nswitch sw0\nlink h0 sw0\n", ErrEmptySpec},
		{"bad kind", "gadget g0\n", ErrBadSpec},
		{"host arity", "host\n", ErrBadSpec},
		{"link arity", "host h0\nswitch s0\ndevice d0\nlink h0\n", ErrBadSpec},
		{"bad lat", "host h0\nswitch s0\ndevice d0\nlink h0 s0 lat=fast\nlink d0 s0\n", ErrBadSpec},
		{"bad bw", "host h0\nswitch s0\ndevice d0\nlink h0 s0 bw=wide\nlink d0 s0\n", ErrBadSpec},
		{"bad streams", "host h0\nswitch s0\ndevice d0\nlink h0 s0 streams=many\nlink d0 s0\n", ErrBadSpec},
		{"zero streams", "host h0\nswitch s0\ndevice d0\nlink h0 s0 streams=0\nlink d0 s0\n", ErrBadLink},
		{"negative lat", "host h0\nswitch s0\ndevice d0\nlink h0 s0 lat=-5ns\nlink d0 s0\n", ErrBadLink},
		{"zero bandwidth", "host h0\nswitch s0\ndevice d0\nlink h0 s0 bw=0\nlink d0 s0\n", ErrBadLink},
		{"unknown attr", "host h0\nswitch s0\ndevice d0\nlink h0 s0 mtu=9000\nlink d0 s0\n", ErrBadSpec},
		{"dup host", "host h0\nhost h0\nswitch s0\ndevice d0\nlink h0 s0\nlink d0 s0\n", ErrDuplicateNode},
		{"dup across kinds", "host n0\nswitch s0\ndevice n0\nlink n0 s0\n", ErrDuplicateNode},
		{"unknown endpoint", "host h0\nswitch s0\ndevice d0\nlink h0 s0\nlink d0 s9\n", ErrUnknownNode},
		{"host-host link", "host h0\nhost h1\nswitch s0\ndevice d0\nlink h0 h1\nlink h0 s0\nlink d0 s0\n", ErrBadLink},
		{"host-device link", "host h0\nswitch s0\ndevice d0\nlink h0 d0\nlink h0 s0\nlink d0 s0\n", ErrBadLink},
		{"self loop", "host h0\nswitch s0\ndevice d0\nlink s0 s0\nlink h0 s0\nlink d0 s0\n", ErrBadLink},
		{"duplicate link", "host h0\nswitch s0\ndevice d0\nlink h0 s0\nlink h0 s0\nlink d0 s0\n", ErrBadLink},
		{"disconnected device", "host h0\nswitch s0\ndevice d0\ndevice d1\nlink h0 s0\nlink d0 s0\n", ErrDisconnected},
		{"disconnected host", "host h0\nhost h1\nswitch s0\ndevice d0\nlink h0 s0\nlink d0 s0\n", ErrDisconnected},
		{"split fabric", "host h0\nhost h1\nswitch s0\nswitch s1\ndevice d0\ndevice d1\nlink h0 s0\nlink d0 s0\nlink h1 s1\nlink d1 s1\n", ErrDisconnected},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParseAcceptsFixture(t *testing.T) {
	s, err := Parse(twoSwitch)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Hosts) != 2 || len(s.Switches) != 2 || len(s.Devices) != 2 {
		t.Fatalf("node counts: %d/%d/%d", len(s.Hosts), len(s.Switches), len(s.Devices))
	}
	if len(s.Links) != 5 {
		t.Fatalf("links: %d", len(s.Links))
	}
}

func TestPathsAndCosts(t *testing.T) {
	topo := build(t, twoSwitch)
	p := params.Default()
	edge := p.CXLLatency / 2

	// Switch-local restore: host edge + device edge, two hops.
	if got := topo.PathLat(0, 0); got != 2*edge {
		t.Fatalf("h0→d0 lat %v, want %v", got, 2*edge)
	}
	if got := topo.PathHops(0, 0); got != 2 {
		t.Fatalf("h0→d0 hops %d", got)
	}
	// Cross-switch restore pays the declared trunk latency.
	want := 2*edge + 800
	if got := topo.PathLat(0, 1); got != des.Time(want) {
		t.Fatalf("h0→d1 lat %v, want %v", got, want)
	}
	if got := topo.PathHops(0, 1); got != 3 {
		t.Fatalf("h0→d1 hops %d", got)
	}
	// Symmetric by construction.
	if topo.PathLat(1, 0) != topo.PathLat(0, 1) {
		t.Fatal("path latency not symmetric")
	}
	// DeviceCost is the mean over hosts, so both devices tie here and
	// NearestDevice resolves by path latency per host.
	if topo.DeviceCost(0) != topo.DeviceCost(1) {
		t.Fatal("symmetric fixture should tie on device cost")
	}
	if got := topo.NearestDevice(0, []int{0, 1}); got != 0 {
		t.Fatalf("h0 nearest = d%d, want d0", got)
	}
	if got := topo.NearestDevice(1, []int{0, 1}); got != 1 {
		t.Fatalf("h1 nearest = d%d, want d1", got)
	}
	if topo.MinLinkLatency() != edge {
		t.Fatalf("min link latency %v, want %v", topo.MinLinkLatency(), edge)
	}
}

func TestDijkstraPrefersFasterDetour(t *testing.T) {
	// Two routes from h0 to d0: a direct slow switch hop chain and a
	// faster two-trunk detour. Lowest latency must win over fewer hops.
	topo := build(t, `
host h0
switch s0
switch s1
switch s2
device d0
link h0 s0
link s0 s1 lat=2000ns
link s0 s2 lat=300ns
link s2 s1 lat=300ns
link d0 s1
`)
	p := params.Default()
	edge := p.CXLLatency / 2
	want := edge + 300 + 300 + edge // via s2
	if got := topo.PathLat(0, 0); got != des.Time(want) {
		t.Fatalf("detour lat %v, want %v", got, want)
	}
	if got := topo.PathHops(0, 0); got != 4 {
		t.Fatalf("detour hops %d, want 4", got)
	}
}

func TestTrivialGate(t *testing.T) {
	if !build(t, GridSpec(4, 1, 1)).Trivial() {
		t.Fatal("degenerate grid must be Trivial")
	}
	for _, spec := range []string{
		GridSpec(4, 2, 1), // two switches
		GridSpec(4, 1, 2), // two devices
		"host h0\nswitch s0\ndevice d0\nlink h0 s0 lat=100ns\nlink d0 s0\n", // explicit attr
	} {
		if build(t, spec).Trivial() {
			t.Fatalf("non-degenerate spec reported Trivial:\n%s", spec)
		}
	}
}

func TestGridSpecShapes(t *testing.T) {
	topo := build(t, GridSpec(4, 2, 6))
	if topo.Hosts() != 4 || topo.Switches() != 2 || topo.Devices() != 6 {
		t.Fatalf("grid shape %d/%d/%d", topo.Hosts(), topo.Switches(), topo.Devices())
	}
	// Round-robin: even devices behind sw0, odd behind sw1.
	for d := 0; d < 6; d++ {
		want := "sw0"
		if d%2 == 1 {
			want = "sw1"
		}
		if got := topo.DeviceSwitch(d); got != want {
			t.Fatalf("d%d on %s, want %s", d, got, want)
		}
	}
	// 4 host edges + 6 device edges + 1 trunk.
	if topo.Links() != 11 {
		t.Fatalf("links %d, want 11", topo.Links())
	}
	if topo.DeviceName(2) != "d2" {
		t.Fatalf("device name %q", topo.DeviceName(2))
	}
}

func TestSortDevicesByCost(t *testing.T) {
	// Chain of three switches: d2 sits two trunks from most hosts.
	topo := build(t, GridSpec(3, 3, 3))
	devs := []int{2, 1, 0}
	topo.SortDevicesByCost(devs)
	for i := 1; i < len(devs); i++ {
		a, b := devs[i-1], devs[i]
		if topo.DeviceCost(a) > topo.DeviceCost(b) {
			t.Fatalf("order %v not cost-sorted: cost(d%d)=%v > cost(d%d)=%v",
				devs, a, topo.DeviceCost(a), b, topo.DeviceCost(b))
		}
	}
}

// TestRelabelInvariance builds two isomorphic specs whose node names and
// declaration orders differ and checks every routing observable matches:
// placement heuristics built on these must not depend on spelling.
func TestRelabelInvariance(t *testing.T) {
	a := build(t, twoSwitch)
	b := build(t, `
device mem_B
device mem_A
switch leaf1
switch leaf0
host alpha
host beta
link beta leaf1
link mem_B leaf1
link leaf0 leaf1 lat=800ns bw=8 streams=2
link alpha leaf0
link mem_A leaf0
`)
	// Index mapping: a.h0→b.alpha(0? hosts preserve declaration order:
	// alpha is declared first) — map by structure: alpha/leaf0/mem_A
	// mirror h0/sw0/d0, with b's device order swapped (mem_B first).
	perm := map[int]int{0: 1, 1: 0} // a device i ↔ b device perm[i]
	for h := 0; h < 2; h++ {
		for d := 0; d < 2; d++ {
			if a.PathLat(h, d) != b.PathLat(h, perm[d]) {
				t.Fatalf("relabeled path lat differs at h%d d%d", h, d)
			}
			if a.PathHops(h, d) != b.PathHops(h, perm[d]) {
				t.Fatalf("relabeled hops differ at h%d d%d", h, d)
			}
		}
	}
	if a.MinLinkLatency() != b.MinLinkLatency() {
		t.Fatal("relabeled min link latency differs")
	}
}

func TestSummaryMentionsShape(t *testing.T) {
	s := build(t, twoSwitch).Summary()
	for _, want := range []string{"2", "host", "switch", "device"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestMustBuildPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild accepted a bad spec")
		}
	}()
	MustBuild("host h0\n", params.Default())
}
