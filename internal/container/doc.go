// Package container models the Docker-level sandbox lifecycle CXLporter
// manages (paper §5): container creation with its ≈130 ms
// function-independent setup cost (network, namespaces, cgroups), and
// ghost containers — pre-created, empty containers holding only 512 KB
// that wait on a control socket for a "function restoration request" and
// let a remote fork land directly inside an existing sandbox.
//
// The entry point is NewRuntime, one per node; a Container moves
// through create, trigger and recycle.
package container
