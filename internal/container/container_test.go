package container

import (
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/params"
)

func node(t *testing.T) *kernel.OS {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 16 << 20
	p.CXLBytes = 16 << 20
	return kernel.NewOS("n0", p, des.NewEngine(), cxl.NewDevice(p), fsim.NewFS(), p.NodeDRAMBytes)
}

func TestCreateChargesAndAllocates(t *testing.T) {
	o := node(t)
	rt := NewRuntime(o)
	before := o.Eng.Now()
	c, err := rt.Create()
	if err != nil {
		t.Fatal(err)
	}
	if o.Eng.Now()-before != o.P.ContainerCreate {
		t.Fatalf("charged %v, want %v", o.Eng.Now()-before, o.P.ContainerCreate)
	}
	wantPages := int(o.P.GhostContainerBytes) / o.P.PageSize
	if o.Mem.UsedPages() != wantPages {
		t.Fatalf("ghost occupies %d pages, want %d (512KB)", o.Mem.UsedPages(), wantPages)
	}
	if c.State != Ghost {
		t.Fatalf("state = %v", c.State)
	}
	if rt.Live() != 1 {
		t.Fatal("not tracked")
	}
}

func TestDeployInheritsSandboxNamespaces(t *testing.T) {
	o := node(t)
	rt := NewRuntime(o)
	c, _ := rt.Create()
	if err := c.Trigger(); err != nil {
		t.Fatal(err)
	}
	task := o.NewTask("fn")
	if err := c.Deploy(task); err != nil {
		t.Fatal(err)
	}
	if task.NS.NetNS != c.NetNS || task.NS.Cgroup != c.Cgroup {
		t.Fatal("task did not inherit container namespaces")
	}
	if c.State != Running {
		t.Fatalf("state = %v", c.State)
	}
	// Deploy into a running container fails.
	if err := c.Deploy(o.NewTask("fn2")); err == nil {
		t.Fatal("double deploy accepted")
	}
	if err := c.Trigger(); err == nil {
		t.Fatal("trigger on running container accepted")
	}
}

func TestRecycle(t *testing.T) {
	o := node(t)
	rt := NewRuntime(o)
	c, _ := rt.Create()
	c.Trigger()
	c.Deploy(o.NewTask("fn"))
	c.Recycle()
	if c.State != Ghost {
		t.Fatal("recycle did not return to ghost")
	}
	// Reusable for the next restore.
	if err := c.Trigger(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyFreesOverhead(t *testing.T) {
	o := node(t)
	rt := NewRuntime(o)
	c, _ := rt.Create()
	rt.Destroy(c)
	if o.Mem.UsedPages() != 0 {
		t.Fatalf("leak: %d pages", o.Mem.UsedPages())
	}
	if rt.Live() != 0 || c.State != Dead {
		t.Fatal("destroy incomplete")
	}
	rt.Destroy(c) // idempotent
}

func TestTriggerCost(t *testing.T) {
	o := node(t)
	rt := NewRuntime(o)
	c, _ := rt.Create()
	before := o.Eng.Now()
	c.Trigger()
	if o.Eng.Now()-before != o.P.GhostContainerTrigger {
		t.Fatal("trigger cost wrong")
	}
}

func TestStateString(t *testing.T) {
	if Ghost.String() != "ghost" || Running.String() != "running" || Dead.String() != "dead" {
		t.Fatal("state names wrong")
	}
}
