package container

import (
	"fmt"

	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
)

// State is a container's lifecycle state.
type State int

// Container states.
const (
	// Ghost is a configured but empty container (no function inside).
	Ghost State = iota
	// Running hosts a live function instance.
	Running
	// Dead has been torn down.
	Dead
)

func (s State) String() string {
	switch s {
	case Ghost:
		return "ghost"
	case Running:
		return "running"
	default:
		return "dead"
	}
}

// Container is one sandbox on a node.
type Container struct {
	ID    string
	Node  *kernel.OS
	State State
	// NetNS and Cgroup are the sandbox's namespaces; a function restored
	// into the container inherits them (paper §4.2).
	NetNS  string
	Cgroup string

	frames []*memsim.Frame // fixed sandbox overhead (512 KB)
}

// Runtime creates and tracks containers on one node.
type Runtime struct {
	Node *kernel.OS
	seq  int
	live map[string]*Container
}

// NewRuntime returns a container runtime for a node.
func NewRuntime(node *kernel.OS) *Runtime {
	return &Runtime{Node: node, live: make(map[string]*Container)}
}

// Live returns the number of live containers.
func (r *Runtime) Live() int { return len(r.live) }

// Create provisions a fresh container, charging the full container
// creation cost and its fixed memory overhead.
func (r *Runtime) Create() (*Container, error) {
	p := r.Node.P
	r.seq++
	c := &Container{
		ID:     fmt.Sprintf("%s-ctr%d", r.Node.Name, r.seq),
		Node:   r.Node,
		State:  Ghost,
		NetNS:  fmt.Sprintf("netns-%s-%d", r.Node.Name, r.seq),
		Cgroup: fmt.Sprintf("/docker/%s-%d", r.Node.Name, r.seq),
	}
	overheadPages := int(p.GhostContainerBytes) / p.PageSize
	for i := 0; i < overheadPages; i++ {
		f, err := r.Node.Mem.Alloc()
		if err != nil {
			for _, g := range c.frames {
				r.Node.Mem.Put(g)
			}
			return nil, fmt.Errorf("container: %w", err)
		}
		c.frames = append(c.frames, f)
	}
	r.Node.Eng.Advance(p.ContainerCreate)
	r.live[c.ID] = c
	return c, nil
}

// Trigger signals a ghost container's control socket so it issues a
// restore request, charging the (small) trigger cost. The task created
// for the restore should then call Deploy.
func (c *Container) Trigger() error {
	if c.State != Ghost {
		return fmt.Errorf("container %s: trigger in state %v", c.ID, c.State)
	}
	c.Node.Eng.Advance(c.Node.P.GhostContainerTrigger)
	return nil
}

// Deploy places a task inside the container: the task adopts the
// container's network namespace and cgroup (reconfigurable state is
// inherited from the restore caller, §4.2).
func (c *Container) Deploy(task *kernel.Task) error {
	if c.State != Ghost {
		return fmt.Errorf("container %s: deploy in state %v", c.ID, c.State)
	}
	task.NS.NetNS = c.NetNS
	task.NS.Cgroup = c.Cgroup
	c.State = Running
	return nil
}

// Recycle returns a running container to the ghost state (the function
// inside has exited; the sandbox is reusable).
func (c *Container) Recycle() {
	if c.State == Running {
		c.State = Ghost
	}
}

// Destroy tears the container down, releasing its fixed overhead. The
// runtime that created it forgets it.
func (r *Runtime) Destroy(c *Container) {
	if c.State == Dead {
		return
	}
	c.State = Dead
	for _, f := range c.frames {
		r.Node.Mem.Put(f)
	}
	c.frames = nil
	delete(r.live, c.ID)
}
