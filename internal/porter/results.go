package porter

import (
	"math"
	"sort"

	"cxlfork/internal/metrics"
)

// hostsFn reports whether the node currently holds any state for fn: a
// pooled ghost, an idle instance, or a running one. Such nodes are
// "dedup-warm" placements — the function's pages are already resident
// locally and deduped on the device.
func (n *nodeState) hostsFn(fn string) bool {
	if n.ghosts[fn] > 0 || len(n.idle[fn]) > 0 {
		return true
	}
	for in := range n.all {
		if in.fn == fn {
			return true
		}
	}
	return false
}

// ghostFallback picks the least-loaded surviving node with room for a
// ghost container, preferring dedup-warm nodes at equal load.
func (p *Porter) ghostFallback(fn string, ghostPages int) *nodeState {
	cands := make([]*nodeState, 0, len(p.nodes))
	for _, n := range p.nodes {
		if p.c.Faults.NodeDown(n.os.Index) || n.freePages() < ghostPages {
			continue
		}
		cands = append(cands, n)
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		li := cands[i].cpu.Busy() + cands[i].cpu.QueueLen()
		lj := cands[j].cpu.Busy() + cands[j].cpu.QueueLen()
		if li != lj {
			return li < lj
		}
		return cands[i].hostsFn(fn) && !cands[j].hostsFn(fn)
	})
	return cands[0]
}

// Fingerprint folds every scalar result and the latency distributions
// into one FNV-1a hash. Two replays of the same seeded trace must
// produce equal fingerprints — the golden determinism tests compare
// them across runs and lane counts.
func (r Results) Fingerprint() uint64 {
	h := newFingerprint()
	h.word(uint64(r.Completed))
	h.word(uint64(r.WarmStarts))
	h.word(uint64(r.ColdForks))
	h.word(uint64(r.ScratchCold))
	h.word(uint64(r.Evictions))
	h.word(uint64(r.CkptReclaims))
	h.word(uint64(r.WindowCompleted))
	h.word(uint64(r.Duration))
	h.word(uint64(r.PolicyPromotions))
	h.word(uint64(r.InjectedFaults))
	h.word(uint64(r.Retries))
	h.word(uint64(r.Fallbacks))
	h.word(uint64(r.RecoveredBytes))
	h.word(uint64(r.DedupHits))
	h.word(uint64(r.DedupMisses))
	h.word(uint64(r.DedupBytesSaved))
	h.word(uint64(r.ReclaimPasses))
	h.word(uint64(r.EvictedCkpts))
	h.word(uint64(r.EvictedBytes))
	h.word(uint64(r.DeferredBytes))
	h.word(uint64(r.CkptRefused))
	h.word(uint64(r.Recheckpoints))
	h.word(uint64(r.FailedRestores))
	h.word(uint64(r.RetryExhausted))
	h.word(uint64(r.Failovers))
	h.word(uint64(r.ReplicasPlaced))
	h.word(uint64(r.ReplicasShed))
	h.word(uint64(r.RepairCopies))
	h.word(uint64(r.RepairedPages))
	h.word(uint64(r.LostImages))
	h.word(uint64(r.UnderReplicated))
	h.word(uint64(r.RepairConverged))
	h.recorder(r.Overall)
	h.recorder(r.ColdLatency)

	fns := make([]string, 0, len(r.PerFunction))
	for fn := range r.PerFunction {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		h.str(fn)
		h.recorder(r.PerFunction[fn])
	}

	gauges := make([]string, 0, len(r.MemGauge))
	for name := range r.MemGauge {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		h.str(name)
		h.word(math.Float64bits(r.MemGauge[name].Max()))
		h.word(math.Float64bits(r.MemGauge[name].MeanOver(r.Duration)))
	}
	return h.sum
}

// fingerprint is a tiny incremental FNV-1a accumulator.
type fingerprint struct{ sum uint64 }

func newFingerprint() *fingerprint {
	return &fingerprint{sum: 14695981039346656037}
}

func (f *fingerprint) byte(b byte) {
	f.sum ^= uint64(b)
	f.sum *= 1099511628211
}

func (f *fingerprint) word(v uint64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

func (f *fingerprint) str(s string) {
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
	f.byte(0)
}

func (f *fingerprint) recorder(r *metrics.LatencyRecorder) {
	if r == nil {
		f.word(0)
		return
	}
	f.word(uint64(r.Count()))
	f.word(uint64(r.Mean()))
	f.word(uint64(r.P50()))
	f.word(uint64(r.P99()))
	f.word(uint64(r.Max()))
}
