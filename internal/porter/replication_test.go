package porter_test

import (
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// replicatedPorter builds a porter over a multi-device pool with a
// short keep-alive, so nearly every request pays a restore and the
// failover path is exercised after a device loss. tweak adjusts params
// before the cluster is built; rules are injected before Setup.
func replicatedPorter(t *testing.T, devices, rf int, rules []faultinject.Rule, tweak func(*params.Params)) (*porter.Porter, *cluster.Cluster) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CXLDevices = devices
	p.ReplicationFactor = rf
	p.KeepAlive = 50 * des.Millisecond
	if tweak != nil {
		tweak(&p)
	}
	c := cluster.MustNew(p, 2)
	for _, r := range rules {
		c.Faults.Inject(r)
	}
	mech := core.New(c.Dev)
	mech.Faults = c.Faults
	po := porter.New(c, porter.Config{
		Mechanism:       mech,
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	return po, c
}

// killRule kills one pool device at a virtual offset into the run.
func killRule(dev int, at des.Time) faultinject.Rule {
	return faultinject.Rule{Kind: faultinject.DeviceLoss, Device: dev, At: at}
}

// TestReplicatedRestoreSurvivesDeviceLoss is the acceptance scenario:
// at RF 2 the ingest device dies mid-trace, every restore fails over to
// the surviving replica (zero failed restores), and the repair loop
// re-establishes the factor before the run ends.
func TestReplicatedRestoreSurvivesDeviceLoss(t *testing.T) {
	po, _ := replicatedPorter(t, 3, 2, []faultinject.Rule{killRule(0, 2100*des.Millisecond)}, nil)
	res := po.Run(steadyTrace(40, 200*des.Millisecond))
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	if res.FailedRestores != 0 {
		t.Fatalf("FailedRestores = %d, want 0 at RF 2", res.FailedRestores)
	}
	if res.LostImages != 0 {
		t.Fatalf("LostImages = %d, want 0 at RF 2", res.LostImages)
	}
	if res.ReplicasPlaced < 2 {
		t.Fatalf("ReplicasPlaced = %d, want >= 2", res.ReplicasPlaced)
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers despite restores against a dead preferred replica")
	}
	if !res.RepairConvergedOK {
		t.Fatalf("repair did not converge (deficit %d)", res.UnderReplicated)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("run ended under-replicated by %d", res.UnderReplicated)
	}
	if res.RepairedPages == 0 {
		t.Fatal("repair converged without copying any pages")
	}
}

// TestSingleCopyLosesImagesOnDeviceLoss is the RF 1 contrast: the only
// copy rides the ingest device, so killing it loses the image for good
// and the function degrades to scratch cold starts.
func TestSingleCopyLosesImagesOnDeviceLoss(t *testing.T) {
	po, _ := replicatedPorter(t, 3, 1, []faultinject.Rule{killRule(0, 2100*des.Millisecond)}, nil)
	res := po.Run(steadyTrace(40, 200*des.Millisecond))
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	if res.LostImages == 0 {
		t.Fatal("LostImages = 0, want > 0 at RF 1")
	}
	if res.FailedRestores == 0 {
		t.Fatal("FailedRestores = 0, want > 0 at RF 1")
	}
	if res.ScratchCold == 0 {
		t.Fatal("no scratch cold starts after losing the only copy")
	}
}

// TestBackoffScheduleIsByteIdentical is the deterministic-backoff
// regression test: two identically-seeded runs with a device-loss fault
// enabled must charge byte-identical backoff schedules and produce the
// same results fingerprint.
func TestBackoffScheduleIsByteIdentical(t *testing.T) {
	run := func() (uint64, []des.Time) {
		po, _ := replicatedPorter(t, 3, 2, []faultinject.Rule{killRule(0, 2100*des.Millisecond)}, nil)
		res := po.Run(steadyTrace(40, 200*des.Millisecond))
		return res.Fingerprint(), po.BackoffSchedule()
	}
	fpA, schedA := run()
	fpB, schedB := run()
	if fpA != fpB {
		t.Fatalf("same seed, different fingerprints: %#x vs %#x", fpA, fpB)
	}
	if len(schedA) == 0 {
		t.Fatal("no backoffs charged despite failovers")
	}
	if len(schedA) != len(schedB) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(schedA), len(schedB))
	}
	for i := range schedA {
		if schedA[i] != schedB[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, schedA[i], schedB[i])
		}
	}
	// The capped exponential never exceeds its configured bound.
	bound := params.Default().RestoreRetryBackoffCap
	for i, d := range schedA {
		if d > bound {
			t.Fatalf("backoff %d = %v exceeds cap %v", i, d, bound)
		}
	}
}

// TestRetryExhaustedCountsDistinctly drives a request's retry budget to
// zero via replica failover probes: at RF 3 with budget 1, two dead
// devices ahead of the surviving replica exhaust the budget and the
// request degrades to a scratch cold start, counted in the distinct
// retry_exhausted counter — never as a failed restore. The image's ring
// order decides which kill pair puts two dead devices first, so both
// pairs run and the exhaustion must appear in exactly the sweep.
func TestRetryExhaustedCountsDistinctly(t *testing.T) {
	var exhausted int64
	for _, second := range []int{1, 2} {
		rules := []faultinject.Rule{
			killRule(0, 2*des.Second),
			killRule(second, 2*des.Second),
		}
		po, _ := replicatedPorter(t, 3, 3, rules, func(p *params.Params) {
			p.RestoreRetryBudget = 1
			// Park the repair loop: exhaustion needs the dead replicas
			// to stay ahead of the survivor for the whole run.
			p.RepairPeriod = 10 * des.Minute
		})
		res := po.Run(steadyTrace(40, 200*des.Millisecond))
		if res.Completed != 40 {
			t.Fatalf("kill={0,%d}: completed %d of 40", second, res.Completed)
		}
		if res.FailedRestores != 0 {
			t.Fatalf("kill={0,%d}: FailedRestores = %d, want 0 (one replica survives)", second, res.FailedRestores)
		}
		if res.LostImages != 0 {
			t.Fatalf("kill={0,%d}: LostImages = %d, want 0", second, res.LostImages)
		}
		if res.RetryExhausted > 0 && res.ScratchCold == 0 {
			t.Fatalf("kill={0,%d}: exhausted requests did not degrade to scratch", second)
		}
		exhausted += res.RetryExhausted
	}
	if exhausted == 0 {
		t.Fatal("no run exhausted its retry budget despite two dead devices at budget 1")
	}
}

// TestPressureShedsReplicasBeforeEvicting sizes the pool so an RF 2
// publication lands right at the high watermark: the reclaim ladder
// must shed surplus replicas first (ReplicasShed > 0), and no restore
// may ever fail — shedding stops at the last healthy copy.
func TestPressureShedsReplicasBeforeEvicting(t *testing.T) {
	po, _ := replicatedPorter(t, 2, 2, nil, func(p *params.Params) {
		// ~9 MiB per device against an ~8 MiB checkpoint: both devices
		// sit above the 0.90 watermark once the factor-2 copies land.
		p.CXLBytes = 18 << 20
	})
	res := po.Run(steadyTrace(40, 200*des.Millisecond))
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	if res.ReplicasShed == 0 {
		t.Fatal("pressure never shed a replica")
	}
	if res.FailedRestores != 0 {
		t.Fatalf("FailedRestores = %d, want 0 — shedding must never drop the last copy", res.FailedRestores)
	}
	if res.LostImages != 0 {
		t.Fatalf("LostImages = %d, want 0", res.LostImages)
	}
}

// TestDegradedRestoreBlameIsUnattributed pins the blame-accounting fix
// for degrade-to-scratch: the probe and backoff time a request accrues
// before exhausting its retry budget never reaches the restore-latency
// recorder, so attribution must bank it in the unattributed counter
// instead of dropping it silently — while changing nothing simulated.
func TestDegradedRestoreBlameIsUnattributed(t *testing.T) {
	run := func(attributed bool) (porter.Results, *cluster.Cluster) {
		rules := []faultinject.Rule{
			killRule(0, 2*des.Second),
			killRule(1, 2*des.Second),
		}
		po, c := replicatedPorter(t, 3, 3, rules, func(p *params.Params) {
			p.RestoreRetryBudget = 1
			p.RepairPeriod = 10 * des.Minute
			p.XRayEnabled = attributed
		})
		return po.Run(steadyTrace(40, 200*des.Millisecond)), c
	}
	plain, _ := run(false)
	res, c := run(true)
	if res.Fingerprint() != plain.Fingerprint() {
		t.Fatalf("attribution perturbed the replay: %#x != %#x",
			res.Fingerprint(), plain.Fingerprint())
	}
	if res.RetryExhausted == 0 || res.ScratchCold == 0 {
		t.Fatalf("scenario did not degrade: exhausted=%d scratch=%d",
			res.RetryExhausted, res.ScratchCold)
	}
	if c.XRay.UnattributedNS() == 0 {
		t.Fatal("degraded restores banked no unattributed blame")
	}
	r := c.XRay.Report()
	if r.UnattributedCount == 0 || r.UnattributedNS != c.XRay.UnattributedNS() {
		t.Fatalf("report unattributed = %d over %d requests", r.UnattributedNS, r.UnattributedCount)
	}
	// Unattributed time is banked beside the decomposition, not inside
	// it: every class still balances exactly.
	for _, cb := range r.Classes {
		if cb.ResidualNS != 0 {
			t.Fatalf("class %s residual = %d after degrade", cb.Class, cb.ResidualNS)
		}
	}
}
