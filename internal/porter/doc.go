// Package porter implements CXLporter, the horizontal FaaS autoscaler
// built on remote fork (paper §5). It maintains a CID object store of
// checkpoints, a pool of ghost containers per function, dynamically
// selects CXLfork tiering policies from observed latency and memory
// pressure, and shortens keep-alive windows under pressure.
//
// Scaling experiments (Fig. 10) replay bursty arrival traces over the
// discrete-event engine. Per-request work uses profiles measured
// mechanistically in isolation (restore latency, cold and warm execution
// time, steady-state local footprint, per mechanism and tiering policy);
// the event-driven replay then captures queueing, cold-start storms, and
// memory-pressure effects that the profiles alone cannot.
//
// Entry points: New over a cluster.Cluster, then Setup to deploy and
// checkpoint a suite and Run to replay an arrival trace. The
// device-capacity manager — eviction policies, watermarks, admission,
// re-checkpointing — lives in capacity.go (paper §8 discussion,
// DESIGN.md §10); ParseEvictPolicy maps params.EvictPolicy onto it.
package porter
