package porter_test

import (
	"fmt"
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// goldenRun replays one seeded bursty trace through a fresh porter with
// the given copy-lane configuration and returns the result fingerprint.
func goldenRun(t *testing.T, lanes int, traceSeed int64) uint64 {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointLanes = lanes
	p.RestoreLanes = lanes
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism:       core.New(c.Dev),
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: 40,
		Duration: 10 * des.Second,
		Loads:    azure.DefaultLoads([]string{"Tiny"}),
		Seed:     traceSeed,
	})
	return po.Run(trace).Fingerprint()
}

// TestGoldenDeterministicResults is the golden determinism test: the
// same seeded trace replayed through a fresh cluster must produce
// byte-identical porter results — compared via Results.Fingerprint,
// which folds every scalar counter and latency distribution — for the
// sequential baseline and for every lane count.
func TestGoldenDeterministicResults(t *testing.T) {
	for _, lanes := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			a := goldenRun(t, lanes, 7)
			b := goldenRun(t, lanes, 7)
			if a != b {
				t.Fatalf("same seed, different fingerprints: %#x vs %#x", a, b)
			}
		})
	}
}

// TestGoldenFingerprintSensitive proves the fingerprint is not vacuous:
// replaying a different trace must change it.
func TestGoldenFingerprintSensitive(t *testing.T) {
	a := goldenRun(t, 1, 7)
	b := goldenRun(t, 1, 8)
	if a == b {
		t.Fatalf("different traces, same fingerprint %#x", a)
	}
}
