package porter_test

import (
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// faultyPorter builds a porter whose CXLfork mechanism is wired to the
// cluster fault plan, with rules injected before Setup runs.
func faultyPorter(t *testing.T, cxlBytes int64, rules []faultinject.Rule) (*porter.Porter, *cluster.Cluster) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = cxlBytes
	c := cluster.MustNew(p, 2)
	for _, r := range rules {
		c.Faults.Inject(r)
	}
	mech := core.New(c.Dev)
	mech.Faults = c.Faults
	cfg := porter.Config{
		Mechanism:       mech,
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	}
	po := porter.New(c, cfg)
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	return po, c
}

// TestSetupRetriesAfterCrash is the crash-retry scenario: node 0 dies
// mid-checkpoint during provisioning. The porter recovers the torn
// arena off the device, retries on node 1, and the deployment then
// serves the whole trace with node 0 down.
func TestSetupRetriesAfterCrash(t *testing.T) {
	po, c := faultyPorter(t, 1<<30, []faultinject.Rule{{
		Kind: faultinject.CrashNode,
		Step: faultinject.StepCheckpointGlobal,
		Node: 0,
	}})
	if !c.Faults.NodeDown(0) {
		t.Fatal("node 0 not down after Setup")
	}
	if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
		t.Fatal("retried checkpoint not in object store")
	}
	res := po.Run(steadyTrace(50, 20*des.Millisecond))
	if res.Completed != 50 {
		t.Fatalf("completed %d of 50", res.Completed)
	}
	if res.InjectedFaults < 1 {
		t.Fatalf("InjectedFaults = %d", res.InjectedFaults)
	}
	if res.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", res.Retries)
	}
	if res.RecoveredBytes <= 0 {
		t.Fatalf("RecoveredBytes = %d, torn arena held frames", res.RecoveredBytes)
	}
	// The torn arena was fully garbage-collected: only the retried
	// checkpoint occupies the device.
	img, _ := po.Store().Get("tenant0", "Tiny")
	if got := c.Dev.UsedBytes(); got != img.CXLBytes() {
		t.Fatalf("device holds %d bytes, checkpoint is %d", got, img.CXLBytes())
	}
}

// TestRestoreRetriesOnAlternateNode injects a crash at the porter's
// restore boundary: the first fork target dies, trySpawn excludes it and
// places the instance on the surviving node, and every request still
// completes.
func TestRestoreRetriesOnAlternateNode(t *testing.T) {
	po, c := faultyPorter(t, 1<<30, []faultinject.Rule{{
		Kind: faultinject.CrashNode,
		Step: faultinject.StepPorterRestore,
		Node: faultinject.AnyNode,
	}})
	res := po.Run(steadyTrace(40, 20*des.Millisecond))
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	if res.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", res.Retries)
	}
	down := 0
	for i := 0; i < 2; i++ {
		if c.Faults.NodeDown(i) {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("%d nodes down, want exactly 1", down)
	}
}

// TestInjectedDeviceFullFallsBackToColdStarts makes every restore
// attempt hit a transient device-full: the autoscaler degrades to
// scratch cold starts, nothing escapes as an error, and the fallback
// counter records each degradation.
func TestInjectedDeviceFullFallsBackToColdStarts(t *testing.T) {
	po, _ := faultyPorter(t, 1<<30, []faultinject.Rule{{
		Kind:  faultinject.DeviceFull,
		Step:  faultinject.StepPorterRestore,
		Node:  faultinject.AnyNode,
		Count: 1 << 30,
	}})
	res := po.Run(steadyTrace(30, 30*des.Millisecond))
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	if res.ColdForks != 0 {
		t.Fatalf("ColdForks = %d despite device-full on every restore", res.ColdForks)
	}
	if res.ScratchCold == 0 {
		t.Fatal("no scratch cold starts recorded")
	}
	if res.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1", res.Fallbacks)
	}
}

// TestFullDeviceDegradesToColdStarts is the acceptance scenario for a
// genuinely full device: CXL capacity too small for any checkpoint.
// Setup succeeds anyway (the function is marked for scratch cold
// starts), the trace completes without errors or panics, and the
// fallback counter records the degradation.
func TestFullDeviceDegradesToColdStarts(t *testing.T) {
	po, c := faultyPorter(t, 1<<20, nil) // 256 pages: no checkpoint fits
	if _, ok := po.Store().Get("tenant0", "Tiny"); ok {
		t.Fatal("a checkpoint fit on a full device")
	}
	res := po.Run(steadyTrace(30, 30*des.Millisecond))
	if res.Completed != 30 {
		t.Fatalf("completed %d of 30", res.Completed)
	}
	if res.ScratchCold == 0 {
		t.Fatal("no scratch cold starts despite missing checkpoint")
	}
	if res.Fallbacks < 1 {
		t.Fatalf("Fallbacks = %d, want >= 1", res.Fallbacks)
	}
	// The failed checkpoint rolled back: the device is clean.
	if got := c.Dev.UsedBytes(); got != 0 {
		t.Fatalf("device retains %d bytes after rollback", got)
	}
}

// TestAllNodesDownFailsSetup verifies provisioning reports ErrNodeDown
// cleanly (no panic) when no node survives.
func TestAllNodesDownFailsSetup(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	c := cluster.MustNew(p, 2)
	c.Faults.CrashNode(0)
	c.Faults.CrashNode(1)
	mech := core.New(c.Dev)
	mech.Faults = c.Faults
	po := porter.New(c, porter.Config{
		Mechanism: mech,
		Profiles:  profiles("CXLfork"),
		Seed:      1,
	})
	err := po.Setup([]faas.Spec{tinySpec()})
	if err == nil {
		t.Fatal("Setup succeeded with every node down")
	}
}

// TestFabricDegradeDuringTrace opens a degradation window at the first
// porter restore and checks the run still completes every request.
func TestFabricDegradeDuringTrace(t *testing.T) {
	po, _ := faultyPorter(t, 1<<30, []faultinject.Rule{{
		Kind:   faultinject.FabricDegrade,
		Step:   faultinject.StepPorterRestore,
		Node:   faultinject.AnyNode,
		Factor: 4,
		Window: des.Second,
	}})
	res := po.Run(steadyTrace(40, 20*des.Millisecond))
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
	if res.InjectedFaults < 1 {
		t.Fatalf("InjectedFaults = %d", res.InjectedFaults)
	}
}
