package porter_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/memsim"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

func TestParseEvictPolicy(t *testing.T) {
	cases := map[string]porter.EvictPolicy{
		"":            porter.EvictCostBenefit,
		"costbenefit": porter.EvictCostBenefit,
		"lru":         porter.EvictLRU,
		"largest":     porter.EvictLargest,
	}
	for s, want := range cases {
		got, err := porter.ParseEvictPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseEvictPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := porter.ParseEvictPolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestReclaimLargestDedupAware checkpoints two instances of the same
// function (whose frames dedup into each other) and verifies the store
// reports reclaim sizes equal to the true device occupancy delta, not
// the sum of declared footprints.
func TestReclaimLargestDedupAware(t *testing.T) {
	p := params.Default()
	c := cluster.MustNew(p, 1)
	mech := core.New(c.Dev)
	st := porter.NewObjectStore()
	spec := tinySpec()
	faas.RegisterFiles(c.FS, c.P, spec)
	if err := faas.WarmLibraries(c.Nodes[0], spec); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var declared int64
	for i := 0; i < 2; i++ {
		in, err := faas.NewInstance(c.Nodes[0], spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.ColdInit(); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Invoke(rng); err != nil {
			t.Fatal(err)
		}
		img, err := mech.Checkpoint(in.Task, fmt.Sprintf("cid-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		in.Exit()
		declared += img.CXLBytes()
		st.Put("t", fmt.Sprintf("fn%d", i), img)
	}
	if c.Dev.Dedup.Hits.Value() == 0 {
		t.Fatal("twin checkpoints did not dedup — test premise broken")
	}
	before := c.Dev.UsedBytes()
	freed := st.ReclaimLargest(1 << 62)
	delta := before - c.Dev.UsedBytes()
	if freed != delta {
		t.Fatalf("ReclaimLargest reported %d freed, device delta %d", freed, delta)
	}
	// The old accounting would have reported the declared sum, which
	// double-counts every shared frame.
	if freed >= declared {
		t.Fatalf("freed %d not below declared %d despite dedup sharing", freed, declared)
	}
	if c.Dev.UsedBytes() != 0 {
		t.Fatalf("device not empty after full reclaim: %d", c.Dev.UsedBytes())
	}
}

// bigSpec is a second function with a larger footprint than Tiny.
func bigSpec() faas.Spec {
	s := tinySpec()
	s.Name = "Big"
	s.FootprintBytes = 24 << 20
	s.InitTouchFrac = 0.5
	return s
}

// twoFnProfiles gives Tiny a huge cold-start penalty (expensive to
// lose) and Big a tiny one (cheap to lose), so cost-benefit and
// largest-first disagree about the right victim.
func twoFnProfiles(mech string) map[porter.ProfileKey]porter.Profile {
	tiny := porter.Profile{
		Restore: 2 * des.Millisecond, ColdExec: 15 * des.Millisecond,
		WarmExec: 10 * des.Millisecond, LocalPages: 256,
		ColdInit: 800 * des.Millisecond, ColdInitExec: 12 * des.Millisecond,
		FootprintPages: 2048,
	}
	big := porter.Profile{
		Restore: 2 * des.Millisecond, ColdExec: 15 * des.Millisecond,
		WarmExec: 10 * des.Millisecond, LocalPages: 512,
		ColdInit: 20 * des.Millisecond, ColdInitExec: 16 * des.Millisecond,
		FootprintPages: 6144,
	}
	out := map[porter.ProfileKey]porter.Profile{}
	for _, pol := range []rfork.Policy{rfork.MigrateOnWrite, rfork.MigrateOnAccess, rfork.HybridTiering} {
		out[porter.ProfileKey{Function: "Tiny", Mechanism: mech, Policy: pol}] = tiny
		out[porter.ProfileKey{Function: "Big", Mechanism: mech, Policy: pol}] = big
	}
	return out
}

// pressurePorter provisions Tiny and Big, then fills the device to the
// high watermark so the next arrival forces exactly one eviction
// (narrow watermark gap).
func pressurePorter(t *testing.T, policy string) (*porter.Porter, *cluster.Cluster) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 128 << 20
	p.EvictPolicy = policy
	p.CXLHighWatermark = 0.90
	p.CXLLowWatermark = 0.88
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism: core.New(c.Dev),
		Profiles:  twoFnProfiles("CXLfork"),
		Seed:      1,
	})
	if err := po.Setup([]faas.Spec{tinySpec(), bigSpec()}); err != nil {
		t.Fatal(err)
	}
	tinyImg, ok1 := po.Store().Get("tenant0", "Tiny")
	bigImg, ok2 := po.Store().Get("tenant0", "Big")
	if !ok1 || !ok2 {
		t.Fatal("setup did not register both checkpoints")
	}
	if bigImg.CXLBytes() <= tinyImg.CXLBytes() {
		t.Fatalf("Big (%d) not larger than Tiny (%d)", bigImg.CXLBytes(), tinyImg.CXLBytes())
	}
	pool := c.Dev.Pool()
	for c.Dev.Utilization() < 0.91 {
		pool.MustAlloc()
	}
	return po, c
}

// TestEvictPolicyChoosesVictim checks the three policies rank victims
// differently: largest-first drops the big image, cost-benefit keeps
// the expensive-to-rebuild one, LRU drops the least recently restored.
func TestEvictPolicyChoosesVictim(t *testing.T) {
	t.Run("largest", func(t *testing.T) {
		po, _ := pressurePorter(t, "largest")
		res := po.Run(steadyTrace(1, 0))
		if res.EvictedCkpts != 1 {
			t.Fatalf("evictions = %d, want 1", res.EvictedCkpts)
		}
		if _, ok := po.Store().Get("tenant0", "Big"); ok {
			t.Fatal("largest-first kept the big image")
		}
		if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
			t.Fatal("largest-first dropped the small image")
		}
	})
	t.Run("costbenefit", func(t *testing.T) {
		po, _ := pressurePorter(t, "costbenefit")
		res := po.Run(steadyTrace(1, 0))
		if res.EvictedCkpts != 1 {
			t.Fatalf("evictions = %d, want 1", res.EvictedCkpts)
		}
		// Big's cold start is nearly free: it is the cheap victim even
		// though Tiny frees fewer bytes.
		if _, ok := po.Store().Get("tenant0", "Big"); ok {
			t.Fatal("cost-benefit kept the cheap-to-rebuild image")
		}
		if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
			t.Fatal("cost-benefit dropped the expensive-to-rebuild image")
		}
	})
	t.Run("lru", func(t *testing.T) {
		po, _ := pressurePorter(t, "lru")
		// Tiny restored more recently than Big.
		po.Store().Touch("tenant0", "Big", 1*des.Second)
		po.Store().Touch("tenant0", "Tiny", 2*des.Second)
		res := po.Run(steadyTrace(1, 0))
		if res.EvictedCkpts != 1 {
			t.Fatalf("evictions = %d, want 1", res.EvictedCkpts)
		}
		if _, ok := po.Store().Get("tenant0", "Big"); ok {
			t.Fatal("LRU kept the older image")
		}
		if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
			t.Fatal("LRU dropped the recently restored image")
		}
	})
}

// TestEvictedBytesMatchOccupancyDelta drives a full eviction cycle and
// checks the capacity counters report true device deltas.
func TestEvictedBytesMatchOccupancyDelta(t *testing.T) {
	po, c := pressurePorter(t, "costbenefit")
	before := c.Dev.UsedBytes()
	res := po.Run(steadyTrace(1, 0))
	freedByDevice := before - c.Dev.UsedBytes()
	// The run also allocates nothing persistent on the device besides
	// the eviction (the request is served from node DRAM), so the
	// occupancy delta is exactly the evicted bytes.
	if res.EvictedBytes != freedByDevice {
		t.Fatalf("EvictedBytes %d != device delta %d", res.EvictedBytes, freedByDevice)
	}
	if res.EvictedBytes <= 0 {
		t.Fatal("nothing evicted")
	}
	if res.DeferredBytes != 0 {
		t.Fatalf("DeferredBytes = %d with no pinned images", res.DeferredBytes)
	}
}

// TestEvictionDefersPinnedImage pins the only checkpoint (as a live
// clone reference would) and checks eviction frees nothing, defers the
// declared bytes, and never invalidates the image's frames.
func TestEvictionDefersPinnedImage(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 24 << 20
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism: core.New(c.Dev),
		Profiles:  profiles("CXLfork"),
		Seed:      1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	img, _ := po.Store().Get("tenant0", "Tiny")
	img.Retain() // simulate a live clone
	pool := c.Dev.Pool()
	for c.Dev.Utilization() < 0.92 {
		pool.MustAlloc()
	}
	used := c.Dev.UsedBytes()
	res := po.Run(steadyTrace(5, 100*des.Millisecond))
	if res.EvictedCkpts == 0 {
		t.Fatal("pinned image never evicted from the store")
	}
	if res.EvictedBytes != 0 {
		t.Fatalf("EvictedBytes = %d for a pinned image", res.EvictedBytes)
	}
	if res.DeferredBytes == 0 {
		t.Fatal("pinned eviction not counted as deferred")
	}
	if got := c.Dev.UsedBytes(); got < used {
		t.Fatalf("device shrank (%d -> %d) while the image was pinned", used, got)
	}
	if img.Refs() != 1 {
		t.Fatalf("refs = %d after store release", img.Refs())
	}
	// The last reference frees the image's exclusive bytes.
	predicted := used - c.Dev.UsedBytes() // growth during the run
	_ = predicted
	before := c.Dev.UsedBytes()
	img.Release()
	if c.Dev.UsedBytes() >= before {
		t.Fatal("final release freed nothing")
	}
}

// TestRecheckpointAfterEviction evicts Tiny's checkpoint under
// pressure, then releases the pressure and checks the porter
// re-publishes the checkpoint from its snapshot after CheckpointAfter
// further completions.
func TestRecheckpointAfterEviction(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 24 << 20
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism: core.New(c.Dev),
		Profiles:  profiles("CXLfork"),
		Seed:      1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	pool := c.Dev.Pool()
	var filler []*memsim.Frame
	for c.Dev.Utilization() < 0.92 {
		filler = append(filler, pool.MustAlloc())
	}
	// Pressure vanishes half a second into the trace.
	c.Eng.At(c.Eng.Now()+500*des.Millisecond, func() {
		for _, f := range filler {
			pool.Put(f)
		}
	})
	res := po.Run(steadyTrace(40, 100*des.Millisecond))
	if res.EvictedCkpts == 0 {
		t.Fatal("no eviction under pressure")
	}
	if res.Recheckpoints == 0 {
		t.Fatal("checkpoint never re-published after pressure lifted")
	}
	if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
		t.Fatal("re-published checkpoint not in store")
	}
	if res.ScratchCold == 0 {
		t.Fatal("expected scratch cold starts while evicted")
	}
	if res.Completed != 40 {
		t.Fatalf("completed %d of 40", res.Completed)
	}
}

// TestAdmissionRefusedUnderSustainedPressure keeps the device hot for
// the whole trace: the re-checkpoint admission must refuse (the
// degradation ladder's middle rung) and the function must keep running
// on scratch cold starts.
func TestAdmissionRefusedUnderSustainedPressure(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 24 << 20
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism: core.New(c.Dev),
		Profiles:  profiles("CXLfork"),
		Seed:      1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	pool := c.Dev.Pool()
	for c.Dev.Utilization() < 0.92 {
		pool.MustAlloc()
	}
	res := po.Run(steadyTrace(20, 100*des.Millisecond))
	if res.CkptRefused == 0 {
		t.Fatal("admission never refused under sustained pressure")
	}
	if res.Recheckpoints != 0 {
		t.Fatalf("re-published %d checkpoints with the device full", res.Recheckpoints)
	}
	if _, ok := po.Store().Get("tenant0", "Tiny"); ok {
		t.Fatal("checkpoint present despite refusals")
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d of 20", res.Completed)
	}
}

// TestCapacityDeterminism replays the full evict/re-publish cycle twice
// from scratch and requires identical fingerprints.
func TestCapacityDeterminism(t *testing.T) {
	run := func() uint64 {
		p := params.Default()
		p.NodeDRAMBytes = 1 << 30
		p.CXLBytes = 24 << 20
		c := cluster.MustNew(p, 2)
		po := porter.New(c, porter.Config{
			Mechanism: core.New(c.Dev),
			Profiles:  profiles("CXLfork"),
			Seed:      7,
		})
		if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
			t.Fatal(err)
		}
		pool := c.Dev.Pool()
		var filler []*memsim.Frame
		for c.Dev.Utilization() < 0.92 {
			filler = append(filler, pool.MustAlloc())
		}
		c.Eng.At(c.Eng.Now()+500*des.Millisecond, func() {
			for _, f := range filler {
				pool.Put(f)
			}
		})
		return po.Run(steadyTrace(40, 100*des.Millisecond)).Fingerprint()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("capacity run not deterministic: %x vs %x", a, b)
	}
}
