package porter

import (
	"errors"
	"sort"

	"cxlfork/internal/azure"
	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/metrics"
	"cxlfork/internal/replica"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
	"cxlfork/internal/xray"
)

// Run replays an arrival trace and returns latency and utilization
// results. Event handlers never advance the clock directly; all costs
// are expressed as scheduled durations, so concurrent requests overlap
// correctly on the engine.
func (p *Porter) Run(trace []azure.Request) Results {
	eng := p.c.Eng
	p.res = Results{
		Overall:        metrics.NewLatencyRecorder(),
		PerFunction:    make(map[string]*metrics.LatencyRecorder),
		MemGauge:       make(map[string]*metrics.Gauge),
		ColdLatency:    metrics.NewLatencyRecorder(),
		RestoreLatency: metrics.NewLatencyRecorder(),
	}
	for fn := range p.fns {
		p.res.PerFunction[fn] = metrics.NewLatencyRecorder()
	}
	for _, n := range p.nodes {
		p.res.MemGauge[n.os.Name] = &metrics.Gauge{}
	}
	base := eng.Now()
	p.base = base
	p.lastDone = base
	p.window = 0
	var last des.Time
	for _, r := range trace {
		r := r
		eng.At(base+r.At, func() { p.arrive(r.Function) })
		if r.At > last {
			last = r.At
		}
	}
	p.window = last

	// Periodic A-bit reset on CXL checkpoints to re-estimate hot pages
	// (§4.3, §5). Only checkpoints that expose the interface (CXLfork's)
	// participate.
	type aBitResetter interface{ ClearABits() int }
	var resetTick func()
	resetTick = func() {
		if eng.Now() >= base+last {
			return
		}
		for _, st := range p.fns {
			if img, ok := p.store.Get(p.cfg.User, st.spec.Name); ok {
				if ck, ok := img.(aBitResetter); ok {
					ck.ClearABits()
				}
			}
		}
		eng.After(p.c.P.ABitResetPeriod, resetTick)
	}
	if p.cfg.DynamicTiering {
		eng.After(p.c.P.ABitResetPeriod, resetTick)
	}

	// Arm the plan's device-loss schedule: a firing rule permanently
	// fails the pool device and prunes its replicas, opening the repair
	// window.
	p.c.Faults.ArmDeviceLoss(func(dev int) {
		p.c.Pool.Fail(dev)
		if p.rep != nil {
			p.rep.OnDeviceLoss(dev)
		}
	})

	// Anti-entropy repair: every RepairPeriod, copy up to the bandwidth
	// budget of pages toward restoring full replication (DESIGN.md §12).
	if p.rep != nil && p.c.P.RepairPeriod > 0 {
		eng.Every(p.c.P.RepairPeriod, func() bool {
			if eng.Now() >= base+last {
				return false
			}
			p.rep.RepairTick()
			return true
		})
	}

	// Background capacity reclaim: re-check the device watermarks every
	// CXLReclaimPeriod for the duration of the arrival window, so
	// occupancy growth between arrivals (re-checkpoints, dedup decay)
	// is bounded even during arrival lulls.
	if period := p.c.P.CXLReclaimPeriod; period > 0 {
		eng.Every(period, func() bool {
			if eng.Now() >= base+last {
				return false
			}
			p.maybeReclaim()
			return true
		})
	}

	// Telemetry sampling: probe every registered series on the virtual
	// clock for the duration of the arrival window, then evaluate SLO
	// burn rates (DESIGN.md §11). Probes are read-only, so the tick's
	// only effect on the event heap is its own presence — results are
	// identical with sampling on or off.
	if p.telem != nil {
		p.sampleTelemetry(eng.Now())
		if every := p.telem.SampleEvery(); every > 0 {
			eng.Every(every, func() bool {
				if eng.Now() >= base+last {
					return false
				}
				p.sampleTelemetry(eng.Now())
				return true
			})
		}
	}

	p.observeMem()
	eng.Run()
	p.res.Duration = p.lastDone - base
	if p.telem != nil {
		// Final sample so the exports include end-of-run state.
		p.sampleTelemetry(eng.Now())
	}

	// Availability accounting: mirror the cluster plan's fault counters
	// (which cover Setup as well as the trace) into the results.
	fc := &p.c.Faults.Counters
	p.res.InjectedFaults = fc.Injected.Value()
	p.res.Retries = fc.Retries.Value()
	p.res.Fallbacks = fc.Fallbacks.Value()
	p.res.RecoveredBytes = fc.RecoveredBytes.Value()
	p.res.RetryExhausted = fc.RetryExhausted.Value()

	// Replication accounting: mirror the replica manager's counters and
	// the repair loop's convergence into the results.
	if p.rep != nil {
		rc := &p.rep.C
		p.res.ReplicasPlaced = rc.Placed.Value()
		p.res.ReplicasShed = rc.Shed.Value()
		p.res.RepairCopies = rc.RepairCopies.Value()
		p.res.RepairedPages = rc.RepairedPages.Value()
		p.res.LostImages = rc.LostImages.Value()
		p.res.Failovers = rc.Failovers.Value()
		p.res.UnderReplicated = int64(p.rep.UnderReplication())
		if d, ok := p.rep.ConvergenceTime(); ok {
			p.res.RepairConverged = d
			p.res.RepairConvergedOK = true
		}
	}

	// Dedup accounting: mirror every pool device's content-addressed
	// frame cache counters (covering Setup checkpoints, replica
	// placement, and any trace-time re-checkpoints) into the results.
	for i := 0; i < p.c.Pool.N(); i++ {
		dc := &p.c.Pool.Device(i).Dedup
		p.res.DedupHits += dc.Hits.Value()
		p.res.DedupMisses += dc.Misses.Value()
		p.res.DedupBytesSaved += dc.BytesSaved.Value()
	}

	// Capacity accounting: mirror the eviction engine's counters (which
	// cover Setup admission as well as the trace) into the results.
	cc := &p.capc
	p.res.ReclaimPasses = cc.ReclaimPasses.Value()
	p.res.EvictedCkpts = cc.Evictions.Value()
	p.res.EvictedBytes = cc.EvictedBytes.Value()
	p.res.DeferredBytes = cc.DeferredBytes.Value()
	p.res.CkptRefused = cc.AdmitRefused.Value()
	p.res.Recheckpoints = cc.Recheckpoints.Value()

	// Fabric accounting: mirror the topology contention model's
	// counters (all zero on flat or trivial topologies).
	if p.fabNet != nil {
		p.res.FabricTransfers = p.fabNet.Transfers()
		p.res.FabricQueued = p.fabNet.Queued()
		p.res.FabricQueueDelay = p.fabNet.QueueDelay()
		p.res.FabricExtraDelay = p.fabNet.Charged()
	}

	// Observability accounting: surface tracer and telemetry data loss
	// plus SLO activity in the results so run summaries can print them.
	// None of these fields participate in Fingerprint().
	p.res.TraceDropped = p.c.Trace.Dropped()
	p.res.TelemetrySamples = p.telem.Ticks()
	p.res.TelemetryDropped = p.telem.Dropped()
	p.res.SLOAlertsFired = p.slo.Fired()

	// Presort the latency recorders on the worker pool before the
	// caller's summary pass reads percentiles. Each recorder sorts its
	// own buffer, sorting is order-insensitive, and the replay itself
	// is already over — so SimWorkers > 1 cannot change any result,
	// only the wall-clock cost of the O(n log n) at scale (a
	// million-request trace sorts ~1M samples here).
	recs := []*metrics.LatencyRecorder{p.res.Overall, p.res.ColdLatency, p.res.RestoreLatency}
	for _, r := range p.res.PerFunction {
		recs = append(recs, r)
	}
	p.c.Sim.Each(len(recs), func(i int) { recs[i].Presort() })
	return p.res
}

// arrive handles one request arrival.
func (p *Porter) arrive(fn string) {
	p.maybeReclaim()
	if st := p.fns[fn]; st != nil {
		st.demand++
	}
	req := &pending{fn: fn, arrived: p.c.Eng.Now()}
	if inst := p.findIdle(fn); inst != nil {
		p.serve(inst, req)
		return
	}
	if p.trySpawn(fn, req) {
		return
	}
	p.fns[fn].queue = append(p.fns[fn].queue, req)
}

// findIdle pops the most recently idled instance of fn (warmest caches).
func (p *Porter) findIdle(fn string) *instance {
	var best *instance
	for _, n := range p.nodes {
		list := n.idle[fn]
		if len(list) == 0 {
			continue
		}
		cand := list[len(list)-1]
		if best == nil || cand.idleSince > best.idleSince {
			best = cand
		}
	}
	if best == nil {
		return nil
	}
	p.removeIdle(best)
	return best
}

func (p *Porter) removeIdle(in *instance) {
	list := in.node.idle[in.fn]
	for i, x := range list {
		if x == in {
			in.node.idle[in.fn] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if in.hasExpire {
		p.c.Eng.Cancel(in.expire)
		in.hasExpire = false
	}
}

// serve runs one warm invocation of req on inst.
func (p *Porter) serve(inst *instance, req *pending) {
	inst.state = instBusy
	prof := p.profile(inst.fn, inst.policy)
	dur := p.jitter(prof.WarmExec)
	p.res.WarmStarts++
	submit := p.c.Eng.Now()
	inst.node.cpu.Exec(dur, func(end des.Time) {
		span := p.c.Trace.EmitFlow(inst.node.os.Index, trace.CatPorter, "warm-start", end-dur, dur, 0, 0)
		if p.c.XRay.Enabled() {
			execStart := end - dur
			p.c.XRay.Observe(xray.Request{
				Class:   "warm-start",
				Name:    inst.fn,
				Span:    int(span),
				Arrived: int64(req.arrived),
				Latency: int64(end - req.arrived),
				Device:  -1,
				Components: []xray.Component{
					{Name: xray.CompPorterQueue, NS: int64(submit - req.arrived)},
					{Name: xray.CompCPUQueue, NS: int64(execStart - submit)},
					{Name: xray.CompExec, NS: int64(dur)},
				},
			})
		}
		inst.warmRuns++
		p.complete(inst, req, end)
	})
}

// trySpawn starts a new instance of fn to serve req. It returns false
// when neither memory nor checkpoints allow it right now. Injected
// restore faults degrade gracefully: a crashed target node is excluded
// and the restore retried elsewhere; a transient device-full falls back
// to a scratch cold start.
func (p *Porter) trySpawn(fn string, req *pending) bool {
	st := p.fns[fn]
	img, haveCkpt := p.store.Get(p.cfg.User, fn)
	excluded := make(map[*nodeState]bool)

	// t0 is the spawn decision instant; everything before it is porter
	// queueing. probeNS/backoffNS split failoverDelay for attribution.
	t0 := p.c.Eng.Now()
	var probeNS, backoffNS des.Time

	// Per-request retry budget, shared by replica failovers and
	// node-down retries. Exhausting it degrades the request to a
	// scratch cold start and counts retry_exhausted — not a generic
	// fallback (satellite accounting fix).
	attempts := 0
	budget := p.c.P.RestoreRetryBudget
	exhausted := func() bool {
		if budget > 0 && attempts >= budget {
			p.c.Faults.Counters.RetryExhausted.Inc()
			return true
		}
		return false
	}
	var failoverDelay des.Time

	// Replica failover: walk the checkpoint's preference list before
	// placement. A dead device ahead of the first healthy replica costs
	// a probe timeout plus one backed-off retry, charged to the spawn
	// in virtual time. An image with no healthy replica left is lost:
	// drop it (and its snapshot — the data is gone, re-publication
	// cannot resurrect it) and serve the request from scratch.
	if haveCkpt && p.rep != nil {
		if rimg, ok := img.(*replica.Image); ok {
			healthy, deadAhead := p.rep.Probe(rimg.Key())
			switch {
			case healthy == 0:
				p.res.FailedRestores++
				p.store.Reclaim(p.cfg.User, fn)
				delete(p.snaps, fn)
				img, haveCkpt = nil, false
			case deadAhead > 0:
				for i := 0; i < deadAhead && haveCkpt; i++ {
					if exhausted() {
						haveCkpt = false
						break
					}
					bo := p.backoff(attempts)
					failoverDelay += p.c.P.ReplicaFailoverTimeout + bo
					probeNS += p.c.P.ReplicaFailoverTimeout
					backoffNS += bo
					attempts++
					p.c.Faults.Counters.Retries.Inc()
				}
				if haveCkpt {
					p.rep.C.Failovers.Inc()
				}
			}
		}
	}

	pol := st.policy
	var prof Profile
	var pages int
	var dur des.Time
	var remoteCopy des.Time
	var node *nodeState
	var useGhost bool
	for {
		if haveCkpt {
			prof = p.profile(fn, pol)
			pages = prof.LocalPages
			remoteCopy = p.jitter(prof.RemoteCopy)
			dur = p.jitter(prof.Restore + prof.ColdExec - prof.RemoteCopy)
		} else {
			prof = p.profile(fn, rfork.MigrateOnWrite)
			pages = prof.FootprintPages
			remoteCopy = 0
			dur = p.jitter(prof.ColdInit + prof.ColdInitExec)
		}

		node, useGhost = p.placeOn(fn, pages, excluded)
		if node == nil {
			return false
		}
		if !haveCkpt {
			break
		}
		err := p.c.Faults.At(faultinject.StepPorterRestore, node.os.Index)
		if err == nil {
			break
		}
		if errors.Is(err, rfork.ErrNodeDown) {
			// The restore target died: retry on an alternate node after
			// a backed-off delay, if the request's budget allows it.
			excluded[node] = true
			p.c.Faults.Counters.Retries.Inc()
			if exhausted() {
				haveCkpt = false
				continue
			}
			bo := p.backoff(attempts)
			failoverDelay += bo
			backoffNS += bo
			attempts++
			continue
		}
		// Transient device-full (or other image trouble): degrade this
		// spawn to a scratch cold start, which needs no device capacity.
		haveCkpt = false
		p.c.Faults.Counters.Fallbacks.Inc()
	}
	// Blame split of the jittered service core: the restore (or
	// cold-init) share versus execution, proportional to the profile's
	// unjittered parts with the integer remainder charged to exec, so
	// the per-request component sum stays exact.
	core := dur
	var restoreSvc des.Time
	restoreComp := xray.CompRestore
	if haveCkpt {
		if denom := prof.Restore + prof.ColdExec - prof.RemoteCopy; denom > 0 {
			restoreSvc = des.Time(int64(core) * int64(prof.Restore) / int64(denom))
		}
	} else {
		restoreComp = xray.CompColdInit
		if denom := prof.ColdInit + prof.ColdInitExec; denom > 0 {
			restoreSvc = des.Time(int64(core) * int64(prof.ColdInit) / int64(denom))
		}
	}
	execSvc := core - restoreSvc
	dur += failoverDelay

	// Fabric charge: price the restore's path latency and per-link
	// stream contention from the nearest healthy replica to the chosen
	// node (DESIGN.md §14). The stream is sized by the image's full
	// footprint — a cold fork's remote traffic is the whole resident
	// image, read over the fabric across restore and first execution —
	// so a restore storm against one device genuinely saturates that
	// device's link. Only non-trivial topologies carry a Net, and only
	// the differential over the flat single-hop baseline is added —
	// the flat model stays byte-identical.
	var fabricExtra des.Time
	devIdx := -1
	if haveCkpt && p.fabNet != nil {
		host := p.c.HostOf(node.os.Index)
		dev := 0
		if p.rep != nil {
			if rimg, ok := img.(*replica.Image); ok {
				if d := p.rep.NearestHealthy(rimg.Key(), host); d >= 0 {
					dev = d
				}
			}
		}
		fabricExtra = p.fabNet.Restore(host, dev, prof.FootprintPages, p.c.Eng.Now())
		dur += fabricExtra
		devIdx = dev
	}
	if haveCkpt && p.res.RestoreLatency != nil {
		p.res.RestoreLatency.Record(prof.Restore + failoverDelay + fabricExtra)
	}

	ghostPages := int(p.c.P.GhostContainerBytes / int64(p.c.P.PageSize))
	ownsCtr := false
	var containerNS des.Time
	if useGhost && haveCkpt {
		node.ghosts[fn]--
		dur += p.c.P.GhostContainerTrigger
		containerNS = p.c.P.GhostContainerTrigger
		p.replenishGhosts(node, fn)
	} else {
		// Fresh container: creation cost plus its fixed overhead.
		dur += p.c.P.ContainerCreate
		containerNS = p.c.P.ContainerCreate
		pages += ghostPages
		ownsCtr = true
	}
	node.usedPages += pages
	p.observeMem()

	inst := &instance{fn: fn, node: node, policy: pol, pages: pages, ownsCtr: ownsCtr, state: instSpawning}
	node.all[inst] = true
	req.cold = true
	if haveCkpt {
		p.res.ColdForks++
		// Pin the image for the duration of the restore: eviction may
		// drop it from the store meanwhile, but its frames must outlive
		// every in-flight restore (the eviction-safety invariant).
		img.Retain()
		p.store.Touch(p.cfg.User, fn, p.c.Eng.Now())
		if st := p.fns[fn]; st != nil {
			st.scoreBase = p.agingL
		}
	} else {
		p.res.ScratchCold++
	}
	spanName := "fork-restore"
	if !haveCkpt {
		spanName = "scratch-cold"
	}
	restored := haveCkpt
	// cpuSubmit is when the spawn reached the CPU queue (after any
	// Mitosis uplink copy); uplinkNS is that copy's full span
	// including its stream-slot queueing.
	cpuSubmit := t0
	var uplinkNS des.Time
	finish := func(end des.Time) {
		span := p.c.Trace.EmitFlow(node.os.Index, trace.CatPorter, spanName, end-dur, dur, 0, pages)
		if p.c.XRay.Enabled() {
			execStart := end - dur
			// Restore blame accrued toward a request that degraded to
			// a scratch cold start never reaches the restore-latency
			// recorder — account it as unattributed instead of losing
			// it (the NewDES lookahead / per-link charge drop fix).
			var unattr des.Time
			if !restored {
				unattr = probeNS + backoffNS
			}
			p.c.XRay.Observe(xray.Request{
				Class:   spanName,
				Name:    fn,
				Span:    int(span),
				Arrived: int64(req.arrived),
				Latency: int64(end - req.arrived),
				Device:  devIdx,
				Components: []xray.Component{
					{Name: xray.CompPorterQueue, NS: int64(t0 - req.arrived)},
					{Name: xray.CompUplink, NS: int64(uplinkNS)},
					{Name: xray.CompCPUQueue, NS: int64(execStart - cpuSubmit)},
					{Name: xray.CompProbe, NS: int64(probeNS)},
					{Name: xray.CompBackoff, NS: int64(backoffNS)},
					{Name: xray.CompFabric, NS: int64(fabricExtra)},
					{Name: restoreComp, NS: int64(restoreSvc)},
					{Name: xray.CompContainer, NS: int64(containerNS)},
					{Name: xray.CompExec, NS: int64(execSvc)},
				},
				UnattributedNS: int64(unattr),
			})
		}
		if restored {
			img.Release()
		}
		inst.warmRuns++
		p.complete(inst, req, end)
	}
	if remoteCopy > 0 {
		// Pull the pages through the parent node's uplink first, then
		// run the rest of the cold start on a local core.
		upStart := p.c.Eng.Now()
		p.parentUplink.Exec(remoteCopy, func(upEnd des.Time) {
			uplinkNS = upEnd - upStart
			cpuSubmit = upEnd
			node.cpu.Exec(dur, finish)
		})
	} else {
		node.cpu.Exec(dur, finish)
	}
	return true
}

// replenishGhosts provisions a fresh ghost container in the background
// (off the request critical path) to keep the per-function pool at its
// configured size (§5 maintains "a few configured but empty containers
// per function").
func (p *Porter) replenishGhosts(node *nodeState, fn string) {
	ghostPages := int(p.c.P.GhostContainerBytes / int64(p.c.P.PageSize))
	if node.ghosts[fn] >= p.cfg.GhostsPerFunction {
		return
	}
	if node.freePages() < ghostPages {
		// The consuming node is full: fall back to the least-loaded
		// surviving node with room, preferring one that already hosts fn
		// (a dedup-warm placement — see placeOn).
		node = p.ghostFallback(fn, ghostPages)
		if node == nil {
			return
		}
	}
	p.c.Eng.After(p.c.P.ContainerCreate, func() {
		if node.ghosts[fn] >= p.cfg.GhostsPerFunction || node.freePages() < ghostPages {
			return
		}
		node.ghosts[fn]++
		node.usedPages += ghostPages
		p.observeMem()
		p.pump()
	})
}

// placeOn picks a node with a free ghost (preferred) and enough memory,
// evicting idle instances if necessary. Crashed nodes and nodes in
// excluded are never candidates. It returns (nil, false) when no node
// can host the instance.
func (p *Porter) placeOn(fn string, pages int, excluded map[*nodeState]bool) (*nodeState, bool) {
	// Prefer nodes with a ghost for fn and room, least loaded first.
	cands := make([]*nodeState, 0, len(p.nodes))
	for _, n := range p.nodes {
		if excluded[n] || p.c.Faults.NodeDown(n.os.Index) {
			continue
		}
		cands = append(cands, n)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		li := cands[i].cpu.Busy() + cands[i].cpu.QueueLen()
		lj := cands[j].cpu.Busy() + cands[j].cpu.QueueLen()
		if li != lj {
			return li < lj
		}
		// Equal load: prefer the node already hosting fn. Its restores
		// and re-checkpoints run against device frames this function's
		// pages already deduped into, and its page cache is warm.
		return cands[i].hostsFn(fn) && !cands[j].hostsFn(fn)
	})
	if p.ghostsCompatible() {
		for _, n := range cands {
			if n.ghosts[fn] > 0 && n.freePages() >= pages {
				return n, true
			}
		}
	}
	for _, n := range cands {
		if n.freePages() >= pages {
			return n, false
		}
	}
	// Evict idle instances to make room (fastest reclaim path; the
	// keep-alive shortening handles the steady state, §5).
	for _, n := range cands {
		if p.evictFor(n, pages) {
			if p.ghostsCompatible() && n.ghosts[fn] > 0 {
				return n, true
			}
			return n, false
		}
	}
	return nil, false
}

// evictFor evicts the oldest idle instances on n until pages fit.
func (p *Porter) evictFor(n *nodeState, pages int) bool {
	for n.freePages() < pages {
		victim := p.oldestIdle(n)
		if victim == nil {
			return false
		}
		p.destroy(victim)
		p.res.Evictions++
	}
	return true
}

func (p *Porter) oldestIdle(n *nodeState) *instance {
	var oldest *instance
	for _, list := range n.idle {
		for _, in := range list {
			if oldest == nil || in.idleSince < oldest.idleSince {
				oldest = in
			}
		}
	}
	return oldest
}

// destroy tears an idle instance down, returning its sandbox to the
// ghost pool (the container overhead stays allocated).
func (p *Porter) destroy(in *instance) {
	p.removeIdle(in)
	in.state = instDead
	delete(in.node.all, in)
	ghostPages := int(p.c.P.GhostContainerBytes / int64(p.c.P.PageSize))
	release := in.pages
	if p.ghostsCompatible() {
		if in.ownsCtr {
			// The sandbox overhead stays allocated and joins the pool.
			release -= ghostPages
		}
		in.node.ghosts[in.fn]++
	}
	// CRIU-CXL containers are torn down entirely (in.pages includes the
	// overhead for every CRIU spawn, since ownsCtr is always true).
	in.node.usedPages -= release
	p.observeMem()
}

// complete finishes a request on inst.
func (p *Porter) complete(inst *instance, req *pending, end des.Time) {
	lat := end - req.arrived
	p.res.Overall.Record(lat)
	p.res.PerFunction[inst.fn].Record(lat)
	if req.cold && p.res.ColdLatency != nil {
		p.res.ColdLatency.Record(lat)
	}
	p.res.Completed++
	if end > p.lastDone {
		p.lastDone = end
	}
	if p.window > 0 && end <= p.base+p.window {
		p.res.WindowCompleted++
	}

	st := p.fns[inst.fn]
	if st.slo > 0 {
		ratio := float64(lat) / float64(st.slo)
		st.lateEWM = 0.7*st.lateEWM + 0.3*ratio
		p.maybePromote(st)
	}
	p.maybeRecheckpoint(inst)

	// Fast path: keep serving this function's queue with the instance.
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = append(st.queue[:0], st.queue[1:]...)
		p.serve(inst, next)
		return
	}

	inst.state = instIdle
	inst.idleSince = end
	inst.node.idle[inst.fn] = append(inst.node.idle[inst.fn], inst)
	window := p.c.P.KeepAlive
	if p.memPressure() {
		window = p.c.P.KeepAliveShort
	}
	inst.expire = p.c.Eng.After(window, func() {
		if inst.state == instIdle {
			p.destroy(inst)
			p.pump()
		}
	})
	inst.hasExpire = true

	p.pump()
}

// maybePromote switches a function from migrate-on-write to hybrid
// tiering when its latency EWMA exceeds the SLO — unless local memory
// utilization is above the HighMem threshold (§5).
func (p *Porter) maybePromote(st *fnState) {
	if !p.cfg.DynamicTiering || p.cfg.StaticPolicy != nil {
		return
	}
	if st.policy != rfork.MigrateOnWrite || st.lateEWM <= 1 {
		return
	}
	if p.memPressure() {
		return
	}
	st.policy = rfork.HybridTiering
	p.res.PolicyPromotions++
	// Running and idle instances adopt the new policy too: the porter
	// migrates their hot checkpointed pages to local memory over the
	// following invocations (modelled as an immediate profile switch;
	// the transition cost is a few MoA faults per instance).
	for _, n := range p.nodes {
		for in := range n.all {
			if in.fn == st.spec.Name {
				in.policy = rfork.HybridTiering
			}
		}
	}
}

// memPressure reports whether mean node utilization exceeds HighMem.
func (p *Porter) memPressure() bool {
	var u float64
	for _, n := range p.nodes {
		u += n.utilization()
	}
	return u/float64(len(p.nodes)) >= p.c.P.HighMemFraction
}

// pump retries queued requests, oldest first, after capacity frees up.
func (p *Porter) pump() {
	for {
		var st *fnState
		for _, s := range p.fns {
			if len(s.queue) == 0 {
				continue
			}
			if st == nil || s.queue[0].arrived < st.queue[0].arrived {
				st = s
			}
		}
		if st == nil {
			return
		}
		req := st.queue[0]
		if inst := p.findIdle(req.fn); inst != nil {
			st.queue = append(st.queue[:0], st.queue[1:]...)
			p.serve(inst, req)
			continue
		}
		if p.trySpawn(req.fn, req) {
			st.queue = append(st.queue[:0], st.queue[1:]...)
			continue
		}
		return
	}
}

// observeMem samples node memory utilization into the gauges.
func (p *Porter) observeMem() {
	if p.res.MemGauge == nil {
		return
	}
	for _, n := range p.nodes {
		if g, ok := p.res.MemGauge[n.os.Name]; ok {
			g.Observe(p.c.Eng.Now(), n.utilization())
		}
	}
}

// jitter multiplies a duration by U[0.9, 1.1) for realistic spread.
func (p *Porter) jitter(d des.Time) des.Time {
	return des.Time(float64(d) * (0.9 + 0.2*p.rng.Float64()))
}
