package porter

import (
	"errors"
	"fmt"
	"math/rand"

	"cxlfork/internal/cluster"
	"cxlfork/internal/container"
	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/fabric"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/metrics"
	"cxlfork/internal/replica"
	"cxlfork/internal/rfork"
	"cxlfork/internal/telemetry"
)

// Profile is the measured behaviour of one (function, mechanism,
// policy) combination, produced by mechanistic calibration runs.
type Profile struct {
	// Restore is the restore-phase latency.
	Restore des.Time
	// ColdExec is the first invocation's duration after restore,
	// including its fault costs.
	ColdExec des.Time
	// RemoteCopy is the portion of ColdExec spent copying pages from the
	// parent node (Mitosis only). Concurrent clones share the parent
	// node's uplink — the parent is a point of congestion (§3.1). Each
	// remote fault is a latency-bound ~1.6 GB/s stream, so the uplink
	// admits a handful of concurrent streams before queueing.
	RemoteCopy des.Time
	// WarmExec is the steady-state invocation duration.
	WarmExec des.Time
	// LocalPages is the instance's steady-state node-local footprint.
	LocalPages int
	// ColdInit is the full cold-start initialization time (no
	// checkpoint available), excluding container creation.
	ColdInit des.Time
	// ColdInitExec is the first invocation's duration after a scratch
	// cold start.
	ColdInitExec des.Time
	// FootprintPages is the full footprint (scratch cold start memory).
	FootprintPages int
}

// ProfileKey identifies a profile.
type ProfileKey struct {
	Function  string
	Mechanism string
	Policy    rfork.Policy
}

// Config tunes a porter deployment.
type Config struct {
	// Mechanism is the rfork design used for scaling.
	Mechanism rfork.Mechanism
	// Profiles maps every (function, mechanism, policy) the run may use.
	Profiles map[ProfileKey]Profile
	// StaticPolicy, when non-nil, pins the tiering policy (the paper's
	// CXLfork-MoW configuration). When nil and DynamicTiering is true,
	// the porter adapts per function.
	StaticPolicy *rfork.Policy
	// DynamicTiering enables SLO/memory driven policy adaptation (§5).
	DynamicTiering bool
	// GhostsPerFunction is the ghost container pool size per function
	// per node.
	GhostsPerFunction int
	// DisableGhosts turns the ghost container pool off entirely (every
	// spawn pays container creation) — the ablation for §5's ghost
	// containers.
	DisableGhosts bool
	// SLOFactor sets the per-function latency SLO as a multiple of its
	// all-local warm execution time (default 1.25).
	SLOFactor float64
	// User is the store key namespace.
	User string
	// Seed drives execution-time jitter.
	Seed int64
	// NodeBudgetBytes overrides the per-node memory budget of the
	// scaling model (default params.NodeDRAMBytes). Fig. 10c shrinks it
	// to 50% and 25%.
	NodeBudgetBytes int64
}

// parentUplinkStreams is how many concurrent remote-fault copy streams
// the Mitosis parent node sustains at full per-stream rate before
// queueing (§3.1's congestion point).
const parentUplinkStreams = 6

// instState is an instance's lifecycle state in the scheduler.
type instState int

const (
	instSpawning instState = iota
	instBusy
	instIdle
	instDead
)

// instance is one live function instance in the queue model.
type instance struct {
	fn        string
	node      *nodeState
	policy    rfork.Policy
	pages     int
	ownsCtr   bool // spawned a fresh container (owns its 512 KB overhead)
	state     instState
	idleSince des.Time
	expire    des.EventID
	hasExpire bool
	warmRuns  int
}

// nodeState is the per-node scheduler view.
type nodeState struct {
	os     *kernel.OS
	rt     *container.Runtime
	cpu    *des.Resource
	ghosts map[string]int // idle sandboxes per function

	budgetPages   int
	usedPages     int
	reservedPages int // Mitosis shadow copies pinned on this node

	idle map[string][]*instance
	all  map[*instance]bool
}

func (n *nodeState) freePages() int {
	return n.budgetPages - n.usedPages - n.reservedPages
}

func (n *nodeState) utilization() float64 {
	return float64(n.usedPages+n.reservedPages) / float64(n.budgetPages)
}

// fnState is per-function control state.
type fnState struct {
	spec    faas.Spec
	policy  rfork.Policy
	slo     des.Time
	lateEWM float64 // EWMA of latency/SLO ratio
	queue   []*pending
	// coldRuns counts completions since the function's checkpoint was
	// evicted; at CheckpointAfter the capacity manager re-publishes.
	coldRuns int
	// demand counts request arrivals over the whole run, resident or
	// not. Cost-benefit scoring uses it as popularity instead of the
	// store entry's restore counter for two reasons: the entry counter
	// resets on re-publication (a rebuilt hot checkpoint must not look
	// cold), and restores only accrue while resident — an evicted
	// checkpoint could never earn its way back in while every resident
	// kept climbing (once out, never back in).
	demand int64
	// scoreBase is the GDSF aging term: the capacity manager's aging
	// clock sampled when the function's checkpoint was last published
	// or restored. Added to the cost-benefit score, it lets stale
	// high-value images age out and currently-bursting functions win
	// admission (pure value scoring would refuse them forever).
	scoreBase float64
	// reckpting marks a snapshot re-publish in flight on some core.
	reckpting bool
}

type pending struct {
	fn      string
	arrived des.Time
	// cold marks a request served by a fresh spawn (fork restore or
	// scratch cold start) rather than a warm instance.
	cold bool
}

// Results summarizes a trace replay.
type Results struct {
	Overall     *metrics.LatencyRecorder
	PerFunction map[string]*metrics.LatencyRecorder
	Completed   int
	WarmStarts  int
	ColdForks   int // served by restoring a checkpoint
	ScratchCold int // served by full cold start (no checkpoint)
	Evictions   int
	// CkptReclaims counts pages of checkpoints reclaimed under CXL
	// memory pressure.
	CkptReclaims int
	// WindowCompleted counts requests that completed within the arrival
	// window (the throughput numerator: a saturated design leaves work
	// queued past the window).
	WindowCompleted int
	MemGauge        map[string]*metrics.Gauge
	// Duration is the makespan: first arrival to last completion.
	Duration des.Time
	// PolicyPromotions counts dynamic MoW→HT switches.
	PolicyPromotions int
	// InjectedFaults is the number of faults the cluster's plan fired
	// (setup and trace combined).
	InjectedFaults int64
	// Retries counts restores/checkpoints re-attempted on an alternate
	// node after a fault.
	Retries int64
	// Fallbacks counts degradations to scratch cold starts after a
	// fault made the fork path unusable.
	Fallbacks int64
	// RecoveredBytes counts bytes reclaimed from torn checkpoint arenas
	// by recovery passes.
	RecoveredBytes int64
	// DedupHits / DedupMisses count checkpoint page writes satisfied by
	// the device's content-addressed frame cache vs. fresh copies.
	DedupHits   int64
	DedupMisses int64
	// DedupBytesSaved counts fabric write bytes elided by dedup hits.
	DedupBytesSaved int64
	// ColdLatency records the end-to-end latency of requests that were
	// served by a fresh spawn (fork restore or scratch cold start) — the
	// cold-start tail the capacity experiment compares eviction policies
	// on.
	ColdLatency *metrics.LatencyRecorder
	// RestoreLatency records the restore phase of every checkpoint-fork
	// spawn: the profile restore cost plus failover probing plus any
	// fabric path/contention charge. It isolates what the fabric and
	// the placement policy control from execution time and CPU
	// queueing — the "restore P99" the fabric sweep compares policies
	// on. Excluded from Fingerprint() (the flat goldens predate it);
	// the same charges already reach the hash through Overall and
	// ColdLatency.
	RestoreLatency *metrics.LatencyRecorder
	// ReclaimPasses counts watermark-triggered eviction passes.
	ReclaimPasses int64
	// EvictedCkpts counts checkpoints dropped by the eviction engine.
	EvictedCkpts int64
	// EvictedBytes counts device bytes eviction actually freed (true
	// occupancy deltas; dedup-shared frames and clone-pinned images
	// contribute only what really came back).
	EvictedBytes int64
	// DeferredBytes counts declared footprint of evicted images whose
	// release waits on live clones or in-flight restores.
	DeferredBytes int64
	// CkptRefused counts checkpoint publications the admission ladder
	// refused because the device could not get under its high watermark.
	CkptRefused int64
	// Recheckpoints counts evicted checkpoints re-published from their
	// frame-token snapshots.
	Recheckpoints int64
	// FailedRestores counts requests that found every replica of their
	// checkpoint on failed devices — the image is lost and the request
	// degrades to a scratch cold start.
	FailedRestores int
	// RetryExhausted counts requests whose per-request retry budget ran
	// out (distinct from Fallbacks: policy degradation vs. giving up).
	RetryExhausted int64
	// Failovers counts restores served by a non-preferred replica after
	// probing one or more dead devices.
	Failovers int64
	// ReplicasPlaced counts replica arenas created by placement and
	// repair; ReplicasShed counts replicas dropped under capacity
	// pressure.
	ReplicasPlaced int64
	ReplicasShed   int64
	// RepairCopies / RepairedPages count the anti-entropy loop's
	// rebuilt replicas and copied pages.
	RepairCopies  int64
	RepairedPages int64
	// LostImages counts images whose last healthy replica's device
	// failed.
	LostImages int64
	// UnderReplicated is the end-of-run replica deficit.
	UnderReplicated int64
	// RepairConverged is how long the last repair took from device loss
	// to full replication; RepairConvergedOK reports whether such a
	// convergence happened.
	RepairConverged   des.Time
	RepairConvergedOK bool

	// Observability accounting, mirrored from the tracer and telemetry
	// registry after the run so drop-driven data loss is visible in run
	// summaries without reaching through the facade. These fields are
	// deliberately excluded from Fingerprint(): enabling observation
	// must not change what a run "is".
	//
	// TraceDropped counts span events the tracer discarded on buffer
	// overflow.
	TraceDropped int64
	// TelemetrySamples counts telemetry sample ticks taken.
	TelemetrySamples int64
	// TelemetryDropped counts telemetry ring-buffer overwrites across
	// all series.
	TelemetryDropped int64
	// SLOAlertsFired counts SLO burn-rate alert fire transitions.
	SLOAlertsFired int64

	// Fabric accounting, mirrored from the topology contention model
	// (internal/fabric.Net) after the run; all zero on flat or trivial
	// topologies. Excluded from Fingerprint() so the flat model's
	// pinned goldens are untouched — fabric behaviour reaches the hash
	// through the latency recorders and Duration instead.
	//
	// FabricTransfers counts restores priced by the fabric model.
	FabricTransfers int64
	// FabricQueued counts per-link stream-slot claims that had to wait.
	FabricQueued int64
	// FabricQueueDelay is cumulative virtual time spent waiting for
	// link slots.
	FabricQueueDelay des.Time
	// FabricExtraDelay is the cumulative extra restore delay charged
	// beyond the flat single-hop baseline.
	FabricExtraDelay des.Time
}

// Throughput returns requests completed within the arrival window per
// virtual second of makespan.
func (r Results) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.WindowCompleted) / r.Duration.Seconds()
}

// Porter is the autoscaler.
type Porter struct {
	c     *cluster.Cluster
	cfg   Config
	store *ObjectStore
	nodes []*nodeState
	fns   map[string]*fnState
	rng   *rand.Rand

	res      Results
	base     des.Time
	lastDone des.Time
	window   des.Time

	// parentUplink serializes Mitosis' remote-fault copies out of the
	// parent node (all parents live on node 0 after Setup).
	parentUplink *des.Resource

	// policy is the capacity manager's eviction policy (params.EvictPolicy).
	policy EvictPolicy
	// agingL is the cost-benefit policy's GDSF aging clock: the score
	// of the most valuable checkpoint evicted so far. Entries touched
	// after an eviction start from it, so scores are comparable across
	// time and recency breaks value ties.
	agingL float64
	// capc is the capacity manager's accounting, covering Setup and Run.
	capc metrics.CapacityCounters
	// snaps holds per-function frame-token snapshots of published
	// checkpoints, for re-publication after eviction.
	snaps map[string]*ckptSnapshot

	// rep replicates sealed checkpoints across the device pool; nil on
	// single-device clusters, where every replication path degenerates
	// to the original byte-identical behaviour.
	rep *replica.Manager
	// fabNet is the cluster's fabric contention model; nil when the
	// topology is absent or trivial, in which case no restore is ever
	// fabric-charged and the flat model stays byte-identical.
	fabNet *fabric.Net
	// backoffLog records every retry/failover backoff charged, in
	// order — the deterministic schedule the backoff regression test
	// compares across identically-seeded runs.
	backoffLog []des.Time

	// telem is the cluster's telemetry registry (nil when disabled);
	// slo evaluates burn-rate objectives after each sample tick.
	telem *telemetry.Registry
	slo   *telemetry.Engine
	// admits counts checkpoint publications (initial provisioning and
	// re-publications) for the admissions series.
	admits *telemetry.Counter
	// sloTighten, while the occupancy alert fires, drops checkpoint
	// admission from the high to the low watermark (DESIGN.md §11).
	sloTighten bool
}

// New creates a porter over a cluster.
func New(c *cluster.Cluster, cfg Config) *Porter {
	if cfg.SLOFactor == 0 {
		cfg.SLOFactor = 1.25
	}
	if cfg.GhostsPerFunction == 0 {
		cfg.GhostsPerFunction = 2
	}
	if cfg.User == "" {
		cfg.User = "tenant0"
	}
	pol, err := ParseEvictPolicy(c.P.EvictPolicy)
	if err != nil {
		panic(err)
	}
	p := &Porter{
		c:      c,
		cfg:    cfg,
		store:  NewObjectStore(),
		fns:    make(map[string]*fnState),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		policy: pol,
		snaps:  make(map[string]*ckptSnapshot),
	}
	if c.Pool != nil && c.Pool.N() > 1 {
		p.rep = replica.New(c.Pool, c.Eng, c.P)
	}
	p.fabNet = c.Net
	p.parentUplink = des.NewResource(c.Eng, parentUplinkStreams)
	budget := c.P.NodeDRAMBytes
	if cfg.NodeBudgetBytes > 0 {
		budget = cfg.NodeBudgetBytes
	}
	for _, os := range c.Nodes {
		p.nodes = append(p.nodes, &nodeState{
			os:          os,
			rt:          container.NewRuntime(os),
			cpu:         des.NewResource(c.Eng, c.P.CoresPerNode),
			ghosts:      make(map[string]int),
			budgetPages: int(budget / int64(c.P.PageSize)),
			idle:        make(map[string][]*instance),
			all:         make(map[*instance]bool),
		})
	}
	p.registerTelemetry()
	return p
}

// Store returns the checkpoint object store.
func (p *Porter) Store() *ObjectStore { return p.store }

// ghostsCompatible reports whether the mechanism can restore into ghost
// containers (CRIU-CXL cannot: it restores via the filesystem, §6.2).
func (p *Porter) ghostsCompatible() bool {
	return !p.cfg.DisableGhosts && p.cfg.Mechanism.Name() != "CRIU-CXL"
}

// retryBackoff is the base virtual-time delay between provisioning
// retries; it doubles per attempt, capped by
// params.RestoreRetryBackoffCap.
const retryBackoff = 10 * des.Millisecond

// backoff returns the capped exponential backoff for retry attempt n
// (0-based) and appends it to the deterministic backoff log. With the
// default base (10 ms) and cap (160 ms) the first five attempts match
// the historical uncapped doubling exactly.
func (p *Porter) backoff(attempt int) des.Time {
	base := p.c.P.RestoreRetryBackoff
	if base <= 0 {
		base = retryBackoff
	}
	limit := p.c.P.RestoreRetryBackoffCap
	d := base
	for i := 0; i < attempt; i++ {
		d <<= 1
		if limit > 0 && d >= limit {
			d = limit
			break
		}
	}
	if limit > 0 && d > limit {
		d = limit
	}
	p.backoffLog = append(p.backoffLog, d)
	return d
}

// BackoffSchedule returns every backoff charged so far, in order. Two
// identically-seeded runs must produce byte-identical schedules.
func (p *Porter) BackoffSchedule() []des.Time {
	return append([]des.Time(nil), p.backoffLog...)
}

// replicaKey is the placement key for fn's checkpoint.
func (p *Porter) replicaKey(fn string) string { return p.cfg.User + "/" + fn }

// replicate fans a freshly published checkpoint out across the device
// pool, returning the replicated image in place of the mechanism's.
// The ingest device (0) is the placement affinity: its replica dedups
// against the just-written frames, so the preferred copy is free. The
// mechanism's image is released — its frames survive through the
// replica arenas' references. Images that cannot be snapshotted (no
// frame tokens) and placement failures keep the original image.
func (p *Porter) replicate(fn string, img rfork.Image) rfork.Image {
	if p.rep == nil {
		return img
	}
	tk, ok := img.(frameTokener)
	if !ok {
		return img
	}
	rimg, err := p.rep.Place(p.replicaKey(fn), img.ID(), img.Mechanism(),
		tk.FrameTokens(), tk.MetaBytes(), 0)
	if err != nil {
		return img
	}
	img.Release()
	return rimg
}

// Setup prepares the deployment: registers and warms every function's
// image files, builds a warmed parent for each function, checkpoints it
// after its 16th invocation (§5), registers the checkpoint in the object
// store, tears the parent down, and provisions ghost container pools.
// Setup time is charged to the engine but precedes the measured trace.
//
// Provisioning is fault-tolerant: a node that crashes mid-checkpoint is
// abandoned (the torn arena is recovered off the device) and the
// checkpoint retried on a surviving node after a backoff; a full device
// degrades the function to scratch cold starts instead of failing Setup.
func (p *Porter) Setup(specs []faas.Spec) error {
	cp := p.c.P
	for _, s := range specs {
		faas.RegisterFiles(p.c.FS, cp, s)
		for _, n := range p.c.Nodes {
			if err := faas.WarmLibraries(n, s); err != nil {
				return err
			}
		}
	}
	for _, s := range specs {
		if err := p.provision(s); err != nil {
			return err
		}
	}
	return nil
}

// firstUpNode returns the lowest-index node not crashed by a fault, or
// nil when the whole cluster is down.
func (p *Porter) firstUpNode() *nodeState {
	for _, n := range p.nodes {
		if !p.c.Faults.NodeDown(n.os.Index) {
			return n
		}
	}
	return nil
}

// provision builds a warmed parent for s and publishes its checkpoint,
// then sets up control state and ghost pools.
func (p *Porter) provision(s faas.Spec) error {
	cp := p.c.P
	for attempt := 0; ; attempt++ {
		node := p.firstUpNode()
		if node == nil {
			return fmt.Errorf("porter: no surviving node to provision %s: %w", s.Name, rfork.ErrNodeDown)
		}
		in, err := faas.NewInstance(node.os, s)
		if err != nil {
			return err
		}
		if err := in.ColdInit(); err != nil {
			return err
		}
		// Clear A/D after the first invocation so the checkpointed bits
		// capture the steady state, not initialization (§5).
		if _, err := in.Invoke(p.rng); err != nil {
			return err
		}
		in.Task.MM.PT.ClearABits()
		if err := in.Warmup(cp.CheckpointAfter-1, p.rng); err != nil {
			return err
		}
		img, err := p.checkpointWithReclaim(in.Task, fmt.Sprintf("cid-%s-%s", p.cfg.User, s.Name))
		switch {
		case err == nil:
			img = p.replicate(s.Name, img)
			p.snapshot(s.Name, img)
			p.store.Put(p.cfg.User, s.Name, img)
			p.admits.Inc()
			if st := p.fns[s.Name]; st != nil {
				st.scoreBase = p.agingL
			}
			in.Exit()
			// Mitosis pins its shadow copy in the parent node's memory
			// for the lifetime of the image.
			node.reservedPages += int(img.LocalBytes() / int64(cp.PageSize))
		case errors.Is(err, rfork.ErrNodeDown):
			// The node died mid-checkpoint. Its torn arena is still
			// charged against the shared device: recover it, then retry
			// on a surviving node after a backoff. The dead node's local
			// state is lost with the node.
			st := p.c.Dev.Recover()
			p.c.Faults.Counters.RecoveredBytes.Add(st.Total())
			p.c.Faults.Counters.Retries.Inc()
			p.c.Eng.Advance(p.backoff(attempt))
			continue
		case errors.Is(err, cxl.ErrDeviceFull), errors.Is(err, memsim.ErrOutOfMemory):
			// Still no room after the capacity manager's evict-and-retry
			// rounds (checkpointWithReclaim): the function degrades to
			// scratch cold starts — the checkpoint rollback left occupancy
			// as it was. Setup itself succeeds (the degradation ladder's
			// last rung; a later re-checkpoint may still publish it).
			in.Exit()
			p.c.Faults.Counters.Fallbacks.Inc()
		default:
			return err
		}
		break
	}

	st := &fnState{spec: s, policy: rfork.MigrateOnWrite}
	if p.cfg.StaticPolicy != nil {
		st.policy = *p.cfg.StaticPolicy
	}
	st.slo = des.Time(p.cfg.SLOFactor * float64(p.profile(s.Name, rfork.MigrateOnAccess).WarmExec))
	p.fns[s.Name] = st

	if p.ghostsCompatible() {
		for _, n := range p.nodes {
			if p.c.Faults.NodeDown(n.os.Index) {
				continue
			}
			for i := 0; i < p.cfg.GhostsPerFunction; i++ {
				if _, err := n.rt.Create(); err != nil {
					return err
				}
				n.ghosts[s.Name]++
				n.usedPages += int(cp.GhostContainerBytes / int64(cp.PageSize))
			}
		}
	}
	return nil
}

// profile fetches the profile for a function under a policy, falling
// back to the mechanism's canonical (MoW-keyed) entry for baselines.
func (p *Porter) profile(fn string, pol rfork.Policy) Profile {
	if pr, ok := p.cfg.Profiles[ProfileKey{fn, p.cfg.Mechanism.Name(), pol}]; ok {
		return pr
	}
	pr, ok := p.cfg.Profiles[ProfileKey{fn, p.cfg.Mechanism.Name(), rfork.MigrateOnWrite}]
	if !ok {
		panic(fmt.Sprintf("porter: no profile for %s/%s", fn, p.cfg.Mechanism.Name()))
	}
	return pr
}
