package porter_test

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// telemetryRun replays the golden bursty trace with sampling on and
// returns the porter (for its registry) and the results. A non-nil
// rule set wires the CXLfork mechanism to the cluster fault plan.
func telemetryRun(t *testing.T, lanes int, rules []faultinject.Rule) (*porter.Porter, porter.Results) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointLanes = lanes
	p.RestoreLanes = lanes
	p.TelemetryEnabled = true
	c := cluster.MustNew(p, 2)
	for _, r := range rules {
		c.Faults.Inject(r)
	}
	mech := core.New(c.Dev)
	if len(rules) > 0 {
		mech.Faults = c.Faults
	}
	po := porter.New(c, porter.Config{
		Mechanism:       mech,
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	trace := azure.Generate(azure.TraceConfig{
		TotalRPS: 40,
		Duration: 10 * des.Second,
		Loads:    azure.DefaultLoads([]string{"Tiny"}),
		Seed:     7,
	})
	return po, po.Run(trace)
}

// exports renders the run's Prometheus and CSV dumps.
func exports(t *testing.T, po *porter.Porter) (prom, csv string) {
	t.Helper()
	reg := po.Telemetry()
	var pb, cb bytes.Buffer
	if err := reg.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	return pb.String(), cb.String()
}

// TestTelemetryGoldenExports is the export determinism gate: two
// identical seeded replays must produce byte-identical Prometheus and
// CSV dumps — for the sequential baseline, the parallel-lane
// configuration, and a run with a node crash injected.
func TestTelemetryGoldenExports(t *testing.T) {
	crash := []faultinject.Rule{{
		Kind: faultinject.CrashNode,
		Step: faultinject.StepCheckpointGlobal,
		Node: 0,
	}}
	for _, tc := range []struct {
		name  string
		lanes int
		rules []faultinject.Rule
	}{
		{"lanes=1", 1, nil},
		{"lanes=4", 4, nil},
		{"lanes=2/crash", 2, crash},
	} {
		t.Run(tc.name, func(t *testing.T) {
			poA, resA := telemetryRun(t, tc.lanes, tc.rules)
			poB, resB := telemetryRun(t, tc.lanes, tc.rules)
			promA, csvA := exports(t, poA)
			promB, csvB := exports(t, poB)
			if promA != promB {
				t.Fatal("Prometheus exports differ between identical runs")
			}
			if csvA != csvB {
				t.Fatal("CSV exports differ between identical runs")
			}
			if resA.Fingerprint() != resB.Fingerprint() {
				t.Fatal("fingerprints differ between identical runs")
			}
			// The equality must not be about an empty registry.
			if resA.TelemetrySamples < 10 {
				t.Fatalf("only %d samples recorded", resA.TelemetrySamples)
			}
			for _, want := range []string{"porter_completed_total", "cxl_utilization", "kernel_faults_total"} {
				if !strings.Contains(promA, want) {
					t.Fatalf("export missing series %s", want)
				}
			}
		})
	}
}

// TestTelemetryNeutralFingerprint is the acceptance gate for sampling
// neutrality: the replay's Results fingerprint must be identical with
// telemetry on and off, and the sampled run must actually record.
func TestTelemetryNeutralFingerprint(t *testing.T) {
	plain := goldenRun(t, 2, 7)
	po, res := telemetryRun(t, 2, nil)
	if got := res.Fingerprint(); got != plain {
		t.Fatalf("telemetry changed the porter fingerprint: %#x vs %#x", got, plain)
	}
	if res.TelemetrySamples == 0 || po.Telemetry().Ticks() == 0 {
		t.Fatal("sampled run recorded nothing")
	}
}

// sloRun replays a steady load on a device sized so the resident Tiny
// checkpoint alone violates the occupancy objective. With drive on,
// the firing alert must reclaim early; without, only the (never
// reached) high watermark could.
func sloRun(t *testing.T, drive bool) (*porter.Porter, porter.Results) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 16 << 20 // Tiny's checkpoint occupies well over half
	p.CXLLowWatermark = 0.2
	p.TelemetryEnabled = true
	p.SLOOccupancy = 0.3
	p.SLODriveReclaim = drive
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism:       core.New(c.Dev),
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	return po, po.Run(steadyTrace(100, 50*des.Millisecond))
}

// TestSLOAlertDrivesReclaim is the observe→act e2e: the occupancy
// burn-rate alert fires in both runs, but only the driven run turns
// it into capacity-manager action — early reclaim passes and a device
// brought under the objective — while the observing run never
// reclaims because the high watermark is never reached.
func TestSLOAlertDrivesReclaim(t *testing.T) {
	poObs, obs := sloRun(t, false)
	poDrv, drv := sloRun(t, true)

	if obs.SLOAlertsFired == 0 || drv.SLOAlertsFired == 0 {
		t.Fatalf("occupancy alert never fired: observe %d, drive %d",
			obs.SLOAlertsFired, drv.SLOAlertsFired)
	}
	if len(poObs.SLOAlerts()) == 0 || len(poDrv.SLOAlerts()) == 0 {
		t.Fatal("no alert transitions recorded")
	}
	if obs.ReclaimPasses != 0 {
		t.Fatalf("observing run reclaimed %d times without being driven", obs.ReclaimPasses)
	}
	if drv.ReclaimPasses == 0 {
		t.Fatal("firing alert did not trigger early reclaim")
	}
	if drv.EvictedCkpts == 0 {
		t.Fatal("early reclaim evicted nothing")
	}
	// The driven run ends with the device under the objective.
	last, ok := poDrv.Telemetry().Lookup("cxl_utilization").Last()
	if !ok {
		t.Fatal("no utilization samples")
	}
	if last.V > 0.3 {
		t.Fatalf("driven run still over objective: utilization %.2f", last.V)
	}
}
