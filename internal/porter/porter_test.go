package porter_test

import (
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/rfork"
)

// tinySpec is a fast function for scheduler tests.
func tinySpec() faas.Spec {
	return faas.Spec{
		Name: "Tiny", FootprintBytes: 8 << 20, LibBytes: 3 << 20,
		InitFrac: 0.6, ROFrac: 0.3, RWFrac: 0.1,
		InitComputeNs: 50 * des.Millisecond, WarmComputeNs: 10 * des.Millisecond,
		ROSweeps: 1, RepeatsPerPage: 1, InitTouchFrac: 0.05, ScratchFrac: 0.05,
		FDCount: 4, LibVMAs: 6,
	}
}

// profiles builds a hand-written profile table for Tiny.
func profiles(mech string) map[porter.ProfileKey]porter.Profile {
	pr := porter.Profile{
		Restore:        2 * des.Millisecond,
		ColdExec:       15 * des.Millisecond,
		WarmExec:       10 * des.Millisecond,
		LocalPages:     256, // 1 MB
		ColdInit:       200 * des.Millisecond,
		ColdInitExec:   12 * des.Millisecond,
		FootprintPages: 2048, // 8 MB
	}
	out := map[porter.ProfileKey]porter.Profile{}
	for _, pol := range []rfork.Policy{rfork.MigrateOnWrite, rfork.MigrateOnAccess, rfork.HybridTiering} {
		out[porter.ProfileKey{Function: "Tiny", Mechanism: mech, Policy: pol}] = pr
	}
	return out
}

func newPorter(t *testing.T, budget int64, mkMech func(c *cluster.Cluster) rfork.Mechanism, mechName string) (*porter.Porter, *cluster.Cluster) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	c := cluster.MustNew(p, 2)
	cfg := porter.Config{
		Mechanism:       mkMech(c),
		Profiles:        profiles(mechName),
		NodeBudgetBytes: budget,
		Seed:            1,
	}
	po := porter.New(c, cfg)
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	return po, c
}

func cxlMech(c *cluster.Cluster) rfork.Mechanism { return core.New(c.Dev) }

func steadyTrace(n int, gap des.Time) []azure.Request {
	reqs := make([]azure.Request, n)
	for i := range reqs {
		reqs[i] = azure.Request{At: des.Time(i) * gap, Function: "Tiny"}
	}
	return reqs
}

func TestSetupRegistersCheckpoint(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
		t.Fatal("checkpoint not in object store")
	}
}

func TestAllRequestsComplete(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	res := po.Run(steadyTrace(200, 20*des.Millisecond))
	if res.Completed != 200 {
		t.Fatalf("completed %d of 200", res.Completed)
	}
	if res.Overall.Count() != 200 {
		t.Fatal("latency samples missing")
	}
	if res.ScratchCold != 0 {
		t.Fatal("scratch cold start despite checkpoint")
	}
	if res.ColdForks == 0 {
		t.Fatal("no restores happened")
	}
}

func TestWarmReuseDominatesSteadyLoad(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	// Sequential requests, each arriving after the previous finished.
	res := po.Run(steadyTrace(100, 50*des.Millisecond))
	if res.ColdForks > 3 {
		t.Fatalf("%d cold forks on steady sequential load", res.ColdForks)
	}
	if res.WarmStarts < 95 {
		t.Fatalf("warm starts = %d", res.WarmStarts)
	}
	// Warm latency ≈ warm exec time (no queueing).
	if res.Overall.P50() > 15*des.Millisecond {
		t.Fatalf("P50 = %v, want ≈10ms warm", res.Overall.P50())
	}
}

func TestBurstSpawnsInstances(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	// 20 simultaneous arrivals need ~20 instances.
	res := po.Run(steadyTrace(20, 0))
	if res.ColdForks < 15 {
		t.Fatalf("cold forks = %d, want most of the burst", res.ColdForks)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestScratchColdWithoutCheckpoint(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	po.Store().Reclaim("tenant0", "Tiny")
	res := po.Run(steadyTrace(5, des.Second))
	if res.ScratchCold == 0 {
		t.Fatal("no scratch cold starts after reclaim")
	}
	if res.Completed != 5 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestMemoryPressureEvicts(t *testing.T) {
	// Budget fits ~3 instances (1 MB each + ghosts): a 12-wide burst
	// must evict or queue, and still complete everything.
	po, _ := newPorter(t, 4<<20, cxlMech, "CXLfork")
	res := po.Run(steadyTrace(60, 5*des.Millisecond))
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
}

func TestCRIUIncompatibleWithGhosts(t *testing.T) {
	po, c := newPorter(t, 1<<30, func(c *cluster.Cluster) rfork.Mechanism {
		return criu.New(c.CXLFS)
	}, "CRIU-CXL")
	_ = c
	res := po.Run(steadyTrace(10, 0))
	if res.Completed != 10 {
		t.Fatalf("completed %d", res.Completed)
	}
	// Every CRIU spawn pays container creation: P99 ≥ 130ms.
	if res.Overall.P99() < 130*des.Millisecond {
		t.Fatalf("P99 = %v, CRIU should pay container creation", res.Overall.P99())
	}
}

func TestGhostsCutColdStartLatency(t *testing.T) {
	burst := steadyTrace(4, 0)
	poCXL, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	resCXL := poCXL.Run(burst)
	poCRIU, _ := newPorter(t, 1<<30, func(c *cluster.Cluster) rfork.Mechanism {
		return criu.New(c.CXLFS)
	}, "CRIU-CXL")
	resCRIU := poCRIU.Run(burst)
	if resCXL.Overall.P99()*2 > resCRIU.Overall.P99() {
		t.Fatalf("ghost cold start %v not ≪ CRIU %v", resCXL.Overall.P99(), resCRIU.Overall.P99())
	}
}

func TestObjectStore(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 256 << 20
	p.CXLBytes = 256 << 20
	c := cluster.MustNew(p, 1)
	mech := core.New(c.Dev)
	spec := tinySpec()
	faas.RegisterFiles(c.FS, p, spec)
	if err := faas.WarmLibraries(c.Node(0), spec); err != nil {
		t.Fatal(err)
	}
	in, err := faas.NewInstance(c.Node(0), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ColdInit(); err != nil {
		t.Fatal(err)
	}
	img, err := mech.Checkpoint(in.Task, "s1")
	if err != nil {
		t.Fatal(err)
	}
	st := porter.NewObjectStore()
	st.Put("u", "fn", img)
	if got, ok := st.Get("u", "fn"); !ok || got != img {
		t.Fatal("get failed")
	}
	if _, ok := st.Get("u", "other"); ok {
		t.Fatal("phantom entry")
	}
	if st.Len() != 1 {
		t.Fatal("len wrong")
	}
	used := c.Dev.UsedBytes()
	if used == 0 {
		t.Fatal("checkpoint holds no device bytes")
	}
	if !st.Reclaim("u", "fn") {
		t.Fatal("reclaim failed")
	}
	if c.Dev.UsedBytes() != 0 {
		t.Fatal("reclaim did not free the device")
	}
	if st.Reclaim("u", "fn") {
		t.Fatal("double reclaim succeeded")
	}
}

func TestReclaimLargest(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 512 << 20
	p.CXLBytes = 512 << 20
	c := cluster.MustNew(p, 1)
	mech := core.New(c.Dev)
	st := porter.NewObjectStore()
	sizes := map[string]int64{}
	for i, mb := range []int64{4, 16, 8} {
		spec := tinySpec()
		spec.Name = []string{"small", "big", "mid"}[i]
		spec.FootprintBytes = mb << 20
		spec.LibBytes = spec.FootprintBytes / 4
		faas.RegisterFiles(c.FS, p, spec)
		if err := faas.WarmLibraries(c.Node(0), spec); err != nil {
			t.Fatal(err)
		}
		in, err := faas.NewInstance(c.Node(0), spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.ColdInit(); err != nil {
			t.Fatal(err)
		}
		img, err := mech.Checkpoint(in.Task, "ck-"+spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		st.Put("u", spec.Name, img)
		sizes[spec.Name] = img.CXLBytes()
		in.Exit()
	}
	freed := st.ReclaimLargest(sizes["big"])
	if freed < sizes["big"] {
		t.Fatalf("freed %d < %d", freed, sizes["big"])
	}
	if _, ok := st.Get("u", "big"); ok {
		t.Fatal("largest not reclaimed first")
	}
	if _, ok := st.Get("u", "small"); !ok {
		t.Fatal("small reclaimed unnecessarily")
	}
	st.Release()
	if st.Len() != 0 {
		t.Fatal("release incomplete")
	}
}
