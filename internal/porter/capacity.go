package porter

import (
	"errors"
	"fmt"
	"math"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/replica"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
)

// CXL device-capacity management (§5, §8 discussion).
//
// The shared CXL device holds every function's checkpoint; it is a
// finite, fabric-global resource the porter must manage like node DRAM.
// The capacity manager watches device occupancy against a high/low
// watermark pair: crossing the high watermark (on arrival, on a
// periodic background tick, or when a publication asks for admission)
// triggers an eviction pass that drops checkpoints — ranked by the
// configured policy — until occupancy is back under the low watermark.
//
// Accounting is dedup-aware throughout: an eviction is credited only
// with the device occupancy delta it actually produced (exclusive
// frames plus arena metadata), never with the image's declared
// footprint, because dedup-shared frames survive with their remaining
// owners and an image pinned by live clones or in-flight restores frees
// nothing until the last reference drops.
//
// Under sustained pressure the porter degrades along a ladder, never
// failing a live clone: (1) evict per policy; (2) refuse new
// checkpoint publications that cannot be admitted under the high
// watermark (AdmitRefused); (3) functions without a stored checkpoint
// fall back to scratch cold starts, reusing the fault-tolerance
// degradation path. Evicted CXLfork checkpoints are re-published from
// recorded frame-token snapshots once the function has paid
// CheckpointAfter cold starts and admission allows it.

// EvictPolicy selects how the capacity manager ranks eviction victims.
type EvictPolicy int

// Eviction policies, selected by params.EvictPolicy.
const (
	// EvictCostBenefit evicts the checkpoint with the least expected
	// restore latency saved per resident byte: cold-start penalty times
	// observed restore frequency, divided by reclaimable bytes.
	EvictCostBenefit EvictPolicy = iota
	// EvictLRU evicts the checkpoint least recently restored (virtual
	// time of last restore; never-restored checkpoints go first).
	EvictLRU
	// EvictLargest evicts the checkpoint with the most reclaimable
	// bytes first (the pre-capacity-manager behaviour, kept as a
	// baseline policy).
	EvictLargest
)

var evictPolicyNames = [...]string{"costbenefit", "lru", "largest"}

func (p EvictPolicy) String() string { return evictPolicyNames[p] }

// ParseEvictPolicy maps a params.EvictPolicy string to a policy. The
// empty string selects the cost-benefit default.
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	switch s {
	case "", "costbenefit":
		return EvictCostBenefit, nil
	case "lru":
		return EvictLRU, nil
	case "largest":
		return EvictLargest, nil
	}
	return 0, fmt.Errorf("porter: unknown eviction policy %q", s)
}

// evictScore ranks an eviction candidate: the entry with the lowest
// score is evicted first. All inputs are deterministic simulation
// state; ties fall to the store's sorted <user, function> order.
func (p *Porter) evictScore(e Entry) float64 {
	switch p.policy {
	case EvictLRU:
		return float64(e.LastRestore)
	case EvictLargest:
		return -float64(reclaimEstimate(e.Image))
	default: // EvictCostBenefit
		var base float64
		if st, ok := p.fns[e.Function]; ok {
			base = st.scoreBase
		}
		return base + p.costBenefit(e.Function, e.Restores, reclaimEstimate(e.Image))
	}
}

// costBenefit is the cost-benefit valuation shared by evictScore and
// admitScore: expected restore latency saved per resident byte, scaled
// by observed popularity. Callers add a GDSF aging base (the entry's
// scoreBase, or the current aging clock for a newcomer) so that scores
// are comparable across time. fallbackRestores is used only for
// entries of functions the porter no longer tracks.
func (p *Porter) costBenefit(fn string, fallbackRestores int64, bytes int64) float64 {
	pol := rfork.MigrateOnWrite
	restores := fallbackRestores
	if st, ok := p.fns[fn]; ok {
		pol = st.policy
		// Popularity is whole-run request demand, not the store entry's
		// restore counter: that counter resets on re-publication, and
		// restores only accrue while resident — an evicted checkpoint
		// could never score its way back in.
		restores = st.demand
	}
	prof := p.profile(fn, pol)
	saved := (prof.ColdInit + prof.ColdInitExec) - (prof.Restore + prof.ColdExec)
	if saved < 0 {
		saved = 0
	}
	if bytes < 1 {
		// A pinned image frees nothing now: treat it as maximally
		// expensive to lose so it is evicted last.
		bytes = 1
	}
	return float64(saved) * float64(restores+1) / float64(bytes)
}

// admitScore is the policy's valuation of a checkpoint about to be
// (re-)published — evictScore's counterpart for an image not in the
// store yet, scored on its declared need. Admission uses it as the
// eviction floor: making room must not cost checkpoints the policy
// values more than the newcomer.
func (p *Porter) admitScore(fn string, need int64) float64 {
	switch p.policy {
	case EvictLRU:
		// A fresh publication is by definition the most recently used.
		return float64(p.c.Eng.Now())
	case EvictLargest:
		return -float64(need)
	default: // EvictCostBenefit
		// A newcomer scores from the current aging clock: a function
		// asking for room now is at least as recent as anything evicted
		// so far, so a currently-bursting function can win admission
		// even when its long-run value is modest.
		return p.agingL + p.costBenefit(fn, 0, need)
	}
}

// maybeReclaim runs an eviction pass when any healthy device's
// occupancy is at or above the high watermark, driving the pool toward
// the low watermark. It is called on every arrival and from the
// background reclaim tick. With replication active, surplus replicas
// are shed first (DESIGN.md §12): dropping a redundant copy costs only
// durability the repair loop can win back, while evicting a whole
// image costs cold starts.
func (p *Porter) maybeReclaim() {
	pool := p.c.Pool
	if pool.MaxUtilization() < p.c.P.CXLHighWatermark {
		return
	}
	p.shedForPressure()
	if pool.MaxUtilization() < p.c.P.CXLHighWatermark {
		return
	}
	p.reclaim(pool.UsedBytes() - int64(float64(pool.CapacityBytes())*p.c.P.CXLLowWatermark))
}

// shedForPressure trims replication before whole-image eviction: on
// every healthy device at or above the high watermark it repeatedly
// sheds the replica of the lowest-valued image that still has more
// than one healthy copy, until the device is back under the watermark
// or nothing on it may legally be shed. The last healthy copy of an
// image is never touched — that is eviction's job, and only through
// the store. Returns the bytes freed.
func (p *Porter) shedForPressure() int64 {
	if p.rep == nil {
		return 0
	}
	pool := p.c.Pool
	now := p.c.Eng.Now()
	var freed int64
	for d := 0; d < pool.N(); d++ {
		if pool.Failed(d) {
			continue
		}
		dev := pool.Device(d)
		for dev.Utilization() >= p.c.P.CXLHighWatermark {
			var victimKey, victimFn string
			var bestScore float64
			found := false
			for _, e := range p.store.Entries() {
				rimg, ok := e.Image.(*replica.Image)
				if !ok || !p.rep.SheddableOn(rimg.Key(), d) {
					continue
				}
				s := p.evictScore(e)
				if !found || s < bestScore {
					victimKey, victimFn, bestScore, found = rimg.Key(), e.Function, s, true
				}
			}
			if !found {
				break
			}
			before := dev.UsedBytes()
			p.rep.ShedOn(victimKey, d)
			delta := before - dev.UsedBytes()
			freed += delta
			p.c.Trace.EmitFlow(0, trace.CatCapacity, "shed:"+victimFn, now, 0, delta, 0)
		}
	}
	return freed
}

// reclaim evicts checkpoints in policy order until the device has freed
// target bytes or the store is empty, returning the bytes actually
// freed (the device occupancy delta — dedup-shared frames and pinned
// images contribute only what really came back). Eviction drops only
// the store's reference: an image held by live clones or in-flight
// restores stays resident (its declared bytes are counted as deferred)
// and is freed by the last release.
func (p *Porter) reclaim(target int64) int64 {
	return p.reclaimBelow(target, math.Inf(1))
}

// reclaimBelow is reclaim with a score floor: the pass never evicts a
// victim the policy scores at or above floor. Watermark passes use an
// infinite floor (occupancy must come down); admission passes use the
// incoming checkpoint's own score, so making room for a low-value
// publication can never displace a higher-value resident — the
// admission is refused instead.
func (p *Porter) reclaimBelow(target int64, floor float64) int64 {
	pool := p.c.Pool
	now := p.c.Eng.Now()
	start := pool.UsedBytes()
	p.capc.ReclaimPasses.Inc()
	for start-pool.UsedBytes() < target && p.store.Len() > 0 {
		var victim Entry
		best := false
		var bestScore float64
		for _, e := range p.store.Entries() {
			s := p.evictScore(e)
			if !best || s < bestScore {
				victim, bestScore, best = e, s, true
			}
		}
		if bestScore >= floor {
			break
		}
		// GDSF aging: the clock follows the best score ever evicted, so
		// entries touched afterwards outrank entries idle since before.
		if p.policy == EvictCostBenefit && bestScore > p.agingL {
			p.agingL = bestScore
		}
		refsBefore := victim.Image.Refs()
		declared := victim.Image.CXLBytes()
		pages := victim.Image.Pages()
		before := pool.UsedBytes()
		p.store.Reclaim(victim.User, victim.Function)
		delta := before - pool.UsedBytes()
		p.capc.Evictions.Inc()
		p.capc.EvictedBytes.Add(delta)
		if refsBefore > 1 {
			p.capc.DeferredBytes.Add(declared)
		}
		p.res.CkptReclaims += int(delta / int64(p.c.P.PageSize))
		p.c.Trace.EmitFlow(0, trace.CatCapacity, "evict:"+victim.Function, now, 0, delta, pages)
	}
	freed := start - pool.UsedBytes()
	p.c.Trace.EmitFlow(0, trace.CatCapacity, "reclaim", now, 0, freed, 0)
	return freed
}

// reclaimToLow forces an eviction pass down to the low watermark even
// when occupancy is below the high one — the retry path when a
// checkpoint publication hit a full device (frame-pool exhaustion can
// precede the watermark on metadata-heavy devices).
func (p *Porter) reclaimToLow() int64 {
	pool := p.c.Pool
	target := pool.UsedBytes() - int64(float64(pool.CapacityBytes())*p.c.P.CXLLowWatermark)
	if target < 1 {
		target = 1
	}
	return p.reclaim(target)
}

// admitCheckpoint decides whether fn's publication of roughly need
// bytes may proceed: it must fit under the high watermark, after an
// eviction pass if necessary. The pass evicts just enough to fit —
// watermark hysteresis belongs to the background tick — and is floored
// at the newcomer's own score, so admission never evicts checkpoints
// the policy values more than the one asking for room. A refusal is
// the degradation ladder's middle rung (counted in AdmitRefused); the
// function keeps running on scratch cold starts and asks again later.
func (p *Porter) admitCheckpoint(fn string, need int64) bool {
	pool := p.c.Pool
	if p.rep != nil {
		// A replicated publication costs up to one copy per reachable
		// replica (dedup may make some free, but admission budgets for
		// the declared footprint).
		need *= int64(p.rep.EffectiveFactor())
		// Repair-first invariant (DESIGN.md §12): while surviving images
		// are under-replicated and the pool is at the high watermark,
		// the remaining headroom belongs to the repair loop, not to new
		// publications.
		if p.rep.UnderReplication() > 0 && pool.MaxUtilization() >= p.c.P.CXLHighWatermark {
			p.capc.AdmitRefused.Inc()
			return false
		}
	}
	wm := p.c.P.CXLHighWatermark
	if p.sloTighten && p.slo.Firing(SLOOccupancyObjective) {
		// A firing occupancy alert tightens admission to the low
		// watermark: while the burn rate says the device is trending
		// into trouble, new publications must leave reclaim headroom
		// (DESIGN.md §11).
		wm = p.c.P.CXLLowWatermark
	}
	high := int64(float64(pool.CapacityBytes()) * wm)
	if pool.UsedBytes()+need <= high {
		return true
	}
	p.reclaimBelow(pool.UsedBytes()+need-high, p.admitScore(fn, need))
	if pool.UsedBytes()+need <= high {
		return true
	}
	p.capc.AdmitRefused.Inc()
	return false
}

// setupReclaimRetries bounds how many evict-and-retry rounds a Setup
// checkpoint attempts on a full device before degrading to scratch
// cold starts.
const setupReclaimRetries = 2

// deviceFull reports whether err is a device-capacity failure (metadata
// charge rejection or frame-pool exhaustion).
func deviceFull(err error) bool {
	return errors.Is(err, cxl.ErrDeviceFull) || errors.Is(err, memsim.ErrOutOfMemory)
}

// checkpointWithReclaim is Mechanism.Checkpoint with the capacity
// manager in the loop: a device-full failure triggers a policy-ordered
// eviction pass and a retry, up to setupReclaimRetries times or until
// a pass frees nothing.
func (p *Porter) checkpointWithReclaim(task *kernel.Task, id string) (rfork.Image, error) {
	img, err := p.cfg.Mechanism.Checkpoint(task, id)
	for i := 0; i < setupReclaimRetries && deviceFull(err); i++ {
		if p.reclaimToLow() == 0 {
			break
		}
		img, err = p.cfg.Mechanism.Checkpoint(task, id)
	}
	return img, err
}

// ckptSnapshot is the capacity manager's record of a published CXLfork
// checkpoint: the content tokens of its device frames (in arena order)
// and its metadata footprint. It is what survives an eviction, letting
// the checkpoint be re-published through the dedup index later without
// a live parent address space.
type ckptSnapshot struct {
	tokens    []uint64
	metaBytes int64
	gen       int // re-publish generation, for unique arena names
}

// frameTokener is implemented by images that can be snapshotted for
// re-publication (core.Checkpoint). Mechanisms that cannot (CRIU-CXL's
// file images, Mitosis' parent-resident trees) simply degrade to
// scratch cold starts for good once evicted.
type frameTokener interface {
	FrameTokens() []uint64
	MetaBytes() int64
}

// snapshot records img's frame tokens for later re-publication, when
// the image supports it.
func (p *Porter) snapshot(fn string, img rfork.Image) {
	if tk, ok := img.(frameTokener); ok {
		p.snaps[fn] = &ckptSnapshot{tokens: tk.FrameTokens(), metaBytes: tk.MetaBytes()}
	}
}

// maybeRecheckpoint is called on every request completion: once a
// function whose checkpoint was evicted has completed CheckpointAfter
// further invocations (§5 checkpoints after the 16th invocation) and
// admission allows it, the checkpoint is rebuilt from its snapshot on
// the completing instance's node. The rebuild cost occupies one of
// that node's cores off the request critical path.
func (p *Porter) maybeRecheckpoint(inst *instance) {
	st := p.fns[inst.fn]
	snap := p.snaps[inst.fn]
	if snap == nil || st.reckpting {
		return
	}
	if _, ok := p.store.Get(p.cfg.User, inst.fn); ok {
		st.coldRuns = 0
		return
	}
	st.coldRuns++
	if st.coldRuns < p.c.P.CheckpointAfter {
		return
	}
	st.coldRuns = 0
	need := int64(len(snap.tokens))*int64(p.c.P.PageSize) + snap.metaBytes
	if !p.admitCheckpoint(inst.fn, need) {
		return
	}
	st.reckpting = true
	node := inst.node
	cost := p.c.P.StructCopy + des.Time(len(snap.tokens))*p.c.P.CXLWritePage
	node.cpu.Exec(cost, func(end des.Time) {
		st.reckpting = false
		if p.c.Faults.NodeDown(node.os.Index) {
			return
		}
		p.republish(inst.fn, node, end-cost, cost)
	})
}

// republish rebuilds fn's evicted checkpoint from its snapshot:
// every recorded token is allocated through the dedup index (re-deduping
// against surviving twins), tracked in a fresh arena with the original
// metadata charge, sealed, and registered in the store. A device that
// fills mid-rebuild rolls the staged arena back and counts a refusal.
func (p *Porter) republish(fn string, node *nodeState, begin, dur des.Time) {
	snap := p.snaps[fn]
	dev := p.c.Dev
	snap.gen++
	id := fmt.Sprintf("cid-%s-%s#r%d", p.cfg.User, fn, snap.gen)
	if p.rep != nil {
		// Replication active: rebuild through the placement manager so
		// the re-published checkpoint gets the same preference list and
		// repair coverage as the original (dedup-affine to device 0,
		// where the rebuilding node writes). A still-pinned predecessor
		// (clones draining after eviction) or a full pool refuses the
		// round; the function retries after CheckpointAfter more runs.
		rimg, err := p.rep.Place(p.replicaKey(fn), id, p.cfg.Mechanism.Name(), snap.tokens, snap.metaBytes, 0)
		if err != nil {
			p.capc.AdmitRefused.Inc()
			return
		}
		p.store.Put(p.cfg.User, fn, rimg)
		p.admits.Inc()
		if st := p.fns[fn]; st != nil {
			st.scoreBase = p.agingL
		}
		p.capc.Recheckpoints.Inc()
		p.c.Trace.EmitFlow(node.os.Index, trace.CatCapacity, "recheckpoint", begin, dur, rimg.CXLBytes(), rimg.Pages())
		return
	}
	arena, err := dev.NewArena(id)
	if err != nil {
		p.capc.AdmitRefused.Inc()
		return
	}
	for _, tok := range snap.tokens {
		f, _, err := dev.AllocToken(tok)
		if err != nil {
			arena.Release()
			p.capc.AdmitRefused.Inc()
			return
		}
		arena.TrackFrame(f)
	}
	if _, err := arena.Alloc("replay-meta", snap.metaBytes); err != nil {
		arena.Release()
		p.capc.AdmitRefused.Inc()
		return
	}
	if err := arena.Seal(); err != nil {
		arena.Release()
		p.capc.AdmitRefused.Inc()
		return
	}
	img := &replayImage{
		id:    id,
		mech:  p.cfg.Mechanism.Name(),
		arena: arena,
		pages: len(snap.tokens),
		refs:  rfork.NewRefCount(),
	}
	p.store.Put(p.cfg.User, fn, img)
	p.admits.Inc()
	if st := p.fns[fn]; st != nil {
		st.scoreBase = p.agingL
	}
	p.capc.Recheckpoints.Inc()
	p.c.Trace.EmitFlow(node.os.Index, trace.CatCapacity, "recheckpoint", begin, dur, img.CXLBytes(), img.pages)
}

// replayImage is a checkpoint re-published from a ckptSnapshot. It is
// restore-equivalent to the original (the queue model restores from
// profiles, and the frames carry the same content tokens) and carries
// the same dedup-aware accounting, but drops the page-table tree —
// §5's porter re-checkpoints from a warmed instance, and the snapshot
// keeps only what capacity accounting and future restores need.
type replayImage struct {
	id    string
	mech  string
	arena *cxl.Arena
	pages int
	refs  rfork.RefCount
}

var _ rfork.Image = (*replayImage)(nil)

// ID returns the re-published checkpoint's CID.
func (r *replayImage) ID() string { return r.id }

// Mechanism names the mechanism whose checkpoint was re-published.
func (r *replayImage) Mechanism() string { return r.mech }

// CXLBytes is the image's declared device footprint (data pages plus
// arena metadata), ignoring dedup sharing.
func (r *replayImage) CXLBytes() int64 {
	return r.arena.FrameBytes() + r.arena.Bytes()
}

// LocalBytes is zero: replay images pin no parent-node memory.
func (r *replayImage) LocalBytes() int64 { return 0 }

// Pages is the number of checkpointed data pages.
func (r *replayImage) Pages() int { return r.pages }

// Retain adds a reference.
func (r *replayImage) Retain() { r.refs.Retain() }

// Release drops a reference, releasing the arena at zero.
func (r *replayImage) Release() {
	if !r.refs.Release() {
		return
	}
	r.arena.Release()
}

// Refs returns the current reference count.
func (r *replayImage) Refs() int { return r.refs.Count() }

// ReclaimableBytes is the device occupancy delta releasing the image
// would produce: arena metadata plus frames no other arena shares.
func (r *replayImage) ReclaimableBytes() int64 { return r.arena.ExclusiveBytes() }
