package porter_test

import (
	"testing"

	"cxlfork/internal/azure"
	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
	"cxlfork/internal/trace"
)

// tracedRun replays the golden bursty trace with the span tracer on or
// off and returns the result fingerprint plus the cluster's tracer.
func tracedRun(t *testing.T, traced bool) (uint64, *trace.Tracer) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = 1 << 30
	p.CheckpointLanes = 2
	p.RestoreLanes = 2
	p.TraceEnabled = traced
	c := cluster.MustNew(p, 2)
	po := porter.New(c, porter.Config{
		Mechanism:       core.New(c.Dev),
		Profiles:        profiles("CXLfork"),
		NodeBudgetBytes: 1 << 30,
		Seed:            1,
	})
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}
	req := azure.Generate(azure.TraceConfig{
		TotalRPS: 40,
		Duration: 10 * des.Second,
		Loads:    azure.DefaultLoads([]string{"Tiny"}),
		Seed:     7,
	})
	return po.Run(req).Fingerprint(), c.Trace
}

// TestTracingDoesNotChangePorterFingerprint is the acceptance gate for
// the tracer's neutrality: a full autoscaler replay — thousands of
// restores, invocations, and evictions — must produce the identical
// Results fingerprint with the tracer on and off. The traced run must
// also actually record request spans, pass the nesting audit, and drop
// nothing, so the equality is not trivially about an empty trace.
func TestTracingDoesNotChangePorterFingerprint(t *testing.T) {
	plain, tr := tracedRun(t, false)
	if tr.Enabled() {
		t.Fatal("untraced run has a tracer")
	}
	traced, tr := tracedRun(t, true)
	if plain != traced {
		t.Fatalf("tracing changed the porter fingerprint: %#x vs %#x", plain, traced)
	}
	if !tr.Enabled() || tr.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
	var porterSpans int
	for _, e := range tr.Events() {
		if e.Cat == trace.CatPorter {
			porterSpans++
		}
	}
	if porterSpans == 0 {
		t.Fatal("no autoscaler request spans recorded")
	}
	for _, err := range trace.CheckNesting(tr.Events()) {
		t.Errorf("nesting: %v", err)
	}
	if tr.Dropped() != 0 {
		t.Errorf("%d spans dropped", tr.Dropped())
	}
}
