package porter

import (
	"sort"

	"cxlfork/internal/des"
	"cxlfork/internal/rfork"
)

// ObjectStore is CXLporter's distributed store of checkpoints on the
// CXL fabric (§5): it maps <user, function> tuples to checkpoint IDs
// (CIDs) of CXL-stored checkpoints. The store holds one reference on
// every registered image and is responsible for reclaiming checkpoints
// under CXL memory pressure. Alongside each image it tracks restore
// recency and frequency — the signals the capacity manager's LRU and
// cost-benefit eviction policies rank candidates by.
type ObjectStore struct {
	entries map[storeKey]*storeEntry
}

type storeKey struct {
	user, function string
}

type storeEntry struct {
	img         rfork.Image
	lastRestore des.Time
	restores    int64
}

// Entry is one registered checkpoint with its restore statistics, as
// exposed to eviction policies and diagnostics.
type Entry struct {
	User, Function string
	Image          rfork.Image
	// LastRestore is the virtual time of the most recent restore served
	// from this checkpoint (zero if never restored).
	LastRestore des.Time
	// Restores counts restores served from this checkpoint.
	Restores int64
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{entries: make(map[storeKey]*storeEntry)}
}

// Put registers an image under <user, function>, replacing (and
// releasing) any previous entry. The store takes ownership of the
// caller's reference. Restore statistics restart from zero: a
// re-published checkpoint earns its retention anew.
func (s *ObjectStore) Put(user, function string, img rfork.Image) {
	k := storeKey{user, function}
	if old, ok := s.entries[k]; ok {
		old.img.Release()
	}
	s.entries[k] = &storeEntry{img: img}
}

// Get queries the CID for <user, function>.
func (s *ObjectStore) Get(user, function string) (rfork.Image, bool) {
	e, ok := s.entries[storeKey{user, function}]
	if !ok {
		return nil, false
	}
	return e.img, true
}

// Touch records a restore served from <user, function> at virtual time
// now, feeding the LRU and cost-benefit eviction policies.
func (s *ObjectStore) Touch(user, function string, now des.Time) {
	if e, ok := s.entries[storeKey{user, function}]; ok {
		e.lastRestore = now
		e.restores++
	}
}

// Entries returns every registered checkpoint with its restore
// statistics, sorted by <user, function> for deterministic iteration.
func (s *ObjectStore) Entries() []Entry {
	out := make([]Entry, 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, Entry{
			User: k.user, Function: k.function,
			Image: e.img, LastRestore: e.lastRestore, Restores: e.restores,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Function < out[j].Function
	})
	return out
}

// Len returns the number of registered checkpoints.
func (s *ObjectStore) Len() int { return len(s.entries) }

// Reclaim drops the checkpoint for <user, function>, releasing the
// store's reference (live clones keep theirs).
func (s *ObjectStore) Reclaim(user, function string) bool {
	k := storeKey{user, function}
	e, ok := s.entries[k]
	if !ok {
		return false
	}
	e.img.Release()
	delete(s.entries, k)
	return true
}

// dedupAware is implemented by images whose device accounting
// distinguishes exclusive from dedup-shared frames (core.Checkpoint and
// the capacity manager's replay images).
type dedupAware interface {
	ReclaimableBytes() int64
}

// reclaimEstimate predicts the device occupancy delta releasing the
// store's reference on img would produce right now. An image pinned by
// live clones or in-flight restores (extra references) frees nothing
// yet; a dedup-aware image frees only metadata plus its exclusive
// frames; other mechanisms free their declared footprint.
func reclaimEstimate(img rfork.Image) int64 {
	if img.Refs() > 1 {
		return 0
	}
	if r, ok := img.(dedupAware); ok {
		return r.ReclaimableBytes()
	}
	return img.CXLBytes()
}

// ReclaimLargest drops checkpoints, largest actually-reclaimable
// footprint first, until freed bytes reach the target. It returns the
// bytes freed, where "freed" is the true device occupancy delta:
// dedup-shared frames count only for their last surviving owner, and an
// image pinned by live clones contributes zero until the last clone
// exits. Estimates are recomputed after every release, since releasing
// one image can promote a twin's shared frames to exclusive.
func (s *ObjectStore) ReclaimLargest(target int64) int64 {
	var freed int64
	for freed < target && len(s.entries) > 0 {
		keys := make([]storeKey, 0, len(s.entries))
		for k := range s.entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].user != keys[j].user {
				return keys[i].user < keys[j].user
			}
			return keys[i].function < keys[j].function
		})
		best, bestSize := keys[0], reclaimEstimate(s.entries[keys[0]].img)
		for _, k := range keys[1:] {
			if size := reclaimEstimate(s.entries[k].img); size > bestSize {
				best, bestSize = k, size
			}
		}
		s.Reclaim(best.user, best.function)
		freed += bestSize
	}
	return freed
}

// Release drops every entry (experiment teardown).
func (s *ObjectStore) Release() {
	for k, e := range s.entries {
		e.img.Release()
		delete(s.entries, k)
	}
}
