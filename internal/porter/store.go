package porter

import (
	"sort"

	"cxlfork/internal/rfork"
)

// ObjectStore is CXLporter's distributed store of checkpoints on the
// CXL fabric (§5): it maps <user, function> tuples to checkpoint IDs
// (CIDs) of CXL-stored checkpoints. The store holds one reference on
// every registered image and is responsible for reclaiming checkpoints
// under CXL memory pressure.
type ObjectStore struct {
	entries map[storeKey]rfork.Image
}

type storeKey struct {
	user, function string
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{entries: make(map[storeKey]rfork.Image)}
}

// Put registers an image under <user, function>, replacing (and
// releasing) any previous entry. The store takes ownership of the
// caller's reference.
func (s *ObjectStore) Put(user, function string, img rfork.Image) {
	k := storeKey{user, function}
	if old, ok := s.entries[k]; ok {
		old.Release()
	}
	s.entries[k] = img
}

// Get queries the CID for <user, function>.
func (s *ObjectStore) Get(user, function string) (rfork.Image, bool) {
	img, ok := s.entries[storeKey{user, function}]
	return img, ok
}

// Len returns the number of registered checkpoints.
func (s *ObjectStore) Len() int { return len(s.entries) }

// Reclaim drops the checkpoint for <user, function>, releasing the
// store's reference (live clones keep theirs).
func (s *ObjectStore) Reclaim(user, function string) bool {
	k := storeKey{user, function}
	img, ok := s.entries[k]
	if !ok {
		return false
	}
	img.Release()
	delete(s.entries, k)
	return true
}

// ReclaimLargest drops checkpoints, largest CXL footprint first, until
// freed bytes reach the target. It returns the bytes freed (counting
// each image's full device footprint; actual reclaim completes when the
// last clone exits).
func (s *ObjectStore) ReclaimLargest(target int64) int64 {
	type cand struct {
		k    storeKey
		size int64
	}
	var cands []cand
	for k, img := range s.entries {
		cands = append(cands, cand{k, img.CXLBytes()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].k.function < cands[j].k.function
	})
	var freed int64
	for _, c := range cands {
		if freed >= target {
			break
		}
		s.Reclaim(c.k.user, c.k.function)
		freed += c.size
	}
	return freed
}

// Release drops every entry (experiment teardown).
func (s *ObjectStore) Release() {
	for k, img := range s.entries {
		img.Release()
		delete(s.entries, k)
	}
}
