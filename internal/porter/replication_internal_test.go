package porter

import (
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/params"
	"cxlfork/internal/replica"
	"cxlfork/internal/rfork"
)

// ladderProfiles covers every function the capacity-ladder tests score.
func ladderProfiles() map[ProfileKey]Profile {
	pr := Profile{
		Restore:        2 * des.Millisecond,
		ColdExec:       15 * des.Millisecond,
		WarmExec:       10 * des.Millisecond,
		LocalPages:     256,
		ColdInit:       200 * des.Millisecond,
		ColdInitExec:   12 * des.Millisecond,
		FootprintPages: 2048,
	}
	out := map[ProfileKey]Profile{}
	for _, fn := range []string{"Tiny", "A", "B"} {
		for _, pol := range []rfork.Policy{rfork.MigrateOnWrite, rfork.MigrateOnAccess, rfork.HybridTiering} {
			out[ProfileKey{Function: fn, Mechanism: "CXLfork", Policy: pol}] = pr
		}
	}
	return out
}

// poolPorter builds a porter over a devices-wide pool at factor rf with
// a small total capacity, for white-box capacity-ladder tests.
func poolPorter(t *testing.T, devices, rf int, cxlBytes int64) (*Porter, *cluster.Cluster) {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	p.CXLBytes = cxlBytes
	p.CXLDevices = devices
	p.ReplicationFactor = rf
	c := cluster.MustNew(p, 2)
	po := New(c, Config{Mechanism: core.New(c.Dev), Profiles: ladderProfiles(), Seed: 1})
	if po.rep == nil {
		t.Fatal("no replica manager on a multi-device pool")
	}
	return po, c
}

// placeImage places a synthetic checkpoint of pages distinct frames,
// keyed so tokens never dedup across images.
func placeImage(t *testing.T, po *Porter, key string, salt uint64, pages int) *replica.Image {
	t.Helper()
	toks := make([]uint64, pages)
	for i := range toks {
		toks[i] = salt<<32 | uint64(i)
	}
	img, err := po.rep.Place(key, key+"-id", "CXLfork", toks, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// fill pushes device d's occupancy up by allocating raw arena bytes.
func fill(t *testing.T, c *cluster.Cluster, d int, name string, bytes int64) {
	t.Helper()
	a, err := c.Pool.Device(d).NewArena(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("pad", bytes); err != nil {
		t.Fatal(err)
	}
}

// replicaDevice returns the non-affinity device holding key's second
// copy (the pool has exactly one, found via the shed predicate).
func replicaDevice(t *testing.T, po *Porter, key string, devices int) int {
	t.Helper()
	for d := 1; d < devices; d++ {
		if po.rep.SheddableOn(key, d) {
			return d
		}
	}
	t.Fatalf("no second replica of %q found", key)
	return -1
}

// TestAdmissionDefersToRepairAtHighWatermark is the repair-first
// admission invariant: while any image is under-replicated and the pool
// sits at the high watermark, new publications are refused — the
// remaining headroom belongs to the repair loop. Once RepairTick
// restores the factor, the same admission goes through.
func TestAdmissionDefersToRepairAtHighWatermark(t *testing.T) {
	// 3 devices x 4 MiB. A 64-page image replicated twice.
	po, c := poolPorter(t, 3, 2, 12<<20)
	img := placeImage(t, po, "tenant0/Tiny", 1, 64)
	if got := img.Refs(); got < 1 {
		t.Fatalf("refs = %d", got)
	}

	// Kill the device holding the second copy; the image is now one
	// copy short of its factor.
	dead := replicaDevice(t, po, "tenant0/Tiny", 3)
	c.Pool.Fail(dead)
	po.rep.OnDeviceLoss(dead)
	if got := po.rep.UnderReplication(); got != 1 {
		t.Fatalf("UnderReplication = %d, want 1", got)
	}

	// Drive the ingest device over the high watermark and ask to admit.
	devBytes := c.Pool.Device(0).CapacityBytes()
	fill(t, c, 0, "filler", devBytes*95/100-c.Pool.Device(0).UsedBytes())
	if admitted := po.admitCheckpoint("Tiny", 64*int64(c.P.PageSize)); admitted {
		t.Fatal("admission granted while under-replicated at the high watermark")
	}
	if got := po.capc.AdmitRefused.Value(); got != 1 {
		t.Fatalf("AdmitRefused = %d, want 1", got)
	}

	// Repair copies the missing replica onto the surviving spare
	// device; the deficit clears and the same publication is admitted
	// (pool aggregates have room even though device 0 stays hot).
	if copies := po.rep.RepairTick(); copies == 0 {
		t.Fatal("RepairTick repaired nothing")
	}
	if got := po.rep.UnderReplication(); got != 0 {
		t.Fatalf("UnderReplication after repair = %d, want 0", got)
	}
	if admitted := po.admitCheckpoint("Tiny", 64*int64(c.P.PageSize)); !admitted {
		t.Fatal("admission still refused after repair converged")
	}
	if got := po.capc.AdmitRefused.Value(); got != 1 {
		t.Fatalf("AdmitRefused = %d, want 1 (no new refusal)", got)
	}
}

// TestShedForPressureKeepsLastHealthyCopy drives repeated shed passes
// under mounting pressure: surplus replicas go first, and once every
// image is down to one healthy copy, further pressure sheds nothing —
// the last copy is eviction's to take, never shedding's.
func TestShedForPressureKeepsLastHealthyCopy(t *testing.T) {
	// 2 devices x 4 MiB; two 300-page images at factor 2 put ~2.4 MiB
	// on each device.
	po, c := poolPorter(t, 2, 2, 8<<20)
	imgA := placeImage(t, po, "tenant0/A", 1, 300)
	imgB := placeImage(t, po, "tenant0/B", 2, 300)
	po.store.Put("tenant0", "A", imgA)
	po.store.Put("tenant0", "B", imgB)

	shedOnce := func(round string) int64 {
		dev := c.Pool.Device(0)
		need := int64(float64(dev.CapacityBytes())*0.93) - dev.UsedBytes()
		if need > 0 {
			fill(t, c, 0, "filler-"+round, need)
		}
		return po.shedForPressure()
	}

	if freed := shedOnce("1"); freed == 0 {
		t.Fatal("round 1 shed nothing above the watermark")
	}
	if freed := shedOnce("2"); freed == 0 {
		t.Fatal("round 2 shed nothing above the watermark")
	}
	// Both images are now single-copy: pressure can free nothing more.
	if freed := shedOnce("3"); freed != 0 {
		t.Fatalf("round 3 freed %d bytes from last copies", freed)
	}
	for _, key := range []string{"tenant0/A", "tenant0/B"} {
		healthy, _ := po.rep.Probe(key)
		if healthy != 1 {
			t.Fatalf("%s: %d healthy copies, want exactly 1", key, healthy)
		}
	}
	if got := po.rep.C.Shed.Value(); got != 2 {
		t.Fatalf("Shed = %d, want 2", got)
	}
	// The store still serves both images — shedding never unpublished.
	for _, fn := range []string{"A", "B"} {
		if _, ok := po.store.Get("tenant0", fn); !ok {
			t.Fatalf("%s vanished from the store", fn)
		}
	}
}
