package porter

import (
	"cxlfork/internal/des"
	"cxlfork/internal/telemetry"
)

// SLO objective names, stable identifiers for alerts and tests.
const (
	SLOOccupancyObjective = "cxl-occupancy"
	SLOColdP99Objective   = "cold-start-p99"
)

// registerTelemetry registers the porter's scheduling and capacity
// series against the cluster's registry and builds the SLO engine from
// params. Probes are read-only observers: they never touch porter
// state, so sampling cannot perturb a replay. Only the first porter
// built over a cluster registers (the series are cluster-scoped).
func (p *Porter) registerTelemetry() {
	reg := p.c.Telem
	if !reg.Enabled() || reg.Lookup("porter_queue_depth") != nil {
		return
	}
	p.telem = reg
	reg.Gauge("porter_queue_depth", "requests waiting for an instance across all functions",
		func(des.Time) float64 {
			n := 0
			for _, st := range p.fns {
				n += len(st.queue)
			}
			return float64(n)
		})
	reg.Gauge("porter_backlog", "spawn/checkpoint work queued behind busy cores across all nodes",
		func(des.Time) float64 {
			n := 0
			for _, ns := range p.nodes {
				n += ns.cpu.QueueLen()
			}
			return float64(n)
		})
	reg.Gauge("porter_ladder_level", "degradation ladder rung: 0 normal, 1 above low watermark, 2 above high watermark (evict/refuse), 3 serving scratch cold starts for an evicted checkpoint",
		func(des.Time) float64 { return float64(p.ladderLevel()) })
	reg.Gauge("porter_cold_p99_ns", "running 99th percentile of cold-start latency",
		func(des.Time) float64 {
			if p.res.ColdLatency == nil {
				return 0
			}
			return float64(p.res.ColdLatency.P99())
		})
	for _, ns := range p.nodes {
		ns := ns
		node := telemetry.L("node", ns.os.Name)
		reg.Gauge("porter_cpu_busy", "cores occupied by spawn/checkpoint work on the node",
			func(des.Time) float64 { return float64(ns.cpu.Busy()) }, node)
		reg.Gauge("porter_node_utilization", "node memory budget occupancy (used plus reserved pages)",
			func(des.Time) float64 { return ns.utilization() }, node)
	}
	p.admits = reg.Counter("porter_admissions_total",
		"checkpoint publications admitted to the device (initial provisioning plus re-publications)")
	reg.CounterFunc("porter_evictions_total", "checkpoints dropped by the eviction engine",
		func(des.Time) float64 { return float64(p.capc.Evictions.Value()) },
		telemetry.L("policy", p.policy.String()))
	reg.CounterFunc("porter_reclaim_passes_total", "watermark-triggered eviction passes",
		func(des.Time) float64 { return float64(p.capc.ReclaimPasses.Value()) })
	reg.CounterFunc("porter_admit_refused_total", "checkpoint publications refused by the admission ladder",
		func(des.Time) float64 { return float64(p.capc.AdmitRefused.Value()) })
	reg.CounterFunc("porter_recheckpoints_total", "evicted checkpoints re-published from snapshots",
		func(des.Time) float64 { return float64(p.capc.Recheckpoints.Value()) })
	reg.CounterFunc("porter_warm_total", "requests served by a warm instance",
		func(des.Time) float64 { return float64(p.res.WarmStarts) })
	reg.CounterFunc("porter_cold_fork_total", "requests served by restoring a checkpoint",
		func(des.Time) float64 { return float64(p.res.ColdForks) })
	reg.CounterFunc("porter_cold_scratch_total", "requests served by a full scratch cold start",
		func(des.Time) float64 { return float64(p.res.ScratchCold) })
	reg.CounterFunc("porter_completed_total", "requests completed",
		func(des.Time) float64 { return float64(p.res.Completed) })
	reg.CounterFunc("porter_failed_restores_total", "restores abandoned because every replica of the checkpoint was lost",
		func(des.Time) float64 { return float64(p.res.FailedRestores) })
	if p.rep != nil {
		p.rep.RegisterTelemetry(reg)
	}
	if p.c.XRay.Enabled() {
		// Registered only when attribution is on, so the exported
		// series set — and every pinned telemetry golden — is
		// untouched by default.
		reg.CounterFunc("cxlfork_xray_unattributed_seconds_total",
			"restore blame (failover probes plus backoff) accrued toward requests that degraded to scratch cold starts, surfaced instead of silently dropped",
			func(des.Time) float64 { return float64(p.c.XRay.UnattributedNS()) / float64(des.Second) })
	}

	p.slo = telemetry.NewEngine(reg)
	pp := p.c.P
	if pp.SLOOccupancy > 0 {
		var action func()
		if pp.SLODriveReclaim {
			action = p.sloReclaim
		}
		p.slo.Add(telemetry.Objective{
			Name:   SLOOccupancyObjective,
			Series: "cxl_utilization",
			Target: pp.SLOOccupancy,
			Budget: pp.SLOBudget,
			Short:  pp.SLOWindowShort,
			Long:   pp.SLOWindowLong,
			Factor: pp.SLOBurnFactor,
		}, action)
		p.sloTighten = pp.SLODriveReclaim
	}
	if pp.SLOColdStartP99 > 0 {
		p.slo.Add(telemetry.Objective{
			Name:   SLOColdP99Objective,
			Series: "porter_cold_p99_ns",
			Target: float64(pp.SLOColdStartP99),
			Budget: pp.SLOBudget,
			Short:  pp.SLOWindowShort,
			Long:   pp.SLOWindowLong,
			Factor: pp.SLOBurnFactor,
		}, nil)
	}
}

// ladderLevel reports the porter's current degradation rung, derived
// purely from observable state so the probe stays read-only: 3 when
// some tracked function's checkpoint has been evicted and not yet
// re-published (its requests run from scratch), 2 when device
// occupancy is at or above the high watermark (the evict/refuse
// regime), 1 when above the low watermark, 0 otherwise.
func (p *Porter) ladderLevel() int {
	for fn := range p.snaps {
		if _, ok := p.store.Get(p.cfg.User, fn); !ok {
			return 3
		}
	}
	u := p.c.Pool.MaxUtilization()
	switch {
	case u >= p.c.P.CXLHighWatermark:
		return 2
	case u >= p.c.P.CXLLowWatermark:
		return 1
	}
	return 0
}

// sloReclaim is the occupancy alert's drive action: an early reclaim
// pass toward the low watermark, run on each firing evaluation. It is
// a no-op when occupancy is already below the low watermark, so a
// lingering alert cannot evict checkpoints the device has room for.
func (p *Porter) sloReclaim() {
	if p.c.Pool.MaxUtilization() < p.c.P.CXLLowWatermark {
		return
	}
	// Shed surplus replicas before evicting whole checkpoints — the
	// same pressure ladder as the watermark pass (DESIGN.md §12).
	p.shedForPressure()
	if p.c.Pool.MaxUtilization() < p.c.P.CXLLowWatermark {
		return
	}
	p.reclaimToLow()
}

// sampleTelemetry drives one telemetry tick: sample every probe, then
// let the SLO engine evaluate its objectives (and, when configured,
// drive the capacity manager).
func (p *Porter) sampleTelemetry(now des.Time) {
	if p.telem == nil {
		return
	}
	p.telem.Sample(now)
	p.slo.Evaluate(now)
}

// SLOAlerts returns the run's SLO fire/resolve transitions.
func (p *Porter) SLOAlerts() []telemetry.Alert { return p.slo.Alerts() }

// Telemetry returns the cluster's registry (nil when disabled).
func (p *Porter) Telemetry() *telemetry.Registry { return p.telem }
