package porter_test

import (
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/des"
	"cxlfork/internal/faas"
	"cxlfork/internal/params"
	"cxlfork/internal/porter"
)

// TestCXLPressureReclaim fills the CXL device past the high watermark
// and checks that incoming requests trigger checkpoint reclaim, after
// which the function cold-starts from scratch.
func TestCXLPressureReclaim(t *testing.T) {
	p := params.Default()
	p.NodeDRAMBytes = 1 << 30
	// Tight device: Tiny's checkpoint (~8 MB + scratch + metadata) plus
	// filler pushes past 90%.
	p.CXLBytes = 24 << 20
	c := cluster.MustNew(p, 2)
	cfg := porter.Config{
		Mechanism: core.New(c.Dev),
		Profiles:  profiles("CXLfork"),
		Seed:      1,
	}
	po := porter.New(c, cfg)
	if err := po.Setup([]faas.Spec{tinySpec()}); err != nil {
		t.Fatal(err)
	}

	// Fill the device to the watermark with unrelated data.
	pool := c.Dev.Pool()
	for c.Dev.Utilization() < 0.92 {
		pool.MustAlloc()
	}

	res := po.Run(steadyTrace(10, 100*des.Millisecond))
	if res.CkptReclaims == 0 {
		t.Fatal("no checkpoints reclaimed under CXL pressure")
	}
	if _, ok := po.Store().Get("tenant0", "Tiny"); ok {
		t.Fatal("checkpoint survived reclaim")
	}
	// Requests after the reclaim fall back to scratch cold starts but
	// still complete.
	if res.ScratchCold == 0 {
		t.Fatal("no scratch cold starts after reclaim")
	}
	if res.Completed != 10 {
		t.Fatalf("completed %d of 10", res.Completed)
	}
}

// TestNoReclaimBelowWatermark ensures checkpoints stay put on a roomy
// device.
func TestNoReclaimBelowWatermark(t *testing.T) {
	po, _ := newPorter(t, 1<<30, cxlMech, "CXLfork")
	res := po.Run(steadyTrace(10, 100*des.Millisecond))
	if res.CkptReclaims != 0 {
		t.Fatal("reclaimed without pressure")
	}
	if _, ok := po.Store().Get("tenant0", "Tiny"); !ok {
		t.Fatal("checkpoint vanished")
	}
}
