package azure

import (
	"math"
	"sort"
	"testing"

	"cxlfork/internal/des"
)

func cfg(seed int64) TraceConfig {
	return TraceConfig{
		TotalRPS: 150,
		Duration: 60 * des.Second,
		Loads:    DefaultLoads([]string{"A", "B", "C"}),
		Seed:     seed,
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	reqs := Generate(cfg(1))
	if len(reqs) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At }) {
		t.Fatal("trace not sorted")
	}
	for _, r := range reqs {
		if r.At < 0 || r.At >= 60*des.Second {
			t.Fatalf("arrival %v outside trace", r.At)
		}
	}
}

func TestMeanRateHitsTarget(t *testing.T) {
	// Over a long trace the realized rate converges on TotalRPS.
	c := cfg(2)
	c.Duration = 600 * des.Second
	reqs := Generate(c)
	st := Summarize(reqs, c.Duration)
	if math.Abs(st.MeanRPS-150)/150 > 0.15 {
		t.Fatalf("mean RPS = %.1f, want ≈150", st.MeanRPS)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(cfg(3))
	b := Generate(cfg(3))
	if len(a) != len(b) {
		t.Fatal("length differs across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c := Generate(cfg(4))
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestAllFunctionsPresent(t *testing.T) {
	reqs := Generate(cfg(5))
	st := Summarize(reqs, 60*des.Second)
	for _, fn := range []string{"A", "B", "C"} {
		if st.PerFunction[fn] == 0 {
			t.Fatalf("function %s has no arrivals", fn)
		}
	}
}

func TestBurstiness(t *testing.T) {
	c := cfg(6)
	c.Duration = 300 * des.Second
	reqs := Generate(c)
	st := Summarize(reqs, c.Duration)
	// With duty cycle 1/6 and burst factor 8, bursts should carry a
	// disproportionate share of arrivals (8/13 ≈ 62%).
	if st.BurstShare < 0.4 || st.BurstShare > 0.85 {
		t.Fatalf("burst share = %.2f, want pronounced bursts", st.BurstShare)
	}
	// Peak 1-second rate should far exceed the mean.
	perSec := make(map[int]int)
	for _, r := range reqs {
		perSec[int(r.At/des.Second)]++
	}
	peak := 0
	for _, n := range perSec {
		if n > peak {
			peak = n
		}
	}
	if float64(peak) < 1.5*st.MeanRPS {
		t.Fatalf("peak %d not bursty vs mean %.0f", peak, st.MeanRPS)
	}
}

func TestWeightsRespected(t *testing.T) {
	c := TraceConfig{
		TotalRPS: 100,
		Duration: 300 * des.Second,
		Seed:     7,
		Loads: []FunctionLoad{
			{Function: "heavy", Weight: 3, BurstFactor: 1, MeanBurst: des.Second, MeanCalm: des.Second},
			{Function: "light", Weight: 1, BurstFactor: 1, MeanBurst: des.Second, MeanCalm: des.Second},
		},
	}
	st := Summarize(Generate(c), c.Duration)
	ratio := float64(st.PerFunction["heavy"]) / float64(st.PerFunction["light"])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("weight ratio = %.2f, want ≈3", ratio)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil, 0)
	if st.Requests != 0 || st.MeanRPS != 0 || st.BurstShare != 0 {
		t.Fatal("empty summary not zero")
	}
}
