package azure

import (
	"math"
	"math/rand"
	"sort"

	"cxlfork/internal/des"
)

// Request is one function invocation arrival.
type Request struct {
	At       des.Time
	Function string
	// Burst marks arrivals generated during a burst period (useful for
	// analysis; the autoscaler does not see this field).
	Burst bool
}

// FunctionLoad configures one function's arrival process.
type FunctionLoad struct {
	// Function is the function name.
	Function string
	// Weight is the function's share of the aggregate request rate.
	Weight float64
	// BurstFactor multiplies the base rate during bursts (>= 1).
	BurstFactor float64
	// MeanBurst and MeanCalm are the expected durations of the burst
	// and calm states.
	MeanBurst, MeanCalm des.Time
}

// TraceConfig configures a generated trace.
type TraceConfig struct {
	// TotalRPS is the aggregate mean request rate across functions.
	TotalRPS float64
	// Duration is the trace length in virtual time.
	Duration des.Time
	// Loads lists the per-function processes; weights are normalized.
	Loads []FunctionLoad
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultLoads returns a bursty mix over the given function names:
// every function gets an equal base share and pronounced bursts, the
// configuration §7.2 describes ("Azure traces of bursty functions").
func DefaultLoads(functions []string) []FunctionLoad {
	loads := make([]FunctionLoad, len(functions))
	for i, fn := range functions {
		loads[i] = FunctionLoad{
			Function:    fn,
			Weight:      1,
			BurstFactor: 8,
			MeanBurst:   2 * des.Second,
			MeanCalm:    10 * des.Second,
		}
	}
	return loads
}

// Generate produces the arrival sequence, sorted by time.
func Generate(cfg TraceConfig) []Request {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var total float64
	for _, l := range cfg.Loads {
		total += l.Weight
	}
	var out []Request
	for _, l := range cfg.Loads {
		// Mean rate r must satisfy: share = weight/total * TotalRPS.
		// With duty cycle d = MeanBurst/(MeanBurst+MeanCalm), mean rate
		// = base*(1-d) + base*BurstFactor*d, so solve for base.
		share := l.Weight / total * cfg.TotalRPS
		d := float64(l.MeanBurst) / float64(l.MeanBurst+l.MeanCalm)
		base := share / ((1 - d) + l.BurstFactor*d)
		out = append(out, generateOne(rng, l, base, cfg.Duration)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// generateOne runs one function's two-state MMPP.
func generateOne(rng *rand.Rand, l FunctionLoad, baseRPS float64, dur des.Time) []Request {
	var out []Request
	now := des.Time(0)
	burst := false
	stateEnd := now + expTime(rng, l.MeanCalm)
	for now < dur {
		rate := baseRPS
		if burst {
			rate *= l.BurstFactor
		}
		var next des.Time
		if rate <= 0 {
			next = dur
		} else {
			next = now + expTime(rng, des.Time(float64(des.Second)/rate))
		}
		if next >= stateEnd {
			// State transition first.
			now = stateEnd
			burst = !burst
			mean := l.MeanCalm
			if burst {
				mean = l.MeanBurst
			}
			stateEnd = now + expTime(rng, mean)
			continue
		}
		now = next
		if now < dur {
			out = append(out, Request{At: now, Function: l.Function, Burst: burst})
		}
	}
	return out
}

// expTime draws an exponential duration with the given mean.
func expTime(rng *rand.Rand, mean des.Time) des.Time {
	if mean <= 0 {
		return 1
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := des.Time(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Stats summarizes a generated trace.
type Stats struct {
	Requests    int
	PerFunction map[string]int
	MeanRPS     float64
	BurstShare  float64
}

// Summarize computes trace statistics over the given duration.
func Summarize(reqs []Request, dur des.Time) Stats {
	st := Stats{PerFunction: make(map[string]int)}
	bursts := 0
	for _, r := range reqs {
		st.Requests++
		st.PerFunction[r.Function]++
		if r.Burst {
			bursts++
		}
	}
	if dur > 0 {
		st.MeanRPS = float64(st.Requests) / dur.Seconds()
	}
	if st.Requests > 0 {
		st.BurstShare = float64(bursts) / float64(st.Requests)
	}
	return st
}
