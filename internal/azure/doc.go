// Package azure generates serverless request arrivals standing in for
// the Azure production traces the paper replays (Shahrad et al., §6.1).
// The traces' relevant property for CXLporter is burstiness: long idle
// or low-rate periods punctuated by invocation spikes that force the
// autoscaler to spawn instances. We reproduce that with a per-function
// Markov-modulated Poisson process (a two-state on/off MMPP): each
// function alternates between a base-rate state and a burst state with
// a configurable rate multiplier, and the aggregate load is scaled to a
// target requests-per-second (the paper drives 150 RPS).
//
// Substitution note (DESIGN.md §1): the real trace data set is not
// redistributable; the MMPP keeps the knob the paper's analysis depends
// on (bursts that create cold-start storms) explicit and controllable.
//
// The entry point is Generate, which expands a TraceConfig —
// DefaultLoads supplies the suite's per-function loads — into a
// time-sorted arrival trace; Summarize reports the realized rate and
// burstiness.
package azure
