package azure

import (
	"bytes"
	"strings"
	"testing"

	"cxlfork/internal/des"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(cfg(11))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Function != orig[i].Function {
			t.Fatalf("row %d function %q vs %q", i, got[i].Function, orig[i].Function)
		}
		// Times survive within microsecond precision.
		d := got[i].At - orig[i].At
		if d < 0 {
			d = -d
		}
		if d > des.Microsecond {
			t.Fatalf("row %d time drift %v", i, d)
		}
	}
}

func TestReadCSVHeaderAndSorting(t *testing.T) {
	in := "seconds,function\n2.5,B\n0.5,A\n1.0,C\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].Function != "A" || got[2].Function != "B" {
		t.Fatalf("not sorted: %+v", got)
	}
	if got[0].At != des.Time(0.5*float64(des.Second)) {
		t.Fatalf("time = %v", got[0].At)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0.5,A\nbad,B\n", // bad time past header position
		"0.5,A\n-1,B\n",  // negative time
		"0.5,A\n1.0,\n",  // empty function
		"0.5\n",          // wrong column count
		"0.5,A,extra\n",  // wrong column count
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
}
