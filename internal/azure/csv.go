package azure

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cxlfork/internal/des"
)

// Trace files are two-column CSV: arrival time in seconds (fractional),
// function name. This matches how users would feed real production
// traces (e.g. a pre-processed Azure Functions dataset) into the
// autoscaler instead of the built-in MMPP generator.

// WriteCSV serializes a trace.
func WriteCSV(w io.Writer, reqs []Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "function"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.At.Seconds(), 'f', 6, 64),
			r.Function,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace, tolerating an optional header row and
// unsorted input (arrivals are sorted on return).
func ReadCSV(r io.Reader) ([]Request, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var out []Request
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		sec, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("azure: line %d: bad time %q", line, rec[0])
		}
		if sec < 0 {
			return nil, fmt.Errorf("azure: line %d: negative time", line)
		}
		if rec[1] == "" {
			return nil, fmt.Errorf("azure: line %d: empty function name", line)
		}
		out = append(out, Request{
			At:       des.Time(sec * float64(des.Second)),
			Function: rec[1],
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
