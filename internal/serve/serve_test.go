package serve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// smallConfig keeps sessions fast: capacity-sized structures dominate
// setup cost, so tests shrink the platform, not the workload.
func smallConfig() ConfigSpec {
	return ConfigSpec{NodeDRAMBytes: 256 << 20, CXLCapacityBytes: 512 << 20, Cores: 2}
}

// fastSpec completes in tens of milliseconds of wall time.
func fastSpec() Spec {
	return Spec{
		Config: smallConfig(),
		Workload: WorkloadSpec{
			RPS:       200,
			Duration:  Duration(300 * time.Millisecond),
			Functions: []string{"Float"},
			Seed:      7,
		},
	}
}

// slowSpec paces the replay so slowly it cannot finish inside a test:
// the session parks at its first telemetry tick until canceled.
func slowSpec() Spec {
	s := fastSpec()
	s.Workload.Duration = Duration(2 * time.Second)
	s.Session.Pace = 0.002
	return s
}

func waitTerminal(t *testing.T, s *Session, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !s.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in state %s", s.ID, s.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitRunning(t *testing.T, s *Session, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for s.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatalf("session %s never left the queue", s.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// frameHead is the decoded prefix shared by all frame types.
type frameHead struct {
	Type   string `json:"type"`
	Reason string `json:"reason"`
	Seq    int64  `json:"seq"`
	Frames int    `json:"frames"`
}

func decodeFrames(t *testing.T, s *Session) []frameHead {
	t.Helper()
	raw, _, _ := s.next(0)
	out := make([]frameHead, 0, len(raw))
	for i, b := range raw {
		var h frameHead
		if err := json.Unmarshal(b, &h); err != nil {
			t.Fatalf("frame %d is not JSON: %v (%q)", i, err, b)
		}
		out = append(out, h)
	}
	return out
}

func drainNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = m.Drain(ctx)
}

func TestSessionLifecycle(t *testing.T) {
	timeoutSpec := fastSpec()
	timeoutSpec.Session.Timeout = Duration(time.Millisecond)

	cases := []struct {
		name       string
		spec       Spec
		cancelMid  bool // cancel once the session is running
		wantState  State
		wantReason string
		wantReport bool
	}{
		{"complete", fastSpec(), false, StateDone, ReasonComplete, true},
		{"cancel-mid-run", slowSpec(), true, StateCanceled, ReasonCanceled, true},
		{"timeout", timeoutSpec, false, StateTimeout, ReasonTimeout, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewManager(Config{MaxSessions: 1})
			defer drainNow(t, m)
			s, err := m.Submit(tc.spec)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			if tc.cancelMid {
				waitRunning(t, s, 10*time.Second)
				if !m.Cancel(s.ID, ReasonCanceled) {
					t.Fatal("Cancel found no live session")
				}
			}
			waitTerminal(t, s, 30*time.Second)
			if got := s.State(); got != tc.wantState {
				t.Fatalf("state = %s, want %s", got, tc.wantState)
			}
			fs := decodeFrames(t, s)
			if len(fs) < 2 || fs[0].Type != "hello" {
				t.Fatalf("frame log should open with hello: %+v", fs)
			}
			last := fs[len(fs)-1]
			if last.Type != "eof" || last.Reason != tc.wantReason {
				t.Fatalf("last frame = %+v, want eof/%s", last, tc.wantReason)
			}
			if last.Frames != len(fs) {
				t.Fatalf("eof frame count %d, want %d", last.Frames, len(fs))
			}
			if (s.Report() != nil) != tc.wantReport {
				t.Fatalf("report presence = %v, want %v", s.Report() != nil, tc.wantReport)
			}
			if tc.wantState == StateDone && s.Report().Interrupted {
				t.Fatal("completed run marked interrupted")
			}
			if tc.wantState != StateDone && s.Report() != nil && !s.Report().Interrupted {
				t.Fatal("stopped run not marked interrupted")
			}
		})
	}
}

func TestAdmissionControl(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, MaxQueue: 1})
	defer drainNow(t, m)

	s1, err := m.Submit(slowSpec())
	if err != nil {
		t.Fatalf("Submit s1: %v", err)
	}
	s2, err := m.Submit(slowSpec())
	if err != nil {
		t.Fatalf("Submit s2: %v", err)
	}
	if s2.State() != StateQueued {
		t.Fatalf("s2 state = %s, want queued", s2.State())
	}
	if m.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", m.QueueDepth())
	}
	if _, err := m.Submit(slowSpec()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third submit error = %v, want ErrSaturated", err)
	}

	// Cancel the queued session before its slot arrives: it must
	// still terminate with canceled frames when promoted.
	m.Cancel(s2.ID, ReasonCanceled)
	m.Cancel(s1.ID, ReasonCanceled)
	waitTerminal(t, s1, 30*time.Second)
	waitTerminal(t, s2, 30*time.Second)
	for _, s := range []*Session{s1, s2} {
		if s.State() != StateCanceled {
			t.Fatalf("%s state = %s, want canceled", s.ID, s.State())
		}
		fs := decodeFrames(t, s)
		if last := fs[len(fs)-1]; last.Type != "eof" || last.Reason != ReasonCanceled {
			t.Fatalf("%s last frame = %+v, want eof/canceled", s.ID, last)
		}
	}
}

func TestQueuePromotion(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, MaxQueue: 2})
	defer drainNow(t, m)
	s1, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatalf("Submit s1: %v", err)
	}
	s2, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatalf("Submit s2: %v", err)
	}
	waitTerminal(t, s1, 30*time.Second)
	waitTerminal(t, s2, 30*time.Second)
	for _, s := range []*Session{s1, s2} {
		if s.State() != StateDone || s.Report() == nil {
			t.Fatalf("%s state = %s report %v, want done with report", s.ID, s.State(), s.Report())
		}
	}
}

func TestDrain(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, MaxQueue: 1})
	running, err := m.Submit(slowSpec())
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	queued, err := m.Submit(slowSpec())
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	waitRunning(t, running, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err = m.Drain(ctx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain error = %v", err)
	}
	if !m.Draining() {
		t.Fatal("manager not draining after Drain")
	}
	if _, err := m.Submit(fastSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	for _, s := range []*Session{running, queued} {
		if !s.State().Terminal() {
			t.Fatalf("%s not terminal after Drain: %s", s.ID, s.State())
		}
		fs := decodeFrames(t, s)
		if last := fs[len(fs)-1]; last.Type != "eof" || last.Reason != ReasonShutdown {
			t.Fatalf("%s last frame = %+v, want eof/shutdown", s.ID, last)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown design", func(s *Spec) { s.Workload.Design = "QEMU" }},
		{"unknown function", func(s *Spec) { s.Workload.Functions = []string{"nope"} }},
		{"negative rps", func(s *Spec) { s.Workload.RPS = -1 }},
		{"excess rps", func(s *Spec) { s.Workload.RPS = MaxRPS + 1 }},
		{"negative weight", func(s *Spec) { s.Workload.Weights = map[string]float64{"Float": -1} }},
		{"negative pace", func(s *Spec) { s.Session.Pace = -1 }},
		{"negative timeout", func(s *Spec) { s.Session.Timeout = Duration(-time.Second) }},
		{"over virtual cap", func(s *Spec) { s.Workload.Duration = Duration(time.Hour) }},
	}
	m := NewManager(Config{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := fastSpec()
			tc.mut(&spec)
			if _, err := m.Submit(spec); err == nil {
				t.Fatal("Submit accepted an invalid spec")
			}
		})
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil || time.Duration(d) != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1500000`), &d); err != nil || time.Duration(d) != 1500*time.Microsecond {
		t.Fatalf("numeric form: %v %v", d, err)
	}
	b, err := json.Marshal(Duration(2 * time.Second))
	if err != nil || string(b) != `"2s"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &d); err == nil {
		t.Fatal("accepted a malformed duration")
	}
}
