package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// metric is one /metricz series: the exposition is assembled from a
// snapshot so a scrape never holds the manager lock while writing.
type metric struct {
	name, help, kind string
	value            float64
}

// WriteMetricz writes the server-side metrics in Prometheus text
// exposition format: names sorted, one sample per series, timestamped
// with milliseconds since manager start. The output grammar is the
// same one the telemetry exporters use (and cxlstat's exposition
// checker enforces): `# HELP`/`# TYPE` comment pairs followed by
// `name value timestamp`.
func (m *Manager) WriteMetricz(w io.Writer) error {
	m.mu.Lock()
	ms := []metric{
		{"cxlserved_queue_depth", "Admitted sessions waiting for a running slot.", "gauge", float64(len(m.queue))},
		{"cxlserved_sessions_active", "Sessions currently replaying.", "gauge", float64(m.running)},
		{"cxlserved_sessions_accepted_total", "Sessions admitted (running or queued).", "counter", float64(m.accepted)},
		{"cxlserved_sessions_completed_total", "Sessions whose trace drained normally.", "counter", float64(m.completed)},
		{"cxlserved_sessions_canceled_total", "Sessions stopped by client cancel or shutdown drain.", "counter", float64(m.canceled)},
		{"cxlserved_sessions_timeout_total", "Sessions stopped by their wall-clock timeout.", "counter", float64(m.timedOut)},
		{"cxlserved_sessions_failed_total", "Sessions whose run errored.", "counter", float64(m.failed)},
		{"cxlserved_sessions_rejected_total", "Submissions rejected with 429 (saturated).", "counter", float64(m.rejected)},
		{"cxlserved_wall_seconds_per_virtual_second", "Wall-clock cost of one virtual second, over completed sessions.", "gauge", ratio(m.wallNS, m.virtNS)},
		{"cxlserved_max_sessions", "Configured running-slot bound.", "gauge", float64(m.cfg.MaxSessions)},
		{"cxlserved_max_queue", "Configured admission-queue bound.", "gauge", float64(m.cfg.MaxQueue)},
	}
	drain := 0.0
	if m.draining {
		drain = 1
	}
	ms = append(ms, metric{"cxlserved_draining", "1 while the server is shutting down.", "gauge", drain})
	m.mu.Unlock()

	// Go runtime health, read outside the manager lock: these are the
	// process-side gauges an operator watches next to -debug-addr's
	// pprof endpoints.
	var rt runtime.MemStats
	runtime.ReadMemStats(&rt)
	ms = append(ms,
		metric{"cxlserved_goroutines", "Live goroutines in the serving process.", "gauge", float64(runtime.NumGoroutine())},
		metric{"cxlserved_heap_bytes", "Heap bytes currently allocated (runtime HeapAlloc).", "gauge", float64(rt.HeapAlloc)},
		metric{"cxlserved_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter", float64(rt.PauseTotalNs) / 1e9},
		metric{"cxlserved_gc_cycles_total", "Completed GC cycles.", "counter", float64(rt.NumGC)},
	)

	ts := time.Since(m.start).Milliseconds()
	if ts < 0 {
		ts = 0
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, s := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s %d\n",
			s.name, s.help, s.name, s.kind, s.name, formatValue(s.value), ts); err != nil {
			return err
		}
	}
	return nil
}

// ratio returns a/b as a finite float (0 when b is 0).
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// formatValue renders a sample value in the exposition grammar
// (decimal or exponent form, never Inf/NaN — callers guard those).
func formatValue(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// The grammar wants a digit before any exponent; FormatFloat 'g'
	// already emits e.g. "1e+06", which the checker accepts. Bare
	// integers come out bare ("3"), also accepted.
	return s
}
