// Package serve is the live serving layer behind cmd/cxlserved
// (DESIGN.md §15): an HTTP capacity-planning service that accepts
// workload/what-if specs as JSON, runs each as an isolated concurrent
// simulation session through the facade's RunWorkload entry point, and
// streams the session's telemetry ticks, SLO alert transitions, and
// final results as NDJSON frames.
//
// The package splits into four pieces. Spec (spec.go) is the wire
// format: a JSON mirror of the facade Config plus a Workload and
// per-session serving options, validated before admission. Session
// (session.go) owns one run: its frame log, lifecycle state, pacing,
// and cancellation. Manager (manager.go) is admission control: a
// bounded set of concurrently running sessions plus a bounded FIFO
// queue, rejecting beyond that with ErrSaturated (HTTP 429 +
// Retry-After) and draining in-flight work on shutdown. NewHandler
// (http.go) maps it all onto the HTTP API documented in docs/API.md,
// with server-side metrics on /metricz in the same deterministic
// Prometheus exposition format the telemetry exporters use.
//
// Serving never compromises determinism: a session's simulation is
// byte-identical to the same Config and Workload run through
// cxlfork.RunWorkload directly — streaming, pacing, and concurrent
// neighbor sessions change wall-clock behaviour only. The golden test
// in golden_test.go pins exactly that equivalence.
package serve
