package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"cxlfork/internal/xray"
)

// xraySpec is the fast spec with attribution switched on.
func xraySpec() Spec {
	s := fastSpec()
	s.Config.XRay = true
	return s
}

// TestXRayFrameAndEndpoint pins the serving surface of the blame
// report: an attributed session emits one "xray" frame immediately
// before its result frame, and GET /v1/sessions/{id}/xray serves the
// same report as JSON and as the cxlstat-identical text table.
func TestXRayFrameAndEndpoint(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", xraySpec())
	var sum struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decode submit reply: %v", err)
	}
	resp.Body.Close()
	s, ok := m.Get(sum.ID)
	if !ok {
		t.Fatal("session not found")
	}
	waitTerminal(t, s, 30e9)

	heads := decodeFrames(t, s)
	if len(heads) < 3 {
		t.Fatalf("stream too short: %+v", heads)
	}
	// ... sample*, xray, result, eof.
	if got := heads[len(heads)-2].Type; got != "result" {
		t.Fatalf("penultimate frame %q, want result", got)
	}
	if got := heads[len(heads)-3].Type; got != "xray" {
		t.Fatalf("frame before result is %q, want xray", got)
	}

	report := s.Report()
	if report == nil || report.XRay == nil {
		t.Fatal("terminal session has no XRay report")
	}

	// JSON shape: the endpoint serves the report verbatim.
	jr, err := srv.Client().Get(srv.URL + "/v1/sessions/" + sum.ID + "/xray")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("GET xray status = %d, want 200", jr.StatusCode)
	}
	var got xray.Report
	if err := json.NewDecoder(jr.Body).Decode(&got); err != nil {
		t.Fatalf("decode xray report: %v", err)
	}
	if got.Requests != report.XRay.Requests || got.Fingerprint() != report.XRay.Fingerprint() {
		t.Fatalf("endpoint report diverges: %d/%#x vs %d/%#x",
			got.Requests, got.Fingerprint(), report.XRay.Requests, report.XRay.Fingerprint())
	}

	// Text shape: byte-identical to the report's own rendering — the
	// same table cxlstat -xray prints.
	tr, err := srv.Client().Get(srv.URL + "/v1/sessions/" + sum.ID + "/xray?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	body, err := io.ReadAll(tr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != report.XRay.Text() {
		t.Fatalf("text endpoint diverges from Report.Text:\n%s", body)
	}
}

// TestXRayEndpointErrors pins the endpoint's refusal paths: unknown
// session, a session that ran without attribution, and a session that
// is still running.
func TestXRayEndpointErrors(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	if r, _ := srv.Client().Get(srv.URL + "/v1/sessions/nope/xray"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status = %d, want 404", r.StatusCode)
	}

	// Attribution off: terminal session, no report to serve.
	resp := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", fastSpec())
	var sum struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s, _ := m.Get(sum.ID)
	waitTerminal(t, s, 30e9)
	if r, _ := srv.Client().Get(srv.URL + "/v1/sessions/" + sum.ID + "/xray"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unattributed session status = %d, want 404", r.StatusCode)
	}

	// Still running: 409 until terminal.
	resp = postSpec(t, srv.Client(), srv.URL+"/v1/sessions", slowSpec())
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	s, _ = m.Get(sum.ID)
	waitRunning(t, s, 30e9)
	if r, _ := srv.Client().Get(srv.URL + "/v1/sessions/" + sum.ID + "/xray"); r.StatusCode != http.StatusConflict {
		t.Fatalf("running session status = %d, want 409", r.StatusCode)
	}
	s.requestCancel(ReasonCanceled)
	waitTerminal(t, s, 30e9)
}
