package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cxlfork"
)

// TestServedFingerprintMatchesFacade is the serving layer's core
// determinism guarantee: a spec POSTed to the HTTP API must produce a
// result fingerprint byte-identical to the same Config and Workload
// run through cxlfork.RunWorkload directly — streaming, telemetry, and
// the transport change nothing about the simulation.
func TestServedFingerprintMatchesFacade(t *testing.T) {
	for _, design := range []string{"CXLfork", "CRIU-CXL"} {
		t.Run(design, func(t *testing.T) {
			spec := fastSpec()
			spec.Workload.Design = design
			spec.Workload.Weights = map[string]float64{"Float": 2}

			// Served path.
			m := NewManager(Config{MaxSessions: 1})
			defer drainNow(t, m)
			srv := httptest.NewServer(NewHandler(m))
			defer srv.Close()
			resp := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status = %d, want 202", resp.StatusCode)
			}
			var sum struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
				t.Fatalf("decode submit reply: %v", err)
			}
			resp.Body.Close()
			served := pollReport(t, srv, sum.ID)

			// Direct facade path: same spec, no serving hooks at all
			// (telemetry stays off — sampling must be observational).
			cfg, wl := spec.build()
			direct, err := cxlfork.RunWorkload(cfg, wl, nil)
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}

			if served.Fingerprint != direct.Fingerprint {
				t.Fatalf("fingerprint drift: served %s, direct %s", served.Fingerprint, direct.Fingerprint)
			}
			if served.Completed != direct.Completed || served.P99 != direct.P99 {
				t.Fatalf("result drift: served %+v, direct %+v", served, direct)
			}
			if served.TelemetryTicks == 0 {
				t.Fatal("served run recorded no telemetry ticks")
			}
		})
	}
}

// pollReport polls the session status endpoint until the session is
// terminal and returns its report — the non-streaming client shape.
func pollReport(t *testing.T, srv *httptest.Server, id string) *cxlfork.RunReport {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := srv.Client().Get(srv.URL + "/v1/sessions/" + id)
		if err != nil {
			t.Fatalf("GET session: %v", err)
		}
		var sum struct {
			State  State              `json:"state"`
			Report *cxlfork.RunReport `json:"report"`
			Error  string             `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sum)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode session: %v", err)
		}
		if sum.State.Terminal() {
			if sum.State != StateDone {
				t.Fatalf("session ended %s (%s)", sum.State, sum.Error)
			}
			return sum.Report
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never finished (state %s)", id, sum.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
