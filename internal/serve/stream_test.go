package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func postSpec(t *testing.T, client *http.Client, url string, spec Spec) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	return resp
}

func TestStreamFrameOrdering(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp := postSpec(t, srv.Client(), srv.URL+"/v1/sessions?stream=1", fastSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("content type = %q, want %q", ct, NDJSONContentType)
	}

	var heads []frameHead
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var h frameHead
		if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		heads = append(heads, h)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(heads) < 3 {
		t.Fatalf("stream too short: %+v", heads)
	}
	if heads[0].Type != "hello" {
		t.Fatalf("first frame %+v, want hello", heads[0])
	}
	last := heads[len(heads)-1]
	if last.Type != "eof" || last.Reason != ReasonComplete {
		t.Fatalf("last frame %+v, want eof/complete", last)
	}
	if last.Frames != len(heads) {
		t.Fatalf("eof frame count %d, want %d", last.Frames, len(heads))
	}
	if heads[len(heads)-2].Type != "result" {
		t.Fatalf("penultimate frame %+v, want result", heads[len(heads)-2])
	}
	var seq int64
	for _, h := range heads[1 : len(heads)-2] {
		if h.Type != "sample" && h.Type != "alert" {
			t.Fatalf("unexpected mid-stream frame type %q", h.Type)
		}
		if h.Type == "sample" {
			if h.Seq != seq+1 {
				t.Fatalf("sample seq %d after %d: frames out of order", h.Seq, seq)
			}
			seq = h.Seq
		}
	}
	if seq == 0 {
		t.Fatal("stream carried no sample frames")
	}
}

func TestStreamCleanEOFOnShutdown(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", slowSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var sum struct {
		ID     string `json:"id"`
		Stream string `json:"stream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decode submit reply: %v", err)
	}
	resp.Body.Close()

	s, ok := m.Get(sum.ID)
	if !ok {
		t.Fatalf("session %s not found", sum.ID)
	}
	waitRunning(t, s, 10*time.Second)

	streamResp, err := srv.Client().Get(srv.URL + sum.Stream)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer streamResp.Body.Close()

	type streamResult struct {
		heads []frameHead
		err   error
	}
	got := make(chan streamResult, 1)
	go func() {
		var r streamResult
		sc := bufio.NewScanner(streamResp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var h frameHead
			if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
				r.err = err
				break
			}
			r.heads = append(r.heads, h)
		}
		if r.err == nil {
			r.err = sc.Err()
		}
		got <- r
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = m.Drain(ctx)

	select {
	case r := <-got:
		if r.err != nil && r.err != io.EOF {
			t.Fatalf("stream did not end cleanly: %v", r.err)
		}
		if len(r.heads) == 0 {
			t.Fatal("stream ended with no frames")
		}
		last := r.heads[len(r.heads)-1]
		if last.Type != "eof" || last.Reason != ReasonShutdown {
			t.Fatalf("last frame %+v, want eof/shutdown", last)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream still open after drain")
	}
}

func TestHTTPAdmissionAndMetricz(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1, MaxQueue: 1, RetryAfter: 3 * time.Second})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	r1 := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", slowSpec())
	r1.Body.Close()
	r2 := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", slowSpec())
	r2.Body.Close()
	r3 := postSpec(t, srv.Client(), srv.URL+"/v1/sessions", slowSpec())
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metricz")
	if err != nil {
		t.Fatalf("GET /metricz: %v", err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("read /metricz: %v", err)
	}
	checkExposition(t, string(body))
	for _, want := range []string{
		"cxlserved_sessions_rejected_total 1 ",
		"cxlserved_sessions_active 1 ",
		"cxlserved_queue_depth 1 ",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metricz missing %q:\n%s", want, body)
		}
	}

	for _, s := range m.Sessions() {
		m.Cancel(s.ID, ReasonCanceled)
	}
	for _, s := range m.Sessions() {
		waitTerminal(t, s, 30*time.Second)
	}
}

// checkExposition validates the Prometheus text format the telemetry
// exporters (and cxlstat's scrape checker) expect: HELP/TYPE comment
// pairs and `name{labels} value timestamp` samples.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)? [0-9]+$`)
	n := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !comment.MatchString(line) {
				t.Fatalf("bad exposition comment %q", line)
			}
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("bad exposition sample %q", line)
		}
		n++
	}
	if n == 0 {
		t.Fatal("exposition carried no samples")
	}
}

func TestHTTPErrors(t *testing.T) {
	m := NewManager(Config{})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/v1/sessions", "{", http.StatusBadRequest},
		{"unknown field", "POST", "/v1/sessions", `{"wokload":{}}`, http.StatusBadRequest},
		{"unknown design", "POST", "/v1/sessions", `{"workload":{"design":"QEMU"}}`, http.StatusBadRequest},
		{"missing session", "GET", "/v1/sessions/s999", "", http.StatusNotFound},
		{"missing stream", "GET", "/v1/sessions/s999/stream", "", http.StatusNotFound},
		{"missing cancel", "DELETE", "/v1/sessions/s999", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var er errorReply
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Fatalf("error body = %+v (%v)", er, err)
			}
		})
	}
}

func TestDesignsAndHealth(t *testing.T) {
	m := NewManager(Config{})
	defer drainNow(t, m)
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dr struct {
		Designs   []string `json:"designs"`
		Functions []string `json:"functions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Designs) != 4 || len(dr.Functions) == 0 {
		t.Fatalf("designs reply %+v", dr)
	}

	h, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", h.StatusCode)
	}
	drainNow(t, m)
	h2, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h2.Body.Close()
	if h2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", h2.StatusCode)
	}
}
