package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission errors. The HTTP layer maps ErrSaturated to 429 +
// Retry-After and ErrDraining to 503.
var (
	// ErrSaturated: every running slot is busy and the wait queue is
	// full. The client should retry after Config.RetryAfter.
	ErrSaturated = errors.New("serve: saturated (running slots and queue full)")
	// ErrDraining: the server is shutting down and admits nothing new.
	ErrDraining = errors.New("serve: draining")
)

// Config bounds the manager. Zero values take the defaults documented
// per field.
type Config struct {
	// MaxSessions is the number of concurrently running simulations
	// (default 2). Each session is a full cluster replay, so this is
	// the server's real capacity knob.
	MaxSessions int
	// MaxQueue is the admission queue depth beyond the running slots
	// (default 4); past it, Submit returns ErrSaturated.
	MaxQueue int
	// SessionTimeout caps each session's wall-clock runtime
	// (default 2m); Spec.Session.Timeout overrides it per session.
	SessionTimeout time.Duration
	// MaxVirtual caps Workload.Duration at admission (default 5m;
	// negative = uncapped).
	MaxVirtual time.Duration
	// RetryAfter is the hint returned with ErrSaturated rejections
	// (default 2s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 2 * time.Minute
	}
	if c.MaxVirtual == 0 {
		c.MaxVirtual = 5 * time.Minute
	}
	if c.MaxVirtual < 0 {
		c.MaxVirtual = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	return c
}

// Manager is the admission controller: it owns every session, runs at
// most Config.MaxSessions concurrently, queues up to Config.MaxQueue
// more in FIFO order, and rejects beyond that. All methods are safe
// for concurrent use.
type Manager struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	byID     map[string]*Session
	order    []*Session
	queue    []*Session
	running  int
	draining bool
	seq      int
	wg       sync.WaitGroup

	accepted  int64
	completed int64
	canceled  int64
	timedOut  int64
	failed    int64
	rejected  int64
	wallNS    int64
	virtNS    int64
}

// NewManager returns a manager with cfg's bounds (defaults applied).
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:   cfg.withDefaults(),
		start: time.Now(),
		byID:  make(map[string]*Session),
	}
}

// Cfg returns the manager's effective (default-applied) config.
func (m *Manager) Cfg() Config { return m.cfg }

// Submit validates and admits one spec. It returns the session
// (already running, or queued for the next free slot), ErrSaturated
// when both the running slots and the queue are full, ErrDraining
// during shutdown, or a validation error.
func (m *Manager) Submit(spec Spec) (*Session, error) {
	if err := spec.Validate(m.cfg.MaxVirtual); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if m.running >= m.cfg.MaxSessions && len(m.queue) >= m.cfg.MaxQueue {
		m.rejected++
		return nil, ErrSaturated
	}
	m.seq++
	s := newSession(fmt.Sprintf("s%d", m.seq), spec)
	m.byID[s.ID] = s
	m.order = append(m.order, s)
	m.accepted++
	wl := s.wl
	s.append(helloFrame{
		Type:      "hello",
		Session:   s.ID,
		Design:    designOrDefault(wl.Design),
		RPS:       rpsOrDefault(wl.RPS),
		VirtualMS: float64(durationOrDefault(wl.Duration)) / float64(time.Millisecond),
		Pace:      spec.Session.Pace,
	})
	if m.running < m.cfg.MaxSessions {
		m.startLocked(s)
	} else {
		m.queue = append(m.queue, s)
	}
	return s, nil
}

func designOrDefault(d string) string {
	if d == "" {
		return "CXLfork"
	}
	return d
}

func rpsOrDefault(r float64) float64 {
	if r <= 0 {
		return 60
	}
	return r
}

func durationOrDefault(d time.Duration) time.Duration {
	if d <= 0 {
		return 10 * time.Second
	}
	return d
}

// startLocked moves s into a running slot; callers hold m.mu.
func (m *Manager) startLocked(s *Session) {
	m.running++
	m.wg.Add(1)
	timeout := m.cfg.SessionTimeout
	if t := time.Duration(s.spec.Session.Timeout); t > 0 {
		timeout = t
	}
	go m.runSession(s, timeout)
}

// runSession drives one session to completion, then accounts it and
// starts the next queued session.
func (m *Manager) runSession(s *Session, timeout time.Duration) {
	defer m.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	s.mu.Lock()
	s.cancel = cancel
	alreadyCanceled := s.reason != ""
	s.mu.Unlock()
	if alreadyCanceled {
		// Canceled while queued, before the slot arrived.
		s.abort()
	} else {
		s.run(ctx)
	}

	m.mu.Lock()
	m.running--
	switch s.State() {
	case StateDone:
		m.completed++
	case StateCanceled:
		m.canceled++
	case StateTimeout:
		m.timedOut++
	default:
		m.failed++
	}
	if rep := s.Report(); rep != nil {
		m.wallNS += int64(s.wallDur)
		m.virtNS += int64(rep.VirtualDuration)
	}
	if !m.draining && len(m.queue) > 0 && m.running < m.cfg.MaxSessions {
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.startLocked(next)
	}
	m.mu.Unlock()
}

// Get returns a session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[id]
	return s, ok
}

// Sessions returns every session in admission order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Session(nil), m.order...)
}

// Cancel stops a session by ID with the given reason (ReasonCanceled
// for client cancels). It reports whether a live session was found; a
// queued session is aborted when its slot arrives.
func (m *Manager) Cancel(id, reason string) bool {
	s, ok := m.Get(id)
	if !ok {
		return false
	}
	return s.requestCancel(reason)
}

// Draining reports whether Drain has been called.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// QueueDepth returns the number of admitted-but-waiting sessions.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Running returns the number of sessions currently replaying.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Drain shuts the manager down: new submissions are rejected with
// ErrDraining, queued sessions are aborted with reason "shutdown", and
// running sessions are given until ctx's deadline to finish before
// being canceled with the same reason. Drain returns once every
// session has emitted its terminal frames; the error is ctx's if the
// deadline forced cancellation.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	queued := m.queue
	m.queue = nil
	m.mu.Unlock()

	for _, s := range queued {
		s.requestCancel(ReasonShutdown)
		s.abort()
		m.mu.Lock()
		m.canceled++
		m.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: force-cancel stragglers, then wait for their
	// terminal frames — the engine unwinds at the next telemetry tick.
	for _, s := range m.Sessions() {
		s.requestCancel(ReasonShutdown)
	}
	<-done
	return ctx.Err()
}
