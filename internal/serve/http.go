package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cxlfork"
)

// maxSpecBytes bounds a POST body; specs are small JSON documents.
const maxSpecBytes = 1 << 20

// NDJSONContentType is the media type of the session streams.
const NDJSONContentType = "application/x-ndjson"

// NewHandler returns the cxlserved HTTP API over m. Endpoints, frame
// formats, and error semantics are specified in docs/API.md:
//
//	POST   /v1/sessions          submit a spec (?stream=1 streams inline)
//	GET    /v1/sessions          list sessions
//	GET    /v1/sessions/{id}     session status + report
//	DELETE /v1/sessions/{id}     cancel a session
//	GET    /v1/sessions/{id}/stream   NDJSON frame stream (replay + follow)
//	GET    /v1/sessions/{id}/xray     attribution report (?format=text for the blame table)
//	GET    /v1/designs           designs and functions the server accepts
//	GET    /healthz              liveness ("ok", or "draining" during shutdown)
//	GET    /metricz              server metrics, Prometheus text format
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		var spec Spec
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad spec: "+err.Error(), 0)
			return
		}
		s, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrSaturated):
			writeError(w, http.StatusTooManyRequests, err.Error(), m.Cfg().RetryAfter)
			return
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), m.Cfg().RetryAfter)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		if streamRequested(r) {
			streamSession(w, r, s)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/v1/sessions/"+s.ID)
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, sessionSummary(s))
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		type listReply struct {
			Sessions []summary `json:"sessions"`
		}
		reply := listReply{Sessions: []summary{}}
		for _, s := range m.Sessions() {
			reply.Sessions = append(reply.Sessions, sessionSummary(s))
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, reply)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such session", 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, sessionSummary(s))
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such session", 0)
			return
		}
		m.Cancel(s.ID, ReasonCanceled)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, sessionSummary(s))
	})
	mux.HandleFunc("GET /v1/sessions/{id}/xray", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such session", 0)
			return
		}
		if !s.State().Terminal() {
			writeError(w, http.StatusConflict, "session still running; xray is available once the session is terminal", 0)
			return
		}
		report := s.Report()
		if report == nil || report.XRay == nil {
			writeError(w, http.StatusNotFound, "no xray report (set config.xray in the spec)", 0)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = report.XRay.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, report.XRay)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such session", 0)
			return
		}
		streamSession(w, r, s)
	})
	mux.HandleFunc("GET /v1/designs", func(w http.ResponseWriter, r *http.Request) {
		type designsReply struct {
			Designs   []string `json:"designs"`
			Functions []string `json:"functions"`
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, designsReply{
			Designs:   cxlfork.WorkloadDesigns,
			Functions: cxlfork.FunctionNames(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if m.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteMetricz(w)
	})
	return mux
}

// streamRequested reports whether the submit call asked for an inline
// stream (?stream=1 or ?stream=true).
func streamRequested(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// streamSession writes the session's NDJSON frames — replaying what
// exists, then following live — until the terminal eof frame or client
// disconnect. Every frame is flushed as one line.
func streamSession(w http.ResponseWriter, r *http.Request, s *Session) {
	w.Header().Set("Content-Type", NDJSONContentType)
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	i := 0
	for {
		frames, changed, finished := s.next(i)
		for _, f := range frames {
			// Two writes, not append(f, '\n'): frames are shared by
			// every concurrent reader and must stay immutable.
			if _, err := w.Write(f); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			i++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if finished && len(frames) == 0 {
			return
		}
		if finished {
			continue // drain any frames appended after the terminal flag
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// summary is the session-status JSON shape shared by the list, get,
// submit, and cancel replies.
type summary struct {
	ID     string             `json:"id"`
	State  State              `json:"state"`
	Frames int                `json:"frames"`
	Stream string             `json:"stream"`
	Report *cxlfork.RunReport `json:"report,omitempty"`
	Error  string             `json:"error,omitempty"`
}

func sessionSummary(s *Session) summary {
	out := summary{
		ID:     s.ID,
		State:  s.State(),
		Frames: s.Frames(),
		Stream: "/v1/sessions/" + s.ID + "/stream",
	}
	if out.State.Terminal() {
		out.Report = s.Report()
		out.Error = s.Err()
	}
	return out
}

// errorReply is the JSON error body of every non-2xx response.
type errorReply struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError writes the JSON error body, setting Retry-After (whole
// seconds, minimum 1) when retryAfter is non-zero.
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	writeJSON(w, errorReply{Error: msg, Status: status})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
