package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"cxlfork"
	"cxlfork/internal/xray"
)

// State is a session's lifecycle position.
type State string

// Session lifecycle states. Every session moves queued → running →
// one of the four terminal states.
const (
	// StateQueued: accepted, waiting for a running slot.
	StateQueued State = "queued"
	// StateRunning: the simulation is replaying.
	StateRunning State = "running"
	// StateDone: the trace drained; the report is complete.
	StateDone State = "done"
	// StateCanceled: stopped by DELETE or server drain; the report, if
	// any, is partial.
	StateCanceled State = "canceled"
	// StateTimeout: the wall-clock timeout stopped the replay.
	StateTimeout State = "timeout"
	// StateFailed: the spec was accepted but the run errored.
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s != StateQueued && s != StateRunning
}

// EOF frame reasons (the `reason` field of the terminal stream frame).
const (
	// ReasonComplete: the trace drained normally.
	ReasonComplete = "complete"
	// ReasonCanceled: the client canceled the session.
	ReasonCanceled = "canceled"
	// ReasonTimeout: the session's wall-clock timeout fired.
	ReasonTimeout = "timeout"
	// ReasonShutdown: the server drained the session on shutdown.
	ReasonShutdown = "shutdown"
	// ReasonError: the run failed; the frame carries the error.
	ReasonError = "error"
)

// Session is one admitted capacity-planning run: its spec, lifecycle
// state, frame log, and cancellation hook. All methods are safe for
// concurrent use; the frame log is append-only so any number of
// stream readers can replay and follow it.
type Session struct {
	// ID is the server-assigned session identifier ("s1", "s2", …).
	ID string

	spec Spec
	cfg  cxlfork.Config
	wl   cxlfork.Workload

	mu       sync.Mutex
	state    State
	frames   [][]byte // marshaled NDJSON frames, no trailing newline
	changed  chan struct{}
	report   *cxlfork.RunReport
	runErr   string
	reason   string // cancel reason, set before cancel() fires
	cancel   context.CancelFunc
	started  time.Time
	wallDur  time.Duration
	finished bool
}

func newSession(id string, spec Spec) *Session {
	cfg, wl := spec.build()
	return &Session{
		ID:      id,
		spec:    spec,
		cfg:     cfg,
		wl:      wl,
		state:   StateQueued,
		changed: make(chan struct{}),
	}
}

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Report returns the run report (nil until the session finishes; a
// canceled or timed-out session carries a partial report).
func (s *Session) Report() *cxlfork.RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Err returns the run error string ("" unless StateFailed).
func (s *Session) Err() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Frames returns the frame count so far.
func (s *Session) Frames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// next returns the frames from index i onward, a channel closed on the
// next append or state change, and whether the session has emitted its
// final frame. Stream readers loop on it to replay and follow.
func (s *Session) next(i int) ([][]byte, <-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [][]byte
	if i < len(s.frames) {
		out = s.frames[i:]
	}
	return out, s.changed, s.finished
}

// signalLocked wakes every waiter; callers hold s.mu.
func (s *Session) signalLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

func (s *Session) append(frame any) {
	b, err := json.Marshal(frame)
	if err != nil {
		// Frames are built from plain structs and maps; a marshal
		// failure is a programming error.
		panic("serve: unmarshalable frame: " + err.Error())
	}
	s.mu.Lock()
	s.frames = append(s.frames, b)
	s.signalLocked()
	s.mu.Unlock()
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.signalLocked()
	s.mu.Unlock()
}

// requestCancel records the cancel reason and stops the run. It is a
// no-op once the session is terminal; the first reason wins.
func (s *Session) requestCancel(reason string) bool {
	s.mu.Lock()
	if s.state.Terminal() {
		s.mu.Unlock()
		return false
	}
	if s.reason == "" {
		s.reason = reason
	}
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// finish appends the terminal frames and resolves the final state.
func (s *Session) finish(report *cxlfork.RunReport, runErr error, ctxErr error) {
	s.mu.Lock()
	reason := s.reason
	s.mu.Unlock()

	st := StateDone
	frameReason := ReasonComplete
	var errText string
	switch {
	case runErr == nil:
		// complete
	case errors.Is(runErr, cxlfork.ErrInterrupted):
		switch {
		case reason != "":
			frameReason = reason
			st = StateCanceled
		case errors.Is(ctxErr, context.DeadlineExceeded):
			frameReason = ReasonTimeout
			st = StateTimeout
		default:
			frameReason = ReasonCanceled
			st = StateCanceled
		}
	default:
		frameReason = ReasonError
		st = StateFailed
		errText = runErr.Error()
	}
	if frameReason == ReasonTimeout {
		st = StateTimeout
	}

	if report != nil {
		if report.XRay != nil {
			s.append(xrayFrame{Type: "xray", Session: s.ID, Report: report.XRay})
		}
		s.append(resultFrame{Type: "result", Session: s.ID, Report: report})
	}
	s.mu.Lock()
	s.report = report
	s.runErr = errText
	s.mu.Unlock()
	s.append(eofFrame{Type: "eof", Session: s.ID, Reason: frameReason, Error: errText, Frames: s.Frames() + 1})
	s.mu.Lock()
	s.state = st
	s.finished = true
	if !s.started.IsZero() {
		s.wallDur = time.Since(s.started)
	}
	s.signalLocked()
	s.mu.Unlock()
}

// abort terminates a session that never ran (queued at drain, or
// canceled before its slot arrived): the stream gets only its hello
// and eof frames.
func (s *Session) abort() {
	s.finish(nil, cxlfork.ErrInterrupted, nil)
}

// run executes the session's simulation on the calling goroutine,
// emitting sample/alert frames as the replay ticks and the terminal
// result/eof frames when it unwinds. ctx carries both the per-session
// timeout and cancellation.
func (s *Session) run(ctx context.Context) {
	s.mu.Lock()
	s.state = StateRunning
	s.started = time.Now()
	start := s.started
	s.signalLocked()
	s.mu.Unlock()

	pace := s.spec.Session.Pace
	opts := &cxlfork.RunOptions{
		OnSample: func(t cxlfork.Tick) {
			points := make(map[string]float64, len(t.Points))
			for _, p := range t.Points {
				points[p.Series] = p.Value
			}
			s.append(sampleFrame{
				Type:    "sample",
				Session: s.ID,
				Seq:     t.Seq,
				NowMS:   float64(t.Now) / float64(time.Millisecond),
				Points:  points,
			})
			for _, a := range t.Alerts {
				s.append(alertFrame{
					Type:      "alert",
					Session:   s.ID,
					NowMS:     float64(a.At) / float64(time.Millisecond),
					Objective: a.Objective,
					Firing:    a.Firing,
					Short:     a.Short,
					Long:      a.Long,
				})
			}
			if pace > 0 {
				// Live replay: hold this virtual instant until its wall
				// time arrives (pace = virtual seconds per wall second).
				target := start.Add(time.Duration(float64(t.Now) / pace))
				if wait := time.Until(target); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
					}
				}
			}
		},
		Interrupt: func() bool { return ctx.Err() != nil },
	}

	report, err := cxlfork.RunWorkload(s.cfg, s.wl, opts)
	s.finish(report, err, ctx.Err())
}

// helloFrame is the first frame of every session stream.
type helloFrame struct {
	Type      string  `json:"type"`
	Session   string  `json:"session"`
	Design    string  `json:"design"`
	RPS       float64 `json:"rps"`
	VirtualMS float64 `json:"virtual_ms"`
	Pace      float64 `json:"pace,omitempty"`
}

// sampleFrame carries one telemetry tick: every series' value at one
// virtual instant. Points marshal in sorted key order, so the frame
// bytes are deterministic.
type sampleFrame struct {
	Type    string             `json:"type"`
	Session string             `json:"session"`
	Seq     int64              `json:"seq"`
	NowMS   float64            `json:"now_ms"`
	Points  map[string]float64 `json:"points"`
}

// alertFrame carries one SLO burn-rate alert transition.
type alertFrame struct {
	Type      string  `json:"type"`
	Session   string  `json:"session"`
	NowMS     float64 `json:"now_ms"`
	Objective string  `json:"objective"`
	Firing    bool    `json:"firing"`
	Short     float64 `json:"short"`
	Long      float64 `json:"long"`
}

// xrayFrame carries the session's critical-path attribution report,
// emitted just before the result frame when the spec set config.xray.
type xrayFrame struct {
	Type    string       `json:"type"`
	Session string       `json:"session"`
	Report  *xray.Report `json:"report"`
}

// resultFrame carries the final (or partial, if interrupted) report.
type resultFrame struct {
	Type    string             `json:"type"`
	Session string             `json:"session"`
	Report  *cxlfork.RunReport `json:"report"`
}

// eofFrame is the last frame of every stream; Frames counts all frames
// including this one.
type eofFrame struct {
	Type    string `json:"type"`
	Session string `json:"session"`
	Reason  string `json:"reason"`
	Error   string `json:"error,omitempty"`
	Frames  int    `json:"frames"`
}
