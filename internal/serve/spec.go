package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"cxlfork"
	"cxlfork/internal/faas"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms") and unmarshals from either a duration string or a plain
// number of nanoseconds — the wire form every duration field in a Spec
// uses.
type Duration time.Duration

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string ("1.5s") or a number
// of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// Spec is one capacity-planning request: the platform to simulate, the
// workload to replay against it, and how the session should be served.
// Unset fields keep the facade defaults, so the smallest useful spec is
// `{"workload":{"design":"CXLfork"}}`.
type Spec struct {
	// Config describes the simulated platform (the facade Config).
	Config ConfigSpec `json:"config"`
	// Workload describes the replayed arrival trace.
	Workload WorkloadSpec `json:"workload"`
	// Session carries serving options: timeout and live pacing.
	Session SessionSpec `json:"session"`
}

// ConfigSpec is the JSON mirror of cxlfork.Config. Zero values keep the
// paper-testbed defaults (two nodes, 6 GiB DRAM, 8 GiB CXL, 391 ns).
type ConfigSpec struct {
	// Nodes is the number of compute nodes sharing the CXL device.
	Nodes int `json:"nodes,omitempty"`
	// NodeDRAMBytes is per-node local memory in bytes.
	NodeDRAMBytes int64 `json:"node_dram_bytes,omitempty"`
	// CXLCapacityBytes is the shared device capacity in bytes.
	CXLCapacityBytes int64 `json:"cxl_capacity_bytes,omitempty"`
	// CXLLatency is the round-trip latency to CXL memory.
	CXLLatency Duration `json:"cxl_latency,omitempty"`
	// Cores is the number of cores per node.
	Cores int `json:"cores,omitempty"`
	// CheckpointLanes shards checkpoint pipelines across worker lanes.
	CheckpointLanes int `json:"checkpoint_lanes,omitempty"`
	// RestoreLanes is the restore-side lane count.
	RestoreLanes int `json:"restore_lanes,omitempty"`
	// Workers is the simulation worker count (DESIGN.md §13).
	Workers int `json:"workers,omitempty"`
	// Seed drives all randomized behaviour (Workload.Seed overrides it
	// for trace generation).
	Seed int64 `json:"seed,omitempty"`
	// Capacity tunes checkpoint eviction (DESIGN.md §10).
	Capacity CapacitySpec `json:"capacity,omitempty"`
	// Replication tunes the device pool and replica placement
	// (DESIGN.md §12).
	Replication ReplicationSpec `json:"replication,omitempty"`
	// Fabric declares a multi-switch topology (DESIGN.md §14).
	Fabric FabricSpec `json:"fabric,omitempty"`
	// Telemetry tunes sampling cadence and SLO objectives
	// (DESIGN.md §11). Streaming sessions always sample; Enabled is
	// implied.
	Telemetry TelemetrySpec `json:"telemetry,omitempty"`
	// XRay enables critical-path latency attribution (DESIGN.md §16):
	// the session's result gains a blame report, also served at
	// GET /v1/sessions/{id}/xray and streamed as an "xray" frame.
	XRay bool `json:"xray,omitempty"`
}

// CapacitySpec mirrors cxlfork.CapacityConfig.
type CapacitySpec struct {
	// EvictPolicy is "costbenefit" (default), "lru", or "largest".
	EvictPolicy string `json:"evict_policy,omitempty"`
	// HighWatermark is the occupancy fraction that triggers eviction.
	HighWatermark float64 `json:"high_watermark,omitempty"`
	// LowWatermark is the occupancy fraction eviction drives back to.
	LowWatermark float64 `json:"low_watermark,omitempty"`
	// ReclaimPeriod is the background re-check interval.
	ReclaimPeriod Duration `json:"reclaim_period,omitempty"`
}

// ReplicationSpec mirrors cxlfork.ReplicationConfig.
type ReplicationSpec struct {
	// Devices is the pool size; 0 or 1 keeps the single device.
	Devices int `json:"devices,omitempty"`
	// Factor is the number of devices holding each checkpoint.
	Factor int `json:"factor,omitempty"`
	// RepairPeriod is the anti-entropy loop's tick.
	RepairPeriod Duration `json:"repair_period,omitempty"`
	// RetryBudget is the per-restore retry budget.
	RetryBudget int `json:"retry_budget,omitempty"`
}

// FabricSpec mirrors cxlfork.FabricConfig.
type FabricSpec struct {
	// Topology is the fabric spec text ("" keeps the flat model).
	Topology string `json:"topology,omitempty"`
	// Placement is "hash" (default) or "locality".
	Placement string `json:"placement,omitempty"`
}

// TelemetrySpec mirrors the telemetry/SLO knobs of
// cxlfork.TelemetryConfig.
type TelemetrySpec struct {
	// SampleEvery is the virtual-time sampling period (default 100ms) —
	// also the streaming frame cadence.
	SampleEvery Duration `json:"sample_every,omitempty"`
	// SeriesCap bounds each series' sample ring.
	SeriesCap int `json:"series_cap,omitempty"`
	// SLOOccupancy declares a device-occupancy objective.
	SLOOccupancy float64 `json:"slo_occupancy,omitempty"`
	// SLOColdStartP99 declares a cold-start tail objective.
	SLOColdStartP99 Duration `json:"slo_cold_start_p99,omitempty"`
	// SLODrive lets a firing occupancy alert drive the capacity
	// manager.
	SLODrive bool `json:"slo_drive,omitempty"`
}

// WorkloadSpec is the JSON mirror of cxlfork.Workload.
type WorkloadSpec struct {
	// Design is "CXLfork" (default), "CXLfork-MoW", "CRIU-CXL", or
	// "Mitosis-CXL".
	Design string `json:"design,omitempty"`
	// RPS is the aggregate request rate (default 60).
	RPS float64 `json:"rps,omitempty"`
	// Duration is the replayed trace length in virtual time
	// (default 10s).
	Duration Duration `json:"duration,omitempty"`
	// Functions restricts the workload mix (default: full suite).
	Functions []string `json:"functions,omitempty"`
	// Weights skews per-function request shares.
	Weights map[string]float64 `json:"weights,omitempty"`
	// KeepAlive overrides the idle keep-alive window.
	KeepAlive Duration `json:"keep_alive,omitempty"`
	// NodeBudgetBytes overrides the per-node memory budget.
	NodeBudgetBytes int64 `json:"node_budget_bytes,omitempty"`
	// Seed drives trace generation (default Config seed, then 7).
	Seed int64 `json:"seed,omitempty"`
}

// SessionSpec carries the serving options of one session.
type SessionSpec struct {
	// Timeout caps the session's wall-clock runtime; 0 keeps the
	// server default. A session hitting it ends with reason "timeout"
	// and a partial result.
	Timeout Duration `json:"timeout,omitempty"`
	// Pace replays in live time: virtual seconds simulated per wall
	// second. 0 (default) runs unpaced — as fast as the engine goes;
	// 1 replays in real time; 10 replays 10× faster than real time.
	Pace float64 `json:"pace,omitempty"`
}

// MaxRPS bounds Workload.RPS at admission — a saturation guard, not a
// simulation limit.
const MaxRPS = 100000

// Validate rejects malformed specs before they consume a session slot.
// maxVirtual caps Workload.Duration (0 = no cap).
func (s Spec) Validate(maxVirtual time.Duration) error {
	if s.Workload.Design != "" {
		ok := false
		for _, d := range cxlfork.WorkloadDesigns {
			if d == s.Workload.Design {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown design %q (want one of %v)", s.Workload.Design, cxlfork.WorkloadDesigns)
		}
	}
	if s.Workload.RPS < 0 || s.Workload.RPS > MaxRPS {
		return fmt.Errorf("rps %g out of range [0,%d]", s.Workload.RPS, MaxRPS)
	}
	if s.Workload.Duration < 0 {
		return fmt.Errorf("negative duration %v", time.Duration(s.Workload.Duration))
	}
	if maxVirtual > 0 && time.Duration(s.Workload.Duration) > maxVirtual {
		return fmt.Errorf("duration %v exceeds server cap %v", time.Duration(s.Workload.Duration), maxVirtual)
	}
	for _, fn := range s.Workload.Functions {
		if _, ok := faas.ByName(fn); !ok {
			return fmt.Errorf("unknown function %q", fn)
		}
	}
	for fn, w := range s.Workload.Weights {
		if w < 0 {
			return fmt.Errorf("negative weight %g for function %q", w, fn)
		}
	}
	if s.Session.Pace < 0 {
		return fmt.Errorf("negative pace %g", s.Session.Pace)
	}
	if s.Session.Timeout < 0 {
		return fmt.Errorf("negative timeout %v", time.Duration(s.Session.Timeout))
	}
	return nil
}

// build maps the wire spec onto the facade types.
func (s Spec) build() (cxlfork.Config, cxlfork.Workload) {
	c := s.Config
	cfg := cxlfork.Config{
		Nodes:           c.Nodes,
		NodeDRAM:        c.NodeDRAMBytes,
		CXLCapacity:     c.CXLCapacityBytes,
		CXLLatency:      time.Duration(c.CXLLatency),
		Cores:           c.Cores,
		CheckpointLanes: c.CheckpointLanes,
		RestoreLanes:    c.RestoreLanes,
		Workers:         c.Workers,
		Seed:            c.Seed,
		Capacity: cxlfork.CapacityConfig{
			EvictPolicy:   c.Capacity.EvictPolicy,
			HighWatermark: c.Capacity.HighWatermark,
			LowWatermark:  c.Capacity.LowWatermark,
			ReclaimPeriod: time.Duration(c.Capacity.ReclaimPeriod),
		},
		Replication: cxlfork.ReplicationConfig{
			Devices:      c.Replication.Devices,
			Factor:       c.Replication.Factor,
			RepairPeriod: time.Duration(c.Replication.RepairPeriod),
			RetryBudget:  c.Replication.RetryBudget,
		},
		Fabric: cxlfork.FabricConfig{
			Topology:  c.Fabric.Topology,
			Placement: c.Fabric.Placement,
		},
		Telemetry: cxlfork.TelemetryConfig{
			SampleEvery:     time.Duration(c.Telemetry.SampleEvery),
			SeriesCap:       c.Telemetry.SeriesCap,
			SLOOccupancy:    c.Telemetry.SLOOccupancy,
			SLOColdStartP99: time.Duration(c.Telemetry.SLOColdStartP99),
			SLODrive:        c.Telemetry.SLODrive,
		},
		XRay: c.XRay,
	}
	w := s.Workload
	wl := cxlfork.Workload{
		Design:          w.Design,
		RPS:             w.RPS,
		Duration:        time.Duration(w.Duration),
		Functions:       w.Functions,
		Weights:         w.Weights,
		KeepAlive:       time.Duration(w.KeepAlive),
		NodeBudgetBytes: w.NodeBudgetBytes,
		Seed:            w.Seed,
	}
	return cfg, wl
}
