package memsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPoolGeometry(t *testing.T) {
	p := NewPool("test", Local, 1<<20, 4096)
	if got := p.CapacityPages(); got != 256 {
		t.Fatalf("CapacityPages = %d, want 256", got)
	}
	if p.UsedPages() != 0 || p.FreePages() != 256 {
		t.Fatalf("fresh pool used=%d free=%d", p.UsedPages(), p.FreePages())
	}
}

func TestAllocFree(t *testing.T) {
	p := NewPool("test", Local, 16*4096, 4096)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f.Refs() != 1 || f.Data != 0 {
		t.Fatalf("fresh frame refs=%d data=%d", f.Refs(), f.Data)
	}
	if p.UsedPages() != 1 {
		t.Fatalf("used = %d", p.UsedPages())
	}
	p.Put(f)
	if p.UsedPages() != 0 {
		t.Fatalf("used after free = %d", p.UsedPages())
	}
}

func TestDeterministicPFNs(t *testing.T) {
	p := NewPool("test", Local, 8*4096, 4096)
	for i := 0; i < 8; i++ {
		f := p.MustAlloc()
		if f.PFN() != i {
			t.Fatalf("alloc %d got pfn %d", i, f.PFN())
		}
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool("test", Local, 2*4096, 4096)
	p.MustAlloc()
	p.MustAlloc()
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRefcounting(t *testing.T) {
	p := NewPool("test", Local, 4*4096, 4096)
	f := p.MustAlloc()
	f.Get()
	if f.Refs() != 2 {
		t.Fatalf("refs = %d", f.Refs())
	}
	p.Put(f)
	if p.UsedPages() != 1 {
		t.Fatal("frame freed while referenced")
	}
	p.Put(f)
	if p.UsedPages() != 0 {
		t.Fatal("frame not freed at zero refs")
	}
}

func TestReuseZeroesData(t *testing.T) {
	p := NewPool("test", Local, 4096, 4096)
	f := p.MustAlloc()
	f.Data = 42
	p.Put(f)
	g := p.MustAlloc()
	if g.Data != 0 {
		t.Fatalf("reused frame data = %d, want 0", g.Data)
	}
}

func TestPutForeignFramePanics(t *testing.T) {
	a := NewPool("a", Local, 4096, 4096)
	b := NewPool("b", Local, 4096, 4096)
	f := a.MustAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on foreign Put")
		}
	}()
	b.Put(f)
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool("test", Local, 4096, 4096)
	f := p.MustAlloc()
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double free")
		}
	}()
	p.Put(f)
}

func TestPeakTracking(t *testing.T) {
	p := NewPool("test", Local, 8*4096, 4096)
	a := p.MustAlloc()
	b := p.MustAlloc()
	p.Put(a)
	p.Put(b)
	if p.PeakUsedPages() != 2 {
		t.Fatalf("peak = %d, want 2", p.PeakUsedPages())
	}
	p.ResetPeak()
	if p.PeakUsedPages() != 0 {
		t.Fatalf("peak after reset = %d", p.PeakUsedPages())
	}
}

func TestCopy(t *testing.T) {
	p := NewPool("test", Local, 2*4096, 4096)
	a := p.MustAlloc()
	b := p.MustAlloc()
	a.Data = NewToken()
	Copy(b, a)
	if b.Data != a.Data {
		t.Fatal("Copy did not transfer content token")
	}
}

func TestNewTokenUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		tok := NewToken()
		if tok == 0 || seen[tok] {
			t.Fatalf("token %d duplicate or zero", tok)
		}
		seen[tok] = true
	}
}

// TestAllocFreeProperty checks via random alloc/free interleavings that
// used-count accounting never drifts and freed frames are reusable.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPool("prop", Local, 32*4096, 4096)
		var live []*Frame
		for _, alloc := range ops {
			if alloc && p.FreePages() > 0 {
				live = append(live, p.MustAlloc())
			} else if len(live) > 0 {
				p.Put(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if p.UsedPages() != len(live) {
				return false
			}
			if p.UsedPages()+p.FreePages() != p.CapacityPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameOutOfRangePanics(t *testing.T) {
	p := NewPool("test", Local, 4096, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range pfn")
		}
	}()
	p.Frame(99)
}

func TestUtilization(t *testing.T) {
	p := NewPool("test", Local, 4*4096, 4096)
	p.MustAlloc()
	if got := p.Utilization(); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}
