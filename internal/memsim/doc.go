// Package memsim models physical memory: fixed-size page frames grouped
// into pools (one local DRAM pool per node, one shared pool on the CXL
// device). Frames carry a content token instead of real bytes, so a
// 630 MB process footprint costs the simulation a few MB while copies,
// sharing, and corruption remain observable: two frames hold identical
// page contents iff their tokens are equal.
//
// Entry points: NewPool; NewToken mints fresh page contents and Copy
// duplicates frames preserving tokens. The frames stand in for the data
// pages CXLfork checkpoints as-is (paper §4.1).
package memsim
