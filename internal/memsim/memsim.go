package memsim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Kind distinguishes pool placement, which determines access latency.
type Kind int

const (
	// Local is node-attached DRAM.
	Local Kind = iota
	// CXL is the shared fabric-attached device memory.
	CXL
)

func (k Kind) String() string {
	if k == CXL {
		return "cxl"
	}
	return "local"
}

// ErrOutOfMemory is returned when a pool has no free frames.
var ErrOutOfMemory = errors.New("memsim: out of memory")

// Frame is one physical page frame.
type Frame struct {
	pool *Pool
	pfn  int // index within pool: the page frame number

	// Data is the content token. Equal tokens mean identical page
	// contents. Zero means a zeroed page.
	Data uint64

	// refs counts mappings/owners. Frames are freed when refs drops to
	// zero via Pool.Put.
	refs int

	// gen increments on every allocation so cache keys from a previous
	// life of the frame never hit after reuse.
	gen uint32
}

// CacheKey returns the frame's physical identity for cache models:
// caches are physically indexed, so sharers of a frame (page cache,
// CoW-shared pages, CXL checkpoint pages) hit on each other's lines.
func (f *Frame) CacheKey() uint64 {
	return uint64(f.pool.id)<<56 | uint64(f.pfn)<<24 | uint64(f.gen&0xffffff)
}

// PFN returns the frame's page frame number within its pool. For CXL
// frames this is the device-relative frame number that checkpointed page
// tables store after rebasing.
func (f *Frame) PFN() int { return f.pfn }

// Pool returns the owning pool.
func (f *Frame) Pool() *Pool { return f.pool }

// Kind returns the placement kind of the frame's pool.
func (f *Frame) Kind() Kind { return f.pool.kind }

// Refs returns the current reference count.
func (f *Frame) Refs() int { return f.refs }

// Get increments the frame's reference count (a new sharer).
func (f *Frame) Get() *Frame {
	if f.refs <= 0 {
		panic("memsim: Get on free frame")
	}
	f.refs++
	return f
}

// poolIDs hands out unique pool identifiers for cache keys. Pools are
// built concurrently when experiment legs fan out (DESIGN.md §13), so
// the counter must be atomic; the ids themselves never cross legs.
var poolIDs atomic.Uint32

// Pool is a fixed-capacity set of frames.
type Pool struct {
	name     string
	id       uint32
	kind     Kind
	pageSize int

	frames []Frame
	free   []int // stack of free pfns
	used   int

	peakUsed int
}

// NewPool creates a pool with capacity bytes of pageSize pages.
func NewPool(name string, kind Kind, capacityBytes int64, pageSize int) *Pool {
	if pageSize <= 0 || capacityBytes <= 0 {
		panic("memsim: invalid pool geometry")
	}
	n := int(capacityBytes / int64(pageSize))
	p := &Pool{name: name, id: poolIDs.Add(1), kind: kind, pageSize: pageSize}
	p.frames = make([]Frame, n)
	p.free = make([]int, n)
	for i := range p.frames {
		p.frames[i].pool = p
		p.frames[i].pfn = i
		// Pop order low-to-high for deterministic PFNs.
		p.free[i] = n - 1 - i
	}
	return p
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Kind returns the pool kind.
func (p *Pool) Kind() Kind { return p.kind }

// PageSize returns the frame size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// CapacityPages returns the total number of frames.
func (p *Pool) CapacityPages() int { return len(p.frames) }

// UsedPages returns the number of allocated frames.
func (p *Pool) UsedPages() int { return p.used }

// PeakUsedPages returns the allocation high-water mark.
func (p *Pool) PeakUsedPages() int { return p.peakUsed }

// UsedBytes returns allocated bytes.
func (p *Pool) UsedBytes() int64 { return int64(p.used) * int64(p.pageSize) }

// FreePages returns the number of free frames.
func (p *Pool) FreePages() int { return len(p.frames) - p.used }

// Utilization returns used/capacity in [0,1].
func (p *Pool) Utilization() float64 {
	return float64(p.used) / float64(len(p.frames))
}

// ResetPeak resets the high-water mark to the current usage.
func (p *Pool) ResetPeak() { p.peakUsed = p.used }

// Alloc returns a zeroed frame with refcount 1.
func (p *Pool) Alloc() (*Frame, error) {
	if len(p.free) == 0 {
		return nil, fmt.Errorf("%w: pool %q (%d pages)", ErrOutOfMemory, p.name, len(p.frames))
	}
	pfn := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	f := &p.frames[pfn]
	f.Data = 0
	f.refs = 1
	f.gen++
	p.used++
	if p.used > p.peakUsed {
		p.peakUsed = p.used
	}
	return f, nil
}

// MustAlloc is Alloc for contexts where exhaustion is a setup bug.
func (p *Pool) MustAlloc() *Frame {
	f, err := p.Alloc()
	if err != nil {
		panic(err)
	}
	return f
}

// Put drops one reference; the frame is returned to the free list when
// the count reaches zero.
func (p *Pool) Put(f *Frame) {
	if f.pool != p {
		panic("memsim: Put on foreign frame")
	}
	if f.refs <= 0 {
		panic("memsim: Put on free frame")
	}
	f.refs--
	if f.refs == 0 {
		p.used--
		p.free = append(p.free, f.pfn)
	}
}

// Frame returns the frame with the given pfn. It panics on a pfn outside
// the pool — dereferencing a dangling rebased pointer is a checkpoint
// format bug the tests must surface loudly.
func (p *Pool) Frame(pfn int) *Frame {
	if pfn < 0 || pfn >= len(p.frames) {
		panic(fmt.Sprintf("memsim: pfn %d out of range for pool %q", pfn, p.name))
	}
	return &p.frames[pfn]
}

// Copy duplicates src's contents into dst (token copy).
func Copy(dst, src *Frame) { dst.Data = src.Data }

// tokenCounter hands out unique non-zero content tokens. Like poolIDs
// it is shared by concurrently-running experiment legs, so it must be
// atomic. Only uniqueness matters: dedup compares tokens for equality,
// and equal tokens come from copies, never from counter coincidence,
// so the interleaving of counter values across legs cannot change any
// leg's observable behaviour.
var tokenCounter atomic.Uint64

// NewToken returns a fresh unique content token, modelling a distinct
// page content produced by a store.
func NewToken() uint64 {
	return tokenCounter.Add(1)
}
