package wire

import "testing"

func BenchmarkEncodeRecord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEncoder()
		e.PutUint(1, uint64(i))
		e.PutString(2, "/runtime/Bert/lib042.so")
		e.PutInt(3, -12345)
		e.PutBool(4, true)
		_ = e.Bytes()
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	e := NewEncoder()
	e.PutUint(1, 42)
	e.PutString(2, "/runtime/Bert/lib042.so")
	e.PutInt(3, -12345)
	e.PutBool(4, true)
	buf := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		for d.More() {
			_, wt, err := d.Next()
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Skip(wt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
