package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecoder exercises the decoder against arbitrary byte streams: it
// must never panic or loop, only return data or ErrCorrupt.
func FuzzDecoder(f *testing.F) {
	seed := NewEncoder()
	seed.PutUint(1, 42)
	seed.PutString(2, "hello")
	seed.PutInt(3, -7)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add([]byte{0x0a, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; i < 10_000 && d.More(); i++ {
			_, wt, err := d.Next()
			if err != nil {
				return
			}
			if err := d.Skip(wt); err != nil {
				return
			}
		}
	})
}

// FuzzOpenEnvelope exercises the checksummed envelope against the
// corrupted-checkpoint corpus: truncated records, bit-flipped varints,
// and bad checksums. The invariants: OpenEnvelope never panics, every
// failure wraps ErrCorrupt, and a pristine re-seal of whatever payload
// it accepts must round-trip.
func FuzzOpenEnvelope(f *testing.F) {
	payload := []byte("global-state: fds=4 mounts=/ pidns=init")
	sealed := SealEnvelope(payload)
	f.Add(sealed)
	f.Add(SealEnvelope(nil))
	// Truncations at several depths (torn writes).
	for _, n := range []int{0, 1, 2, len(sealed) / 2, len(sealed) - 1} {
		f.Add(sealed[:n])
	}
	// Bit-flipped key varint, payload byte, and checksum byte.
	for _, i := range []int{0, 3, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x40
		f.Add(bad)
	}
	f.Add([]byte{0x80, 0x80, 0x80, 0x80})
	// Trace-envelope-shaped records (the shape trace.EncodeEvents
	// produces: a version varint, then nested event messages), pristine
	// and with a flipped byte inside a nested message.
	traceShaped := sealedTraceShapedEnvelope()
	f.Add(traceShaped)
	for _, i := range []int{4, len(traceShaped) / 2} {
		bad := append([]byte(nil), traceShaped...)
		bad[i] ^= 0x10
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := OpenEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted payloads must survive a seal/open round trip.
		again, err := OpenEnvelope(SealEnvelope(got))
		if err != nil || !bytes.Equal(again, got) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// sealedTraceShapedEnvelope builds a payload with the binary trace
// format's shape using only wire primitives (wire cannot import trace:
// the dependency runs the other way). Field 1 is a format version,
// each field 2 is one nested span record.
func sealedTraceShapedEnvelope() []byte {
	enc := NewEncoder()
	enc.PutUint(1, 1)
	for i, name := range []string{"checkpoint", "copy", "pt-leaf"} {
		ev := NewEncoder()
		ev.PutString(1, name)
		ev.PutString(2, "op")
		ev.PutUint(3, uint64(i%2))  // node
		ev.PutUint(4, uint64(i))    // track
		ev.PutInt(5, int64(i)*1000) // begin
		ev.PutInt(6, 500)           // dur
		ev.PutInt(7, int64(i))      // parent
		ev.PutInt(8, 1<<20)         // bytes
		ev.PutInt(9, 256)           // pages
		enc.PutMessage(2, ev)
	}
	return SealEnvelope(enc.Bytes())
}
