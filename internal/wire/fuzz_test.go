package wire

import "testing"

// FuzzDecoder exercises the decoder against arbitrary byte streams: it
// must never panic or loop, only return data or ErrCorrupt.
func FuzzDecoder(f *testing.F) {
	seed := NewEncoder()
	seed.PutUint(1, 42)
	seed.PutString(2, "hello")
	seed.PutInt(3, -7)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add([]byte{0x0a, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for i := 0; i < 10_000 && d.More(); i++ {
			_, wt, err := d.Next()
			if err != nil {
				return
			}
			if err := d.Skip(wt); err != nil {
				return
			}
		}
	})
}
