// Package wire implements a compact protobuf-style binary encoding:
// varint scalars and length-delimited fields addressed by numeric tags.
// The CRIU-CXL baseline serializes its checkpoint images with it
// (standing in for CRIU's real Protocol Buffers images), and CXLfork
// uses it for the small amount of global state it must still serialize
// (file paths, permissions, mounts, PID namespaces — paper §4.1).
//
// Entry points: NewEncoder and Decoder.
package wire
