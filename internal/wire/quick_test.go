package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

// record is the quick generator's unit: one field of every wire type.
type record struct {
	U    uint64
	I    int64
	B    bool
	Blob []byte
	S    string
}

// put encodes the record's fields with fixed tags.
func (r record) put(enc *Encoder) {
	enc.PutUint(1, r.U)
	enc.PutInt(2, r.I)
	enc.PutBool(3, r.B)
	enc.PutBytes(4, r.Blob)
	enc.PutString(5, r.S)
}

// get decodes what put wrote, failing the test on any mismatch.
func (r record) get(t *testing.T, d *Decoder) bool {
	t.Helper()
	for _, want := range []struct {
		field int
		read  func() (any, error)
		want  any
	}{
		{1, func() (any, error) { return d.Uint() }, r.U},
		{2, func() (any, error) { return d.Int() }, r.I},
		{3, func() (any, error) { return d.Bool() }, r.B},
		{4, func() (any, error) { b, err := d.Bytes(); return string(b), err }, string(r.Blob)},
		{5, func() (any, error) { return d.String() }, r.S},
	} {
		field, _, err := d.Next()
		if err != nil || field != want.field {
			t.Logf("field %d: got %d, err %v", want.field, field, err)
			return false
		}
		got, err := want.read()
		if err != nil || got != want.want {
			t.Logf("field %d: got %v (err %v), want %v", field, got, err, want.want)
			return false
		}
	}
	return true
}

// TestQuickFieldRoundTrip checks that every field type round-trips
// through encode/decode for arbitrary values, including the varint
// edge cases quick likes to find (sign flips, high bits, empty blobs).
func TestQuickFieldRoundTrip(t *testing.T) {
	prop := func(r record) bool {
		enc := NewEncoder()
		r.put(enc)
		return r.get(t, NewDecoder(enc.Bytes()))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMessageRoundTrip nests records as length-delimited messages —
// the trace and checkpoint formats' envelope-of-records shape — and
// checks the nesting round-trips and that Skip jumps whole messages.
func TestQuickMessageRoundTrip(t *testing.T) {
	prop := func(records []record) bool {
		enc := NewEncoder()
		enc.PutUint(1, uint64(len(records)))
		for _, r := range records {
			m := NewEncoder()
			r.put(m)
			enc.PutMessage(2, m)
		}
		d := NewDecoder(enc.Bytes())
		if f, _, err := d.Next(); err != nil || f != 1 {
			return false
		}
		if n, err := d.Uint(); err != nil || n != uint64(len(records)) {
			return false
		}
		for _, r := range records {
			if f, _, err := d.Next(); err != nil || f != 2 {
				return false
			}
			b, err := d.Bytes()
			if err != nil {
				return false
			}
			if !r.get(t, NewDecoder(b)) {
				return false
			}
		}
		return !d.More()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkipUnknownFields appends unknown fields after known ones;
// a decoder that skips what it does not understand must still land on
// the trailing sentinel. This is the format's forward-compatibility
// contract (old readers, new traces).
func TestQuickSkipUnknownFields(t *testing.T) {
	prop := func(r record, sentinel uint64) bool {
		enc := NewEncoder()
		r.put(enc)
		enc.PutUint(99, sentinel)
		d := NewDecoder(enc.Bytes())
		for d.More() {
			field, wt, err := d.Next()
			if err != nil {
				return false
			}
			if field == 99 {
				got, err := d.Uint()
				return err == nil && got == sentinel
			}
			if err := d.Skip(wt); err != nil {
				return false
			}
		}
		return false // sentinel never reached
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnvelopeRoundTrip seals and reopens arbitrary payloads.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	prop := func(payload []byte) bool {
		got, err := OpenEnvelope(SealEnvelope(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnvelopeDetectsBitFlips flips one arbitrary bit anywhere in
// a sealed envelope: either the open fails with ErrCorrupt, or — when
// the flip lands in the length varint's redundant encoding space — it
// must NOT succeed with a payload different from the original.
func TestQuickEnvelopeDetectsBitFlips(t *testing.T) {
	prop := func(payload []byte, pos, bit uint) bool {
		sealed := SealEnvelope(payload)
		bad := append([]byte(nil), sealed...)
		bad[pos%uint(len(bad))] ^= 1 << (bit % 8)
		if bytes.Equal(bad, sealed) {
			return true
		}
		got, err := OpenEnvelope(bad)
		if err != nil {
			return errors.Is(err, ErrCorrupt)
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
