package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.PutUint(1, 0)
	e.PutUint(2, 1<<63)
	e.PutInt(3, -12345)
	e.PutBool(4, true)
	e.PutBool(5, false)

	d := NewDecoder(e.Bytes())
	checkUint := func(wantField int, want uint64) {
		f, wt, err := d.Next()
		if err != nil || f != wantField || wt != 0 {
			t.Fatalf("Next = %d,%d,%v want field %d", f, wt, err, wantField)
		}
		v, err := d.Uint()
		if err != nil || v != want {
			t.Fatalf("field %d = %d, want %d", f, v, want)
		}
	}
	checkUint(1, 0)
	checkUint(2, 1<<63)
	f, _, _ := d.Next()
	v, err := d.Int()
	if err != nil || f != 3 || v != -12345 {
		t.Fatalf("int field = %d,%v", v, err)
	}
	d.Next()
	if b, _ := d.Bool(); !b {
		t.Fatal("bool true lost")
	}
	d.Next()
	if b, _ := d.Bool(); b {
		t.Fatal("bool false lost")
	}
	if d.More() {
		t.Fatal("trailing data")
	}
}

func TestBytesStringRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.PutString(1, "hello, 世界")
	e.PutBytes(2, []byte{0, 1, 2, 255})
	e.PutString(3, "")

	d := NewDecoder(e.Bytes())
	d.Next()
	if s, _ := d.String(); s != "hello, 世界" {
		t.Fatalf("string = %q", s)
	}
	d.Next()
	if b, _ := d.Bytes(); !bytes.Equal(b, []byte{0, 1, 2, 255}) {
		t.Fatalf("bytes = %v", b)
	}
	d.Next()
	if s, _ := d.String(); s != "" {
		t.Fatalf("empty string = %q", s)
	}
}

func TestNestedMessage(t *testing.T) {
	inner := NewEncoder()
	inner.PutUint(1, 7)
	outer := NewEncoder()
	outer.PutMessage(5, inner)

	d := NewDecoder(outer.Bytes())
	f, _, _ := d.Next()
	if f != 5 {
		t.Fatalf("field = %d", f)
	}
	b, _ := d.Bytes()
	di := NewDecoder(b)
	di.Next()
	if v, _ := di.Uint(); v != 7 {
		t.Fatalf("nested = %d", v)
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder()
	e.PutUint(1, 10)
	e.PutString(2, "skip me")
	e.PutUint(3, 20)

	d := NewDecoder(e.Bytes())
	var got []uint64
	for d.More() {
		f, wt, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == 2 {
			if err := d.Skip(wt); err != nil {
				t.Fatal(err)
			}
			continue
		}
		v, _ := d.Uint()
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("got = %v", got)
	}
}

func TestCorruptTruncated(t *testing.T) {
	e := NewEncoder()
	e.PutString(1, "some payload")
	b := e.Bytes()
	d := NewDecoder(b[:len(b)-3])
	d.Next()
	if _, err := d.String(); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

func TestCorruptVarint(t *testing.T) {
	// 11 continuation bytes overflow the 64-bit accumulator.
	bad := bytes.Repeat([]byte{0x80}, 11)
	d := NewDecoder(bad)
	if _, _, err := d.Next(); err == nil {
		t.Fatal("overlong varint accepted")
	}
}

func TestIntZigzagProperty(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder()
		e.PutInt(1, v)
		d := NewDecoder(e.Bytes())
		d.Next()
		got, err := d.Int()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintProperty(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder()
		e.PutUint(1, v)
		d := NewDecoder(e.Bytes())
		d.Next()
		got, err := d.Uint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMixedStreamProperty round-trips a random field sequence.
func TestMixedStreamProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type rec struct {
			field int
			str   bool
			u     uint64
			s     string
		}
		var recs []rec
		e := NewEncoder()
		for i := 0; i < 50; i++ {
			r := rec{field: 1 + rng.Intn(30), str: rng.Intn(2) == 0}
			if r.str {
				buf := make([]byte, rng.Intn(40))
				rng.Read(buf)
				r.s = string(buf)
				e.PutString(r.field, r.s)
			} else {
				r.u = rng.Uint64()
				e.PutUint(r.field, r.u)
			}
			recs = append(recs, r)
		}
		d := NewDecoder(e.Bytes())
		for _, r := range recs {
			field, _, err := d.Next()
			if err != nil || field != r.field {
				return false
			}
			if r.str {
				s, err := d.String()
				if err != nil || s != r.s {
					return false
				}
			} else {
				u, err := d.Uint()
				if err != nil || u != r.u {
					return false
				}
			}
		}
		return !d.More()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
