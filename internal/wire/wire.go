package wire

import (
	"errors"
	"fmt"
)

// Wire types, mirroring protobuf.
const (
	typeVarint = 0
	typeBytes  = 2
)

// ErrCorrupt is returned when a buffer cannot be decoded.
var ErrCorrupt = errors.New("wire: corrupt buffer")

// ErrChecksum is returned when an envelope's payload hash does not match
// its recorded checksum. It wraps ErrCorrupt, so callers that only care
// about "this image is bad" can test for ErrCorrupt alone.
var ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)

// Encoder appends tagged fields to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *Encoder) key(field, wt int) {
	e.uvarint(uint64(field)<<3 | uint64(wt))
}

// PutUint encodes an unsigned field.
func (e *Encoder) PutUint(field int, v uint64) {
	e.key(field, typeVarint)
	e.uvarint(v)
}

// PutInt encodes a signed field with zigzag.
func (e *Encoder) PutInt(field int, v int64) {
	e.PutUint(field, uint64(v<<1)^uint64(v>>63))
}

// PutBool encodes a boolean field.
func (e *Encoder) PutBool(field int, v bool) {
	var u uint64
	if v {
		u = 1
	}
	e.PutUint(field, u)
}

// PutBytes encodes a length-delimited field.
func (e *Encoder) PutBytes(field int, b []byte) {
	e.key(field, typeBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString encodes a string field.
func (e *Encoder) PutString(field int, s string) {
	e.key(field, typeBytes)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutMessage encodes a nested message field.
func (e *Encoder) PutMessage(field int, m *Encoder) {
	e.PutBytes(field, m.Bytes())
}

// Decoder reads tagged fields from a buffer.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// More reports whether any bytes remain.
func (d *Decoder) More() bool { return d.off < len(d.buf) }

func (d *Decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.buf) {
			return 0, ErrCorrupt
		}
		b := d.buf[d.off]
		d.off++
		if shift >= 64 {
			return 0, ErrCorrupt
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// Next reads the next field key. It returns the field number and wire
// type.
func (d *Decoder) Next() (field int, wt int, err error) {
	k, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

// Uint reads a varint payload.
func (d *Decoder) Uint() (uint64, error) { return d.uvarint() }

// Int reads a zigzag varint payload.
func (d *Decoder) Int() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// Bool reads a boolean payload.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.uvarint()
	return u != 0, err
}

// Bytes reads a length-delimited payload. The returned slice aliases the
// input buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)-d.off) < n {
		return nil, ErrCorrupt
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// String reads a string payload.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Checksum returns the FNV-1a 64-bit hash of b, the per-record checksum
// the checkpoint formats store next to their serialized payloads.
func Checksum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// Envelope field tags.
const (
	envFieldPayload = 1
	envFieldSum     = 2
)

// SealEnvelope wraps payload in a checksummed envelope. Decoders call
// OpenEnvelope to verify the hash before the payload is interpreted, so
// a torn or bit-flipped checkpoint record surfaces as an error instead
// of silently restoring garbage state.
func SealEnvelope(payload []byte) []byte {
	e := NewEncoder()
	e.PutBytes(envFieldPayload, payload)
	e.PutUint(envFieldSum, Checksum(payload))
	return e.Bytes()
}

// OpenEnvelope verifies and unwraps a SealEnvelope buffer. It returns
// ErrChecksum when the hash does not match or the envelope is missing
// either field, and ErrCorrupt when the framing itself cannot be parsed.
func OpenEnvelope(b []byte) ([]byte, error) {
	d := NewDecoder(b)
	var payload []byte
	var sum uint64
	var havePayload, haveSum bool
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch field {
		case envFieldPayload:
			payload, err = d.Bytes()
			havePayload = true
		case envFieldSum:
			sum, err = d.Uint()
			haveSum = true
		default:
			err = d.Skip(wt)
		}
		if err != nil {
			return nil, err
		}
	}
	if !havePayload || !haveSum {
		return nil, fmt.Errorf("%w: incomplete envelope", ErrChecksum)
	}
	if got := Checksum(payload); got != sum {
		return nil, fmt.Errorf("%w: payload hash %#x, recorded %#x", ErrChecksum, got, sum)
	}
	return payload, nil
}

// Skip discards a payload of the given wire type.
func (d *Decoder) Skip(wt int) error {
	switch wt {
	case typeVarint:
		_, err := d.uvarint()
		return err
	case typeBytes:
		_, err := d.Bytes()
		return err
	default:
		return fmt.Errorf("%w: unknown wire type %d", ErrCorrupt, wt)
	}
}
