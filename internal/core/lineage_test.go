package core_test

import (
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/rforktest"
)

// TestCheckpointOfClone exercises generational lineage: restore a clone,
// let it diverge, checkpoint the clone (CXL→CXL page copies), and
// restore a grandchild — which must see the clone's modified state, not
// the original parent's.
func TestCheckpointOfClone(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := core.New(c.Dev)

	gen1, err := mech.Checkpoint(parent, "gen1")
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Node(1).NewTask("clone")
	if err := mech.Restore(clone, gen1, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	// The clone rewrites part of the RO region (diverges from gen1).
	divergedVA := rforktest.AddrOf(rforktest.HeapBase, 3)
	if err := clone.MM.Access(divergedVA, true); err != nil {
		t.Fatal(err)
	}
	cloneSnap := rforktest.SnapshotTokens(clone)

	gen2, err := mech.Checkpoint(clone, "gen2")
	if err != nil {
		t.Fatal(err)
	}
	// gen2 owns independent device frames: releasing gen1 must not
	// invalidate it.
	parentSnap := rforktest.SnapshotTokens(parent)
	_ = parentSnap
	gen1.Release()
	c.Node(1).Exit(clone)

	grand := c.Node(0).NewTask("grandchild")
	if err := mech.Restore(grand, gen2, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	rforktest.VerifyCloneContent(t, grand, cloneSnap)

	// The grandchild sees the clone's divergence, not the parent's
	// original content.
	gTok, _ := rforktest.PageToken(grand, divergedVA)
	pTok, _ := rforktest.PageToken(parent, divergedVA)
	if gTok == pTok {
		t.Fatal("grandchild inherited the parent's pre-divergence content")
	}
	c.Node(0).Exit(grand)
	gen2.Release()
	if c.Dev.UsedBytes() != 0 {
		t.Fatalf("device retains %d bytes after lineage teardown", c.Dev.UsedBytes())
	}
}

// TestForkOfClone checks local fork of a restored clone: the child
// shares the clone's CXL mappings (read-only, deduplicated) and its
// local CoW pages.
func TestForkOfClone(t *testing.T) {
	c := rforktest.NewCluster(t)
	parent := rforktest.BuildParent(t, c)
	mech := core.New(c.Dev)
	img, err := mech.Checkpoint(parent, "fk")
	if err != nil {
		t.Fatal(err)
	}
	snap := rforktest.SnapshotTokens(parent)

	node1 := c.Node(1)
	clone := node1.NewTask("clone")
	if err := mech.Restore(clone, img, rfork.Options{NoDirtyPrefetch: true}); err != nil {
		t.Fatal(err)
	}
	// Touch everything once so the fork has PTEs to copy.
	for va := range snap {
		if err := clone.MM.Access(va, false); err != nil {
			t.Fatal(err)
		}
	}
	used := node1.Mem.UsedPages()
	child, err := node1.Fork(clone.OS.Task(clone.PID), "grandchild")
	if err != nil {
		t.Fatal(err)
	}
	if node1.Mem.UsedPages() != used {
		t.Fatal("fork of clone copied pages")
	}
	// The forked child reads identical content through shared CXL
	// mappings.
	va := rforktest.AddrOf(rforktest.HeapBase, 0)
	if err := child.MM.Access(va, false); err != nil {
		t.Fatal(err)
	}
	ce, _ := child.MM.PT.Lookup(va)
	pe, _ := clone.MM.PT.Lookup(va)
	if !ce.Flags.Has(pt.OnCXL) || ce.PFN != pe.PFN {
		t.Fatal("forked child does not share the CXL frame")
	}
	// And its writes stay private.
	if err := child.MM.Access(va, true); err != nil {
		t.Fatal(err)
	}
	cTok, _ := rforktest.PageToken(child, va)
	pTok, _ := rforktest.PageToken(clone, va)
	if cTok == pTok {
		t.Fatal("child write leaked into the clone")
	}
}
