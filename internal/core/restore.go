package core

import (
	"fmt"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
)

// Restore clones the checkpointed process into child (paper §4.2,
// Fig. 4b): it attaches the checkpointed VMA and page-table leaves to
// freshly allocated upper levels (constant-time OS-state restore,
// Fig. 5), redoes global state from the light serialization, and — under
// the default migrate-on-write policy — opportunistically prefetches
// checkpoint-dirty pages into local memory after resuming.
func (m *Mechanism) Restore(child *kernel.Task, img rfork.Image, opts rfork.Options) error {
	ck, ok := img.(*Checkpoint)
	if !ok {
		return fmt.Errorf("core: image %s is %T, not a CXLfork checkpoint", img.ID(), img)
	}
	o := child.OS
	p := o.P
	t0 := o.Eng.Now()
	if err := m.Faults.At(faultinject.StepRestoreAttach, o.Index); err != nil {
		o.TraceOpError("restore", t0, "attach")
		return err
	}

	// Validate the image before touching the child: a reclaimed or torn
	// (unsealed) checkpoint must never be attached, and the global-state
	// blob must decode cleanly — it is needed after the attach, when a
	// failure would leave the child half-mutated.
	if ck.refs.Count() <= 0 {
		o.TraceOpError("restore", t0, "validate")
		return fmt.Errorf("core: restore from reclaimed checkpoint %s", ck.id)
	}
	if !ck.arena.Sealed() {
		o.TraceOpError("restore", t0, "validate")
		return fmt.Errorf("core: checkpoint %s: %w", ck.id, rfork.ErrTornImage)
	}
	gs, err := ck.globalState()
	if err != nil {
		o.TraceOpError("restore", t0, "validate")
		return err
	}
	lanes := p.RestoreLanes
	var cost des.Time // lane-independent serial work
	shards := m.shardScratch[:0]
	defer func() { m.shardScratch = shards[:0] }()

	// Attach the MM descriptor view: the VMA leaves (§4.2.1). Global
	// state for file VMAs is reconstructed lazily at first fault. The
	// naive ablation reconstructs every VMA individually and eagerly
	// instead. Each leaf is one lane shard of metadata work; the shards
	// fold into virtual time via copyCost below (one lane = the exact
	// serial sum; several lanes = the device contention model).
	if opts.NaivePTCopy {
		for _, off := range ck.vmaLeaves {
			leaf := cxl.Get[*vma.Leaf](ck.arena, off)
			for _, v := range leaf.VMAs {
				if _, err := child.MM.VMAs.Insert(v); err != nil {
					o.TraceOpError("restore", t0, "attach")
					return err
				}
			}
			shards = append(shards, des.Shard{Setup: des.Time(len(leaf.VMAs)) * p.VMAReconstruct})
		}
	} else {
		for _, off := range ck.vmaLeaves {
			leaf := cxl.Get[*vma.Leaf](ck.arena, off)
			if err := child.MM.VMAs.AttachLeaf(leaf); err != nil {
				o.TraceOpError("restore", t0, "attach")
				return err
			}
			shards = append(shards, des.Shard{Setup: p.VMALeafAttach})
		}
		child.MM.LazyVMAs = true
	}
	nVMA := len(shards)
	cost += p.StructCopy // MM descriptor upper levels

	switch opts.Policy {
	case rfork.MigrateOnWrite:
		if opts.NaivePTCopy {
			// Ablation §4.2: copy every checkpointed leaf to local
			// memory (read the table from CXL, write each entry)
			// instead of attaching. The CXL read of the leaf is the
			// shard's one fabric unit; entry rewrites and upper-level
			// allocation are lane-local.
			for _, ref := range ck.ptLeaves {
				leaf := cxl.Get[*pt.Leaf](ck.arena, ref.off)
				local := leaf.Clone()
				local.Protected = true // PTEs stay read-only CoW
				before := child.MM.PT.Stats().LocalUppers
				if err := child.MM.PT.AttachLeaf(ref.base, local); err != nil {
					o.TraceOpError("restore", t0, "attach")
					return err
				}
				newUppers := child.MM.PT.Stats().LocalUppers - before
				shards = append(shards, des.Shard{
					Setup:    pt.EntriesPerTable*p.PTECopy + des.Time(newUppers)*p.UpperTableInit,
					Units:    1,
					UnitCost: p.CXLReadPage,
				})
			}
		} else {
			// Constant-time attach: allocate only the upper levels
			// locally and link the checkpointed leaves (Fig. 5).
			for _, ref := range ck.ptLeaves {
				leaf := cxl.Get[*pt.Leaf](ck.arena, ref.off)
				before := child.MM.PT.Stats().LocalUppers
				if err := child.MM.PT.AttachLeaf(ref.base, leaf); err != nil {
					o.TraceOpError("restore", t0, "attach")
					return err
				}
				newUppers := child.MM.PT.Stats().LocalUppers - before
				shards = append(shards, des.Shard{
					Setup: p.LeafAttach + des.Time(newUppers)*p.UpperTableInit,
				})
			}
		}
	case rfork.MigrateOnAccess, rfork.HybridTiering:
		// No attach: leave the tree empty and let faults consult the
		// checkpoint through the overlay (§4.3).
		child.MM.Overlay = &ckptOverlay{ck: ck, policy: opts.Policy}
	default:
		o.TraceOpError("restore", t0, "validate")
		return fmt.Errorf("core: unknown tiering policy %v", opts.Policy)
	}
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	copyDur := m.copyCostObs(lanes, shards, obs)
	cost += copyDur

	// Redo global state from the light serialization (decoded and
	// verified above, before the child was touched).
	o.Eng.Advance(cost)
	gBegin := o.Eng.Now()
	if err := rfork.RestoreGlobalState(child, gs); err != nil {
		o.TraceOpError("restore", t0, "global")
		return err
	}
	gEnd := o.Eng.Now()

	// The clone holds a checkpoint reference until exit.
	ck.Retain()
	child.MM.OnExit(ck.Release)

	// Post-restore page movement. These copies happen after execution
	// resumes (the restore latency a request observes excludes them),
	// but their time is real work charged to the fault budget.
	prefBefore := o.Faults.Counts[kernel.FaultPrefetch]
	switch {
	case opts.Policy == rfork.MigrateOnWrite && !opts.NoDirtyPrefetch:
		m.prefetch(child, ck, func(e pt.PTE) bool { return e.Flags.Has(pt.Dirty) }, true)
	case opts.Policy == rfork.HybridTiering && opts.SyncHotPrefetch:
		// Rejected design (§4.3): synchronously prefetch A-bit pages.
		m.prefetch(child, ck, func(e pt.PTE) bool {
			return e.Flags.Has(pt.Accessed) || e.Flags.Has(pt.UserHot)
		}, false)
	}
	if o.Trace.Enabled() {
		pEnd := o.Eng.Now()
		node := o.Index
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "restore",
			t0, pEnd-t0, 0, ck.dataPages)
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "struct-copy", t0, p.StructCopy, 0, 0)
		copyID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "attach",
			t0+p.StructCopy, copyDur, 0, len(ck.ptLeaves))
		o.Trace.EmitShards(copyID, node, t0+p.StructCopy, laneSpans,
			func(i int) string {
				if i < nVMA {
					return "vma-leaf"
				}
				return "pt-leaf"
			},
			func(i int) int { return shards[i].Units })
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "global-restore", gBegin, gEnd-gBegin, 0, 0)
		if pEnd > gEnd {
			prefPages := int(o.Faults.Counts[kernel.FaultPrefetch] - prefBefore)
			o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "prefetch",
				gEnd, pEnd-gEnd, int64(prefPages)*int64(p.PageSize), prefPages)
		}
	}
	return nil
}

// prefetch copies checkpointed pages selected by keep into local memory
// and maps them in the child. Writable controls whether the pages are
// mapped ready-to-write (dirty prefetch: >95% of parent-written pages
// are re-written by clones, §4.2.1) or read-only.
func (m *Mechanism) prefetch(child *kernel.Task, ck *Checkpoint, keep func(pt.PTE) bool, writable bool) {
	o := child.OS
	p := o.P
	pool := m.Dev.Pool()
	for _, ref := range ck.ptLeaves {
		leaf := cxl.Get[*pt.Leaf](ck.arena, ref.off)
		for i := range leaf.PTEs {
			e := leaf.PTEs[i]
			if !e.Present() || !keep(e) {
				continue
			}
			va := ref.base + pt.VirtAddr(i)<<pt.PageShift
			local, err := o.Mem.Alloc()
			if err != nil {
				return // out of local memory: stop prefetching, CoW will cope
			}
			memsim.Copy(local, pool.Frame(int(e.PFN)))
			m.Dev.ReadBytes += int64(p.PageSize)
			flags := pt.Accessed | (e.Flags & pt.FileBacked)
			if writable {
				flags |= pt.Writable | pt.Dirty
			} else {
				flags |= pt.CoW
			}
			res := child.MM.MapFrame(va, local, flags)
			o.Mem.Put(local) // MapFrame took the mapping reference
			cost := p.CXLReadPage + p.PTECopy
			if res.BrokeLeaf {
				cost += p.CXLReadPage
			}
			chargePrefetch(child, cost)
		}
	}
}

// chargePrefetch accounts prefetch work in the fault budget.
func chargePrefetch(child *kernel.Task, cost des.Time) {
	mm := child.MM
	mm.OS.Eng.Advance(cost)
	mm.Stats.Faults.Counts[kernel.FaultPrefetch]++
	mm.Stats.Faults.Time += cost
	mm.OS.Faults.Counts[kernel.FaultPrefetch]++
	mm.OS.Faults.Time += cost
}

// ckptOverlay serves faults from the checkpoint under migrate-on-access
// and hybrid tiering (§4.3).
type ckptOverlay struct {
	ck     *Checkpoint
	policy rfork.Policy
}

// Fault resolves va from the checkpoint. Under MoA every page is copied
// to local memory; under hybrid tiering only pages whose checkpointed A
// (or UserHot) bit is set are copied — cold pages are mapped directly
// from CXL, read-only and CoW.
func (ov *ckptOverlay) Fault(mm *kernel.MM, va pt.VirtAddr, write bool) (pt.PTE, des.Time, kernel.FaultKind, bool) {
	e := ov.ck.PTE(va)
	if !e.Present() {
		return pt.PTE{}, 0, 0, false
	}
	o := mm.OS
	p := o.P

	hot := e.Flags.Has(pt.Accessed) || e.Flags.Has(pt.UserHot)
	copyLocal := write || ov.policy == rfork.MigrateOnAccess || hot
	if !copyLocal {
		// Cold page under hybrid tiering: map the CXL frame directly.
		keep := e.Flags & (pt.FileBacked | pt.UserHot)
		pte := pt.PTE{Flags: pt.Present | pt.CoW | pt.OnCXL | pt.Accessed | keep, PFN: e.PFN}
		return pte, p.FaultEntry, kernel.FaultCXLDirect, true
	}

	local, err := o.Mem.Alloc()
	if err != nil {
		// Out of local memory: degrade to a direct CXL mapping rather
		// than failing the access.
		keep := e.Flags & (pt.FileBacked | pt.UserHot)
		pte := pt.PTE{Flags: pt.Present | pt.CoW | pt.OnCXL | pt.Accessed | keep, PFN: e.PFN}
		return pte, p.FaultEntry, kernel.FaultCXLDirect, true
	}
	memsim.Copy(local, ov.ck.dev.Pool().Frame(int(e.PFN)))
	ov.ck.dev.ReadBytes += int64(p.PageSize)
	// The allocation reference becomes the mapping reference installed
	// by the kernel's fault path.

	flags := pt.Accessed | (e.Flags & pt.FileBacked)
	if writableVMA(mm, va) {
		flags |= pt.Writable
	}
	if write {
		flags |= pt.Dirty
		local.Data = memsim.NewToken()
	}
	return pt.PTE{Flags: pt.Present | flags, PFN: int32(local.PFN())}, p.MoAFault(), kernel.FaultMoA, true
}

// writableVMA reports whether the VMA covering va permits stores.
func writableVMA(mm *kernel.MM, va pt.VirtAddr) bool {
	v := mm.VMAs.Find(va)
	return v != nil && v.Prot&vma.Write != 0
}
