package core_test

import (
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/kernel"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/rforktest"
)

func checkpointParent(t *testing.T) (ck *core.Checkpoint, parent *kernel.Task, env *testEnv) {
	t.Helper()
	c := rforktest.NewCluster(t)
	parent = rforktest.BuildParent(t, c)
	mech := core.New(c.Dev)
	img, err := mech.Checkpoint(parent, "ck-test")
	if err != nil {
		t.Fatal(err)
	}
	return img.(*core.Checkpoint), parent, &testEnv{c: c, mech: mech}
}

type testEnv struct {
	c interface {
		Node(int) *kernel.OS
	}
	mech *core.Mechanism
}

func (e *testEnv) restore(t *testing.T, ck *core.Checkpoint, node int, opts rfork.Options) *kernel.Task {
	t.Helper()
	child := e.c.Node(node).NewTask("clone")
	if err := e.mech.Restore(child, ck, opts); err != nil {
		t.Fatal(err)
	}
	return child
}

func TestCheckpointCapturesEverything(t *testing.T) {
	ck, parent, _ := checkpointParent(t)
	wantPages := rforktest.LibPages + rforktest.HeapPages
	if ck.Pages() != wantPages {
		t.Fatalf("checkpointed %d pages, want %d", ck.Pages(), wantPages)
	}
	if ck.FilePages() != rforktest.LibPages {
		t.Fatalf("file pages = %d, want %d", ck.FilePages(), rforktest.LibPages)
	}
	// Steady-state D bits: only the RW region was re-written.
	if ck.DirtyPages() != rforktest.HeapRWPages {
		t.Fatalf("dirty pages = %d, want %d", ck.DirtyPages(), rforktest.HeapRWPages)
	}
	if ck.VMACount() != parent.MM.VMAs.Count() {
		t.Fatalf("vma count = %d, want %d", ck.VMACount(), parent.MM.VMAs.Count())
	}
	if ck.CXLBytes() == 0 || ck.LocalBytes() != 0 {
		t.Fatalf("placement wrong: cxl=%d local=%d", ck.CXLBytes(), ck.LocalBytes())
	}
}

func TestCheckpointIsRebased(t *testing.T) {
	ck, parent, _ := checkpointParent(t)
	// Every checkpointed PTE must reference CXL device frames, never the
	// parent node's pool — the rebase invariant.
	parent.MM.PT.Walk(func(va pt.VirtAddr, _ *pt.Leaf, _ int) {
		e := ck.PTE(va)
		if !e.Present() {
			t.Fatalf("page %#x missing from checkpoint", uint64(va))
		}
		if !e.Flags.Has(pt.OnCXL) {
			t.Fatalf("PTE at %#x not rebased to CXL", uint64(va))
		}
		if e.Flags.Has(pt.Writable) {
			t.Fatalf("checkpointed PTE at %#x writable", uint64(va))
		}
		if !e.Flags.Has(pt.CoW) {
			t.Fatalf("checkpointed PTE at %#x not CoW", uint64(va))
		}
	})
}

func TestCheckpointSurvivesParentExit(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	parent.OS.Exit(parent) // CXLfork decouples state from the initiator (§3.1)

	child := env.restore(t, ck, 1, rfork.Options{})
	rforktest.VerifyCloneContent(t, child, snap)
}

func TestRestoreMoWAttachesLeaves(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	child := env.restore(t, ck, 1, rfork.Options{Policy: rfork.MigrateOnWrite})

	st := child.MM.PT.Stats()
	if st.AttachedLeaves == 0 {
		t.Fatal("no page-table leaves attached")
	}
	if child.MM.VMAs.Stats().AttachedLeaves == 0 {
		t.Fatal("no VMA leaves attached")
	}
	rforktest.VerifyCloneContent(t, child, snap)
	// Reads must not have copied anything: no MoA/CoW faults, and (apart
	// from the prefetched dirty pages) the data stays on CXL.
	f := child.MM.Stats.Faults
	if f.Count(kernel.FaultMoA) != 0 || f.Count(kernel.FaultCoWCXL) != 0 {
		t.Fatalf("reads caused copies: %+v", f.Counts)
	}
	if got := child.MM.ResidentLocalPages(); got != ck.DirtyPages() {
		t.Fatalf("local pages after reads = %d, want only %d prefetched", got, ck.DirtyPages())
	}
}

func TestRestoreDirtyPrefetch(t *testing.T) {
	ck, _, env := checkpointParent(t)
	child := env.restore(t, ck, 1, rfork.Options{})
	// Dirty pages were prefetched writable: a store is fault-free.
	f0 := child.MM.Stats.Faults.Total()
	va := rforktest.AddrOf(rforktest.HeapBase, rforktest.HeapROPages) // first RW page
	if err := child.MM.Access(va, true); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Total() != f0 {
		t.Fatal("store to prefetched dirty page faulted")
	}
	if child.MM.Stats.Faults.Count(kernel.FaultPrefetch) != int64(ck.DirtyPages()) {
		t.Fatalf("prefetch count = %d, want %d",
			child.MM.Stats.Faults.Count(kernel.FaultPrefetch), ck.DirtyPages())
	}
}

func TestRestoreNoPrefetchCoWs(t *testing.T) {
	ck, _, env := checkpointParent(t)
	child := env.restore(t, ck, 1, rfork.Options{NoDirtyPrefetch: true})
	va := rforktest.AddrOf(rforktest.HeapBase, rforktest.HeapROPages)
	if err := child.MM.Access(va, true); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Count(kernel.FaultCoWCXL) != 1 {
		t.Fatal("store did not CoW from CXL")
	}
	// The checkpoint is pristine: the CXL copy still holds the parent's
	// content.
	e := ck.PTE(va)
	if !e.Present() {
		t.Fatal("checkpoint PTE vanished")
	}
}

func TestCoWDoesNotCorruptCheckpoint(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	child1 := env.restore(t, ck, 1, rfork.Options{NoDirtyPrefetch: true})

	// Clone 1 scribbles over everything.
	for i := 0; i < rforktest.HeapPages; i++ {
		if err := child1.MM.Access(rforktest.AddrOf(rforktest.HeapBase, i), true); err != nil {
			t.Fatal(err)
		}
	}
	// Clone 2 still reads the parent's content.
	child2 := env.restore(t, ck, 0, rfork.Options{NoDirtyPrefetch: true})
	rforktest.VerifyCloneContent(t, child2, snap)
}

func TestClonesShareCXLState(t *testing.T) {
	ck, _, env := checkpointParent(t)
	c1 := env.restore(t, ck, 0, rfork.Options{})
	c2 := env.restore(t, ck, 1, rfork.Options{})
	va := rforktest.AddrOf(rforktest.HeapBase, 0) // RO page
	if err := c1.MM.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if err := c2.MM.Access(va, false); err != nil {
		t.Fatal(err)
	}
	e1, _ := c1.MM.PT.Lookup(va)
	e2, _ := c2.MM.PT.Lookup(va)
	if !e1.Flags.Has(pt.OnCXL) || !e2.Flags.Has(pt.OnCXL) || e1.PFN != e2.PFN {
		t.Fatalf("clones on different nodes do not share the CXL frame: %+v %+v", e1, e2)
	}
}

func TestRestoreMoA(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	child := env.restore(t, ck, 1, rfork.Options{Policy: rfork.MigrateOnAccess})

	if child.MM.PT.Stats().AttachedLeaves != 0 {
		t.Fatal("MoA attached page-table leaves")
	}
	rforktest.VerifyCloneContent(t, child, snap)
	// Every page read was copied to local memory.
	if got := child.MM.ResidentCXLPages(); got != 0 {
		t.Fatalf("MoA left %d pages mapped from CXL", got)
	}
	if child.MM.Stats.Faults.Count(kernel.FaultMoA) == 0 {
		t.Fatal("no MoA faults recorded")
	}
}

func TestRestoreHybridTiering(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	// Parent steady state: RO heap pages have A set (hot); library pages
	// were only touched at init before the A-bit clear (cold).
	child := env.restore(t, ck, 1, rfork.Options{Policy: rfork.HybridTiering})
	rforktest.VerifyCloneContent(t, child, snap)

	// Hot RO pages were copied local; cold library pages stayed on CXL.
	hotVA := rforktest.AddrOf(rforktest.HeapBase, 0)
	coldVA := rforktest.AddrOf(rforktest.LibBase, 0)
	he, _ := child.MM.PT.Lookup(hotVA)
	ce, _ := child.MM.PT.Lookup(coldVA)
	if he.Flags.Has(pt.OnCXL) {
		t.Fatal("hot page not fetched to local memory")
	}
	if !ce.Flags.Has(pt.OnCXL) {
		t.Fatal("cold page copied despite clear A bit")
	}
	if child.MM.Stats.Faults.Count(kernel.FaultCXLDirect) == 0 {
		t.Fatal("no direct-CXL mappings under HT")
	}
}

func TestHybridTieringUserHot(t *testing.T) {
	ck, _, env := checkpointParent(t)
	coldVA := rforktest.AddrOf(rforktest.LibBase, 3)
	if !ck.SetUserHot(coldVA) {
		t.Fatal("SetUserHot failed")
	}
	child := env.restore(t, ck, 1, rfork.Options{Policy: rfork.HybridTiering})
	if err := child.MM.Access(coldVA, false); err != nil {
		t.Fatal(err)
	}
	e, _ := child.MM.PT.Lookup(coldVA)
	if e.Flags.Has(pt.OnCXL) {
		t.Fatal("user-hot page not fetched locally")
	}
}

func TestClearABits(t *testing.T) {
	ck, _, env := checkpointParent(t)
	if ck.HotPages() == 0 {
		t.Fatal("no hot pages in steady-state checkpoint")
	}
	ck.ClearABits()
	if ck.HotPages() != 0 {
		t.Fatal("ClearABits left hot pages")
	}
	// An attached clone's accesses re-learn the working set: its page
	// walks set A bits in place on the checkpointed (shared) leaves.
	// (Dirty prefetch is disabled so the mixed RO/RW leaf stays
	// attached rather than being broken by the prefetch mappings.)
	child := env.restore(t, ck, 1, rfork.Options{NoDirtyPrefetch: true})
	va := rforktest.AddrOf(rforktest.HeapBase, 1)
	if err := child.MM.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if !ck.PTE(va).Flags.Has(pt.Accessed) {
		t.Fatal("clone access did not update checkpointed A bit")
	}
	if ck.HotPages() == 0 {
		t.Fatal("hot set not re-learned")
	}
}

func TestGlobalStateRestored(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	child := env.restore(t, ck, 1, rfork.Options{})
	if child.FDs.Len() != parent.FDs.Len() {
		t.Fatalf("fds = %d, want %d", child.FDs.Len(), parent.FDs.Len())
	}
	pf, cf := parent.FDs.All(), child.FDs.All()
	for i := range pf {
		if *pf[i] != *cf[i] {
			t.Fatalf("fd %d mismatch: %+v vs %+v", i, pf[i], cf[i])
		}
	}
	if child.NS.PIDNS != parent.NS.PIDNS {
		t.Fatal("PID namespace not restored")
	}
	if child.Regs != parent.Regs {
		t.Fatal("registers not restored")
	}
}

func TestReleaseReclaims(t *testing.T) {
	ck, _, env := checkpointParent(t)
	dev := ck // keep name clarity
	_ = dev
	child := env.restore(t, ck, 1, rfork.Options{})
	if ck.Refs() != 2 {
		t.Fatalf("refs = %d, want 2 (owner + clone)", ck.Refs())
	}
	ck.Release() // owner drops; clone keeps it alive
	if ck.Refs() != 1 {
		t.Fatalf("refs = %d", ck.Refs())
	}
	used := child.OS.Dev.UsedBytes()
	if used == 0 {
		t.Fatal("device empty while checkpoint live")
	}
	child.OS.Exit(child)
	if child.OS.Dev.UsedBytes() != 0 {
		t.Fatalf("device holds %d bytes after last release", child.OS.Dev.UsedBytes())
	}
}

func TestRestoreFromReclaimedFails(t *testing.T) {
	ck, _, env := checkpointParent(t)
	ck.Release()
	child := env.c.Node(1).NewTask("late")
	if err := env.mech.Restore(child, ck, rfork.Options{}); err == nil {
		t.Fatal("restore from reclaimed checkpoint succeeded")
	}
}

func TestNaivePTCopyAblation(t *testing.T) {
	ck, parent, env := checkpointParent(t)
	snap := rforktest.SnapshotTokens(parent)
	child := env.restore(t, ck, 1, rfork.Options{NaivePTCopy: true})
	rforktest.VerifyCloneContent(t, child, snap)
	// Leaves were copied locally, not attached to CXL objects, yet CoW
	// semantics must be identical.
	va := rforktest.AddrOf(rforktest.HeapBase, 0)
	if err := child.MM.Access(va, true); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Count(kernel.FaultCoWCXL) != 1 {
		t.Fatal("naive copy lost CoW semantics")
	}
}

func TestSyncHotPrefetchAblation(t *testing.T) {
	ck, _, env := checkpointParent(t)
	child := env.restore(t, ck, 1, rfork.Options{Policy: rfork.HybridTiering, SyncHotPrefetch: true})
	// Hot pages are already local: reading one takes no fault.
	f0 := child.MM.Stats.Faults.Total() - child.MM.Stats.Faults.Count(kernel.FaultPrefetch)
	if err := child.MM.Access(rforktest.AddrOf(rforktest.HeapBase, 0), false); err != nil {
		t.Fatal(err)
	}
	f1 := child.MM.Stats.Faults.Total() - child.MM.Stats.Faults.Count(kernel.FaultPrefetch)
	if f1 != f0 {
		t.Fatal("hot page faulted despite sync prefetch")
	}
}
