package core

import (
	"errors"
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
)

// TestRestoreRejectsTornImage covers the staged→sealed publication
// commit directly: a checkpoint whose arena was never sealed (a crash
// tore it mid-checkpoint) is rejected with ErrTornImage before any
// child state is touched.
func TestRestoreRejectsTornImage(t *testing.T) {
	p := params.Default()
	p.CXLBytes = 16 << 20
	eng := des.NewEngine()
	dev := cxl.NewDevice(p)
	o := kernel.NewOS("n0", p, eng, dev, fsim.NewFS(), 16<<20)

	arena, err := dev.NewArena("torn")
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{id: "torn", dev: dev, arena: arena, refs: rfork.NewRefCount()}

	child := o.NewTask("clone")
	if err := New(dev).Restore(child, ck, rfork.Options{}); !errors.Is(err, rfork.ErrTornImage) {
		t.Fatalf("restore of unsealed arena: got %v, want ErrTornImage", err)
	}
	if n := child.MM.VMAs.Count(); n != 0 {
		t.Fatalf("failed restore left %d VMAs in the child", n)
	}
}
