package core

import (
	"errors"
	"fmt"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// ptLeafRef is one rebased page-table leaf: its virtual base plus the
// arena offset of the leaf object. The sorted slice of refs is the
// checkpointed tree's "upper levels" in machine-independent form.
type ptLeafRef struct {
	base pt.VirtAddr
	off  cxl.Offset
}

// Checkpoint is a CXLfork checkpoint resident on the CXL device.
//
// Layout: data pages live as frames in the device's shared pool;
// page-table leaves, VMA leaves, and the lightly-serialized global
// state live in a per-checkpoint arena, referenced by offsets. The
// leaf PTEs store device PFNs with the OnCXL flag — the result of the
// rebase step (§4.1 step 7) — so any OS instance can dereference them.
type Checkpoint struct {
	id    string
	dev   *cxl.Device
	arena *cxl.Arena

	ptLeaves  []ptLeafRef
	vmaLeaves []cxl.Offset
	globalOff cxl.Offset

	dataPages  int
	dirtyPages int
	filePages  int
	vmaCount   int
	dedupHits  int

	refs rfork.RefCount
}

// Statically assert the rfork.Image contract.
var _ rfork.Image = (*Checkpoint)(nil)

// ID returns the checkpoint ID.
func (c *Checkpoint) ID() string { return c.id }

// Mechanism returns "CXLfork".
func (c *Checkpoint) Mechanism() string { return "CXLfork" }

// CXLBytes returns device bytes held: data frames plus arena metadata.
func (c *Checkpoint) CXLBytes() int64 {
	return int64(c.dataPages)*int64(c.dev.Pool().PageSize()) + c.arena.Bytes()
}

// LocalBytes is zero: CXLfork holds no parent-node state, so the parent
// may exit and its node is not a point of failure (§3.1).
func (c *Checkpoint) LocalBytes() int64 { return 0 }

// ReclaimableBytes returns the device occupancy delta releasing this
// image right now would produce: arena metadata plus data frames no
// other image shares (dedup-aware, unlike the declared CXLBytes
// footprint). The capacity manager sizes eviction passes with this.
func (c *Checkpoint) ReclaimableBytes() int64 { return c.arena.ExclusiveBytes() }

// SharedBytes returns bytes of this image's data frames that are
// dedup-shared with other live images.
func (c *Checkpoint) SharedBytes() int64 { return c.arena.SharedBytes() }

// FrameTokens returns the content tokens of the image's data frames, in
// tracking order — a re-publish recipe: allocating these tokens through
// the device's dedup index (Device.AllocToken) rebuilds an equivalent
// frame set, re-sharing whatever content still lives on the device. The
// capacity manager records this at publication so a function whose
// checkpoint was evicted can be re-checkpointed without a live parent.
func (c *Checkpoint) FrameTokens() []uint64 {
	toks := make([]uint64, 0, c.dataPages)
	c.arena.ForEachFrame(func(f *memsim.Frame) { toks = append(toks, f.Data) })
	return toks
}

// MetaBytes returns the arena-metadata portion of the image's footprint
// (checkpointed OS structures, as opposed to data frames).
func (c *Checkpoint) MetaBytes() int64 { return c.arena.Bytes() }

// Pages returns the number of checkpointed data pages.
func (c *Checkpoint) Pages() int { return c.dataPages }

// DirtyPages returns how many checkpointed pages carry the Dirty bit.
func (c *Checkpoint) DirtyPages() int { return c.dirtyPages }

// FilePages returns how many checkpointed pages back private file
// mappings.
func (c *Checkpoint) FilePages() int { return c.filePages }

// VMACount returns the number of checkpointed VMAs.
func (c *Checkpoint) VMACount() int { return c.vmaCount }

// DedupHits returns how many of this checkpoint's pages were satisfied
// by the device's content-addressed frame cache instead of a fresh copy.
func (c *Checkpoint) DedupHits() int { return c.dedupHits }

// PTLeaves returns the number of checkpointed page-table leaves.
func (c *Checkpoint) PTLeaves() int { return len(c.ptLeaves) }

// VMALeaves returns the number of checkpointed VMA leaves.
func (c *Checkpoint) VMALeaves() int { return len(c.vmaLeaves) }

// Refs returns the reference count.
func (c *Checkpoint) Refs() int { return c.refs.Count() }

// Retain adds a reference.
func (c *Checkpoint) Retain() { c.refs.Retain() }

// Release drops a reference; at zero the arena is reclaimed (along with
// the data frames it owns). Releasing a dead checkpoint is a no-op.
func (c *Checkpoint) Release() {
	if !c.refs.Release() {
		return
	}
	c.arena.Release()
}

// leafFor returns the checkpointed page-table leaf covering va, or nil.
func (c *Checkpoint) leafFor(va pt.VirtAddr) *pt.Leaf {
	base := va.LeafBase()
	lo, hi := 0, len(c.ptLeaves)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ptLeaves[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.ptLeaves) && c.ptLeaves[lo].base == base {
		return cxl.Get[*pt.Leaf](c.arena, c.ptLeaves[lo].off)
	}
	return nil
}

// PTE returns the checkpointed PTE for va (zero PTE if absent).
func (c *Checkpoint) PTE(va pt.VirtAddr) pt.PTE {
	l := c.leafFor(va)
	if l == nil {
		return pt.PTE{}
	}
	return l.PTEs[int(va.PageNumber())&(pt.EntriesPerTable-1)]
}

// ClearABits clears the Accessed bit on every checkpointed PTE, in
// place on the CXL device — the user-space interface CXLporter uses to
// re-estimate hot pages (§4.3). It returns the number cleared.
func (c *Checkpoint) ClearABits() int {
	n := 0
	for _, ref := range c.ptLeaves {
		l := cxl.Get[*pt.Leaf](c.arena, ref.off)
		for i := range l.PTEs {
			if l.PTEs[i].Present() && l.PTEs[i].Flags.Has(pt.Accessed) {
				l.PTEs[i].Flags &^= pt.Accessed
				n++
			}
		}
	}
	return n
}

// HotPages counts checkpointed pages currently marked Accessed or
// UserHot.
func (c *Checkpoint) HotPages() int {
	n := 0
	for _, ref := range c.ptLeaves {
		l := cxl.Get[*pt.Leaf](c.arena, ref.off)
		for i := range l.PTEs {
			if l.PTEs[i].Present() &&
				(l.PTEs[i].Flags.Has(pt.Accessed) || l.PTEs[i].Flags.Has(pt.UserHot)) {
				n++
			}
		}
	}
	return n
}

// SetUserHot sets the UserHot software bit on the checkpointed PTE for
// va — the interface user-space profilers use to pin pages hot for
// future restores (§4.3). It reports whether va was checkpointed.
func (c *Checkpoint) SetUserHot(va pt.VirtAddr) bool {
	l := c.leafFor(va)
	if l == nil {
		return false
	}
	e := &l.PTEs[int(va.PageNumber())&(pt.EntriesPerTable-1)]
	if !e.Present() {
		return false
	}
	e.Flags |= pt.UserHot
	return true
}

// Mechanism is the CXLfork rfork.Mechanism.
type Mechanism struct {
	// Dev is the CXL device checkpoints are placed on.
	Dev *cxl.Device
	// Faults is the fault-injection plan consulted at step boundaries.
	// May be nil (no faults).
	Faults *faultinject.Plan
	// shardScratch is the reusable lane-shard buffer for the VMA and
	// PTE walks (DESIGN.md §13). Checkpoint and Restore run
	// synchronously on their cluster's engine goroutine and never
	// nest, so one buffer serves both; each call takes it at entry and
	// returns it emptied on every exit path.
	shardScratch []des.Shard
}

// New returns the CXLfork mechanism over the device.
func New(dev *cxl.Device) *Mechanism { return &Mechanism{Dev: dev} }

// Name returns "CXLfork".
func (m *Mechanism) Name() string { return "CXLfork" }

// Checkpoint captures parent into CXL memory (paper §4.1, Fig. 4a):
// private state (task/MM descriptors, page tables, data pages) is
// copied as-is with non-temporal stores and rebased onto device
// offsets; global state (descriptors, mounts, PID namespace) is lightly
// serialized. A and D bits of the parent's page tables are preserved.
func (m *Mechanism) Checkpoint(parent *kernel.Task, id string) (rfork.Image, error) {
	o := parent.OS
	p := o.P
	node := o.Index
	t0 := o.Eng.Now()
	arena, err := m.Dev.NewArena(id)
	if err != nil {
		o.TraceOpError("checkpoint", t0, "alloc")
		return nil, err
	}
	ck := &Checkpoint{id: id, dev: m.Dev, arena: arena, refs: rfork.NewRefCount()}
	pool := m.Dev.Pool()
	lanes := p.CheckpointLanes
	var cost des.Time // lane-independent serial work
	shards := m.shardScratch[:0]
	defer func() { m.shardScratch = shards[:0] }()

	// Task and MM descriptors (steps 1-3): native memory copies.
	cost += p.StructCopy

	// VMA tree leaves: copied as-is, marked immutable (step 2). Each leaf
	// is one lane shard of pure metadata work (no fabric units).
	if err := m.Faults.At(faultinject.StepCheckpointVMA, node); err != nil {
		return nil, m.checkpointFault(ck, o, t0, cost+m.copyCost(lanes, shards), "vma", err)
	}
	var vmaErr error
	srcVMAs := collectVMALeaves(parent)
	for _, leaf := range srcVMAs {
		ckLeaf := leaf.Clone()
		ckLeaf.InCXL = true
		ckLeaf.Protected = true
		off, err := arena.Alloc(ckLeaf, int64(len(ckLeaf.VMAs))*96)
		if err != nil {
			vmaErr = err
			break
		}
		ck.vmaLeaves = append(ck.vmaLeaves, off)
		ck.vmaCount += len(ckLeaf.VMAs)
		shards = append(shards, des.Shard{Setup: des.Time(len(ckLeaf.VMAs)) * p.VMACheckpoint})
	}
	if vmaErr != nil {
		ck.Release()
		o.TraceOpError("checkpoint", t0, "alloc")
		return nil, vmaErr
	}
	nVMA := len(shards)

	// Page tables and data pages (steps 4-7): copy each leaf, copy each
	// present page into a CXL frame, rewrite the PTE to the device PFN
	// (read-only, CoW), preserving A/D and software bits — the rebase.
	// Each leaf is one lane shard: PTE rebases are lane-local setup, page
	// copies are fabric-stream units. A page whose content already lives
	// on the device dedups against the existing frame: no fabric write,
	// only the (lane-local) content hash. The degradation factor is a
	// function of the current virtual time only, so hoisting it out of
	// the walk charges exactly what the per-page form did.
	if err := m.Faults.At(faultinject.StepCheckpointPT, node); err != nil {
		return nil, m.checkpointFault(ck, o, t0, cost+m.copyCost(lanes, shards), "pt", err)
	}
	pageCost := m.Faults.Scale(p.CXLWritePage)
	var ptErr error
	parent.MM.PT.WalkLeaves(func(base pt.VirtAddr, leaf *pt.Leaf) {
		if ptErr != nil {
			return
		}
		ckLeaf := &pt.Leaf{InCXL: true, Protected: true}
		shard := des.Shard{UnitCost: pageCost}
		for i := range leaf.PTEs {
			e := leaf.PTEs[i]
			if !e.Present() {
				continue
			}
			var src *memsim.Frame
			if e.Flags.Has(pt.OnCXL) {
				// Parent is itself a clone still mapping checkpoint
				// pages; copy CXL→CXL.
				src = pool.Frame(int(e.PFN))
			} else {
				src = o.Mem.Frame(int(e.PFN))
			}
			dst, hit, err := m.Dev.DedupAlloc(src)
			if err != nil {
				ptErr = err
				return
			}
			arena.TrackFrame(dst)
			if hit {
				ck.dedupHits++
				shard.Setup += p.DedupHashPage
			} else {
				m.Dev.WriteBytes += int64(p.PageSize)
				shard.Units++
			}

			keep := e.Flags & (pt.Accessed | pt.Dirty | pt.FileBacked | pt.UserHot)
			ckLeaf.PTEs[i] = pt.PTE{
				Flags: pt.Present | pt.CoW | pt.OnCXL | keep,
				PFN:   int32(dst.PFN()),
			}
			ck.dataPages++
			if e.Flags.Has(pt.Dirty) {
				ck.dirtyPages++
			}
			if e.Flags.Has(pt.FileBacked) {
				ck.filePages++
			}
			shard.Setup += p.PTERebase
		}
		off, err := arena.Alloc(ckLeaf, int64(p.PageSize))
		if err != nil {
			ptErr = err
			return
		}
		ck.ptLeaves = append(ck.ptLeaves, ptLeafRef{base: base, off: off})
		shards = append(shards, shard)
	})
	if ptErr != nil {
		ck.Release()
		o.TraceOpError("checkpoint", t0, "alloc")
		return nil, ptErr
	}
	obs, laneSpans := o.Trace.CollectShards()
	obs = o.LaneObs(shards, obs)
	copyDur := m.copyCostObs(lanes, shards, obs)
	cost += copyDur

	// Global state (step 8): light serialization of paths, permissions,
	// mounts, PID namespace, and the register file, wrapped in a
	// checksummed envelope so Restore can detect corruption before it
	// mutates the child.
	if err := m.Faults.At(faultinject.StepCheckpointGlobal, node); err != nil {
		return nil, m.checkpointFault(ck, o, t0, cost, "global", err)
	}
	gs := rfork.CaptureGlobalState(parent)
	blob := wire.SealEnvelope(gs.Encode())
	m.Faults.Corrupt(faultinject.StepCheckpointGlobal, node, id, blob)
	off, err := arena.Alloc(blob, int64(len(blob)))
	if err != nil {
		ck.Release()
		o.TraceOpError("checkpoint", t0, "alloc")
		return nil, err
	}
	ck.globalOff = off
	globalCost := des.Time(len(gs.FDs))*p.FDSerialize + p.StructCopy // FDs + mounts + pidns records
	cost += globalCost

	// Publication commit: the arena becomes visible to Restore only now.
	// Everything before this point is recoverable staging.
	if err := arena.Seal(); err != nil {
		ck.Release()
		o.TraceOpError("checkpoint", t0, "seal")
		return nil, err
	}
	o.Eng.Advance(cost)
	if o.Trace.Enabled() {
		opID := o.Trace.Emit(trace.None, node, trace.TrackOps, trace.CatOp, "checkpoint",
			t0, cost, ck.CXLBytes(), ck.dataPages)
		pos := t0
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "struct-copy", pos, p.StructCopy, 0, 0)
		pos += p.StructCopy
		copiedBytes := int64(ck.dataPages-ck.dedupHits) * int64(p.PageSize)
		copyID := o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "copy", pos, copyDur,
			copiedBytes, ck.dataPages)
		o.Trace.EmitShards(copyID, node, pos, laneSpans,
			func(i int) string {
				if i < nVMA {
					return "vma-leaf"
				}
				return "pt-leaf"
			},
			func(i int) int { return shards[i].Units })
		pos += copyDur
		o.Trace.Emit(opID, node, trace.TrackOps, trace.CatPhase, "global-serialize", pos, globalCost,
			int64(len(blob)), 0)
	}
	return ck, nil
}

// copyCost folds accumulated pipeline shards into virtual time. One
// lane charges the exact serial sum — byte-identical to the historical
// sequential accounting (see des.Makespan's contract and its tests).
// Multiple lanes run the lane/fabric-stream contention model on the
// device's private engine.
func (m *Mechanism) copyCost(lanes int, shards []des.Shard) des.Time {
	return m.copyCostObs(lanes, shards, nil)
}

// copyCostObs is copyCost with a shard observer; a nil observer is
// byte-identical to copyCost.
func (m *Mechanism) copyCostObs(lanes int, shards []des.Shard, obs des.ShardObserver) des.Time {
	if lanes <= 1 {
		return des.PipelineTimeObs(1, 1, 0, shards, obs)
	}
	return m.Dev.CopyMakespanObs(lanes, shards, obs)
}

// checkpointFault finishes a Checkpoint interrupted by an injected
// fault. A node crash leaves the staged arena torn on the device (the
// dead node cannot roll back; Device.Recover garbage-collects it) and
// still charges the virtual-time cost accrued before the crash — that
// work happened. Any other fault (transient device-full) rolls the
// staging back so occupancy is exactly what it was, matching the real
// device-full paths. Either way the aborted operation is traced with
// the step that failed.
func (m *Mechanism) checkpointFault(ck *Checkpoint, o *kernel.OS, t0, cost des.Time, step string, cause error) error {
	if errors.Is(cause, rfork.ErrNodeDown) {
		o.Eng.Advance(cost)
	} else {
		ck.Release()
	}
	o.TraceOpError("checkpoint", t0, step)
	return cause
}

// collectVMALeaves snapshots the parent's VMA tree as leaves of at most
// vma.LeafCap entries, in address order.
func collectVMALeaves(parent *kernel.Task) []*vma.Leaf {
	var leaves []*vma.Leaf
	cur := &vma.Leaf{}
	parent.MM.VMAs.Walk(func(v vma.VMA) {
		cur.VMAs = append(cur.VMAs, v)
		if len(cur.VMAs) == vma.LeafCap {
			leaves = append(leaves, cur)
			cur = &vma.Leaf{}
		}
	})
	if len(cur.VMAs) > 0 {
		leaves = append(leaves, cur)
	}
	return leaves
}

// globalState verifies and decodes the checkpoint's global-state blob.
// A checksum or decode failure surfaces as rfork.ErrImageCorrupt.
func (c *Checkpoint) globalState() (rfork.GlobalState, error) {
	blob := cxl.Get[[]byte](c.arena, c.globalOff)
	payload, err := wire.OpenEnvelope(blob)
	if err != nil {
		return rfork.GlobalState{}, fmt.Errorf("core: global state in %s: %w: %v", c.id, rfork.ErrImageCorrupt, err)
	}
	gs, err := rfork.DecodeGlobalState(payload)
	if err != nil {
		return gs, fmt.Errorf("core: global state in %s: %w: %v", c.id, rfork.ErrImageCorrupt, err)
	}
	return gs, nil
}
