// Package core implements CXLfork, the paper's primary contribution: a
// remote fork that checkpoints process state into shared CXL memory
// mostly as-is (zero serialization for private state), rebases the
// checkpointed OS structures onto device offsets so any node can use
// them, and restores clones in near constant time by attaching the
// checkpointed page-table and VMA-tree leaves instead of reconstructing
// them (paper §4).
//
// The entry point is New, which returns the rfork.Mechanism; Checkpoint
// is the published image type.
package core
