// Package params centralizes every calibration constant of the simulated
// platform. Each value is annotated with its provenance: either a number
// the paper reports directly (§4.2.1 microbenchmarks, §6 methodology) or
// a value chosen during calibration so that the mechanistic model
// reproduces the paper's reported shapes (see EXPERIMENTS.md).
//
// Params is passed explicitly to every subsystem; there is no global
// configuration. Experiments that sweep a dimension (Fig. 9 sweeps CXL
// latency) copy the struct and override one field.
//
// The entry point is Default; experiments copy the returned struct and
// override fields. The capacity-manager knobs (EvictPolicy,
// CXLHighWatermark, CXLLowWatermark, CXLReclaimPeriod) are described in
// DESIGN.md §10.
package params
