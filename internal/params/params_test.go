package params

import (
	"testing"

	"cxlfork/internal/des"
)

func TestCoWCXLDecomposition(t *testing.T) {
	// §4.2.1: 2.5µs total = handler + 1.3µs copy + 0.5µs shootdown.
	p := Default()
	if got := p.CoWCXLFault(); got != p.FaultEntry+p.CXLReadPage+p.TLBShootdown {
		t.Fatalf("CoWCXLFault = %v, want sum of parts", got)
	}
	if p.CoWCXLFault() != 2500*des.Nanosecond {
		t.Fatalf("CoWCXLFault = %v, want 2.5µs", p.CoWCXLFault())
	}
	if p.MoAFault() != p.FaultEntry+p.CXLReadPage {
		t.Fatal("MoAFault decomposition wrong")
	}
}

func TestPagesBytes(t *testing.T) {
	p := Default()
	if p.Pages(0) != 0 || p.Pages(1) != 1 || p.Pages(4096) != 1 || p.Pages(4097) != 2 {
		t.Fatal("Pages rounding wrong")
	}
	if p.Bytes(3) != 3*4096 {
		t.Fatal("Bytes wrong")
	}
}

func TestPaperConstants(t *testing.T) {
	p := Default()
	cases := []struct {
		name string
		got  des.Time
		want des.Time
	}{
		{"CXL round trip", p.CXLLatency, 391 * des.Nanosecond},
		{"CXL copy", p.CXLReadPage, 1300 * des.Nanosecond},
		{"TLB shootdown", p.TLBShootdown, 500 * des.Nanosecond},
		{"container create", p.ContainerCreate, 130 * des.Millisecond},
		{"short keep-alive", p.KeepAliveShort, 10 * des.Second},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if p.CheckpointAfter != 16 {
		t.Errorf("CheckpointAfter = %d, want 16", p.CheckpointAfter)
	}
	if p.HighMemFraction != 0.90 {
		t.Errorf("HighMemFraction = %v, want 0.90", p.HighMemFraction)
	}
	if p.GhostContainerBytes != 512<<10 {
		t.Errorf("ghost container = %d bytes, want 512KB", p.GhostContainerBytes)
	}
	// Checkpoint copy ordering: local < NT-to-CXL, ~1.5x apart (§7.1).
	ratio := float64(p.CXLWritePage) / float64(p.LocalCopyPage)
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("CXL/local copy ratio %v, want ≈1.5", ratio)
	}
	if p.AnonFault >= des.Microsecond {
		t.Errorf("anon fault %v, want < 1µs", p.AnonFault)
	}
}
