package params

import "cxlfork/internal/des"

// Params describes the simulated hardware and software cost model.
type Params struct {
	// ---- Platform geometry (paper §6.1) ----

	// PageSize is the base page size in bytes.
	PageSize int
	// CacheLineSize in bytes.
	CacheLineSize int
	// LLCBytes is the per-node last-level cache capacity (64 MB L3 on
	// Sapphire Rapids).
	LLCBytes int64
	// NodeDRAMBytes is the per-node local DRAM capacity (128 GB per
	// socket in the paper; experiments shrink it for Fig. 10c).
	NodeDRAMBytes int64
	// CXLBytes is the capacity of the shared CXL device (16 GB DDR4 DIMM
	// behind the Agilex FPGA).
	CXLBytes int64
	// CoresPerNode is the number of CPU cores available to run function
	// instances on each node.
	CoresPerNode int

	// ---- Memory access latencies (round trip, paper §6.1 / Fig. 9) ----

	// LLCHit is the latency of a last-level-cache hit.
	LLCHit des.Time
	// LocalMemLatency is the round-trip latency of node-local DRAM
	// (~100 ns; Fig. 9 calls 100 ns "close to the round trip to our
	// local memory").
	LocalMemLatency des.Time
	// CXLLatency is the round-trip latency to CXL memory (391 ns
	// measured on the paper's FPGA prototype; swept 100–400 ns in
	// Fig. 9).
	CXLLatency des.Time

	// ---- Copy bandwidth-derived per-page costs ----

	// LocalCopyPage is the cost of copying one page DRAM→DRAM (Mitosis
	// checkpoints into local memory at this rate).
	LocalCopyPage des.Time
	// CXLWritePage is the cost of one NT-store page copy into CXL
	// memory (CXLfork checkpoint; §8). Calibrated so CXLfork
	// checkpointing is ~1.5x slower than Mitosis' local checkpoint
	// (§7.1 "Checkpoint Performance").
	CXLWritePage des.Time
	// CXLReadPage is the data-movement cost of copying one page from
	// CXL to local DRAM (1.3 µs measured in §4.2.1).
	CXLReadPage des.Time

	// ---- Page fault costs (paper §4.2.1) ----

	// AnonFault is a regular minor fault allocating a zeroed anonymous
	// page from local memory ("less than 1 µs").
	AnonFault des.Time
	// FaultEntry is the fixed trap/handler overhead of any fault that
	// involves a page copy; the CoW-CXL total of 2.5 µs decomposes as
	// FaultEntry + CXLReadPage + TLBShootdown.
	FaultEntry des.Time
	// TLBShootdown is the TLB-coherence cost when downgrading or
	// replacing a mapped PTE (~500 ns, §4.2.1).
	TLBShootdown des.Time
	// CoWLocalFault is a copy-on-write fault whose source page is
	// already in local DRAM (local fork's write faults).
	CoWLocalFault des.Time
	// FilePageCacheFault is a minor file fault hitting the local page
	// cache (local fork re-populating library mappings).
	FilePageCacheFault des.Time
	// FileBackingFault is a major file fault reading from the backing
	// (distributed) filesystem — the cost CXLfork avoids by
	// checkpointing clean private file pages (§4.1).
	FileBackingFault des.Time

	// ---- Process / OS structure costs ----

	// PTECopy is the per-entry cost of copying or rewriting one page
	// table entry (local fork's table duplication; Mitosis' page-table
	// deserialization uses PTEDeserialize below).
	PTECopy des.Time
	// PTERebase is the per-entry cost of rewriting a checkpointed PTE
	// to a CXL frame number plus rebasing (CXLfork checkpoint step 7).
	PTERebase des.Time
	// PTEDeserialize is Mitosis' per-entry cost of transferring and
	// decoding one PTE of the parent's page table over the fabric.
	PTEDeserialize des.Time
	// LeafAttach is CXLfork's cost of attaching one checkpointed
	// page-table leaf (512 PTEs) into the child's upper levels.
	LeafAttach des.Time
	// UpperTableInit is the cost of allocating and initializing one
	// upper-level page-table node locally.
	UpperTableInit des.Time
	// VMAReconstruct is the cost of fully reconstructing one VMA on
	// restore (CRIU and Mitosis paths).
	VMAReconstruct des.Time
	// VMALeafAttach is CXLfork's cost of attaching one checkpointed VMA
	// leaf.
	VMALeafAttach des.Time
	// VMACheckpoint is the per-VMA cost of checkpointing a VMA record.
	VMACheckpoint des.Time
	// TaskCreate is the cost of creating the empty child task that
	// calls restore (clone syscall, scheduler linkage).
	TaskCreate des.Time
	// ForkVMACopy is local fork's per-VMA duplication cost.
	ForkVMACopy des.Time
	// FDReopen is the per-descriptor cost of reopening a file or socket
	// from its serialized path during global-state restore.
	FDReopen des.Time
	// FDSerialize is the per-descriptor cost of serializing path and
	// permissions at checkpoint.
	FDSerialize des.Time
	// NamespaceRestore is the cost of restoring mount points and PID
	// namespaces from the checkpoint.
	NamespaceRestore des.Time
	// StructCopy is the fixed cost of copying the Task and MM
	// descriptors to or from a checkpoint.
	StructCopy des.Time

	// ---- Parallel copy lanes and fabric bandwidth ----

	// CheckpointLanes is the number of worker lanes checkpoint pipelines
	// shard across (per-VMA / per-page-table-leaf). 1 means the original
	// sequential path with identical accounting.
	CheckpointLanes int
	// RestoreLanes is the number of worker lanes restore pipelines shard
	// across.
	RestoreLanes int
	// FabricStreams is how many concurrent full-rate copy streams the
	// CXL fabric admits before lanes contend on bandwidth; matches the
	// parent-uplink stream count the porter's queue model uses.
	FabricStreams int
	// LocalCopyStreams is the DRAM-to-DRAM analogue for Mitosis' local
	// shadow copy (memory-controller limited, wider than the fabric).
	LocalCopyStreams int
	// LaneDispatch is the per-shard work-queue handoff cost, charged
	// only when more than one lane is configured.
	LaneDispatch des.Time
	// DedupHashPage is the cost of hashing one page for the
	// content-addressed frame dedup cache when the copy is elided (on a
	// miss the hash overlaps the NT-store and is not charged).
	DedupHashPage des.Time

	// ---- Tracing ----

	// TraceEnabled turns on the virtual-time span tracer: every
	// checkpoint/restore/fork/fault step records nested spans stamped
	// with virtual time. Tracing is purely observational — it never
	// advances a clock — so enabling it changes no simulated result.
	TraceEnabled bool
	// TraceBufferCap bounds the tracer's event buffer; once full, new
	// spans are counted as dropped instead of recorded. 0 uses the
	// tracer's default capacity.
	TraceBufferCap int

	// ---- CRIU image costs (protobuf encode/decode, file I/O on cxlfs) ----

	// CRIUPageSerialize is CRIU's per-page cost to protobuf-encode and
	// write one memory page into an image file.
	CRIUPageSerialize des.Time
	// CRIUPageRestore is CRIU's per-page cost to decode one page record,
	// allocate a local frame, copy the contents, and map it.
	CRIUPageRestore des.Time
	// CRIURecordEncode / CRIURecordDecode are per-record costs for
	// non-page image records (VMAs, FDs, task metadata).
	CRIURecordEncode des.Time
	CRIURecordDecode des.Time

	// ---- Serverless platform costs (paper §5 / Fig. 6) ----

	// ContainerCreate is the cost of creating a fresh container:
	// network, namespaces, cgroups (~130 ms, function-independent).
	ContainerCreate des.Time
	// GhostContainerTrigger is the cost of signalling an idle ghost
	// container's control socket and having it issue the restore.
	GhostContainerTrigger des.Time
	// GhostContainerBytes is the resident footprint of an empty ghost
	// container (512 KB measured in §5).
	GhostContainerBytes int64
	// RuntimeColdInit is the function-independent part of cold state
	// initialization (interpreter boot, module import machinery);
	// per-function model/data loading is charged by the function model
	// on top of this.
	RuntimeColdInit des.Time
	// KeepAlive is the default keep-alive window for idle instances.
	KeepAlive des.Time
	// KeepAliveShort is the shortened window CXLporter switches to
	// under memory pressure (10 s, §5).
	KeepAliveShort des.Time
	// CheckpointAfter is the invocation count after which CXLporter
	// checkpoints a function (16, §5).
	CheckpointAfter int
	// HighMemFraction is the local-memory utilization above which
	// CXLporter stops promoting functions to hybrid tiering (0.90).
	HighMemFraction float64
	// ABitResetPeriod is how often CXLporter clears checkpointed A bits
	// to re-estimate hot pages.
	ABitResetPeriod des.Time

	// ---- CXL capacity management (§5, §8 discussion) ----

	// EvictPolicy selects the checkpoint eviction policy the capacity
	// manager runs when the shared device crosses its high watermark:
	// "lru" (least recently restored first), "largest" (largest
	// reclaimable footprint first), or "costbenefit" (lowest expected
	// restore-latency-saved per resident byte first, the default).
	EvictPolicy string
	// CXLHighWatermark is the device occupancy fraction above which the
	// capacity manager starts evicting checkpoints.
	CXLHighWatermark float64
	// CXLLowWatermark is the occupancy fraction eviction drives the
	// device back down to once triggered.
	CXLLowWatermark float64
	// CXLReclaimPeriod is how often the background reclaim pass re-checks
	// device occupancy on the virtual clock while a trace replays.
	CXLReclaimPeriod des.Time

	// ---- Replication and failover (DESIGN.md §12) ----

	// CXLDevices is the number of devices in the fabric-attached pool.
	// The total CXLBytes capacity is split evenly across them. 1 keeps
	// the original single-device model byte-for-byte.
	CXLDevices int
	// ReplicationFactor is the number of devices each sealed checkpoint
	// is placed on (K). Clamped to the device count; 1 disables
	// replication.
	ReplicationFactor int
	// RepairPeriod is the anti-entropy loop's virtual-time tick: each
	// tick re-replicates under-replicated images within the bandwidth
	// budget below.
	RepairPeriod des.Time
	// RepairBandwidthPages caps how many pages one repair tick may copy,
	// modeling the fabric bandwidth reserved for background repair.
	RepairBandwidthPages int
	// RestoreRetryBudget is the per-request retry budget across replica
	// failovers and node-down retries; exhausting it degrades the
	// request to a scratch cold start and counts retry_exhausted.
	RestoreRetryBudget int
	// RestoreRetryBackoff is the base of the capped exponential backoff
	// charged (in virtual time) before each retry.
	RestoreRetryBackoff des.Time
	// RestoreRetryBackoffCap bounds the exponential backoff.
	RestoreRetryBackoffCap des.Time
	// ReplicaFailoverTimeout is the virtual-time cost of probing one dead
	// replica before failing over to the next device on the list.
	ReplicaFailoverTimeout des.Time

	// ---- Fabric topology (DESIGN.md §14) ----

	// Topology, when non-empty, is a fabric topology spec (the
	// internal/fabric line DSL: host/switch/device/link declarations).
	// The cluster builds it, places the device pool on it (the spec's
	// device count overrides CXLDevices), and — unless the topology is
	// trivial (one switch, one device, default links) — charges
	// per-link path latency and stream contention on every restore.
	// Empty keeps the flat single-hop model byte-for-byte.
	Topology string
	// PlacementPolicy selects how replica placement orders the device
	// pool: "hash" (default; pure consistent-hash ring walk) or
	// "locality" (ring walk reweighted to spread replicas across
	// switches and prefer low mean path cost, DESIGN.md §14). Ignored
	// without a Topology.
	PlacementPolicy string

	// ---- Telemetry and SLOs (DESIGN.md §11) ----

	// TelemetryEnabled turns on the virtual-time metric sampler: every
	// layer registers gauges/counters against a shared registry that is
	// probed on a fixed virtual-time tick. Sampling is read-only and
	// never perturbs a run; disabled, it is zero-overhead (nil-receiver
	// pattern, same as tracing).
	TelemetryEnabled bool
	// SampleEvery is the virtual-time period between sample ticks.
	SampleEvery des.Time
	// TelemetrySeriesCap bounds each series' sample ring; once full the
	// oldest sample is overwritten and the series' drop counter is
	// incremented.
	TelemetrySeriesCap int
	// SLOOccupancy, when non-zero, declares a device-occupancy
	// objective: the utilization fraction samples should stay at or
	// below. Violations are charged against SLOBudget.
	SLOOccupancy float64
	// SLOColdStartP99, when non-zero, declares a cold-start tail
	// objective: the running cold P99 should stay at or below this.
	SLOColdStartP99 des.Time
	// SLOBudget is the fraction of window samples allowed to violate
	// an objective before burn-rate alerting engages.
	SLOBudget float64
	// SLOWindowShort and SLOWindowLong are the two sliding windows of
	// the multi-window burn-rate alerts: the long window proves a
	// violation is sustained, the short one that it is still happening.
	SLOWindowShort des.Time
	SLOWindowLong  des.Time
	// SLOBurnFactor is the burn rate (budget spend multiple) at which
	// an alert fires on both windows.
	SLOBurnFactor float64
	// SLODriveReclaim lets a firing occupancy alert drive the capacity
	// manager: trigger an early reclaim pass toward the low watermark
	// and tighten checkpoint admission to it while the alert is active.
	SLODriveReclaim bool

	// ---- Critical-path attribution (DESIGN.md §16) ----

	// XRayEnabled turns on the critical-path latency attribution
	// engine: the porter decomposes every completed request's latency
	// into named blame components (queueing, failover, fabric transit,
	// restore service, execution), the fabric contention model reports
	// per-link heat, and the run exposes a deterministic blame report.
	// Attribution is purely observational — it never advances a clock
	// or draws randomness — so enabling it changes no simulated result;
	// disabled (the default) it is zero-overhead (nil-receiver pattern,
	// same as tracing and telemetry).
	XRayEnabled bool
	// XRayExemplars bounds the top-K worst-request exemplars kept per
	// op class (0 = the attribution engine's default of 5).
	XRayExemplars int

	// ---- Simulation engine (DESIGN.md §13) ----

	// SimWorkers is the simulation's worker count. At 1 (the default)
	// everything runs on the legacy sequential engine. Above 1,
	// independent simulation legs (per-function calibration, sweep
	// points, design grids) fan out to a worker pool, and multi-node
	// fabric workloads run on the sharded epoch-barrier engine with
	// per-node event queues. Results are byte-identical at any worker
	// count; workers only change wall-clock time.
	SimWorkers int
}

// Default returns the calibrated parameter set matching the paper's
// Sapphire Rapids + Agilex-7 testbed.
func Default() Params {
	return Params{
		PageSize:      4096,
		CacheLineSize: 64,
		LLCBytes:      64 << 20,
		NodeDRAMBytes: 128 << 30,
		CXLBytes:      16 << 30,
		CoresPerNode:  32,

		LLCHit:          20 * des.Nanosecond,
		LocalMemLatency: 100 * des.Nanosecond,
		CXLLatency:      391 * des.Nanosecond,

		LocalCopyPage: 340 * des.Nanosecond,
		CXLWritePage:  510 * des.Nanosecond,
		CXLReadPage:   1300 * des.Nanosecond,

		AnonFault:          900 * des.Nanosecond,
		FaultEntry:         700 * des.Nanosecond,
		TLBShootdown:       500 * des.Nanosecond,
		CoWLocalFault:      1000 * des.Nanosecond,
		FilePageCacheFault: 1100 * des.Nanosecond,
		FileBackingFault:   8 * des.Microsecond,

		PTECopy:          12 * des.Nanosecond,
		PTERebase:        10 * des.Nanosecond,
		PTEDeserialize:   80 * des.Nanosecond,
		LeafAttach:       1 * des.Microsecond,
		UpperTableInit:   500 * des.Nanosecond,
		VMAReconstruct:   10 * des.Microsecond,
		VMALeafAttach:    300 * des.Nanosecond,
		VMACheckpoint:    2 * des.Microsecond,
		TaskCreate:       300 * des.Microsecond,
		ForkVMACopy:      1 * des.Microsecond,
		FDReopen:         60 * des.Microsecond,
		FDSerialize:      5 * des.Microsecond,
		NamespaceRestore: 200 * des.Microsecond,
		StructCopy:       20 * des.Microsecond,

		CheckpointLanes:  1,
		RestoreLanes:     1,
		FabricStreams:    6,
		LocalCopyStreams: 8,
		LaneDispatch:     300 * des.Nanosecond,
		DedupHashPage:    250 * des.Nanosecond,

		TraceEnabled:   false,
		TraceBufferCap: 1 << 18,

		CRIUPageSerialize: 4 * des.Microsecond,
		CRIUPageRestore:   3 * des.Microsecond,
		CRIURecordEncode:  5 * des.Microsecond,
		CRIURecordDecode:  15 * des.Microsecond,

		ContainerCreate:       130 * des.Millisecond,
		GhostContainerTrigger: 200 * des.Microsecond,
		GhostContainerBytes:   512 << 10,
		RuntimeColdInit:       120 * des.Millisecond,
		KeepAlive:             10 * des.Minute,
		KeepAliveShort:        10 * des.Second,
		CheckpointAfter:       16,
		HighMemFraction:       0.90,
		ABitResetPeriod:       30 * des.Second,

		EvictPolicy:      "costbenefit",
		CXLHighWatermark: 0.90,
		CXLLowWatermark:  0.75,
		CXLReclaimPeriod: 1 * des.Second,

		CXLDevices:             1,
		ReplicationFactor:      1,
		RepairPeriod:           500 * des.Millisecond,
		RepairBandwidthPages:   4096,
		RestoreRetryBudget:     3,
		RestoreRetryBackoff:    10 * des.Millisecond,
		RestoreRetryBackoffCap: 160 * des.Millisecond,
		ReplicaFailoverTimeout: 2 * des.Millisecond,

		TelemetryEnabled:   false,
		SampleEvery:        100 * des.Millisecond,
		TelemetrySeriesCap: 4096,
		SLOBudget:          0.1,
		SLOWindowShort:     1 * des.Second,
		SLOWindowLong:      5 * des.Second,
		SLOBurnFactor:      2,

		SimWorkers: 1,
	}
}

// FabricHop is the minimum cross-node delivery latency: the cost of
// pushing one page through the fabric plus the switch traversal. The
// sharded engine derives its epoch lookahead window from it — no
// cross-node message can arrive sooner, so shards may run that far
// ahead without observing each other (DESIGN.md §13).
func (p Params) FabricHop() des.Time {
	return p.CXLLatency + p.CXLWritePage
}

// Pages converts a byte count to a page count, rounding up.
func (p Params) Pages(bytes int64) int {
	ps := int64(p.PageSize)
	return int((bytes + ps - 1) / ps)
}

// Bytes converts a page count to bytes.
func (p Params) Bytes(pages int) int64 { return int64(pages) * int64(p.PageSize) }

// CoWCXLFault is the total cost of a copy-on-write fault whose source is
// a CXL page and which must shoot down a previously-valid read-only
// mapping: trap + copy + TLB coherence (≈2.5 µs with defaults, §4.2.1).
func (p Params) CoWCXLFault() des.Time {
	return p.FaultEntry + p.CXLReadPage + p.TLBShootdown
}

// MoAFault is the cost of a migrate-on-access fault: the PTE was absent,
// so there is no shootdown, but the page is copied from CXL.
func (p Params) MoAFault() des.Time {
	return p.FaultEntry + p.CXLReadPage
}
