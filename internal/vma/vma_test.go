package vma

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cxlfork/internal/pt"
)

func mk(start, end uint64) VMA {
	return VMA{Start: pt.VirtAddr(start), End: pt.VirtAddr(end), Prot: Read, Kind: Anon}
}

func TestInsertFind(t *testing.T) {
	tr := NewTree()
	v, err := tr.Insert(mk(0x1000, 0x3000))
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == 0 {
		t.Fatal("no ID assigned")
	}
	if got := tr.Find(0x1000); got == nil || got.ID != v.ID {
		t.Fatal("Find missed start")
	}
	if got := tr.Find(0x2fff); got == nil {
		t.Fatal("Find missed last byte")
	}
	if tr.Find(0x3000) != nil {
		t.Fatal("Find hit exclusive end")
	}
	if tr.Find(0x0) != nil {
		t.Fatal("Find hit below range")
	}
}

func TestOverlapRejected(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Insert(mk(0x1000, 0x3000)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]uint64{{0x0, 0x1001}, {0x2000, 0x2800}, {0x2fff, 0x5000}, {0x500, 0x5000}} {
		if _, err := tr.Insert(mk(bad[0], bad[1])); err == nil {
			t.Fatalf("overlap %#x-%#x accepted", bad[0], bad[1])
		}
	}
	// Adjacent is fine.
	if _, err := tr.Insert(mk(0x3000, 0x4000)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRangeRejected(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Insert(mk(0x1000, 0x1000)); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestLeafSplit(t *testing.T) {
	tr := NewTree()
	for i := 0; i < LeafCap*3; i++ {
		if _, err := tr.Insert(mk(uint64(i)*0x2000, uint64(i)*0x2000+0x1000)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != LeafCap*3 {
		t.Fatalf("count = %d", tr.Count())
	}
	if tr.Leaves() < 3 {
		t.Fatalf("leaves = %d, expected splits", tr.Leaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	tr := NewTree()
	v, _ := tr.Insert(mk(0x1000, 0x2000))
	if !tr.Remove(v.ID) {
		t.Fatal("Remove failed")
	}
	if tr.Find(0x1000) != nil {
		t.Fatal("found after remove")
	}
	if tr.Remove(v.ID) {
		t.Fatal("double remove succeeded")
	}
}

func TestUpdateProt(t *testing.T) {
	tr := NewTree()
	v, _ := tr.Insert(mk(0x1000, 0x2000))
	v2 := v
	v2.Prot = Read | Write
	if err := tr.Update(v2); err != nil {
		t.Fatal(err)
	}
	if got := tr.Find(0x1000); got.Prot != Read|Write {
		t.Fatalf("prot = %v", got.Prot)
	}
}

func TestUpdateResize(t *testing.T) {
	tr := NewTree()
	v, _ := tr.Insert(mk(0x1000, 0x2000))
	v2 := v
	v2.End = 0x5000
	if err := tr.Update(v2); err != nil {
		t.Fatal(err)
	}
	if tr.Find(0x4fff) == nil {
		t.Fatal("grown range not found")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachLeafAndBreak(t *testing.T) {
	tr := NewTree()
	leaf := &Leaf{InCXL: true, Protected: true, VMAs: []VMA{
		{ID: 1, Start: 0x1000, End: 0x2000, Prot: Read, Kind: Anon},
		{ID: 2, Start: 0x2000, End: 0x4000, Prot: Read | Write, Kind: Anon},
	}}
	if err := tr.AttachLeaf(leaf); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().AttachedLeaves != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
	if got := tr.Find(0x3000); got == nil || got.ID != 2 {
		t.Fatal("find through attached leaf failed")
	}
	// Inserting into the attached leaf's range breaks it.
	if _, err := tr.Insert(mk(0x4000, 0x5000)); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.LeafBreaks != 1 || st.AttachedLeaves != 0 {
		t.Fatalf("stats after break = %+v", st)
	}
	// The checkpointed leaf is pristine.
	if len(leaf.VMAs) != 2 {
		t.Fatal("checkpointed leaf mutated")
	}
}

func TestAttachLeafOrdering(t *testing.T) {
	tr := NewTree()
	a := &Leaf{Protected: true, VMAs: []VMA{{ID: 1, Start: 0x10000, End: 0x20000}}}
	b := &Leaf{Protected: true, VMAs: []VMA{{ID: 2, Start: 0x1000, End: 0x2000}}}
	if err := tr.AttachLeaf(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachLeaf(b); err == nil {
		t.Fatal("out-of-order attach accepted")
	}
	if err := tr.AttachLeaf(&Leaf{Protected: true}); err == nil {
		t.Fatal("empty leaf accepted")
	}
	if err := tr.AttachLeaf(&Leaf{VMAs: []VMA{{ID: 3, Start: 0x30000, End: 0x40000}}}); err == nil {
		t.Fatal("unprotected leaf accepted")
	}
}

func TestIDsPreservedAcrossAttach(t *testing.T) {
	tr := NewTree()
	leaf := &Leaf{Protected: true, VMAs: []VMA{{ID: 41, Start: 0x1000, End: 0x2000}}}
	tr.AttachLeaf(leaf)
	// New inserts don't collide with attached IDs.
	v, _ := tr.Insert(mk(0x9000, 0xa000))
	if v.ID <= 41 {
		t.Fatalf("new ID %d collides with attached", v.ID)
	}
	if tr.ByID(41) == nil {
		t.Fatal("ByID failed for attached VMA")
	}
}

func TestWalkOrder(t *testing.T) {
	tr := NewTree()
	starts := []uint64{0x9000, 0x1000, 0x5000, 0x3000, 0x7000}
	for _, s := range starts {
		tr.Insert(mk(s, s+0x1000))
	}
	var prev pt.VirtAddr
	tr.Walk(func(v VMA) {
		if v.Start < prev {
			t.Fatalf("walk out of order at %v", v)
		}
		prev = v.Start
	})
}

// TestInsertProperty: random non-overlapping insertions keep the tree
// valid and findable.
func TestInsertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		n := 100 + rng.Intn(100)
		// Disjoint slots, inserted in random order.
		perm := rng.Perm(n)
		for _, i := range perm {
			base := uint64(i) * 0x10000
			if _, err := tr.Insert(mk(base+0x1000, base+0x3000)); err != nil {
				return false
			}
		}
		if tr.Count() != n {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			base := uint64(i) * 0x10000
			if tr.Find(pt.VirtAddr(base+0x2000)) == nil {
				return false
			}
			if tr.Find(pt.VirtAddr(base+0x4000)) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestVMAHelpers(t *testing.T) {
	v := VMA{Start: 0x1000, End: 0x5000, Prot: Read | Exec, Kind: FilePrivate, Name: "lib.so"}
	if v.Len() != 0x4000 || v.Pages() != 4 {
		t.Fatalf("len=%d pages=%d", v.Len(), v.Pages())
	}
	if v.Prot.String() != "r-x" {
		t.Fatalf("prot = %q", v.Prot.String())
	}
	if !v.Contains(0x1000) || v.Contains(0x5000) {
		t.Fatal("Contains boundary wrong")
	}
}

// TestMutationProperty: random interleavings of insert/remove/update
// keep the tree valid and consistent with a reference map.
func TestMutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		ref := make(map[int]VMA) // id → current value
		slotOf := func(id int) uint64 { return uint64(id) * 0x100000 }
		nextSlot := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert into a fresh slot
				base := slotOf(nextSlot)
				nextSlot++
				v, err := tr.Insert(VMA{
					Start: pt.VirtAddr(base + 0x1000),
					End:   pt.VirtAddr(base + 0x1000 + uint64(1+rng.Intn(16))*0x1000),
					Prot:  Read | Write, Kind: Anon,
				})
				if err != nil {
					return false
				}
				ref[v.ID] = v
			case 2: // remove a random live VMA
				for id := range ref {
					if !tr.Remove(id) {
						return false
					}
					delete(ref, id)
					break
				}
			case 3: // update prot of a random live VMA
				for id, v := range ref {
					v.Prot = Prot(rng.Intn(8))
					if err := tr.Update(v); err != nil {
						return false
					}
					ref[id] = v
					break
				}
			}
			if tr.Count() != len(ref) {
				return false
			}
			if err := tr.Validate(); err != nil {
				return false
			}
		}
		// Every reference entry is findable with the right value.
		for id, v := range ref {
			got := tr.ByID(id)
			if got == nil || *got != v {
				return false
			}
			mid := v.Start + pt.VirtAddr(v.Len()/2)
			if f := tr.Find(mid); f == nil || f.ID != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
