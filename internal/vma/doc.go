// Package vma implements the virtual memory area tree describing a
// process address space layout.
//
// Mirroring the paper's restore optimization (§4.2.1, Fig. 5), the tree
// is split into locally-allocated upper structure (a sorted index of
// leaf nodes) and leaf nodes holding runs of VMAs. A checkpointed leaf
// node resides in a CXL arena, is write-protected, and can be attached
// by restored processes on any node; updating a VMA inside a protected
// leaf copies the leaf to local memory first (leaf copy-on-write).
// Serverless address spaces carry hundreds of VMAs — mostly private
// library mappings that never change — so attaching leaves instead of
// reconstructing each VMA is what makes CXLfork's restore near
// constant-time.
//
// The entry point is NewTree.
package vma
