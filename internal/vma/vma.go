package vma

import (
	"fmt"
	"sort"

	"cxlfork/internal/pt"
)

// LeafCap is the number of VMAs one leaf node holds at most.
const LeafCap = 32

// Prot is a permission bitmask.
type Prot uint8

// Permission bits.
const (
	Read Prot = 1 << iota
	Write
	Exec
)

func (p Prot) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Kind classifies the backing of a VMA.
type Kind uint8

const (
	// Anon is anonymous private memory (heap, stacks, arenas).
	Anon Kind = iota
	// FilePrivate is a private file mapping (libraries, binaries).
	FilePrivate
)

func (k Kind) String() string {
	if k == FilePrivate {
		return "file"
	}
	return "anon"
}

// VMA is one contiguous mapping. VMAs are treated as immutable values;
// updates replace them (after breaking a protected leaf).
type VMA struct {
	// ID is unique within a tree lineage; clones and checkpoints keep
	// IDs stable so per-process state (e.g. lazy materialization) can
	// key on them.
	ID    int
	Start pt.VirtAddr
	End   pt.VirtAddr // exclusive
	Prot  Prot
	Kind  Kind
	// Path and FileOff locate the backing file for FilePrivate VMAs.
	// Root filesystems are identical across nodes (§4.1), so the path
	// alone re-resolves the file anywhere.
	Path    string
	FileOff int64
	// Name is a human label ("[heap]", "libpython3.11.so").
	Name string
}

// Len returns the mapping length in bytes.
func (v VMA) Len() int64 { return int64(v.End - v.Start) }

// Pages returns the mapping length in pages.
func (v VMA) Pages() int { return int(v.Len() >> pt.PageShift) }

// Contains reports whether va falls inside the mapping.
func (v VMA) Contains(va pt.VirtAddr) bool { return va >= v.Start && va < v.End }

func (v VMA) String() string {
	return fmt.Sprintf("%#x-%#x %s %s %s", uint64(v.Start), uint64(v.End), v.Prot, v.Kind, v.Name)
}

// Leaf holds a sorted run of non-overlapping VMAs.
type Leaf struct {
	VMAs []VMA

	// InCXL marks a leaf resident in a checkpoint arena.
	InCXL bool
	// Protected write-protects the leaf; updates must copy it locally.
	Protected bool
}

// Clone returns a local, unprotected deep copy.
func (l *Leaf) Clone() *Leaf {
	c := &Leaf{VMAs: make([]VMA, len(l.VMAs))}
	copy(c.VMAs, l.VMAs)
	return c
}

// start returns the first VMA's start (leaves are never empty).
func (l *Leaf) start() pt.VirtAddr { return l.VMAs[0].Start }

// Stats tracks structural events for cost accounting.
type Stats struct {
	LocalLeaves    int
	AttachedLeaves int
	LeafBreaks     int
}

// Tree is the per-process VMA tree.
type Tree struct {
	leaves []*Leaf // sorted by start address; the "upper levels"
	nextID int
	stats  Stats
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{nextID: 1} }

// Stats returns structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Count returns the number of VMAs.
func (t *Tree) Count() int {
	n := 0
	for _, l := range t.leaves {
		n += len(l.VMAs)
	}
	return n
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return len(t.leaves) }

// Find returns the VMA containing va, or nil.
func (t *Tree) Find(va pt.VirtAddr) *VMA {
	li := t.findLeaf(va)
	if li < 0 {
		return nil
	}
	l := t.leaves[li]
	i := sort.Search(len(l.VMAs), func(i int) bool { return l.VMAs[i].End > va })
	if i < len(l.VMAs) && l.VMAs[i].Contains(va) {
		return &l.VMAs[i]
	}
	return nil
}

// findLeaf returns the index of the leaf that could contain va, or -1.
func (t *Tree) findLeaf(va pt.VirtAddr) int {
	i := sort.Search(len(t.leaves), func(i int) bool { return t.leaves[i].start() > va })
	return i - 1 // may be -1
}

// Insert adds a mapping and returns the assigned VMA (with ID). It
// returns an error on overlap with an existing mapping.
func (t *Tree) Insert(v VMA) (VMA, error) {
	if v.End <= v.Start {
		return VMA{}, fmt.Errorf("vma: empty range %#x-%#x", uint64(v.Start), uint64(v.End))
	}
	if ex := t.overlaps(v.Start, v.End); ex != nil {
		return VMA{}, fmt.Errorf("vma: %#x-%#x overlaps %v", uint64(v.Start), uint64(v.End), ex)
	}
	if v.ID == 0 {
		v.ID = t.nextID
		t.nextID++
	} else if v.ID >= t.nextID {
		t.nextID = v.ID + 1
	}

	if len(t.leaves) == 0 {
		t.leaves = []*Leaf{{VMAs: []VMA{v}}}
		t.stats.LocalLeaves++
		return v, nil
	}
	li := t.findLeaf(v.Start)
	if li < 0 {
		li = 0
	}
	l := t.breakLeaf(li)
	i := sort.Search(len(l.VMAs), func(i int) bool { return l.VMAs[i].Start > v.Start })
	l.VMAs = append(l.VMAs, VMA{})
	copy(l.VMAs[i+1:], l.VMAs[i:])
	l.VMAs[i] = v
	if len(l.VMAs) > LeafCap {
		t.splitLeaf(li)
	}
	return v, nil
}

// overlaps returns an existing VMA intersecting [start,end), or nil.
func (t *Tree) overlaps(start, end pt.VirtAddr) *VMA {
	for _, l := range t.leaves {
		for i := range l.VMAs {
			v := &l.VMAs[i]
			if v.Start < end && start < v.End {
				return v
			}
		}
	}
	return nil
}

// breakLeaf applies leaf copy-on-write if the leaf is protected, and
// returns the (now writable) leaf.
func (t *Tree) breakLeaf(li int) *Leaf {
	l := t.leaves[li]
	if !l.Protected {
		return l
	}
	local := l.Clone()
	t.leaves[li] = local
	if l.InCXL {
		t.stats.AttachedLeaves--
	}
	t.stats.LocalLeaves++
	t.stats.LeafBreaks++
	return local
}

func (t *Tree) splitLeaf(li int) {
	l := t.leaves[li]
	mid := len(l.VMAs) / 2
	right := &Leaf{VMAs: append([]VMA(nil), l.VMAs[mid:]...)}
	l.VMAs = l.VMAs[:mid]
	t.leaves = append(t.leaves, nil)
	copy(t.leaves[li+2:], t.leaves[li+1:])
	t.leaves[li+1] = right
	t.stats.LocalLeaves++
}

// Remove deletes the VMA with the given ID, breaking its leaf if
// protected. It reports whether it was found.
func (t *Tree) Remove(id int) bool {
	for li, l := range t.leaves {
		for i := range l.VMAs {
			if l.VMAs[i].ID != id {
				continue
			}
			wl := t.breakLeaf(li)
			wl.VMAs = append(wl.VMAs[:i], wl.VMAs[i+1:]...)
			if len(wl.VMAs) == 0 {
				t.leaves = append(t.leaves[:li], t.leaves[li+1:]...)
				t.stats.LocalLeaves--
			}
			return true
		}
	}
	return false
}

// Update replaces the VMA with v.ID by v (mprotect/resize), breaking the
// leaf if protected. The new range must not overlap other VMAs.
func (t *Tree) Update(v VMA) error {
	for li, l := range t.leaves {
		for i := range l.VMAs {
			if l.VMAs[i].ID != v.ID {
				continue
			}
			old := l.VMAs[i]
			if v.Start != old.Start || v.End != old.End {
				// Re-inserting handles reordering; simplest correct path.
				wl := t.breakLeaf(li)
				wl.VMAs = append(wl.VMAs[:i], wl.VMAs[i+1:]...)
				if len(wl.VMAs) == 0 {
					t.leaves = append(t.leaves[:li], t.leaves[li+1:]...)
					t.stats.LocalLeaves--
				}
				_, err := t.Insert(v)
				return err
			}
			wl := t.breakLeaf(li)
			wl.VMAs[i] = v
			return nil
		}
	}
	return fmt.Errorf("vma: id %d not found", v.ID)
}

// AttachLeaf appends a checkpointed leaf to the tree. Leaves must be
// attached in ascending address order into an empty or
// ascending-compatible tree (restore builds the index front-to-back).
func (t *Tree) AttachLeaf(l *Leaf) error {
	if !l.Protected {
		return fmt.Errorf("vma: refusing to attach unprotected leaf")
	}
	if len(l.VMAs) == 0 {
		return fmt.Errorf("vma: empty leaf")
	}
	if n := len(t.leaves); n > 0 {
		last := t.leaves[n-1]
		if last.VMAs[len(last.VMAs)-1].End > l.start() {
			return fmt.Errorf("vma: leaf attach out of order")
		}
	}
	for i := range l.VMAs {
		if l.VMAs[i].ID >= t.nextID {
			t.nextID = l.VMAs[i].ID + 1
		}
	}
	t.leaves = append(t.leaves, l)
	t.stats.AttachedLeaves++
	return nil
}

// Walk visits every VMA in ascending address order. The callback must
// not mutate the tree.
func (t *Tree) Walk(fn func(v VMA)) {
	for _, l := range t.leaves {
		for _, v := range l.VMAs {
			fn(v)
		}
	}
}

// ByID returns the VMA with the given ID, or nil.
func (t *Tree) ByID(id int) *VMA {
	for _, l := range t.leaves {
		for i := range l.VMAs {
			if l.VMAs[i].ID == id {
				return &l.VMAs[i]
			}
		}
	}
	return nil
}

// Validate checks structural invariants: sorted, non-overlapping,
// non-empty leaves, sorted leaf index. Tests and property checks call it.
func (t *Tree) Validate() error {
	var prevEnd pt.VirtAddr
	var prevStart pt.VirtAddr
	for li, l := range t.leaves {
		if len(l.VMAs) == 0 {
			return fmt.Errorf("vma: leaf %d empty", li)
		}
		if li > 0 && l.start() < prevStart {
			return fmt.Errorf("vma: leaf index out of order at %d", li)
		}
		prevStart = l.start()
		for _, v := range l.VMAs {
			if v.Start < prevEnd {
				return fmt.Errorf("vma: overlap/misorder at %v", v)
			}
			if v.End <= v.Start {
				return fmt.Errorf("vma: empty vma %v", v)
			}
			prevEnd = v.End
		}
	}
	return nil
}
