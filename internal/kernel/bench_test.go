package kernel

import (
	"testing"

	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

func benchNode(b *testing.B) *OS {
	b.Helper()
	p := testParams()
	return NewOS("bench", p, newEngine(), newDevice(p), newFS(), p.NodeDRAMBytes)
}

func BenchmarkAccessHit(b *testing.B) {
	o := benchNode(b)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	if err := task.MM.Access(0x10000, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := task.MM.Access(0x10000, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnonFault(b *testing.B) {
	o := benchNode(b)
	task := o.NewTask("t")
	span := pt.VirtAddr(1 << 30)
	task.MM.Mmap(vma.VMA{Start: 0x10000000, End: 0x10000000 + span, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := pt.VirtAddr(0x10000000 + (i%200000)<<pt.PageShift)
		if err := task.MM.Access(va, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFork(b *testing.B) {
	o := benchNode(b)
	parent := o.NewTask("p")
	parent.MM.Mmap(vma.VMA{Start: 0x10000000, End: 0x10000000 + 1024<<pt.PageShift, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	for i := 0; i < 1024; i++ {
		parent.MM.Access(pt.VirtAddr(0x10000000+i<<pt.PageShift), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := o.Fork(parent, "c")
		if err != nil {
			b.Fatal(err)
		}
		o.Exit(child)
	}
}
