package kernel

import (
	"errors"
	"testing"

	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

func TestMunmapFreesPages(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	v, err := task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x20000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		task.MM.Access(pt.VirtAddr(0x10000+i*0x1000), true)
	}
	if o.Mem.UsedPages() != 16 {
		t.Fatalf("used = %d", o.Mem.UsedPages())
	}
	if err := task.MM.Munmap(v.ID); err != nil {
		t.Fatal(err)
	}
	if o.Mem.UsedPages() != 0 {
		t.Fatalf("munmap leaked %d pages", o.Mem.UsedPages())
	}
	if err := task.MM.Access(0x10000, false); !errors.Is(err, ErrSegfault) {
		t.Fatalf("access after munmap: %v", err)
	}
	if err := task.MM.Munmap(v.ID); err == nil {
		t.Fatal("double munmap succeeded")
	}
}

func TestMprotectDowngrade(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	v, _ := task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x12000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	task.MM.Access(0x10000, true)
	if err := task.MM.Mprotect(v.ID, vma.Read); err != nil {
		t.Fatal(err)
	}
	if err := task.MM.Access(0x10000, true); !errors.Is(err, ErrProtection) {
		t.Fatalf("store after mprotect(R): %v", err)
	}
	if err := task.MM.Access(0x10000, false); err != nil {
		t.Fatalf("load after mprotect(R): %v", err)
	}
}

func TestMprotectUpgrade(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	v, _ := task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x12000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	task.MM.Access(0x10000, true)
	task.MM.Mprotect(v.ID, vma.Read)
	if err := task.MM.Mprotect(v.ID, vma.Read|vma.Write); err != nil {
		t.Fatal(err)
	}
	if err := task.MM.Access(0x10000, true); err != nil {
		t.Fatalf("store after re-upgrade: %v", err)
	}
}

func TestMprotectMissingVMA(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	if err := task.MM.Mprotect(999, vma.Read); err == nil {
		t.Fatal("mprotect on phantom vma succeeded")
	}
}

func TestSharedMappingCrossNode(t *testing.T) {
	o := testNode(t)
	// Producer publishes two pages.
	prod := o.NewTask("producer")
	_, pfns, err := prod.MM.MmapShared(0x5_0000_0000, 2, "[shm]")
	if err != nil {
		t.Fatal(err)
	}
	if err := prod.MM.Publish(0x5_0000_0000, 42); err != nil {
		t.Fatal(err)
	}
	if err := prod.MM.Publish(0x5_0000_1000, 43); err != nil {
		t.Fatal(err)
	}

	// Consumer maps the same frames (on this single-node test the
	// mapping path is identical to a remote node's).
	cons := o.NewTask("consumer")
	if _, err := cons.MM.MapSharedFrames(0x6_0000_0000, pfns, "[shm-in]"); err != nil {
		t.Fatal(err)
	}
	if err := cons.MM.Access(0x6_0000_0000, false); err != nil {
		t.Fatal(err)
	}
	e, _ := cons.MM.PT.Lookup(0x6_0000_0000)
	if !e.Flags.Has(pt.OnCXL) {
		t.Fatal("consumer mapping not on CXL")
	}
	if got := o.Dev.Pool().Frame(int(e.PFN)).Data; got != 42 {
		t.Fatalf("consumer read %d, want 42", got)
	}

	// Consumer cannot store through the shared read-only mapping.
	if err := cons.MM.Access(0x6_0000_0000, true); !errors.Is(err, ErrProtection) {
		t.Fatalf("store through shared mapping: %v", err)
	}

	// Teardown: consumer exit leaves frames; producer exit frees them.
	used := o.Dev.Pool().UsedPages()
	o.Exit(cons)
	if o.Dev.Pool().UsedPages() != used {
		t.Fatal("consumer exit freed producer frames")
	}
	o.Exit(prod)
	if o.Dev.Pool().UsedPages() != 0 {
		t.Fatalf("producer exit leaked %d device pages", o.Dev.Pool().UsedPages())
	}
}

func TestPublishOutsideSharedMapping(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	task.MM.Access(0x10000, true)
	if err := task.MM.Publish(0x10000, 1); err == nil {
		t.Fatal("publish through a local mapping succeeded")
	}
	if err := task.MM.Publish(0x5000000, 1); err == nil {
		t.Fatal("publish through an absent mapping succeeded")
	}
}
