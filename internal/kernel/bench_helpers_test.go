package kernel

import (
	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/params"
)

func testParams() params.Params {
	p := params.Default()
	p.NodeDRAMBytes = 2 << 30
	p.CXLBytes = 1 << 30
	return p
}

func newEngine() *des.Engine                { return des.NewEngine() }
func newDevice(p params.Params) *cxl.Device { return cxl.NewDevice(p) }
func newFS() *fsim.FS                       { return fsim.NewFS() }
