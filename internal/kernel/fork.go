package kernel

import (
	"cxlfork/internal/cachesim"
	"cxlfork/internal/des"
	"cxlfork/internal/pt"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
)

// Fork implements local fork(): the child shares the parent's anonymous
// pages copy-on-write and inherits descriptors and namespaces. Following
// the paper's LocalFork baseline (§7.1), private file mappings are
// re-populated lazily in the child — the child takes page-cache minor
// faults on the library pages it touches, which is precisely the cost
// CXLfork avoids by checkpointing clean file pages.
func (o *OS) Fork(parent *Task, name string) (*Task, error) {
	t0 := o.Eng.Now()
	child := o.NewTask(name) // charges TaskCreate

	child.Regs = parent.Regs
	child.FDs = parent.FDs.clone()
	child.NS = parent.NS

	var cost des.Time
	p := o.P

	// Duplicate the VMA tree, preserving IDs so backing info carries over.
	var vmaErr error
	parent.MM.VMAs.Walk(func(v vma.VMA) {
		if vmaErr != nil {
			return
		}
		if _, err := child.MM.VMAs.Insert(v); err != nil {
			vmaErr = err
		}
		cost += p.ForkVMACopy
	})
	if vmaErr != nil {
		o.Exit(child)
		o.TraceOpError("fork", t0, "vma-copy")
		return nil, vmaErr
	}

	// Copy page tables for anonymous pages; downgrade writable mappings
	// to copy-on-write on both sides. File-backed PTEs are dropped in
	// the child (lazy re-population).
	var copyErr error
	parent.MM.PT.Walk(func(va pt.VirtAddr, leaf *pt.Leaf, i int) {
		if copyErr != nil {
			return
		}
		e := leaf.PTEs[i]
		if e.Flags.Has(pt.FileBacked) {
			return
		}
		if e.Flags.Has(pt.OnCXL) {
			// Parent is itself a clone mapping checkpoint pages: the
			// child shares the same read-only CXL mapping.
			child.MM.PT.Set(va, e)
			cost += p.PTECopy
			return
		}
		if e.Flags.Has(pt.Writable) {
			// Downgrade the parent in place. Writable PTEs can only
			// live in local leaves, so this never breaks a leaf.
			leaf.PTEs[i].Flags = (e.Flags &^ pt.Writable) | pt.CoW
			o.TLB.Invalidate(cachesim.Key(parent.MM.ASID, va.PageNumber()))
		}
		childFlags := (e.Flags &^ (pt.Writable | pt.Dirty)) | pt.CoW
		frame := o.Mem.Frame(int(e.PFN))
		frame.Get()
		child.MM.PT.Set(va, pt.PTE{Flags: childFlags, PFN: e.PFN})
		cost += 2 * p.PTECopy
	})
	if copyErr != nil {
		o.Exit(child)
		o.TraceOpError("fork", t0, "pt-copy")
		return nil, copyErr
	}

	// One batched TLB flush for the parent's downgraded mappings.
	cost += p.TLBShootdown
	o.Eng.Advance(cost)
	o.Trace.Emit(trace.None, o.Index, trace.TrackOps, trace.CatOp, "fork", t0, o.Eng.Now()-t0, 0, 0)
	return child, nil
}
