package kernel

import (
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// TestFaultChargingMatchesClock verifies that all fault time recorded in
// MMStats equals the clock advance attributable to faults.
func TestFaultChargingMatchesClock(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x30000, Prot: vma.Read | vma.Write, Kind: vma.Anon})

	// Pure fault workload: every access faults exactly once (first touch
	// of each page), plus TLB walks and one memory access each.
	before := o.Eng.Now()
	for i := 0; i < 32; i++ {
		if err := task.MM.Access(pt.VirtAddr(0x10000+i*0x1000), true); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := o.Eng.Now() - before
	st := task.MM.Stats
	if st.Faults.Time != 32*o.P.AnonFault {
		t.Fatalf("fault time %v, want %v", st.Faults.Time, 32*o.P.AnonFault)
	}
	if got := st.Faults.Time + st.AccessTime; got != elapsed {
		t.Fatalf("accounting gap: faults+access=%v, clock=%v", got, elapsed)
	}
}

// TestAnonFaultIntoAttachedLeafBreaksIt verifies that growing into a
// region whose leaf is checkpoint-attached performs leaf copy-on-write
// and charges the extra leaf-copy cost.
func TestAnonFaultIntoAttachedLeafBreaksIt(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	// Map an anon VMA over a leaf-aligned region and attach a protected
	// leaf with one checkpointed CXL entry.
	base := pt.VirtAddr(pt.LeafSpan * 8)
	task.MM.Mmap(vma.VMA{Start: base, End: base + pt.LeafSpan, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	cxlFrame := o.Dev.Pool().MustAlloc()
	leaf := &pt.Leaf{InCXL: true, Protected: true}
	leaf.PTEs[0] = pt.PTE{Flags: pt.Present | pt.OnCXL | pt.CoW, PFN: int32(cxlFrame.PFN())}
	if err := task.MM.PT.AttachLeaf(base, leaf); err != nil {
		t.Fatal(err)
	}

	// Faulting a *different* page in the same leaf must break the leaf.
	before := o.Eng.Now()
	if err := task.MM.Access(base+0x1000, true); err != nil {
		t.Fatal(err)
	}
	if task.MM.PT.Stats().LeafBreaks != 1 {
		t.Fatal("anon fault did not break the attached leaf")
	}
	want := o.P.AnonFault + o.P.CXLReadPage // fault + leaf copy
	if got := o.Eng.Now() - before - 2*o.P.LLCHit; got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
	// The checkpointed entry survived the break into the local copy.
	e, _ := task.MM.PT.Lookup(base)
	if !e.Flags.Has(pt.OnCXL) || e.PFN != int32(cxlFrame.PFN()) {
		t.Fatal("checkpointed entry lost in leaf break")
	}
	if err := task.MM.PT.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTLBWalkChargedOncePerTranslation verifies the TLB model: the
// first touch pays a walk, the second does not.
func TestTLBWalkChargedOncePerTranslation(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	task.MM.Access(0x10000, true) // fault + walk

	before := o.Eng.Now()
	task.MM.Access(0x10000, false) // TLB hit + LLC hit
	first := o.Eng.Now() - before
	if first != o.P.LLCHit {
		t.Fatalf("warm access = %v, want one LLC hit (%v)", first, o.P.LLCHit)
	}
	if o.TLB.Misses() == 0 || o.TLB.Hits() == 0 {
		t.Fatalf("TLB counters: hits=%d misses=%d", o.TLB.Hits(), o.TLB.Misses())
	}
}

// TestCXLReadLatency verifies that LLC misses on CXL-mapped pages pay
// the device round trip rather than local DRAM latency.
func TestCXLReadLatency(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	base := pt.VirtAddr(pt.LeafSpan)
	task.MM.Mmap(vma.VMA{Start: base, End: base + 0x1000, Prot: vma.Read, Kind: vma.Anon})
	f := o.Dev.Pool().MustAlloc()
	task.MM.MapCXL(base, int32(f.PFN()), pt.Accessed)

	before := o.Eng.Now()
	if err := task.MM.Access(base, false); err != nil {
		t.Fatal(err)
	}
	got := o.Eng.Now() - before
	want := 2*o.P.LLCHit + o.P.CXLLatency // walk + CXL miss
	if got != want {
		t.Fatalf("CXL read charged %v, want %v", got, want)
	}
	// Second access: cached.
	before = o.Eng.Now()
	task.MM.Access(base, false)
	if got := o.Eng.Now() - before; got != o.P.LLCHit {
		t.Fatalf("cached CXL read charged %v, want %v", got, o.P.LLCHit)
	}
}

// TestSharedFrameCacheHitAcrossProcesses checks the physically-indexed
// LLC: a fork child hits on lines its parent warmed (same frames).
func TestSharedFrameCacheHitAcrossProcesses(t *testing.T) {
	o := testNode(t)
	parent := o.NewTask("p")
	parent.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	parent.MM.Access(0x10000, true)  // fault + install
	parent.MM.Access(0x10000, false) // warm the line

	child, err := o.Fork(parent, "c")
	if err != nil {
		t.Fatal(err)
	}
	before := o.Eng.Now()
	if err := child.MM.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	got := o.Eng.Now() - before
	// Child pays its own TLB walk but hits the parent's cache line.
	if got != 2*o.P.LLCHit+o.P.LLCHit {
		t.Fatalf("child access = %v, want walk + LLC hit", got)
	}
}

// TestAccessTimeVsComputeSeparation double-checks that AccessRepeat and
// engine advances compose: a mixed sequence accounts exactly.
func TestAccessTimeVsComputeSeparation(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	t0 := o.Eng.Now()
	task.MM.AccessRepeat(5)
	o.Eng.Advance(123 * des.Microsecond)
	task.MM.AccessRepeat(3)
	want := 8*o.P.LLCHit + 123*des.Microsecond
	if got := o.Eng.Now() - t0; got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if task.MM.Stats.AccessTime != 8*o.P.LLCHit {
		t.Fatal("access time accounting wrong")
	}
}
