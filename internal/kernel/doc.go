// Package kernel implements the per-node operating system instance of
// the simulated cluster: tasks, address spaces, page-fault handling,
// copy-on-write, and local fork. Every node runs a standalone instance
// of the same OS image and shares the root filesystem (paper §4), so a
// cluster is a set of OS values sharing one fsim.FS and one cxl.Device.
//
// All kernel operations advance the node's virtual clock by their
// modelled cost, so end-to-end latencies are simply clock deltas.
//
// The entry point is NewOS, one per node; tasks, address spaces and the
// fault paths are methods on the returned OS and its Tasks.
package kernel
