package kernel

import (
	"fmt"
	"sort"

	"cxlfork/internal/cachesim"
	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/memsim"
	"cxlfork/internal/params"
	"cxlfork/internal/telemetry"
	"cxlfork/internal/tlbsim"
	"cxlfork/internal/trace"
)

// OS is one node's operating system instance.
type OS struct {
	// Name identifies the node ("node0").
	Name string
	// Index is the node's position in its cluster (0 for standalone
	// instances). Fault-injection plans address nodes by this index.
	Index int
	// P is the platform cost model.
	P params.Params
	// Eng is the node's virtual clock. Nodes in one cluster share an
	// engine.
	Eng *des.Engine
	// Mem is the node-local DRAM pool.
	Mem *memsim.Pool
	// Dev is the shared CXL device reachable over the fabric.
	Dev *cxl.Device
	// LLC models the node's last-level cache at page granularity.
	LLC *cachesim.PageLRU
	// TLB models the node's translation caches.
	TLB *tlbsim.TLB
	// FS is the cluster-shared root filesystem.
	FS *fsim.FS
	// PageCache is the node's file page cache.
	PageCache *fsim.PageCache
	// Trace is the cluster-shared virtual-time tracer, or nil when
	// tracing is disabled. All emission sites are nil-safe, so the
	// disabled path costs one pointer test.
	Trace *trace.Tracer
	// Telem is the cluster-shared telemetry registry, or nil when
	// sampling is disabled (DESIGN.md §11).
	Telem *telemetry.Registry
	// Lane-pipeline accumulation counters, nil when telemetry is off
	// (nil *Counter handles absorb updates).
	laneBusy   *telemetry.Counter
	laneShards *telemetry.Counter
	streamWork *telemetry.Counter

	nextPID  int
	nextASID uint32
	tasks    map[int]*Task

	// Faults aggregates fault statistics across all tasks on the node.
	Faults FaultStats
}

// NewOS boots an OS instance on a node with dramBytes of local memory.
func NewOS(name string, p params.Params, eng *des.Engine, dev *cxl.Device, fs *fsim.FS, dramBytes int64) *OS {
	pool := memsim.NewPool(name+"-dram", memsim.Local, dramBytes, p.PageSize)
	return &OS{
		Name:      name,
		P:         p,
		Eng:       eng,
		Mem:       pool,
		Dev:       dev,
		LLC:       cachesim.NewPageLRU(int(p.LLCBytes / int64(p.PageSize))),
		TLB:       tlbsim.New(1536),
		FS:        fs,
		PageCache: fsim.NewPageCache(pool),
		nextPID:   1,
		nextASID:  1,
		tasks:     make(map[int]*Task),
	}
}

// Tasks returns the number of live tasks.
func (o *OS) Tasks() int { return len(o.tasks) }

// Task returns the task with the given PID, or nil.
func (o *OS) Task(pid int) *Task {
	return o.tasks[pid]
}

// ForEachTask visits every live task in PID order (deterministic), for
// audits and invariant checkers.
func (o *OS) ForEachTask(fn func(*Task)) {
	pids := make([]int, 0, len(o.tasks))
	for pid := range o.tasks {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		fn(o.tasks[pid])
	}
}

// FreeBytes returns unallocated local DRAM.
func (o *OS) FreeBytes() int64 {
	return int64(o.Mem.FreePages()) * int64(o.P.PageSize)
}

// MemUtilization returns local DRAM occupancy in [0,1].
func (o *OS) MemUtilization() float64 { return o.Mem.Utilization() }

// allocASID hands out address-space IDs for cache/TLB keys.
func (o *OS) allocASID() uint32 {
	id := o.nextASID
	o.nextASID++
	return id
}

// NewTask creates an empty task (no address space content) and charges
// task-creation cost. name labels the task for diagnostics.
func (o *OS) NewTask(name string) *Task {
	o.Trace.Emit(trace.None, o.Index, trace.TrackOps, trace.CatOp, "task-create", o.Eng.Now(), o.P.TaskCreate, 0, 0)
	o.Eng.Advance(o.P.TaskCreate)
	t := &Task{
		PID:   o.nextPID,
		Name:  name,
		OS:    o,
		FDs:   NewFDTable(),
		NS:    DefaultNamespaces(),
		State: TaskRunning,
	}
	o.nextPID++
	t.MM = newMM(o)
	o.tasks[t.PID] = t
	return t
}

// Exit tears down a task: frees its locally-owned frames, invalidates
// cache and TLB state, and drops any checkpoint references. Exiting is
// off the latency-critical path, so no time is charged.
func (o *OS) Exit(t *Task) {
	if t.State == TaskExited {
		return
	}
	t.State = TaskExited
	t.MM.teardown()
	delete(o.tasks, t.PID)
}

// TraceOpError records a failed operation in the trace: an op span
// covering [t0, now) — whatever cost the failed attempt charged — with
// a zero-width error annotation naming the step that failed. Mechanisms
// call it on every error return so traces show aborted work, not gaps.
func (o *OS) TraceOpError(op string, t0 des.Time, step string) {
	if !o.Trace.Enabled() {
		return
	}
	now := o.Eng.Now()
	id := o.Trace.Emit(trace.None, o.Index, trace.TrackOps, trace.CatOp, op, t0, now-t0, 0, 0)
	if id > trace.None {
		o.Trace.Emit(id, o.Index, trace.TrackOps, trace.CatError, step, now, 0, 0, 0)
	}
}

// WarmFile pulls every page of a file into the node's page cache (image
// pre-pull). Used at cluster setup so that library faults hit the page
// cache, matching a steady-state serverless node.
func (o *OS) WarmFile(path string) error {
	f, err := o.FS.Lookup(path)
	if err != nil {
		return err
	}
	n := o.P.Pages(f.Size)
	for i := 0; i < n; i++ {
		if _, _, err := o.PageCache.Get(f, i); err != nil {
			return fmt.Errorf("kernel: warming %q: %w", path, err)
		}
	}
	return nil
}
