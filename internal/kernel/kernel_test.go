package kernel

import (
	"errors"
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/params"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// testNode builds a small single-node environment.
func testNode(t *testing.T) *OS {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 64 << 20
	p.CXLBytes = 64 << 20
	p.LLCBytes = 1 << 20
	eng := des.NewEngine()
	dev := cxl.NewDevice(p)
	fs := fsim.NewFS()
	fs.Create("/lib/libc.so", 1<<20) // 256 pages
	return NewOS("node0", p, eng, dev, fs, p.NodeDRAMBytes)
}

func TestNewTaskChargesCreate(t *testing.T) {
	o := testNode(t)
	before := o.Eng.Now()
	task := o.NewTask("t")
	if task.PID != 1 {
		t.Fatalf("pid = %d", task.PID)
	}
	if o.Eng.Now()-before != o.P.TaskCreate {
		t.Fatalf("charged %v, want %v", o.Eng.Now()-before, o.P.TaskCreate)
	}
	if o.Tasks() != 1 || o.Task(1) != task {
		t.Fatal("task registry broken")
	}
}

func TestAnonFaultAndAccess(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	_, err := task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x20000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.MM.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	st := task.MM.Stats.Faults
	if st.Count(FaultAnon) != 1 {
		t.Fatalf("anon faults = %d", st.Count(FaultAnon))
	}
	// Second access: no fault, cache hit.
	if err := task.MM.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	if task.MM.Stats.Faults.Count(FaultAnon) != 1 {
		t.Fatal("second access faulted")
	}
	if task.MM.Stats.LLCHits == 0 {
		t.Fatal("no cache hit recorded")
	}
	// The mapping is writable in place (anon private).
	if err := task.MM.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}
	e, _ := task.MM.PT.Lookup(0x10000)
	if !e.Flags.Has(pt.Dirty) {
		t.Fatal("store did not set D")
	}
}

func TestSegfault(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	if err := task.MM.Access(0xdead000, false); !errors.Is(err, ErrSegfault) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtectionViolation(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read, Kind: vma.Anon})
	if err := task.MM.Access(0x10000, true); !errors.Is(err, ErrProtection) {
		t.Fatalf("err = %v", err)
	}
}

func TestFileFaultMajorThenMinor(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{
		Start: 0x400000, End: 0x410000, Prot: vma.Read | vma.Exec,
		Kind: vma.FilePrivate, Path: "/lib/libc.so", Name: "libc",
	})
	if err := task.MM.Access(0x400000, false); err != nil {
		t.Fatal(err)
	}
	if task.MM.Stats.Faults.Count(FaultFileMajor) != 1 {
		t.Fatal("first file touch should be a major fault")
	}
	// Second process on the same node: page cache hit.
	t2 := o.NewTask("t2")
	t2.MM.Mmap(vma.VMA{
		Start: 0x400000, End: 0x410000, Prot: vma.Read | vma.Exec,
		Kind: vma.FilePrivate, Path: "/lib/libc.so", Name: "libc",
	})
	if err := t2.MM.Access(0x400000, false); err != nil {
		t.Fatal(err)
	}
	if t2.MM.Stats.Faults.Count(FaultFileMinor) != 1 {
		t.Fatal("second process should hit page cache")
	}
	// Both map the same physical frame: identical content tokens.
	e1, _ := task.MM.PT.Lookup(0x400000)
	e2, _ := t2.MM.PT.Lookup(0x400000)
	if e1.PFN != e2.PFN {
		t.Fatal("page-cache frame not shared")
	}
}

func TestWarmFile(t *testing.T) {
	o := testNode(t)
	if err := o.WarmFile("/lib/libc.so"); err != nil {
		t.Fatal(err)
	}
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{
		Start: 0x400000, End: 0x500000, Prot: vma.Read,
		Kind: vma.FilePrivate, Path: "/lib/libc.so",
	})
	task.MM.Access(0x400000, false)
	if task.MM.Stats.Faults.Count(FaultFileMajor) != 0 {
		t.Fatal("warmed file still major-faulted")
	}
}

func TestForkCoWSharing(t *testing.T) {
	o := testNode(t)
	parent := o.NewTask("parent")
	parent.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x14000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	for i := 0; i < 4; i++ {
		if err := parent.MM.Access(pt.VirtAddr(0x10000+i*0x1000), true); err != nil {
			t.Fatal(err)
		}
	}
	used := o.Mem.UsedPages()

	child, err := o.Fork(parent, "child")
	if err != nil {
		t.Fatal(err)
	}
	// Fork copies no pages.
	if o.Mem.UsedPages() != used {
		t.Fatalf("fork allocated %d pages", o.Mem.UsedPages()-used)
	}
	// Child reads the parent's data.
	pe, _ := parent.MM.PT.Lookup(0x10000)
	ce, _ := child.MM.PT.Lookup(0x10000)
	if pe.PFN != ce.PFN {
		t.Fatal("child does not share parent frame")
	}
	if pe.Flags.Has(pt.Writable) || ce.Flags.Has(pt.Writable) {
		t.Fatal("shared pages left writable")
	}

	// Child write triggers local CoW.
	if err := child.MM.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Count(FaultCoWLocal) != 1 {
		t.Fatal("no CoW fault on child store")
	}
	ce2, _ := child.MM.PT.Lookup(0x10000)
	if ce2.PFN == pe.PFN {
		t.Fatal("CoW did not copy")
	}
	// Parent's view unchanged.
	pe2, _ := parent.MM.PT.Lookup(0x10000)
	if pe2.PFN != pe.PFN {
		t.Fatal("parent remapped by child CoW")
	}
}

func TestForkDropsFilePTEs(t *testing.T) {
	o := testNode(t)
	o.WarmFile("/lib/libc.so")
	parent := o.NewTask("parent")
	parent.MM.Mmap(vma.VMA{
		Start: 0x400000, End: 0x404000, Prot: vma.Read,
		Kind: vma.FilePrivate, Path: "/lib/libc.so",
	})
	parent.MM.Access(0x400000, false)

	child, err := o.Fork(parent, "child")
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := child.MM.PT.Lookup(0x400000); e.Present() {
		t.Fatal("file PTE copied; LocalFork re-populates lazily")
	}
	// Child faults it back through the page cache.
	if err := child.MM.Access(0x400000, false); err != nil {
		t.Fatal(err)
	}
	if child.MM.Stats.Faults.Count(FaultFileMinor) != 1 {
		t.Fatal("child file fault not minor")
	}
}

func TestExitFreesMemory(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	task.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x50000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	for i := 0; i < 64; i++ {
		task.MM.Access(pt.VirtAddr(0x10000+i*0x1000), true)
	}
	if o.Mem.UsedPages() != 64 {
		t.Fatalf("used = %d", o.Mem.UsedPages())
	}
	o.Exit(task)
	if o.Mem.UsedPages() != 0 {
		t.Fatalf("leak: %d pages after exit", o.Mem.UsedPages())
	}
	if o.Tasks() != 0 {
		t.Fatal("task still registered")
	}
	o.Exit(task) // idempotent
}

func TestExitSharedFramesSurvive(t *testing.T) {
	o := testNode(t)
	parent := o.NewTask("parent")
	parent.MM.Mmap(vma.VMA{Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon})
	parent.MM.Access(0x10000, true)
	child, _ := o.Fork(parent, "child")

	pe, _ := parent.MM.PT.Lookup(0x10000)
	o.Exit(parent)
	// The frame is still referenced by the child.
	if o.Mem.UsedPages() != 1 {
		t.Fatalf("used = %d after parent exit", o.Mem.UsedPages())
	}
	if err := child.MM.Access(0x10000, false); err != nil {
		t.Fatal(err)
	}
	ce, _ := child.MM.PT.Lookup(0x10000)
	if ce.PFN != pe.PFN {
		t.Fatal("child lost shared frame")
	}
	o.Exit(child)
	if o.Mem.UsedPages() != 0 {
		t.Fatal("leak after both exits")
	}
}

func TestCoWCostBreakdown(t *testing.T) {
	// §4.2.1: the CXL CoW fault costs FaultEntry + CXLReadPage +
	// TLBShootdown ≈ 2.5µs with defaults; an anon fault is < 1µs.
	p := params.Default()
	if got := p.CoWCXLFault(); got != 2500*des.Nanosecond {
		t.Fatalf("CoWCXLFault = %v, want 2.5µs", got)
	}
	if p.AnonFault >= 1000*des.Nanosecond {
		t.Fatalf("AnonFault = %v, want < 1µs", p.AnonFault)
	}
}

func TestFDTable(t *testing.T) {
	ft := NewFDTable()
	fd := ft.Open(FDFile, "/etc/conf", 0644)
	if fd.Num != 3 {
		t.Fatalf("first fd = %d, want 3 (stdio reserved)", fd.Num)
	}
	if _, err := ft.OpenAt(3, FDFile, "/x", 0, 0); err == nil {
		t.Fatal("OpenAt over live fd succeeded")
	}
	if _, err := ft.OpenAt(10, FDSocket, "sock:80", 0, 0); err != nil {
		t.Fatal(err)
	}
	next := ft.Open(FDFile, "/y", 0)
	if next.Num != 11 {
		t.Fatalf("next fd = %d, want 11", next.Num)
	}
	if !ft.Close(3) || ft.Close(3) {
		t.Fatal("close semantics broken")
	}
	all := ft.All()
	if len(all) != 2 || all[0].Num != 10 {
		t.Fatalf("All = %v", all)
	}
}

func TestAccessRepeatChargesHits(t *testing.T) {
	o := testNode(t)
	task := o.NewTask("t")
	before := o.Eng.Now()
	task.MM.AccessRepeat(10)
	if o.Eng.Now()-before != 10*o.P.LLCHit {
		t.Fatal("AccessRepeat cost wrong")
	}
	if task.MM.Stats.LLCHits != 10 {
		t.Fatal("hits not recorded")
	}
}

func TestFaultStatsTotal(t *testing.T) {
	var s FaultStats
	s.Counts[FaultAnon] = 3
	s.Counts[FaultCoWCXL] = 2
	if s.Total() != 5 {
		t.Fatalf("Total = %d", s.Total())
	}
	if FaultCoWCXL.String() != "cow-cxl" {
		t.Fatalf("name = %q", FaultCoWCXL.String())
	}
}
