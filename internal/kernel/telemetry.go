package kernel

import (
	"cxlfork/internal/des"
	"cxlfork/internal/telemetry"
)

// RegisterTelemetry registers the node's gauges and counters against
// reg, labelled with the node name, and arms the lane-pipeline
// accumulation counters that LaneObs feeds.
func (o *OS) RegisterTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	o.Telem = reg
	node := telemetry.L("node", o.Name)
	reg.Gauge("kernel_mem_used_bytes", "local DRAM bytes allocated on the node",
		func(des.Time) float64 { return float64(o.Mem.UsedBytes()) }, node)
	reg.Gauge("kernel_mem_utilization", "local DRAM occupancy as a fraction of capacity",
		func(des.Time) float64 { return o.MemUtilization() }, node)
	reg.Gauge("kernel_tasks", "live tasks on the node",
		func(des.Time) float64 { return float64(o.Tasks()) }, node)
	reg.CounterFunc("kernel_faults_total", "page faults taken by tasks on the node",
		func(des.Time) float64 { return float64(o.Faults.Total()) }, node)
	reg.CounterFunc("kernel_cow_breaks_total", "copy-on-write breaks (local and CXL-backed)",
		func(des.Time) float64 {
			return float64(o.Faults.Count(FaultCoWLocal) + o.Faults.Count(FaultCoWCXL))
		}, node)
	o.laneBusy = reg.Counter("des_lane_busy_ns_total",
		"virtual time checkpoint/restore lanes spent occupied on the node", node)
	o.laneShards = reg.Counter("des_lane_shards_total",
		"checkpoint/restore shards scheduled through lane pipelines", node)
	o.streamWork = reg.Counter("des_stream_copy_ns_total",
		"full-rate stream copy time pushed through lane pipelines (lane busy minus this is setup, dispatch, and stream queueing)", node)
}

// LaneObs chains a lane-utilization observer in front of prev (the
// tracer's shard collector, possibly nil). Each scheduled shard adds
// its lane-occupancy interval and its uncontended stream copy time to
// the node's counters; the ratio of the two is the stream utilization
// of the pipeline's busy time. Observers are passive, so chaining one
// never changes a makespan. With telemetry disabled LaneObs returns
// prev unchanged.
func (o *OS) LaneObs(shards []des.Shard, prev des.ShardObserver) des.ShardObserver {
	if o.laneBusy == nil {
		return prev
	}
	return func(shard, lane int, start, end des.Time) {
		o.laneBusy.Add(float64(end - start))
		o.laneShards.Inc()
		sh := shards[shard]
		o.streamWork.Add(float64(des.Time(sh.Units) * sh.UnitCost))
		if prev != nil {
			prev(shard, lane, start, end)
		}
	}
}
