package kernel

import (
	"fmt"
	"sort"
)

// TaskState is the lifecycle state of a task.
type TaskState int

// Task states.
const (
	TaskRunning TaskState = iota
	TaskExited
)

// Registers is the checkpointable CPU context (paper Fig. 4a step 3).
type Registers struct {
	IP, SP uint64
	GPR    [16]uint64
}

// Task is one process.
type Task struct {
	PID   int
	Name  string
	OS    *OS
	MM    *MM
	FDs   *FDTable
	NS    Namespaces
	Regs  Registers
	State TaskState

	// Invocations counts completed function invocations; CXLporter
	// checkpoints after the 16th (paper §5).
	Invocations int
}

func (t *Task) String() string {
	return fmt.Sprintf("%s/pid%d(%s)", t.OS.Name, t.PID, t.Name)
}

// FDKind distinguishes descriptor types for global-state serialization.
type FDKind int

// Descriptor kinds.
const (
	FDFile FDKind = iota
	FDSocket
)

func (k FDKind) String() string {
	if k == FDSocket {
		return "socket"
	}
	return "file"
}

// FD is one open descriptor. Path and Perm are exactly what CXLfork
// serializes for global state (paper §4.1 step 8): the restoring node
// re-opens the path with the same permissions.
type FD struct {
	Num  int
	Kind FDKind
	Path string
	Perm uint32
	Pos  int64
}

// FDTable is a task's descriptor table.
type FDTable struct {
	fds  map[int]*FD
	next int
}

// NewFDTable returns an empty table with stdio reserved.
func NewFDTable() *FDTable {
	return &FDTable{fds: make(map[int]*FD), next: 3}
}

// Open adds a descriptor and returns it.
func (t *FDTable) Open(kind FDKind, path string, perm uint32) *FD {
	fd := &FD{Num: t.next, Kind: kind, Path: path, Perm: perm}
	t.next++
	t.fds[fd.Num] = fd
	return fd
}

// OpenAt restores a descriptor at a specific number (restore path).
func (t *FDTable) OpenAt(num int, kind FDKind, path string, perm uint32, pos int64) (*FD, error) {
	if _, ok := t.fds[num]; ok {
		return nil, fmt.Errorf("kernel: fd %d already open", num)
	}
	fd := &FD{Num: num, Kind: kind, Path: path, Perm: perm, Pos: pos}
	t.fds[num] = fd
	if num >= t.next {
		t.next = num + 1
	}
	return fd, nil
}

// Close removes a descriptor.
func (t *FDTable) Close(num int) bool {
	if _, ok := t.fds[num]; !ok {
		return false
	}
	delete(t.fds, num)
	return true
}

// Len returns the number of open descriptors.
func (t *FDTable) Len() int { return len(t.fds) }

// All returns descriptors sorted by number.
func (t *FDTable) All() []*FD {
	out := make([]*FD, 0, len(t.fds))
	for _, fd := range t.fds {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// clone duplicates the table (local fork shares descriptors by value
// here; descriptor offsets diverge after the fork, which this model does
// not track further).
func (t *FDTable) clone() *FDTable {
	c := &FDTable{fds: make(map[int]*FD, len(t.fds)), next: t.next}
	for n, fd := range t.fds {
		cp := *fd
		c.fds[n] = &cp
	}
	return c
}

// Namespaces is the task's namespace and control-group configuration.
// Mounts and PIDNS are checkpointed/restored; Net and Cgroup are
// "reconfigurable" state inherited from the restore-calling process so
// clones can land directly in new containers (paper §4.1-4.2).
type Namespaces struct {
	Mounts []string
	PIDNS  string
	NetNS  string
	Cgroup string
}

// DefaultNamespaces returns the host namespaces.
func DefaultNamespaces() Namespaces {
	return Namespaces{
		Mounts: []string{"/", "/proc", "/sys"},
		PIDNS:  "pidns-host",
		NetNS:  "netns-host",
		Cgroup: "/",
	}
}
