package kernel

import (
	"errors"
	"fmt"

	"cxlfork/internal/cachesim"
	"cxlfork/internal/des"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
)

// FaultKind classifies page faults for the Fig. 7a breakdown and the
// fault microbenchmarks.
type FaultKind int

// Fault kinds.
const (
	// FaultAnon is a minor fault allocating a zeroed anonymous page.
	FaultAnon FaultKind = iota
	// FaultFileMinor is a file fault served from the page cache.
	FaultFileMinor
	// FaultFileMajor is a file fault reading from backing storage.
	FaultFileMajor
	// FaultCoWLocal is a copy-on-write fault with a local source page.
	FaultCoWLocal
	// FaultCoWCXL is a copy-on-write fault copying from CXL memory
	// (CXLfork's migrate-on-write path).
	FaultCoWCXL
	// FaultMoA is a migrate-on-access fault copying a page from CXL (or
	// from a Mitosis parent over CXL) on a read or write.
	FaultMoA
	// FaultCXLDirect installs a direct read-only mapping of a CXL page
	// without copying (hybrid tiering's cold-page path).
	FaultCXLDirect
	// FaultMaterialize is the lazy reconstruction of a checkpointed VMA's
	// global state (file callbacks) on first touch (§4.2.1).
	FaultMaterialize
	// FaultPrefetch is the opportunistic background copy of
	// checkpoint-dirty pages into local memory after restore (§4.2.1).
	FaultPrefetch

	numFaultKinds
)

var faultKindNames = [...]string{
	"anon", "file-minor", "file-major", "cow-local", "cow-cxl",
	"moa", "cxl-direct", "vma-materialize", "prefetch",
}

func (k FaultKind) String() string { return faultKindNames[k] }

// FaultStats aggregates fault counts and the virtual time they consumed.
type FaultStats struct {
	Counts [numFaultKinds]int64
	Time   des.Time
}

// Total returns the total number of faults.
func (s *FaultStats) Total() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Count returns the count for one kind.
func (s *FaultStats) Count(k FaultKind) int64 { return s.Counts[k] }

// MMStats tracks per-address-space accounting.
type MMStats struct {
	Faults FaultStats
	// AccessTime is virtual time spent in load/store memory latency
	// (cache hits and misses), excluding faults.
	AccessTime des.Time
	// LLCHits/LLCMisses count data accesses by cache outcome.
	LLCHits, LLCMisses int64
}

// Overlay resolves faults on addresses whose translation is absent but
// whose data exists in checkpointed state. Mechanisms (Mitosis's remote
// paging, CXLfork's MoA and hybrid tiering) install an Overlay on the
// restored MM.
type Overlay interface {
	// Fault returns the PTE to install for va, the cost to charge, the
	// fault classification, and whether the overlay covered va. The
	// overlay allocates any local frame itself (holding the mapping
	// reference).
	Fault(mm *MM, va pt.VirtAddr, write bool) (pte pt.PTE, cost des.Time, kind FaultKind, ok bool)
}

// Common fault errors.
var (
	ErrSegfault   = errors.New("kernel: segmentation fault")
	ErrProtection = errors.New("kernel: protection violation")
)

// MM is a task's address space.
type MM struct {
	OS   *OS
	ASID uint32
	VMAs *vma.Tree
	PT   *pt.Tree

	// Overlay, when non-nil, backs unmapped checkpointed pages.
	Overlay Overlay
	// LazyVMAs marks an address space restored by attaching checkpointed
	// VMA leaves: file-backed VMAs reconstruct their global state on
	// first fault rather than at restore time.
	LazyVMAs     bool
	materialized map[int]bool

	onExit []func()

	Stats MMStats
}

func newMM(o *OS) *MM {
	return &MM{
		OS:           o,
		ASID:         o.allocASID(),
		VMAs:         vma.NewTree(),
		PT:           pt.NewTree(),
		materialized: make(map[int]bool),
	}
}

// OnExit registers a hook run at address-space teardown (checkpoint
// reference release).
func (mm *MM) OnExit(fn func()) { mm.onExit = append(mm.onExit, fn) }

func (mm *MM) teardown() {
	o := mm.OS
	mm.PT.Walk(func(va pt.VirtAddr, leaf *pt.Leaf, i int) {
		e := leaf.PTEs[i]
		if e.Flags.Has(pt.OnCXL) {
			return // owned by the checkpoint
		}
		if leaf.Protected {
			// A protected leaf's PTEs must all be OnCXL; reaching here
			// is a rebase bug.
			panic("kernel: local frame inside protected leaf")
		}
		o.Mem.Put(o.Mem.Frame(int(e.PFN)))
	})
	for _, fn := range mm.onExit {
		fn()
	}
	mm.onExit = nil
}

// charge records a fault and advances the clock.
func (mm *MM) charge(k FaultKind, cost des.Time) {
	if o := mm.OS; o.Trace.Enabled() {
		o.Trace.Emit(trace.None, o.Index, trace.TrackFaults, trace.CatFault, k.String(), o.Eng.Now(), cost, 0, 1)
	}
	mm.OS.Eng.Advance(cost)
	mm.Stats.Faults.Counts[k]++
	mm.Stats.Faults.Time += cost
	mm.OS.Faults.Counts[k]++
	mm.OS.Faults.Time += cost
}

// Mmap inserts a mapping without populating it.
func (mm *MM) Mmap(v vma.VMA) (vma.VMA, error) {
	return mm.VMAs.Insert(v)
}

// MapFrame installs a translation to an existing local frame, taking a
// mapping reference. It charges no time; restore paths charge their own
// modelled costs.
func (mm *MM) MapFrame(va pt.VirtAddr, f *memsim.Frame, flags pt.Flags) pt.SetResult {
	if f.Pool().Kind() != memsim.Local {
		panic("kernel: MapFrame requires a local frame; use MapCXL")
	}
	f.Get()
	res := mm.PT.Set(va, pt.PTE{Flags: flags | pt.Present, PFN: int32(f.PFN())})
	mm.dropOld(res.Old)
	return res
}

// MapCXL installs a translation to a CXL device frame by device PFN.
// CXL mappings are always read-only (the checkpoint stays pristine);
// writable requests are a caller bug.
func (mm *MM) MapCXL(va pt.VirtAddr, devPFN int32, flags pt.Flags) pt.SetResult {
	if flags.Has(pt.Writable) {
		panic("kernel: writable CXL mapping")
	}
	res := mm.PT.Set(va, pt.PTE{Flags: flags | pt.Present | pt.OnCXL, PFN: devPFN})
	mm.dropOld(res.Old)
	return res
}

// dropOld releases the mapping reference of a replaced PTE.
func (mm *MM) dropOld(old pt.PTE) {
	if old.Present() && !old.Flags.Has(pt.OnCXL) {
		mm.OS.Mem.Put(mm.OS.Mem.Frame(int(old.PFN)))
	}
}

// Unmap removes the translation for va, releasing the local frame ref.
func (mm *MM) Unmap(va pt.VirtAddr) {
	res := mm.PT.Clear(va)
	if res.Old.Present() {
		mm.OS.LLC.Invalidate(mm.frameOf(res.Old).CacheKey())
	}
	mm.dropOld(res.Old)
	mm.OS.TLB.Invalidate(cachesim.Key(mm.ASID, va.PageNumber()))
}

// frameOf resolves a present PTE to its physical frame.
func (mm *MM) frameOf(pte pt.PTE) *memsim.Frame {
	if pte.Flags.Has(pt.OnCXL) {
		return mm.OS.Dev.Pool().Frame(int(pte.PFN))
	}
	return mm.OS.Mem.Frame(int(pte.PFN))
}

// Access simulates one load (write=false) or store (write=true) to va,
// charging translation, cache/memory latency, and any faults. It is the
// only entry point the execution engine uses.
func (mm *MM) Access(va pt.VirtAddr, write bool) error {
	o := mm.OS
	p := o.P
	vpn := va.PageNumber()
	key := cachesim.Key(mm.ASID, vpn)

	// Translation: TLB hit is free; a miss walks the page tables, which
	// are compact enough to live in the cache hierarchy.
	if !o.TLB.Access(key) {
		walk := 2 * p.LLCHit
		o.Eng.Advance(walk)
		mm.Stats.AccessTime += walk
	}

	pte, _ := mm.PT.Lookup(va)
	if pte.Present() {
		if write && !pte.Flags.Has(pt.Writable) {
			if pte.Flags.Has(pt.CoW) {
				return mm.cowFault(va, pte)
			}
			return fmt.Errorf("%w: store to read-only page %#x", ErrProtection, uint64(va))
		}
		frame := mm.frameOf(pte)
		var lat des.Time
		if o.LLC.Access(frame.CacheKey()) {
			lat = p.LLCHit
			mm.Stats.LLCHits++
		} else {
			mm.Stats.LLCMisses++
			if pte.Flags.Has(pt.OnCXL) {
				lat = p.CXLLatency
				o.Dev.ReadBytes += int64(p.CacheLineSize)
			} else {
				lat = p.LocalMemLatency
			}
		}
		o.Eng.Advance(lat)
		mm.Stats.AccessTime += lat
		mm.PT.MarkAccessed(va)
		if write {
			mm.PT.MarkDirty(va)
			frame.Data = memsim.NewToken()
		}
		return nil
	}
	return mm.fault(va, write)
}

// AccessRepeat charges n additional accesses to a page that was just
// touched (intra-invocation temporal locality): they hit in the cache.
func (mm *MM) AccessRepeat(n int) {
	if n <= 0 {
		return
	}
	lat := des.Time(n) * mm.OS.P.LLCHit
	mm.OS.Eng.Advance(lat)
	mm.Stats.AccessTime += lat
	mm.Stats.LLCHits += int64(n)
}

// fault handles a missing translation at va.
func (mm *MM) fault(va pt.VirtAddr, write bool) error {
	o := mm.OS
	p := o.P
	v := mm.VMAs.Find(va)
	if v == nil {
		return fmt.Errorf("%w: no mapping at %#x", ErrSegfault, uint64(va))
	}
	if write && v.Prot&vma.Write == 0 {
		return fmt.Errorf("%w: store to %s mapping at %#x", ErrProtection, v.Prot, uint64(va))
	}

	// Lazily reconstruct global state for checkpoint-attached file VMAs.
	if mm.LazyVMAs && v.Kind == vma.FilePrivate && !mm.materialized[v.ID] {
		mm.materialized[v.ID] = true
		mm.charge(FaultMaterialize, p.VMAReconstruct)
	}

	if mm.Overlay != nil {
		if pte, cost, kind, ok := mm.Overlay.Fault(mm, va, write); ok {
			res := mm.PT.Set(va, pte)
			if res.BrokeLeaf {
				cost += p.CXLReadPage
			}
			mm.charge(kind, cost)
			o.LLC.Access(mm.frameOf(pte).CacheKey())
			mm.PT.MarkAccessed(va)
			return nil
		}
	}

	switch v.Kind {
	case vma.Anon:
		f, err := o.Mem.Alloc()
		if err != nil {
			return err
		}
		flags := pt.Present | pt.Accessed
		if v.Prot&vma.Write != 0 {
			flags |= pt.Writable
		}
		if write {
			flags |= pt.Dirty
			f.Data = memsim.NewToken()
		}
		res := mm.PT.Set(va, pt.PTE{Flags: flags, PFN: int32(f.PFN())})
		cost := p.AnonFault
		if res.BrokeLeaf {
			cost += p.CXLReadPage
		}
		mm.charge(FaultAnon, cost)
		o.LLC.Access(f.CacheKey())
		return nil

	case vma.FilePrivate:
		file, err := o.FS.Lookup(v.Path)
		if err != nil {
			return fmt.Errorf("kernel: file fault at %#x: %w", uint64(va), err)
		}
		idx := int((int64(va.PageBase()-v.Start) + v.FileOff) >> pt.PageShift)
		pf, hit, err := o.PageCache.Get(file, idx)
		if err != nil {
			return err
		}
		kind, cost := FaultFileMinor, p.FilePageCacheFault
		if !hit {
			kind, cost = FaultFileMajor, p.FileBackingFault
		}
		if write {
			// Private copy on first store to a file page.
			priv, err := o.Mem.Alloc()
			if err != nil {
				return err
			}
			priv.Data = memsim.NewToken()
			res := mm.MapFrame(va, priv, pt.Writable|pt.Accessed|pt.Dirty)
			o.Mem.Put(priv) // MapFrame took the mapping ref
			if res.BrokeLeaf {
				cost += p.CXLReadPage
			}
			cost += p.CoWLocalFault
			mm.charge(kind, cost)
			o.LLC.Access(priv.CacheKey())
			return nil
		}
		flags := pt.Accessed | pt.FileBacked
		if v.Prot&vma.Write != 0 {
			flags |= pt.CoW
		}
		res := mm.MapFrame(va, pf, flags)
		if res.BrokeLeaf {
			cost += p.CXLReadPage
		}
		mm.charge(kind, cost)
		o.LLC.Access(pf.CacheKey())
		return nil
	}
	return fmt.Errorf("kernel: unhandled VMA kind %v", v.Kind)
}

// cowFault copies the page at va to local memory and remaps it writable
// (migrate-on-write when the source is CXL, paper §4.2).
func (mm *MM) cowFault(va pt.VirtAddr, pte pt.PTE) error {
	o := mm.OS
	p := o.P
	onCXL := pte.Flags.Has(pt.OnCXL)

	var src *memsim.Frame
	if onCXL {
		src = o.Dev.Pool().Frame(int(pte.PFN))
		o.Dev.ReadBytes += int64(p.PageSize)
	} else {
		src = o.Mem.Frame(int(pte.PFN))
	}
	nf, err := o.Mem.Alloc()
	if err != nil {
		return err
	}
	memsim.Copy(nf, src)
	nf.Data = memsim.NewToken() // the store that faulted modifies it

	res := mm.PT.Set(va, pt.PTE{
		Flags: pt.Present | pt.Writable | pt.Accessed | pt.Dirty,
		PFN:   int32(nf.PFN()),
	})
	if !onCXL {
		o.Mem.Put(src) // drop the old shared mapping reference
	}

	kind, cost := FaultCoWLocal, p.CoWLocalFault
	if onCXL {
		kind, cost = FaultCoWCXL, p.CoWCXLFault()
	}
	if res.BrokeLeaf {
		cost += p.CXLReadPage // leaf copy-on-write, §4.2.1
	}
	o.TLB.Invalidate(cachesim.Key(mm.ASID, va.PageNumber()))
	mm.charge(kind, cost)
	o.LLC.Access(nf.CacheKey())
	return nil
}

// ResidentLocalPages counts present PTEs backed by local frames.
func (mm *MM) ResidentLocalPages() int {
	n := 0
	mm.PT.Walk(func(_ pt.VirtAddr, l *pt.Leaf, i int) {
		if !l.PTEs[i].Flags.Has(pt.OnCXL) {
			n++
		}
	})
	return n
}

// ResidentCXLPages counts present PTEs mapping CXL frames directly.
func (mm *MM) ResidentCXLPages() int {
	n := 0
	mm.PT.Walk(func(_ pt.VirtAddr, l *pt.Leaf, i int) {
		if l.PTEs[i].Flags.Has(pt.OnCXL) {
			n++
		}
	})
	return n
}
