package kernel

import (
	"fmt"

	"cxlfork/internal/des"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// Munmap removes the mapping with the given VMA ID, unmapping every
// present page in its range (releasing local frames; CXL frames remain
// owned by their checkpoint) and invalidating cache/TLB state.
func (mm *MM) Munmap(vmaID int) error {
	v := mm.VMAs.ByID(vmaID)
	if v == nil {
		return fmt.Errorf("kernel: munmap: no vma %d", vmaID)
	}
	start, end := v.Start, v.End
	var cost des.Time
	for va := start; va < end; va += 1 << pt.PageShift {
		if e, _ := mm.PT.Lookup(va); e.Present() {
			mm.Unmap(va)
			cost += mm.OS.P.PTECopy
		}
	}
	cost += mm.OS.P.TLBShootdown // batched flush
	mm.VMAs.Remove(vmaID)
	mm.OS.Eng.Advance(cost)
	return nil
}

// Mprotect changes a mapping's permissions. Removing write access
// downgrades present writable PTEs (with a batched TLB shootdown);
// granting write access upgrades present anonymous PTEs eagerly.
// Mappings into checkpointed (CXL) state stay read-only — writes keep
// going through the CoW path.
func (mm *MM) Mprotect(vmaID int, prot vma.Prot) error {
	v := mm.VMAs.ByID(vmaID)
	if v == nil {
		return fmt.Errorf("kernel: mprotect: no vma %d", vmaID)
	}
	nv := *v
	nv.Prot = prot
	if err := mm.VMAs.Update(nv); err != nil {
		return err
	}
	var cost des.Time
	for va := nv.Start; va < nv.End; va += 1 << pt.PageShift {
		e, _ := mm.PT.Lookup(va)
		if !e.Present() {
			continue
		}
		switch {
		case prot&vma.Write == 0 && e.Flags.Has(pt.Writable):
			e.Flags &^= pt.Writable | pt.Dirty
			mm.PT.Set(va, e)
			cost += mm.OS.P.PTECopy
		case prot&vma.Write != 0 && !e.Flags.Has(pt.Writable) &&
			!e.Flags.Has(pt.CoW) && !e.Flags.Has(pt.OnCXL) && !e.Flags.Has(pt.FileBacked):
			e.Flags |= pt.Writable
			mm.PT.Set(va, e)
			cost += mm.OS.P.PTECopy
		}
	}
	cost += mm.OS.P.TLBShootdown
	mm.OS.Eng.Advance(cost)
	return nil
}

// MmapShared maps nPages of fabric-shared memory backed by freshly
// allocated CXL frames, writable through explicit Publish writes only
// (loads go through the normal access path at CXL latency). This is the
// shared-memory communication extension §8 sketches for FaaS workflows:
// a producer publishes a payload once, and consumers on any node map the
// same frames by reference instead of copying.
//
// It returns the mapping and the device frame numbers, which another
// process (on any node) can map with MapSharedFrames.
func (mm *MM) MmapShared(start pt.VirtAddr, nPages int, name string) (vma.VMA, []int32, error) {
	v, err := mm.VMAs.Insert(vma.VMA{
		Start: start, End: start + pt.VirtAddr(nPages<<pt.PageShift),
		Prot: vma.Read, Kind: vma.Anon, Name: name,
	})
	if err != nil {
		return vma.VMA{}, nil, err
	}
	pool := mm.OS.Dev.Pool()
	pfns := make([]int32, nPages)
	frames := make([]*memsim.Frame, 0, nPages)
	for i := 0; i < nPages; i++ {
		f, err := pool.Alloc()
		if err != nil {
			for _, g := range frames {
				pool.Put(g)
			}
			return vma.VMA{}, nil, err
		}
		frames = append(frames, f)
		pfns[i] = int32(f.PFN())
		mm.MapCXL(start+pt.VirtAddr(i<<pt.PageShift), pfns[i], pt.Accessed)
	}
	// The producer owns the shared frames; they are reclaimed when it
	// exits (consumers must not outlive the producer, as with any
	// shared-memory segment whose owner tears it down).
	mm.OnExit(func() {
		for _, f := range frames {
			pool.Put(f)
		}
	})
	return v, pfns, nil
}

// MapSharedFrames maps existing CXL frames (published by another
// process via MmapShared) into this address space, read-only, zero-copy.
func (mm *MM) MapSharedFrames(start pt.VirtAddr, pfns []int32, name string) (vma.VMA, error) {
	v, err := mm.VMAs.Insert(vma.VMA{
		Start: start, End: start + pt.VirtAddr(len(pfns)<<pt.PageShift),
		Prot: vma.Read, Kind: vma.Anon, Name: name,
	})
	if err != nil {
		return vma.VMA{}, err
	}
	var cost des.Time
	for i, pfn := range pfns {
		mm.MapCXL(start+pt.VirtAddr(i<<pt.PageShift), pfn, pt.Accessed)
		cost += mm.OS.P.PTECopy
	}
	mm.OS.Eng.Advance(cost)
	return v, nil
}

// Publish writes one page of a shared mapping: the producer streams the
// payload into the CXL frame with a non-temporal store (§8's coherence
// argument: consumers only read after publication).
func (mm *MM) Publish(va pt.VirtAddr, token uint64) error {
	e, _ := mm.PT.Lookup(va)
	if !e.Present() || !e.Flags.Has(pt.OnCXL) {
		return fmt.Errorf("kernel: publish outside a shared CXL mapping at %#x", uint64(va))
	}
	mm.OS.Dev.Pool().Frame(int(e.PFN)).Data = token
	mm.OS.Dev.WriteBytes += int64(mm.OS.P.PageSize)
	mm.OS.Eng.Advance(mm.OS.P.CXLWritePage)
	return nil
}
