package rfork

import "errors"

// Sentinel errors shared by the restore paths of all three mechanisms.
// Restores validate an image before mutating the child task and surface
// damage through these instead of panicking, so the autoscaler can
// classify a failure (retry elsewhere, recover the device, degrade to a
// cold start) without string matching.
var (
	// ErrTornImage marks an image whose checkpoint never reached its
	// seal: the publishing node died mid-sequence and the partial state
	// must be garbage-collected, never restored.
	ErrTornImage = errors.New("rfork: torn image (checkpoint was never sealed)")
	// ErrImageCorrupt marks an image whose serialized records fail their
	// checksums or cannot be decoded.
	ErrImageCorrupt = errors.New("rfork: image corrupt")
	// ErrNodeDown marks an operation that targeted (or was executing on)
	// a crashed node.
	ErrNodeDown = errors.New("rfork: node down")
)

// RefCount is the reference counter embedded by every Image
// implementation. It centralizes the release discipline: images are
// created with one reference, every live clone takes another, and the
// storage is freed exactly once when the count reaches zero. Releasing
// an already-dead image is a safe no-op rather than a panic — failure
// paths (a retried checkpoint, an autoscaler teardown racing a clone
// exit) may legitimately double-release.
type RefCount struct {
	n int
}

// NewRefCount returns a counter holding the creator's single reference.
func NewRefCount() RefCount { return RefCount{n: 1} }

// Count returns the current reference count.
func (r *RefCount) Count() int { return r.n }

// Retain adds a reference. Retaining a dead image is a bug (the storage
// may already be reused) and panics.
func (r *RefCount) Retain() {
	if r.n <= 0 {
		panic("rfork: Retain on dead image")
	}
	r.n++
}

// Release drops one reference and reports whether the caller should free
// the image's storage now. On an already-dead image it returns false:
// the first release won and the storage is gone.
func (r *RefCount) Release() bool {
	if r.n <= 0 {
		return false
	}
	r.n--
	return r.n == 0
}
