// Package rfork defines the remote-fork mechanism interface shared by
// the CRIU-CXL and Mitosis-CXL baselines and by CXLfork itself, so the
// experiment drivers and the CXLporter autoscaler can treat them
// uniformly (paper §6.2 evaluates all three behind the same
// checkpoint/restore interface).
//
// Entry points: the Mechanism and Image interfaces; CaptureGlobalState
// and RestoreGlobalState carry the serialized global state all three
// mechanisms share (§4.1).
package rfork
