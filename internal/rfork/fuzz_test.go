package rfork

import (
	"errors"
	"testing"

	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// corruptedCorpus derives torn and bit-flipped variants of a well-formed
// record, mirroring the damage a crashed or faulty writer leaves behind.
func corruptedCorpus(f *testing.F, good []byte) {
	f.Add(good)
	for _, n := range []int{0, 1, len(good) / 2, len(good) - 1} {
		if n >= 0 && n <= len(good) {
			f.Add(good[:n])
		}
	}
	for _, i := range []int{0, len(good) / 2, len(good) - 1} {
		if i >= 0 && i < len(good) {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x10 // flip a varint/continuation bit
			f.Add(bad)
		}
	}
}

// FuzzDecodeGlobalState checks the global-state decoder never panics on
// arbitrary input — a corrupted checkpoint must surface as an error.
func FuzzDecodeGlobalState(f *testing.F) {
	gs := GlobalState{
		FDs:    []FDRecord{{Num: 3, Path: "/x", Perm: 0o644}},
		Mounts: []string{"/"},
		PIDNS:  "pidns",
	}
	corruptedCorpus(f, gs.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeGlobalState(data)
	})
}

// FuzzDecodeVMA checks the VMA record decoder likewise.
func FuzzDecodeVMA(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x02, 0x10, 0x80})
	corruptedCorpus(f, EncodeVMA(vma.VMA{
		Start: 0x10000, End: 0x14000,
		Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: "[heap]",
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeVMA(data)
	})
}

// FuzzRestoreGlobalStateEnvelope drives the full restore-side pipeline
// — open the checksummed envelope, then decode the global state — the
// way every mechanism's Restore does. Whatever the damage, the pipeline
// must return an error, never panic, and never accept a payload whose
// checksum does not verify.
func FuzzRestoreGlobalStateEnvelope(f *testing.F) {
	gs := GlobalState{
		FDs:    []FDRecord{{Num: 3, Path: "/x", Perm: 0o644}, {Num: 4, Path: "sock:inv", Perm: 0o600}},
		Mounts: []string{"/", "/proc"},
		PIDNS:  "pidns-7",
	}
	corruptedCorpus(f, wire.SealEnvelope(gs.Encode()))
	f.Add(divergentReplicaEnvelope())
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := wire.OpenEnvelope(data)
		if err != nil {
			return
		}
		_, _ = DecodeGlobalState(payload)
	})
}

// divergentReplicaEnvelope models a replica whose payload drifted from
// the checksum recorded at seal time — the anti-entropy failure mode
// where a repair copy reads torn or stale bytes: one image's payload
// framed under another image's recorded hash.
func divergentReplicaEnvelope() []byte {
	divergent := GlobalState{
		FDs:    []FDRecord{{Num: 3, Path: "/y", Perm: 0o600}},
		Mounts: []string{"/", "/tmp"},
		PIDNS:  "pidns-8",
	}.Encode()
	sealed := GlobalState{
		FDs:    []FDRecord{{Num: 3, Path: "/x", Perm: 0o644}},
		Mounts: []string{"/"},
		PIDNS:  "pidns-7",
	}.Encode()
	e := wire.NewEncoder()
	e.PutBytes(1, divergent)            // envelope payload field
	e.PutUint(2, wire.Checksum(sealed)) // checksum of the *other* copy
	return e.Bytes()
}

// TestDivergentReplicaEnvelopeIsRejected pins the corpus case as a
// regression test: an envelope whose payload and recorded checksum come
// from divergent replicas must fail with ErrChecksum, never restore.
func TestDivergentReplicaEnvelopeIsRejected(t *testing.T) {
	if _, err := wire.OpenEnvelope(divergentReplicaEnvelope()); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("divergent replica envelope opened: err = %v, want ErrChecksum", err)
	}
}
