package rfork

import "testing"

// FuzzDecodeGlobalState checks the global-state decoder never panics on
// arbitrary input — a corrupted checkpoint must surface as an error.
func FuzzDecodeGlobalState(f *testing.F) {
	gs := GlobalState{
		FDs:    []FDRecord{{Num: 3, Path: "/x", Perm: 0o644}},
		Mounts: []string{"/"},
		PIDNS:  "pidns",
	}
	f.Add(gs.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeGlobalState(data)
	})
}

// FuzzDecodeVMA checks the VMA record decoder likewise.
func FuzzDecodeVMA(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x02, 0x10, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeVMA(data)
	})
}
