package rfork

import (
	"cxlfork/internal/kernel"
)

// Policy selects how CXLfork tiers checkpointed read-only state between
// CXL and local memory (paper §4.3). The baselines ignore it: CRIU
// always copies everything local; Mitosis is migrate-on-access by
// construction.
type Policy int

// Tiering policies.
const (
	// MigrateOnWrite maps checkpointed pages from CXL read-only and
	// copies to local memory only on stores (CXLfork default).
	MigrateOnWrite Policy = iota
	// MigrateOnAccess copies pages to local memory on first access.
	MigrateOnAccess
	// HybridTiering copies pages whose checkpointed Accessed bit (or
	// UserHot bit) is set; cold pages are mapped from CXL directly.
	HybridTiering
)

var policyNames = [...]string{"MoW", "MoA", "HT"}

func (p Policy) String() string { return policyNames[p] }

// Options tunes a restore.
type Options struct {
	// Policy is the tiering policy (CXLfork only).
	Policy Policy
	// NoDirtyPrefetch disables the opportunistic copy of
	// checkpoint-dirty pages after restore (ablation; default on,
	// §4.2.1).
	NoDirtyPrefetch bool
	// NaivePTCopy restores page tables by copying every checkpointed
	// leaf to local memory instead of attaching (ablation, §4.2).
	NaivePTCopy bool
	// SyncHotPrefetch synchronously prefetches A-bit pages during
	// restore under hybrid tiering (the design §4.3 evaluates and
	// rejects; ablation).
	SyncHotPrefetch bool
}

// Image is a mechanism-specific checkpoint. Images are reference
// counted: the object store holds one reference and every live clone
// holds one; Release drops a reference and reclaims storage at zero.
type Image interface {
	// ID is the checkpoint identifier (the CID in CXLporter's store).
	ID() string
	// Mechanism names the creating mechanism.
	Mechanism() string
	// CXLBytes is the CXL device capacity the image holds.
	CXLBytes() int64
	// LocalBytes is parent-node local DRAM the image holds (Mitosis'
	// shadow copy; zero for CRIU-CXL and CXLfork).
	LocalBytes() int64
	// Pages is the number of checkpointed data pages.
	Pages() int
	// Retain adds a reference.
	Retain()
	// Release drops a reference, reclaiming at zero.
	Release()
	// Refs returns the current reference count.
	Refs() int
}

// Mechanism checkpoints a process and restores clones from the image.
// Both operations advance the node's virtual clock by their cost; the
// caller measures latency as a clock delta.
type Mechanism interface {
	// Name returns the mechanism name as used in the paper's figures.
	Name() string
	// Checkpoint captures parent's state under the given checkpoint ID.
	// The returned image has one reference owned by the caller.
	Checkpoint(parent *kernel.Task, id string) (Image, error)
	// Restore populates child (a fresh empty task on any node) from the
	// image. The restored child holds an image reference released at
	// task exit.
	Restore(child *kernel.Task, img Image, opts Options) error
}
