package rfork

import (
	"fmt"

	"cxlfork/internal/kernel"
	"cxlfork/internal/wire"
)

// FDRecord is the serialized form of one descriptor: exactly the
// information needed to re-open it on the restoring node (paper §4.1).
type FDRecord struct {
	Num  int
	Kind kernel.FDKind
	Path string
	Perm uint32
	Pos  int64
}

// GlobalState is the process state that cannot be checkpointed as-is
// because it references node-global OS structures: open descriptors,
// mount points and the PID namespace. It is lightly serialized at
// checkpoint and redone at restore.
type GlobalState struct {
	FDs    []FDRecord
	Mounts []string
	PIDNS  string
	Regs   kernel.Registers
}

// CaptureGlobalState extracts the serializable global state of a task.
func CaptureGlobalState(t *kernel.Task) GlobalState {
	gs := GlobalState{
		Mounts: append([]string(nil), t.NS.Mounts...),
		PIDNS:  t.NS.PIDNS,
		Regs:   t.Regs,
	}
	for _, fd := range t.FDs.All() {
		gs.FDs = append(gs.FDs, FDRecord{
			Num: fd.Num, Kind: fd.Kind, Path: fd.Path, Perm: fd.Perm, Pos: fd.Pos,
		})
	}
	return gs
}

// Field tags for the global-state message.
const (
	gsFieldFD    = 1
	gsFieldMount = 2
	gsFieldPIDNS = 3
	gsFieldRegIP = 4
	gsFieldRegSP = 5
	gsFieldGPR   = 6

	fdFieldNum  = 1
	fdFieldKind = 2
	fdFieldPath = 3
	fdFieldPerm = 4
	fdFieldPos  = 5
)

// Encode serializes the global state with the wire codec.
func (gs GlobalState) Encode() []byte {
	e := wire.NewEncoder()
	for _, fd := range gs.FDs {
		m := wire.NewEncoder()
		m.PutInt(fdFieldNum, int64(fd.Num))
		m.PutUint(fdFieldKind, uint64(fd.Kind))
		m.PutString(fdFieldPath, fd.Path)
		m.PutUint(fdFieldPerm, uint64(fd.Perm))
		m.PutInt(fdFieldPos, fd.Pos)
		e.PutMessage(gsFieldFD, m)
	}
	for _, mnt := range gs.Mounts {
		e.PutString(gsFieldMount, mnt)
	}
	e.PutString(gsFieldPIDNS, gs.PIDNS)
	e.PutUint(gsFieldRegIP, gs.Regs.IP)
	e.PutUint(gsFieldRegSP, gs.Regs.SP)
	for _, r := range gs.Regs.GPR {
		e.PutUint(gsFieldGPR, r)
	}
	return e.Bytes()
}

// DecodeGlobalState parses a serialized global state.
func DecodeGlobalState(blob []byte) (GlobalState, error) {
	var gs GlobalState
	d := wire.NewDecoder(blob)
	gpr := 0
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return gs, err
		}
		switch field {
		case gsFieldFD:
			b, err := d.Bytes()
			if err != nil {
				return gs, err
			}
			fd, err := decodeFD(b)
			if err != nil {
				return gs, err
			}
			gs.FDs = append(gs.FDs, fd)
		case gsFieldMount:
			s, err := d.String()
			if err != nil {
				return gs, err
			}
			gs.Mounts = append(gs.Mounts, s)
		case gsFieldPIDNS:
			s, err := d.String()
			if err != nil {
				return gs, err
			}
			gs.PIDNS = s
		case gsFieldRegIP:
			v, err := d.Uint()
			if err != nil {
				return gs, err
			}
			gs.Regs.IP = v
		case gsFieldRegSP:
			v, err := d.Uint()
			if err != nil {
				return gs, err
			}
			gs.Regs.SP = v
		case gsFieldGPR:
			v, err := d.Uint()
			if err != nil {
				return gs, err
			}
			if gpr < len(gs.Regs.GPR) {
				gs.Regs.GPR[gpr] = v
				gpr++
			}
		default:
			if err := d.Skip(wt); err != nil {
				return gs, err
			}
		}
	}
	return gs, nil
}

func decodeFD(b []byte) (FDRecord, error) {
	var fd FDRecord
	d := wire.NewDecoder(b)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return fd, err
		}
		switch field {
		case fdFieldNum:
			v, err := d.Int()
			if err != nil {
				return fd, err
			}
			fd.Num = int(v)
		case fdFieldKind:
			v, err := d.Uint()
			if err != nil {
				return fd, err
			}
			fd.Kind = kernel.FDKind(v)
		case fdFieldPath:
			s, err := d.String()
			if err != nil {
				return fd, err
			}
			fd.Path = s
		case fdFieldPerm:
			v, err := d.Uint()
			if err != nil {
				return fd, err
			}
			fd.Perm = uint32(v)
		case fdFieldPos:
			v, err := d.Int()
			if err != nil {
				return fd, err
			}
			fd.Pos = v
		default:
			if err := d.Skip(wt); err != nil {
				return fd, err
			}
		}
	}
	return fd, nil
}

// RestoreGlobalState redoes global state on the restoring node: re-opens
// every descriptor (verifying the path exists on the shared root
// filesystem) and restores mounts and the PID namespace. Network and
// cgroup configuration are deliberately inherited from the calling task
// (paper §4.2). It charges per-descriptor and namespace costs.
func RestoreGlobalState(child *kernel.Task, gs GlobalState) error {
	p := child.OS.P
	for _, fd := range gs.FDs {
		if fd.Kind == kernel.FDFile {
			if _, err := child.OS.FS.Lookup(fd.Path); err != nil {
				return fmt.Errorf("rfork: restoring fd %d: %w", fd.Num, err)
			}
		}
		if _, err := child.FDs.OpenAt(fd.Num, fd.Kind, fd.Path, fd.Perm, fd.Pos); err != nil {
			return err
		}
		child.OS.Eng.Advance(p.FDReopen)
	}
	child.NS.Mounts = append([]string(nil), gs.Mounts...)
	child.NS.PIDNS = gs.PIDNS
	child.OS.Eng.Advance(p.NamespaceRestore)
	child.Regs = gs.Regs
	return nil
}
