package rfork

import (
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
	"cxlfork/internal/wire"
)

// VMA record field tags.
const (
	vmaFieldID    = 1
	vmaFieldStart = 2
	vmaFieldEnd   = 3
	vmaFieldProt  = 4
	vmaFieldKind  = 5
	vmaFieldPath  = 6
	vmaFieldOff   = 7
	vmaFieldName  = 8
)

// EncodeVMA serializes one VMA record (CRIU images and Mitosis' OS-state
// transfer both describe the address-space layout this way).
func EncodeVMA(v vma.VMA) []byte {
	e := wire.NewEncoder()
	e.PutInt(vmaFieldID, int64(v.ID))
	e.PutUint(vmaFieldStart, uint64(v.Start))
	e.PutUint(vmaFieldEnd, uint64(v.End))
	e.PutUint(vmaFieldProt, uint64(v.Prot))
	e.PutUint(vmaFieldKind, uint64(v.Kind))
	if v.Kind == vma.FilePrivate {
		e.PutString(vmaFieldPath, v.Path)
		e.PutInt(vmaFieldOff, v.FileOff)
	}
	if v.Name != "" {
		e.PutString(vmaFieldName, v.Name)
	}
	return e.Bytes()
}

// DecodeVMA parses one VMA record.
func DecodeVMA(b []byte) (vma.VMA, error) {
	var v vma.VMA
	d := wire.NewDecoder(b)
	for d.More() {
		field, wt, err := d.Next()
		if err != nil {
			return v, err
		}
		switch field {
		case vmaFieldID:
			x, err := d.Int()
			if err != nil {
				return v, err
			}
			v.ID = int(x)
		case vmaFieldStart:
			x, err := d.Uint()
			if err != nil {
				return v, err
			}
			v.Start = pt.VirtAddr(x)
		case vmaFieldEnd:
			x, err := d.Uint()
			if err != nil {
				return v, err
			}
			v.End = pt.VirtAddr(x)
		case vmaFieldProt:
			x, err := d.Uint()
			if err != nil {
				return v, err
			}
			v.Prot = vma.Prot(x)
		case vmaFieldKind:
			x, err := d.Uint()
			if err != nil {
				return v, err
			}
			v.Kind = vma.Kind(x)
		case vmaFieldPath:
			s, err := d.String()
			if err != nil {
				return v, err
			}
			v.Path = s
		case vmaFieldOff:
			x, err := d.Int()
			if err != nil {
				return v, err
			}
			v.FileOff = x
		case vmaFieldName:
			s, err := d.String()
			if err != nil {
				return v, err
			}
			v.Name = s
		default:
			if err := d.Skip(wt); err != nil {
				return v, err
			}
		}
	}
	return v, nil
}
