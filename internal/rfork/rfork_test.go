package rfork

import (
	"testing"
	"testing/quick"

	"cxlfork/internal/kernel"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

func TestGlobalStateRoundTrip(t *testing.T) {
	gs := GlobalState{
		FDs: []FDRecord{
			{Num: 3, Kind: kernel.FDFile, Path: "/lib/a.so", Perm: 0o444, Pos: 128},
			{Num: 7, Kind: kernel.FDSocket, Path: "sock:invoker", Perm: 0o600},
		},
		Mounts: []string{"/", "/proc"},
		PIDNS:  "pidns-42",
		Regs:   kernel.Registers{IP: 0xdead, SP: 0xbeef},
	}
	gs.Regs.GPR[3] = 77

	out, err := DecodeGlobalState(gs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FDs) != 2 || out.FDs[0] != gs.FDs[0] || out.FDs[1] != gs.FDs[1] {
		t.Fatalf("fds = %+v", out.FDs)
	}
	if len(out.Mounts) != 2 || out.Mounts[1] != "/proc" {
		t.Fatalf("mounts = %v", out.Mounts)
	}
	if out.PIDNS != "pidns-42" || out.Regs != gs.Regs {
		t.Fatalf("pidns/regs mismatch: %+v", out)
	}
}

func TestGlobalStateEmptyRoundTrip(t *testing.T) {
	gs := GlobalState{PIDNS: "host"}
	out, err := DecodeGlobalState(gs.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FDs) != 0 || out.PIDNS != "host" {
		t.Fatalf("out = %+v", out)
	}
}

func TestGlobalStateCorrupt(t *testing.T) {
	gs := GlobalState{FDs: []FDRecord{{Num: 3, Path: "/x"}}}
	b := gs.Encode()
	if _, err := DecodeGlobalState(b[:len(b)-1]); err == nil {
		t.Fatal("truncated blob decoded")
	}
}

func TestVMARecordRoundTrip(t *testing.T) {
	cases := []vma.VMA{
		{ID: 1, Start: 0x1000, End: 0x5000, Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: "[heap]"},
		{ID: 900, Start: 0x7f0000000000, End: 0x7f0000040000, Prot: vma.Read | vma.Exec,
			Kind: vma.FilePrivate, Path: "/lib/libc.so", FileOff: 0x2000, Name: "libc"},
		{ID: 2, Start: 0x2000, End: 0x3000}, // zero prot, anonymous, unnamed
	}
	for _, want := range cases {
		got, err := DecodeVMA(EncodeVMA(want))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestVMARecordProperty round-trips randomly generated VMAs.
func TestVMARecordProperty(t *testing.T) {
	f := func(id int32, start, length uint32, prot uint8, file bool, off int32, name string) bool {
		v := vma.VMA{
			ID:    int(id),
			Start: pt.VirtAddr(start) << 12,
			End:   pt.VirtAddr(start)<<12 + pt.VirtAddr(length%1024+1)<<12,
			Prot:  vma.Prot(prot & 7),
			Name:  name,
		}
		if file {
			v.Kind = vma.FilePrivate
			v.Path = "/f/" + name
			v.FileOff = int64(off)
		}
		got, err := DecodeVMA(EncodeVMA(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	if MigrateOnWrite.String() != "MoW" || MigrateOnAccess.String() != "MoA" || HybridTiering.String() != "HT" {
		t.Fatal("policy names wrong")
	}
}
