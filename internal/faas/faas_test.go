package faas

import (
	"math"
	"math/rand"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/params"
)

// smallSpec is a fast synthetic function for unit tests.
func smallSpec() Spec {
	return Spec{
		Name: "Tiny", FootprintBytes: 8 << 20, LibBytes: 3 << 20,
		InitFrac: 0.6, ROFrac: 0.3, RWFrac: 0.1,
		InitComputeNs: 1e6, WarmComputeNs: 1e5,
		ROSweeps: 2, RepeatsPerPage: 1, InitTouchFrac: 0.05,
		FDCount: 6, LibVMAs: 12,
	}
}

func testCluster(t testing.TB, specs ...Spec) *cluster.Cluster {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 2 << 30
	p.CXLBytes = 2 << 30
	p.LLCBytes = 4 << 20
	c := cluster.MustNew(p, 2)
	for _, s := range specs {
		RegisterFiles(c.FS, p, s)
		for _, n := range c.Nodes {
			if err := WarmLibraries(n, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestSuiteMatchesTable1(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d functions, want 10", len(suite))
	}
	want := map[string]int64{
		"Float": 24 << 20, "Linpack": 33 << 20, "Json": 24 << 20,
		"Pyaes": 24 << 20, "Chameleon": 27 << 20, "HTML": 256 << 20,
		"Cnn": 265 << 20, "Rnn": 190 << 20, "BFS": 125 << 20, "Bert": 630 << 20,
	}
	for _, s := range suite {
		if want[s.Name] != s.FootprintBytes {
			t.Errorf("%s footprint = %d, want %d", s.Name, s.FootprintBytes, want[s.Name])
		}
		if got := s.InitFrac + s.ROFrac + s.RWFrac; math.Abs(got-1) > 1e-9 {
			t.Errorf("%s class fractions sum to %v", s.Name, got)
		}
		if s.LibBytes >= s.FootprintBytes {
			t.Errorf("%s libraries exceed footprint", s.Name)
		}
	}
}

func TestSuiteAveragesMatchFig1(t *testing.T) {
	// Fig. 1: Init/RO/RW average 72.2% / 23% / 4.8%.
	var init, ro, rw float64
	suite := Suite()
	for _, s := range suite {
		init += s.InitFrac
		ro += s.ROFrac
		rw += s.RWFrac
	}
	n := float64(len(suite))
	if got := init / n; math.Abs(got-0.722) > 0.02 {
		t.Errorf("mean InitFrac = %.3f, want ≈0.722", got)
	}
	if got := ro / n; math.Abs(got-0.23) > 0.02 {
		t.Errorf("mean ROFrac = %.3f, want ≈0.23", got)
	}
	if got := rw / n; math.Abs(got-0.048) > 0.01 {
		t.Errorf("mean RWFrac = %.3f, want ≈0.048", got)
	}
}

func TestOnlyBFSAndBertExceedLLC(t *testing.T) {
	p := params.Default()
	for _, s := range Suite() {
		roBytes := int64(float64(s.FootprintBytes) * s.ROFrac)
		exceeds := roBytes > p.LLCBytes
		wantExceeds := s.Name == "BFS" || s.Name == "Bert"
		if exceeds != wantExceeds {
			t.Errorf("%s RO set %d MB vs LLC: exceeds=%v, want %v",
				s.Name, roBytes>>20, exceeds, wantExceeds)
		}
	}
}

func TestComputeLayout(t *testing.T) {
	p := params.Default()
	s := smallSpec()
	l := ComputeLayout(p, s)
	if got, want := l.TotalPages(), p.Pages(s.FootprintBytes); got != want {
		t.Fatalf("total pages = %d, want %d", got, want)
	}
	if l.LibPages != p.Pages(s.LibBytes) {
		t.Fatalf("lib pages = %d", l.LibPages)
	}
	if l.RWPages <= 0 || l.ROPages <= 0 || l.InitAnonPages <= 0 {
		t.Fatalf("degenerate layout %+v", l)
	}
}

func TestColdInitPopulatesFootprint(t *testing.T) {
	c := testCluster(t, smallSpec())
	in, err := NewInstance(c.Node(0), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ColdInit(); err != nil {
		t.Fatal(err)
	}
	if got, want := in.Task.MM.PT.CountPresent(), in.L.TotalPages(); got != want {
		t.Fatalf("resident pages = %d, want %d", got, want)
	}
	// VMA count: libraries + three anon regions.
	if got := in.Task.MM.VMAs.Count(); got != 12+3 {
		t.Fatalf("VMAs = %d, want 15", got)
	}
	if in.Task.FDs.Len() != smallSpec().FDCount {
		t.Fatalf("fds = %d", in.Task.FDs.Len())
	}
}

func TestInvokeTouchesClasses(t *testing.T) {
	c := testCluster(t, smallSpec())
	in, _ := NewInstance(c.Node(0), smallSpec())
	if err := in.ColdInit(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	in.Task.MM.PT.ClearABits()
	d, err := in.Invoke(rng)
	if err != nil {
		t.Fatal(err)
	}
	if d <= in.Spec.WarmComputeNs {
		t.Fatalf("invocation duration %v not above pure compute", d)
	}
	if in.Task.Invocations != 1 {
		t.Fatal("invocation not counted")
	}
}

func TestWarmupMemoizes(t *testing.T) {
	c := testCluster(t, smallSpec())
	in, _ := NewInstance(c.Node(0), smallSpec())
	in.ColdInit()
	rng := rand.New(rand.NewSource(1))
	if err := in.Warmup(16, rng); err != nil {
		t.Fatal(err)
	}
	if in.Task.Invocations != 16 {
		t.Fatalf("invocations = %d", in.Task.Invocations)
	}
	if in.SteadyWarm() == 0 {
		t.Fatal("steady-state duration not memoized")
	}
}

func TestWarmFasterThanCold(t *testing.T) {
	c := testCluster(t, smallSpec())
	in, _ := NewInstance(c.Node(0), smallSpec())
	eng := c.Eng
	t0 := eng.Now()
	in.ColdInit()
	rng := rand.New(rand.NewSource(1))
	if _, err := in.Invoke(rng); err != nil {
		t.Fatal(err)
	}
	cold := eng.Now() - t0
	warm, err := in.Invoke(rng)
	if err != nil {
		t.Fatal(err)
	}
	if warm*5 > cold {
		t.Fatalf("warm %v not ≪ cold %v", warm, cold)
	}
}

func TestClassifyFootprintMatchesSpec(t *testing.T) {
	c := testCluster(t, smallSpec())
	rng := rand.New(rand.NewSource(7))
	b, err := ClassifyFootprint(c.Node(0), smallSpec(), 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := smallSpec()
	if math.Abs(b.InitFrac-s.InitFrac) > 0.08 {
		t.Errorf("measured InitFrac %.3f, spec %.3f", b.InitFrac, s.InitFrac)
	}
	if math.Abs(b.ROFrac-s.ROFrac) > 0.08 {
		t.Errorf("measured ROFrac %.3f, spec %.3f", b.ROFrac, s.ROFrac)
	}
	if math.Abs(b.RWFrac-s.RWFrac) > 0.05 {
		t.Errorf("measured RWFrac %.3f, spec %.3f", b.RWFrac, s.RWFrac)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Bert"); !ok {
		t.Fatal("Bert not found")
	}
	if _, ok := ByName("Nope"); ok {
		t.Fatal("phantom function found")
	}
}

func TestLibPathsRegistered(t *testing.T) {
	c := testCluster(t, smallSpec())
	if _, err := c.FS.Lookup(LibPath(smallSpec(), 0)); err != nil {
		t.Fatal(err)
	}
}
