package faas

import (
	"fmt"
	"math/rand"

	"cxlfork/internal/des"
	"cxlfork/internal/fsim"
	"cxlfork/internal/kernel"
	"cxlfork/internal/params"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// Address-space bases. Regions are spaced far enough apart that the
// largest function fits with no collisions.
const (
	LibBase     = pt.VirtAddr(0x7f00_0000_0000)
	InitBase    = pt.VirtAddr(0x1_0000_0000)
	ROBase      = pt.VirtAddr(0x2_0000_0000)
	RWBase      = pt.VirtAddr(0x3_0000_0000)
	ScratchBase = pt.VirtAddr(0x4_0000_0000)
)

// ScratchName is the scratch VMA label; the Fig. 1 classifier excludes
// it (transient request scratch is not part of the Table-1 footprint).
const ScratchName = "[scratch]"

// Layout is the concrete page-class geometry of a function instance.
type Layout struct {
	LibPages      int
	InitAnonPages int
	ROPages       int
	RWPages       int
	ScratchPages  int
}

// TotalPages returns the Table-1 footprint in pages (scratch excluded).
func (l Layout) TotalPages() int {
	return l.LibPages + l.InitAnonPages + l.ROPages + l.RWPages
}

// InitPages returns the Init-class page count (libraries + anon init).
func (l Layout) InitPages() int { return l.LibPages + l.InitAnonPages }

// ComputeLayout derives the page-class geometry from a spec.
func ComputeLayout(p params.Params, s Spec) Layout {
	total := p.Pages(s.FootprintBytes)
	lib := p.Pages(s.LibBytes)
	init := int(float64(total) * s.InitFrac)
	ro := int(float64(total) * s.ROFrac)
	rw := total - init - ro
	if init < lib {
		panic(fmt.Sprintf("faas: %s: init class smaller than libraries", s.Name))
	}
	if rw < 1 {
		rw = 1
	}
	return Layout{
		LibPages: lib, InitAnonPages: init - lib, ROPages: ro, RWPages: rw,
		ScratchPages: int(float64(total) * s.ScratchFrac),
	}
}

// LibPath returns the path of library i of a function.
func LibPath(s Spec, i int) string {
	return fmt.Sprintf("/runtime/%s/lib%03d.so", s.Name, i)
}

// libSizes splits the library footprint across the spec's VMA count.
func libSizes(p params.Params, s Spec) []int {
	lib := p.Pages(s.LibBytes)
	n := s.LibVMAs
	if n > lib {
		n = lib
	}
	sizes := make([]int, n)
	base := lib / n
	extra := lib % n
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// RegisterFiles creates the function's library files on the shared root
// filesystem (the container image contents).
func RegisterFiles(fs *fsim.FS, p params.Params, s Spec) {
	for i, pages := range libSizes(p, s) {
		fs.Create(LibPath(s, i), int64(pages)*int64(p.PageSize))
	}
}

// WarmLibraries pre-pulls the function's libraries into a node's page
// cache (image pre-pull on a steady-state node).
func WarmLibraries(o *kernel.OS, s Spec) error {
	for i := range libSizes(o.P, s) {
		if err := o.WarmFile(LibPath(s, i)); err != nil {
			return err
		}
	}
	return nil
}

// Instance is one function instance: a task plus its layout and
// execution bookkeeping.
type Instance struct {
	Spec Spec
	L    Layout
	Task *kernel.Task

	// steadyWarm memoizes the steady-state warm invocation duration for
	// bulk warmups (identical invocations replay at measured cost).
	steadyWarm des.Time
}

// NewInstance creates a fresh (cold, unpopulated) instance on a node.
// The address space is mapped and descriptors are opened, but no page is
// touched; ColdInit performs state initialization.
func NewInstance(o *kernel.OS, s Spec) (*Instance, error) {
	task := o.NewTask(s.Name)
	in := &Instance{Spec: s, L: ComputeLayout(o.P, s), Task: task}

	va := LibBase
	for i, pages := range libSizes(o.P, s) {
		end := va + pt.VirtAddr(pages<<pt.PageShift)
		_, err := task.MM.Mmap(vma.VMA{
			Start: va, End: end, Prot: vma.Read | vma.Exec,
			Kind: vma.FilePrivate, Path: LibPath(s, i), Name: fmt.Sprintf("lib%03d", i),
		})
		if err != nil {
			return nil, err
		}
		va = end
	}
	type region struct {
		base  pt.VirtAddr
		pages int
		name  string
	}
	for _, r := range []region{
		{InitBase, in.L.InitAnonPages, "[init]"},
		{ROBase, in.L.ROPages, "[model]"},
		{RWBase, in.L.RWPages, "[heap]"},
		{ScratchBase, in.L.ScratchPages, ScratchName},
	} {
		if r.pages == 0 {
			continue
		}
		_, err := task.MM.Mmap(vma.VMA{
			Start: r.base, End: r.base + pt.VirtAddr(r.pages<<pt.PageShift),
			Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: r.name,
		})
		if err != nil {
			return nil, err
		}
	}

	for i := 0; i < s.FDCount; i++ {
		if i%3 == 0 {
			task.FDs.Open(kernel.FDSocket, fmt.Sprintf("sock:%s:%d", s.Name, i), 0o600)
		} else {
			task.FDs.Open(kernel.FDFile, LibPath(s, i%s.LibVMAs), 0o444)
		}
	}
	return in, nil
}

// Adopt wraps a restored task (whose address space came from a
// checkpoint of this spec) as an instance.
func Adopt(task *kernel.Task, s Spec) *Instance {
	return &Instance{Spec: s, L: ComputeLayout(task.OS.P, s), Task: task}
}

// ColdInit performs cold state initialization: runtime boot compute,
// function compute (model loading), and population of the whole
// footprint — libraries are read, anonymous state is written.
func (in *Instance) ColdInit() error {
	o := in.Task.OS
	o.Eng.Advance(o.P.RuntimeColdInit + in.Spec.InitComputeNs)
	mm := in.Task.MM
	for i := 0; i < in.L.LibPages; i++ {
		if err := mm.Access(LibBase+pt.VirtAddr(i<<pt.PageShift), false); err != nil {
			return err
		}
	}
	for _, r := range []struct {
		base  pt.VirtAddr
		pages int
	}{{InitBase, in.L.InitAnonPages}, {ROBase, in.L.ROPages}, {RWBase, in.L.RWPages}, {ScratchBase, in.L.ScratchPages}} {
		for i := 0; i < r.pages; i++ {
			if err := mm.Access(r.base+pt.VirtAddr(i<<pt.PageShift), true); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invoke executes one invocation mechanistically and returns its
// duration. rng varies which Init-class pages the request touches
// (different inputs exercise different code paths).
func (in *Instance) Invoke(rng *rand.Rand) (des.Time, error) {
	o := in.Task.OS
	mm := in.Task.MM
	start := o.Eng.Now()
	s := in.Spec

	// Rarely-accessed Init-class touches. Most of the touched set is the
	// same hot runtime code paths every request takes; a small tail
	// varies with the input.
	initTotal := in.L.InitPages()
	touches := int(float64(initTotal) * s.InitTouchFrac)
	fixed := touches * 3 / 4
	off := 0
	if rng != nil && initTotal > 0 {
		off = rng.Intn(initTotal)
	}
	for j := 0; j < touches; j++ {
		var idx int
		if j < fixed {
			idx = (j * 61) % initTotal // 61 is coprime to page counts; spreads touches
		} else {
			idx = (off + j*61) % initTotal
		}
		var va pt.VirtAddr
		if idx < in.L.LibPages {
			va = LibBase + pt.VirtAddr(idx<<pt.PageShift)
		} else {
			va = InitBase + pt.VirtAddr((idx-in.L.LibPages)<<pt.PageShift)
		}
		if err := mm.Access(va, false); err != nil {
			return 0, err
		}
	}

	// Read-only working set sweeps.
	for sweep := 0; sweep < s.ROSweeps; sweep++ {
		for j := 0; j < in.L.ROPages; j++ {
			if err := mm.Access(ROBase+pt.VirtAddr(j<<pt.PageShift), false); err != nil {
				return 0, err
			}
			mm.AccessRepeat(s.RepeatsPerPage)
		}
	}

	// Read-write working set.
	for j := 0; j < in.L.RWPages; j++ {
		if err := mm.Access(RWBase+pt.VirtAddr(j<<pt.PageShift), true); err != nil {
			return 0, err
		}
		mm.AccessRepeat(s.RepeatsPerPage)
	}

	// Request scratch: transient allocations written on every request.
	for j := 0; j < in.L.ScratchPages; j++ {
		if err := mm.Access(ScratchBase+pt.VirtAddr(j<<pt.PageShift), true); err != nil {
			return 0, err
		}
	}

	o.Eng.Advance(s.WarmComputeNs)
	in.Task.Invocations++
	return o.Eng.Now() - start, nil
}

// Warmup performs n invocations, simulating the first two mechanistically
// and replaying the measured steady-state duration for the rest (warm
// invocations of an unchanged instance are identical; this keeps the
// 16-invocation pre-checkpoint warmups affordable).
func (in *Instance) Warmup(n int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		if i < 2 || in.steadyWarm == 0 {
			d, err := in.Invoke(rng)
			if err != nil {
				return err
			}
			if i >= 1 {
				in.steadyWarm = d
			}
			continue
		}
		in.Task.OS.Eng.Advance(in.steadyWarm)
		in.Task.Invocations++
	}
	return nil
}

// SteadyWarm returns the memoized steady-state invocation duration
// (zero until two invocations have run).
func (in *Instance) SteadyWarm() des.Time { return in.steadyWarm }

// Exit tears the instance down, freeing its memory.
func (in *Instance) Exit() { in.Task.OS.Exit(in.Task) }
