package faas

import (
	"math"
	"math/rand"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/params"
)

// TestClassifyFootprintFractions profiles the synthetic test function
// and checks the Fig. 1 methodology's outputs: fractions sum to one,
// every class the spec declares shows up, and the observed footprint is
// the spec's page count (library + anonymous, scratch excluded).
func TestClassifyFootprintFractions(t *testing.T) {
	s := smallSpec()
	c := testCluster(t, s)
	rng := rand.New(rand.NewSource(1))
	b, err := ClassifyFootprint(c.Node(0), s, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != s.Name {
		t.Errorf("breakdown name = %q, want %q", b.Name, s.Name)
	}
	if got := b.InitFrac + b.ROFrac + b.RWFrac; math.Abs(got-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", got)
	}
	if b.TotalPages <= 0 {
		t.Fatal("no footprint pages observed")
	}
	// The spec writes RW pages every invocation and sweeps RO pages, so
	// a steady-state profile must find both classes.
	if b.RWFrac <= 0 {
		t.Error("no read-write pages classified")
	}
	if b.ROFrac <= 0 {
		t.Error("no read-only pages classified")
	}
}

// TestClassifyFootprintDeterministic: profiling is part of the golden
// experiment pipeline, so identical seeds must classify identically.
func TestClassifyFootprintDeterministic(t *testing.T) {
	s := smallSpec()
	run := func() Breakdown {
		c := testCluster(t, s)
		b, err := ClassifyFootprint(c.Node(0), s, 6, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different breakdowns:\n%+v\n%+v", a, b)
	}
}

// TestClassifyFootprintZeroInvocations is the threshold edge case: with
// no invocations nothing is accessed or dirtied, so every page counts as
// init-only... except that threshold 0 promotes never-accessed pages to
// read-only (accessCount 0 >= 0). The contract is just that it returns
// without dividing by zero and the fractions still sum to one.
func TestClassifyFootprintZeroInvocations(t *testing.T) {
	s := smallSpec()
	c := testCluster(t, s)
	b, err := ClassifyFootprint(c.Node(0), s, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.InitFrac + b.ROFrac + b.RWFrac; math.Abs(got-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", got)
	}
}

// TestClassifyFootprintOOM drives the error path: a node whose DRAM
// cannot hold the function's working set must surface the allocation
// failure instead of panicking or returning a partial breakdown.
func TestClassifyFootprintOOM(t *testing.T) {
	s := smallSpec()
	p := params.Default()
	p.NodeDRAMBytes = 1 << 20 // far below the 8 MiB footprint
	p.CXLBytes = 64 << 20
	c := cluster.MustNew(p, 1)
	RegisterFiles(c.FS, p, s)
	// Deliberately no WarmLibraries: the pull would OOM the page cache
	// before the instance even spawns; cold file faults fail instead.
	if _, err := ClassifyFootprint(c.Node(0), s, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("classification succeeded on a node without memory for the footprint")
	}
}

// TestClassifyFootprintUnknownLibrary exercises the instance-spawn error
// path: the spec's library files were never registered on the FS.
func TestClassifyFootprintUnknownLibrary(t *testing.T) {
	s := smallSpec()
	p := params.Default()
	p.NodeDRAMBytes = 256 << 20
	p.CXLBytes = 64 << 20
	c := cluster.MustNew(p, 1)
	if _, err := ClassifyFootprint(c.Node(0), s, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("classification succeeded without registered image files")
	}
}
