package faas

import (
	"math/rand"

	"cxlfork/internal/kernel"
	"cxlfork/internal/pt"
)

// Breakdown is a function's footprint split by access class (Fig. 1).
type Breakdown struct {
	Name string
	// Fractions of the footprint in each class; they sum to 1.
	InitFrac, ROFrac, RWFrac float64
	// TotalPages is the observed footprint.
	TotalPages int
}

// ClassifyFootprint reproduces the paper's Fig. 1 methodology: spawn the
// function, invoke it `invocations` times with different inputs, and
// classify each footprint page by observed access pattern:
//
//   - Read-write: pages written during invocations (cumulative D bit),
//   - Read-only: pages read in at least half the invocations,
//   - Init: everything else — pages used for initialization and rarely
//     touched afterwards.
//
// Access frequency is measured exactly as a profiler would: clear the
// page-table A bits before each invocation, count which pages have A
// set after it.
func ClassifyFootprint(o *kernel.OS, s Spec, invocations int, rng *rand.Rand) (Breakdown, error) {
	in, err := NewInstance(o, s)
	if err != nil {
		return Breakdown{}, err
	}
	defer in.Exit()
	if err := in.ColdInit(); err != nil {
		return Breakdown{}, err
	}

	mm := in.Task.MM
	mm.PT.ClearABits()
	clearDirtyBits(mm)

	accessCount := make(map[pt.VirtAddr]int)
	for i := 0; i < invocations; i++ {
		if _, err := in.Invoke(rng); err != nil {
			return Breakdown{}, err
		}
		mm.PT.Walk(func(va pt.VirtAddr, l *pt.Leaf, idx int) {
			if l.PTEs[idx].Flags.Has(pt.Accessed) {
				accessCount[va]++
			}
		})
		mm.PT.ClearABits()
	}

	var b Breakdown
	b.Name = s.Name
	threshold := invocations / 2
	var init, ro, rw int
	mm.PT.Walk(func(va pt.VirtAddr, l *pt.Leaf, idx int) {
		if va >= ScratchBase && va < ScratchBase+pt.VirtAddr(in.L.ScratchPages<<pt.PageShift) {
			return // transient request scratch is not footprint
		}
		b.TotalPages++
		switch {
		case l.PTEs[idx].Flags.Has(pt.Dirty):
			rw++
		case accessCount[va] >= threshold:
			ro++
		default:
			init++
		}
	})
	total := float64(b.TotalPages)
	b.InitFrac = float64(init) / total
	b.ROFrac = float64(ro) / total
	b.RWFrac = float64(rw) / total
	return b, nil
}

// clearDirtyBits clears D bits in place across the address space (the
// same user-space interface as A-bit clearing, used before profiling).
func clearDirtyBits(mm *kernel.MM) {
	mm.PT.Walk(func(_ pt.VirtAddr, l *pt.Leaf, i int) {
		l.PTEs[i].Flags &^= pt.Dirty
	})
}
