package faas

import (
	"cxlfork/internal/des"
)

// Spec describes one serverless function.
type Spec struct {
	// Name as in Table 1.
	Name string
	// Description as in Table 1.
	Description string
	// FootprintBytes is the function's memory footprint (Table 1).
	FootprintBytes int64

	// LibBytes is the file-backed portion of the footprint (runtime and
	// library private mappings); part of the Init class.
	LibBytes int64
	// InitFrac, ROFrac, RWFrac split the footprint into pages used only
	// for initialization, pages only read during invocations, and pages
	// written during invocations (Fig. 1). They sum to 1. InitFrac
	// includes the library portion.
	InitFrac, ROFrac, RWFrac float64

	// InitComputeNs is the pure-compute part of cold state
	// initialization (interpreter/JIT/model loading), excluding the
	// function-independent runtime boot and excluding fault costs.
	InitComputeNs des.Time
	// WarmComputeNs is the pure-compute part of one invocation.
	WarmComputeNs des.Time

	// ROSweeps is how many passes an invocation makes over the
	// read-only working set.
	ROSweeps int
	// RepeatsPerPage is how many additional (cache-hot) accesses each
	// visited page receives per sweep.
	RepeatsPerPage int
	// InitTouchFrac is the fraction of Init-class pages an invocation
	// touches (Init data is "rarely accessed during execution", Fig. 1).
	InitTouchFrac float64

	// ScratchFrac sizes the request-scratch region (transient per-request
	// allocations beyond the Table-1 steady-state footprint) as a
	// fraction of the footprint. Scratch is written every invocation, so
	// it lands in local memory under every mechanism and tiering policy.
	ScratchFrac float64
	// FDCount is how many descriptors the function holds open.
	FDCount int
	// LibVMAs is how many private file mappings the address space
	// carries (hundreds for Python FaaS runtimes, §4.2.1).
	LibVMAs int
}

// Suite returns the ten functions of Table 1. Footprints are the
// paper's; the class splits average to Fig. 1's 72.2/23/4.8 breakdown;
// which functions are cache-resident follows §7.1's narrative (only BFS
// and Bert have read-only working sets exceeding the 64 MB LLC).
func Suite() []Spec {
	return []Spec{
		{
			Name: "Float", Description: "Sin, Cos and Sqrt on floats",
			FootprintBytes: 24 << 20, LibBytes: 14 << 20,
			InitFrac: 0.80, ROFrac: 0.15, RWFrac: 0.05,
			InitComputeNs: 260 * des.Millisecond, WarmComputeNs: 30 * des.Millisecond,
			ROSweeps: 2, RepeatsPerPage: 2, InitTouchFrac: 0.08, ScratchFrac: 0.06,
			FDCount: 12, LibVMAs: 150,
		},
		{
			Name: "Linpack", Description: "Linear algebra solver for matrices",
			FootprintBytes: 33 << 20, LibBytes: 15 << 20,
			InitFrac: 0.70, ROFrac: 0.22, RWFrac: 0.08,
			InitComputeNs: 280 * des.Millisecond, WarmComputeNs: 45 * des.Millisecond,
			ROSweeps: 4, RepeatsPerPage: 4, InitTouchFrac: 0.06, ScratchFrac: 0.06,
			FDCount: 12, LibVMAs: 160,
		},
		{
			Name: "Json", Description: "JSON serialization & deserialization",
			FootprintBytes: 24 << 20, LibBytes: 14 << 20,
			InitFrac: 0.74, ROFrac: 0.20, RWFrac: 0.06,
			InitComputeNs: 260 * des.Millisecond, WarmComputeNs: 25 * des.Millisecond,
			ROSweeps: 2, RepeatsPerPage: 2, InitTouchFrac: 0.10, ScratchFrac: 0.08,
			FDCount: 14, LibVMAs: 150,
		},
		{
			Name: "Pyaes", Description: "Python AES encryption of a string",
			FootprintBytes: 24 << 20, LibBytes: 14 << 20,
			InitFrac: 0.78, ROFrac: 0.17, RWFrac: 0.05,
			InitComputeNs: 250 * des.Millisecond, WarmComputeNs: 40 * des.Millisecond,
			ROSweeps: 3, RepeatsPerPage: 3, InitTouchFrac: 0.05, ScratchFrac: 0.06,
			FDCount: 12, LibVMAs: 150,
		},
		{
			Name: "Chameleon", Description: "HTML table rendering",
			FootprintBytes: 27 << 20, LibBytes: 15 << 20,
			InitFrac: 0.72, ROFrac: 0.22, RWFrac: 0.06,
			InitComputeNs: 270 * des.Millisecond, WarmComputeNs: 35 * des.Millisecond,
			ROSweeps: 2, RepeatsPerPage: 2, InitTouchFrac: 0.08, ScratchFrac: 0.07,
			FDCount: 13, LibVMAs: 160,
		},
		{
			Name: "HTML", Description: "HTML web service",
			FootprintBytes: 256 << 20, LibBytes: 30 << 20,
			InitFrac: 0.86, ROFrac: 0.12, RWFrac: 0.02,
			InitComputeNs: 300 * des.Millisecond, WarmComputeNs: 20 * des.Millisecond,
			ROSweeps: 1, RepeatsPerPage: 1, InitTouchFrac: 0.02, ScratchFrac: 0.02,
			FDCount: 26, LibVMAs: 200,
		},
		{
			Name: "Cnn", Description: "JPEG classification CNN",
			FootprintBytes: 265 << 20, LibBytes: 60 << 20,
			InitFrac: 0.77, ROFrac: 0.20, RWFrac: 0.03,
			InitComputeNs: 420 * des.Millisecond, WarmComputeNs: 90 * des.Millisecond,
			ROSweeps: 1, RepeatsPerPage: 2, InitTouchFrac: 0.03, ScratchFrac: 0.03,
			FDCount: 34, LibVMAs: 300,
		},
		{
			Name: "Rnn", Description: "Generating natural language sentences",
			FootprintBytes: 190 << 20, LibBytes: 50 << 20,
			InitFrac: 0.80, ROFrac: 0.14, RWFrac: 0.06,
			InitComputeNs: 400 * des.Millisecond, WarmComputeNs: 60 * des.Millisecond,
			ROSweeps: 2, RepeatsPerPage: 2, InitTouchFrac: 0.02, ScratchFrac: 0.04,
			FDCount: 32, LibVMAs: 280,
		},
		{
			Name: "BFS", Description: "Breadth-first search",
			FootprintBytes: 125 << 20, LibBytes: 20 << 20,
			InitFrac: 0.35, ROFrac: 0.60, RWFrac: 0.05,
			InitComputeNs: 280 * des.Millisecond, WarmComputeNs: 70 * des.Millisecond,
			ROSweeps: 9, RepeatsPerPage: 1, InitTouchFrac: 0.02, ScratchFrac: 0.03,
			FDCount: 18, LibVMAs: 180,
		},
		{
			Name: "Bert", Description: "BERT-based ML inference",
			FootprintBytes: 630 << 20, LibBytes: 100 << 20,
			InitFrac: 0.72, ROFrac: 0.26, RWFrac: 0.02,
			InitComputeNs: 480 * des.Millisecond, WarmComputeNs: 100 * des.Millisecond,
			ROSweeps: 6, RepeatsPerPage: 2, InitTouchFrac: 0.01, ScratchFrac: 0.015,
			FDCount: 56, LibVMAs: 400,
		},
	}
}

// ByName returns the suite function with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
