// Package faas models the paper's serverless workload suite (Table 1):
// the CPU and memory functions from FunctionBench plus three real-world
// functions (HTML, BFS, Bert). Each function is a synthetic program with
// the paper's measured footprint, an address-space layout of library
// mappings and anonymous regions, and a page-classed access pattern
// calibrated to Fig. 1's Init / Read-only / Read-write breakdown
// (72.2% / 23% / 4.8% on average).
//
// Execution is mechanistic: an invocation issues page-granular loads and
// stores through the kernel's Access path, so fault costs, cache
// behaviour, and CXL latency all emerge from the memory system rather
// than being per-function constants.
//
// Entry points: Suite returns the Table 1 specs and ByName one of them;
// NewInstance deploys a Spec onto a node's OS and drives cold init and
// invocations.
package faas
