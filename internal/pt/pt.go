package pt

import "fmt"

// Geometry of the 4-level x86-64-style tree.
const (
	// EntriesPerTable is the fan-out of every level.
	EntriesPerTable = 512
	// PageShift is log2(page size).
	PageShift = 12
	// Levels is the tree depth (PGD, PUD, PMD, PTE-leaf).
	Levels = 4
	// LeafSpan is the bytes of virtual address space one leaf covers.
	LeafSpan = EntriesPerTable << PageShift
)

// VirtAddr is a virtual address.
type VirtAddr uint64

// PageNumber returns va's virtual page number.
func (va VirtAddr) PageNumber() uint64 { return uint64(va) >> PageShift }

// PageBase returns the page-aligned base of va.
func (va VirtAddr) PageBase() VirtAddr { return va &^ (1<<PageShift - 1) }

// LeafBase returns the base address of the leaf table covering va.
func (va VirtAddr) LeafBase() VirtAddr { return va &^ (LeafSpan - 1) }

// index returns the table index of va at the given level (1 = leaf).
func index(va VirtAddr, level int) int {
	shift := PageShift + 9*(level-1)
	return int(uint64(va)>>shift) & (EntriesPerTable - 1)
}

// Flags is the PTE flag set.
type Flags uint16

const (
	// Present marks a valid translation.
	Present Flags = 1 << iota
	// Writable allows stores through this mapping.
	Writable
	// Accessed is set by the hardware walker on any access.
	Accessed
	// Dirty is set by the hardware walker on stores.
	Dirty
	// CoW is the software copy-on-write bit: stores fault and copy.
	CoW
	// OnCXL marks the frame as living in the shared CXL pool; the PFN
	// is then a device-relative frame number valid on any node.
	OnCXL
	// UserHot is the software bit user-space profilers set to declare a
	// page hot for hybrid tiering (§4.3).
	UserHot
	// FileBacked marks a page belonging to a private file mapping.
	FileBacked
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// PTE is one page-table entry. PFN is interpreted against the node-local
// pool, or against the CXL device pool when OnCXL is set — which is what
// makes a rebased leaf meaningful on every node.
type PTE struct {
	Flags Flags
	PFN   int32
}

// Present reports whether the entry maps a page.
func (e PTE) Present() bool { return e.Flags.Has(Present) }

// Leaf is a last-level table of 512 PTEs.
type Leaf struct {
	PTEs [EntriesPerTable]PTE

	// InCXL marks a leaf that physically resides in a checkpoint arena
	// on the CXL device (it may be attached by many trees on many
	// nodes).
	InCXL bool
	// Protected write-protects the leaf against OS updates: flag or PFN
	// changes must copy the leaf first. A/D bit updates by the hardware
	// walker are exempt.
	Protected bool
}

// Present counts present entries.
func (l *Leaf) Present() int {
	n := 0
	for i := range l.PTEs {
		if l.PTEs[i].Present() {
			n++
		}
	}
	return n
}

// Clone returns a local, unprotected copy of the leaf.
func (l *Leaf) Clone() *Leaf {
	c := &Leaf{PTEs: l.PTEs}
	return c
}

// upper is an internal node. Level 2 nodes point at leaves; levels 3-4
// point at other uppers.
type upper struct {
	level  int
	tables [EntriesPerTable]*upper
	leaves [EntriesPerTable]*Leaf
}

// Stats tracks structural events for cost accounting by callers.
type Stats struct {
	// LocalUppers and LocalLeaves count locally-allocated table nodes.
	LocalUppers int
	LocalLeaves int
	// AttachedLeaves counts checkpointed leaves currently attached.
	AttachedLeaves int
	// LeafBreaks counts leaf copy-on-write events (protected leaf
	// copied to local memory because the OS updated a PTE).
	LeafBreaks int
}

// Tree is one process's page-table tree.
type Tree struct {
	root  *upper
	stats Stats
}

// NewTree returns an empty tree with a local root.
func NewTree() *Tree {
	t := &Tree{root: &upper{level: Levels}}
	t.stats.LocalUppers = 1
	return t
}

// Stats returns structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Lookup returns the PTE mapping va and whether a leaf covers va at all.
// The bool is false only when no leaf exists; a non-present PTE in an
// existing leaf returns (pte, true).
func (t *Tree) Lookup(va VirtAddr) (PTE, bool) {
	l := t.leaf(va)
	if l == nil {
		return PTE{}, false
	}
	return l.PTEs[index(va, 1)], true
}

// LeafFor returns the leaf covering va, or nil.
func (t *Tree) LeafFor(va VirtAddr) *Leaf { return t.leaf(va) }

func (t *Tree) leaf(va VirtAddr) *Leaf {
	n := t.root
	for lvl := Levels; lvl > 2; lvl-- {
		n = n.tables[index(va, lvl)]
		if n == nil {
			return nil
		}
	}
	return n.leaves[index(va, 2)]
}

// ensurePath walks to level 2, allocating upper nodes as needed, and
// returns the level-2 node.
func (t *Tree) ensurePath(va VirtAddr) *upper {
	n := t.root
	for lvl := Levels; lvl > 2; lvl-- {
		i := index(va, lvl)
		if n.tables[i] == nil {
			n.tables[i] = &upper{level: lvl - 1}
			t.stats.LocalUppers++
		}
		n = n.tables[i]
	}
	return n
}

// SetResult reports what Set had to do, so callers can charge costs.
type SetResult struct {
	// NewUppers is the number of upper nodes allocated.
	NewUppers int
	// NewLeaf is true if a local leaf was allocated.
	NewLeaf bool
	// BrokeLeaf is true if a protected leaf was copied to local memory
	// (leaf CoW) to permit the update.
	BrokeLeaf bool
	// Old is the previous entry value.
	Old PTE
}

// Set installs pte for va, allocating the path, and breaking protected
// leaves by copy. It returns what it did.
func (t *Tree) Set(va VirtAddr, pte PTE) SetResult {
	var res SetResult
	before := t.stats.LocalUppers
	l2 := t.ensurePath(va)
	res.NewUppers = t.stats.LocalUppers - before
	i2 := index(va, 2)
	leaf := l2.leaves[i2]
	switch {
	case leaf == nil:
		leaf = &Leaf{}
		l2.leaves[i2] = leaf
		t.stats.LocalLeaves++
		res.NewLeaf = true
	case leaf.Protected:
		// Leaf CoW: the checkpointed leaf stays pristine in CXL.
		local := leaf.Clone()
		l2.leaves[i2] = local
		if leaf.InCXL {
			t.stats.AttachedLeaves--
		}
		t.stats.LocalLeaves++
		t.stats.LeafBreaks++
		res.BrokeLeaf = true
		leaf = local
	}
	res.Old = leaf.PTEs[index(va, 1)]
	leaf.PTEs[index(va, 1)] = pte
	return res
}

// Clear removes the mapping for va (if any), breaking protected leaves.
func (t *Tree) Clear(va VirtAddr) SetResult {
	if l := t.leaf(va); l == nil || !l.PTEs[index(va, 1)].Present() {
		old := PTE{}
		if l != nil {
			old = l.PTEs[index(va, 1)]
		}
		return SetResult{Old: old}
	}
	return t.Set(va, PTE{})
}

// AttachLeaf links a checkpointed leaf into the tree at vaBase, which
// must be leaf-aligned. The slot must be empty: restore attaches into a
// fresh tree (§4.2.1).
func (t *Tree) AttachLeaf(vaBase VirtAddr, leaf *Leaf) error {
	if vaBase.LeafBase() != vaBase {
		return fmt.Errorf("pt: attach address %#x not leaf-aligned", uint64(vaBase))
	}
	if !leaf.Protected {
		return fmt.Errorf("pt: refusing to attach unprotected leaf at %#x", uint64(vaBase))
	}
	l2 := t.ensurePath(vaBase)
	i2 := index(vaBase, 2)
	if l2.leaves[i2] != nil {
		return fmt.Errorf("pt: leaf slot at %#x already populated", uint64(vaBase))
	}
	l2.leaves[i2] = leaf
	t.stats.AttachedLeaves++
	return nil
}

// MarkAccessed sets the Accessed bit in place — allowed even on
// protected CXL leaves, modelling the hardware walker updating A bits on
// checkpointed PTEs (§4.3). It reports whether the bit was newly set.
func (t *Tree) MarkAccessed(va VirtAddr) bool {
	l := t.leaf(va)
	if l == nil {
		return false
	}
	e := &l.PTEs[index(va, 1)]
	if !e.Present() || e.Flags.Has(Accessed) {
		return false
	}
	e.Flags |= Accessed
	return true
}

// MarkDirty sets Accessed|Dirty in place. Callers must only invoke it
// for genuinely writable mappings; stores through read-only mappings go
// through the fault path instead.
func (t *Tree) MarkDirty(va VirtAddr) {
	l := t.leaf(va)
	if l == nil {
		panic(fmt.Sprintf("pt: MarkDirty on unmapped address %#x", uint64(va)))
	}
	e := &l.PTEs[index(va, 1)]
	if !e.Present() || !e.Flags.Has(Writable) {
		panic(fmt.Sprintf("pt: MarkDirty through non-writable PTE at %#x", uint64(va)))
	}
	e.Flags |= Accessed | Dirty
}

// ClearABits clears the Accessed bit on every present entry, in place,
// including protected CXL leaves — the user-space interface CXLporter
// uses to re-estimate hot sets (§4.3). It returns the number of bits
// cleared.
func (t *Tree) ClearABits() int {
	n := 0
	t.Walk(func(va VirtAddr, l *Leaf, i int) {
		if l.PTEs[i].Flags.Has(Accessed) {
			l.PTEs[i].Flags &^= Accessed
			n++
		}
	})
	return n
}

// ClearDirtyBits clears the Dirty bit on every present entry, in place.
// Together with ClearABits it implements the "clear A/D after the first
// invocation" step of checkpoint shaping (paper §5). It returns the
// number of bits cleared.
func (t *Tree) ClearDirtyBits() int {
	n := 0
	t.Walk(func(va VirtAddr, l *Leaf, i int) {
		if l.PTEs[i].Flags.Has(Dirty) {
			l.PTEs[i].Flags &^= Dirty
			n++
		}
	})
	return n
}

// SetUserHot sets the UserHot software bit in place on the PTE for va
// (the user-identified hot page interface, §4.3).
func (t *Tree) SetUserHot(va VirtAddr) bool {
	l := t.leaf(va)
	if l == nil {
		return false
	}
	e := &l.PTEs[index(va, 1)]
	if !e.Present() {
		return false
	}
	e.Flags |= UserHot
	return true
}

// Walk visits every present PTE in ascending VA order.
func (t *Tree) Walk(fn func(va VirtAddr, leaf *Leaf, idx int)) {
	t.walkUpper(t.root, 0, fn)
}

func (t *Tree) walkUpper(n *upper, base uint64, fn func(VirtAddr, *Leaf, int)) {
	shift := uint(PageShift + 9*(n.level-1))
	if n.level == 2 {
		for i, l := range n.leaves {
			if l == nil {
				continue
			}
			leafBase := base | uint64(i)<<shift
			for j := range l.PTEs {
				if l.PTEs[j].Present() {
					fn(VirtAddr(leafBase|uint64(j)<<PageShift), l, j)
				}
			}
		}
		return
	}
	for i, c := range n.tables {
		if c != nil {
			t.walkUpper(c, base|uint64(i)<<shift, fn)
		}
	}
}

// WalkLeaves visits every leaf with its base address, in VA order.
func (t *Tree) WalkLeaves(fn func(base VirtAddr, leaf *Leaf)) {
	t.walkLeafUpper(t.root, 0, fn)
}

func (t *Tree) walkLeafUpper(n *upper, base uint64, fn func(VirtAddr, *Leaf)) {
	shift := uint(PageShift + 9*(n.level-1))
	if n.level == 2 {
		for i, l := range n.leaves {
			if l != nil {
				fn(VirtAddr(base|uint64(i)<<shift), l)
			}
		}
		return
	}
	for i, c := range n.tables {
		if c != nil {
			t.walkLeafUpper(c, base|uint64(i)<<shift, fn)
		}
	}
}

// Validate checks the tree's structural invariants, most importantly
// the rebase/protection contract: a protected leaf may only contain
// read-only CXL entries (a local frame or writable entry inside a
// protected leaf means a checkpoint was corrupted or a leaf-CoW was
// skipped). Tests call it after restore and fault storms.
func (t *Tree) Validate() error {
	var err error
	t.WalkLeaves(func(base VirtAddr, l *Leaf) {
		if err != nil {
			return
		}
		if !l.Protected {
			return
		}
		for i := range l.PTEs {
			e := l.PTEs[i]
			if !e.Present() {
				continue
			}
			if !e.Flags.Has(OnCXL) {
				err = fmt.Errorf("pt: protected leaf at %#x holds a non-CXL frame at slot %d",
					uint64(base), i)
				return
			}
			if e.Flags.Has(Writable) {
				err = fmt.Errorf("pt: protected leaf at %#x holds a writable entry at slot %d",
					uint64(base), i)
				return
			}
		}
	})
	return err
}

// CountPresent returns the number of present PTEs.
func (t *Tree) CountPresent() int {
	n := 0
	t.Walk(func(VirtAddr, *Leaf, int) { n++ })
	return n
}
