package pt

import "testing"

func BenchmarkSet(b *testing.B) {
	tr := NewTree()
	for i := 0; i < b.N; i++ {
		va := VirtAddr(uint64(i%(1<<20)) << PageShift)
		tr.Set(va, PTE{Flags: Present, PFN: int32(i)})
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := NewTree()
	const n = 1 << 16
	for i := 0; i < n; i++ {
		tr.Set(VirtAddr(i)<<PageShift, PTE{Flags: Present, PFN: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Lookup(VirtAddr(i%n) << PageShift); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkAttachLeaf(b *testing.B) {
	leaf := &Leaf{InCXL: true, Protected: true}
	for i := range leaf.PTEs {
		leaf.PTEs[i] = PTE{Flags: Present | OnCXL | CoW, PFN: int32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTree()
		for j := 0; j < 64; j++ {
			if err := tr.AttachLeaf(VirtAddr(j)*LeafSpan, leaf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkLeafBreak(b *testing.B) {
	leaf := &Leaf{InCXL: true, Protected: true}
	for i := range leaf.PTEs {
		leaf.PTEs[i] = PTE{Flags: Present | OnCXL | CoW, PFN: int32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTree()
		tr.AttachLeaf(0, leaf)
		res := tr.Set(0, PTE{Flags: Present | Writable, PFN: 1})
		if !res.BrokeLeaf {
			b.Fatal("no break")
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	tr := NewTree()
	const n = 1 << 16
	for i := 0; i < n; i++ {
		tr.Set(VirtAddr(i)<<PageShift, PTE{Flags: Present, PFN: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Walk(func(VirtAddr, *Leaf, int) { count++ })
		if count != n {
			b.Fatal("walk miscount")
		}
	}
}

func BenchmarkClearABits(b *testing.B) {
	tr := NewTree()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Set(VirtAddr(i)<<PageShift, PTE{Flags: Present, PFN: int32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			tr.MarkAccessed(VirtAddr(j) << PageShift)
		}
		tr.ClearABits()
	}
}
