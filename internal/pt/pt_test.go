package pt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndexGeometry(t *testing.T) {
	va := VirtAddr(0x7f1234567000)
	if va.PageBase() != va {
		t.Fatal("aligned address not its own page base")
	}
	if (va + 0xfff).PageBase() != va {
		t.Fatal("PageBase broken")
	}
	if va.LeafBase()%LeafSpan != 0 {
		t.Fatal("LeafBase not leaf-aligned")
	}
}

func TestSetLookup(t *testing.T) {
	tr := NewTree()
	va := VirtAddr(0x400000)
	if _, ok := tr.Lookup(va); ok {
		t.Fatal("empty tree returned a leaf")
	}
	// The root (level 4) pre-exists; levels 3 and 2 are allocated.
	res := tr.Set(va, PTE{Flags: Present | Writable, PFN: 7})
	if res.NewUppers != 2 || !res.NewLeaf {
		t.Fatalf("first set: uppers=%d newleaf=%v", res.NewUppers, res.NewLeaf)
	}
	e, ok := tr.Lookup(va)
	if !ok || !e.Present() || e.PFN != 7 {
		t.Fatalf("lookup = %+v ok=%v", e, ok)
	}
	// Neighbouring page in same leaf: no new structure.
	res = tr.Set(va+0x1000, PTE{Flags: Present, PFN: 8})
	if res.NewUppers != 0 || res.NewLeaf {
		t.Fatalf("second set allocated: %+v", res)
	}
}

func TestClear(t *testing.T) {
	tr := NewTree()
	va := VirtAddr(0x1000)
	tr.Set(va, PTE{Flags: Present, PFN: 3})
	res := tr.Clear(va)
	if !res.Old.Present() || res.Old.PFN != 3 {
		t.Fatalf("Clear returned old=%+v", res.Old)
	}
	if e, _ := tr.Lookup(va); e.Present() {
		t.Fatal("entry still present after clear")
	}
	// Clearing an absent entry is a no-op.
	res = tr.Clear(va)
	if res.Old.Present() {
		t.Fatal("second clear returned present old")
	}
}

func TestAttachLeaf(t *testing.T) {
	tr := NewTree()
	leaf := &Leaf{InCXL: true, Protected: true}
	leaf.PTEs[5] = PTE{Flags: Present | OnCXL | CoW, PFN: 42}
	base := VirtAddr(LeafSpan * 3)
	if err := tr.AttachLeaf(base, leaf); err != nil {
		t.Fatal(err)
	}
	e, ok := tr.Lookup(base + 5*0x1000)
	if !ok || e.PFN != 42 || !e.Flags.Has(OnCXL) {
		t.Fatalf("lookup through attached leaf = %+v ok=%v", e, ok)
	}
	if tr.Stats().AttachedLeaves != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestAttachLeafRejections(t *testing.T) {
	tr := NewTree()
	if err := tr.AttachLeaf(VirtAddr(0x1000), &Leaf{Protected: true}); err == nil {
		t.Fatal("unaligned attach accepted")
	}
	if err := tr.AttachLeaf(VirtAddr(0), &Leaf{}); err == nil {
		t.Fatal("unprotected attach accepted")
	}
	ok := &Leaf{Protected: true}
	if err := tr.AttachLeaf(VirtAddr(0), ok); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachLeaf(VirtAddr(0), ok); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestLeafCoWOnProtectedUpdate(t *testing.T) {
	tr := NewTree()
	shared := &Leaf{InCXL: true, Protected: true}
	shared.PTEs[0] = PTE{Flags: Present | OnCXL | CoW, PFN: 1}
	shared.PTEs[1] = PTE{Flags: Present | OnCXL | CoW, PFN: 2}
	tr.AttachLeaf(0, shared)

	res := tr.Set(0, PTE{Flags: Present | Writable, PFN: 99})
	if !res.BrokeLeaf {
		t.Fatal("protected update did not break leaf")
	}
	// The shared leaf is untouched.
	if shared.PTEs[0].PFN != 1 {
		t.Fatal("checkpointed leaf mutated")
	}
	// The tree sees the new value and the sibling survived the copy.
	if e, _ := tr.Lookup(0); e.PFN != 99 {
		t.Fatalf("entry = %+v", e)
	}
	if e, _ := tr.Lookup(0x1000); e.PFN != 2 {
		t.Fatalf("sibling = %+v", e)
	}
	st := tr.Stats()
	if st.LeafBreaks != 1 || st.AttachedLeaves != 0 || st.LocalLeaves != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Further updates don't break again.
	res = tr.Set(0x1000, PTE{Flags: Present, PFN: 100})
	if res.BrokeLeaf {
		t.Fatal("second update broke again")
	}
}

func TestABitUpdateInPlaceOnProtectedLeaf(t *testing.T) {
	tr := NewTree()
	shared := &Leaf{InCXL: true, Protected: true}
	shared.PTEs[0] = PTE{Flags: Present | OnCXL | CoW, PFN: 1}
	tr.AttachLeaf(0, shared)

	if !tr.MarkAccessed(0) {
		t.Fatal("MarkAccessed reported no change")
	}
	// The hardware A-bit update lands on the shared checkpointed leaf.
	if !shared.PTEs[0].Flags.Has(Accessed) {
		t.Fatal("A bit not set in place on protected leaf")
	}
	if tr.Stats().LeafBreaks != 0 {
		t.Fatal("A-bit update broke the leaf")
	}
	// Second access: already set.
	if tr.MarkAccessed(0) {
		t.Fatal("MarkAccessed set twice")
	}
}

func TestClearABits(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 10; i++ {
		tr.Set(VirtAddr(i*0x1000), PTE{Flags: Present | Accessed, PFN: int32(i)})
	}
	if n := tr.ClearABits(); n != 10 {
		t.Fatalf("cleared %d, want 10", n)
	}
	if n := tr.ClearABits(); n != 0 {
		t.Fatalf("second clear = %d", n)
	}
}

func TestMarkDirtyPanicsOnReadOnly(t *testing.T) {
	tr := NewTree()
	tr.Set(0, PTE{Flags: Present | CoW, PFN: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on MarkDirty through read-only PTE")
		}
	}()
	tr.MarkDirty(0)
}

func TestSetUserHot(t *testing.T) {
	tr := NewTree()
	tr.Set(0, PTE{Flags: Present, PFN: 1})
	if !tr.SetUserHot(0) {
		t.Fatal("SetUserHot failed on present entry")
	}
	if e, _ := tr.Lookup(0); !e.Flags.Has(UserHot) {
		t.Fatal("UserHot not set")
	}
	if tr.SetUserHot(0x1000) {
		t.Fatal("SetUserHot succeeded on absent entry")
	}
}

func TestWalkOrdering(t *testing.T) {
	tr := NewTree()
	addrs := []VirtAddr{0x7f0000000000, 0x1000, 0x400000, 0x7fffff000000, 0x2000}
	for i, va := range addrs {
		tr.Set(va, PTE{Flags: Present, PFN: int32(i)})
	}
	var seen []VirtAddr
	tr.Walk(func(va VirtAddr, _ *Leaf, _ int) { seen = append(seen, va) })
	if len(seen) != len(addrs) {
		t.Fatalf("walk visited %d, want %d", len(seen), len(addrs))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("walk out of order: %v", seen)
		}
	}
}

func TestCountPresent(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 100; i++ {
		tr.Set(VirtAddr(i)<<PageShift, PTE{Flags: Present, PFN: int32(i)})
	}
	tr.Clear(0)
	if got := tr.CountPresent(); got != 99 {
		t.Fatalf("CountPresent = %d", got)
	}
}

// TestSetLookupProperty: whatever is Set at distinct addresses is
// returned verbatim by Lookup, independent of insertion order.
func TestSetLookupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree()
		want := make(map[VirtAddr]PTE)
		for i := 0; i < 200; i++ {
			va := VirtAddr(rng.Uint64() & 0x7fffffffffff).PageBase()
			pte := PTE{Flags: Present | Flags(rng.Intn(4))<<1, PFN: int32(rng.Intn(1 << 20))}
			tr.Set(va, pte)
			want[va] = pte
		}
		for va, pte := range want {
			got, ok := tr.Lookup(va)
			if !ok || got != pte {
				return false
			}
		}
		return tr.CountPresent() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkLeaves(t *testing.T) {
	tr := NewTree()
	tr.Set(0, PTE{Flags: Present, PFN: 1})
	tr.Set(VirtAddr(LeafSpan*5), PTE{Flags: Present, PFN: 2})
	var bases []VirtAddr
	tr.WalkLeaves(func(base VirtAddr, _ *Leaf) { bases = append(bases, base) })
	if len(bases) != 2 || bases[0] != 0 || bases[1] != VirtAddr(LeafSpan*5) {
		t.Fatalf("leaf bases = %v", bases)
	}
}

func TestLeafClone(t *testing.T) {
	l := &Leaf{InCXL: true, Protected: true}
	l.PTEs[3] = PTE{Flags: Present, PFN: 9}
	c := l.Clone()
	if c.InCXL || c.Protected {
		t.Fatal("clone inherited residency flags")
	}
	if c.PTEs[3].PFN != 9 {
		t.Fatal("clone lost entries")
	}
	c.PTEs[3].PFN = 10
	if l.PTEs[3].PFN != 9 {
		t.Fatal("clone aliases original")
	}
}

func TestLeafPresent(t *testing.T) {
	l := &Leaf{}
	l.PTEs[0] = PTE{Flags: Present}
	l.PTEs[511] = PTE{Flags: Present}
	if got := l.Present(); got != 2 {
		t.Fatalf("Present = %d", got)
	}
}

func TestValidateProtectedLeafInvariant(t *testing.T) {
	tr := NewTree()
	good := &Leaf{InCXL: true, Protected: true}
	good.PTEs[0] = PTE{Flags: Present | OnCXL | CoW, PFN: 1}
	if err := tr.AttachLeaf(0, good); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Corrupt the checkpointed leaf with a local frame reference.
	good.PTEs[1] = PTE{Flags: Present, PFN: 2}
	if err := tr.Validate(); err == nil {
		t.Fatal("local frame in protected leaf accepted")
	}
	good.PTEs[1] = PTE{Flags: Present | OnCXL | Writable, PFN: 2}
	if err := tr.Validate(); err == nil {
		t.Fatal("writable entry in protected leaf accepted")
	}
}
