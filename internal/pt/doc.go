// Package pt implements 4-level radix page tables with the hardware and
// software PTE bits CXLfork's mechanisms rely on.
//
// Three properties distinguish these tables from an ordinary map:
//
//   - Access/Dirty bits: hardware page walks set A (and D on stores) in
//     place, even on write-protected checkpointed leaves stored in CXL
//     memory — that is how CXLfork's hybrid tiering keeps learning the
//     working set after checkpoint time (paper §4.3).
//
//   - Leaf attach: a restored process's tree can reference checkpointed
//     leaf tables that physically live in a CXL checkpoint arena and are
//     shared, read-only, by every clone on the fabric (§4.2.1, Fig. 5).
//
//   - Leaf copy-on-write: an OS attempt to modify a PTE inside a
//     protected attached leaf copies the whole 512-entry leaf to local
//     memory first, mirroring CXLfork's use of an unused PTE bit to trap
//     such updates (§4.2.1).
//
// The entry point is NewTree; lookups, hardware walks, and the leaf
// attach and copy-on-write paths are methods on Tree.
package pt
