// Package xray is the critical-path latency attribution engine
// (DESIGN.md §16). It consumes per-request component timings from the
// porter (and, independently, the trace span stream) and decomposes
// each request's end-to-end virtual-time latency into named blame
// components — porter queueing, CPU queueing, parent-uplink copy,
// replica failover probing, retry backoff, fabric transit and stream
// contention, restore/cold-init service, container provisioning, and
// execution — with the residual explicitly accounted.
//
// The engine aggregates three views:
//
//   - per-class blame tables (warm-start / fork-restore / scratch-cold,
//     or per-op for span-derived reports), each component with total,
//     share, mean, and max;
//   - a per-link / per-switch / per-device fabric heatmap fed by the
//     contention model's observer hook (fabric.Net.SetObserver);
//   - exemplars: the top-K worst requests per class with their trace
//     span IDs, so a P99 metric links directly to the trace behind it.
//
// Attribution is purely observational: the attributor never advances a
// clock, draws randomness, or schedules events, so enabling it cannot
// change any simulated result. A nil *Attributor is the disabled
// engine — every method is a nil-safe no-op, the same zero-overhead
// pattern trace.Tracer and telemetry.Registry use. Reports render and
// hash deterministically: all aggregation is over sorted keys, so the
// same run produces byte-identical output at any worker count.
package xray
