package xray

import (
	"fmt"
	"io"
	"strings"

	"cxlfork/internal/des"
)

// Report is a rendered attribution snapshot: per-class blame tables,
// the fabric heatmap, and exemplars. Every slice is sorted under a
// total order at construction, so marshaling and WriteText are
// byte-deterministic for a given run.
type Report struct {
	// Requests is the total observed request count across classes.
	Requests int64 `json:"requests"`
	// Classes holds one blame table per op class, sorted by class name.
	Classes []ClassBlame `json:"classes"`
	// Links is the per-link heatmap, most-contended link first. Empty
	// without a fabric topology.
	Links []LinkHeat `json:"links,omitempty"`
	// Switches aggregates link heat per switch, sorted by switch name.
	Switches []SwitchHeat `json:"switches,omitempty"`
	// Devices is per-device restore traffic, in pool index order.
	Devices []DeviceHeat `json:"devices,omitempty"`
	// UnattributedNS is restore blame (probes + backoff) accrued toward
	// requests that degraded to scratch cold starts — time the
	// restore-latency recorder drops, accounted here instead of lost.
	UnattributedNS int64 `json:"unattributed_ns"`
	// UnattributedCount is how many degraded requests carried such
	// blame.
	UnattributedCount int64 `json:"unattributed_count"`
}

// ClassBlame is one op class's latency decomposition.
type ClassBlame struct {
	// Class is the op class name (warm-start, fork-restore,
	// scratch-cold, or a span-derived op name).
	Class string `json:"class"`
	// Count is the number of requests observed in the class.
	Count int64 `json:"count"`
	// TotalNS is the summed end-to-end latency of the class.
	TotalNS int64 `json:"total_ns"`
	// ResidualNS is the summed per-request residual: latency minus the
	// component sum. Porter-fed decompositions are exact (residual 0);
	// span-derived ones carry the op time outside any phase here.
	ResidualNS int64 `json:"residual_ns"`
	// Components is the blame table, heaviest component first.
	Components []ComponentBlame `json:"components"`
	// Exemplars are the top-K worst requests of the class by latency.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// ComponentBlame is one component's aggregate within a class.
type ComponentBlame struct {
	// Component names the blame component.
	Component string `json:"component"`
	// TotalNS is the component's summed share across the class.
	TotalNS int64 `json:"total_ns"`
	// MaxNS is the largest single-request share observed.
	MaxNS int64 `json:"max_ns"`
	// Count is how many requests carried a nonzero share.
	Count int64 `json:"count"`
}

// Exemplar is one worst-case request: its latency, trace span, and
// full decomposition, linking the class's tail metric to the trace
// that caused it.
type Exemplar struct {
	// Seq is the attributor's observation sequence number.
	Seq int64 `json:"seq"`
	// Name labels the request (function name or op name).
	Name string `json:"name,omitempty"`
	// Span is the request's trace span ID (0 when tracing was off,
	// negative when the span was dropped).
	Span int `json:"span,omitempty"`
	// LatencyNS is the request's end-to-end virtual latency.
	LatencyNS int64 `json:"latency_ns"`
	// ArrivedNS is the request's arrival virtual time.
	ArrivedNS int64 `json:"arrived_ns"`
	// Components is the request's nonzero decomposition, in feed order.
	Components []Component `json:"components"`
	// ResidualNS is the request's latency minus its component sum.
	ResidualNS int64 `json:"residual_ns"`
}

// LinkHeat is one fabric link's contention aggregate.
type LinkHeat struct {
	// Link is the human label: both endpoint names, sorted, joined "-".
	Link string `json:"link"`
	// Switch is the link's owning switch (lexicographically first
	// switch endpoint).
	Switch string `json:"switch,omitempty"`
	// Transfers counts stream-slot claims on the link.
	Transfers int64 `json:"transfers"`
	// QueuedNS is cumulative slot queue delay on the link.
	QueuedNS int64 `json:"queued_ns"`
	// ServiceNS is cumulative page service time on the link.
	ServiceNS int64 `json:"service_ns"`
}

// SwitchHeat aggregates link heat per switch.
type SwitchHeat struct {
	// Switch is the switch's spec id.
	Switch string `json:"switch"`
	// Transfers counts stream-slot claims across the switch's links.
	Transfers int64 `json:"transfers"`
	// QueuedNS is cumulative slot queue delay across the switch's links.
	QueuedNS int64 `json:"queued_ns"`
	// ServiceNS is cumulative page service time across the switch's links.
	ServiceNS int64 `json:"service_ns"`
}

// DeviceHeat is one pool device's restore traffic.
type DeviceHeat struct {
	// Device is the device's spec id.
	Device string `json:"device"`
	// Restores counts restores attributed to the device.
	Restores int64 `json:"restores"`
	// FabricNS is cumulative fabric-transit blame on those restores.
	FabricNS int64 `json:"fabric_ns"`
}

// HottestLink returns the label of the most-contended link (largest
// cumulative queue delay), or "" when the report carries no heatmap.
func (r *Report) HottestLink() string {
	if r == nil || len(r.Links) == 0 {
		return ""
	}
	return r.Links[0].Link
}

// Class returns the named class's blame table, or nil.
func (r *Report) Class(name string) *ClassBlame {
	if r == nil {
		return nil
	}
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

func ns(v int64) string { return des.Time(v).String() }

// WriteText renders the report as the fixed-format blame table and
// heatmap `cxlstat -xray` and the serving layer share. The rendering
// is byte-deterministic for a given report.
func (r *Report) WriteText(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "xray: attribution disabled")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "xray: critical-path latency attribution\n")
	fmt.Fprintf(&b, "requests: %d", r.Requests)
	if r.UnattributedCount > 0 {
		fmt.Fprintf(&b, ", unattributed restore blame: %s across %d degraded request(s)",
			ns(r.UnattributedNS), r.UnattributedCount)
	}
	b.WriteByte('\n')

	for _, c := range r.Classes {
		fmt.Fprintf(&b, "\nclass %-14s count=%d total=%s residual=%s\n",
			c.Class, c.Count, ns(c.TotalNS), ns(c.ResidualNS))
		fmt.Fprintf(&b, "  %-16s %10s %7s %10s %10s\n", "component", "total", "share", "mean", "max")
		for _, comp := range c.Components {
			if comp.TotalNS == 0 {
				continue
			}
			share := 0.0
			if c.TotalNS > 0 {
				share = 100 * float64(comp.TotalNS) / float64(c.TotalNS)
			}
			mean := int64(0)
			if comp.Count > 0 {
				mean = comp.TotalNS / comp.Count
			}
			fmt.Fprintf(&b, "  %-16s %10s %6.1f%% %10s %10s\n",
				comp.Component, ns(comp.TotalNS), share, ns(mean), ns(comp.MaxNS))
		}
		if len(c.Exemplars) > 0 {
			fmt.Fprintf(&b, "  exemplars (top %d by latency):\n", len(c.Exemplars))
			for _, ex := range c.Exemplars {
				fmt.Fprintf(&b, "    #%d %s lat=%s span=%s", ex.Seq, ex.Name, ns(ex.LatencyNS), spanLabel(ex.Span))
				for _, comp := range ex.Components {
					fmt.Fprintf(&b, " %s=%s", comp.Name, ns(comp.NS))
				}
				if ex.ResidualNS != 0 {
					fmt.Fprintf(&b, " residual=%s", ns(ex.ResidualNS))
				}
				b.WriteByte('\n')
			}
		}
	}

	if len(r.Links) > 0 {
		fmt.Fprintf(&b, "\nlink heatmap (by queue delay):\n")
		fmt.Fprintf(&b, "  %-14s %-8s %9s %10s %10s\n", "link", "switch", "transfers", "queued", "service")
		for _, l := range r.Links {
			fmt.Fprintf(&b, "  %-14s %-8s %9d %10s %10s\n",
				l.Link, l.Switch, l.Transfers, ns(l.QueuedNS), ns(l.ServiceNS))
		}
	}
	if len(r.Switches) > 0 {
		fmt.Fprintf(&b, "switch heat:\n")
		for _, s := range r.Switches {
			fmt.Fprintf(&b, "  %-8s transfers=%d queued=%s service=%s\n",
				s.Switch, s.Transfers, ns(s.QueuedNS), ns(s.ServiceNS))
		}
	}
	if len(r.Devices) > 0 {
		fmt.Fprintf(&b, "device heat:\n")
		for _, d := range r.Devices {
			fmt.Fprintf(&b, "  %-8s restores=%d fabric=%s\n", d.Device, d.Restores, ns(d.FabricNS))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func spanLabel(span int) string {
	if span <= 0 {
		return "-"
	}
	return fmt.Sprintf("%d", span)
}

// Text renders WriteText into a string — the form the determinism
// tests and the serving layer's text mode use.
func (r *Report) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}

// Fingerprint hashes the report's text rendering with FNV-1a (the same
// construction porter.Results uses), for golden determinism pins.
func (r *Report) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range []byte(r.Text()) {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
