package xray

import "cxlfork/internal/trace"

// FromSpans builds an attribution report directly from a recorded span
// stream: every operation span (CatOp or CatPorter) becomes one
// request in its own class, decomposed into its direct phase
// children's durations, with the op time outside any phase carried as
// the residual. topK bounds per-class exemplars (DefaultExemplars
// when <= 0).
//
// This is the facade's trace-side view — mechanism-level checkpoint,
// restore, and fork ops with their serialize/copy/attach/dedup phases
// — complementary to the porter-fed per-request view, and rendered by
// the same Report machinery.
func FromSpans(events []trace.Event, topK int) *Report {
	a := New(nil, topK)
	for i, e := range events {
		if e.Cat != trace.CatOp && e.Cat != trace.CatPorter {
			continue
		}
		id := trace.SpanID(i + 1)
		// Merge repeated phase names (per-VMA copy rounds, per-leaf
		// attaches) into one component each, first-seen order.
		var comps []Component
		idx := map[string]int{}
		for _, child := range events[i+1:] {
			if child.Parent != id || child.Cat != trace.CatPhase {
				continue
			}
			if j, ok := idx[child.Name]; ok {
				comps[j].NS += int64(child.Dur)
				continue
			}
			idx[child.Name] = len(comps)
			comps = append(comps, Component{Name: child.Name, NS: int64(child.Dur)})
		}
		a.Observe(Request{
			Class:      e.Cat + "/" + e.Name,
			Name:       e.Name,
			Span:       int(id),
			Arrived:    int64(e.Begin),
			Latency:    int64(e.Dur),
			Device:     -1,
			Components: comps,
		})
	}
	return a.Report()
}
