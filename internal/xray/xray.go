package xray

import (
	"sort"

	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
)

// Canonical component names the porter feeds. Span-derived reports use
// phase names instead; the renderer treats both uniformly.
const (
	// CompPorterQueue is time spent queued in the porter before a spawn
	// or warm instance was available (lane/admission queueing).
	CompPorterQueue = "porter-queue"
	// CompUplink is the Mitosis parent-uplink remote copy, including
	// its stream-slot queueing.
	CompUplink = "uplink-copy"
	// CompCPUQueue is time spent waiting for a free core after the
	// spawn was placed.
	CompCPUQueue = "cpu-queue"
	// CompProbe is replica failover probing: dead devices probed ahead
	// of the first healthy replica.
	CompProbe = "failover-probe"
	// CompBackoff is capped-exponential retry backoff charged across
	// replica failovers and node-down retries.
	CompBackoff = "retry-backoff"
	// CompFabric is the fabric path latency and per-link stream
	// contention charged beyond the flat single-hop baseline.
	CompFabric = "fabric-transit"
	// CompRestore is the restore-phase device service: reading the
	// checkpoint's pages and attaching its tables.
	CompRestore = "restore-service"
	// CompColdInit is the scratch cold start's initialization service
	// (interpreter boot, module import, data load).
	CompColdInit = "cold-init"
	// CompContainer is container provisioning: a fresh container's
	// creation or a ghost container's trigger.
	CompContainer = "container"
	// CompExec is the function execution itself.
	CompExec = "exec"
)

// DefaultExemplars is the per-class exemplar count when a zero top-K
// is configured.
const DefaultExemplars = 5

// Component is one named share of a request's latency, in virtual
// nanoseconds.
type Component struct {
	// Name identifies the component (Comp* constants or a phase name).
	Name string `json:"name"`
	// NS is the component's virtual-time share in nanoseconds.
	NS int64 `json:"ns"`
}

// Request is one completed request's latency decomposition, as fed by
// the porter (or synthesized from a trace span). The component sum
// must equal Latency up to the residual, which the attributor computes
// and accounts explicitly — it never silently drops time.
type Request struct {
	// Class is the op class the request aggregates under (warm-start,
	// fork-restore, scratch-cold, or an op span name).
	Class string
	// Name labels the request (function name) in exemplars.
	Name string
	// Span is the request's trace span ID (0 or negative when tracing
	// was off or the span was dropped).
	Span int
	// Arrived is the request's arrival virtual time in nanoseconds —
	// the exemplar tie-breaker.
	Arrived int64
	// Latency is the end-to-end virtual latency in nanoseconds.
	Latency int64
	// Device is the pool device the restore read from, or -1.
	Device int
	// Components is the ordered decomposition; zero-valued entries are
	// permitted and aggregate as zero.
	Components []Component
	// UnattributedNS is restore blame (probe + backoff) accrued toward
	// a restore that then degraded to a scratch cold start — time the
	// restore-latency recorder silently drops, surfaced here instead.
	UnattributedNS int64
}

// Attributor accumulates request decompositions and fabric link heat
// into a deterministic Report. A nil Attributor is the disabled
// engine: every method no-ops and Report returns nil.
type Attributor struct {
	topo *fabric.Topology
	topK int

	seq     int64
	classes map[string]*classAgg
	links   map[int]*linkAgg
	devices map[int]*devAgg

	unattributedNS    int64
	unattributedCount int64
}

type classAgg struct {
	count      int64
	totalNS    int64
	residualNS int64
	comps      map[string]*compAgg
	exemplars  []Exemplar
}

type compAgg struct {
	totalNS int64
	maxNS   int64
	count   int64 // requests with a nonzero share
}

type linkAgg struct {
	transfers int64
	queuedNS  int64
	serviceNS int64
}

type devAgg struct {
	restores int64
	fabricNS int64
}

// New returns an enabled attributor. topo supplies link and switch
// labels for the fabric heatmap and may be nil (flat model: no
// heatmap). topK bounds per-class exemplars (DefaultExemplars when
// <= 0).
func New(topo *fabric.Topology, topK int) *Attributor {
	if topK <= 0 {
		topK = DefaultExemplars
	}
	return &Attributor{
		topo:    topo,
		topK:    topK,
		classes: make(map[string]*classAgg),
		links:   make(map[int]*linkAgg),
		devices: make(map[int]*devAgg),
	}
}

// Enabled reports whether attribution is on — the guard for any
// caller-side component capture beyond the Observe call itself.
func (a *Attributor) Enabled() bool { return a != nil }

// Observe folds one completed request into the aggregates. Safe on a
// nil attributor (no-op).
func (a *Attributor) Observe(r Request) {
	if a == nil {
		return
	}
	a.seq++
	c := a.classes[r.Class]
	if c == nil {
		c = &classAgg{comps: make(map[string]*compAgg)}
		a.classes[r.Class] = c
	}
	c.count++
	c.totalNS += r.Latency

	var sum int64
	for _, comp := range r.Components {
		sum += comp.NS
		ca := c.comps[comp.Name]
		if ca == nil {
			ca = &compAgg{}
			c.comps[comp.Name] = ca
		}
		ca.totalNS += comp.NS
		if comp.NS > 0 {
			ca.count++
		}
		if comp.NS > ca.maxNS {
			ca.maxNS = comp.NS
		}
	}
	residual := r.Latency - sum
	c.residualNS += residual

	if r.UnattributedNS > 0 {
		a.unattributedNS += r.UnattributedNS
		a.unattributedCount++
	}

	if r.Device >= 0 {
		d := a.devices[r.Device]
		if d == nil {
			d = &devAgg{}
			a.devices[r.Device] = d
		}
		d.restores++
		for _, comp := range r.Components {
			if comp.Name == CompFabric {
				d.fabricNS += comp.NS
			}
		}
	}

	// Exemplar insertion: keep the topK worst by (latency desc,
	// arrival asc, sequence asc) — a total order, so the kept set is
	// independent of observation batching.
	ex := Exemplar{
		Seq:        a.seq,
		Name:       r.Name,
		Span:       r.Span,
		LatencyNS:  r.Latency,
		ArrivedNS:  r.Arrived,
		ResidualNS: residual,
	}
	for _, comp := range r.Components {
		if comp.NS != 0 {
			ex.Components = append(ex.Components, comp)
		}
	}
	c.exemplars = append(c.exemplars, ex)
	sort.SliceStable(c.exemplars, func(i, j int) bool {
		ei, ej := c.exemplars[i], c.exemplars[j]
		if ei.LatencyNS != ej.LatencyNS {
			return ei.LatencyNS > ej.LatencyNS
		}
		if ei.ArrivedNS != ej.ArrivedNS {
			return ei.ArrivedNS < ej.ArrivedNS
		}
		return ei.Seq < ej.Seq
	})
	if len(c.exemplars) > a.topK {
		c.exemplars = c.exemplars[:a.topK]
	}
}

// ObserveLink folds one per-link stream-slot claim into the heatmap:
// wait is the slot queue delay, service the link's page service time.
// It is the fabric.Net observer callback; safe on a nil attributor.
func (a *Attributor) ObserveLink(link int, wait, service des.Time) {
	if a == nil {
		return
	}
	l := a.links[link]
	if l == nil {
		l = &linkAgg{}
		a.links[link] = l
	}
	l.transfers++
	l.queuedNS += int64(wait)
	l.serviceNS += int64(service)
}

// UnattributedNS reports the cumulative restore blame accrued toward
// degraded requests — the xray_unattributed counter's value. Safe on a
// nil attributor (0).
func (a *Attributor) UnattributedNS() int64 {
	if a == nil {
		return 0
	}
	return a.unattributedNS
}

// Report snapshots the aggregates into a deterministic, render-ready
// report. A nil attributor returns nil.
func (a *Attributor) Report() *Report {
	if a == nil {
		return nil
	}
	r := &Report{
		UnattributedNS:    a.unattributedNS,
		UnattributedCount: a.unattributedCount,
	}

	classNames := make([]string, 0, len(a.classes))
	for name := range a.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		c := a.classes[name]
		cb := ClassBlame{
			Class:      name,
			Count:      c.count,
			TotalNS:    c.totalNS,
			ResidualNS: c.residualNS,
			Exemplars:  append([]Exemplar(nil), c.exemplars...),
		}
		r.Requests += c.count
		for comp, agg := range c.comps {
			if agg.totalNS == 0 && agg.count == 0 {
				continue
			}
			cb.Components = append(cb.Components, ComponentBlame{
				Component: comp,
				TotalNS:   agg.totalNS,
				MaxNS:     agg.maxNS,
				Count:     agg.count,
			})
		}
		// Blame order: heaviest component first, name breaking ties.
		sort.Slice(cb.Components, func(i, j int) bool {
			ci, cj := cb.Components[i], cb.Components[j]
			if ci.TotalNS != cj.TotalNS {
				return ci.TotalNS > cj.TotalNS
			}
			return ci.Component < cj.Component
		})
		r.Classes = append(r.Classes, cb)
	}

	if a.topo != nil {
		linkIdx := make([]int, 0, len(a.links))
		for li := range a.links {
			linkIdx = append(linkIdx, li)
		}
		sort.Ints(linkIdx)
		switches := make(map[string]*linkAgg)
		for _, li := range linkIdx {
			l := a.links[li]
			sw := a.topo.LinkSwitch(li)
			r.Links = append(r.Links, LinkHeat{
				Link:      a.topo.LinkLabel(li),
				Switch:    sw,
				Transfers: l.transfers,
				QueuedNS:  l.queuedNS,
				ServiceNS: l.serviceNS,
			})
			sa := switches[sw]
			if sa == nil {
				sa = &linkAgg{}
				switches[sw] = sa
			}
			sa.transfers += l.transfers
			sa.queuedNS += l.queuedNS
			sa.serviceNS += l.serviceNS
		}
		// Heatmap order: most-contended link first.
		sort.SliceStable(r.Links, func(i, j int) bool {
			if r.Links[i].QueuedNS != r.Links[j].QueuedNS {
				return r.Links[i].QueuedNS > r.Links[j].QueuedNS
			}
			return r.Links[i].Link < r.Links[j].Link
		})
		swNames := make([]string, 0, len(switches))
		for sw := range switches {
			swNames = append(swNames, sw)
		}
		sort.Strings(swNames)
		for _, sw := range swNames {
			sa := switches[sw]
			r.Switches = append(r.Switches, SwitchHeat{
				Switch:    sw,
				Transfers: sa.transfers,
				QueuedNS:  sa.queuedNS,
				ServiceNS: sa.serviceNS,
			})
		}
		devIdx := make([]int, 0, len(a.devices))
		for d := range a.devices {
			devIdx = append(devIdx, d)
		}
		sort.Ints(devIdx)
		for _, d := range devIdx {
			da := a.devices[d]
			name := ""
			if d < a.topo.Devices() {
				name = a.topo.DeviceName(d)
			}
			r.Devices = append(r.Devices, DeviceHeat{
				Device:   name,
				Restores: da.restores,
				FabricNS: da.fabricNS,
			})
		}
	}
	return r
}
