package xray

import (
	"strings"
	"testing"

	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
	"cxlfork/internal/params"
	"cxlfork/internal/trace"
)

// twoSwitch mirrors the fabric package's canonical fixture: two hosts
// and two devices split across two switches joined by a trunk.
const twoSwitch = `
host h0
host h1
switch sw0
switch sw1
device d0
device d1
link h0 sw0
link h1 sw1
link d0 sw0
link d1 sw1
link sw0 sw1 lat=800ns bw=8 streams=2
`

func buildTopo(t *testing.T) *fabric.Topology {
	t.Helper()
	s, err := fabric.Parse(twoSwitch)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	topo, err := s.Build(params.Default())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return topo
}

func TestNilAttributorIsSafeAndDisabled(t *testing.T) {
	var a *Attributor
	if a.Enabled() {
		t.Fatal("nil attributor reports enabled")
	}
	a.Observe(Request{Class: "warm-start", Latency: 10})
	a.ObserveLink(0, 1, 2)
	if a.UnattributedNS() != 0 {
		t.Fatal("nil attributor accrued unattributed time")
	}
	if a.Report() != nil {
		t.Fatal("nil attributor produced a report")
	}
	var r *Report
	if r.HottestLink() != "" || r.Class("x") != nil {
		t.Fatal("nil report returned data")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "attribution disabled") {
		t.Fatalf("nil report rendering = %q", b.String())
	}
}

func TestObserveAggregatesAndResidual(t *testing.T) {
	a := New(nil, 0)
	a.Observe(Request{
		Class: "fork-restore", Name: "Cnn", Span: 3, Arrived: 100, Latency: 1000,
		Components: []Component{{CompPorterQueue, 200}, {CompRestore, 500}, {CompExec, 300}},
	})
	a.Observe(Request{
		Class: "fork-restore", Name: "Cnn", Span: 9, Arrived: 200, Latency: 900,
		Components: []Component{{CompPorterQueue, 100}, {CompRestore, 400}, {CompExec, 400}},
	})
	// A request whose components undershoot its latency carries residual.
	a.Observe(Request{
		Class: "scratch-cold", Name: "Json", Arrived: 50, Latency: 700,
		Components: []Component{{CompColdInit, 400}, {CompExec, 200}},
	})
	r := a.Report()
	if r.Requests != 3 {
		t.Fatalf("requests = %d, want 3", r.Requests)
	}
	fr := r.Class("fork-restore")
	if fr == nil || fr.Count != 2 || fr.TotalNS != 1900 || fr.ResidualNS != 0 {
		t.Fatalf("fork-restore blame = %+v", fr)
	}
	// Components sort heaviest first.
	if fr.Components[0].Component != CompRestore || fr.Components[0].TotalNS != 900 {
		t.Fatalf("heaviest component = %+v", fr.Components[0])
	}
	if fr.Components[0].MaxNS != 500 || fr.Components[0].Count != 2 {
		t.Fatalf("restore-service agg = %+v", fr.Components[0])
	}
	sc := r.Class("scratch-cold")
	if sc == nil || sc.ResidualNS != 100 {
		t.Fatalf("scratch-cold residual = %+v", sc)
	}
	if len(sc.Exemplars) != 1 || sc.Exemplars[0].ResidualNS != 100 {
		t.Fatalf("scratch-cold exemplar = %+v", sc.Exemplars)
	}
	// Classes sort by name.
	if r.Classes[0].Class != "fork-restore" || r.Classes[1].Class != "scratch-cold" {
		t.Fatalf("class order = %v, %v", r.Classes[0].Class, r.Classes[1].Class)
	}
}

func TestExemplarOrderAndCap(t *testing.T) {
	a := New(nil, 2)
	// Same latency: earlier arrival wins; then the worst two survive.
	a.Observe(Request{Class: "c", Name: "mid", Arrived: 30, Latency: 500})
	a.Observe(Request{Class: "c", Name: "worst", Arrived: 20, Latency: 900})
	a.Observe(Request{Class: "c", Name: "tie-late", Arrived: 40, Latency: 900})
	a.Observe(Request{Class: "c", Name: "small", Arrived: 10, Latency: 100})
	ex := a.Report().Class("c").Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplar count = %d, want 2", len(ex))
	}
	if ex[0].Name != "worst" || ex[1].Name != "tie-late" {
		t.Fatalf("exemplar order = %s, %s", ex[0].Name, ex[1].Name)
	}
}

func TestUnattributedAccounting(t *testing.T) {
	a := New(nil, 0)
	a.Observe(Request{Class: "scratch-cold", Latency: 100, UnattributedNS: 40})
	a.Observe(Request{Class: "scratch-cold", Latency: 100})
	if a.UnattributedNS() != 40 {
		t.Fatalf("unattributed = %d, want 40", a.UnattributedNS())
	}
	r := a.Report()
	if r.UnattributedNS != 40 || r.UnattributedCount != 1 {
		t.Fatalf("report unattributed = %d across %d", r.UnattributedNS, r.UnattributedCount)
	}
	if !strings.Contains(r.Text(), "unattributed restore blame") {
		t.Fatal("unattributed blame missing from rendering")
	}
}

func TestHeatmapFromTopology(t *testing.T) {
	topo := buildTopo(t)
	a := New(topo, 0)
	// Drive the trunk hot: links are indexed in spec order, the trunk
	// (sw0-sw1) is link 4.
	a.ObserveLink(4, 700*des.Nanosecond, 300*des.Nanosecond)
	a.ObserveLink(4, 500*des.Nanosecond, 300*des.Nanosecond)
	a.ObserveLink(0, 0, 100*des.Nanosecond)
	a.Observe(Request{
		Class: "fork-restore", Name: "Cnn", Latency: 1000, Device: 1,
		Components: []Component{{CompFabric, 600}, {CompRestore, 400}},
	})
	r := a.Report()
	if got := r.HottestLink(); got != "sw0-sw1" {
		t.Fatalf("hottest link = %q, want sw0-sw1", got)
	}
	if r.Links[0].Transfers != 2 || r.Links[0].QueuedNS != 1200 || r.Links[0].ServiceNS != 600 {
		t.Fatalf("trunk heat = %+v", r.Links[0])
	}
	if r.Links[0].Switch != "sw0" {
		t.Fatalf("trunk switch = %q, want sw0", r.Links[0].Switch)
	}
	if len(r.Switches) != 1 || r.Switches[0].Transfers != 3 {
		t.Fatalf("switch heat = %+v", r.Switches)
	}
	if len(r.Devices) != 1 || r.Devices[0].Device != "d1" || r.Devices[0].FabricNS != 600 {
		t.Fatalf("device heat = %+v", r.Devices)
	}
	text := r.Text()
	for _, want := range []string{"link heatmap", "sw0-sw1", "switch heat", "device heat"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestReportDeterministicAndFingerprint(t *testing.T) {
	build := func() *Report {
		topo := buildTopo(t)
		a := New(topo, 3)
		for i := 0; i < 10; i++ {
			a.Observe(Request{
				Class: "warm-start", Name: "Float", Span: i + 1,
				Arrived: int64(i * 10), Latency: int64(1000 - i),
				Components: []Component{{CompPorterQueue, int64(i)}, {CompExec, int64(1000 - 2*i)}},
			})
			a.ObserveLink(i%3, des.Time(i), des.Time(2*i))
		}
		return a.Report()
	}
	a, b := build(), build()
	if a.Text() != b.Text() {
		t.Fatal("identical feeds rendered differently")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical feeds fingerprinted differently")
	}
}

func TestWriteTextSkipsZeroComponentsAndLabelsSpans(t *testing.T) {
	a := New(nil, 0)
	a.Observe(Request{
		Class: "warm-start", Name: "Json", Span: 0, Latency: 100,
		Components: []Component{{CompPorterQueue, 0}, {CompExec, 100}},
	})
	text := a.Report().Text()
	if strings.Contains(text, CompPorterQueue) {
		t.Fatalf("zero component rendered:\n%s", text)
	}
	if !strings.Contains(text, "span=-") {
		t.Fatalf("untraced span not rendered as '-':\n%s", text)
	}
}

func TestFromSpans(t *testing.T) {
	events := []trace.Event{
		{Name: "restore", Cat: trace.CatOp, Begin: 0, Dur: 100},
		// Repeated phase names merge into one component.
		{Name: "copy", Cat: trace.CatPhase, Parent: 1, Begin: 0, Dur: 30},
		{Name: "copy", Cat: trace.CatPhase, Parent: 1, Begin: 30, Dur: 30},
		{Name: "attach", Cat: trace.CatPhase, Parent: 1, Begin: 60, Dur: 20},
		// Lane detail under a phase is not a direct op child: ignored.
		{Name: "lane", Cat: trace.CatLane, Parent: 2, Begin: 0, Dur: 30},
		// A second root op with no phases: pure residual.
		{Name: "checkpoint", Cat: trace.CatOp, Begin: 200, Dur: 50},
	}
	r := FromSpans(events, 0)
	if r.Requests != 2 {
		t.Fatalf("requests = %d, want 2", r.Requests)
	}
	restore := r.Class("op/restore")
	if restore == nil || restore.ResidualNS != 20 {
		t.Fatalf("op/restore = %+v", restore)
	}
	if len(restore.Components) != 2 || restore.Components[0].Component != "copy" || restore.Components[0].TotalNS != 60 {
		t.Fatalf("op/restore components = %+v", restore.Components)
	}
	ck := r.Class("op/checkpoint")
	if ck == nil || ck.ResidualNS != 50 || len(ck.Components) != 0 {
		t.Fatalf("op/checkpoint = %+v", ck)
	}
	if restore.Exemplars[0].Span != 1 {
		t.Fatalf("exemplar span = %d, want 1", restore.Exemplars[0].Span)
	}
}
