package replica

import (
	"fmt"
	"sort"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
	"cxlfork/internal/metrics"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
	"cxlfork/internal/telemetry"
)

// vnodesPerDevice is how many virtual nodes each device contributes to
// the placement ring. 16 keeps per-device load within a few percent of
// even for small pools while keeping ring walks cheap.
const vnodesPerDevice = 16

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString is FNV-1a over s — the placement hash (DESIGN.md §12).
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// ringPoint is one virtual node on the placement ring.
type ringPoint struct {
	hash uint64
	dev  int
}

// repairJob is a partially-built replica the repair loop resumes across
// ticks: the staged arena on the target device and the next token to
// copy.
type repairJob struct {
	dev   int
	arena *cxl.Arena
	next  int
}

// imageState is the manager's record of one replicated image. placed is
// the restore preference list; devices that failed stay on it — still
// costing a failover probe per restore — until repair brings the image
// back to full replication and prunes them. replicas holds the live
// arena per surviving device.
type imageState struct {
	key       string
	id        string
	mech      string
	tokens    []uint64
	metaBytes int64
	placed    []int
	replicas  map[int]*cxl.Arena
	gen       int
	repair    *repairJob
}

// Replica describes one entry of an image's preference list.
type Replica struct {
	// Dev is the pool device index.
	Dev int
	// Healthy reports whether the device still holds a live copy.
	Healthy bool
}

// Manager places sealed checkpoints on K pool devices and repairs the
// placement after device loss. It is not safe for concurrent use,
// matching the single-goroutine DES discipline.
type Manager struct {
	pool   *cxl.DevicePool
	eng    *des.Engine
	p      params.Params
	factor int
	ring   []ringPoint
	images map[string]*imageState

	// topo is the pool's fabric topology (nil on flat pools); locality
	// selects the "locality" placement policy, which reweights the
	// ring walk to spread replicas across switches and prefer devices
	// with low mean path cost (DESIGN.md §14).
	topo     *fabric.Topology
	locality bool

	// C tallies placement, failover, shed, repair, and loss events.
	C metrics.ReplicaCounters

	lossAt      des.Time
	pendingLoss bool
	converged   bool
	convergedAt des.Time
}

// New builds a manager over pool with replication factor
// p.ReplicationFactor, clamped to [1, pool.N()].
func New(pool *cxl.DevicePool, eng *des.Engine, p params.Params) *Manager {
	k := p.ReplicationFactor
	if k < 1 {
		k = 1
	}
	if k > pool.N() {
		k = pool.N()
	}
	m := &Manager{
		pool:     pool,
		eng:      eng,
		p:        p,
		factor:   k,
		images:   make(map[string]*imageState),
		topo:     pool.Topology(),
		locality: p.PlacementPolicy == "locality" && pool.Topology() != nil,
	}
	for d := 0; d < pool.N(); d++ {
		for v := 0; v < vnodesPerDevice; v++ {
			m.ring = append(m.ring, ringPoint{
				hash: hashString(fmt.Sprintf("%s#%d", pool.Device(d).Name(), v)),
				dev:  d,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].dev < m.ring[j].dev
	})
	return m
}

// Factor returns the configured replication factor (clamped to the
// pool size).
func (m *Manager) Factor() int { return m.factor }

// EffectiveFactor is the replication an image can actually reach right
// now: the configured factor, bounded by surviving devices.
func (m *Manager) EffectiveFactor() int {
	if h := m.pool.Healthy(); h < m.factor {
		return h
	}
	return m.factor
}

// ringOrder returns every pool device in ring-walk order starting at
// key's hash — the consistent-hash preference order.
func (m *Manager) ringOrder(key string) []int {
	h := hashString(key)
	start := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	out := make([]int, 0, m.pool.N())
	seen := make(map[int]bool, m.pool.N())
	for n := 0; n < len(m.ring) && len(out) < m.pool.N(); n++ {
		pt := m.ring[(start+n)%len(m.ring)]
		if !seen[pt.dev] {
			seen[pt.dev] = true
			out = append(out, pt.dev)
		}
	}
	return out
}

// load returns how many tracked images currently keep a replica on
// device d — the signal locality placement balances within a switch.
func (m *Manager) load(d int) int {
	n := 0
	for _, st := range m.images {
		if _, ok := st.replicas[d]; ok {
			n++
		}
	}
	return n
}

// placeOrder returns the device order to try for key once the seed
// devices (already chosen — the dedup-affinity ingest device on
// placement, the surviving replicas on repair) are accounted for.
// Policy "hash" is the pure ring walk. Policy "locality" greedily
// reorders the walk: devices on switches no seed or earlier pick has
// touched come first (replicas spread across failure/contention
// domains), then fewer resident replicas (restore storms split across
// a switch's devices instead of stacking on whichever device the ring
// favours), then lower mean host-path cost, keeping ring position on
// exact ties. All criteria are invariant under topology relabeling —
// switch names only gate membership of the used set, never ordering —
// so isomorphic specs place identically.
func (m *Manager) placeOrder(key string, seed []int) []int {
	ring := m.ringOrder(key)
	if !m.locality {
		return ring
	}
	used := make(map[string]bool)
	for _, d := range seed {
		if d >= 0 && d < m.pool.N() {
			used[m.topo.DeviceSwitch(d)] = true
		}
	}
	remaining := ring
	out := make([]int, 0, len(remaining))
	for len(remaining) > 0 {
		best := 0
		for i := 1; i < len(remaining); i++ {
			d, b := remaining[i], remaining[best]
			dUsed, bUsed := used[m.topo.DeviceSwitch(d)], used[m.topo.DeviceSwitch(b)]
			if dUsed != bUsed {
				if !dUsed {
					best = i
				}
				continue
			}
			if dl, bl := m.load(d), m.load(b); dl != bl {
				if dl < bl {
					best = i
				}
				continue
			}
			if dc, bc := m.topo.DeviceCost(d), m.topo.DeviceCost(b); dc < bc {
				best = i
			}
			// Exact tie: the earlier ring position wins (best stays).
		}
		d := remaining[best]
		used[m.topo.DeviceSwitch(d)] = true
		out = append(out, d)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// NearestHealthy returns the healthy replica device for key with the
// lowest path latency from host; -1 when key is unknown or every
// replica is gone. Equal-latency candidates are spread
// deterministically by (host, key) — equidistant replicas share the
// restore load instead of funnelling every restore onto the
// first-placed (ingest-affine) copy, which is what makes a sharded
// pool actually shard. Without a topology it degenerates to the first
// healthy entry of the preference list — the flat model's restore
// source.
func (m *Manager) NearestHealthy(key string, host int) int {
	st := m.images[key]
	if st == nil {
		return -1
	}
	var cands []int
	for _, d := range st.placed {
		if _, live := st.replicas[d]; !live || m.pool.Failed(d) {
			continue
		}
		if m.topo == nil {
			return d
		}
		switch {
		case len(cands) == 0 || m.topo.PathLat(host, d) == m.topo.PathLat(host, cands[0]):
			cands = append(cands, d)
		case m.topo.PathLat(host, d) < m.topo.PathLat(host, cands[0]):
			cands = append(cands[:0], d)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[(uint64(host)+hashString(key))%uint64(len(cands))]
}

// sortedKeys returns the image keys in sorted order, the deterministic
// iteration every pass uses.
func (m *Manager) sortedKeys() []string {
	keys := make([]string, 0, len(m.images))
	for k := range m.images {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Place replicates a sealed checkpoint onto up to Factor() devices and
// returns the replicated image. tokens are the checkpoint's data-frame
// content tokens (replayed through each device's dedup index) and
// metaBytes its metadata footprint. affinity lists devices to prefer
// ahead of the ring walk — the ingest device, whose identical frames
// make the first replica free. Devices that are failed or full are
// skipped; the image proceeds under-replicated (repair catches it up)
// as long as at least one replica lands, and errors otherwise.
func (m *Manager) Place(key, id, mech string, tokens []uint64, metaBytes int64, affinity ...int) (*Image, error) {
	if _, ok := m.images[key]; ok {
		return nil, fmt.Errorf("replica: image %q already placed", key)
	}
	st := &imageState{
		key:       key,
		id:        id,
		mech:      mech,
		tokens:    append([]uint64(nil), tokens...),
		metaBytes: metaBytes,
		replicas:  make(map[int]*cxl.Arena),
	}
	order := make([]int, 0, m.pool.N())
	seen := make(map[int]bool, m.pool.N())
	for _, d := range affinity {
		if d >= 0 && d < m.pool.N() && !seen[d] {
			seen[d] = true
			order = append(order, d)
		}
	}
	for _, d := range m.placeOrder(key, order) {
		if !seen[d] {
			seen[d] = true
			order = append(order, d)
		}
	}
	for _, d := range order {
		if len(st.placed) >= m.factor {
			break
		}
		if m.pool.Failed(d) {
			continue
		}
		m.buildReplica(st, d)
	}
	if len(st.placed) == 0 {
		return nil, fmt.Errorf("replica: no device could hold image %q: %w", key, cxl.ErrDeviceFull)
	}
	m.images[key] = st
	m.C.Placed.Add(int64(len(st.placed)))
	return &Image{m: m, st: st, refs: rfork.NewRefCount()}, nil
}

// buildReplica creates one complete sealed replica of st on device d,
// rolling back the staged arena on any failure.
func (m *Manager) buildReplica(st *imageState, d int) bool {
	dev := m.pool.Device(d)
	st.gen++
	arena, err := dev.NewArena(fmt.Sprintf("%s@%s#g%d", st.id, dev.Name(), st.gen))
	if err != nil {
		return false
	}
	for _, tok := range st.tokens {
		f, _, err := dev.AllocToken(tok)
		if err != nil {
			arena.Release()
			return false
		}
		arena.TrackFrame(f)
	}
	if _, err := arena.Alloc("replica-meta", st.metaBytes); err != nil {
		arena.Release()
		return false
	}
	if err := arena.Seal(); err != nil {
		arena.Release()
		return false
	}
	st.replicas[d] = arena
	st.placed = append(st.placed, d)
	return true
}

// Len returns the number of tracked images.
func (m *Manager) Len() int { return len(m.images) }

// Replicas returns key's preference list in placement order, flagging
// which entries are still healthy. Nil when key is unknown.
func (m *Manager) Replicas(key string) []Replica {
	st := m.images[key]
	if st == nil {
		return nil
	}
	out := make([]Replica, 0, len(st.placed))
	for _, d := range st.placed {
		_, live := st.replicas[d]
		out = append(out, Replica{Dev: d, Healthy: live && !m.pool.Failed(d)})
	}
	return out
}

// Probe reports key's restore prospects: how many healthy replicas
// survive, and how many dead devices a restore must probe (and time
// out on) before reaching the first healthy one.
func (m *Manager) Probe(key string) (healthy, deadAhead int) {
	st := m.images[key]
	if st == nil {
		return 0, 0
	}
	healthy = len(st.replicas)
	for _, d := range st.placed {
		if _, live := st.replicas[d]; live {
			break
		}
		deadAhead++
	}
	return healthy, deadAhead
}

// OnDeviceLoss prunes every replica that lived on the lost device and
// opens the repair window. The arenas are not released — the device is
// gone, and its occupancy with it. Images whose last replica was on dev
// are lost outright; they stay tracked until the owner releases them,
// but every Probe reports zero healthy copies.
func (m *Manager) OnDeviceLoss(dev int) {
	m.pendingLoss = true
	m.converged = false
	m.lossAt = m.eng.Now()
	for _, key := range m.sortedKeys() {
		st := m.images[key]
		if st.repair != nil && st.repair.dev == dev {
			st.repair = nil
		}
		if _, ok := st.replicas[dev]; ok {
			delete(st.replicas, dev)
			if len(st.replicas) == 0 {
				m.C.LostImages.Inc()
			}
		}
	}
}

// Shed drops key's least-preferred healthy replica to relieve capacity
// pressure. It refuses — returning false — when the image has one or
// zero healthy copies: shedding never removes the last healthy copy.
func (m *Manager) Shed(key string) bool {
	st := m.images[key]
	if st == nil {
		return false
	}
	for i := len(st.placed) - 1; i >= 0; i-- {
		if _, live := st.replicas[st.placed[i]]; live {
			return m.ShedOn(key, st.placed[i])
		}
	}
	return false
}

// ShedOn drops key's replica on device dev, under the same
// last-healthy-copy refusal as Shed.
func (m *Manager) ShedOn(key string, dev int) bool {
	st := m.images[key]
	if st == nil || len(st.replicas) <= 1 {
		return false
	}
	a, ok := st.replicas[dev]
	if !ok || m.pool.Failed(dev) {
		return false
	}
	delete(st.replicas, dev)
	for i, d := range st.placed {
		if d == dev {
			st.placed = append(st.placed[:i], st.placed[i+1:]...)
			break
		}
	}
	a.Release()
	m.C.Shed.Inc()
	return true
}

// SheddableOn reports whether key has a healthy replica on dev that
// Shed could legally drop (more than one healthy copy).
func (m *Manager) SheddableOn(key string, dev int) bool {
	st := m.images[key]
	if st == nil || len(st.replicas) <= 1 || m.pool.Failed(dev) {
		return false
	}
	_, ok := st.replicas[dev]
	return ok
}

// UnderReplication returns the total replica deficit: for every image
// that still has at least one healthy copy, how many more replicas the
// effective factor calls for. Images with zero copies are lost, not
// under-replicated — no amount of repair brings them back.
func (m *Manager) UnderReplication() int {
	want := m.EffectiveFactor()
	total := 0
	for _, st := range m.images {
		if h := len(st.replicas); h >= 1 && h < want {
			total += want - h
		}
	}
	return total
}

// RepairTick runs one anti-entropy pass: copy up to
// p.RepairBandwidthPages pages toward rebuilding under-replicated
// images, resuming partial replicas from previous ticks, in sorted key
// order for determinism. It returns the pages copied. When the pass
// (or any earlier one) has driven the deficit to zero after a loss,
// convergence is timestamped.
func (m *Manager) RepairTick() int {
	budget := m.p.RepairBandwidthPages
	if budget <= 0 {
		budget = 1
	}
	want := m.EffectiveFactor()
	copied := 0
	for _, key := range m.sortedKeys() {
		if copied >= budget {
			break
		}
		st := m.images[key]
		for len(st.replicas) >= 1 && len(st.replicas) < want && copied < budget {
			if st.repair == nil && !m.startRepair(st) {
				break
			}
			n, ok := m.advanceRepair(st, budget-copied)
			copied += n
			if !ok || st.repair != nil {
				break
			}
		}
	}
	m.C.RepairedPages.Add(int64(copied))
	if m.pendingLoss && m.UnderReplication() == 0 {
		m.pendingLoss = false
		m.converged = true
		m.convergedAt = m.eng.Now()
	}
	return copied
}

// startRepair stages a new replica arena for st on the first
// placement-order device (ring walk, locality-reweighted when the
// policy asks — seeded with the surviving copies so the rebuilt
// replica lands on an uncovered switch) that is healthy and not
// already hosting a copy.
func (m *Manager) startRepair(st *imageState) bool {
	live := make([]int, 0, len(st.replicas))
	for d := range st.replicas {
		live = append(live, d)
	}
	sort.Ints(live)
	for _, d := range m.placeOrder(st.key, live) {
		if m.pool.Failed(d) {
			continue
		}
		if _, ok := st.replicas[d]; ok {
			continue
		}
		dev := m.pool.Device(d)
		st.gen++
		arena, err := dev.NewArena(fmt.Sprintf("%s@%s#g%d", st.id, dev.Name(), st.gen))
		if err != nil {
			continue
		}
		st.repair = &repairJob{dev: d, arena: arena}
		return true
	}
	return false
}

// advanceRepair copies up to budget pages of st's in-flight repair. It
// returns the pages copied and whether the job is still viable: a
// device that fills mid-copy rolls the staged arena back (false), and
// the next tick retries from scratch. A completed replica is sealed,
// registered, and — once the image is back at full replication — the
// dead devices are pruned from its preference list.
func (m *Manager) advanceRepair(st *imageState, budget int) (int, bool) {
	job := st.repair
	dev := m.pool.Device(job.dev)
	copied := 0
	for job.next < len(st.tokens) && copied < budget {
		f, _, err := dev.AllocToken(st.tokens[job.next])
		if err != nil {
			job.arena.Release()
			st.repair = nil
			return copied, false
		}
		job.arena.TrackFrame(f)
		job.next++
		copied++
	}
	if job.next < len(st.tokens) {
		return copied, true // budget exhausted; resume next tick
	}
	if _, err := job.arena.Alloc("replica-meta", st.metaBytes); err != nil {
		job.arena.Release()
		st.repair = nil
		return copied, false
	}
	if err := job.arena.Seal(); err != nil {
		job.arena.Release()
		st.repair = nil
		return copied, false
	}
	st.replicas[job.dev] = job.arena
	st.placed = append(st.placed, job.dev)
	st.repair = nil
	m.C.RepairCopies.Inc()
	m.C.Placed.Inc()
	if len(st.replicas) >= m.EffectiveFactor() {
		live := st.placed[:0]
		for _, d := range st.placed {
			if !m.pool.Failed(d) {
				live = append(live, d)
			}
		}
		st.placed = live
	}
	return copied, true
}

// RepairPending reports whether a device loss has happened whose repair
// has not yet converged.
func (m *Manager) RepairPending() bool { return m.pendingLoss }

// ConvergenceTime returns how long the last repair took from device
// loss to a zero deficit, and whether such a convergence has happened.
func (m *Manager) ConvergenceTime() (des.Time, bool) {
	if !m.converged {
		return 0, false
	}
	return m.convergedAt - m.lossAt, true
}

// drop forgets st and releases every live arena it still owns,
// including a staged repair arena. Called by the image's last Release.
func (m *Manager) drop(st *imageState) {
	if m.images[st.key] != st {
		return
	}
	delete(m.images, st.key)
	if st.repair != nil {
		if !m.pool.Failed(st.repair.dev) {
			st.repair.arena.Release()
		}
		st.repair = nil
	}
	devs := make([]int, 0, len(st.replicas))
	for d := range st.replicas {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		if !m.pool.Failed(d) {
			st.replicas[d].Release()
		}
	}
	st.replicas = nil
	st.placed = nil
}

// RegisterTelemetry registers the manager's replication series.
func (m *Manager) RegisterTelemetry(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("replica_images", "images tracked by the replication manager",
		func(des.Time) float64 { return float64(len(m.images)) })
	reg.Gauge("replica_under_replicated", "total replica deficit across images with a surviving copy",
		func(des.Time) float64 { return float64(m.UnderReplication()) })
	reg.CounterFunc("replica_placed_total", "replica arenas created by placement and repair",
		func(des.Time) float64 { return float64(m.C.Placed.Value()) })
	reg.CounterFunc("replica_failovers_total", "restores served by a non-preferred replica",
		func(des.Time) float64 { return float64(m.C.Failovers.Value()) })
	reg.CounterFunc("replica_shed_total", "replicas dropped by capacity pressure",
		func(des.Time) float64 { return float64(m.C.Shed.Value()) })
	reg.CounterFunc("replica_repair_copies_total", "replicas rebuilt by the anti-entropy repair loop",
		func(des.Time) float64 { return float64(m.C.RepairCopies.Value()) })
	reg.CounterFunc("replica_repaired_pages_total", "pages copied by the repair loop",
		func(des.Time) float64 { return float64(m.C.RepairedPages.Value()) })
	reg.CounterFunc("replica_lost_images_total", "images lost with their last replica's device",
		func(des.Time) float64 { return float64(m.C.LostImages.Value()) })
}

// Image is a K-replicated checkpoint. It implements rfork.Image —
// CXLBytes and Pages describe the single-copy declared footprint, the
// figure restore cost models care about — plus the capacity manager's
// dedup-aware and snapshot interfaces. The last Release drops every
// healthy replica and the manager's record.
type Image struct {
	m    *Manager
	st   *imageState
	refs rfork.RefCount
}

var _ rfork.Image = (*Image)(nil)

// ID returns the checkpoint ID.
func (im *Image) ID() string { return im.st.id }

// Mechanism names the mechanism that produced the checkpoint.
func (im *Image) Mechanism() string { return im.st.mech }

// Key returns the placement key.
func (im *Image) Key() string { return im.st.key }

// CXLBytes is the single-copy declared device footprint: data pages
// plus metadata, ignoring both dedup sharing and extra replicas.
func (im *Image) CXLBytes() int64 {
	return int64(len(im.st.tokens))*int64(im.m.p.PageSize) + im.st.metaBytes
}

// LocalBytes is zero: replicated images pin no parent-node memory.
func (im *Image) LocalBytes() int64 { return 0 }

// Pages is the number of checkpointed data pages (single copy).
func (im *Image) Pages() int { return len(im.st.tokens) }

// Retain adds a reference.
func (im *Image) Retain() { im.refs.Retain() }

// Release drops a reference; at zero every healthy replica is released
// and the manager forgets the image.
func (im *Image) Release() {
	if !im.refs.Release() {
		return
	}
	im.m.drop(im.st)
}

// Refs returns the current reference count.
func (im *Image) Refs() int { return im.refs.Count() }

// ReclaimableBytes is the device occupancy delta releasing the image
// would produce across surviving devices: each healthy replica's arena
// metadata plus its exclusive frames.
func (im *Image) ReclaimableBytes() int64 {
	var n int64
	for d, a := range im.st.replicas {
		if !im.m.pool.Failed(d) {
			n += a.ExclusiveBytes()
		}
	}
	return n
}

// FrameTokens returns the checkpoint's content tokens (the capacity
// manager's re-publication snapshot).
func (im *Image) FrameTokens() []uint64 {
	return append([]uint64(nil), im.st.tokens...)
}

// MetaBytes returns the checkpoint's metadata footprint.
func (im *Image) MetaBytes() int64 { return im.st.metaBytes }
