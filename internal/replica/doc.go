// Package replica places sealed checkpoints on K devices of the CXL
// pool and keeps them restorable across permanent device loss.
//
// Placement is consistent-hash with dedup affinity (DESIGN.md §12):
// each image's preference list starts with its affine devices — the
// ingest device already holding identical frames, where a replica costs
// no new capacity — and continues around a virtual-node hash ring, so
// the K copies land on K distinct devices and the mapping moves
// minimally when the pool changes. Restores walk the preference list in
// order; the porter charges a failover probe for every dead device
// ahead of the first healthy replica.
//
// After a DeviceLoss fault, an anti-entropy repair loop re-replicates
// the survivors: each virtual-time tick copies at most a bandwidth
// budget of pages, resuming partially-built replicas across ticks,
// until no image with a surviving copy is below the effective
// replication factor. Under-replication is telemetry-visible the whole
// way, and convergence (deficit back to zero) is timestamped for the
// chaos experiment's repair-time report.
//
// Two invariants bind the capacity manager: shedding a replica for
// capacity pressure never removes the last healthy copy, and new
// checkpoint admissions at the high watermark wait until repair has
// restored full replication.
package replica
