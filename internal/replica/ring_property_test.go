package replica

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/fabric"
	"cxlfork/internal/params"
)

// ringManager builds a bare manager over an n-device flat pool — just
// enough state to interrogate the consistent-hash ring.
func ringManager(t testing.TB, n, rf int) *Manager {
	t.Helper()
	p := params.Default()
	p.CXLBytes = 16 << 30
	p.CXLDevices = n
	p.ReplicationFactor = rf
	return New(cxl.NewDevicePool(p, n), des.NewEngine(), p)
}

// localityManager builds a manager over a placed multi-switch grid.
func localityManager(t testing.TB, spec string, rf int, policy string) *Manager {
	t.Helper()
	p := params.Default()
	p.CXLBytes = 16 << 30
	p.ReplicationFactor = rf
	p.PlacementPolicy = policy
	topo := fabric.MustBuild(spec, p)
	p.CXLDevices = topo.Devices()
	pool := cxl.NewDevicePool(p, topo.Devices())
	if err := pool.Place(topo); err != nil {
		t.Fatal(err)
	}
	return New(pool, des.NewEngine(), p)
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// TestRingChurnBounded is the consistent-hashing contract: growing the
// pool by one device must not reshuffle existing devices — for every
// key, the old preference order must reappear as a subsequence of the
// new one (the new device only inserts itself; nothing else moves).
func TestRingChurnBounded(t *testing.T) {
	for n := 2; n <= 7; n++ {
		small, big := ringManager(t, n, 2), ringManager(t, n+1, 2)
		prop := func(key string) bool {
			old, grown := small.ringOrder(key), big.ringOrder(key)
			j := 0
			for _, d := range grown {
				if d == n {
					continue // the added device may appear anywhere
				}
				if d != old[j] {
					return false
				}
				j++
			}
			return j == len(old)
		}
		if err := quick.Check(prop, quickCfg(int64(n))); err != nil {
			t.Fatalf("n=%d→%d: %v", n, n+1, err)
		}
	}
}

// TestRingRemovalChurnBounded is the shrink direction, checked through
// the walk itself: dropping a device from the preference list must not
// reorder the survivors. (Removing a device's ring points can only
// delete its entries from any key's walk.)
func TestRingRemovalChurnBounded(t *testing.T) {
	m := ringManager(t, 6, 2)
	prop := func(key string, drop uint8) bool {
		gone := int(drop) % 6
		full := m.ringOrder(key)
		var want []int
		for _, d := range full {
			if d != gone {
				want = append(want, d)
			}
		}
		// A pool without the device: survivors keep ring names cxl0..,
		// so rebuild with 5 devices only when dropping the last index —
		// otherwise filter the walk, which is what failover does.
		if gone == 5 {
			got := ringManager(t, 5, 2).ringOrder(key)
			return reflect.DeepEqual(got, want)
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(11)); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceNeverDoublesUp places random images at every factor and
// checks no device ever holds two copies of the same image.
func TestPlaceNeverDoublesUp(t *testing.T) {
	for _, pol := range []string{"hash", "locality"} {
		for rf := 1; rf <= 4; rf++ {
			m := localityManager(t, fabric.GridSpec(4, 2, 6), rf, pol)
			i := 0
			prop := func(key string, salt uint64, affinity uint8) bool {
				i++
				toks := make([]uint64, 64)
				for j := range toks {
					toks[j] = salt ^ uint64(i)<<32 ^ uint64(j)
				}
				k := keyN(key, i)
				img, err := m.Place(k, k+"-id", "CXLfork", toks, 4096, int(affinity)%6)
				if err != nil {
					return false
				}
				seen := map[int]bool{}
				for _, r := range img.m.images[img.st.key].placed {
					if seen[r] {
						return false
					}
					seen[r] = true
				}
				return len(seen) <= rf
			}
			if err := quick.Check(prop, quickCfg(int64(rf))); err != nil {
				t.Fatalf("pol=%s rf=%d: %v", pol, rf, err)
			}
		}
	}
}

// keyN disambiguates quick's occasionally-colliding random strings.
func keyN(key string, i int) string { return key + "#" + string(rune('a'+i%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestPlaceOrderRelabelInvariant feeds random keys through placeOrder
// on two isomorphic grids whose node names differ and demands identical
// device-index preference orders: the ring hashes pool device names,
// and every locality criterion is structural, so spelling must never
// leak into placement.
func TestPlaceOrderRelabelInvariant(t *testing.T) {
	grid := fabric.GridSpec(4, 2, 6)
	relabeled := renameGrid(grid)
	for _, pol := range []string{"hash", "locality"} {
		a := localityManager(t, grid, 2, pol)
		b := localityManager(t, relabeled, 2, pol)
		prop := func(key string, seed uint8) bool {
			s := []int{int(seed) % 6}
			return reflect.DeepEqual(a.placeOrder(key, s), b.placeOrder(key, s))
		}
		if err := quick.Check(prop, quickCfg(23)); err != nil {
			t.Fatalf("pol=%s: %v", pol, err)
		}
	}
}

// renameGrid rewrites every node id of a GridSpec output, preserving
// declaration order and structure.
func renameGrid(spec string) string {
	id := func(s string) string { return "node_x" + s + "_y" }
	var out []string
	for _, line := range strings.Split(spec, "\n") {
		f := strings.Fields(line)
		switch {
		case len(f) >= 2 && (f[0] == "host" || f[0] == "switch" || f[0] == "device"):
			f[1] = id(f[1])
		case len(f) >= 3 && f[0] == "link":
			f[1], f[2] = id(f[1]), id(f[2])
		}
		out = append(out, strings.Join(f, " "))
	}
	return strings.Join(out, "\n")
}

// TestNearestHealthySpreadsTies routes one key from every host and
// checks equal-latency replicas share the load rather than funnelling
// onto the first-placed copy.
func TestNearestHealthySpreadsTies(t *testing.T) {
	// One switch, four devices: every replica is equidistant from every
	// host, so ties are the common case, not the corner.
	m := localityManager(t, fabric.GridSpec(8, 1, 4), 4, "hash")
	toks := make([]uint64, 32)
	for i := range toks {
		toks[i] = uint64(i) << 8
	}
	if _, err := m.Place("spread/key", "spread-id", "CXLfork", toks, 4096, 0); err != nil {
		t.Fatal(err)
	}
	hit := map[int]bool{}
	for h := 0; h < 8; h++ {
		d := m.NearestHealthy("spread/key", h)
		if d < 0 {
			t.Fatalf("host %d found no replica", h)
		}
		hit[d] = true
	}
	if len(hit) < 2 {
		t.Fatalf("all hosts funnelled onto one device: %v", hit)
	}
}
