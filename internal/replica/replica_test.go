package replica

import (
	"testing"

	"cxlfork/internal/cxl"
	"cxlfork/internal/des"
	"cxlfork/internal/params"
)

// harness builds a pool of n devices and a manager with replication
// factor k over a small device geometry.
func harness(t *testing.T, n, k int) (*cxl.DevicePool, *des.Engine, *Manager) {
	t.Helper()
	p := params.Default()
	p.CXLBytes = 3 << 20
	p.ReplicationFactor = k
	p.RepairBandwidthPages = 8
	eng := des.NewEngine()
	pool := cxl.NewDevicePool(p, n)
	return pool, eng, New(pool, eng, p)
}

func tokens(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

func TestPlacementIsDeterministicAndSpreads(t *testing.T) {
	_, _, m1 := harness(t, 3, 2)
	_, _, m2 := harness(t, 3, 2)
	for _, key := range []string{"u/a", "u/b", "u/c", "u/d"} {
		if got, want := m1.ringOrder(key), m2.ringOrder(key); len(got) != len(want) {
			t.Fatalf("ring order lengths differ for %q", key)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ring order for %q diverges: %v vs %v", key, got, want)
				}
			}
		}
	}

	img, err := m1.Place("u/a", "cid-a", "cxlfork", tokens(100, 4), 512)
	if err != nil {
		t.Fatal(err)
	}
	reps := m1.Replicas("u/a")
	if len(reps) != 2 {
		t.Fatalf("placed %d replicas, want 2", len(reps))
	}
	if reps[0].Dev == reps[1].Dev {
		t.Fatal("both replicas on the same device")
	}
	for _, r := range reps {
		if !r.Healthy {
			t.Fatalf("fresh replica on dev %d unhealthy", r.Dev)
		}
	}
	if img.Pages() != 4 {
		t.Fatalf("Pages = %d", img.Pages())
	}
	img.Release()
	if m1.Len() != 0 {
		t.Fatal("release should drop the image")
	}
}

func TestAffinityDeviceComesFirst(t *testing.T) {
	_, _, m := harness(t, 3, 2)
	img, err := m.Place("u/x", "cid-x", "cxlfork", tokens(1, 2), 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()
	reps := m.Replicas("u/x")
	if reps[0].Dev != 1 {
		t.Fatalf("preferred replica on dev %d, want affinity dev 1", reps[0].Dev)
	}
}

func TestProbeAndFailover(t *testing.T) {
	pool, _, m := harness(t, 3, 2)
	img, err := m.Place("u/f", "cid-f", "cxlfork", tokens(10, 3), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()

	if h, d := m.Probe("u/f"); h != 2 || d != 0 {
		t.Fatalf("fresh probe = (%d,%d), want (2,0)", h, d)
	}

	first := m.Replicas("u/f")[0].Dev
	pool.Fail(first)
	m.OnDeviceLoss(first)

	h, d := m.Probe("u/f")
	if h != 1 {
		t.Fatalf("healthy after loss = %d, want 1", h)
	}
	if d != 1 {
		t.Fatalf("deadAhead = %d, want 1 (dead device stays on the preference list until repair)", d)
	}
	if h, d := m.Probe("missing"); h != 0 || d != 0 {
		t.Fatalf("unknown key probe = (%d,%d)", h, d)
	}
}

func TestShedNeverDropsLastHealthyCopy(t *testing.T) {
	pool, _, m := harness(t, 3, 3)
	img, err := m.Place("u/s", "cid-s", "cxlfork", tokens(20, 2), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()

	if !m.Shed("u/s") {
		t.Fatal("first shed (3 copies) should succeed")
	}
	if !m.Shed("u/s") {
		t.Fatal("second shed (2 copies) should succeed")
	}
	if m.Shed("u/s") {
		t.Fatal("shed must refuse the last healthy copy")
	}
	if h, _ := m.Probe("u/s"); h != 1 {
		t.Fatalf("healthy = %d, want 1", h)
	}

	last := m.Replicas("u/s")[len(m.Replicas("u/s"))-1].Dev
	if m.SheddableOn("u/s", last) {
		t.Fatal("last copy must not be sheddable")
	}
	_ = pool
	if got := m.C.Shed.Value(); got != 2 {
		t.Fatalf("Shed counter = %d, want 2", got)
	}
}

func TestRepairConvergesAfterLoss(t *testing.T) {
	pool, eng, m := harness(t, 3, 2)
	img, err := m.Place("u/r", "cid-r", "cxlfork", tokens(30, 20), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()

	lostDev := m.Replicas("u/r")[0].Dev
	eng.Advance(100)
	pool.Fail(lostDev)
	m.OnDeviceLoss(lostDev)

	if m.UnderReplication() != 1 {
		t.Fatalf("deficit = %d, want 1", m.UnderReplication())
	}
	if !m.RepairPending() {
		t.Fatal("repair should be pending after loss")
	}

	// Bandwidth is 8 pages/tick and the image has 20 pages: repair must
	// span ticks, resuming the partial replica.
	ticks := 0
	for m.UnderReplication() > 0 {
		eng.Advance(10)
		m.RepairTick()
		if ticks++; ticks > 10 {
			t.Fatal("repair did not converge")
		}
	}
	if ticks < 3 {
		t.Fatalf("repair finished in %d ticks, want >= 3 (bandwidth-limited)", ticks)
	}
	d, ok := m.ConvergenceTime()
	if !ok || d <= 0 {
		t.Fatalf("convergence = (%v,%v)", d, ok)
	}
	if m.RepairPending() {
		t.Fatal("repair still pending after convergence")
	}
	// The dead device is pruned from the preference list once repaired.
	if h, dead := m.Probe("u/r"); h != 2 || dead != 0 {
		t.Fatalf("post-repair probe = (%d,%d), want (2,0)", h, dead)
	}
	for _, r := range m.Replicas("u/r") {
		if r.Dev == lostDev {
			t.Fatal("lost device still on the preference list after repair")
		}
	}
	if m.C.RepairCopies.Value() != 1 {
		t.Fatalf("RepairCopies = %d, want 1", m.C.RepairCopies.Value())
	}
	if m.C.RepairedPages.Value() < 20 {
		t.Fatalf("RepairedPages = %d, want >= 20", m.C.RepairedPages.Value())
	}
}

func TestLosingEveryReplicaLosesTheImage(t *testing.T) {
	pool, _, m := harness(t, 2, 1)
	img, err := m.Place("u/l", "cid-l", "cxlfork", tokens(40, 2), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()

	dev := m.Replicas("u/l")[0].Dev
	pool.Fail(dev)
	m.OnDeviceLoss(dev)

	if h, _ := m.Probe("u/l"); h != 0 {
		t.Fatalf("healthy = %d, want 0", h)
	}
	if m.C.LostImages.Value() != 1 {
		t.Fatalf("LostImages = %d, want 1", m.C.LostImages.Value())
	}
	// A lost image is not under-replicated: repair cannot resurrect it.
	if m.UnderReplication() != 0 {
		t.Fatalf("deficit = %d, want 0 for a lost image", m.UnderReplication())
	}
	if m.RepairTick() != 0 {
		t.Fatal("repair copied pages for an unrecoverable image")
	}
}

func TestEffectiveFactorTracksSurvivors(t *testing.T) {
	pool, _, m := harness(t, 3, 3)
	if m.EffectiveFactor() != 3 {
		t.Fatalf("effective = %d", m.EffectiveFactor())
	}
	pool.Fail(0)
	if m.EffectiveFactor() != 2 {
		t.Fatalf("effective after one loss = %d", m.EffectiveFactor())
	}
	// Factor is clamped to the pool size at construction.
	p := params.Default()
	p.CXLBytes = 1 << 20
	p.ReplicationFactor = 9
	pool2 := cxl.NewDevicePool(p, 2)
	if f := New(pool2, des.NewEngine(), p).Factor(); f != 2 {
		t.Fatalf("clamped factor = %d, want 2", f)
	}
}

func TestDedupAffinityMakesFirstReplicaCheap(t *testing.T) {
	pool, _, m := harness(t, 2, 2)
	// Pre-populate device 0 with the image's frames, as ingest does.
	dev := pool.Device(0)
	pre, err := dev.NewArena("ingest")
	if err != nil {
		t.Fatal(err)
	}
	toks := tokens(50, 6)
	for _, tok := range toks {
		f, _, err := dev.AllocToken(tok)
		if err != nil {
			t.Fatal(err)
		}
		pre.TrackFrame(f)
	}
	if err := pre.Seal(); err != nil {
		t.Fatal(err)
	}

	before := dev.Pool().UsedPages()
	img, err := m.Place("u/d", "cid-d", "cxlfork", toks, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()
	if after := dev.Pool().UsedPages(); after != before {
		t.Fatalf("affine replica allocated %d new frames, want 0 (dedup)", after-before)
	}
	if used := pool.Device(1).Pool().UsedPages(); used != len(toks) {
		t.Fatalf("second replica used %d frames, want %d", used, len(toks))
	}
}
