package rforktest

import (
	"errors"
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/cxl"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/params"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/vma"

	icluster "cxlfork/internal/cluster"
)

// tinyCluster builds a cluster with deliberately scarce resources.
func tinyCluster(t *testing.T, dramBytes, cxlBytes int64) *icluster.Cluster {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = dramBytes
	p.CXLBytes = cxlBytes
	p.LLCBytes = 1 << 20
	c := icluster.MustNew(p, 2)
	c.FS.Create(LibPath, int64(LibPages*p.PageSize))
	if err := c.WarmAll(LibPath); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCheckpointFailsOnFullDevice verifies CXLfork surfaces device
// exhaustion cleanly and releases partial state.
func TestCheckpointFailsOnFullDevice(t *testing.T) {
	// A 64-page device cannot hold the ~88-page parent plus metadata.
	c := tinyCluster(t, 256<<20, 64*4096)
	parent := BuildParent(t, c)
	mech := core.New(c.Dev)
	_, err := mech.Checkpoint(parent, "wontfit")
	if err == nil {
		t.Fatal("checkpoint succeeded on a full device")
	}
	if !errors.Is(err, memsim.ErrOutOfMemory) && !errors.Is(err, cxl.ErrDeviceFull) {
		t.Fatalf("unexpected error: %v", err)
	}
	// Partial state was rolled back: the device is clean.
	if c.Dev.UsedBytes() != 0 {
		t.Fatalf("device retains %d bytes after failed checkpoint", c.Dev.UsedBytes())
	}
	CheckInvariants(t, c)
}

// TestCRIURestoreFailsOnFullNode verifies CRIU's eager restore hits OOM
// when the target node lacks memory.
func TestCRIURestoreFailsOnFullNode(t *testing.T) {
	c := tinyCluster(t, 4<<20, 64<<20) // 1024-page nodes
	// Parent barely fits on node 0; node 1 is pre-filled.
	parent := BuildParent(t, c)
	mech := criu.New(c.CXLFS)
	img, err := mech.Checkpoint(parent, "big")
	if err != nil {
		t.Fatal(err)
	}
	node1 := c.Node(1)
	for node1.Mem.FreePages() > 8 {
		node1.Mem.MustAlloc()
	}
	child := node1.NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err == nil {
		t.Fatal("CRIU restore succeeded without memory")
	}
}

// TestCXLforkRestoreSurvivesFullNode verifies CXLfork's zero-copy
// restore works even on a memory-starved node (state stays on CXL), and
// the overlay degrades to direct CXL mappings rather than failing when
// local copies are impossible.
func TestCXLforkRestoreSurvivesFullNode(t *testing.T) {
	c := tinyCluster(t, 8<<20, 64<<20)
	parent := BuildParent(t, c)
	snap := SnapshotTokens(parent)
	mech := core.New(c.Dev)
	img, err := mech.Checkpoint(parent, "lean")
	if err != nil {
		t.Fatal(err)
	}
	node1 := c.Node(1)
	for node1.Mem.FreePages() > 0 {
		node1.Mem.MustAlloc()
	}
	child := node1.NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{NoDirtyPrefetch: true}); err != nil {
		t.Fatalf("zero-copy restore failed on full node: %v", err)
	}
	// Reads work straight from CXL.
	for va, want := range snap {
		if err := child.MM.Access(va, false); err != nil {
			t.Fatalf("read %#x on full node: %v", uint64(va), err)
		}
		if got, _ := PageToken(child, va); got != want {
			t.Fatalf("content mismatch at %#x", uint64(va))
		}
	}
	CheckInvariants(t, c)
	// Under MoA the overlay degrades to direct CXL mappings.
	child2 := node1.NewTask("clone2")
	if err := mech.Restore(child2, img, rfork.Options{Policy: rfork.MigrateOnAccess}); err != nil {
		t.Fatal(err)
	}
	if err := child2.MM.Access(HeapBase, false); err != nil {
		t.Fatalf("MoA access on full node: %v", err)
	}
	e, _ := child2.MM.PT.Lookup(HeapBase)
	if !e.Flags.Has(pt.OnCXL) {
		t.Fatal("overlay did not degrade to a CXL mapping under OOM")
	}
}

// TestRestoreFailsWhenRootFSDiffers verifies the shared-rootfs
// assumption is checked: restoring on a node whose filesystem lacks the
// process's open file fails loudly instead of silently mis-wiring fds.
func TestRestoreFailsWhenRootFSDiffers(t *testing.T) {
	c := NewCluster(t)
	o := c.Node(0)
	parent := o.NewTask("p")
	c.FS.Create("/data/model.bin", 4096)
	if err := o.WarmFile("/data/model.bin"); err != nil {
		t.Fatal(err)
	}
	parent.FDs.Open(kernel.FDFile, "/data/model.bin", 0o444)
	if _, err := parent.MM.Mmap(vma.VMA{
		Start: 0x10000, End: 0x11000, Prot: vma.Read | vma.Write, Kind: vma.Anon,
	}); err != nil {
		t.Fatal(err)
	}
	if err := parent.MM.Access(0x10000, true); err != nil {
		t.Fatal(err)
	}

	mech := core.New(c.Dev)
	img, err := mech.Checkpoint(parent, "fsdep")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a divergent root filesystem on the restore side by
	// removing the file (Create replaces; here we create a fresh FS
	// reference via a path the restoring node cannot resolve).
	c.FS.Create("/data/model.bin", 4096) // same path still resolves: restore succeeds
	child := c.Node(1).NewTask("ok")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatalf("restore with intact rootfs failed: %v", err)
	}

	// Now checkpoint a parent holding a file that will not exist.
	parent2 := o.NewTask("p2")
	c.FS.Create("/tmp/ephemeral", 4096)
	parent2.FDs.Open(kernel.FDFile, "/tmp/ephemeral-missing", 0o444)
	img2, err := mech.Checkpoint(parent2, "fsdep2")
	if err != nil {
		t.Fatal(err)
	}
	child2 := c.Node(1).NewTask("bad")
	if err := mech.Restore(child2, img2, rfork.Options{}); err == nil {
		t.Fatal("restore resolved a non-existent path")
	}
	img.Release()
	img2.Release()
}

// TestMitosisOverlayOOM verifies Mitosis remote paging surfaces a
// segfault-style error when the child node cannot allocate.
func TestMitosisOverlayOOM(t *testing.T) {
	c := tinyCluster(t, 8<<20, 64<<20)
	parent := BuildParent(t, c)
	mech := mitosis.New()
	img, err := mech.Checkpoint(parent, "m")
	if err != nil {
		t.Fatal(err)
	}
	_ = img
	node1 := c.Node(1)
	child := node1.NewTask("clone")
	if err := mech.Restore(child, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	for node1.Mem.FreePages() > 0 {
		node1.Mem.MustAlloc()
	}
	if err := child.MM.Access(HeapBase, false); err == nil {
		t.Fatal("Mitosis fault succeeded without memory")
	}
}
