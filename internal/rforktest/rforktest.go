package rforktest

import (
	"fmt"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/params"
	"cxlfork/internal/pt"
	"cxlfork/internal/vma"
)

// Layout of the test parent's address space.
const (
	LibBase  = pt.VirtAddr(0x7f0000000000)
	LibPages = 24

	HeapBase    = pt.VirtAddr(0x10000000)
	HeapROPages = 48 // written at init, then only read
	HeapRWPages = 16 // re-written every invocation

	LibPath = "/lib/libfn.so"
)

// HeapPages is the parent's total anonymous page count.
const HeapPages = HeapROPages + HeapRWPages

// NewCluster builds a two-node cluster sized for tests.
func NewCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	return NewClusterWith(t, func(*params.Params) {})
}

// NewTracedCluster is NewCluster with the virtual-time tracer enabled,
// so CheckInvariants additionally audits the recorded span stream.
func NewTracedCluster(t testing.TB) *cluster.Cluster {
	t.Helper()
	return NewClusterWith(t, func(p *params.Params) { p.TraceEnabled = true })
}

// NewClusterWith builds the test cluster after applying mutate to the
// default test parameters (lane counts, tracing, capacities).
func NewClusterWith(t testing.TB, mutate func(*params.Params)) *cluster.Cluster {
	t.Helper()
	p := params.Default()
	p.NodeDRAMBytes = 256 << 20
	p.CXLBytes = 256 << 20
	p.LLCBytes = 2 << 20
	mutate(&p)
	c := cluster.MustNew(p, 2)
	c.FS.Create(LibPath, int64(LibPages*p.PageSize))
	if err := c.WarmAll(LibPath); err != nil {
		t.Fatal(err)
	}
	return c
}

// BuildParent creates and populates a parent process on node 0:
// a private file mapping (library), a read-only-after-init heap region,
// and a read-write heap region. The A/D bits are then shaped to mimic a
// steady-state function: cleared, one invocation replayed (reads on the
// RO region, writes on the RW region).
func BuildParent(t testing.TB, c *cluster.Cluster) *kernel.Task {
	t.Helper()
	return BuildParentOn(t, c, 0)
}

// BuildParentOn is BuildParent on an arbitrary cluster node, for
// scenarios that exercise cross-node failover.
func BuildParentOn(t testing.TB, c *cluster.Cluster, node int) *kernel.Task {
	t.Helper()
	o := c.Node(node)
	parent := o.NewTask("parent")

	mustMmap(t, parent, vma.VMA{
		Start: LibBase, End: LibBase + pt.VirtAddr(LibPages<<pt.PageShift),
		Prot: vma.Read | vma.Exec, Kind: vma.FilePrivate, Path: LibPath, Name: "libfn",
	})
	heapEnd := HeapBase + pt.VirtAddr(HeapPages<<pt.PageShift)
	mustMmap(t, parent, vma.VMA{
		Start: HeapBase, End: heapEnd,
		Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: "[heap]",
	})

	parent.FDs.Open(kernel.FDFile, LibPath, 0o444)
	parent.FDs.Open(kernel.FDSocket, "sock:invoker", 0o600)

	// Init: touch the library, write the whole heap.
	for i := 0; i < LibPages; i++ {
		mustAccess(t, parent, LibBase+pt.VirtAddr(i<<pt.PageShift), false)
	}
	for i := 0; i < HeapPages; i++ {
		mustAccess(t, parent, HeapBase+pt.VirtAddr(i<<pt.PageShift), true)
	}

	// Shape A/D to steady state: clear, then replay one invocation.
	parent.MM.PT.ClearABits()
	clearDirty(parent)
	for i := 0; i < HeapROPages; i++ {
		mustAccess(t, parent, HeapBase+pt.VirtAddr(i<<pt.PageShift), false)
	}
	for i := HeapROPages; i < HeapPages; i++ {
		mustAccess(t, parent, HeapBase+pt.VirtAddr(i<<pt.PageShift), true)
	}
	parent.Invocations = 1
	return parent
}

// clearDirty clears D bits in place (checkpoint-shaping helper; real
// systems do this via the same user-space interface as A-bit clearing).
func clearDirty(task *kernel.Task) {
	task.MM.PT.Walk(func(_ pt.VirtAddr, l *pt.Leaf, i int) {
		l.PTEs[i].Flags &^= pt.Dirty
	})
}

func mustMmap(t testing.TB, task *kernel.Task, v vma.VMA) {
	t.Helper()
	if _, err := task.MM.Mmap(v); err != nil {
		t.Fatal(err)
	}
}

func mustAccess(t testing.TB, task *kernel.Task, va pt.VirtAddr, write bool) {
	t.Helper()
	if err := task.MM.Access(va, write); err != nil {
		t.Fatalf("access %#x write=%v: %v", uint64(va), write, err)
	}
}

// PageToken resolves the content token mapped at va, following the PTE
// to the backing frame in the right pool.
func PageToken(task *kernel.Task, va pt.VirtAddr) (uint64, bool) {
	e, ok := task.MM.PT.Lookup(va)
	if !ok || !e.Present() {
		return 0, false
	}
	var f *memsim.Frame
	if e.Flags.Has(pt.OnCXL) {
		f = task.OS.Dev.Pool().Frame(int(e.PFN))
	} else {
		f = task.OS.Mem.Frame(int(e.PFN))
	}
	return f.Data, true
}

// SnapshotTokens records the parent's content token for every present
// page, keyed by address.
func SnapshotTokens(task *kernel.Task) map[pt.VirtAddr]uint64 {
	snap := make(map[pt.VirtAddr]uint64)
	task.MM.PT.Walk(func(va pt.VirtAddr, l *pt.Leaf, i int) {
		tok, ok := PageToken(task, va)
		if ok {
			snap[va] = tok
		}
	})
	return snap
}

// VerifyCloneContent reads every snapshotted page through the clone
// (charging real access costs) and checks content equality with the
// parent snapshot. skip filters addresses the mechanism legitimately
// does not restore eagerly (none, for all three mechanisms — lazy paths
// must still produce identical content on access).
func VerifyCloneContent(t testing.TB, clone *kernel.Task, snap map[pt.VirtAddr]uint64) {
	t.Helper()
	for va, want := range snap {
		if err := clone.MM.Access(va, false); err != nil {
			t.Fatalf("clone access %#x: %v", uint64(va), err)
		}
		got, ok := PageToken(clone, va)
		if !ok {
			t.Fatalf("clone has no mapping at %#x after access", uint64(va))
		}
		if got != want {
			t.Fatalf("content mismatch at %#x: clone %d, parent %d", uint64(va), got, want)
		}
	}
}

// AddrOf returns the address of heap page i (helper for tests).
func AddrOf(base pt.VirtAddr, i int) pt.VirtAddr {
	return base + pt.VirtAddr(i<<pt.PageShift)
}

// FmtPages renders a page count for diagnostics.
func FmtPages(n int) string { return fmt.Sprintf("%d pages", n) }
