package rforktest

import (
	"errors"
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/cxl"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/rfork"
)

// reclaimPredictor is the dedup-aware accounting interface the capacity
// manager uses (core.Checkpoint implements it).
type reclaimPredictor interface {
	ReclaimableBytes() int64
}

// TestEvictionSafeWithLiveClones is the eviction-safety scenario: the
// object store drops its reference on a checkpoint (eviction) while two
// MoW clones still map its device frames. No frame a live clone
// references may be freed — the clones' image references defer the
// release — and the device gives the space back only when the last
// clone exits, at exactly the predicted reclaimable size. A transient
// device-full fault fires mid-scenario to confirm eviction composes
// with the fault-injection paths.
func TestEvictionSafeWithLiveClones(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	mech.Faults = c.Faults

	parent := BuildParent(t, c)
	snap := SnapshotTokens(parent)
	baseline := c.Dev.UsedBytes()

	img, err := mech.Checkpoint(parent, "cid-evict")
	if err != nil {
		t.Fatal(err)
	}

	// Two MoW clones on node 1: their read-only pages map device frames
	// directly (OnCXL PTEs), each restore taking one image reference.
	clone1 := c.Node(1).NewTask("clone1")
	if err := mech.Restore(clone1, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	clone2 := c.Node(1).NewTask("clone2")
	if err := mech.Restore(clone2, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	if img.Refs() != 3 {
		t.Fatalf("refs = %d, want 3 (store + two clones)", img.Refs())
	}
	CheckInvariants(t, c)

	// Evict: the store drops its reference. The image must stay fully
	// resident for the clones.
	occupied := c.Dev.UsedBytes()
	img.Release()
	if img.Refs() != 2 {
		t.Fatalf("refs = %d after eviction, want 2", img.Refs())
	}
	if got := c.Dev.UsedBytes(); got != occupied {
		t.Fatalf("eviction freed %d bytes under live clones", occupied-got)
	}
	CheckInvariants(t, c) // includes the OnCXL live-frame check

	// A fault mid-scenario: a transient device-full rolls a second
	// checkpoint back without disturbing the evicted-but-pinned image.
	c.Faults.Inject(faultinject.Rule{
		Kind: faultinject.DeviceFull,
		Step: faultinject.StepCheckpointPT,
		Node: 0,
	})
	if _, err := mech.Checkpoint(parent, "cid-wontfit"); !errors.Is(err, cxl.ErrDeviceFull) {
		t.Fatalf("injected device-full: got %v", err)
	}
	if got := c.Dev.UsedBytes(); got != occupied {
		t.Fatalf("rollback disturbed occupancy: %d, want %d", got, occupied)
	}
	CheckInvariants(t, c)

	// The clones still read correct content through the evicted image.
	VerifyCloneContent(t, clone1, snap)
	CheckInvariants(t, c)

	// First clone exits: still pinned by the second.
	c.Node(1).Exit(clone1)
	if img.Refs() != 1 {
		t.Fatalf("refs = %d after first exit, want 1", img.Refs())
	}
	CheckInvariants(t, c)
	VerifyCloneContent(t, clone2, snap)

	// Last clone exits: the deferred release happens now, freeing
	// exactly the predicted reclaimable bytes.
	predicted := img.(reclaimPredictor).ReclaimableBytes()
	before := c.Dev.UsedBytes()
	c.Node(1).Exit(clone2)
	if img.Refs() != 0 {
		t.Fatalf("refs = %d after last exit, want 0", img.Refs())
	}
	if freed := before - c.Dev.UsedBytes(); freed != predicted {
		t.Fatalf("deferred release freed %d, predicted %d", freed, predicted)
	}
	CheckInvariants(t, c)
	_ = baseline
}

// TestEvictionUnderCrashRecovery combines eviction with node-crash
// recovery: a clone survives its parent node's crash, the torn retry
// arena is recovered, and the eviction-safety invariant holds at every
// step — Recover must never free frames the clone maps.
func TestEvictionUnderCrashRecovery(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	mech.Faults = c.Faults

	parent := BuildParent(t, c)
	snap := SnapshotTokens(parent)
	img, err := mech.Checkpoint(parent, "cid-crash")
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Node(1).NewTask("clone")
	if err := mech.Restore(clone, img, rfork.Options{}); err != nil {
		t.Fatal(err)
	}
	// Evict while the clone lives.
	img.Release()
	CheckInvariants(t, c)

	// Node 0 crashes mid-checkpoint of a second image, leaving a torn
	// arena; Recover collects it without touching the clone's frames.
	c.Faults.Inject(faultinject.Rule{
		Kind: faultinject.CrashNode,
		Step: faultinject.StepCheckpointGlobal,
		Node: 0,
	})
	if _, err := mech.Checkpoint(parent, "cid-torn"); !errors.Is(err, rfork.ErrNodeDown) {
		t.Fatalf("injected crash: got %v", err)
	}
	CheckInvariants(t, c)
	c.Dev.Recover()
	CheckInvariants(t, c)

	// The clone is unharmed.
	VerifyCloneContent(t, clone, snap)
	c.Node(1).Exit(clone)
	CheckInvariants(t, c)
}
