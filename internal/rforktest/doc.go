// Package rforktest provides a shared scenario harness for testing the
// three remote-fork mechanisms: a small two-node cluster, a parent
// process with a realistic mixed address space, and content-equality
// checks between parent and clones.
//
// The scenario builders (NewCluster, BuildParent, SnapshotTokens,
// VerifyCloneContent) live in rforktest.go; invariants.go adds
// cross-mechanism safety checks — content equality, eviction safety —
// reused by the fault-injection tests. The harness is how the §6.2
// baselines and CXLfork are held to the same correctness bar.
package rforktest
