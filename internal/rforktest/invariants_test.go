package rforktest

import (
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/rfork"

	icluster "cxlfork/internal/cluster"
)

// TestInvariantsThroughCheckpointRestoreLifecycle audits the cluster
// bookkeeping at every stage of each mechanism's lifecycle: after the
// parent is built, after checkpoint, after restore, after the clone's
// first full read pass (CoW and migrate faults), after clone exit, and
// after image release.
func TestInvariantsThroughCheckpointRestoreLifecycle(t *testing.T) {
	mechs := func(c *icluster.Cluster) map[string]rfork.Mechanism {
		return map[string]rfork.Mechanism{
			"CXLfork":     core.New(c.Dev),
			"CRIU-CXL":    criu.New(c.CXLFS),
			"Mitosis-CXL": mitosis.New(),
		}
	}
	for _, name := range []string{"CXLfork", "CRIU-CXL", "Mitosis-CXL"} {
		t.Run(name, func(t *testing.T) {
			c := NewCluster(t)
			mech := mechs(c)[name]
			parent := BuildParent(t, c)
			snap := SnapshotTokens(parent)
			CheckInvariants(t, c)

			img, err := mech.Checkpoint(parent, "inv")
			if err != nil {
				t.Fatal(err)
			}
			CheckInvariants(t, c)

			child := c.Node(1).NewTask("clone")
			if err := mech.Restore(child, img, rfork.Options{}); err != nil {
				t.Fatal(err)
			}
			CheckInvariants(t, c)

			VerifyCloneContent(t, child, snap)
			CheckInvariants(t, c)

			c.Node(1).Exit(child)
			CheckInvariants(t, c)

			img.Release()
			CheckInvariants(t, c)
		})
	}
}

// TestInvariantsWithDedupedImages checkpoints the same parent twice with
// CXLfork so the second image's data frames dedup against the first:
// shared frames carry one reference per owning arena, and releasing the
// images one at a time must keep conservation exact until the device is
// empty again.
func TestInvariantsWithDedupedImages(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	parent := BuildParent(t, c)

	img1, err := mech.Checkpoint(parent, "first")
	if err != nil {
		t.Fatal(err)
	}
	img2, err := mech.Checkpoint(parent, "second")
	if err != nil {
		t.Fatal(err)
	}
	if c.Dev.Dedup.Hits.Value() == 0 {
		t.Fatal("second checkpoint of an unchanged parent produced no dedup hits")
	}
	CheckInvariants(t, c)

	img1.Release()
	CheckInvariants(t, c)
	img2.Release()
	CheckInvariants(t, c)
	if used := c.Dev.Pool().UsedPages(); used != 0 {
		t.Fatalf("device pool retains %d pages after both releases", used)
	}
}

// TestInvariantsAfterCrashAndRecover runs the torn-checkpoint scenario
// and audits at each stage: the torn arena still owns its frames, and
// Device.Recover returns the pool to conservation with the arena gone.
func TestInvariantsAfterCrashAndRecover(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	mech.Faults = c.Faults
	parent := BuildParent(t, c)

	c.Faults.Inject(faultinject.Rule{
		Kind: faultinject.CrashNode,
		Step: faultinject.StepCheckpointGlobal,
		Node: 0,
	})
	if _, err := mech.Checkpoint(parent, "doomed"); err == nil {
		t.Fatal("checkpoint survived an injected crash")
	}
	CheckInvariants(t, c)

	c.Dev.Recover()
	CheckInvariants(t, c)

	parent2 := BuildParentOn(t, c, 1)
	img, err := mech.Checkpoint(parent2, "retry")
	if err != nil {
		t.Fatal(err)
	}
	CheckInvariants(t, c)
	img.Release()
	CheckInvariants(t, c)
}

// TestInvariantCheckerDetectsViolations proves the checker is not
// vacuous: a leaked frame reference and a stolen reference must each
// surface as a conservation error.
func TestInvariantCheckerDetectsViolations(t *testing.T) {
	c := NewCluster(t)
	mech := core.New(c.Dev)
	parent := BuildParent(t, c)
	img, err := mech.Checkpoint(parent, "inv")
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()
	if errs := Invariants(c); len(errs) != 0 {
		t.Fatalf("clean cluster reported violations: %v", errs)
	}

	// Find a frame the checkpoint owns.
	var pfn = -1
	pool := c.Dev.Pool()
	for i := 0; i < pool.CapacityPages(); i++ {
		if pool.Frame(i).Refs() > 0 {
			pfn = i
			break
		}
	}
	if pfn < 0 {
		t.Fatal("checkpoint owns no device frames")
	}

	// Leak: an extra reference nobody accounts for.
	pool.Frame(pfn).Get()
	if errs := Invariants(c); len(errs) == 0 {
		t.Fatal("leaked frame reference not detected")
	}
	pool.Put(pool.Frame(pfn))
	if errs := Invariants(c); len(errs) != 0 {
		t.Fatalf("violations after restoring the ref: %v", errs)
	}

	// Steal: drop a reference an arena still owns. Use a deduped frame
	// (two images sharing it, refs >= 2) so the early Put frees nothing.
	img2, err := mech.Checkpoint(parent, "inv2")
	if err != nil {
		t.Fatal(err)
	}
	defer img2.Release()
	shared := -1
	for i := 0; i < pool.CapacityPages(); i++ {
		if pool.Frame(i).Refs() >= 2 {
			shared = i
			break
		}
	}
	if shared < 0 {
		t.Fatal("no deduped frame shared by both images")
	}
	pool.Put(pool.Frame(shared))
	if errs := Invariants(c); len(errs) == 0 {
		t.Fatal("stolen frame reference not detected")
	}
	pool.Frame(shared).Get() // restore before teardown
	if errs := Invariants(c); len(errs) != 0 {
		t.Fatalf("violations after restoring the ref: %v", errs)
	}
}
