package rforktest

import (
	"fmt"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/cxl"
	"cxlfork/internal/kernel"
	"cxlfork/internal/memsim"
	"cxlfork/internal/pt"
	"cxlfork/internal/trace"
	"cxlfork/internal/vma"
)

// CheckInvariants audits the cluster's cross-layer bookkeeping and fails
// the test with every violation found. Scenario tests call it after each
// checkpoint, restore, crash, or recovery step: the mechanisms under
// test share frames across images and nodes, and a refcount leak or a
// dangling mapping stays silent until something double-frees much later.
func CheckInvariants(t testing.TB, c *cluster.Cluster) {
	t.Helper()
	for _, err := range Invariants(c) {
		t.Errorf("invariant violated: %v", err)
	}
}

// Invariants returns every bookkeeping violation in the cluster. It
// checks two families:
//
//  1. CXL frame refcount conservation. Checkpoint arenas are the only
//     owners of device data frames (OnCXL page-table entries map frames
//     by device PFN without taking references), so every device frame's
//     refcount must equal its occurrence count across live arena frame
//     lists — a deduped frame shared by k images carries k references —
//     and the pool's used-page accounting must equal the number of
//     distinct frames with a non-zero refcount. Scenarios that allocate
//     device frames outside arenas (MmapShared producers) hold extra
//     references and are outside this checker's scope.
//
//  2. Page-table / VMA consistency per task. Every present PTE must
//     fall inside a VMA of the task, must not be writable through a
//     read-only VMA, must reference a frame inside its pool's bounds,
//     and local (non-CXL) mappings must hold live frames with at least
//     as many references as there are mappings of that frame on the
//     node. Protected CXL leaves must satisfy pt.Tree.Validate.
//
// When the cluster runs with tracing enabled, the recorded span stream
// is audited too (trace.CheckNesting): spans must nest — no span closes
// before its children — and each node's per-track timelines must be
// totally ordered by virtual time.
func Invariants(c *cluster.Cluster) []error {
	var errs []error
	errs = append(errs, deviceFrameInvariants(c.Dev)...)
	for _, node := range c.Nodes {
		errs = append(errs, nodeTaskInvariants(node)...)
	}
	if c.Trace.Enabled() {
		errs = append(errs, trace.CheckNesting(c.Trace.Events())...)
	}
	return errs
}

// deviceFrameInvariants checks CXL frame refcount conservation.
func deviceFrameInvariants(dev *cxl.Device) []error {
	var errs []error
	pool := dev.Pool()

	// Tally arena-held references per frame.
	owned := make(map[*memsim.Frame]int)
	dev.ForEachArena(func(a *cxl.Arena) {
		name := a.Name()
		a.ForEachFrame(func(f *memsim.Frame) {
			if f.Pool() != pool {
				errs = append(errs, fmt.Errorf(
					"arena %q tracks a frame from pool %q, not the device pool",
					name, f.Pool().Name()))
				return
			}
			owned[f]++
		})
	})

	live := 0
	for pfn := 0; pfn < pool.CapacityPages(); pfn++ {
		f := pool.Frame(pfn)
		refs := f.Refs()
		if refs > 0 {
			live++
		}
		if want := owned[f]; refs != want {
			errs = append(errs, fmt.Errorf(
				"device frame %d holds %d refs but arenas own %d", pfn, refs, want))
		}
	}
	if used := pool.UsedPages(); used != live {
		errs = append(errs, fmt.Errorf(
			"device pool reports %d used pages but %d frames are live", used, live))
	}
	if free := pool.FreePages(); live+free != pool.CapacityPages() {
		errs = append(errs, fmt.Errorf(
			"device pool conservation broken: %d live + %d free != %d capacity",
			live, free, pool.CapacityPages()))
	}
	return errs
}

// nodeTaskInvariants checks page-table / VMA consistency for every task
// on the node, and that local mappings are backed by live frames.
func nodeTaskInvariants(node *kernel.OS) []error {
	var errs []error
	devPool := node.Dev.Pool()
	// mapped tallies local-frame mappings across all the node's tasks;
	// each mapping holds one reference, so refs >= mappings (the page
	// cache and fork-CoW sharing hold the rest).
	mapped := make(map[*memsim.Frame]int)

	node.ForEachTask(func(task *kernel.Task) {
		mm := task.MM
		if err := mm.PT.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", node.Name, task.Name, err))
		}
		mm.PT.Walk(func(va pt.VirtAddr, l *pt.Leaf, i int) {
			e := l.PTEs[i]
			v := mm.VMAs.Find(va)
			if v == nil {
				errs = append(errs, fmt.Errorf(
					"%s/%s: present PTE at %#x outside every VMA",
					node.Name, task.Name, uint64(va)))
				return
			}
			if e.Flags.Has(pt.Writable) && v.Prot&vma.Write == 0 {
				errs = append(errs, fmt.Errorf(
					"%s/%s: writable PTE at %#x inside %s VMA %q",
					node.Name, task.Name, uint64(va), v.Prot, v.Name))
			}
			pool := node.Mem
			if e.Flags.Has(pt.OnCXL) {
				pool = devPool
			}
			if int(e.PFN) < 0 || int(e.PFN) >= pool.CapacityPages() {
				errs = append(errs, fmt.Errorf(
					"%s/%s: PTE at %#x references PFN %d outside pool %q",
					node.Name, task.Name, uint64(va), e.PFN, pool.Name()))
				return
			}
			if e.Flags.Has(pt.OnCXL) {
				// Eviction safety: dropping a checkpoint from the object
				// store must never free a device frame some live clone
				// still maps — the clone's image reference defers the
				// actual release. A freed frame here means eviction (or a
				// recovery pass) tore pages out from under a running task.
				if pool.Frame(int(e.PFN)).Refs() <= 0 {
					errs = append(errs, fmt.Errorf(
						"%s/%s: OnCXL PTE at %#x maps freed device frame %d (eviction freed a frame a live clone references)",
						node.Name, task.Name, uint64(va), e.PFN))
				}
			} else {
				mapped[pool.Frame(int(e.PFN))]++
			}
		})
	})

	for f, n := range mapped {
		if f.Refs() < n {
			errs = append(errs, fmt.Errorf(
				"%s: local frame %d mapped %d times but holds only %d refs",
				node.Name, f.PFN(), n, f.Refs()))
		}
		if f.Refs() <= 0 {
			errs = append(errs, fmt.Errorf(
				"%s: local frame %d is mapped but free", node.Name, f.PFN()))
		}
	}
	return errs
}
