package rforktest

import (
	"errors"
	"fmt"
	"testing"

	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/cxl"
	"cxlfork/internal/faultinject"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/params"
	"cxlfork/internal/rfork"
	"cxlfork/internal/trace"

	icluster "cxlfork/internal/cluster"
)

func tracedMech(c *icluster.Cluster, name string) rfork.Mechanism {
	switch name {
	case "CRIU-CXL":
		m := criu.New(c.CXLFS)
		m.Faults = c.Faults
		return m
	case "Mitosis-CXL":
		m := mitosis.New()
		m.Faults = c.Faults
		return m
	default:
		m := core.New(c.Dev)
		m.Faults = c.Faults
		return m
	}
}

// TestTracedLifecycleSpans runs each mechanism's checkpoint/restore
// lifecycle with tracing on and audits the span stream at every stage:
// CheckInvariants covers nesting and per-track ordering, and the stream
// must contain exactly one checkpoint and one restore operation span,
// each with phase children that partition the operation's interval.
func TestTracedLifecycleSpans(t *testing.T) {
	for _, name := range []string{"CXLfork", "CRIU-CXL", "Mitosis-CXL"} {
		for _, lanes := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/lanes=%d", name, lanes), func(t *testing.T) {
				c := NewClusterWith(t, func(p *params.Params) {
					p.TraceEnabled = true
					p.CheckpointLanes = lanes
					p.RestoreLanes = lanes
				})
				mech := tracedMech(c, name)
				parent := BuildParent(t, c)
				CheckInvariants(t, c)

				img, err := mech.Checkpoint(parent, "traced")
				if err != nil {
					t.Fatal(err)
				}
				CheckInvariants(t, c)

				child := c.Node(1).NewTask("clone")
				if err := mech.Restore(child, img, rfork.Options{}); err != nil {
					t.Fatal(err)
				}
				CheckInvariants(t, c)

				ops := make(map[string]trace.Event)
				byID := c.Trace.Events()
				childPhases := make(map[trace.SpanID][]trace.Event)
				for _, e := range byID {
					if e.Cat == trace.CatOp {
						ops[e.Name] = e
					}
					if e.Cat == trace.CatPhase {
						childPhases[e.Parent] = append(childPhases[e.Parent], e)
					}
				}
				for i, e := range byID {
					if e.Cat == trace.CatOp && (e.Name == "checkpoint" || e.Name == "restore") {
						var sum int64
						for _, ph := range childPhases[trace.SpanID(i+1)] {
							sum += int64(ph.Dur)
						}
						if sum != int64(e.Dur) {
							t.Errorf("%s phases sum to %d, op lasts %d", e.Name, sum, e.Dur)
						}
					}
				}
				ck, ok := ops["checkpoint"]
				if !ok {
					t.Fatal("no checkpoint op span recorded")
				}
				if ck.Node != 0 {
					t.Errorf("checkpoint span on node %d, want 0", ck.Node)
				}
				rs, ok := ops["restore"]
				if !ok {
					t.Fatal("no restore op span recorded")
				}
				if rs.Node != 1 {
					t.Errorf("restore span on node %d, want 1", rs.Node)
				}
				if rs.Begin < ck.End() {
					t.Errorf("restore [%d,...) begins before checkpoint ends at %d", rs.Begin, ck.End())
				}
				if lanes > 1 {
					var laneSpans int
					for _, e := range byID {
						if e.Cat == trace.CatLane {
							laneSpans++
						}
					}
					if laneSpans == 0 {
						t.Error("multi-lane run recorded no lane spans")
					}
				}
				if c.Trace.Dropped() != 0 {
					t.Errorf("%d spans dropped", c.Trace.Dropped())
				}
			})
		}
	}
}

// TestTracedFaultAnnotations injects a device-full fault into a traced
// checkpoint: the failed attempt must appear as an operation span
// carrying a zero-width error annotation naming the failed step, and
// the stream must still pass the nesting audit.
func TestTracedFaultAnnotations(t *testing.T) {
	c := NewTracedCluster(t)
	mech := tracedMech(c, "CXLfork")
	parent := BuildParent(t, c)

	c.Faults.Inject(faultinject.Rule{
		Kind: faultinject.DeviceFull,
		Step: faultinject.StepCheckpointVMA,
		Node: faultinject.AnyNode,
	})
	if _, err := mech.Checkpoint(parent, "doomed"); !errors.Is(err, cxl.ErrDeviceFull) {
		t.Fatalf("injected fault: got %v, want ErrDeviceFull", err)
	}
	CheckInvariants(t, c)

	var annotations []trace.Event
	for _, e := range c.Trace.Events() {
		if e.Cat == trace.CatError {
			annotations = append(annotations, e)
		}
	}
	if len(annotations) != 1 {
		t.Fatalf("recorded %d error annotations, want 1: %+v", len(annotations), annotations)
	}
	a := annotations[0]
	if a.Name != "vma" || a.Dur != 0 || a.Parent == trace.None {
		t.Errorf("error annotation = %+v, want zero-width child named \"vma\"", a)
	}

	// The retry succeeds and traces normally.
	img, err := mech.Checkpoint(parent, "retry")
	if err != nil {
		t.Fatal(err)
	}
	defer img.Release()
	CheckInvariants(t, c)
}
