package rforktest

import (
	"fmt"
	"math/rand"
	"testing"

	"cxlfork/internal/cluster"
	"cxlfork/internal/core"
	"cxlfork/internal/criu"
	"cxlfork/internal/kernel"
	"cxlfork/internal/mitosis"
	"cxlfork/internal/pt"
	"cxlfork/internal/rfork"
	"cxlfork/internal/vma"
)

// buildRandomParent creates a parent with a randomized address space:
// a random number of file and anonymous VMAs with random sizes, random
// population (some pages written, some only read, some untouched), and
// random descriptors.
func buildRandomParent(t *testing.T, c *cluster.Cluster, rng *rand.Rand) (*kernel.Task, []pt.VirtAddr) {
	t.Helper()
	o := c.Node(0)
	parent := o.NewTask("rand-parent")
	var touched []pt.VirtAddr

	// File mappings.
	nFiles := 1 + rng.Intn(4)
	va := pt.VirtAddr(0x7f00_0000_0000)
	for i := 0; i < nFiles; i++ {
		pages := 1 + rng.Intn(24)
		path := fmt.Sprintf("/rand/lib%d.so", i)
		c.FS.Create(path, int64(pages*o.P.PageSize))
		// Warm on every node so page-cache population does not show up
		// as a memory delta on the restore node.
		if err := c.WarmAll(path); err != nil {
			t.Fatal(err)
		}
		if _, err := parent.MM.Mmap(vma.VMA{
			Start: va, End: va + pt.VirtAddr(pages<<pt.PageShift),
			Prot: vma.Read | vma.Exec, Kind: vma.FilePrivate, Path: path,
		}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < pages; j++ {
			if rng.Intn(3) > 0 { // touch ~2/3 of file pages
				addr := va + pt.VirtAddr(j<<pt.PageShift)
				mustAccess(t, parent, addr, false)
				touched = append(touched, addr)
			}
		}
		va += pt.VirtAddr((pages + 4) << pt.PageShift)
	}

	// Anonymous mappings.
	nAnon := 1 + rng.Intn(5)
	va = pt.VirtAddr(0x1000_0000)
	for i := 0; i < nAnon; i++ {
		pages := 1 + rng.Intn(80)
		if _, err := parent.MM.Mmap(vma.VMA{
			Start: va, End: va + pt.VirtAddr(pages<<pt.PageShift),
			Prot: vma.Read | vma.Write, Kind: vma.Anon, Name: fmt.Sprintf("[anon%d]", i),
		}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < pages; j++ {
			switch rng.Intn(4) {
			case 0: // untouched
			case 1: // read-only touch (zero page)
				addr := va + pt.VirtAddr(j<<pt.PageShift)
				mustAccess(t, parent, addr, false)
				touched = append(touched, addr)
			default: // written
				addr := va + pt.VirtAddr(j<<pt.PageShift)
				mustAccess(t, parent, addr, true)
				touched = append(touched, addr)
			}
		}
		va += pt.VirtAddr((pages + 8) << pt.PageShift)
	}

	for i := 0; i < rng.Intn(6); i++ {
		parent.FDs.Open(kernel.FDSocket, fmt.Sprintf("sock:%d", i), 0o600)
	}
	parent.Regs.IP = rng.Uint64()
	return parent, touched
}

// TestPropertyCloneEquivalence is the repository's strongest
// correctness check: for random address spaces, every mechanism's
// restore must reproduce the parent's exact memory contents and global
// state on another node, under every tiering policy, with no frame
// leaks after teardown.
func TestPropertyCloneEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := NewCluster(t)
			parent, _ := buildRandomParent(t, c, rng)
			snap := SnapshotTokens(parent)

			type variant struct {
				name string
				mech rfork.Mechanism
				opts rfork.Options
			}
			variants := []variant{
				{"criu", criu.New(c.CXLFS), rfork.Options{}},
				{"mitosis", mitosis.New(), rfork.Options{}},
				{"cxlfork-mow", core.New(c.Dev), rfork.Options{}},
				{"cxlfork-moa", core.New(c.Dev), rfork.Options{Policy: rfork.MigrateOnAccess}},
				{"cxlfork-ht", core.New(c.Dev), rfork.Options{Policy: rfork.HybridTiering}},
				{"cxlfork-naive", core.New(c.Dev), rfork.Options{NaivePTCopy: true}},
			}
			node1 := c.Node(1)
			for _, v := range variants {
				usedBefore := node1.Mem.UsedPages()
				img, err := v.mech.Checkpoint(parent, "prop-"+v.name)
				if err != nil {
					t.Fatalf("%s checkpoint: %v", v.name, err)
				}
				child := node1.NewTask("clone-" + v.name)
				if err := v.mech.Restore(child, img, v.opts); err != nil {
					t.Fatalf("%s restore: %v", v.name, err)
				}
				VerifyCloneContent(t, child, snap)
				if err := child.MM.PT.Validate(); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if child.FDs.Len() != parent.FDs.Len() {
					t.Fatalf("%s: fds %d vs %d", v.name, child.FDs.Len(), parent.FDs.Len())
				}
				if child.Regs.IP != parent.Regs.IP {
					t.Fatalf("%s: registers lost", v.name)
				}
				// Writes in the clone never reach the parent.
				for addr := range snap {
					if err := child.MM.Access(addr, true); err != nil {
						// Read-only file VMAs reject stores; fine.
						continue
					}
				}
				for addr, want := range snap {
					got, ok := PageToken(parent, addr)
					if !ok || got != want {
						t.Fatalf("%s: parent content changed at %#x", v.name, uint64(addr))
					}
				}
				node1.Exit(child)
				img.Release()
				if got := node1.Mem.UsedPages(); got != usedBefore {
					t.Fatalf("%s: leaked %d pages", v.name, got-usedBefore)
				}
			}
			// After releasing every checkpoint, the device is empty.
			if c.Dev.UsedBytes() != 0 {
				t.Fatalf("device retains %d bytes", c.Dev.UsedBytes())
			}
		})
	}
}
